# Convenience wrappers around dune; `make check` is the pre-commit gate.

.PHONY: all build test bench chaos check fmt clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# The chaos availability demo: scheduled crashes with failover and
# serve-stale degradation (also available as `hns_cli chaos`).
chaos:
	dune exec bench/main.exe -- chaos

# ocamlformat is optional in the container: format when present, skip
# (with a note) when not, so check works everywhere.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt --auto-promote || true; \
	else \
		echo "ocamlformat not installed; skipping fmt"; \
	fi

check: fmt
	dune build
	dune runtest
	$(MAKE) chaos

clean:
	dune clean
