# Convenience wrappers around dune; `make check` is the pre-commit gate.

.PHONY: all build test bench chaos coldpath propagation durability agent colocation load fanout marshal obs check fmt clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# The chaos availability demo: scheduled crashes with failover and
# serve-stale degradation (also available as `hns_cli chaos`).
chaos:
	dune exec bench/main.exe -- chaos

# Cold-path collapse: batched meta queries vs the per-mapping walk,
# AXFR preloading, and stampede coalescing (also in BENCH_hns.json).
coldpath:
	dune exec bench/main.exe -- coldpath

# Change propagation: one update pushed by NOTIFY, replayed as IXFR
# deltas into a secondary and a preloaded client, vs full AXFR
# (also in BENCH_hns.json as propagation.*).
propagation:
	dune exec bench/main.exe -- propagation

# The durable meta-store: WAL group commit on the calibrated 1987
# disk, key-coalescing compaction, and the crash/restart A/B — a
# recovered primary resumes IXFR from its last durable serial while
# the journal-less baseline forces full transfers (also in
# BENCH_hns.json as durability.* and propagation.restart.*).
durability:
	dune exec bench/main.exe -- durability

# The shared host agent: cross-process cache + coalescing and the
# resolve-tail prefetch (also in BENCH_hns.json as agent.*).
agent:
	dune exec bench/main.exe -- agent

# The colocation bench matrix: five Table 3.1 arrangements x
# {marshalled, demarshalled} cache modes, cold and warm imports
# (also in BENCH_hns.json as coldpath.<arrangement>.*).
colocation:
	dune exec bench/main.exe -- colocation

# The open-loop load harness smoke pair (decayed vs sliding hot
# ranking) on the CI config, guarded by a fixed sim-event budget so a
# retry storm or runaway fiber fails the gate instead of tripling the
# run quietly. `--full` runs the million-client bench suite.
load:
	dune exec bin/hns_cli.exe -- load --max-events 60000

# The meta-store fan-out sweep: partitioned primaries with IXFR-chained
# replica trees vs the single-primary baseline, plus the read-your-writes
# pinning A/B. The per-run sim-event budget catches referral loops or a
# replica poll that never detaches; pinned staleness fails the gate.
fanout:
	dune exec bin/hns_cli.exe -- fanout --max-events 20000

# The marshalling A/B: hand codec vs generated stubs over the hot
# record shapes — wall-clock per-shape table plus the calibrated
# per-record cost models (also in BENCH_hns.json as marshal.*).
marshal:
	dune exec bench/main.exe -- marshal

# The observability suite: cross-hop trace propagation, the query
# flight recorder and the SLO tracker, plus the metric-name lint
# (every registered name must be layer.component.metric; duplicate-kind
# registration fails fast at the registration site).
obs:
	dune exec test/test_main.exe -- test obs
	dune exec test/test_main.exe -- test trace
	dune exec bin/hns_cli.exe -- lint

# ocamlformat is optional in the container: format when present, skip
# (with a note) when not, so check works everywhere.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt --auto-promote || true; \
	else \
		echo "ocamlformat not installed; skipping fmt"; \
	fi

check: fmt
	dune build
	dune runtest
	$(MAKE) chaos
	$(MAKE) coldpath
	$(MAKE) propagation
	$(MAKE) durability
	$(MAKE) agent
	$(MAKE) colocation
	$(MAKE) load
	$(MAKE) fanout
	$(MAKE) marshal
	$(MAKE) obs

clean:
	dune clean
