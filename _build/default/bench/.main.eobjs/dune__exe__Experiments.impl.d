bench/experiments.ml: Array Baseline Clearinghouse Dns Float Format Hns Hrpc Int32 List Nsm Option Printf Rpc Sim Transport Wire Workload
