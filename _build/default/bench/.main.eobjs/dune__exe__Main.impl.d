bench/main.ml: Analyze Array Bechamel Benchmark Experiments Hashtbl Hns Int32 Lazy List Measure Printf Staged Sys Test Time Toolkit Wire Workload
