bench/main.mli:
