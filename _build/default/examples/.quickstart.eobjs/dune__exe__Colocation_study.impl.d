examples/colocation_study.ml: Array Hns List Printf Sys Workload
