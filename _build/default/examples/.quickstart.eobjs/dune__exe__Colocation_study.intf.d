examples/colocation_study.mli:
