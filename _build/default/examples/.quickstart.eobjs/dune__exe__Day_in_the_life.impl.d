examples/day_in_the_life.ml: Array Clearinghouse Dns Format Hns Int32 List Printf Result Services Sim Transport Workload
