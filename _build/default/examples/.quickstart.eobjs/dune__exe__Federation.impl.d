examples/federation.ml: Hns Hrpc List Nsm Printf Rpc Sim Transport Wire Workload Yp
