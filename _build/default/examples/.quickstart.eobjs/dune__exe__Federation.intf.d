examples/federation.mli:
