examples/hcs_services.ml: Format Hns List Printf Result Services Sim String Workload
