examples/hcs_services.mli:
