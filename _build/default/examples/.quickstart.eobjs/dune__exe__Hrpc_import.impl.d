examples/hrpc_import.ml: Format Hns Hrpc Printf Rpc Sim Wire Workload
