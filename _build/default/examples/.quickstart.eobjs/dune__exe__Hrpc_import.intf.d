examples/hrpc_import.mli:
