examples/mail_routing.ml: Hns List Printf Sim String Wire Workload
