examples/mail_routing.mli:
