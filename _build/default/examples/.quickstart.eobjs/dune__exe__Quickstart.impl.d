examples/quickstart.ml: Dns Format Hns Hrpc List Nsm Printf Rpc Sim Transport Wire Workload
