examples/quickstart.mli:
