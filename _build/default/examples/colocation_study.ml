(* Colocation study: run the five arrangements of Table 3.1 yourself,
   with any cache mode.

     dune exec examples/colocation_study.exe
     dune exec examples/colocation_study.exe -- demarshalled

   Prints the three cache-state columns per arrangement, plus the
   equation-(1) break-even for moving each party remote. The optional
   argument switches every cache to the demarshalled representation
   the paper adopted after Table 3.2 — watch column B and C collapse. *)

module S = Workload.Scenario

let () =
  let cache_mode =
    match Array.to_list Sys.argv with
    | _ :: "demarshalled" :: _ -> Hns.Cache.Demarshalled
    | _ -> Hns.Cache.Marshalled
  in
  let scn = S.build ~cache_mode () in
  Printf.printf "cache mode: %s\n\n"
    (match cache_mode with
    | Hns.Cache.Marshalled -> "marshalled (as measured in the paper's Table 3.1)"
    | Hns.Cache.Demarshalled -> "demarshalled (the paper's eventual fix)");
  let name = Hns.Hns_name.make ~context:scn.bind_context ~name:scn.service_host in
  let rows =
    List.map
      (fun arrangement ->
        let a, b, c =
          S.in_sim scn (fun () ->
              let p = S.arrange scn arrangement in
              S.flush_parties p;
              let go () =
                match
                  Hns.Import.import p.env arrangement ~service:scn.service_name name
                with
                | Ok _ -> ()
                | Error e -> failwith (Hns.Errors.to_string e)
              in
              let (), a = S.timed go in
              Hns.Cache.flush p.nsm_cache;
              let (), b = S.timed go in
              let (), c = S.timed go in
              S.stop_parties p;
              (a, b, c))
        in
        [
          Hns.Import.arrangement_name arrangement;
          Printf.sprintf "%.0f" a;
          Printf.sprintf "%.0f" b;
          Printf.sprintf "%.0f" c;
        ])
      Hns.Import.all_arrangements
  in
  Workload.Experiment.print_table
    ~title:"HRPC binding time by colocation arrangement (virtual msec)"
    ~header:[ "arrangement"; "cache miss"; "HNS hit"; "HNS+NSM hit" ]
    rows;
  print_endline
    "Lesson (paper, Section 3): at most two remote calls can be eliminated\n\
     by colocation, while each cache hit eliminates many."
