(* A day in the life of the federation: four virtual hours of mixed
   workload from several client machines — host lookups, imports,
   file fetches, mail, remote jobs — with periodic native updates to
   the underlying name services, all on the virtual clock.

     dune exec examples/day_in_the_life.exe

   Ends with the kind of report an operator would want: per-server
   load, cache effectiveness, and the latency distribution. *)

module S = Workload.Scenario

let () =
  let scn = S.build () in
  let latency = Sim.Stats.create ~name:"query latency" () in
  let histogram = Sim.Stats.Histogram.create ~lo:0.0 ~hi:300.0 ~bins:10 in
  let failures = ref 0 and queries = ref 0 in
  S.in_sim scn (fun () ->
      let _installed = Services.Setup.install scn in
      let rng = Sim.Rng.create ~seed:0xDA11L in
      let zipf = Workload.Zipf.create ~n:16 ~s:1.1 in
      let hosts = Array.of_list (Workload.Namegen.hosts ~count:16 ~zone:scn.zone) in
      (* Three client machines, each with its own linked HNS. *)
      let clients = [ scn.client_stack; scn.agent_stack; scn.service_stack ] in
      let spawn_client i stack =
        let hns = S.new_hns scn ~on:stack in
        let filing = Services.Filing.create hns in
        let mail = Services.Mail.create hns ~from:(Printf.sprintf "client%d@hcs" i) in
        let rexec = Services.Rexec.create hns in
        let one_action () =
          let t0 = Sim.Engine.time () in
          let outcome =
            match Sim.Rng.int rng 10 with
            | 0 | 1 | 2 | 3 ->
                (* host lookup with Zipf locality *)
                let host = hosts.(Workload.Zipf.sample zipf rng) in
                (match
                   Hns.Client.resolve hns ~query_class:Hns.Query_class.host_address
                     ~payload_ty:Hns.Nsm_intf.host_address_payload_ty
                     (Hns.Hns_name.make ~context:scn.bind_context ~name:host)
                 with
                | Ok (Some _) -> true
                | _ -> false)
            | 4 | 5 ->
                (* file fetch, sometimes from the Xerox world *)
                let name =
                  if Sim.Rng.int rng 3 = 0 then Services.Setup.xde_file_name scn "notes"
                  else Services.Setup.unix_file_name scn "report.tex"
                in
                Result.is_ok (Services.Filing.fetch filing name)
            | 6 | 7 ->
                Result.is_ok
                  (Services.Mail.send mail
                     ~recipient:
                       (Services.Setup.user_name scn
                          (Sim.Rng.pick rng [| "alice"; "bob"; "carol"; "dave" |]))
                     ~subject:"soak" ~body:"tick")
            | 8 ->
                Result.is_ok
                  (Services.Rexec.run rexec
                     ~host:
                       (Hns.Hns_name.make ~context:scn.bind_context
                          ~name:("samoa." ^ scn.zone))
                     ~command:"date" ~args:[])
            | _ -> (
                (* a full import *)
                match
                  Hns.Client.resolve hns ~query_class:Hns.Query_class.hrpc_binding
                    ~payload_ty:Hns.Nsm_intf.binding_payload_ty
                    ~service:scn.service_name
                    (Hns.Hns_name.make ~context:scn.bind_context ~name:scn.service_host)
                with
                | Ok (Some _) -> true
                | _ -> false)
          in
          incr queries;
          if not outcome then incr failures;
          let d = Sim.Engine.time () -. t0 in
          Sim.Stats.add latency d;
          Sim.Stats.Histogram.add histogram d
        in
        Sim.Engine.spawn_child ~name:(Printf.sprintf "client-%d" i) (fun () ->
            (* ~4 virtual hours, one action every ~20 s per client *)
            for _ = 1 to 720 do
              Sim.Engine.sleep (15_000.0 +. Sim.Rng.float rng 10_000.0);
              one_action ()
            done)
      in
      List.iteri spawn_client clients;
      (* an administrator process renames things underneath everyone *)
      Sim.Engine.spawn_child ~name:"admin" (fun () ->
          for i = 1 to 12 do
            Sim.Engine.sleep 1_200_000.0;
            Dns.Db.add (Dns.Zone.db scn.public_zone)
              (Dns.Rr.make
                 (Dns.Name.of_string (Printf.sprintf "guest%02d.%s" i scn.zone))
                 (Dns.Rr.A (Int32.of_int (0x0A00F000 + i))))
          done));
  Printf.printf "== Day-in-the-life report (%.1f virtual hours) ==\n"
    (Sim.Engine.now scn.engine /. 3_600_000.0);
  Printf.printf "queries: %d   failures: %d\n" !queries !failures;
  Format.printf "%a@." Sim.Stats.pp latency;
  print_endline "latency distribution (ms):";
  Format.printf "%a" Sim.Stats.Histogram.pp histogram;
  Printf.printf "public BIND served %d queries; meta-BIND %d; Clearinghouse %d accesses\n"
    (Dns.Server.queries_served scn.public_bind)
    (Dns.Server.queries_served scn.meta_bind)
    (Clearinghouse.Ch_server.accesses scn.ch);
  Printf.printf "network: %d packets, %d bytes\n"
    (Transport.Netstack.packets_sent scn.net)
    (Transport.Netstack.bytes_sent scn.net)
