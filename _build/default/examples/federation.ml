(* Evolving heterogeneity: introduce an entirely new name-service
   type at run time and federate it into the HNS without touching any
   existing component.

     dune exec examples/federation.exe

   The paper's pitch: "adding a new system type simply requires
   building NSMs for those queries to be supported and registering
   their existence with the HNS." We play a department that buys Sun
   machines running NIS (Yellow Pages): their ypserv (a real Sun RPC
   program, 100004) comes up speaking its own protocol, one NSM is
   written for the HostAddress query class, both are registered — and
   the same client code that was resolving BIND and Clearinghouse
   names now resolves YP names. *)

module S = Workload.Scenario

let resolve hns label (name : Hns.Hns_name.t) =
  match
    Hns.Client.resolve hns ~query_class:Hns.Query_class.host_address
      ~payload_ty:Hns.Nsm_intf.host_address_payload_ty name
  with
  | Ok (Some (Wire.Value.Uint ip)) ->
      Printf.printf "  %-12s %-38s -> %s\n" label
        (Hns.Hns_name.to_string name)
        (Transport.Address.ip_to_string ip)
  | Ok _ -> Printf.printf "  %-12s %s -> not found\n" label (Hns.Hns_name.to_string name)
  | Error e -> Printf.printf "  %-12s error: %s\n" label (Hns.Errors.to_string e)

let () =
  let scn = S.build () in
  S.in_sim scn (fun () ->
      (* A client that knows nothing about YP. *)
      let hns = S.new_hns scn ~on:scn.client_stack in
      print_endline "== Before the new system type arrives ==";
      resolve hns "(BIND)" (Hns.Hns_name.make ~context:scn.bind_context ~name:scn.service_host);
      resolve hns "(CH)" (Hns.Hns_name.make ~context:scn.ch_context ~name:"dandelion");
      resolve hns "(YP?)" (Hns.Hns_name.make ~context:"ee-yp" ~name:"sparcstation1");

      print_endline "\n== The EE department's Suns arrive, running NIS ==";
      (* ypserv on the department's server (the agent host here),
         populated by their own administrators with their own tools. *)
      let ypserv =
        Yp.Yp_server.create scn.agent_stack ~domain:"ee.washington.edu"
          ~lookup_ms:14.0 ()
      in
      List.iter
        (fun (host, addr) ->
          Yp.Yp_server.set ypserv ~map:Yp.Yp_proto.map_hosts_byname ~key:host
            (addr ^ " " ^ host))
        [
          ("sparcstation1", "10.1.0.1");
          ("sparcstation2", "10.1.0.2");
          ("laserwriter", "10.1.0.9");
        ];
      Yp.Yp_server.start ypserv;
      print_endline
        "  started ypserv (Sun RPC program 100004; nothing else in the\n\
        \  federation speaks its map protocol)";

      (* One NSM for (HostAddress x YP), exported over HRPC. *)
      let ha_nsm =
        Nsm.Hostaddr_nsm_yp.create scn.nsm_stack
          ~yp_server:(Yp.Yp_server.addr ypserv) ~domain:"ee.washington.edu"
          ~per_query_ms:Workload.Calib.nsm_per_query_ms ()
      in
      let nsm_server =
        Nsm.Hostaddr_nsm_yp.serve ha_nsm
          ~prog:(Hns.Nsm_intf.nsm_prog_base + 40)
          ~service_overhead_ms:Workload.Calib.nsm_service_overhead_ms ()
      in
      Hrpc.Server.start nsm_server;
      print_endline "  wrote ONE NSM (HostAddress x YP) and exported it over HRPC";

      (* Register the new name service, context, and NSM — the only
         administrative action, done once, in one place. *)
      let meta = Hns.Client.meta hns in
      let ok = function
        | Ok () -> ()
        | Error e -> failwith (Hns.Errors.to_string e)
      in
      ok
        (Hns.Admin.register_name_service meta ~name:"EE-YP"
           {
             Hns.Meta_schema.ns_type = "yp";
             ns_host = "rarotonga.cs.washington.edu";
             ns_host_context = scn.bind_context;
             ns_port = Yp.Yp_server.port ypserv;
           });
      ok (Hns.Admin.register_context meta ~context:"ee-yp" ~ns:"EE-YP");
      ok
        (Hns.Admin.register_nsm_server meta ~name:"ha-yp" ~ns:"EE-YP"
           ~query_class:Hns.Query_class.host_address
           ~host:"niue.cs.washington.edu" ~host_context:scn.bind_context
           (Hrpc.Server.binding nsm_server));
      print_endline
        "  registered EE-YP, context 'ee-yp', and the NSM with the HNS\n\
        \  (registering an NSM extends the functionality of all machines at once)";

      print_endline "\n== The same client code, unchanged ==";
      resolve hns "(BIND)" (Hns.Hns_name.make ~context:scn.bind_context ~name:scn.service_host);
      resolve hns "(CH)" (Hns.Hns_name.make ~context:scn.ch_context ~name:"dandelion");
      resolve hns "(YP!)" (Hns.Hns_name.make ~context:"ee-yp" ~name:"sparcstation1");
      resolve hns "(YP!)" (Hns.Hns_name.make ~context:"ee-yp" ~name:"laserwriter");
      resolve hns "(YP!)" (Hns.Hns_name.make ~context:"ee-yp" ~name:"vaxstation");

      print_endline "\n== And native NIS applications keep working, too ==";
      let c =
        Yp.Yp_client.create scn.client_stack ~server:(Yp.Yp_server.addr ypserv)
          ~domain:"ee.washington.edu"
      in
      (match Yp.Yp_client.match_ c ~map:Yp.Yp_proto.map_hosts_byname "sparcstation2" with
      | Ok (Some entry) -> Printf.printf "  native ypmatch: %s\n" entry
      | Ok None -> print_endline "  native ypmatch: not found"
      | Error e ->
          Printf.printf "  native ypmatch failed: %s\n" (Rpc.Control.error_to_string e));
      (* ...and their updates flow through the HNS with no
         reregistration: direct access. *)
      Yp.Yp_server.set ypserv ~map:Yp.Yp_proto.map_hosts_byname ~key:"sun4"
        "10.1.0.77 sun4";
      print_endline "  the EE admin adds sun4 to hosts.byname with native tools:";
      resolve hns "(YP!)" (Hns.Hns_name.make ~context:"ee-yp" ~name:"sun4");
      Printf.printf "\n(total virtual time: %.1f ms)\n" (Sim.Engine.time ()))
