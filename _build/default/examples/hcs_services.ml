(* The HCS core network services — filing, mail, remote computation —
   running over HNS + HRPC.

     dune exec examples/hcs_services.exe

   "The goal of this project is to provide for loose integration
   through network services, meaning that a set of core services
   (filing, mail, and remote computation) are provided network-wide."
   One client, three services, two underlying worlds (Unix/BIND/Sun
   RPC and XDE/Clearinghouse/Courier) — and the client code never
   mentions either. *)

module S = Workload.Scenario

let show_result label = function
  | Ok s -> Printf.printf "  %-34s -> %s\n" label s
  | Error e ->
      Printf.printf "  %-34s -> error: %s\n" label
        (Format.asprintf "%a" Services.Access.pp_error e)

let () =
  let scn = S.build () in
  S.in_sim scn (fun () ->
      let _installed = Services.Setup.install scn in
      let hns = S.new_hns scn ~on:scn.client_stack in

      print_endline "== Filing: Fetch across heterogeneous file systems ==";
      let filing = Services.Filing.create hns in
      show_result "fetch report.tex (Unix, Sun RPC)"
        (Result.map
           (fun d -> Printf.sprintf "%d bytes: %S..." (String.length d)
               (String.sub d 0 (min 24 (String.length d))))
           (Services.Filing.fetch filing (Services.Setup.unix_file_name scn "report.tex")));
      show_result "fetch notes (XDE, Courier)"
        (Result.map
           (fun d -> Printf.sprintf "%d bytes: %S..." (String.length d)
               (String.sub d 0 (min 24 (String.length d))))
           (Services.Filing.fetch filing (Services.Setup.xde_file_name scn "notes")));
      show_result "store todo"
        (Result.map (fun () -> "stored")
           (Services.Filing.store filing (Services.Setup.unix_file_name scn "todo")
              "everything shipped"));

      print_endline "\n== Mail: deliver to mailbox sites found via the HNS ==";
      let mail = Services.Mail.create hns ~from:"notkin@cs" in
      List.iter
        (fun user ->
          show_result
            (Printf.sprintf "send to %s" user)
            (Result.map
               (fun site -> "delivered at " ^ site.Hns.Hns_name.name)
               (Services.Mail.send mail
                  ~recipient:(Services.Setup.user_name scn user)
                  ~subject:"status" ~body:"the HNS is up")))
        [ "alice"; "dave"; "mallory" ];
      show_result "read alice's mailbox"
        (Result.map
           (fun msgs -> Printf.sprintf "%d message(s)" (List.length msgs))
           (Services.Mail.read_mailbox mail ~user:(Services.Setup.user_name scn "alice")));

      print_endline "\n== Remote computation ==";
      let rexec = Services.Rexec.create hns in
      let on host = Hns.Hns_name.make ~context:scn.bind_context ~name:host in
      List.iter
        (fun (host, command, args) ->
          show_result
            (Printf.sprintf "%s on %s" command host)
            (Result.map
               (fun (o : Services.Rexec_server.outcome) ->
                 Printf.sprintf "[%d] %s" o.status o.output)
               (Services.Rexec.run rexec ~host:(on host) ~command ~args)))
        [
          ("samoa.cs.washington.edu", "hostname", []);
          ("vanuatu.cs.washington.edu", "date", []);
          ("vanuatu.cs.washington.edu", "compile", [ "hns.c"; "-O" ]);
          ("samoa.cs.washington.edu", "fortune", []);
        ];
      Printf.printf "\n(total virtual time: %.1f ms)\n" (Sim.Engine.time ()))
