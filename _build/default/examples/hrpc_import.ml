(* The paper's Section 2 walk-through, narrated: HRPC binding via the
   HNS for a Sun RPC service named in BIND, then the same client code
   importing a Courier service named in the Clearinghouse.

     dune exec examples/hrpc_import.exe

   Compare with Figure 2.1 and the Import/FindNSM/BindingNSM call
   sequence in the paper. *)

module S = Workload.Scenario

let step fmt = Printf.printf ("  " ^^ fmt ^^ "\n")

let () =
  let scn = S.build () in
  S.in_sim scn (fun () ->
      let hns = S.new_hns scn ~on:scn.client_stack in
      print_endline "== Import of a Sun RPC service named in BIND ==";
      let hns_name = Hns.Hns_name.make ~context:scn.bind_context ~name:scn.service_host in
      step "Import(ServiceName: %S, HNSName: %S)" scn.service_name
        (Hns.Hns_name.to_string hns_name);
      (* Step 1: FindNSM maps (context, query class) to an NSM binding. *)
      let resolved =
        match
          Hns.Client.find_nsm hns ~context:hns_name.context
            ~query_class:Hns.Query_class.hrpc_binding
        with
        | Ok r -> r
        | Error e -> failwith (Hns.Errors.to_string e)
      in
      step "FindNSM(QueryClass: %S, Context: %S)" Hns.Query_class.hrpc_binding
        hns_name.context;
      step "  -> name service %S, NSM %S" resolved.ns_name resolved.nsm_name;
      step "  -> NSMBinding: %s" (Format.asprintf "%a" Hrpc.Binding.pp resolved.binding);
      (* Step 2: call the designated NSM with the query-class-specific
         interface. *)
      step "BindingNSM(ServiceName: %S, HNSName: %S)" scn.service_name
        (Hns.Hns_name.to_string hns_name);
      (match
         Hns.Nsm_intf.call scn.client_stack (Hns.Nsm_intf.Remote resolved.binding)
           ~payload_ty:Hns.Nsm_intf.binding_payload_ty ~service:scn.service_name
           ~hns_name
       with
      | Ok (Some payload) ->
          let binding = Hrpc.Binding.of_value payload in
          step "  NSM looked %S up in BIND and ran the Sun binding protocol"
            hns_name.name;
          step "  -> ClientBinding: %s" (Format.asprintf "%a" Hrpc.Binding.pp binding);
          (* The returned binding is system-independent: call it. *)
          (match
             Hrpc.Client.call scn.client_stack binding ~procnum:1
               ~sign:(Wire.Idl.signature ~arg:Wire.Idl.T_string ~res:Wire.Idl.T_string)
               (Wire.Value.Str "ping")
           with
          | Ok _ -> step "  call through the imported binding: OK"
          | Error e -> step "  call failed: %s" (Rpc.Control.error_to_string e))
      | Ok None -> step "  service not found"
      | Error e -> step "  NSM failed: %s" (Hns.Errors.to_string e));
      print_newline ();
      print_endline "== Same client code, Courier service named in the Clearinghouse ==";
      let ch_name =
        Hns.Hns_name.make ~context:scn.ch_context ~name:scn.courier_service_name
      in
      step "Import(ServiceName: \"\", HNSName: %S)" (Hns.Hns_name.to_string ch_name);
      (match
         Hns.Client.find_nsm hns ~context:ch_name.context
           ~query_class:Hns.Query_class.hrpc_binding
       with
      | Error e -> step "FindNSM failed: %s" (Hns.Errors.to_string e)
      | Ok r -> (
          step "FindNSM -> name service %S, NSM %S (identical client interface)"
            r.ns_name r.nsm_name;
          match
            Hns.Nsm_intf.call scn.client_stack (Hns.Nsm_intf.Remote r.binding)
              ~payload_ty:Hns.Nsm_intf.binding_payload_ty ~service:"" ~hns_name:ch_name
          with
          | Ok (Some payload) ->
              let binding = Hrpc.Binding.of_value payload in
              step "  NSM consulted the Clearinghouse";
              step "  -> ClientBinding: %s (a Courier service)"
                (Format.asprintf "%a" Hrpc.Binding.pp binding);
              (match
                 Hrpc.Client.call scn.client_stack binding ~procnum:1
                   ~sign:
                     (Wire.Idl.signature ~arg:Wire.Idl.T_string ~res:Wire.Idl.T_string)
                   (Wire.Value.Str "ping")
               with
              | Ok _ -> step "  call through the imported binding: OK"
              | Error e -> step "  call failed: %s" (Rpc.Control.error_to_string e))
          | Ok None -> step "  service not found"
          | Error e -> step "  NSM failed: %s" (Hns.Errors.to_string e)));
      Printf.printf "\n(total virtual time: %.1f ms)\n" (Sim.Engine.time ()))
