(* Mail routing over the HNS: the MailboxLocation query class.

     dune exec examples/mail_routing.exe

   The HCS mail service needs to know which site holds a user's
   mailbox. User names live in whatever name service their home system
   uses; the mail NSMs hide that. This example routes messages for
   users homed in BIND and shows unknown users bouncing — application
   code with no knowledge of the underlying name services. *)

module S = Workload.Scenario

let route hns (scn : S.t) user =
  let name =
    Hns.Hns_name.make ~context:scn.bind_context
      ~name:(Printf.sprintf "%s.users.%s" user scn.zone)
  in
  match
    Hns.Client.resolve hns ~query_class:Hns.Query_class.mailbox_location
      ~payload_ty:Hns.Nsm_intf.text_payload_ty name
  with
  | Ok (Some (Wire.Value.Str location)) ->
      (* location is "mailbox=<host>"; deliver there. *)
      let site =
        match String.index_opt location '=' with
        | Some i -> String.sub location (i + 1) (String.length location - i - 1)
        | None -> location
      in
      Printf.printf "  %-8s -> deliver to %s\n" user site;
      `Delivered site
  | Ok _ ->
      Printf.printf "  %-8s -> bounce (no such user)\n" user;
      `Bounced
  | Error e ->
      Printf.printf "  %-8s -> defer (%s)\n" user (Hns.Errors.to_string e);
      `Deferred

let () =
  let scn = S.build () in
  S.in_sim scn (fun () ->
      let hns = S.new_hns scn ~on:scn.client_stack in
      print_endline "== Routing the outbound queue ==";
      let outcomes = List.map (route hns scn) [ "alice"; "bob"; "carol"; "mallory" ] in
      let delivered =
        List.length (List.filter (function `Delivered _ -> true | _ -> false) outcomes)
      in
      Printf.printf "\ndelivered %d of %d; total virtual time %.1f ms\n" delivered
        (List.length outcomes) (Sim.Engine.time ());
      (* Second pass: the NSM cache makes rerouting to the same users
         nearly free — mail bursts are exactly the locality the cache
         design banks on. *)
      let t0 = Sim.Engine.time () in
      ignore (List.map (route hns scn) [ "alice"; "bob"; "carol" ]);
      Printf.printf "second burst (warm caches): %.1f ms\n" (Sim.Engine.time () -. t0))
