(* Quickstart: bring up a tiny federated world, export a service,
   import it through the HNS, and call it.

     dune exec examples/quickstart.exe

   The scenario builder assembles the full HCS testbed (public BIND,
   the modified meta-BIND, a Clearinghouse, a portmapper, NSM servers)
   with the calibrated 1987 costs; this example plays the role of an
   application developer on one of the client machines. *)

module S = Workload.Scenario

let () =
  print_endline "== HNS quickstart ==";
  (* 1. Build the simulated environment. *)
  let scn = S.build () in
  Printf.printf "testbed up: %d hosts, meta zone %s\n"
    (List.length (Sim.Topology.hosts scn.topo))
    (Dns.Name.to_string Hns.Meta_schema.zone_origin);
  S.in_sim scn (fun () ->
      (* 2. Link an HNS instance into "our process" (the client host),
         exactly as an HCS application would. *)
      let hns = S.new_hns scn ~on:scn.client_stack in

      (* 3. Resolve a host name: query class HostAddress. The context
         tells the HNS which name service is authoritative; we neither
         know nor care that it is BIND. *)
      let name = Hns.Hns_name.make ~context:scn.bind_context ~name:scn.service_host in
      (match
         Hns.Client.resolve hns ~query_class:Hns.Query_class.host_address
           ~payload_ty:Hns.Nsm_intf.host_address_payload_ty name
       with
      | Ok (Some (Wire.Value.Uint ip)) ->
          Printf.printf "resolve %s -> %s (%.1f ms virtual)\n"
            (Hns.Hns_name.to_string name)
            (Transport.Address.ip_to_string ip)
            (Sim.Engine.time ())
      | Ok _ -> print_endline "name not found"
      | Error e -> Printf.printf "error: %s\n" (Hns.Errors.to_string e));

      (* 4. Import: get an HRPC binding for a named service, then call
         it. This is the paper's primary application. *)
      let binding_nsm = S.new_binding_nsm_bind scn ~on:scn.client_stack in
      let env =
        Hns.Import.env ~stack:scn.client_stack ~local_hns:hns
          ~linked_nsms:[ (scn.nsm_binding_bind, Nsm.Binding_nsm_bind.impl binding_nsm) ]
          ()
      in
      (match
         Hns.Import.import env Hns.Import.All_linked ~service:scn.service_name name
       with
      | Error e -> Printf.printf "import failed: %s\n" (Hns.Errors.to_string e)
      | Ok binding -> (
          Printf.printf "imported %S: %s\n" scn.service_name
            (Format.asprintf "%a" Hrpc.Binding.pp binding);
          match
            Hrpc.Client.call scn.client_stack binding ~procnum:1
              ~sign:(Wire.Idl.signature ~arg:Wire.Idl.T_string ~res:Wire.Idl.T_string)
              (Wire.Value.Str "hello from the quickstart")
          with
          | Ok (Wire.Value.Str reply) -> Printf.printf "service replied: %S\n" reply
          | Ok v -> Printf.printf "unexpected reply %s\n" (Wire.Value.to_string v)
          | Error e -> Printf.printf "call failed: %s\n" (Rpc.Control.error_to_string e)));

      (* 5. The cache makes the second import nearly free. *)
      let (), cold_repeat =
        S.timed (fun () ->
            ignore (Hns.Import.import env Hns.Import.All_linked ~service:scn.service_name name))
      in
      Printf.printf "second import with warm caches: %.1f ms virtual\n" cold_repeat);
  print_endline "done."
