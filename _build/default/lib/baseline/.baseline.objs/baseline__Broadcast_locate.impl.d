lib/baseline/broadcast_locate.ml: Hashtbl Hrpc List Rpc Sim String Transport
