lib/baseline/broadcast_locate.mli: Hrpc Rpc Transport
