lib/baseline/localfile.ml: Buffer Char Effect Hrpc List Printf Sim String
