lib/baseline/localfile.mli: Hrpc
