lib/baseline/prefix_table.ml: Broadcast_locate Hrpc List Option String Transport
