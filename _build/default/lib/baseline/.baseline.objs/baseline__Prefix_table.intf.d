lib/baseline/prefix_table.mli: Hrpc Rpc Transport
