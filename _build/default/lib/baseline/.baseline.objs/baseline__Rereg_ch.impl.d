lib/baseline/rereg_ch.ml: Clearinghouse Format Hrpc Rpc Transport
