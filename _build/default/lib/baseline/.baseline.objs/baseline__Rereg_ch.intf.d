lib/baseline/rereg_ch.mli: Clearinghouse Format Hrpc Transport
