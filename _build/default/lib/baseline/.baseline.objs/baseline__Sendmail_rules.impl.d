lib/baseline/sendmail_rules.ml: Buffer Char List Printf String
