lib/baseline/sendmail_rules.mli:
