let port = 137

type interpreter = {
  sock : Transport.Udp.socket;
  names : (string, Hrpc.Binding.t) Hashtbl.t;
  process_ms : float;
  mutable running : bool;
  mutable heard : int;
}

(* Wire format: query "Q<name>", response "R" ^ binding bytes. *)

let start_interpreter stack ?(process_ms = 1.5) names =
  let sock = Transport.Udp.bind stack ~port in
  let t =
    { sock; names = Hashtbl.create 8; process_ms; running = true; heard = 0 }
  in
  List.iter (fun (n, b) -> Hashtbl.replace t.names n b) names;
  Sim.Engine.spawn_child ~name:"v-interpreter" (fun () ->
      while t.running do
        let src, payload = Transport.Udp.recv sock in
        if String.length payload >= 1 && payload.[0] = 'Q' then begin
          t.heard <- t.heard + 1;
          (* every interpreter pays to parse and check the query *)
          Sim.Engine.sleep t.process_ms;
          let name = String.sub payload 1 (String.length payload - 1) in
          match Hashtbl.find_opt t.names name with
          | Some binding ->
              Transport.Udp.sendto sock ~dst:src ("R" ^ Hrpc.Binding.to_bytes binding)
          | None -> ()
        end
      done);
  t

let add_name t name binding = Hashtbl.replace t.names name binding

let stop_interpreter t =
  t.running <- false;
  Transport.Udp.close t.sock

let queries_heard t = t.heard

let locate stack ?(timeout = 500.0) name =
  let sock = Transport.Udp.bind_any stack in
  Transport.Udp.broadcast sock ~port ("Q" ^ name);
  let deadline = Sim.Engine.time () +. timeout in
  let rec wait () =
    let remaining = deadline -. Sim.Engine.time () in
    if remaining <= 0.0 then Ok None
    else
      match Transport.Udp.recv_timeout sock remaining with
      | None -> Ok None
      | Some (_, payload) when String.length payload >= 1 && payload.[0] = 'R' -> (
          match Hrpc.Binding.of_bytes (String.sub payload 1 (String.length payload - 1)) with
          | binding -> Ok (Some binding)
          | exception Invalid_argument m -> Error (Rpc.Control.Protocol_error m))
      | Some _ -> wait ()
  in
  let r = wait () in
  Transport.Udp.close sock;
  r
