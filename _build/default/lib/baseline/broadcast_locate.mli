(** The V-system alternative: decentralized name interpretation by
    broadcast (Cheriton & Mann 1984, discussed in the paper's Section
    4).

    "The alternative of locating the appropriate local name server,
    either through some multicast technique or some form of search
    path, is ... too inefficient in our environment." Here is that
    alternative, measurable: every host runs an interpreter owning
    some names; a lookup broadcasts the query and takes the first
    owner's answer. No central service, no second-party lookup — and
    one packet per host per query. *)

(** Port the interpreters listen on. *)
val port : int

type interpreter

(** Start a host's interpreter owning a set of (name, binding) pairs.
    [process_ms] is charged by every interpreter for every broadcast
    query it hears, owner or not — the cost multicast imposes on
    bystanders. *)
val start_interpreter :
  Transport.Netstack.stack ->
  ?process_ms:float ->
  (string * Hrpc.Binding.t) list ->
  interpreter

val add_name : interpreter -> string -> Hrpc.Binding.t -> unit
val stop_interpreter : interpreter -> unit

(** Queries this interpreter heard (including ones it did not own). *)
val queries_heard : interpreter -> int

(** [locate stack name] broadcasts and waits for the first owner.
    [Ok None] when nobody answered within the timeout. *)
val locate :
  Transport.Netstack.stack ->
  ?timeout:float ->
  string ->
  (Hrpc.Binding.t option, Rpc.Control.error) result
