type t = {
  file_read_ms : float;
  parse_per_entry_ms : float;
  mutable file : string;
}

let create ?(file_read_ms = 0.0) ?(parse_per_entry_ms = 0.0) () =
  { file_read_ms; parse_per_entry_ms; file = "" }

let charge ms =
  if ms > 0.0 then
    try Sim.Engine.sleep ms with Effect.Unhandled _ -> ()

(* One line per entry: service<TAB>host<TAB>hex(binding bytes). *)
let hex s =
  let b = Buffer.create (String.length s * 2) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let unhex s =
  if String.length s mod 2 <> 0 then invalid_arg "Localfile.unhex";
  String.init (String.length s / 2) (fun i ->
      Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))

let entry_line ~service ~host binding =
  Printf.sprintf "%s\t%s\t%s\n" service host (hex (Hrpc.Binding.to_bytes binding))

let parse_line line =
  match String.split_on_char '\t' line with
  | [ service; host; bytes ] -> (
      match Hrpc.Binding.of_bytes (unhex bytes) with
      | exception Invalid_argument _ -> None
      | binding -> Some (service, host, binding))
  | _ -> None

let parse_file t =
  String.split_on_char '\n' t.file
  |> List.filter (fun l -> l <> "")
  |> List.filter_map parse_line

let register t ~service ~host binding =
  let kept =
    parse_file t
    |> List.filter (fun (s, h, _) -> not (String.equal s service && String.equal h host))
  in
  let buf = Buffer.create 1024 in
  List.iter (fun (s, h, b) -> Buffer.add_string buf (entry_line ~service:s ~host:h b)) kept;
  Buffer.add_string buf (entry_line ~service ~host binding);
  t.file <- Buffer.contents buf

let replace_all t entries =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (service, host, binding) -> Buffer.add_string buf (entry_line ~service ~host binding))
    entries;
  t.file <- Buffer.contents buf

let entry_count t = List.length (parse_file t)
let contents t = t.file

let import t ~service ~host =
  charge t.file_read_ms;
  let entries = parse_file t in
  charge (t.parse_per_entry_ms *. float_of_int (List.length entries));
  match
    List.find_opt
      (fun (s, h, _) -> String.equal s service && String.equal h host)
      entries
  with
  | Some (_, _, binding) -> Ok binding
  | None -> Error (Printf.sprintf "no entry for %s@%s" service host)
