(** The interim HRPC binding mechanism: replicated local files.

    "The interim HRPC binding mechanism, used prior to the
    construction of the HNS prototype, was based on information
    reregistered in replicated local files. Binding using this scheme
    took 200 msec."

    Each host holds a flat text file of (service, host) → binding
    entries, pushed out by a reregistration sweep. An import reads and
    parses the file (there is no resident daemon), paying a disk
    charge plus a per-entry parse charge — which is why the scheme
    slows down as the environment grows, one of the reasons it was
    abandoned. Entries also go stale between sweeps: lookups see
    whatever the last push contained. *)

type t

val create : ?file_read_ms:float -> ?parse_per_entry_ms:float -> unit -> t

(** Serialize one entry into the file (a push from the sweep). An
    existing (service, host) entry is replaced. *)
val register : t -> service:string -> host:string -> Hrpc.Binding.t -> unit

(** Replace the whole file, as a reregistration sweep does. *)
val replace_all : t -> (string * string * Hrpc.Binding.t) list -> unit

val entry_count : t -> int

(** The raw file, for inspection. *)
val contents : t -> string

(** Read and parse the file, then return the matching binding.
    Charges the read and parse costs. *)
val import : t -> service:string -> host:string -> (Hrpc.Binding.t, string) result
