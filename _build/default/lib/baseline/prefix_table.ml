type t = {
  stack : Transport.Netstack.stack;
  mutable entries : (string list * Hrpc.Binding.t) list; (* component lists *)
  mutable broadcast_count : int;
}

let create stack = { stack; entries = []; broadcast_count = 0 }

let components path =
  String.split_on_char '/' path |> List.filter (fun c -> c <> "")

let join cs = "/" ^ String.concat "/" cs

let mount t ~prefix binding =
  let cs = components prefix in
  t.entries <-
    (cs, binding) :: List.filter (fun (p, _) -> p <> cs) t.entries

let entry_count t = List.length t.entries

let rec is_prefix p cs =
  match (p, cs) with
  | [], _ -> true
  | _, [] -> false
  | x :: p', y :: cs' -> String.equal x y && is_prefix p' cs'

let lookup_local t path =
  let cs = components path in
  let best =
    List.fold_left
      (fun best (p, binding) ->
        if is_prefix p cs then
          match best with
          | Some (bp, _) when List.length bp >= List.length p -> best
          | _ -> Some (p, binding)
        else best)
      None t.entries
  in
  Option.map (fun (p, binding) -> (join p, binding)) best

let locate t path =
  match lookup_local t path with
  | Some hit -> Ok (Some hit)
  | None -> (
      match components path with
      | [] -> Ok None
      | first :: _ -> (
          (* miss: broadcast for the path's first component *)
          t.broadcast_count <- t.broadcast_count + 1;
          match Broadcast_locate.locate t.stack first with
          | Error _ as e -> e
          | Ok None -> Ok None
          | Ok (Some binding) ->
              let prefix = "/" ^ first in
              mount t ~prefix binding;
              Ok (Some (prefix, binding))))

let broadcasts t = t.broadcast_count
