(** Prefix tables (Welch & Ousterhout 1986) — the "search path"
    alternative to a name service that the paper's Section 2 declines:
    locating data by matching name prefixes in a client-side table,
    falling back to broadcast on a miss.

    Each client holds (prefix → binding) entries, longest match wins;
    a miss broadcasts a locate for the name and caches whatever server
    claims the prefix. The drawbacks the paper alludes to are visible
    in the tests: the table is per-client state that must be learned
    or configured, matching is purely syntactic, and the fallback is
    the broadcast whose cost {!Broadcast_locate} measures. *)

type t

val create : Transport.Netstack.stack -> t

(** Install a static entry ([prefix] is a ['/']-separated path). *)
val mount : t -> prefix:string -> Hrpc.Binding.t -> unit

val entry_count : t -> int

(** Longest-prefix match from the local table only. *)
val lookup_local : t -> string -> (string * Hrpc.Binding.t) option

(** [locate t path] — local table first; on a miss, broadcast a locate
    for the path's first component (interpreters from
    {!Broadcast_locate} answer) and cache the learned prefix.
    [Ok None] when nobody claims it. *)
val locate :
  t -> string -> ((string * Hrpc.Binding.t) option, Rpc.Control.error) result

(** Broadcasts performed (the fallback cost). *)
val broadcasts : t -> int
