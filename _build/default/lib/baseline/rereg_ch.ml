type error = Not_registered | Backend of string

let pp_error ppf = function
  | Not_registered -> Format.pp_print_string ppf "service not registered"
  | Backend m -> Format.fprintf ppf "backend error: %s" m

type t = {
  stack : Transport.Netstack.stack;
  ch_server : Transport.Address.t;
  credentials : Clearinghouse.Ch_proto.credentials;
  domain : string;
  org : string;
}

let create stack ~ch_server ~credentials ~domain ~org () =
  { stack; ch_server; credentials; domain; org }

let with_client t f =
  match
    Clearinghouse.Ch_client.connect t.stack ~server:t.ch_server
      ~credentials:t.credentials
  with
  | exception Transport.Tcp.Connection_refused _ ->
      Error (Backend "clearinghouse unreachable")
  | client ->
      let r = f client in
      Clearinghouse.Ch_client.close client;
      r

let object_of t service =
  Clearinghouse.Ch_name.make ~local:service ~domain:t.domain ~org:t.org

let register t ~service binding =
  with_client t (fun client ->
      match
        Clearinghouse.Ch_client.store_item client (object_of t service)
          ~prop:Clearinghouse.Property.Id.service_binding
          (Hrpc.Binding.to_bytes binding)
      with
      | Ok () -> Ok ()
      | Error e ->
          Error (Backend (Format.asprintf "%a" Clearinghouse.Ch_client.pp_error e)))

let reregister_sweep t entries =
  with_client t (fun client ->
      let copied = ref 0 in
      let rec go = function
        | [] -> Ok !copied
        | (service, binding) :: rest -> (
            match
              Clearinghouse.Ch_client.store_item client (object_of t service)
                ~prop:Clearinghouse.Property.Id.service_binding
                (Hrpc.Binding.to_bytes binding)
            with
            | Ok () ->
                incr copied;
                go rest
            | Error e ->
                Error
                  (Backend (Format.asprintf "%a" Clearinghouse.Ch_client.pp_error e)))
      in
      go entries)

let import t ~service =
  with_client t (fun client ->
      match
        Clearinghouse.Ch_client.retrieve_item client (object_of t service)
          ~prop:Clearinghouse.Property.Id.service_binding
      with
      | Error Clearinghouse.Ch_client.Not_found -> Error Not_registered
      | Error (Clearinghouse.Ch_client.Rpc_error e) ->
          Error (Backend (Rpc.Control.error_to_string e))
      | Ok bytes -> (
          match Hrpc.Binding.of_bytes bytes with
          | exception Invalid_argument m -> Error (Backend m)
          | binding -> Ok binding))
