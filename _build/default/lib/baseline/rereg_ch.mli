(** The reregistration baseline: one name service holds all the data.

    "We should also compare our HNS-based binding timings with a
    scheme in which a name service holds all of the (reregistered)
    data. We implemented such a scheme on top of the Clearinghouse,
    and found that binding took 166 msec."

    Every service's binding is copied into a single Clearinghouse;
    an import is one authenticated Clearinghouse retrieval. The
    continuing cost the paper objects to is visible in
    {!reregister_sweep}: it must be re-run forever, its cost grows
    with the environment, and between sweeps the copies drift from
    the authoritative data. *)

type error = Not_registered | Backend of string

val pp_error : Format.formatter -> error -> unit

type t

val create :
  Transport.Netstack.stack ->
  ch_server:Transport.Address.t ->
  credentials:Clearinghouse.Ch_proto.credentials ->
  domain:string ->
  org:string ->
  unit ->
  t

(** Copy one binding into the Clearinghouse. *)
val register : t -> service:string -> Hrpc.Binding.t -> (unit, error) result

(** Copy a batch (one sweep of the reregistration daemon); returns the
    number copied. Cost grows linearly with the batch. *)
val reregister_sweep :
  t -> (string * Hrpc.Binding.t) list -> (int, error) result

(** One authenticated retrieval. *)
val import : t -> service:string -> (Hrpc.Binding.t, error) result
