type decision = { network : string; site : string; user : string }

(* Addresses and patterns are token sequences; the delimiters
   themselves are tokens, so joining tokens reconstructs the text. *)
type token = string

let tokenize s =
  let out = ref [] and buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      match c with
      | '@' | '!' | '.' | '%' ->
          flush ();
          out := String.make 1 c :: !out
      | c -> Buffer.add_char buf (Char.lowercase_ascii c))
    s;
  flush ();
  List.rev !out

type pat_elt = Lit of token | Wild_plus | Wild_star

let parse_pattern p =
  List.concat_map
    (fun part ->
      match part with
      | "" -> []
      | "$+" -> [ Wild_plus ]
      | "$*" -> [ Wild_star ]
      | lit -> List.map (fun t -> Lit t) (tokenize lit))
    (String.split_on_char ' ' p)

(* Backtracking match; wildcards capture token runs in order. *)
let match_pattern pattern tokens =
  let rec go pat toks captures =
    match (pat, toks) with
    | [], [] -> Some (List.rev captures)
    | Lit l :: pr, t :: tr -> if String.equal l t then go pr tr captures else None
    | Lit _ :: _, [] -> None
    | Wild_plus :: pr, _ -> consume pr toks captures 1
    | Wild_star :: pr, _ -> consume pr toks captures 0
    | [], _ :: _ -> None
  and consume pr toks captures min_take =
    (* shortest-first, like sendmail's $+ *)
    let n = List.length toks in
    let rec try_take k =
      if k > n then None
      else begin
        let taken = List.filteri (fun i _ -> i < k) toks in
        let rest = List.filteri (fun i _ -> i >= k) toks in
        match go pr rest (String.concat "" taken :: captures) with
        | Some _ as hit -> hit
        | None -> try_take (k + 1)
      end
    in
    try_take min_take
  in
  go pattern tokens []

(* "$n" substitution in a template string. *)
let subst template captures =
  let buf = Buffer.create (String.length template) in
  let n = String.length template in
  let rec go i =
    if i >= n then ()
    else if i + 1 < n && template.[i] = '$' && template.[i + 1] >= '1'
            && template.[i + 1] <= '9' then begin
      let idx = Char.code template.[i + 1] - Char.code '1' in
      (match List.nth_opt captures idx with
      | Some cap -> Buffer.add_string buf cap
      | None -> ());
      go (i + 2)
    end
    else begin
      Buffer.add_char buf template.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents buf

type action =
  | Rewrite of string
  | Resolve of { network : string; site : string; user : string }

type rule = { pattern : pat_elt list; action : action }

let rewrite_rule ~pattern ~into = { pattern = parse_pattern pattern; action = Rewrite into }

let resolve_rule ~pattern ~network ~site ~user =
  { pattern = parse_pattern pattern; action = Resolve { network; site; user } }

type t = { rules : rule list }

let create rules = { rules }
let rule_count t = List.length t.rules

let route t address =
  let rec run address iterations =
    if iterations > 16 then Error "rewriting loop"
    else begin
      let tokens = tokenize address in
      if tokens = [] then Error "empty address"
      else begin
        let rec first_match = function
          | [] -> Error (Printf.sprintf "no rule matches %S" address)
          | rule :: rest -> (
              match match_pattern rule.pattern tokens with
              | None -> first_match rest
              | Some captures -> (
                  match rule.action with
                  | Rewrite into -> run (subst into captures) (iterations + 1)
                  | Resolve { network; site; user } ->
                      Ok
                        {
                          network = subst network captures;
                          site = subst site captures;
                          user = subst user captures;
                        }))
        in
        first_match t.rules
      end
    end
  in
  run address 0

let classic () =
  create
    [
      (* bang paths become internet-style before routing *)
      rewrite_rule ~pattern:"$+ ! $+" ~into:"$2@$1.uucp";
      resolve_rule ~pattern:"$+ @ $+ . uucp" ~network:"uucp" ~site:"$2" ~user:"$1";
      resolve_rule ~pattern:"$+ @ $+ . arpa" ~network:"arpanet" ~site:"$2" ~user:"$1";
      resolve_rule ~pattern:"$+ . $+ @ gv" ~network:"grapevine" ~site:"$2" ~user:"$1";
      (* default: treat anything else as local internet *)
      resolve_rule ~pattern:"$+ @ $+" ~network:"internet" ~site:"$2" ~user:"$1";
    ]
