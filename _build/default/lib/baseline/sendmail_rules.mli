(** The sendmail alternative: rewriting rules over name syntax.

    Section 4: "Sendmail uses rewriting rules to describe how to parse
    heterogeneous mail names. ... First, sendmail centralizes the
    understanding of mail naming in a single component (which is
    replicated on each host) ... Second, sendmail depends on being
    able to discern naming semantics based on the syntactic structure
    of names."

    A miniature of that machinery: ordered rules whose patterns match
    address {e syntax} and rewrite toward a (network, mailbox-site)
    decision. Enough to route classic forms —

    {v
    user@host.uucp      -> uucp relay
    host!user           -> uucp bang path
    user@host.arpa      -> arpanet
    user.registry@grape -> grapevine
    v}

    — and enough to exhibit both drawbacks: every host's ruleset must
    be updated when a network type arrives, and syntactically
    ambiguous names route on their spelling, not their semantics. *)

type decision = { network : string; site : string; user : string }

(** A rule: match an address shape, produce a decision or a rewrite.
    Patterns are token sequences; ["$1"]..["$9"] capture. *)
type rule

(** [rewrite_rule ~pattern ~into] — on match, rewrite and re-run the
    ruleset (at most 16 iterations, like sendmail's loop guard). *)
val rewrite_rule : pattern:string -> into:string -> rule

(** [resolve_rule ~pattern ~network ~site ~user] — on match, route. *)
val resolve_rule : pattern:string -> network:string -> site:string -> user:string -> rule

type t

(** Build a ruleset; order matters, first match wins. *)
val create : rule list -> t

val rule_count : t -> int

(** Route one address. [Error] is an unparsable address. *)
val route : t -> string -> (decision, string) result

(** The classic 1987 ruleset used by tests and benches. *)
val classic : unit -> t
