lib/clearinghouse/ch_client.ml: Ch_name Ch_proto Format List Rpc Wire
