lib/clearinghouse/ch_client.mli: Ch_name Ch_proto Format Rpc Transport
