lib/clearinghouse/ch_db.ml: Ch_name Hashtbl List Property String
