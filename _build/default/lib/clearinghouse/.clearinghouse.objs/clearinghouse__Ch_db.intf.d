lib/clearinghouse/ch_db.mli: Ch_name Property
