lib/clearinghouse/ch_name.ml: Format Hashtbl Printf Stdlib String Wire
