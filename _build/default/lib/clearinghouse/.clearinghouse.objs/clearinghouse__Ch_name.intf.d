lib/clearinghouse/ch_name.mli: Format Wire
