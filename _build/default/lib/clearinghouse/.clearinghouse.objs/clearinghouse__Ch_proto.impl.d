lib/clearinghouse/ch_proto.ml: Ch_name Wire
