lib/clearinghouse/ch_proto.mli: Ch_name Wire
