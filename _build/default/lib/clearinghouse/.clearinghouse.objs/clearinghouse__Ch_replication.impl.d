lib/clearinghouse/ch_replication.ml: Ch_db Ch_server List Sim
