lib/clearinghouse/ch_replication.mli: Ch_server
