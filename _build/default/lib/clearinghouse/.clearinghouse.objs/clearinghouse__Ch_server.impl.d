lib/clearinghouse/ch_server.ml: Ch_db Ch_name Ch_proto List Property Rpc Sim String Transport Wire
