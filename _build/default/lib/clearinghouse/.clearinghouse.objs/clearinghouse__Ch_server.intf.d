lib/clearinghouse/ch_server.mli: Ch_db Ch_name Property Transport
