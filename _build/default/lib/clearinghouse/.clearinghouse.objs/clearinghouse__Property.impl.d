lib/clearinghouse/property.ml: Ch_name Format List String
