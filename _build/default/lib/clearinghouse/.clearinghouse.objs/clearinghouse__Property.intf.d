lib/clearinghouse/property.mli: Ch_name Format
