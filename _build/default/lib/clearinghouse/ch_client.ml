type error = Not_found | Rpc_error of Rpc.Control.error

let pp_error ppf = function
  | Not_found -> Format.pp_print_string ppf "not found"
  | Rpc_error e -> Rpc.Control.pp_error ppf e

type t = { session : Rpc.Courier_rpc.session; credentials : Ch_proto.credentials }

let connect stack ~server ~credentials =
  { session = Rpc.Courier_rpc.connect stack server; credentials }

let close t = Rpc.Courier_rpc.close t.session

let call t procnum sign fields =
  let arg =
    Wire.Value.Struct
      (("cred", Ch_proto.credentials_to_value t.credentials) :: fields)
  in
  match
    Rpc.Courier_rpc.call t.session ~prog:Ch_proto.program ~vers:Ch_proto.version
      ~procnum ~sign arg
  with
  | Error e -> Error (Rpc_error e)
  | Ok v -> Ok v

let create_object t name =
  match
    call t Ch_proto.proc_create_object Ch_proto.create_object_sign
      [ ("name", Ch_name.to_value name) ]
  with
  | Error _ as e -> e
  | Ok v -> Ok (Wire.Value.get_bool v)

let delete_object t name =
  match
    call t Ch_proto.proc_delete_object Ch_proto.delete_object_sign
      [ ("name", Ch_name.to_value name) ]
  with
  | Error _ as e -> e
  | Ok v -> Ok (Wire.Value.get_bool v)

let store_item t name ~prop item =
  match
    call t Ch_proto.proc_store_item Ch_proto.store_item_sign
      [
        ("name", Ch_name.to_value name);
        ("prop", Wire.Value.int prop);
        ("item", Wire.Value.Opaque item);
      ]
  with
  | Error _ as e -> e
  | Ok _ -> Ok ()

let retrieve_item t name ~prop =
  match
    call t Ch_proto.proc_retrieve_item Ch_proto.retrieve_item_sign
      [ ("name", Ch_name.to_value name); ("prop", Wire.Value.int prop) ]
  with
  | Error _ as e -> e
  | Ok (Wire.Value.Union (0, Wire.Value.Opaque s)) -> Ok s
  | Ok _ -> Error Not_found

let add_member t name ~prop member =
  match
    call t Ch_proto.proc_add_member Ch_proto.add_member_sign
      [
        ("name", Ch_name.to_value name);
        ("prop", Wire.Value.int prop);
        ("member", Ch_name.to_value member);
      ]
  with
  | Error _ as e -> e
  | Ok _ -> Ok ()

let retrieve_members t name ~prop =
  match
    call t Ch_proto.proc_retrieve_members Ch_proto.retrieve_members_sign
      [ ("name", Ch_name.to_value name); ("prop", Wire.Value.int prop) ]
  with
  | Error _ as e -> e
  | Ok v -> Ok (List.map Ch_name.of_value (Wire.Value.get_array v))

let list_objects t ~domain ~org =
  match
    call t Ch_proto.proc_list_objects Ch_proto.list_objects_sign
      [ ("domain", Wire.Value.Str domain); ("org", Wire.Value.Str org) ]
  with
  | Error _ as e -> e
  | Ok v -> Ok (List.map Wire.Value.get_str (Wire.Value.get_array v))
