(** Typed Clearinghouse client over a Courier session. *)

type error = Not_found | Rpc_error of Rpc.Control.error

val pp_error : Format.formatter -> error -> unit

type t

(** [connect stack ~server ~credentials] opens a Courier session. *)
val connect :
  Transport.Netstack.stack ->
  server:Transport.Address.t ->
  credentials:Ch_proto.credentials ->
  t

val close : t -> unit
val create_object : t -> Ch_name.t -> (bool, error) result
val delete_object : t -> Ch_name.t -> (bool, error) result
val store_item : t -> Ch_name.t -> prop:int -> string -> (unit, error) result
val retrieve_item : t -> Ch_name.t -> prop:int -> (string, error) result
val add_member : t -> Ch_name.t -> prop:int -> Ch_name.t -> (unit, error) result
val retrieve_members : t -> Ch_name.t -> prop:int -> (Ch_name.t list, error) result
val list_objects : t -> domain:string -> org:string -> (string list, error) result
