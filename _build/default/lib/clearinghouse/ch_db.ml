module Tbl = Hashtbl.Make (Ch_name)

type t = { tbl : Property.t list ref Tbl.t }

let create () = { tbl = Tbl.create 64 }

let create_object t name =
  if Tbl.mem t.tbl name then false
  else begin
    Tbl.replace t.tbl name (ref []);
    true
  end

let delete_object t name =
  let existed = Tbl.mem t.tbl name in
  Tbl.remove t.tbl name;
  existed

let exists t name = Tbl.mem t.tbl name

let store t name (p : Property.t) =
  match Tbl.find_opt t.tbl name with
  | None -> Tbl.replace t.tbl name (ref [ p ])
  | Some cell ->
      cell := List.filter (fun (q : Property.t) -> q.prop <> p.prop) !cell @ [ p ]

let retrieve t name prop =
  match Tbl.find_opt t.tbl name with
  | None -> None
  | Some cell ->
      List.find_map
        (fun (q : Property.t) -> if q.prop = prop then Some q.value else None)
        !cell

let add_member t name prop member =
  match retrieve t name prop with
  | None -> store t name (Property.group prop [ member ])
  | Some (Property.Group ms) ->
      if not (List.exists (Ch_name.equal member) ms) then
        store t name (Property.group prop (ms @ [ member ]))
  | Some (Property.Item _) ->
      invalid_arg "Ch_db.add_member: property holds an item, not a group"

let members t name prop =
  match retrieve t name prop with
  | Some (Property.Group ms) -> ms
  | Some (Property.Item _) | None -> []

let list_objects t ~domain ~org =
  let domain = String.lowercase_ascii domain and org = String.lowercase_ascii org in
  Tbl.fold
    (fun (name : Ch_name.t) _ acc ->
      if String.equal name.domain domain && String.equal name.org org then
        name.local :: acc
      else acc)
    t.tbl []
  |> List.sort String.compare

let object_count t = Tbl.length t.tbl
