(** The Clearinghouse's object database: named objects and their
    property sets. Purely in-memory state; the disk-access cost the
    paper attributes to the real Clearinghouse is charged by the
    server, not here. *)

type t

val create : unit -> t

(** [create_object t name] is [false] when the object exists. *)
val create_object : t -> Ch_name.t -> bool

val delete_object : t -> Ch_name.t -> bool
val exists : t -> Ch_name.t -> bool

(** Replaces any previous value of the property. Creates the object
    implicitly when absent (matching Clearinghouse AddItemProperty
    tolerance). *)
val store : t -> Ch_name.t -> Property.t -> unit

val retrieve : t -> Ch_name.t -> int -> Property.value option

(** Adds to a group property, creating it as an empty group first if
    needed. Raises [Invalid_argument] when the property is an item. *)
val add_member : t -> Ch_name.t -> int -> Ch_name.t -> unit

val members : t -> Ch_name.t -> int -> Ch_name.t list

(** Local parts of all objects in a (domain, org), sorted. *)
val list_objects : t -> domain:string -> org:string -> string list

val object_count : t -> int
