type t = { local : string; domain : string; org : string }

let norm = String.lowercase_ascii

let make ~local ~domain ~org =
  if local = "" || domain = "" || org = "" then
    invalid_arg "Ch_name.make: empty part";
  { local = norm local; domain = norm domain; org = norm org }

let of_string s =
  match String.split_on_char ':' s with
  | [ local; domain; org ] -> make ~local ~domain ~org
  | _ -> invalid_arg (Printf.sprintf "Ch_name.of_string: %S" s)

let to_string t = Printf.sprintf "%s:%s:%s" t.local t.domain t.org
let equal a b = a = b
let compare = Stdlib.compare
let hash = Hashtbl.hash
let same_domain a b = a.domain = b.domain && a.org = b.org
let pp ppf t = Format.pp_print_string ppf (to_string t)

let idl_ty =
  Wire.Idl.T_struct
    [ ("local", Wire.Idl.T_string); ("domain", T_string); ("org", T_string) ]

let to_value t =
  Wire.Value.Struct
    [ ("local", Wire.Value.Str t.local); ("domain", Str t.domain); ("org", Str t.org) ]

let of_value v =
  let f name = Wire.Value.get_str (Wire.Value.field v name) in
  make ~local:(f "local") ~domain:(f "domain") ~org:(f "org")
