(** Clearinghouse three-part names: [local:domain:organization]
    (Oppen & Dalal 1983).

    Comparison is case-insensitive, as in the original. The XDE
    machines in the HCS testbed name everything this way; the HNS maps
    a context onto a (domain, organization) pair and uses the local
    part as the individual name. *)

type t = { local : string; domain : string; org : string }

val make : local:string -> domain:string -> org:string -> t

(** Parse ["printer:cs:uw"]. Raises [Invalid_argument] unless exactly
    three nonempty colon-separated parts are present. *)
val of_string : string -> t

val to_string : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** Same domain and organization. *)
val same_domain : t -> t -> bool

val pp : Format.formatter -> t -> unit

(** Wire shape shared with the server: a three-string struct. *)
val idl_ty : Wire.Idl.ty

val to_value : t -> Wire.Value.t

(** Raises [Invalid_argument] on a value of the wrong shape. *)
val of_value : Wire.Value.t -> t
