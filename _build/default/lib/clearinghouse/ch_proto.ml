let program = 2
let version = 3
let proc_create_object = 2
let proc_delete_object = 3
let proc_store_item = 4
let proc_retrieve_item = 5
let proc_add_member = 6
let proc_retrieve_members = 7
let proc_list_objects = 8

type credentials = { user : Ch_name.t; password : string }

let credentials_ty =
  Wire.Idl.T_struct [ ("user", Ch_name.idl_ty); ("password", Wire.Idl.T_string) ]

let credentials_to_value c =
  Wire.Value.Struct
    [ ("user", Ch_name.to_value c.user); ("password", Wire.Value.Str c.password) ]

let credentials_of_value v =
  {
    user = Ch_name.of_value (Wire.Value.field v "user");
    password = Wire.Value.get_str (Wire.Value.field v "password");
  }

let with_cred fields = Wire.Idl.T_struct (("cred", credentials_ty) :: fields)

let create_object_sign =
  Wire.Idl.signature ~arg:(with_cred [ ("name", Ch_name.idl_ty) ]) ~res:Wire.Idl.T_bool

let delete_object_sign = create_object_sign

let store_item_sign =
  Wire.Idl.signature
    ~arg:
      (with_cred
         [ ("name", Ch_name.idl_ty); ("prop", Wire.Idl.T_int); ("item", Wire.Idl.T_opaque) ])
    ~res:Wire.Idl.T_bool

(* Result CHOICE: 0 = found item, 1 = no such property/object. *)
let retrieve_item_sign =
  Wire.Idl.signature
    ~arg:(with_cred [ ("name", Ch_name.idl_ty); ("prop", Wire.Idl.T_int) ])
    ~res:(Wire.Idl.T_union ([ (0, Wire.Idl.T_opaque); (1, Wire.Idl.T_void) ], None))

let add_member_sign =
  Wire.Idl.signature
    ~arg:
      (with_cred
         [
           ("name", Ch_name.idl_ty);
           ("prop", Wire.Idl.T_int);
           ("member", Ch_name.idl_ty);
         ])
    ~res:Wire.Idl.T_bool

let retrieve_members_sign =
  Wire.Idl.signature
    ~arg:(with_cred [ ("name", Ch_name.idl_ty); ("prop", Wire.Idl.T_int) ])
    ~res:(Wire.Idl.T_array Ch_name.idl_ty)

let list_objects_sign =
  Wire.Idl.signature
    ~arg:(with_cred [ ("domain", Wire.Idl.T_string); ("org", Wire.Idl.T_string) ])
    ~res:(Wire.Idl.T_array Wire.Idl.T_string)
