(** The Clearinghouse Courier program: numbers and IDL signatures
    shared by {!Ch_server} and {!Ch_client}. *)

(** Courier program 2, version 3. *)
val program : int

val version : int

val proc_create_object : int
val proc_delete_object : int
val proc_store_item : int
val proc_retrieve_item : int
val proc_add_member : int
val proc_retrieve_members : int
val proc_list_objects : int

(** Credentials accompany every request; the Clearinghouse
    authenticates each access (the paper's explanation for its
    156 ms lookups versus BIND's 27 ms). *)
type credentials = { user : Ch_name.t; password : string }

val credentials_ty : Wire.Idl.ty
val credentials_to_value : credentials -> Wire.Value.t
val credentials_of_value : Wire.Value.t -> credentials

val create_object_sign : Wire.Idl.signature
val delete_object_sign : Wire.Idl.signature
val store_item_sign : Wire.Idl.signature
val retrieve_item_sign : Wire.Idl.signature
val add_member_sign : Wire.Idl.signature
val retrieve_members_sign : Wire.Idl.signature
val list_objects_sign : Wire.Idl.signature
