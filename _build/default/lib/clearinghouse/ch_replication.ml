type t = { propagation_ms : float; mutable active : bool; mutable count : int }

let apply db (event : Ch_server.update_event) =
  match event with
  | Ch_server.Object_created name -> ignore (Ch_db.create_object db name)
  | Ch_server.Object_deleted name -> ignore (Ch_db.delete_object db name)
  | Ch_server.Property_stored (name, prop) -> Ch_db.store db name prop
  | Ch_server.Member_added (name, prop, member) -> (
      match Ch_db.add_member db name prop member with
      | () -> ()
      | exception Invalid_argument _ -> ())

let connect ~propagation_ms servers =
  let t = { propagation_ms; active = true; count = 0 } in
  List.iter
    (fun source ->
      Ch_server.on_update source (fun event ->
          if t.active then
            List.iter
              (fun peer ->
                if peer != source then begin
                  t.count <- t.count + 1;
                  (* The observer runs inside the serving process, so
                     background propagation is a sibling process. *)
                  Sim.Engine.spawn_child ~name:"ch-antientropy" (fun () ->
                      Sim.Engine.sleep t.propagation_ms;
                      apply (Ch_server.db peer) event)
                end)
              servers))
    servers;
  t

let propagated t = t.count
let disconnect t = t.active <- false
