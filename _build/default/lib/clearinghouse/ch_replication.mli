(** Clearinghouse replication: lazy propagation between replicas.

    The Clearinghouse is "a decentralized agent for locating named
    objects": each domain is served by several replicas that exchange
    updates in the background, Grapevine-style. A client may read any
    replica and write any replica; writes applied at one replica reach
    the others after a propagation delay.

    Anti-entropy is last-writer-wins per event with {e no global
    order}: two replicas written concurrently can remain divergent
    until the next overwrite, the classic Grapevine anomaly — the HNS
    inherits it ("the source of our cached data also uses this
    mechanism" philosophy applies to the Xerox world too). The test
    suite demonstrates the anomaly rather than hiding it. *)

type t

(** [connect ~propagation_ms servers] wires mutation observers between
    all pairs. Updates applied through a replica's Courier interface
    propagate to every peer after [propagation_ms]. *)
val connect : propagation_ms:float -> Ch_server.t list -> t

(** Updates shipped so far (events times peers). *)
val propagated : t -> int

(** Stop propagating (pending updates still arrive). *)
val disconnect : t -> unit
