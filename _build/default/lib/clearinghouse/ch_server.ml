type update_event =
  | Object_created of Ch_name.t
  | Object_deleted of Ch_name.t
  | Property_stored of Ch_name.t * Property.t
  | Member_added of Ch_name.t * int * Ch_name.t

type t = {
  server : Rpc.Courier_rpc.server;
  database : Ch_db.t;
  users : (Ch_name.t * string) list ref;
  auth_ms : float;
  disk_ms : float;
  mutable access_count : int;
  mutable observers : (update_event -> unit) list;
}

let addr t = Rpc.Courier_rpc.addr t.server
let on_update t f = t.observers <- f :: t.observers
let notify t event = List.iter (fun f -> f event) (List.rev t.observers)
let db t = t.database
let add_user t user ~password = t.users := (user, password) :: !(t.users)
let accesses t = t.access_count

(* Authenticate, charge the per-access costs, and run the body. *)
let access t cred_value body =
  t.access_count <- t.access_count + 1;
  let cred = Ch_proto.credentials_of_value cred_value in
  if t.auth_ms > 0.0 then Sim.Engine.sleep t.auth_ms;
  let known =
    !(t.users) = []
    || List.exists
         (fun (u, p) -> Ch_name.equal u cred.Ch_proto.user && String.equal p cred.password)
         !(t.users)
  in
  if not known then failwith "Clearinghouse: authentication failed"
  else begin
    if t.disk_ms > 0.0 then Sim.Engine.sleep t.disk_ms;
    body ()
  end

let create stack ?(port = Transport.Address.Well_known.clearinghouse)
    ?(auth_ms = 0.0) ?(disk_ms = 0.0) () =
  let server = Rpc.Courier_rpc.create stack ~port () in
  let t =
    {
      server;
      database = Ch_db.create ();
      users = ref [];
      auth_ms;
      disk_ms;
      access_count = 0;
      observers = [];
    }
  in
  let reg procnum sign impl =
    Rpc.Courier_rpc.register server ~prog:Ch_proto.program ~vers:Ch_proto.version
      ~procnum ~sign impl
  in
  let field = Wire.Value.field in
  reg Ch_proto.proc_create_object Ch_proto.create_object_sign (fun v ->
      access t (field v "cred") (fun () ->
          let name = Ch_name.of_value (field v "name") in
          let created = Ch_db.create_object t.database name in
          if created then notify t (Object_created name);
          Wire.Value.Bool created));
  reg Ch_proto.proc_delete_object Ch_proto.delete_object_sign (fun v ->
      access t (field v "cred") (fun () ->
          let name = Ch_name.of_value (field v "name") in
          let deleted = Ch_db.delete_object t.database name in
          if deleted then notify t (Object_deleted name);
          Wire.Value.Bool deleted));
  reg Ch_proto.proc_store_item Ch_proto.store_item_sign (fun v ->
      access t (field v "cred") (fun () ->
          let name = Ch_name.of_value (field v "name") in
          let prop = Wire.Value.get_int (field v "prop") in
          let item =
            match field v "item" with
            | Wire.Value.Opaque s -> s
            | other -> Wire.Value.get_str other
          in
          Ch_db.store t.database name (Property.item prop item);
          notify t (Property_stored (name, Property.item prop item));
          Wire.Value.Bool true));
  reg Ch_proto.proc_retrieve_item Ch_proto.retrieve_item_sign (fun v ->
      access t (field v "cred") (fun () ->
          let name = Ch_name.of_value (field v "name") in
          let prop = Wire.Value.get_int (field v "prop") in
          match Ch_db.retrieve t.database name prop with
          | Some (Property.Item s) -> Wire.Value.Union (0, Wire.Value.Opaque s)
          | Some (Property.Group _) | None -> Wire.Value.Union (1, Wire.Value.Void)));
  reg Ch_proto.proc_add_member Ch_proto.add_member_sign (fun v ->
      access t (field v "cred") (fun () ->
          let name = Ch_name.of_value (field v "name") in
          let prop = Wire.Value.get_int (field v "prop") in
          let member = Ch_name.of_value (field v "member") in
          match Ch_db.add_member t.database name prop member with
          | () ->
              notify t (Member_added (name, prop, member));
              Wire.Value.Bool true
          | exception Invalid_argument _ -> Wire.Value.Bool false));
  reg Ch_proto.proc_retrieve_members Ch_proto.retrieve_members_sign (fun v ->
      access t (field v "cred") (fun () ->
          let name = Ch_name.of_value (field v "name") in
          let prop = Wire.Value.get_int (field v "prop") in
          Wire.Value.Array
            (List.map Ch_name.to_value (Ch_db.members t.database name prop))));
  reg Ch_proto.proc_list_objects Ch_proto.list_objects_sign (fun v ->
      access t (field v "cred") (fun () ->
          let domain = Wire.Value.get_str (field v "domain") in
          let org = Wire.Value.get_str (field v "org") in
          Wire.Value.Array
            (List.map
               (fun s -> Wire.Value.Str s)
               (Ch_db.list_objects t.database ~domain ~org))));
  t

let start t = Rpc.Courier_rpc.start t.server
let stop t = Rpc.Courier_rpc.stop t.server
