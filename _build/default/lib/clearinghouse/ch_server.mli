(** The Clearinghouse server: a Courier RPC program over the object
    database, with per-access authentication and disk charges.

    The paper (footnote 5): "Clearinghouse accesses are slow because
    each access is authenticated, and virtually all data is retrieved
    from disk. In contrast, BIND does no authentication and keeps all
    its information in primary memory." [auth_ms] and [disk_ms] model
    exactly those two terms; with the calibrated defaults a remote
    name-to-address lookup costs about 156 ms end to end. *)

(** Mutations, as seen by the replication machinery. *)
type update_event =
  | Object_created of Ch_name.t
  | Object_deleted of Ch_name.t
  | Property_stored of Ch_name.t * Property.t
  | Member_added of Ch_name.t * int * Ch_name.t

type t

val create :
  Transport.Netstack.stack ->
  ?port:int ->
  ?auth_ms:float ->
  ?disk_ms:float ->
  unit ->
  t

val addr : t -> Transport.Address.t
val db : t -> Ch_db.t

(** Register a principal; calls with unknown principals abort. *)
val add_user : t -> Ch_name.t -> password:string -> unit

val start : t -> unit
val stop : t -> unit
val accesses : t -> int

(** Register a mutation observer (replication hooks). Called inside
    the serving process after the mutation applies locally. *)
val on_update : t -> (update_event -> unit) -> unit
