type value = Item of string | Group of Ch_name.t list

type t = { prop : int; value : value }

module Id = struct
  let address = 4
  let service_binding = 10
  let mailboxes = 31
  let members = 3
  let description = 1
end

let item prop s = { prop; value = Item s }
let group prop names = { prop; value = Group names }

let equal a b =
  a.prop = b.prop
  &&
  match (a.value, b.value) with
  | Item x, Item y -> String.equal x y
  | Group x, Group y -> List.equal Ch_name.equal x y
  | (Item _ | Group _), _ -> false

let pp ppf t =
  match t.value with
  | Item s -> Format.fprintf ppf "prop %d: item <%d bytes>" t.prop (String.length s)
  | Group names ->
      Format.fprintf ppf "prop %d: group [%s]" t.prop
        (String.concat "; " (List.map Ch_name.to_string names))
