(** Clearinghouse properties: each named object carries a set of
    (property-number, value) pairs, where a value is either an
    uninterpreted {e item} or a {e group} of names. *)

type value = Item of string | Group of Ch_name.t list

type t = { prop : int; value : value }

(** Well-known property numbers used in this repository (the numeric
    values follow the Clearinghouse entry-format conventions). *)
module Id : sig
  (** network address of a host or service *)
  val address : int

  (** marshalled binding info for a service *)
  val service_binding : int

  val mailboxes : int
  val members : int
  val description : int
end

val item : int -> string -> t
val group : int -> Ch_name.t list -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
