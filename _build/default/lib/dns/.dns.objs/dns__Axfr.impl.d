lib/dns/axfr.ml: Format Msg Rr Tcp Transport
