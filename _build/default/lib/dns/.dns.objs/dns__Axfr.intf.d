lib/dns/axfr.mli: Format Name Rr Transport
