lib/dns/db.ml: Hashtbl List Name Rr
