lib/dns/db.mli: Name Rr
