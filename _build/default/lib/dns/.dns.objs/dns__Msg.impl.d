lib/dns/msg.ml: Format Hashtbl List Name Printf Rr String Wire
