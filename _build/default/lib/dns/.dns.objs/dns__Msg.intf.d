lib/dns/msg.mli: Format Name Rr
