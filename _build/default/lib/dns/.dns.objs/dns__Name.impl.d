lib/dns/name.ml: Format Hashtbl List Printf String
