lib/dns/resolver.ml: Float Format Hashtbl Int32 List Msg Name Rpc Rr Sim Transport
