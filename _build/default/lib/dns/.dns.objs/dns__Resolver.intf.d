lib/dns/resolver.mli: Format Msg Name Rpc Rr Transport
