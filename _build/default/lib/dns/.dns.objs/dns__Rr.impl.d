lib/dns/rr.ml: Format Int32 List Name Printf String Transport
