lib/dns/secondary.ml: Axfr Db Format Int32 List Msg Name Printf Rpc Rr Server Sim Transport Zone
