lib/dns/secondary.mli: Name Server Transport
