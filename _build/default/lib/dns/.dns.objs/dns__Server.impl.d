lib/dns/server.ml: Address Db Int32 List Msg Name Netstack Printf Rpc Rr Sim Tcp Transport Zone
