lib/dns/server.mli: Msg Transport Zone
