lib/dns/update.ml: Format Msg Rpc
