lib/dns/update.mli: Format Msg Name Rpc Rr Transport
