lib/dns/zone.ml: Db Int32 List Name Printf Rr
