lib/dns/zone.mli: Db Name Rr
