open Transport

type error = Refused | Transfer_failed of string

let pp_error ppf = function
  | Refused -> Format.pp_print_string ppf "transfer refused"
  | Transfer_failed m -> Format.fprintf ppf "transfer failed: %s" m

let id_counter = ref 0x4000

let fetch stack ~server ~zone =
  incr id_counter;
  match Tcp.connect stack server with
  | exception Tcp.Connection_refused _ -> Error (Transfer_failed "connection refused")
  | conn ->
      let finish r =
        Tcp.close conn;
        r
      in
      let request =
        { (Msg.query ~id:!id_counter zone Rr.T_axfr) with Msg.recursion_desired = false }
      in
      Tcp.send conn (Msg.encode request);
      (match Tcp.recv_timeout conn 10_000.0 with
      | exception Tcp.Connection_closed -> finish (Error (Transfer_failed "connection closed"))
      | None -> finish (Error (Transfer_failed "timeout"))
      | Some payload -> (
          match Msg.decode payload with
          | exception Msg.Bad_message m -> finish (Error (Transfer_failed m))
          | reply -> (
              match reply.rcode with
              | Msg.No_error -> finish (Ok reply.answers)
              | Msg.Refused -> finish (Error Refused)
              | rc -> finish (Error (Transfer_failed (Msg.rcode_to_string rc))))))
