(** Zone-transfer client.

    The paper preloads the HNS cache with "the BIND zone transfer
    mechanism, used by BIND secondary servers to request data
    transfers from primary servers" — about 2 KB of meta-naming
    information at a measured cost of roughly 390 ms. This module is
    that mechanism: an AXFR query over TCP returning the zone's full
    record set. *)

type error = Refused | Transfer_failed of string

val pp_error : Format.formatter -> error -> unit

(** [fetch stack ~server ~zone] transfers the zone. The first record
    returned is the zone's SOA. *)
val fetch :
  Transport.Netstack.stack ->
  server:Transport.Address.t ->
  zone:Name.t ->
  (Rr.t list, error) result
