module Tbl = Hashtbl.Make (struct
  type t = Name.t

  let equal = Name.equal
  let hash = Name.hash
end)

type t = { tbl : Rr.t list ref Tbl.t }

let create () = { tbl = Tbl.create 64 }

let add t (rr : Rr.t) =
  match Tbl.find_opt t.tbl rr.name with
  | None -> Tbl.replace t.tbl rr.name (ref [ rr ])
  | Some cell ->
      let without =
        List.filter (fun (r : Rr.t) -> not (Rr.equal_rdata r.rdata rr.rdata)) !cell
      in
      cell := without @ [ rr ]

let lookup t name qtype =
  match Tbl.find_opt t.tbl name with
  | None -> []
  | Some cell ->
      List.filter (fun (r : Rr.t) -> Rr.matches ~qtype (Rr.rdata_type r.rdata)) !cell

let has_name t name = Tbl.mem t.tbl name

let remove_rrset t name rtype =
  match Tbl.find_opt t.tbl name with
  | None -> ()
  | Some cell ->
      let kept =
        List.filter (fun (r : Rr.t) -> Rr.rdata_type r.rdata <> rtype) !cell
      in
      if kept = [] then Tbl.remove t.tbl name else cell := kept

let remove_rr t name rdata =
  match Tbl.find_opt t.tbl name with
  | None -> ()
  | Some cell ->
      let kept =
        List.filter (fun (r : Rr.t) -> not (Rr.equal_rdata r.rdata rdata)) !cell
      in
      if kept = [] then Tbl.remove t.tbl name else cell := kept

let remove_name t name = Tbl.remove t.tbl name
let all t = Tbl.fold (fun _ cell acc -> !cell @ acc) t.tbl []
let names t = Tbl.fold (fun name _ acc -> name :: acc) t.tbl []
let count t = Tbl.fold (fun _ cell acc -> acc + List.length !cell) t.tbl 0
let clear t = Tbl.reset t.tbl
