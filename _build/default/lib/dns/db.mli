(** Mutable resource-record store with rrset semantics: the data a
    zone is authoritative for.

    Records are grouped by owner name; duplicates (same name and
    rdata) are kept single. All operations used by the dynamic-update
    path of the modified BIND are provided. *)

type t

val create : unit -> t

(** Idempotent on exact (name, rdata) duplicates, which refresh TTL. *)
val add : t -> Rr.t -> unit

(** All records at the name with the given concrete type
    ([Rr.T_any] returns everything at the name). *)
val lookup : t -> Name.t -> Rr.rtype -> Rr.t list

val has_name : t -> Name.t -> bool
val remove_rrset : t -> Name.t -> Rr.rtype -> unit
val remove_rr : t -> Name.t -> Rr.rdata -> unit
val remove_name : t -> Name.t -> unit

(** Every record, grouped by name in no particular order. *)
val all : t -> Rr.t list

val names : t -> Name.t list
val count : t -> int
val clear : t -> unit
