type t = string list (* lowercase labels, most-specific first *)

let root = []

let fold_label l = String.lowercase_ascii l

let validate_label l =
  let n = String.length l in
  if n = 0 then invalid_arg "Name: empty label";
  if n > 63 then invalid_arg (Printf.sprintf "Name: label %S exceeds 63 bytes" l)

let validate_total labels =
  let total = List.fold_left (fun acc l -> acc + String.length l + 1) 0 labels in
  if total > 255 then invalid_arg "Name: name exceeds 255 bytes"

let of_labels labels =
  List.iter validate_label labels;
  validate_total labels;
  List.map fold_label labels

let of_string s =
  let s =
    let n = String.length s in
    if n > 0 && s.[n - 1] = '.' then String.sub s 0 (n - 1) else s
  in
  if s = "" then root else of_labels (String.split_on_char '.' s)

let to_string = function [] -> "." | labels -> String.concat "." labels
let labels t = t
let equal = List.equal String.equal
let compare = List.compare String.compare
let hash t = Hashtbl.hash t
let is_root t = t = []
let label_count = List.length

let prepend label t =
  validate_label label;
  let t' = fold_label label :: t in
  validate_total t';
  t'

let parent = function [] -> None | _ :: rest -> Some rest

let is_subdomain ~of_ t =
  let rec suffix xs n =
    (* drop the first n labels *)
    if n = 0 then xs else match xs with [] -> [] | _ :: rest -> suffix rest (n - 1)
  in
  let extra = List.length t - List.length of_ in
  extra >= 0 && equal (suffix t extra) of_

let append a b = a @ b
let pp ppf t = Format.pp_print_string ppf (to_string t)
