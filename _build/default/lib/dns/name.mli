(** Domain names.

    A name is a sequence of labels, most-specific first, as in
    ["fiji"; "cs"; "washington"; "edu"]. Comparison is
    case-insensitive (names are folded to lowercase on construction,
    per DNS semantics). The root is the empty sequence. *)

type t

val root : t

(** [of_string "fiji.cs.washington.edu"] — a trailing dot is
    accepted and ignored. Raises [Invalid_argument] on empty labels
    ("a..b"), labels over 63 bytes, or names over 255 bytes. *)
val of_string : string -> t

val to_string : t -> string

(** Labels, most-specific first. *)
val labels : t -> string list

val of_labels : string list -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val is_root : t -> bool
val label_count : t -> int

(** [prepend label t] makes [label.t]. *)
val prepend : string -> t -> t

(** [parent t] drops the most-specific label; [None] for the root. *)
val parent : t -> t option

(** [is_subdomain ~of_ t]: is [t] equal to or below [of_]? *)
val is_subdomain : of_:t -> t -> bool

(** [append a b] concatenates: [append (of_string "fiji") suffix]. *)
val append : t -> t -> t

val pp : Format.formatter -> t -> unit
