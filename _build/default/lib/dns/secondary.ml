type t = {
  server : Server.t;
  primary : Transport.Address.t;
  zone_name : Name.t;
  refresh_ms : float;
  zone : Zone.t; (* our replica, registered with [server] *)
  mutable running : bool;
  mutable transfer_count : int;
  mutable fresh_count : int;
  mutable next_id : int;
}

let split_transfer zone_name records =
  match records with
  | { Rr.rdata = Rr.Soa soa; name; _ } :: data when Name.equal name zone_name ->
      Ok (soa, data)
  | _ -> Error "transfer did not begin with the zone's SOA"

let fetch t =
  match Axfr.fetch (Server.stack t.server) ~server:t.primary ~zone:t.zone_name with
  | Error e -> Error (Format.asprintf "%a" Axfr.pp_error e)
  | Ok records -> split_transfer t.zone_name records

(* Replace the replica's contents with a fresh transfer. *)
let adopt t (soa, data) =
  let db = Zone.db t.zone in
  Db.clear db;
  List.iter (Db.add db) data;
  Zone.set_soa t.zone soa;
  t.transfer_count <- t.transfer_count + 1

(* Probe the primary's serial with a plain SOA query. *)
let primary_serial t =
  t.next_id <- (t.next_id + 1) land 0xFFFF;
  let request = Msg.encode (Msg.query ~id:t.next_id t.zone_name Rr.T_soa) in
  match Rpc.Rawrpc.call (Server.stack t.server) ~dst:t.primary request with
  | Error _ -> None
  | Ok payload -> (
      match Msg.decode payload with
      | exception Msg.Bad_message _ -> None
      | reply ->
          List.find_map
            (fun (rr : Rr.t) ->
              match rr.rdata with Rr.Soa soa -> Some soa.Rr.serial | _ -> None)
            reply.answers)

let refresh_once t =
  match primary_serial t with
  | None -> () (* primary unreachable: keep serving the last copy *)
  | Some serial ->
      if Int32.compare serial (Zone.serial t.zone) > 0 then begin
        match fetch t with
        | Ok transfer -> adopt t transfer
        | Error _ -> () (* transient failure; retry next cycle *)
      end
      else t.fresh_count <- t.fresh_count + 1

let attach server ~primary ~zone ?refresh_ms () =
  let t =
    {
      server;
      primary;
      zone_name = zone;
      refresh_ms = 0.0;
      zone = Zone.simple ~origin:zone [];
      running = true;
      transfer_count = 0;
      fresh_count = 0;
      next_id = 0x5A00;
    }
  in
  (match fetch t with
  | Error m -> failwith ("Secondary.attach: initial transfer failed: " ^ m)
  | Ok transfer -> adopt t transfer);
  let refresh_ms =
    match refresh_ms with
    | Some ms -> ms
    | None -> Int32.to_float (Zone.soa t.zone).Rr.refresh *. 1000.0
  in
  let t = { t with refresh_ms } in
  Server.add_zone server t.zone;
  Sim.Engine.spawn_child
    ~name:(Printf.sprintf "secondary:%s" (Name.to_string zone))
    (fun () ->
      while t.running do
        Sim.Engine.sleep t.refresh_ms;
        if t.running then refresh_once t
      done);
  t

let serial t = Zone.serial t.zone
let transfers t = t.transfer_count
let fresh_checks t = t.fresh_count
let detach t = t.running <- false
