(** Secondary (replica) zone service.

    "While the HNS is logically a single, centralized facility, its
    implementation must be distributed and replicated for the usual
    reasons of performance, availability, and scalability." BIND's
    replication is the secondary server: it polls the primary's SOA
    serial on the zone's refresh interval and pulls a full zone
    transfer when the serial has advanced.

    [attach] adds a secondary copy of a zone to an existing (usually
    otherwise-empty) {!Server} and returns a handle; the refresh
    process runs as a simulated process until {!detach}. *)

type t

(** [attach server ~primary ~zone ()] — fetches the initial copy
    synchronously (must run inside a simulated process), then polls.
    [refresh_ms] overrides the zone's own SOA refresh interval.
    Raises [Failure] if the initial transfer fails. *)
val attach :
  Server.t ->
  primary:Transport.Address.t ->
  zone:Name.t ->
  ?refresh_ms:float ->
  unit ->
  t

(** The local replica's serial. *)
val serial : t -> int32

(** Completed transfers (1 after attach). *)
val transfers : t -> int

(** Serial probes that found the replica current. *)
val fresh_checks : t -> int

(** Stop refreshing (the replica keeps serving its last copy). *)
val detach : t -> unit
