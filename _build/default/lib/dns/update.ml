type error =
  | Refused
  | Not_zone
  | Server_error of Msg.rcode
  | Rpc_error of Rpc.Control.error

let pp_error ppf = function
  | Refused -> Format.pp_print_string ppf "update refused"
  | Not_zone -> Format.pp_print_string ppf "update outside zone"
  | Server_error rc -> Format.fprintf ppf "server error %s" (Msg.rcode_to_string rc)
  | Rpc_error e -> Rpc.Control.pp_error ppf e

let id_counter = ref 0

let send stack ~server ~zone ops =
  incr id_counter;
  let request = Msg.update_request ~id:!id_counter ~zone ops in
  match Rpc.Rawrpc.call stack ~dst:server (Msg.encode request) with
  | Error e -> Error (Rpc_error e)
  | Ok payload -> (
      match Msg.decode payload with
      | exception Msg.Bad_message m -> Error (Rpc_error (Rpc.Control.Protocol_error m))
      | reply -> (
          match reply.rcode with
          | Msg.No_error -> Ok ()
          | Msg.Refused -> Error Refused
          | Msg.Not_zone -> Error Not_zone
          | rc -> Error (Server_error rc)))

let add_rr stack ~server ~zone rr = send stack ~server ~zone [ Msg.Add rr ]
