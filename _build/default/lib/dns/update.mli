(** Dynamic-update client for the modified BIND.

    This is the interface existing applications keep using in the
    direct-access story: they update their local name service with
    native operations, and the change is immediately visible through
    the HNS with no reregistration. *)

type error = Refused | Not_zone | Server_error of Msg.rcode | Rpc_error of Rpc.Control.error

val pp_error : Format.formatter -> error -> unit

(** [send stack ~server ~zone ops] performs one UPDATE transaction. *)
val send :
  Transport.Netstack.stack ->
  server:Transport.Address.t ->
  zone:Name.t ->
  Msg.update_op list ->
  (unit, error) result

(** Shorthand for a single-record add. *)
val add_rr :
  Transport.Netstack.stack ->
  server:Transport.Address.t ->
  zone:Name.t ->
  Rr.t ->
  (unit, error) result
