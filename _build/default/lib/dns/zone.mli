(** A zone: an origin, its SOA, and the records below it.

    The HNS meta-BIND serves a single flat zone ([hns-meta.]); the
    public BIND serves ordinary host zones ([cs.washington.edu.]). *)

type t

(** [create ~origin ~soa records]. Every record must lie within the
    zone (raises [Invalid_argument] otherwise). An SOA record at the
    origin is synthesized from [soa]. *)
val create : origin:Name.t -> soa:Rr.soa -> Rr.t list -> t

(** A zone with a boilerplate SOA, for tests and simple setups. *)
val simple : origin:Name.t -> Rr.t list -> t

val origin : t -> Name.t
val soa : t -> Rr.soa
val db : t -> Db.t
val serial : t -> int32

(** Called after every dynamic update. *)
val bump_serial : t -> unit

(** Adopt a primary's SOA verbatim (zone replication). *)
val set_soa : t -> Rr.soa -> unit

val in_zone : t -> Name.t -> bool

(** Records for a zone transfer: SOA first, then all data records. *)
val axfr_records : t -> Rr.t list

(** Total record count including the SOA. *)
val count : t -> int
