lib/hns/admin.ml: Hrpc Meta_client Meta_schema Transport Wire
