lib/hns/admin.mli: Errors Hrpc Meta_client Meta_schema Query_class
