lib/hns/agent.mli: Client Errors Hns_name Hrpc Nsm_intf Query_class Transport Wire
