lib/hns/cache.ml: Effect Hashtbl Sim String Wire
