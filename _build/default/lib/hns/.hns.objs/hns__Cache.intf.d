lib/hns/cache.mli: Wire
