lib/hns/client.ml: Cache Find_nsm Hns_name Meta_client Nsm_intf Transport
