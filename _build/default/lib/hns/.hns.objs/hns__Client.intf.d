lib/hns/client.mli: Cache Errors Find_nsm Hns_name Meta_client Nsm_intf Query_class Transport Wire
