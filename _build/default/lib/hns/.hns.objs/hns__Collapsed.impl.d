lib/hns/collapsed.ml: Dns Errors Find_nsm Hrpc List Meta_client Meta_schema Query_class Wire
