lib/hns/collapsed.mli: Dns Errors Find_nsm Hrpc Meta_client Query_class
