lib/hns/errors.ml: Format Hns_name Rpc
