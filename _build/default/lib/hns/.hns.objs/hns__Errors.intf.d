lib/hns/errors.mli: Format Hns_name Rpc
