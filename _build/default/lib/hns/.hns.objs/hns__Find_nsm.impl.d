lib/hns/find_nsm.ml: Errors Hashtbl Hns_name Hrpc Meta_client Meta_schema Nsm_intf Printf Query_class Transport Wire
