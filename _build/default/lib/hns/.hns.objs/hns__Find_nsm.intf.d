lib/hns/find_nsm.mli: Errors Hrpc Meta_client Nsm_intf Query_class Transport
