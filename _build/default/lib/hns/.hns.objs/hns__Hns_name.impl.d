lib/hns/hns_name.ml: Format Printf String Wire
