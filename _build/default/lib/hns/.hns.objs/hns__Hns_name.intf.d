lib/hns/hns_name.mli: Format Wire
