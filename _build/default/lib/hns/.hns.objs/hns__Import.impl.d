lib/hns/import.ml: Agent Client Errors Find_nsm Hns_name Hrpc List Nsm_intf Query_class Transport
