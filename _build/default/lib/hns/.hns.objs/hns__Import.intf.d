lib/hns/import.mli: Client Errors Hns_name Hrpc Nsm_intf Transport
