lib/hns/meta_client.ml: Cache Dns Effect Errors Format Hrpc Int32 List Meta_schema Printf Rpc Sim Transport Wire
