lib/hns/meta_client.mli: Cache Dns Errors Transport Wire
