lib/hns/meta_schema.ml: Dns Hrpc Printf Query_class String Wire
