lib/hns/meta_schema.mli: Dns Hrpc Query_class Wire
