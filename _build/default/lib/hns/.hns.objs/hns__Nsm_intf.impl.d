lib/hns/nsm_intf.ml: Errors Hns_name Hrpc Query_class Wire
