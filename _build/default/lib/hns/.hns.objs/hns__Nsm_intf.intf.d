lib/hns/nsm_intf.mli: Errors Hns_name Hrpc Query_class Transport Wire
