lib/hns/query_class.ml: Format Printf String
