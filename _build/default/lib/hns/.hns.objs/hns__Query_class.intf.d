lib/hns/query_class.mli: Format
