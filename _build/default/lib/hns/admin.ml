let register_name_service meta ~name info =
  Meta_schema.validate_simple_name ~what:"Admin.register_name_service" name;
  Meta_client.store meta ~key:(Meta_schema.ns_info_key name) ~ty:Meta_schema.ns_info_ty
    (Meta_schema.ns_info_to_value info)

let register_context meta ~context ~ns =
  Meta_schema.validate_simple_name ~what:"Admin.register_context ns" ns;
  Meta_client.store meta ~key:(Meta_schema.context_key context)
    ~ty:Meta_schema.string_ty (Wire.Value.Str ns)

let register_nsm meta ~name ~ns ~query_class info =
  Meta_schema.validate_simple_name ~what:"Admin.register_nsm" name;
  match
    Meta_client.store meta
      ~key:(Meta_schema.nsm_name_key ~ns ~query_class)
      ~ty:Meta_schema.string_ty (Wire.Value.Str name)
  with
  | Error _ as e -> e
  | Ok () ->
      Meta_client.store meta
        ~key:(Meta_schema.nsm_binding_key name)
        ~ty:Meta_schema.nsm_info_ty
        (Meta_schema.nsm_info_to_value info)

let remove_context meta ~context =
  Meta_client.remove meta ~key:(Meta_schema.context_key context)

let remove_nsm meta ~name ~ns ~query_class =
  match Meta_client.remove meta ~key:(Meta_schema.nsm_name_key ~ns ~query_class) with
  | Error _ as e -> e
  | Ok () -> Meta_client.remove meta ~key:(Meta_schema.nsm_binding_key name)

let register_nsm_server meta ~name ~ns ~query_class ~host ~host_context
    (binding : Hrpc.Binding.t) =
  register_nsm meta ~name ~ns ~query_class
    {
      Meta_schema.nsm_host = host;
      nsm_host_context = host_context;
      nsm_port = binding.Hrpc.Binding.server.Transport.Address.port;
      nsm_prog = binding.Hrpc.Binding.prog;
      nsm_vers = binding.Hrpc.Binding.vers;
      nsm_suite = binding.Hrpc.Binding.suite;
    }
