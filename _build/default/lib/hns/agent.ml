let agent_prog = 390200
let agent_vers = 1
let proc_find_nsm = 1
let proc_import = 2

let find_nsm_arg_ty =
  Wire.Idl.T_struct
    [ ("context", Wire.Idl.T_string); ("query_class", Wire.Idl.T_string) ]

let find_nsm_payload_ty =
  Wire.Idl.T_struct [ ("nsm_name", Wire.Idl.T_string); ("binding", Hrpc.Binding.idl_ty) ]

let result_union payload = Wire.Idl.T_union ([ (0, payload); (1, Wire.Idl.T_string) ], None)

let find_nsm_sign =
  Wire.Idl.signature ~arg:find_nsm_arg_ty ~res:(result_union find_nsm_payload_ty)

let import_arg_ty =
  Wire.Idl.T_struct [ ("service", Wire.Idl.T_string); ("hns_name", Hns_name.idl_ty) ]

let import_sign =
  Wire.Idl.signature ~arg:import_arg_ty ~res:(result_union Hrpc.Binding.idl_ty)

type t = { server : Hrpc.Server.t }

let ok payload = Wire.Value.Union (0, payload)
let err e = Wire.Value.Union (1, Wire.Value.Str (Errors.to_string e))

let create hns ?(linked_nsms = []) ?port ?(suite = Hrpc.Component.sunrpc_suite)
    ?service_overhead_ms () =
  let server =
    Hrpc.Server.create (Client.stack hns) ~suite ?port ?service_overhead_ms
      ~prog:agent_prog ~vers:agent_vers ()
  in
  Hrpc.Server.register server ~procnum:proc_find_nsm ~sign:find_nsm_sign (fun v ->
      let context = Wire.Value.get_str (Wire.Value.field v "context") in
      let query_class = Wire.Value.get_str (Wire.Value.field v "query_class") in
      match Client.find_nsm hns ~context ~query_class with
      | Error e -> err e
      | Ok resolved ->
          ok
            (Wire.Value.Struct
               [
                 ("nsm_name", Wire.Value.Str resolved.Find_nsm.nsm_name);
                 ("binding", Hrpc.Binding.to_value resolved.Find_nsm.binding);
               ]));
  Hrpc.Server.register server ~procnum:proc_import ~sign:import_sign (fun v ->
      let service = Wire.Value.get_str (Wire.Value.field v "service") in
      let hns_name = Hns_name.of_value (Wire.Value.field v "hns_name") in
      match
        Client.find_nsm hns ~context:hns_name.Hns_name.context
          ~query_class:Query_class.hrpc_binding
      with
      | Error e -> err e
      | Ok resolved -> (
          let access =
            match List.assoc_opt resolved.Find_nsm.nsm_name linked_nsms with
            | Some impl -> Nsm_intf.Linked impl
            | None -> Nsm_intf.Remote resolved.Find_nsm.binding
          in
          match
            Nsm_intf.call (Client.stack hns) access
              ~payload_ty:Nsm_intf.binding_payload_ty ~service ~hns_name
          with
          | Error e -> err e
          | Ok None -> err (Errors.Name_not_found hns_name)
          | Ok (Some payload) -> ok payload));
  { server }

let binding t = Hrpc.Server.binding t.server
let start t = Hrpc.Server.start t.server
let stop t = Hrpc.Server.stop t.server

let interpret decode_payload = function
  | Wire.Value.Union (0, payload) -> (
      match decode_payload payload with
      | exception Invalid_argument m -> Error (Errors.Meta_error m)
      | v -> Ok v)
  | Wire.Value.Union (1, Wire.Value.Str m) -> Error (Errors.Nsm_error m)
  | v -> Error (Errors.Meta_error ("unexpected agent result " ^ Wire.Value.to_string v))

let remote_find_nsm stack ~agent ~context ~query_class =
  let arg =
    Wire.Value.Struct
      [ ("context", Wire.Value.Str context); ("query_class", Str query_class) ]
  in
  match Hrpc.Client.call stack agent ~procnum:proc_find_nsm ~sign:find_nsm_sign arg with
  | Error e -> Error (Errors.Rpc_error e)
  | Ok v ->
      interpret
        (fun payload ->
          ( Wire.Value.get_str (Wire.Value.field payload "nsm_name"),
            Hrpc.Binding.of_value (Wire.Value.field payload "binding") ))
        v

let remote_import stack ~agent ~service hns_name =
  let arg =
    Wire.Value.Struct
      [ ("service", Wire.Value.Str service); ("hns_name", Hns_name.to_value hns_name) ]
  in
  match Hrpc.Client.call stack agent ~procnum:proc_import ~sign:import_sign arg with
  | Error e -> Error (Errors.Rpc_error e)
  | Ok v -> interpret Hrpc.Binding.of_value v
