(** The HNS agent: a process that hosts an HNS instance (and
    optionally NSM instances) and serves them remotely over HRPC.

    This realizes the remote-HNS colocation arrangements of Table 3.1:
    row 2's combined agent ("a single process remote from the client
    acted as the client's agent, making local calls to the HNS and
    then to the NSM"), and rows 3/5's standalone remote HNS serving
    FindNSM. Caching is "more likely to be effective in long-lived
    remote servers than in locally linked copies" — the agent is that
    long-lived server. *)

val agent_prog : int
val agent_vers : int

(** proc 1: FindNSM(context, query class) → (nsm name, binding). *)
val proc_find_nsm : int

val find_nsm_sign : Wire.Idl.signature

(** proc 2: Import(service, hns name) → service binding
    (the agent calls the NSM itself, locally when linked). *)
val proc_import : int

val import_sign : Wire.Idl.signature

type t

(** [create hns ?linked_nsms ?port ~suite ()] — [linked_nsms] maps NSM
    names to instances the agent holds locally; unlisted NSMs are
    called remotely through their bindings. *)
val create :
  Client.t ->
  ?linked_nsms:(string * Nsm_intf.impl) list ->
  ?port:int ->
  ?suite:Hrpc.Component.protocol_suite ->
  ?service_overhead_ms:float ->
  unit ->
  t

val binding : t -> Hrpc.Binding.t
val start : t -> unit
val stop : t -> unit

(** {1 Client-side wrappers} *)

val remote_find_nsm :
  Transport.Netstack.stack ->
  agent:Hrpc.Binding.t ->
  context:string ->
  query_class:Query_class.t ->
  (string * Hrpc.Binding.t, Errors.t) result

val remote_import :
  Transport.Netstack.stack ->
  agent:Hrpc.Binding.t ->
  service:string ->
  Hns_name.t ->
  (Hrpc.Binding.t, Errors.t) result
