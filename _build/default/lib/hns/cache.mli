(** The HNS's specialized cache.

    "We use a specialized caching scheme based on locality of
    reference to query class and name system type to provide
    acceptable performance." Keys are strings built from the mapping
    being cached (context, query class, NSM name, host name);
    invalidation is a time-to-live against the virtual clock, matching
    BIND's own mechanism — "it would not make sense to use a more
    sophisticated scheme because the source of our cached data (BIND)
    also uses this mechanism".

    The cache has two storage modes reproducing the paper's
    marshalling discovery (Table 3.2):

    - {!Marshalled}: entries hold the wire bytes; every hit re-runs
      the stub-compiler-style demarshalling (for real, via
      {!Wire.Generic_marshal}) and charges its calibrated virtual-time
      cost — 11–26 ms per hit depending on record count.
    - {!Demarshalled}: entries hold decoded values; a hit charges only
      the small cache-management cost (0.8–1.2 ms).

    Misses additionally charge a management cost on insert. All
    charges go to the virtual clock; a cache used outside a simulated
    process (engine not running) charges nothing. *)

type mode = Marshalled | Demarshalled

type t

(** [hit_overhead_ms] is charged on every hit; demarshalled-mode hits
    additionally charge [hit_per_node_ms] per node of the stored value
    (cache management scales slightly with entry size), while
    marshalled-mode hits charge the [generated_cost] of really
    re-demarshalling the entry. *)
val create :
  mode:mode ->
  ?generated_cost:Wire.Generic_marshal.cost_model ->
  ?hit_overhead_ms:float ->
  ?hit_per_node_ms:float ->
  ?insert_overhead_ms:float ->
  ?default_ttl_ms:float ->
  unit ->
  t

val mode : t -> mode

(** [find t ~key ~ty] returns the cached value, charging the
    mode-dependent hit cost, or [None] (charging nothing — miss costs
    are the remote lookup the caller now performs). Expired entries
    are removed and count as misses. *)
val find : t -> key:string -> ty:Wire.Idl.ty -> Wire.Value.t option

(** [insert t ~key ~ty ?ttl_ms v] stores [v] (marshalling it when in
    [Marshalled] mode) and charges the insert cost. *)
val insert : t -> key:string -> ty:Wire.Idl.ty -> ?ttl_ms:float -> Wire.Value.t -> unit

val flush : t -> unit
val hits : t -> int
val misses : t -> int
val size : t -> int

(** Sum of marshalled entry sizes (0 in demarshalled mode) — the
    "about 2KB" the paper preloads. *)
val stored_bytes : t -> int

(** Hit fraction so far; [0.] before any access. *)
val hit_ratio : t -> float
