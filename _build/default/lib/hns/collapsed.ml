let key ~context ~query_class =
  Query_class.validate query_class;
  Dns.Name.append
    (Dns.Name.of_labels [ query_class ])
    (Dns.Name.append (Dns.Name.of_string context)
       (Dns.Name.append (Dns.Name.of_string "fastbind") Meta_schema.zone_origin))

let record_ty =
  Wire.Idl.T_struct [ ("nsm_name", Wire.Idl.T_string); ("binding", Hrpc.Binding.idl_ty) ]

let register meta ~context ~query_class ~nsm_name binding =
  Meta_client.store meta ~key:(key ~context ~query_class) ~ty:record_ty
    (Wire.Value.Struct
       [
         ("nsm_name", Wire.Value.Str nsm_name);
         ("binding", Hrpc.Binding.to_value binding);
       ])

let materialize finder ~contexts ~query_classes =
  let meta = Find_nsm.meta finder in
  let written = ref 0 in
  let rec go = function
    | [] -> Ok !written
    | (context, query_class) :: rest -> (
        match Find_nsm.find finder ~context ~query_class with
        | Error (Errors.No_nsm _) | Error (Errors.Unknown_context _) ->
            go rest (* nothing to collapse for this pair *)
        | Error _ as e -> e
        | Ok resolved -> (
            match
              register meta ~context ~query_class
                ~nsm_name:resolved.Find_nsm.nsm_name resolved.Find_nsm.binding
            with
            | Error _ as e -> e
            | Ok () ->
                incr written;
                go rest))
  in
  go (List.concat_map (fun c -> List.map (fun q -> (c, q)) query_classes) contexts)

let find meta ~context ~query_class =
  match Meta_client.lookup meta ~key:(key ~context ~query_class) ~ty:record_ty with
  | Error _ as e -> e
  | Ok None -> Error (Errors.Unknown_context context)
  | Ok (Some v) -> (
      match
        ( Wire.Value.get_str (Wire.Value.field v "nsm_name"),
          Hrpc.Binding.of_value (Wire.Value.field v "binding") )
      with
      | pair -> Ok pair
      | exception Invalid_argument m -> Error (Errors.Meta_error m))
