(** Ablation: the collapsed FindNSM the paper rejected.

    "While we recognize that the lookups made by FindNSM could be
    collapsed into fewer calls (e.g., by mapping the Context and Query
    Class directly to the Binding for the NSM), we chose to keep these
    mappings separate, because this allows more flexibility and
    requires less redundant information."

    This module implements the rejected design so the trade-off can be
    measured (see the [ablation-collapsed] bench): one meta record per
    (context, query class) holding a {e complete} binding — address
    included. Cold lookups are one remote mapping instead of six, but:

    - the records are denormalized: a name service shared by [k]
      contexts stores its NSM bindings [k] times over;
    - they embed network addresses, so moving an NSM (or its host
      changing address) invalidates every copy — reintroducing exactly
      the reregistration/staleness problem direct access avoids. *)

(** Key of the collapsed record:
    [<qclass>.<context...>.fastbind.hns-meta]. *)
val key : context:string -> query_class:Query_class.t -> Dns.Name.t

(** Write the collapsed record (denormalizing [nsm_name] + binding). *)
val register :
  Meta_client.t ->
  context:string ->
  query_class:Query_class.t ->
  nsm_name:string ->
  Hrpc.Binding.t ->
  (unit, Errors.t) result

(** Precompute collapsed records for every (context, query class) the
    separate-mapping FindNSM can resolve; returns how many were
    written. This is the "reregistration sweep" the collapsed design
    needs whenever anything moves. *)
val materialize :
  Find_nsm.t ->
  contexts:string list ->
  query_classes:Query_class.t list ->
  (int, Errors.t) result

(** The collapsed FindNSM: a single data mapping. *)
val find :
  Meta_client.t ->
  context:string ->
  query_class:Query_class.t ->
  (string * Hrpc.Binding.t, Errors.t) result
