type t =
  | Unknown_context of string
  | No_nsm of { ns : string; query_class : string }
  | Unknown_nsm of string
  | Name_not_found of Hns_name.t
  | Meta_error of string
  | Nsm_error of string
  | Rpc_error of Rpc.Control.error

let pp ppf = function
  | Unknown_context c -> Format.fprintf ppf "unknown context %S" c
  | No_nsm { ns; query_class } ->
      Format.fprintf ppf "no NSM for name service %S, query class %S" ns query_class
  | Unknown_nsm n -> Format.fprintf ppf "no binding registered for NSM %S" n
  | Name_not_found n -> Format.fprintf ppf "name not found: %a" Hns_name.pp n
  | Meta_error m -> Format.fprintf ppf "meta-naming error: %s" m
  | Nsm_error m -> Format.fprintf ppf "NSM error: %s" m
  | Rpc_error e -> Rpc.Control.pp_error ppf e

let to_string t = Format.asprintf "%a" pp t

exception Hns_failure of t

let get_ok = function Ok v -> v | Error e -> raise (Hns_failure e)
