(** The HNS error vocabulary. *)

type t =
  | Unknown_context of string
      (** no context record in the meta-naming database *)
  | No_nsm of { ns : string; query_class : string }
      (** no NSM registered for this (name service, query class) *)
  | Unknown_nsm of string
      (** an NSM name with no binding record *)
  | Name_not_found of Hns_name.t
      (** the underlying name service has no such name *)
  | Meta_error of string
      (** malformed meta-naming information *)
  | Nsm_error of string
      (** NSM-reported failure *)
  | Rpc_error of Rpc.Control.error

val pp : Format.formatter -> t -> unit
val to_string : t -> string

exception Hns_failure of t

val get_ok : ('a, t) result -> 'a
