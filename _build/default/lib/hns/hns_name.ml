type t = { context : string; name : string }

let make ~context ~name =
  if context = "" then invalid_arg "Hns_name.make: empty context";
  if name = "" then invalid_arg "Hns_name.make: empty individual name";
  if String.contains context '!' then
    invalid_arg "Hns_name.make: context may not contain '!'";
  { context; name }

let of_string s =
  match String.index_opt s '!' with
  | None -> invalid_arg (Printf.sprintf "Hns_name.of_string: no '!' in %S" s)
  | Some i ->
      make
        ~context:(String.sub s 0 i)
        ~name:(String.sub s (i + 1) (String.length s - i - 1))

let to_string t = t.context ^ "!" ^ t.name
let equal a b = String.equal a.context b.context && String.equal a.name b.name

let compare a b =
  match String.compare a.context b.context with
  | 0 -> String.compare a.name b.name
  | c -> c

let pp ppf t = Format.pp_print_string ppf (to_string t)

let idl_ty =
  Wire.Idl.T_struct [ ("context", Wire.Idl.T_string); ("name", Wire.Idl.T_string) ]

let to_value t =
  Wire.Value.Struct [ ("context", Wire.Value.Str t.context); ("name", Str t.name) ]

let of_value v =
  make
    ~context:(Wire.Value.get_str (Wire.Value.field v "context"))
    ~name:(Wire.Value.get_str (Wire.Value.field v "name"))
