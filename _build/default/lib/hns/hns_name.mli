(** HNS names: a context plus an individual name.

    "HNS names contain two parts, a context and an individual name.
    Roughly, the context identifies the local name service in which
    the data can be found while the individual name determines the
    name of the object in that local service."

    The individual name is an arbitrary string — deliberately: the
    global name space "does not conform to any simple syntax rules"
    because each subsystem keeps its own syntax, and the mapping from
    local name to individual name must merely be a function (unique),
    which guarantees no conflicts when previously separate systems are
    combined.

    The printed form is [context!individual-name]; ['!'] may not
    appear in a context (it may in an individual name). *)

type t = { context : string; name : string }

(** Raises [Invalid_argument] on an empty context, an empty name, or
    ['!'] in the context. *)
val make : context:string -> name:string -> t

(** Parse [ctx!name]. The first ['!'] separates. *)
val of_string : string -> t

val to_string : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

(** Wire shape used by NSM interfaces. *)
val idl_ty : Wire.Idl.ty

val to_value : t -> Wire.Value.t
val of_value : Wire.Value.t -> t
