type t = string

let hrpc_binding = "HRPCBinding"
let host_address = "HostAddress"
let file_location = "FileLocation"
let mailbox_location = "MailboxLocation"

let validate t =
  if t = "" then invalid_arg "Query_class.validate: empty";
  String.iter
    (fun c ->
      if c = '.' || c = '!' then
        invalid_arg (Printf.sprintf "Query_class.validate: %S contains %C" t c))
    t

let equal = String.equal
let pp = Format.pp_print_string
