(** Query classes.

    A query class names the kind of data a query returns ("the type of
    data to be returned"); every NSM for one query class implements
    the identical client interface, so the client can call whichever
    NSM the HNS designates without knowing the underlying name
    service. Query classes are open-ended — adding one requires no
    change to the HNS — so they are plain strings with some well-known
    constants. *)

type t = string

(** HRPC binding information for a named service — the paper's first
    application. *)
val hrpc_binding : t

(** Host name to network address — the query class FindNSM itself
    recurses on. *)
val host_address : t

(** Location of a file in the filing network service. *)
val file_location : t

(** Mailbox location for the mail network service. *)
val mailbox_location : t

(** Query classes must be nonempty and free of ['.'] and ['!'] (they
    are embedded in meta-BIND names and HNS names). *)
val validate : t -> unit

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
