lib/hrpc/bind_protocol.ml: Binding Clearinghouse Component Format Rpc Transport
