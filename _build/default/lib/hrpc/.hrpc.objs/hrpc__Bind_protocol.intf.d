lib/hrpc/bind_protocol.mli: Binding Clearinghouse Component Format Rpc Transport
