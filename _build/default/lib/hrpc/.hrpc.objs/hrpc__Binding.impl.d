lib/hrpc/binding.ml: Component Format Int32 Printf Transport Wire
