lib/hrpc/binding.mli: Component Format Transport Wire
