lib/hrpc/client.ml: Binding Component Int32 Rpc Sim Tcp Transport Udp Wire
