lib/hrpc/client.mli: Binding Rpc Transport Wire
