lib/hrpc/component.ml: Format Printf Wire
