lib/hrpc/component.mli: Format Wire
