lib/hrpc/conn_cache.ml: Binding Client Component Int32 Map Rpc Sim Transport Wire
