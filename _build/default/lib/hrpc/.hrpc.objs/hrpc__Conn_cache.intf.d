lib/hrpc/conn_cache.mli: Binding Rpc Transport Wire
