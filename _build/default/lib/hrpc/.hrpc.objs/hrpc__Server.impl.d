lib/hrpc/server.ml: Address Binding Component Hashtbl Int32 Netstack Printf Rpc Sim Tcp Transport Udp Wire
