lib/hrpc/server.mli: Binding Component Transport Wire
