lib/hrpc/stub.ml: Client Rpc Wire
