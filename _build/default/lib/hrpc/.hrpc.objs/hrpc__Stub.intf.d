lib/hrpc/stub.mli: Binding Rpc Transport Wire
