(** The per-system binding protocols an NSM executes.

    "Insular clients/servers have established binding protocols that
    they execute, and they expect their peers to execute the
    corresponding parts of the protocol." Each constructor below is
    one such protocol; {!resolve} runs it and yields a
    system-independent {!Binding.t}. *)

type t =
  | Static of Binding.t
      (** binding already known (compiled in, or read from a file) *)
  | Sun_portmapper of {
      host : Transport.Address.ip;
      prog : int;
      vers : int;
      suite : Component.protocol_suite;
    }
      (** ask the host's portmapper for the program's port *)
  | Clearinghouse_binding of {
      ch : Transport.Address.t;
      service : Clearinghouse.Ch_name.t;
      credentials : Clearinghouse.Ch_proto.credentials;
    }
      (** fetch a serialized binding from the service object's
          binding property *)

val resolve :
  Transport.Netstack.stack -> t -> (Binding.t, Rpc.Control.error) result

val pp : Format.formatter -> t -> unit
