type t = {
  suite : Component.protocol_suite;
  server : Transport.Address.t;
  prog : int;
  vers : int;
}

let make ~suite ~server ~prog ~vers = { suite; server; prog; vers }

let equal a b =
  Component.equal_suite a.suite b.suite
  && Transport.Address.equal a.server b.server
  && a.prog = b.prog && a.vers = b.vers

let pp ppf t =
  Format.fprintf ppf "%a@%a prog=%d vers=%d" Component.pp_suite t.suite
    Transport.Address.pp t.server t.prog t.vers

let idl_ty =
  Wire.Idl.T_struct
    [
      ("data_rep", Wire.Idl.T_enum [ "xdr"; "courier" ]);
      ("transport", Wire.Idl.T_enum [ "udp"; "tcp" ]);
      ("control", Wire.Idl.T_enum [ "sunrpc"; "courier"; "raw" ]);
      ("ip", Wire.Idl.T_uint);
      ("port", Wire.Idl.T_int);
      ("prog", Wire.Idl.T_int);
      ("vers", Wire.Idl.T_int);
    ]

let to_value t =
  let data_rep = match t.suite.Component.data_rep with Wire.Data_rep.Xdr -> 0 | Courier -> 1 in
  let transport = match t.suite.Component.transport with Component.T_udp -> 0 | T_tcp -> 1 in
  let control =
    match t.suite.Component.control with
    | Component.C_sunrpc -> 0
    | C_courier -> 1
    | C_raw -> 2
  in
  Wire.Value.Struct
    [
      ("data_rep", Wire.Value.Enum data_rep);
      ("transport", Wire.Value.Enum transport);
      ("control", Wire.Value.Enum control);
      ("ip", Wire.Value.Uint t.server.Transport.Address.ip);
      ("port", Wire.Value.int t.server.Transport.Address.port);
      ("prog", Wire.Value.int t.prog);
      ("vers", Wire.Value.int t.vers);
    ]

let of_value v =
  let f name = Wire.Value.field v name in
  let data_rep =
    match Wire.Value.get_int (f "data_rep") with
    | 0 -> Wire.Data_rep.Xdr
    | 1 -> Wire.Data_rep.Courier
    | n -> invalid_arg (Printf.sprintf "Binding.of_value: bad data_rep %d" n)
  in
  let transport =
    match Wire.Value.get_int (f "transport") with
    | 0 -> Component.T_udp
    | 1 -> Component.T_tcp
    | n -> invalid_arg (Printf.sprintf "Binding.of_value: bad transport %d" n)
  in
  let control =
    match Wire.Value.get_int (f "control") with
    | 0 -> Component.C_sunrpc
    | 1 -> Component.C_courier
    | 2 -> Component.C_raw
    | n -> invalid_arg (Printf.sprintf "Binding.of_value: bad control %d" n)
  in
  let ip =
    match f "ip" with
    | Wire.Value.Uint ip -> ip
    | other -> Int32.of_int (Wire.Value.get_int other)
  in
  {
    suite = { Component.data_rep; transport; control };
    server = Transport.Address.make ip (Wire.Value.get_int (f "port"));
    prog = Wire.Value.get_int (f "prog");
    vers = Wire.Value.get_int (f "vers");
  }

let to_bytes t = Wire.Xdr.to_string idl_ty (to_value t)

let of_bytes s =
  match Wire.Xdr.of_string idl_ty s with
  | exception Wire.Xdr.Decode_error m -> invalid_arg ("Binding.of_bytes: " ^ m)
  | v -> of_value v
