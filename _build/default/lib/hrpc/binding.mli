(** HRPC Bindings: the handle a client needs to call a remote
    procedure, and the value the HNS traffics in.

    A binding names the protocol suite the server speaks, where it
    is, and which remote program it is. From the client's point of
    view a binding is system-independent — "even though the means by
    which this information is gathered by the NSM varies widely from
    system to system".

    Bindings have a canonical serialized form (an XDR struct) so name
    services can store them: the meta-BIND keeps NSM bindings in
    UNSPEC records; the Clearinghouse keeps service bindings in an
    item property. *)

type t = {
  suite : Component.protocol_suite;
  server : Transport.Address.t;
  prog : int;
  vers : int;
}

val make :
  suite:Component.protocol_suite ->
  server:Transport.Address.t ->
  prog:int ->
  vers:int ->
  t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** Canonical serialized form. *)
val to_bytes : t -> string

(** Raises [Invalid_argument] on malformed bytes. *)
val of_bytes : string -> t

(** Wire shape, should a service want to pass bindings as values. *)
val idl_ty : Wire.Idl.ty

val to_value : t -> Wire.Value.t
val of_value : Wire.Value.t -> t
