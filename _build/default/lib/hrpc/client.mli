(** The HRPC client call engine.

    [call] is the run-time half of a client stub: given a binding it
    selects the data representation, transport, and control protocol
    the server speaks and performs one complete remote call. The
    components were separated at stub-generation time and are
    recombined here, at call time — the emulation mechanism that lets
    one linked client speak Sun RPC, Courier, or a raw message
    protocol depending on what it is bound to. *)

(** Defaults: 1000 ms timeout, 3 attempts (UDP transports retransmit;
    TCP transports use a single attempt's timeout per connection). *)
val call :
  Transport.Netstack.stack ->
  Binding.t ->
  procnum:int ->
  sign:Wire.Idl.signature ->
  ?timeout:float ->
  ?attempts:int ->
  Wire.Value.t ->
  (Wire.Value.t, Rpc.Control.error) result

(** [call_raw] sends pre-encoded bytes with the binding's control and
    transport components, skipping value marshalling — used by the
    HNS's HRPC interface to BIND, whose payloads are native DNS
    messages. *)
val call_raw :
  Transport.Netstack.stack ->
  Binding.t ->
  ?timeout:float ->
  ?attempts:int ->
  string ->
  (string, Rpc.Control.error) result
