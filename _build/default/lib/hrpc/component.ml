type transport_kind = T_udp | T_tcp

type control_kind = C_sunrpc | C_courier | C_raw

type protocol_suite = {
  data_rep : Wire.Data_rep.t;
  transport : transport_kind;
  control : control_kind;
}

let sunrpc_suite =
  { data_rep = Wire.Data_rep.Xdr; transport = T_udp; control = C_sunrpc }

let courier_suite =
  { data_rep = Wire.Data_rep.Courier; transport = T_tcp; control = C_courier }

let raw_udp_suite = { data_rep = Wire.Data_rep.Xdr; transport = T_udp; control = C_raw }

let transport_name = function T_udp -> "udp" | T_tcp -> "tcp"
let control_name = function C_sunrpc -> "sunrpc" | C_courier -> "courier" | C_raw -> "raw"

let transport_of_name = function
  | "udp" -> Some T_udp
  | "tcp" -> Some T_tcp
  | _ -> None

let control_of_name = function
  | "sunrpc" -> Some C_sunrpc
  | "courier" -> Some C_courier
  | "raw" -> Some C_raw
  | _ -> None

let suite_name s =
  Printf.sprintf "%s/%s/%s" (Wire.Data_rep.name s.data_rep) (transport_name s.transport)
    (control_name s.control)

let equal_suite a b =
  Wire.Data_rep.equal a.data_rep b.data_rep && a.transport = b.transport
  && a.control = b.control

let pp_suite ppf s = Format.pp_print_string ppf (suite_name s)
