(** The five-component HRPC model (Bershad et al. 1987).

    An RPC facility decomposes into stubs, binding protocol, data
    representation, transport protocol, and control protocol. HRPC
    makes each a "black box" chosen {e at bind time}: the same linked
    client emulates Sun RPC against a Sun server (XDR + UDP + Sun
    control + portmapper binding) and Courier against a Xerox server
    (Courier representation + TCP + Courier control + Clearinghouse
    binding).

    The data representation component lives in {!Wire.Data_rep}; this
    module names the transport and control choices and groups the
    three wire-level components into a {!protocol_suite}. (Stubs are
    {!Stub}; binding protocols are {!Bind_protocol}.) *)

type transport_kind = T_udp | T_tcp

type control_kind =
  | C_sunrpc   (** RFC 1057 messages, retransmitting over UDP *)
  | C_courier  (** Courier CALL/RETURN/ABORT/REJECT *)
  | C_raw      (** the peer's native request/response format *)

(** The three wire-level components of a binding. *)
type protocol_suite = {
  data_rep : Wire.Data_rep.t;
  transport : transport_kind;
  control : control_kind;
}

(** The suites spoken by the existing systems being emulated. *)
val sunrpc_suite : protocol_suite

val courier_suite : protocol_suite
val raw_udp_suite : protocol_suite

val transport_name : transport_kind -> string
val control_name : control_kind -> string
val suite_name : protocol_suite -> string
val transport_of_name : string -> transport_kind option
val control_of_name : string -> control_kind option
val equal_suite : protocol_suite -> protocol_suite -> bool
val pp_suite : Format.formatter -> protocol_suite -> unit
