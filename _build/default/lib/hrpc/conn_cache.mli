(** Connection reuse for TCP-transport bindings.

    Courier sessions hold their transport open across calls; an HRPC
    client that imports a Courier binding and calls it repeatedly
    should not pay the SYN round trip every time. A [t] keeps one live
    connection per (server address) and transparently reconnects when
    the peer has closed it. UDP-transport bindings pass straight
    through to {!Client.call}. *)

type t

val create : Transport.Netstack.stack -> t

(** Like {!Client.call}, but TCP exchanges reuse a cached connection. *)
val call :
  t ->
  Binding.t ->
  procnum:int ->
  sign:Wire.Idl.signature ->
  ?timeout:float ->
  ?attempts:int ->
  Wire.Value.t ->
  (Wire.Value.t, Rpc.Control.error) result

(** Live connections held. *)
val live : t -> int

(** Number of calls that reused an existing connection. *)
val reuses : t -> int

(** Close everything. *)
val clear : t -> unit
