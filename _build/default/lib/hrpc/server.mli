(** Exporting a service over a chosen protocol suite.

    An HRPC server looks to clients of the emulated system exactly
    like a homogeneous peer: export with {!Component.sunrpc_suite} and
    native Sun RPC clients can call you; export with
    {!Component.courier_suite} and Courier clients can. The NSMs are
    served this way.

    Raw control cannot be exported here — raw servers {e are} the
    native message-passing programs (e.g. the BIND server). *)

type t

(** Raises [Invalid_argument] for a raw-control suite. *)
val create :
  Transport.Netstack.stack ->
  suite:Component.protocol_suite ->
  ?port:int ->
  ?service_overhead_ms:float ->
  prog:int ->
  vers:int ->
  unit ->
  t

val register :
  t ->
  procnum:int ->
  sign:Wire.Idl.signature ->
  (Wire.Value.t -> Wire.Value.t) ->
  unit

val start : t -> unit
val stop : t -> unit

(** The binding clients use to call this server. *)
val binding : t -> Binding.t

val calls_served : t -> int
