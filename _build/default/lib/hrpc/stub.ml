type ('a, 'b) proc = {
  procnum : int;
  sign : Wire.Idl.signature;
  encode_arg : 'a -> Wire.Value.t;
  decode_res : Wire.Value.t -> 'b;
}

let proc ~procnum ~sign ~encode_arg ~decode_res =
  { procnum; sign; encode_arg; decode_res }

let call stack binding p ?timeout ?attempts a =
  match
    Client.call stack binding ~procnum:p.procnum ~sign:p.sign ?timeout ?attempts
      (p.encode_arg a)
  with
  | Error _ as e -> e
  | Ok v -> (
      match p.decode_res v with
      | exception Invalid_argument m -> Error (Rpc.Control.Protocol_error m)
      | b -> Ok b)
