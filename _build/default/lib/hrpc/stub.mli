(** Typed client stubs.

    A [('a, 'b) proc] is what a stub compiler would emit for one
    procedure: the procedure number, the wire signature, and the
    conversions between OCaml values and IDL values. [call] is the
    stub body; the remaining four components come from the binding at
    call time. *)

type ('a, 'b) proc = {
  procnum : int;
  sign : Wire.Idl.signature;
  encode_arg : 'a -> Wire.Value.t;
  decode_res : Wire.Value.t -> 'b;
}

val proc :
  procnum:int ->
  sign:Wire.Idl.signature ->
  encode_arg:('a -> Wire.Value.t) ->
  decode_res:(Wire.Value.t -> 'b) ->
  ('a, 'b) proc

(** [call stack binding proc a] — a typed remote call.
    [decode_res] failures surface as [Protocol_error]. *)
val call :
  Transport.Netstack.stack ->
  Binding.t ->
  ('a, 'b) proc ->
  ?timeout:float ->
  ?attempts:int ->
  'a ->
  ('b, Rpc.Control.error) result
