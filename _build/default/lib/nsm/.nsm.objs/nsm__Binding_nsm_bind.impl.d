lib/nsm/binding_nsm_bind.ml: Dns Format Hashtbl Hns Hrpc List Nsm_common Printf Rpc String Transport Wire
