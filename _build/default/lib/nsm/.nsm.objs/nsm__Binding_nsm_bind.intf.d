lib/nsm/binding_nsm_bind.mli: Hns Hrpc Transport
