lib/nsm/binding_nsm_ch.ml: Clearinghouse Format Hns Hrpc Nsm_common Rpc Transport
