lib/nsm/binding_nsm_ch.mli: Clearinghouse Hns Hrpc Transport
