lib/nsm/binding_nsm_yp.ml: Format Hashtbl Hns Hrpc List Nsm_common Printf Rpc String Transport Yp
