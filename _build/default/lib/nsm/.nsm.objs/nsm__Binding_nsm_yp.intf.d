lib/nsm/binding_nsm_yp.mli: Hns Hrpc Transport
