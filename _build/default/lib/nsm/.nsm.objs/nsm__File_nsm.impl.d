lib/nsm/file_nsm.ml: Clearinghouse Text_nsm
