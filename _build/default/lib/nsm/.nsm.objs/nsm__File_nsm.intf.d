lib/nsm/file_nsm.mli: Clearinghouse Hns Text_nsm Transport
