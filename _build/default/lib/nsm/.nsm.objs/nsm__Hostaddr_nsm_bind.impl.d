lib/nsm/hostaddr_nsm_bind.ml: Dns Format Hns Nsm_common Transport Wire
