lib/nsm/hostaddr_nsm_bind.mli: Hns Hrpc Transport
