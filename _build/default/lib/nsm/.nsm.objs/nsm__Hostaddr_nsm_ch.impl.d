lib/nsm/hostaddr_nsm_ch.ml: Clearinghouse Format Hns Nsm_common Rpc String Transport Wire
