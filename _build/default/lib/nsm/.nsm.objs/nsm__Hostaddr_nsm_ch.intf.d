lib/nsm/hostaddr_nsm_ch.mli: Clearinghouse Hns Hrpc Transport
