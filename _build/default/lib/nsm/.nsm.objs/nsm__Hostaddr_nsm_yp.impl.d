lib/nsm/hostaddr_nsm_yp.ml: Format Hns Nsm_common Printf Rpc String Transport Wire Yp
