lib/nsm/hostaddr_nsm_yp.mli: Hns Hrpc Transport
