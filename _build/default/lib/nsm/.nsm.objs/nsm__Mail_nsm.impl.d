lib/nsm/mail_nsm.ml: Clearinghouse Text_nsm
