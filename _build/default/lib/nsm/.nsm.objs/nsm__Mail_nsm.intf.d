lib/nsm/mail_nsm.mli: Clearinghouse Hns Text_nsm Transport
