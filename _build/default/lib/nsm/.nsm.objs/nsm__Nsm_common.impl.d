lib/nsm/nsm_common.ml: Effect Hns Hrpc Int32 Printf Sim String
