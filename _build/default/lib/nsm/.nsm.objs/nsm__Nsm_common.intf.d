lib/nsm/nsm_common.mli: Hns Hrpc Transport Wire
