lib/nsm/text_nsm.ml: Clearinghouse Dns Format Hns List Nsm_common Option Rpc Transport Wire
