lib/nsm/text_nsm.mli: Clearinghouse Hns Hrpc Transport
