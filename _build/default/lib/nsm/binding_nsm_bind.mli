(** The binding NSM for BIND subsystems (query class HRPCBinding).

    Given an HNS name whose individual name is a DNS host name and a
    ServiceName, this NSM "looks up the local name in the name
    service, and then determines the needed port number for the
    ServiceName, using whatever binding protocol is appropriate for
    that particular system" — here the Sun protocol: resolve the
    host's address in BIND, then ask that host's portmapper.

    ServiceNames resolve to Sun RPC (program, version) pairs through
    the NSM's service directory, or directly when written
    ["<prog>:<vers>"].

    About 230 lines, as the paper says of its BIND binding NSM. *)

type t

val create :
  Transport.Netstack.stack ->
  bind_server:Transport.Address.t ->
  ?services:(string * (int * int)) list ->
  ?cache:Hns.Cache.t ->
  ?cache_ttl_ms:float ->
  ?per_query_ms:float ->
  unit ->
  t

(** Add a ServiceName → (program, version) entry. *)
val add_service : t -> string -> prog:int -> vers:int -> unit

(** The NSM as a linkable instance. *)
val impl : t -> Hns.Nsm_intf.impl

val cache : t -> Hns.Cache.t

(** Queries answered from the backing name service (cache misses). *)
val backend_queries : t -> int

(** Warm the result cache for every (directory service x host) pair.
    Unlike the HNS meta preload there is no bulk-transfer shortcut —
    each entry costs a full BIND lookup plus a portmapper exchange,
    which is why the paper judged NSM-cache preloading "less
    effective". Pairs that fail to resolve are skipped. Returns the
    number of entries cached. *)
val preload : t -> context:string -> hosts:string list -> int

(** Export as a remote NSM. *)
val serve :
  t ->
  prog:int ->
  ?vers:int ->
  ?suite:Hrpc.Component.protocol_suite ->
  ?port:int ->
  ?service_overhead_ms:float ->
  unit ->
  Hrpc.Server.t
