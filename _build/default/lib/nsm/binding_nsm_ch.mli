(** The binding NSM for Clearinghouse subsystems (query class
    HRPCBinding).

    Xerox services are first-class Clearinghouse objects: the HNS
    individual name is the service object's local name, and its
    binding travels in the object's service-binding item property.
    When the ServiceName argument is nonempty it overrides the local
    part (one host context can then name services directly, mirroring
    the Sun NSM's (host, service) interface). Its interface is
    identical to {!Binding_nsm_bind}'s — that is the whole point. *)

type t

val create :
  Transport.Netstack.stack ->
  ch_server:Transport.Address.t ->
  credentials:Clearinghouse.Ch_proto.credentials ->
  domain:string ->
  org:string ->
  ?cache:Hns.Cache.t ->
  ?cache_ttl_ms:float ->
  ?per_query_ms:float ->
  unit ->
  t

val impl : t -> Hns.Nsm_intf.impl
val cache : t -> Hns.Cache.t
val backend_queries : t -> int

val serve :
  t ->
  prog:int ->
  ?vers:int ->
  ?suite:Hrpc.Component.protocol_suite ->
  ?port:int ->
  ?service_overhead_ms:float ->
  unit ->
  Hrpc.Server.t
