(** The binding NSM for YP (NIS) subsystems (query class HRPCBinding).

    Sun machines running NIS still bind with the Sun protocol: look
    the host up in [hosts.byname], then ask that host's portmapper —
    the same (host, service) interface as {!Binding_nsm_bind}, with a
    different name service underneath, which is exactly the NSM
    contract. *)

type t

val create :
  Transport.Netstack.stack ->
  yp_server:Transport.Address.t ->
  domain:string ->
  ?services:(string * (int * int)) list ->
  ?cache:Hns.Cache.t ->
  ?cache_ttl_ms:float ->
  ?per_query_ms:float ->
  unit ->
  t

val add_service : t -> string -> prog:int -> vers:int -> unit
val impl : t -> Hns.Nsm_intf.impl
val cache : t -> Hns.Cache.t
val backend_queries : t -> int

val serve :
  t ->
  prog:int ->
  ?vers:int ->
  ?suite:Hrpc.Component.protocol_suite ->
  ?port:int ->
  ?service_overhead_ms:float ->
  unit ->
  Hrpc.Server.t
