let create_bind stack ~bind_server ?cache ?per_query_ms () =
  Text_nsm.create stack
    (Text_nsm.Bind { server = bind_server })
    ~tag:"bind-file" ?cache ?per_query_ms ()

let create_ch stack ~ch_server ~credentials ~domain ~org ?cache ?per_query_ms () =
  Text_nsm.create stack
    (Text_nsm.Ch
       {
         server = ch_server;
         credentials;
         domain;
         org;
         prop = Clearinghouse.Property.Id.description;
       })
    ~tag:"ch-file" ?cache ?per_query_ms ()
