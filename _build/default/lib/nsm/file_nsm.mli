(** NSMs for the FileLocation query class: where a named file lives in
    the HCS filing service. A {!Text_nsm} instantiated per backend. *)

val create_bind :
  Transport.Netstack.stack ->
  bind_server:Transport.Address.t ->
  ?cache:Hns.Cache.t ->
  ?per_query_ms:float ->
  unit ->
  Text_nsm.t

val create_ch :
  Transport.Netstack.stack ->
  ch_server:Transport.Address.t ->
  credentials:Clearinghouse.Ch_proto.credentials ->
  domain:string ->
  org:string ->
  ?cache:Hns.Cache.t ->
  ?per_query_ms:float ->
  unit ->
  Text_nsm.t
