(** The host-address NSM for BIND subsystems (query class
    HostAddress): host name → network address via an A-record lookup.

    Instances of this NSM are what FindNSM links directly with the
    HNS to terminate its recursion; it can equally be served
    remotely for ordinary clients of the HostAddress query class. *)

type t

val create :
  Transport.Netstack.stack ->
  bind_server:Transport.Address.t ->
  ?cache:Hns.Cache.t ->
  ?cache_ttl_ms:float ->
  ?per_query_ms:float ->
  unit ->
  t

val impl : t -> Hns.Nsm_intf.impl
val cache : t -> Hns.Cache.t
val backend_queries : t -> int

val serve :
  t ->
  prog:int ->
  ?vers:int ->
  ?suite:Hrpc.Component.protocol_suite ->
  ?port:int ->
  ?service_overhead_ms:float ->
  unit ->
  Hrpc.Server.t
