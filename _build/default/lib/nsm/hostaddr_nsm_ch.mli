(** The host-address NSM for Clearinghouse subsystems (query class
    HostAddress): host object → address item property. *)

type t

val create :
  Transport.Netstack.stack ->
  ch_server:Transport.Address.t ->
  credentials:Clearinghouse.Ch_proto.credentials ->
  domain:string ->
  org:string ->
  ?cache:Hns.Cache.t ->
  ?cache_ttl_ms:float ->
  ?per_query_ms:float ->
  unit ->
  t

val impl : t -> Hns.Nsm_intf.impl
val cache : t -> Hns.Cache.t
val backend_queries : t -> int

val serve :
  t ->
  prog:int ->
  ?vers:int ->
  ?suite:Hrpc.Component.protocol_suite ->
  ?port:int ->
  ?service_overhead_ms:float ->
  unit ->
  Hrpc.Server.t

(** Encoding used for the address item property: 4 big-endian bytes.
    Exposed so setup code stores what this NSM reads. *)
val encode_address : Transport.Address.ip -> string

val decode_address : string -> Transport.Address.ip option
