(** The host-address NSM for YP (NIS) subsystems: host name →
    address, via a MATCH against the domain's [hosts.byname] map.

    The third name service type in the federation. Its existence is
    the paper's point: to support HostAddress queries for the Sun
    machines' YP world, this one NSM is written and registered — no
    client, no other NSM, and no HNS code changes. *)

type t

val create :
  Transport.Netstack.stack ->
  yp_server:Transport.Address.t ->
  domain:string ->
  ?cache:Hns.Cache.t ->
  ?cache_ttl_ms:float ->
  ?per_query_ms:float ->
  unit ->
  t

val impl : t -> Hns.Nsm_intf.impl
val cache : t -> Hns.Cache.t
val backend_queries : t -> int

val serve :
  t ->
  prog:int ->
  ?vers:int ->
  ?suite:Hrpc.Component.protocol_suite ->
  ?port:int ->
  ?service_overhead_ms:float ->
  unit ->
  Hrpc.Server.t
