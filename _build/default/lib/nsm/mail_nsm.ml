let create_bind stack ~bind_server ?cache ?per_query_ms () =
  Text_nsm.create stack
    (Text_nsm.Bind { server = bind_server })
    ~tag:"bind-mail" ?cache ?per_query_ms ()

let create_ch stack ~ch_server ~credentials ~domain ~org ?cache ?per_query_ms () =
  Text_nsm.create stack
    (Text_nsm.Ch
       {
         server = ch_server;
         credentials;
         domain;
         org;
         prop = Clearinghouse.Property.Id.mailboxes;
       })
    ~tag:"ch-mail" ?cache ?per_query_ms ()
