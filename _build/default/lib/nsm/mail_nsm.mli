(** NSMs for the MailboxLocation query class: the site holding a named
    user's mailbox, for the HCS mail service. *)

val create_bind :
  Transport.Netstack.stack ->
  bind_server:Transport.Address.t ->
  ?cache:Hns.Cache.t ->
  ?per_query_ms:float ->
  unit ->
  Text_nsm.t

val create_ch :
  Transport.Netstack.stack ->
  ch_server:Transport.Address.t ->
  credentials:Clearinghouse.Ch_proto.credentials ->
  domain:string ->
  org:string ->
  ?cache:Hns.Cache.t ->
  ?per_query_ms:float ->
  unit ->
  Text_nsm.t
