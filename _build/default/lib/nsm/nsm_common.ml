let serve stack ~impl ~payload_ty ~prog ?(vers = 1)
    ?(suite = Hrpc.Component.sunrpc_suite) ?port ?service_overhead_ms () =
  let server =
    Hrpc.Server.create stack ~suite ?port ?service_overhead_ms ~prog ~vers ()
  in
  Hrpc.Server.register server ~procnum:Hns.Nsm_intf.query_procnum
    ~sign:(Hns.Nsm_intf.query_sign ~payload_ty)
    impl;
  server

let cache_key ~tag ~service hns_name =
  Printf.sprintf "nsm:%s:%s!%s" tag service (Hns.Hns_name.to_string hns_name)

let charge ms =
  if ms > 0.0 then
    try Sim.Engine.sleep ms with Effect.Unhandled _ -> ()

let parse_dotted_quad s =
  match String.split_on_char '.' (String.trim s) with
  | [ a; b; c; d ] -> (
      match
        (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c, int_of_string_opt d)
      with
      | Some a, Some b, Some c, Some d
        when a land 0xFF = a && b land 0xFF = b && c land 0xFF = c && d land 0xFF = d ->
          Some (Int32.of_int ((a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d))
      | _ -> None)
  | _ -> None
