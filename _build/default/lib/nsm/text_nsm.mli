(** A generic text-valued NSM, parameterized by backend.

    Several HCS network services need only a string of location
    information per name: the filing service maps names to file
    locations, the mail service maps user names to mailbox sites.
    In BIND that string lives in a TXT record; in the Clearinghouse,
    in an item property. {!File_nsm} and {!Mail_nsm} instantiate this
    module per query class. *)

type backend =
  | Bind of { server : Transport.Address.t }
      (** TXT record at the individual name *)
  | Ch of {
      server : Transport.Address.t;
      credentials : Clearinghouse.Ch_proto.credentials;
      domain : string;
      org : string;
      prop : int;
    }
      (** item property of the object named by the individual name *)

type t

val create :
  Transport.Netstack.stack ->
  backend ->
  tag:string ->
  ?cache:Hns.Cache.t ->
  ?cache_ttl_ms:float ->
  ?per_query_ms:float ->
  unit ->
  t

val impl : t -> Hns.Nsm_intf.impl
val cache : t -> Hns.Cache.t
val backend_queries : t -> int

val serve :
  t ->
  prog:int ->
  ?vers:int ->
  ?suite:Hrpc.Component.protocol_suite ->
  ?port:int ->
  ?service_overhead_ms:float ->
  unit ->
  Hrpc.Server.t
