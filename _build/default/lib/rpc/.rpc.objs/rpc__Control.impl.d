lib/rpc/control.ml: Format Int32
