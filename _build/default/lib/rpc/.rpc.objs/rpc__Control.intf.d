lib/rpc/control.mli: Format
