lib/rpc/courier_rpc.ml: Address Control Courier_wire Hashtbl Int32 Printf Sim Tcp Transport Wire
