lib/rpc/courier_rpc.mli: Control Transport Wire
