lib/rpc/courier_wire.ml: Control Format Wire
