lib/rpc/courier_wire.mli: Control
