lib/rpc/portmap.ml: Hashtbl Int32 Sunrpc Transport Wire
