lib/rpc/portmap.mli: Control Sunrpc Transport
