lib/rpc/rawrpc.ml: Control Printf Sim Transport Udp
