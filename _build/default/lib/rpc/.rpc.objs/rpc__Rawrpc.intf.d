lib/rpc/rawrpc.mli: Control Transport
