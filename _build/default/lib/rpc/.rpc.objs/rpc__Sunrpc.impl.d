lib/rpc/sunrpc.ml: Address Control Hashtbl Int32 Printf Sim Sunrpc_wire Transport Udp Wire
