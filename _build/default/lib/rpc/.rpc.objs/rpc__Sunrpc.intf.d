lib/rpc/sunrpc.mli: Control Transport Wire
