lib/rpc/sunrpc_wire.ml: Control Format Int32 Wire
