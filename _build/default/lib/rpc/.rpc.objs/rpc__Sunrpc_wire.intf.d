lib/rpc/sunrpc_wire.mli: Control
