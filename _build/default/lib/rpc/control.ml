type error =
  | Timeout
  | Prog_unavailable
  | Proc_unavailable
  | Garbage_args
  | Refused
  | Protocol_error of string

let pp_error ppf = function
  | Timeout -> Format.pp_print_string ppf "timeout"
  | Prog_unavailable -> Format.pp_print_string ppf "program unavailable"
  | Proc_unavailable -> Format.pp_print_string ppf "procedure unavailable"
  | Garbage_args -> Format.pp_print_string ppf "garbage arguments"
  | Refused -> Format.pp_print_string ppf "refused"
  | Protocol_error s -> Format.fprintf ppf "protocol error: %s" s

let error_to_string e = Format.asprintf "%a" pp_error e

exception Rpc_failure of error

let get_ok = function Ok v -> v | Error e -> raise (Rpc_failure e)

let xid_counter = ref 0l

let next_xid () =
  xid_counter := Int32.add !xid_counter 1l;
  !xid_counter

let with_retries ~attempts ~timeout ?(backoff = 2.0) f =
  if attempts < 1 then invalid_arg "Control.with_retries: attempts must be >= 1";
  let rec go n timeout =
    match f ~timeout with
    | Some _ as r -> r
    | None -> if n <= 1 then None else go (n - 1) (timeout *. backoff)
  in
  go attempts timeout
