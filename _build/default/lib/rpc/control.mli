(** The control-protocol component shared by the concrete RPC systems:
    transaction ids, call outcomes, and the retransmission policy.

    In the five-component HRPC model this is the piece that "tracks the
    state of a call". Both Sun RPC and Raw exchanges retransmit over
    UDP; Courier relies on its reliable transport. *)

(** Uniform failure vocabulary across RPC systems. *)
type error =
  | Timeout                  (** no reply within the retry budget *)
  | Prog_unavailable         (** no such program/remote interface *)
  | Proc_unavailable         (** no such procedure *)
  | Garbage_args             (** peer could not decode our arguments *)
  | Refused                  (** connection or binding refused *)
  | Protocol_error of string (** malformed or unexpected message *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

exception Rpc_failure of error

(** [get_ok r] unwraps or raises {!Rpc_failure}. *)
val get_ok : ('a, error) result -> 'a

(** Fresh transaction id; a single global counter keeps ids unique
    across every client in a simulation, which makes traces easy to
    follow. *)
val next_xid : unit -> int32

(** [with_retries ~attempts ~timeout ~backoff f] calls [f ~timeout]
    up to [attempts] times, doubling the timeout by [backoff] after
    each [None], returning the first [Some]. [attempts >= 1]. *)
val with_retries :
  attempts:int ->
  timeout:float ->
  ?backoff:float ->
  (timeout:float -> 'a option) ->
  'a option
