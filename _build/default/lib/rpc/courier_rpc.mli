(** Courier RPC over simulated TCP — the Xerox world's RPC system.

    Courier runs over a reliable byte stream (historically SPP); calls
    on one session are sequential, and a client keeps its session open
    across calls, so after the first call no per-call connection cost
    is paid. Bodies are Courier-representation values.

    Remote errors raised by server procedures travel as Courier ABORT
    messages and surface as [Error (Protocol_error _)]. *)

type server

val create :
  Transport.Netstack.stack -> ?port:int -> ?service_overhead_ms:float -> unit -> server

val port : server -> int
val addr : server -> Transport.Address.t

val register :
  server ->
  prog:int ->
  vers:int ->
  procnum:int ->
  sign:Wire.Idl.signature ->
  (Wire.Value.t -> Wire.Value.t) ->
  unit

val start : server -> unit
val stop : server -> unit
val calls_served : server -> int

(** A client session (one TCP connection). *)
type session

(** Connect; blocks for the handshake round trip. Raises
    [Tcp.Connection_refused] when nothing listens. *)
val connect : Transport.Netstack.stack -> Transport.Address.t -> session

val call :
  session ->
  prog:int ->
  vers:int ->
  procnum:int ->
  sign:Wire.Idl.signature ->
  ?timeout:float ->
  Wire.Value.t ->
  (Wire.Value.t, Control.error) result

val close : session -> unit

(** One-shot convenience: connect, call once, close. *)
val call_once :
  Transport.Netstack.stack ->
  dst:Transport.Address.t ->
  prog:int ->
  vers:int ->
  procnum:int ->
  sign:Wire.Idl.signature ->
  ?timeout:float ->
  Wire.Value.t ->
  (Wire.Value.t, Control.error) result
