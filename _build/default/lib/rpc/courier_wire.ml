type call = { transaction : int; prog : int32; vers : int; procnum : int; body : string }

type reject_code =
  | No_such_program
  | No_such_version
  | No_such_procedure
  | Invalid_arguments

type msg =
  | Call of call
  | Return of { transaction : int; body : string }
  | Abort of { transaction : int; error : int; body : string }
  | Reject of { transaction : int; code : reject_code }

exception Bad_message of string

let fail fmt = Format.kasprintf (fun s -> raise (Bad_message s)) fmt

let reject_code_to_int = function
  | No_such_program -> 0
  | No_such_version -> 1
  | No_such_procedure -> 2
  | Invalid_arguments -> 3

let reject_code_of_int = function
  | 0 -> No_such_program
  | 1 -> No_such_version
  | 2 -> No_such_procedure
  | 3 -> Invalid_arguments
  | n -> fail "bad Courier reject code %d" n

let encode msg =
  let wr = Wire.Bytebuf.Wr.create () in
  (match msg with
  | Call c ->
      Wire.Bytebuf.Wr.u16 wr 0;
      Wire.Bytebuf.Wr.u16 wr c.transaction;
      Wire.Bytebuf.Wr.u32 wr c.prog;
      Wire.Bytebuf.Wr.u16 wr c.vers;
      Wire.Bytebuf.Wr.u16 wr c.procnum;
      Wire.Bytebuf.Wr.bytes wr c.body
  | Reject { transaction; code } ->
      Wire.Bytebuf.Wr.u16 wr 1;
      Wire.Bytebuf.Wr.u16 wr transaction;
      Wire.Bytebuf.Wr.u16 wr (reject_code_to_int code)
  | Return { transaction; body } ->
      Wire.Bytebuf.Wr.u16 wr 2;
      Wire.Bytebuf.Wr.u16 wr transaction;
      Wire.Bytebuf.Wr.bytes wr body
  | Abort { transaction; error; body } ->
      Wire.Bytebuf.Wr.u16 wr 3;
      Wire.Bytebuf.Wr.u16 wr transaction;
      Wire.Bytebuf.Wr.u16 wr error;
      Wire.Bytebuf.Wr.bytes wr body);
  Wire.Bytebuf.Wr.contents wr

let rest rd = Wire.Bytebuf.Rd.bytes rd (Wire.Bytebuf.Rd.remaining rd)

let decode s =
  let rd = Wire.Bytebuf.Rd.of_string s in
  try
    let msgtype = Wire.Bytebuf.Rd.u16 rd in
    let transaction = Wire.Bytebuf.Rd.u16 rd in
    match msgtype with
    | 0 ->
        let prog = Wire.Bytebuf.Rd.u32 rd in
        let vers = Wire.Bytebuf.Rd.u16 rd in
        let procnum = Wire.Bytebuf.Rd.u16 rd in
        Call { transaction; prog; vers; procnum; body = rest rd }
    | 1 -> Reject { transaction; code = reject_code_of_int (Wire.Bytebuf.Rd.u16 rd) }
    | 2 -> Return { transaction; body = rest rd }
    | 3 ->
        let error = Wire.Bytebuf.Rd.u16 rd in
        Abort { transaction; error; body = rest rd }
    | n -> fail "bad Courier message type %d" n
  with Wire.Bytebuf.Truncated -> fail "truncated Courier message"

let reject_to_error = function
  | No_such_program | No_such_version -> Control.Prog_unavailable
  | No_such_procedure -> Control.Proc_unavailable
  | Invalid_arguments -> Control.Garbage_args
