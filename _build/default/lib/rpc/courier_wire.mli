(** Xerox Courier RPC message format (XSIS 038112 subset).

    Pure encode/decode. Message bodies are Courier-representation
    values, carried opaquely: as with {!Sunrpc_wire}, the control
    protocol does not interpret the data representation. *)

type call = {
  transaction : int;   (** 16-bit transaction id *)
  prog : int32;        (** 32-bit program number *)
  vers : int;          (** 16-bit version *)
  procnum : int;       (** 16-bit procedure *)
  body : string;
}

type reject_code =
  | No_such_program
  | No_such_version
  | No_such_procedure
  | Invalid_arguments

type msg =
  | Call of call
  | Return of { transaction : int; body : string }
  | Abort of { transaction : int; error : int; body : string }
  | Reject of { transaction : int; code : reject_code }

exception Bad_message of string

val encode : msg -> string
val decode : string -> msg
val reject_to_error : reject_code -> Control.error
