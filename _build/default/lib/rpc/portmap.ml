let program = 100000
let version = 2
let proc_set = 1
let proc_unset = 2
let proc_getport = 3

type protocol = P_udp | P_tcp

(* IPPROTO numbers, as in RFC 1057. *)
let protocol_number = function P_udp -> 17 | P_tcp -> 6

type t = {
  srv : Sunrpc.server;
  table : (int * int * int, int) Hashtbl.t; (* (prog, vers, proto) -> port *)
}

let mapping_ty =
  Wire.Idl.T_struct
    [ ("prog", Wire.Idl.T_uint); ("vers", T_uint); ("prot", T_uint); ("port", T_uint) ]

let getport_sign = Wire.Idl.signature ~arg:mapping_ty ~res:Wire.Idl.T_uint
let set_sign = Wire.Idl.signature ~arg:mapping_ty ~res:Wire.Idl.T_bool

let decode_mapping v =
  let f name = Wire.Value.get_int (Wire.Value.field v name) in
  (f "prog", f "vers", f "prot", f "port")

let start ?service_overhead_ms stack =
  let srv =
    Sunrpc.create stack ~port:Transport.Address.Well_known.sunrpc_portmapper
      ?service_overhead_ms ()
  in
  let table = Hashtbl.create 16 in
  Sunrpc.register srv ~prog:program ~vers:version ~procnum:proc_getport
    ~sign:getport_sign (fun v ->
      let prog, vers, prot, _ = decode_mapping v in
      let port =
        match Hashtbl.find_opt table (prog, vers, prot) with Some p -> p | None -> 0
      in
      Wire.Value.Uint (Int32.of_int port));
  Sunrpc.register srv ~prog:program ~vers:version ~procnum:proc_set ~sign:set_sign
    (fun v ->
      let prog, vers, prot, port = decode_mapping v in
      if Hashtbl.mem table (prog, vers, prot) then Wire.Value.Bool false
      else begin
        Hashtbl.replace table (prog, vers, prot) port;
        Wire.Value.Bool true
      end);
  Sunrpc.register srv ~prog:program ~vers:version ~procnum:proc_unset ~sign:set_sign
    (fun v ->
      let prog, vers, prot, _ = decode_mapping v in
      let existed = Hashtbl.mem table (prog, vers, prot) in
      Hashtbl.remove table (prog, vers, prot);
      Wire.Value.Bool existed);
  Sunrpc.start srv;
  { srv; table }

let server t = t.srv

let set t ~prog ~vers ~protocol ~port =
  Hashtbl.replace t.table (prog, vers, protocol_number protocol) port

let unset t ~prog ~vers ~protocol =
  Hashtbl.remove t.table (prog, vers, protocol_number protocol)

let mapping_value ~prog ~vers ~protocol ~port =
  Wire.Value.Struct
    [
      ("prog", Wire.Value.Uint (Int32.of_int prog));
      ("vers", Wire.Value.Uint (Int32.of_int vers));
      ("prot", Wire.Value.Uint (Int32.of_int (protocol_number protocol)));
      ("port", Wire.Value.Uint (Int32.of_int port));
    ]

let getport stack ~portmapper ~prog ~vers ?(protocol = P_udp) ?timeout ?attempts () =
  let dst =
    Transport.Address.make portmapper Transport.Address.Well_known.sunrpc_portmapper
  in
  match
    Sunrpc.call stack ~dst ~prog:program ~vers:version ~procnum:proc_getport
      ~sign:getport_sign ?timeout ?attempts
      (mapping_value ~prog ~vers ~protocol ~port:0)
  with
  | Error _ as e -> e
  | Ok v -> (
      match Wire.Value.get_int v with
      | 0 -> Ok None
      | p -> Ok (Some p))
