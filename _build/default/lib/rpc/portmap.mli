(** The Sun RPC binding protocol: the portmapper (program 100000).

    Each host that exports Sun RPC services runs a portmapper on port
    111. Servers register their (program, version, protocol) → port
    mapping locally; clients ask the remote portmapper with GETPORT
    before the first call. This is the per-system "binding protocol"
    that the BIND binding-NSM executes on behalf of HNS clients. *)

val program : int   (* 100000 *)
val version : int   (* 2 *)
val proc_set : int
val proc_unset : int
val proc_getport : int

type protocol = P_udp | P_tcp

type t

(** Start the host's portmapper (a Sun RPC server on port 111). *)
val start : ?service_overhead_ms:float -> Transport.Netstack.stack -> t

val server : t -> Sunrpc.server

(** Local registration, as a server's init code would do at startup. *)
val set : t -> prog:int -> vers:int -> protocol:protocol -> port:int -> unit

val unset : t -> prog:int -> vers:int -> protocol:protocol -> unit

(** Remote GETPORT. [Ok None] means the mapping is not registered
    (the portmapper answered port 0). *)
val getport :
  Transport.Netstack.stack ->
  portmapper:Transport.Address.ip ->
  prog:int ->
  vers:int ->
  ?protocol:protocol ->
  ?timeout:float ->
  ?attempts:int ->
  unit ->
  (int option, Control.error) result
