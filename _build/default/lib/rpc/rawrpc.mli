(** The Raw HRPC protocol suite: request/response message passing with
    a program's {e native} wire format.

    Section 3 of the paper: the HNS talks to BIND not through the
    standard BIND library but through "an HRPC interface to BIND ...
    built on top of our Raw HRPC protocol suite, which allows HRPC
    clients to make calls to any message passing program that conforms
    with the basic RPC paradigm of make a request and wait for a
    response".

    Accordingly this module adds {e no} framing of its own: the payload
    is exactly the server's native message (a DNS packet, for BIND).
    Response matching uses a fresh ephemeral UDP socket per exchange,
    the way a resolver does; retransmission handles simulated loss. *)

(** [serve stack ~port ?service_overhead_ms handler] spawns a
    sequential service loop: [handler ~src request] returns the
    response payload, or [None] to stay silent (letting the client
    time out). Returns a stop function. *)
val serve :
  Transport.Netstack.stack ->
  port:int ->
  ?service_overhead_ms:float ->
  ?name:string ->
  (src:Transport.Address.t -> string -> string option) ->
  unit ->
  unit -> unit

(** [call stack ~dst payload] sends and waits for the single response.
    Defaults: 1000 ms timeout, 3 attempts, doubling backoff. *)
val call :
  Transport.Netstack.stack ->
  dst:Transport.Address.t ->
  ?timeout:float ->
  ?attempts:int ->
  string ->
  (string, Control.error) result
