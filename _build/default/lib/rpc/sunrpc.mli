(** Sun RPC (RFC 1057) over simulated UDP — servers, clients, and the
    program/procedure registry.

    One of the two "insular" RPC systems in the HCS testbed. Procedure
    bodies receive and return {!Wire.Value.t}; argument/result layout
    is fixed by an {!Wire.Idl.signature} and travels as XDR. Procedure
    0 of every registered program is the NULL procedure, answered
    automatically. *)

type server

(** [create stack ?port ?service_overhead_ms ()] makes a server.
    [service_overhead_ms] is virtual CPU charged per handled call —
    how the simulation accounts the per-system RPC processing cost the
    paper reports as "22–38 msec depending on the RPC system". *)
val create :
  Transport.Netstack.stack -> ?port:int -> ?service_overhead_ms:float -> unit -> server

val port : server -> int
val addr : server -> Transport.Address.t

(** Register a procedure implementation. The implementation runs inside
    a simulated process and may sleep to model work.
    Raises [Invalid_argument] on duplicate (prog, vers, procnum). *)
val register :
  server ->
  prog:int ->
  vers:int ->
  procnum:int ->
  sign:Wire.Idl.signature ->
  (Wire.Value.t -> Wire.Value.t) ->
  unit

(** Spawn the service loop (one request at a time, like the 1980s
    daemons being modelled). *)
val start : server -> unit

val stop : server -> unit

(** Counters. *)
val calls_served : server -> int

(** [call stack ~dst ~prog ~vers ~procnum ~sign v] performs a complete
    remote call: XDR-encode, send, retransmit on loss, decode.
    Defaults: 1000 ms timeout, 3 attempts, doubling backoff. *)
val call :
  Transport.Netstack.stack ->
  dst:Transport.Address.t ->
  prog:int ->
  vers:int ->
  procnum:int ->
  sign:Wire.Idl.signature ->
  ?timeout:float ->
  ?attempts:int ->
  Wire.Value.t ->
  (Wire.Value.t, Control.error) result
