type call = { xid : int32; prog : int32; vers : int32; procnum : int32; body : string }

type reply_body =
  | Success of string
  | Prog_unavail
  | Proc_unavail
  | Garbage_args
  | System_err

type reply = { rxid : int32; rbody : reply_body }

type msg = Call of call | Reply of reply

exception Bad_message of string

let fail fmt = Format.kasprintf (fun s -> raise (Bad_message s)) fmt

let rpc_version = 2l

(* AUTH_NONE: flavor 0, zero-length body. *)
let encode_auth wr =
  Wire.Bytebuf.Wr.u32 wr 0l;
  Wire.Bytebuf.Wr.u32 wr 0l

let decode_auth rd =
  let _flavor = Wire.Bytebuf.Rd.u32 rd in
  let len = Int32.to_int (Wire.Bytebuf.Rd.u32 rd) in
  if len < 0 || len > 400 then fail "bad auth length %d" len;
  ignore (Wire.Bytebuf.Rd.bytes rd len);
  Wire.Bytebuf.Rd.align rd 4

let encode msg =
  let wr = Wire.Bytebuf.Wr.create () in
  (match msg with
  | Call c ->
      Wire.Bytebuf.Wr.u32 wr c.xid;
      Wire.Bytebuf.Wr.u32 wr 0l (* CALL *);
      Wire.Bytebuf.Wr.u32 wr rpc_version;
      Wire.Bytebuf.Wr.u32 wr c.prog;
      Wire.Bytebuf.Wr.u32 wr c.vers;
      Wire.Bytebuf.Wr.u32 wr c.procnum;
      encode_auth wr (* cred *);
      encode_auth wr (* verf *);
      Wire.Bytebuf.Wr.bytes wr c.body
  | Reply r ->
      Wire.Bytebuf.Wr.u32 wr r.rxid;
      Wire.Bytebuf.Wr.u32 wr 1l (* REPLY *);
      Wire.Bytebuf.Wr.u32 wr 0l (* MSG_ACCEPTED *);
      encode_auth wr (* verf *);
      let accept_stat, body =
        match r.rbody with
        | Success b -> (0l, b)
        | Prog_unavail -> (1l, "")
        | Proc_unavail -> (3l, "")
        | Garbage_args -> (4l, "")
        | System_err -> (5l, "")
      in
      Wire.Bytebuf.Wr.u32 wr accept_stat;
      Wire.Bytebuf.Wr.bytes wr body);
  Wire.Bytebuf.Wr.contents wr

let rest rd = Wire.Bytebuf.Rd.bytes rd (Wire.Bytebuf.Rd.remaining rd)

let decode s =
  let rd = Wire.Bytebuf.Rd.of_string s in
  try
    let xid = Wire.Bytebuf.Rd.u32 rd in
    match Wire.Bytebuf.Rd.u32 rd with
    | 0l ->
        let rpcvers = Wire.Bytebuf.Rd.u32 rd in
        if rpcvers <> rpc_version then fail "bad RPC version %ld" rpcvers;
        let prog = Wire.Bytebuf.Rd.u32 rd in
        let vers = Wire.Bytebuf.Rd.u32 rd in
        let procnum = Wire.Bytebuf.Rd.u32 rd in
        decode_auth rd;
        decode_auth rd;
        Call { xid; prog; vers; procnum; body = rest rd }
    | 1l -> (
        match Wire.Bytebuf.Rd.u32 rd with
        | 0l -> (
            decode_auth rd;
            match Wire.Bytebuf.Rd.u32 rd with
            | 0l -> Reply { rxid = xid; rbody = Success (rest rd) }
            | 1l -> Reply { rxid = xid; rbody = Prog_unavail }
            | 3l -> Reply { rxid = xid; rbody = Proc_unavail }
            | 4l -> Reply { rxid = xid; rbody = Garbage_args }
            | 5l -> Reply { rxid = xid; rbody = System_err }
            | n -> fail "unsupported accept_stat %ld" n)
        | n -> fail "unsupported reply_stat %ld" n)
    | n -> fail "bad msg_type %ld" n
  with Wire.Bytebuf.Truncated -> fail "truncated Sun RPC message"

let reply_to_result = function
  | Success b -> Ok b
  | Prog_unavail -> Error Control.Prog_unavailable
  | Proc_unavail -> Error Control.Proc_unavailable
  | Garbage_args -> Error Control.Garbage_args
  | System_err -> Error (Control.Protocol_error "remote system error")
