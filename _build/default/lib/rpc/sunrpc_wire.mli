(** Sun RPC message format (RFC 1057 subset, AUTH_NONE).

    Pure encode/decode, shared by the native {!Sunrpc} client/server
    and by HRPC when it emulates a Sun RPC peer. Argument and result
    bodies are XDR-encoded by the caller and carried opaquely here so
    the control protocol stays independent of the data representation
    — the separation the HRPC design insists on. *)

type call = {
  xid : int32;
  prog : int32;
  vers : int32;
  procnum : int32;
  body : string;  (** XDR-encoded arguments *)
}

type reply_body =
  | Success of string       (** XDR-encoded results *)
  | Prog_unavail
  | Proc_unavail
  | Garbage_args
  | System_err              (** the procedure crashed serverside *)

type reply = { rxid : int32; rbody : reply_body }

type msg = Call of call | Reply of reply

exception Bad_message of string

val encode : msg -> string
val decode : string -> msg

(** Convenience: map a reply body to the shared error vocabulary. *)
val reply_to_result : reply_body -> (string, Control.error) result
