lib/services/access.ml: Format Hashtbl Hns Hrpc Rpc String Wire
