lib/services/access.mli: Format Hns Hrpc Rpc Wire
