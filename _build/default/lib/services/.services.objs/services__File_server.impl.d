lib/services/file_server.ml: Effect Hashtbl Hrpc List Sim Wire
