lib/services/file_server.mli: Hrpc Transport Wire
