lib/services/filing.ml: Access File_server Hns List Option String Wire
