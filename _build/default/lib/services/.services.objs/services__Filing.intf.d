lib/services/filing.mli: Access Hns
