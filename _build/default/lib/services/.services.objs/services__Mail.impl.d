lib/services/mail.ml: Access Hns List Mailbox_server Printf String Wire
