lib/services/mail.mli: Access Hns Mailbox_server
