lib/services/mailbox_server.ml: Effect Hashtbl Hrpc List Sim Wire
