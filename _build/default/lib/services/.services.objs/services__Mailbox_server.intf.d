lib/services/mailbox_server.mli: Hrpc Transport Wire
