lib/services/mta.ml: Access Format Hns List Mail Printf Queue Sim
