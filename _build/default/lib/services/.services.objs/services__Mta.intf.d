lib/services/mta.mli: Hns
