lib/services/rexec.ml: Access List Rexec_server Wire
