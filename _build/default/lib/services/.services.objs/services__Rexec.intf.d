lib/services/rexec.mli: Access Hns Rexec_server
