lib/services/rexec_server.ml: Effect Hashtbl Hrpc List Printf Sim Wire
