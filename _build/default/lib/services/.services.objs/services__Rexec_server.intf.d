lib/services/rexec_server.mli: Hrpc Transport Wire
