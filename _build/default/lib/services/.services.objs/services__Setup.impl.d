lib/services/setup.ml: Clearinghouse Dns File_server Filing Hns Hrpc List Mail Mailbox_server Nsm Printf Rexec Rexec_server Rpc Sim String Transport Workload
