lib/services/setup.mli: File_server Hns Mailbox_server Rexec_server Workload
