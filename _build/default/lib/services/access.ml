type error =
  | Name_error of Hns.Errors.t
  | Call_error of Rpc.Control.error
  | Malformed_location of string
  | Service_error of string

let pp_error ppf = function
  | Name_error e -> Hns.Errors.pp ppf e
  | Call_error e -> Rpc.Control.pp_error ppf e
  | Malformed_location s -> Format.fprintf ppf "malformed location record %S" s
  | Service_error s -> Format.fprintf ppf "service error: %s" s

type t = {
  hns_ : Hns.Client.t;
  bindings : (string, Hrpc.Binding.t) Hashtbl.t;
  conns : Hrpc.Conn_cache.t;
}

let create hns =
  {
    hns_ = hns;
    bindings = Hashtbl.create 16;
    conns = Hrpc.Conn_cache.create (Hns.Client.stack hns);
  }

let hns t = t.hns_

let parse_host_spec ~default_context v =
  if v = "" then Error (Malformed_location v)
  else if String.contains v '!' then
    match Hns.Hns_name.of_string v with
    | name -> Ok name
    | exception Invalid_argument _ -> Error (Malformed_location v)
  else Ok (Hns.Hns_name.make ~context:default_context ~name:v)

let parse_location ~key ~default_context s =
  match String.index_opt s '=' with
  | None -> Error (Malformed_location s)
  | Some i ->
      let k = String.sub s 0 i in
      let v = String.sub s (i + 1) (String.length s - i - 1) in
      if not (String.equal k key) then Error (Malformed_location s)
      else parse_host_spec ~default_context v

let resolve_location_string t ~query_class (name : Hns.Hns_name.t) =
  match
    Hns.Client.resolve t.hns_ ~query_class ~payload_ty:Hns.Nsm_intf.text_payload_ty
      name
  with
  | Error e -> Error (Name_error e)
  | Ok None -> Error (Name_error (Hns.Errors.Name_not_found name))
  | Ok (Some (Wire.Value.Str s)) -> Ok s
  | Ok (Some v) -> Error (Malformed_location (Wire.Value.to_string v))

let resolve_location t ~query_class ~key (name : Hns.Hns_name.t) =
  match resolve_location_string t ~query_class name with
  | Error _ as e -> e
  | Ok s -> parse_location ~key ~default_context:name.context s

let cache_key ~service host = service ^ "@" ^ Hns.Hns_name.to_string host

let import t ~service (host : Hns.Hns_name.t) =
  let key = cache_key ~service host in
  match Hashtbl.find_opt t.bindings key with
  | Some b -> Ok b
  | None -> (
      match
        Hns.Client.find_nsm t.hns_ ~context:host.context
          ~query_class:Hns.Query_class.hrpc_binding
      with
      | Error e -> Error (Name_error e)
      | Ok resolved -> (
          match
            Hns.Nsm_intf.call (Hns.Client.stack t.hns_)
              (Hns.Nsm_intf.Remote resolved.Hns.Find_nsm.binding)
              ~payload_ty:Hns.Nsm_intf.binding_payload_ty ~service ~hns_name:host
          with
          | Error e -> Error (Name_error e)
          | Ok None -> Error (Name_error (Hns.Errors.Name_not_found host))
          | Ok (Some payload) -> (
              match Hrpc.Binding.of_value payload with
              | exception Invalid_argument m -> Error (Service_error m)
              | binding ->
                  Hashtbl.replace t.bindings key binding;
                  Ok binding)))

let forget t ~service host = Hashtbl.remove t.bindings (cache_key ~service host)

let call t binding ~procnum ~sign v =
  match Hrpc.Conn_cache.call t.conns binding ~procnum ~sign v with
  | Error e -> Error (Call_error e)
  | Ok _ as ok -> ok
