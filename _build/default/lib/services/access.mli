(** Shared client-side plumbing for the HCS network services.

    Every service client follows the same two-step dance the paper's
    software structure prescribes: an HNS query in a service-specific
    query class yields a {e location} string; importing a binding for
    the service program on that location yields a handle. This module
    owns the dance plus a per-client binding cache, so the service
    clients stay small. *)

type error =
  | Name_error of Hns.Errors.t      (** HNS/NSM failure *)
  | Call_error of Rpc.Control.error (** RPC failure to the service *)
  | Malformed_location of string    (** unparsable location record *)
  | Service_error of string         (** service-level refusal *)

val pp_error : Format.formatter -> error -> unit

type t

val create : Hns.Client.t -> t
val hns : t -> Hns.Client.t

(** [resolve_location t ~query_class ~key name] performs the HNS query
    and parses a ["key=value"] location record, interpreting the value
    as [context!host] or (defaulting the context to [name]'s) [host]. *)
val resolve_location :
  t ->
  query_class:Hns.Query_class.t ->
  key:string ->
  Hns.Hns_name.t ->
  (Hns.Hns_name.t, error) result

(** The raw location record, for services with richer formats. *)
val resolve_location_string :
  t ->
  query_class:Hns.Query_class.t ->
  Hns.Hns_name.t ->
  (string, error) result

(** Parse one [host-spec] (i.e. [context!host] or bare [host]). *)
val parse_host_spec :
  default_context:string -> string -> (Hns.Hns_name.t, error) result

(** [import t ~service host] imports (and caches) a binding for
    [service] on [host] through the HNS. *)
val import : t -> service:string -> Hns.Hns_name.t -> (Hrpc.Binding.t, error) result

(** Drop a cached binding (after a failed call, say). *)
val forget : t -> service:string -> Hns.Hns_name.t -> unit

(** One remote call with argument validation mapped into [error].
    TCP-transport bindings (Courier services) reuse a cached
    connection across calls. *)
val call :
  t ->
  Hrpc.Binding.t ->
  procnum:int ->
  sign:Wire.Idl.signature ->
  Wire.Value.t ->
  (Wire.Value.t, error) result
