let prog = 200100
let vers = 1
let proc_fetch = 1
let proc_store = 2
let proc_remove = 3
let proc_list = 4

let found_or_missing payload_ty =
  Wire.Idl.T_union ([ (0, payload_ty); (1, Wire.Idl.T_void) ], None)

let fetch_sign =
  Wire.Idl.signature ~arg:Wire.Idl.T_string ~res:(found_or_missing Wire.Idl.T_opaque)

let store_sign =
  Wire.Idl.signature
    ~arg:(Wire.Idl.T_struct [ ("name", Wire.Idl.T_string); ("data", Wire.Idl.T_opaque) ])
    ~res:Wire.Idl.T_bool

let remove_sign = Wire.Idl.signature ~arg:Wire.Idl.T_string ~res:Wire.Idl.T_bool
let list_sign = Wire.Idl.signature ~arg:Wire.Idl.T_void ~res:(Wire.Idl.T_array Wire.Idl.T_string)

type t = {
  server : Hrpc.Server.t;
  files : (string, string) Hashtbl.t;
  io_ms : float;
  mutable fetch_count : int;
  mutable store_count : int;
}

let charge ms =
  if ms > 0.0 then try Sim.Engine.sleep ms with Effect.Unhandled _ -> ()

let create stack ~suite ?port ?(io_ms = 0.0) () =
  let server = Hrpc.Server.create stack ~suite ?port ~prog ~vers () in
  let t = { server; files = Hashtbl.create 32; io_ms; fetch_count = 0; store_count = 0 } in
  Hrpc.Server.register server ~procnum:proc_fetch ~sign:fetch_sign (fun v ->
      t.fetch_count <- t.fetch_count + 1;
      charge t.io_ms;
      match Hashtbl.find_opt t.files (Wire.Value.get_str v) with
      | Some data -> Wire.Value.Union (0, Wire.Value.Opaque data)
      | None -> Wire.Value.Union (1, Wire.Value.Void));
  Hrpc.Server.register server ~procnum:proc_store ~sign:store_sign (fun v ->
      t.store_count <- t.store_count + 1;
      charge t.io_ms;
      let name = Wire.Value.get_str (Wire.Value.field v "name") in
      let data =
        match Wire.Value.field v "data" with
        | Wire.Value.Opaque s -> s
        | other -> Wire.Value.get_str other
      in
      Hashtbl.replace t.files name data;
      Wire.Value.Bool true);
  Hrpc.Server.register server ~procnum:proc_remove ~sign:remove_sign (fun v ->
      charge t.io_ms;
      let name = Wire.Value.get_str v in
      let existed = Hashtbl.mem t.files name in
      Hashtbl.remove t.files name;
      Wire.Value.Bool existed);
  Hrpc.Server.register server ~procnum:proc_list ~sign:list_sign (fun _ ->
      charge t.io_ms;
      Wire.Value.Array
        (Hashtbl.fold (fun name _ acc -> Wire.Value.Str name :: acc) t.files []
        |> List.sort compare));
  t

let put t ~name data = Hashtbl.replace t.files name data
let get t ~name = Hashtbl.find_opt t.files name
let file_count t = Hashtbl.length t.files
let binding t = Hrpc.Server.binding t.server
let start t = Hrpc.Server.start t.server
let stop t = Hrpc.Server.stop t.server
let fetches t = t.fetch_count
let stores t = t.store_count
