(** A per-subsystem file server.

    The HCS filing service does not replace the file systems of the
    component subsystems; each host keeps its own server, speaking its
    own RPC system (Sun RPC on the Unix machines, Courier on the
    XDE machines). The heterogeneous filing client ({!Filing}) finds
    the right server through the HNS and talks to it through HRPC.

    Procedures (program {!prog}): 1 fetch, 2 store, 3 remove, 4 list. *)

val prog : int
val vers : int
val proc_fetch : int
val proc_store : int
val proc_remove : int
val proc_list : int

val fetch_sign : Wire.Idl.signature
val store_sign : Wire.Idl.signature
val remove_sign : Wire.Idl.signature
val list_sign : Wire.Idl.signature

type t

(** [create stack ~suite ?port ?io_ms ()] — [io_ms] is the simulated
    disk cost charged per fetch/store. *)
val create :
  Transport.Netstack.stack ->
  suite:Hrpc.Component.protocol_suite ->
  ?port:int ->
  ?io_ms:float ->
  unit ->
  t

(** Local (administrative) access to the store. *)
val put : t -> name:string -> string -> unit

val get : t -> name:string -> string option
val file_count : t -> int
val binding : t -> Hrpc.Binding.t
val start : t -> unit
val stop : t -> unit
val fetches : t -> int
val stores : t -> int
