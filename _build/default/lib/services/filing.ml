type t = { access : Access.t }

let service_name = "hcsfs"

let create hns = { access = Access.create hns }

(* A file's location record is "filesrv=<host-spec>[;name=<local>]":
   the server holding it, plus — when the server-local name differs
   from the HNS individual name — the local name to use with that
   server. The local -> individual mapping is a function, per the
   paper's conflict-freedom requirement; this record is its inverse. *)
let locate t (name : Hns.Hns_name.t) =
  match
    Access.resolve_location_string t.access ~query_class:Hns.Query_class.file_location
      name
  with
  | Error _ as e -> e
  | Ok record -> (
      match String.split_on_char ';' record with
      | host_part :: rest -> (
          let host_spec =
            match String.index_opt host_part '=' with
            | Some i when String.sub host_part 0 i = "filesrv" ->
                Some (String.sub host_part (i + 1) (String.length host_part - i - 1))
            | _ -> None
          in
          match host_spec with
          | None -> Error (Access.Malformed_location record)
          | Some spec -> (
              match Access.parse_host_spec ~default_context:name.context spec with
              | Error _ as e -> e
              | Ok host ->
                  let local =
                    List.find_map
                      (fun part ->
                        match String.index_opt part '=' with
                        | Some i when String.sub part 0 i = "name" ->
                            Some (String.sub part (i + 1) (String.length part - i - 1))
                        | _ -> None)
                      rest
                  in
                  Ok (host, Option.value local ~default:name.name)))
      | [] -> Error (Access.Malformed_location record))

let with_server t name k =
  match locate t name with
  | Error _ as e -> e
  | Ok (host, local) -> (
      match Access.import t.access ~service:service_name host with
      | Error _ as e -> e
      | Ok binding -> k binding local)

let fetch t (name : Hns.Hns_name.t) =
  with_server t name (fun binding local ->
      match
        Access.call t.access binding ~procnum:File_server.proc_fetch
          ~sign:File_server.fetch_sign (Wire.Value.Str local)
      with
      | Error _ as e -> e
      | Ok (Wire.Value.Union (0, Wire.Value.Opaque data)) -> Ok data
      | Ok (Wire.Value.Union (1, _)) ->
          Error (Access.Name_error (Hns.Errors.Name_not_found name))
      | Ok v -> Error (Access.Service_error (Wire.Value.to_string v)))

let store t (name : Hns.Hns_name.t) data =
  with_server t name (fun binding local ->
      match
        Access.call t.access binding ~procnum:File_server.proc_store
          ~sign:File_server.store_sign
          (Wire.Value.Struct
             [ ("name", Wire.Value.Str local); ("data", Wire.Value.Opaque data) ])
      with
      | Error _ as e -> e
      | Ok (Wire.Value.Bool true) -> Ok ()
      | Ok (Wire.Value.Bool false) -> Error (Access.Service_error "store refused")
      | Ok v -> Error (Access.Service_error (Wire.Value.to_string v)))

let remove t (name : Hns.Hns_name.t) =
  with_server t name (fun binding local ->
      match
        Access.call t.access binding ~procnum:File_server.proc_remove
          ~sign:File_server.remove_sign (Wire.Value.Str local)
      with
      | Error _ as e -> e
      | Ok (Wire.Value.Bool existed) -> Ok existed
      | Ok v -> Error (Access.Service_error (Wire.Value.to_string v)))

let list_at t name =
  with_server t name (fun binding _local ->
      match
        Access.call t.access binding ~procnum:File_server.proc_list
          ~sign:File_server.list_sign Wire.Value.Void
      with
      | Error _ as e -> e
      | Ok (Wire.Value.Array vs) -> Ok (List.map Wire.Value.get_str vs)
      | Ok v -> Error (Access.Service_error (Wire.Value.to_string v)))
