(** The heterogeneous filing service: Fetch/Store over the set of
    local file systems, located through the HNS.

    A file's HNS name resolves (FileLocation query class) to a
    location record naming the host whose file server stores it; the
    client imports that server's binding and speaks HRPC — Sun RPC to
    the Unix servers, Courier to the XDE servers, invisibly.

    This is the "heterogeneous file system that mediates access to the
    set of local file systems" the paper's conclusion describes, with
    the Jasmine-style Fetch/Store interface of Section 4. *)

type t

(** The ServiceName file servers register under. *)
val service_name : string

val create : Hns.Client.t -> t

val fetch : t -> Hns.Hns_name.t -> (string, Access.error) result
val store : t -> Hns.Hns_name.t -> string -> (unit, Access.error) result
val remove : t -> Hns.Hns_name.t -> (bool, Access.error) result

(** All files on the server a file name locates to. *)
val list_at : t -> Hns.Hns_name.t -> (string list, Access.error) result
