type t = { access : Access.t; from : string }

let service_name = "hcsmail"

let create hns ~from = { access = Access.create hns; from }

(* The local-part of a user's HNS name: "alice.users.cs.washington.edu"
   delivers to mailbox user "alice". *)
let local_part (name : Hns.Hns_name.t) =
  match String.index_opt name.name '.' with
  | Some i -> String.sub name.name 0 i
  | None -> name.name

let with_site t (user : Hns.Hns_name.t) k =
  match
    Access.resolve_location t.access ~query_class:Hns.Query_class.mailbox_location
      ~key:"mailbox" user
  with
  | Error _ as e -> e
  | Ok site -> (
      match Access.import t.access ~service:service_name site with
      | Error _ as e -> e
      | Ok binding -> k site binding)

let send t ~recipient ~subject ~body =
  with_site t recipient (fun site binding ->
      match
        Access.call t.access binding ~procnum:Mailbox_server.proc_deliver
          ~sign:Mailbox_server.deliver_sign
          (Wire.Value.Struct
             [
               ("user", Wire.Value.Str (local_part recipient));
               ( "message",
                 Mailbox_server.message_to_value
                   { Mailbox_server.from = t.from; subject; body } );
             ])
      with
      | Error _ as e -> e
      | Ok (Wire.Value.Bool true) -> Ok site
      | Ok (Wire.Value.Bool false) ->
          Error
            (Access.Service_error
               (Printf.sprintf "no such user %S at %s" (local_part recipient)
                  (Hns.Hns_name.to_string site)))
      | Ok v -> Error (Access.Service_error (Wire.Value.to_string v)))

let read_mailbox t ~user =
  with_site t user (fun _site binding ->
      match
        Access.call t.access binding ~procnum:Mailbox_server.proc_read
          ~sign:Mailbox_server.read_sign (Wire.Value.Str (local_part user))
      with
      | Error _ as e -> e
      | Ok (Wire.Value.Array vs) -> Ok (List.map Mailbox_server.message_of_value vs)
      | Ok v -> Error (Access.Service_error (Wire.Value.to_string v)))
