(** The HCS mail service client: deliver to a user's mailbox site,
    found through the HNS (MailboxLocation query class). *)

type t

val service_name : string

(** [create hns ~from] — [from] is the sender's printable address. *)
val create : Hns.Client.t -> from:string -> t

(** [send t ~recipient ~subject ~body] resolves the recipient's
    mailbox site, imports the mailbox service there, and delivers.
    Returns the site's HNS name on success; an unknown user at a
    valid site is a [Service_error]. *)
val send :
  t ->
  recipient:Hns.Hns_name.t ->
  subject:string ->
  body:string ->
  (Hns.Hns_name.t, Access.error) result

(** Read a user's mailbox from their site. The [user] name is the
    same HNS name used for sending. *)
val read_mailbox :
  t -> user:Hns.Hns_name.t -> (Mailbox_server.message list, Access.error) result
