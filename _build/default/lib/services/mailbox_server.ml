let prog = 200200
let vers = 1
let proc_deliver = 1
let proc_read = 2
let proc_count = 3

type message = { from : string; subject : string; body : string }

let message_ty =
  Wire.Idl.T_struct
    [ ("from", Wire.Idl.T_string); ("subject", Wire.Idl.T_string); ("body", Wire.Idl.T_string) ]

let message_to_value m =
  Wire.Value.Struct
    [ ("from", Wire.Value.Str m.from); ("subject", Str m.subject); ("body", Str m.body) ]

let message_of_value v =
  {
    from = Wire.Value.get_str (Wire.Value.field v "from");
    subject = Wire.Value.get_str (Wire.Value.field v "subject");
    body = Wire.Value.get_str (Wire.Value.field v "body");
  }

let deliver_sign =
  Wire.Idl.signature
    ~arg:(Wire.Idl.T_struct [ ("user", Wire.Idl.T_string); ("message", message_ty) ])
    ~res:Wire.Idl.T_bool

let read_sign =
  Wire.Idl.signature ~arg:Wire.Idl.T_string ~res:(Wire.Idl.T_array message_ty)

let count_sign = Wire.Idl.signature ~arg:Wire.Idl.T_string ~res:Wire.Idl.T_int

type t = {
  server : Hrpc.Server.t;
  boxes : (string, message list ref) Hashtbl.t;
  io_ms : float;
  mutable delivery_count : int;
}

let charge ms =
  if ms > 0.0 then try Sim.Engine.sleep ms with Effect.Unhandled _ -> ()

let create stack ?(suite = Hrpc.Component.sunrpc_suite) ?port ?(io_ms = 0.0) () =
  let server = Hrpc.Server.create stack ~suite ?port ~prog ~vers () in
  let t = { server; boxes = Hashtbl.create 16; io_ms; delivery_count = 0 } in
  Hrpc.Server.register server ~procnum:proc_deliver ~sign:deliver_sign (fun v ->
      charge t.io_ms;
      let user = Wire.Value.get_str (Wire.Value.field v "user") in
      match Hashtbl.find_opt t.boxes user with
      | None -> Wire.Value.Bool false
      | Some box ->
          box := !box @ [ message_of_value (Wire.Value.field v "message") ];
          t.delivery_count <- t.delivery_count + 1;
          Wire.Value.Bool true);
  Hrpc.Server.register server ~procnum:proc_read ~sign:read_sign (fun v ->
      charge t.io_ms;
      match Hashtbl.find_opt t.boxes (Wire.Value.get_str v) with
      | None -> Wire.Value.Array []
      | Some box -> Wire.Value.Array (List.map message_to_value !box));
  Hrpc.Server.register server ~procnum:proc_count ~sign:count_sign (fun v ->
      charge t.io_ms;
      match Hashtbl.find_opt t.boxes (Wire.Value.get_str v) with
      | None -> Wire.Value.int (-1)
      | Some box -> Wire.Value.int (List.length !box));
  t

let add_user t user =
  if not (Hashtbl.mem t.boxes user) then Hashtbl.replace t.boxes user (ref [])

let mailbox t ~user =
  match Hashtbl.find_opt t.boxes user with Some box -> !box | None -> []

let binding t = Hrpc.Server.binding t.server
let start t = Hrpc.Server.start t.server
let stop t = Hrpc.Server.stop t.server
let deliveries t = t.delivery_count
