(** A per-site mailbox server for the HCS mail service.

    Each subsystem keeps its users' mailboxes on its own machines; the
    mail service finds the right site through the HNS (MailboxLocation
    query class) and delivers through HRPC.

    Procedures (program {!prog}): 1 deliver, 2 read, 3 count. *)

val prog : int
val vers : int
val proc_deliver : int
val proc_read : int
val proc_count : int

type message = { from : string; subject : string; body : string }

val message_ty : Wire.Idl.ty
val message_to_value : message -> Wire.Value.t
val message_of_value : Wire.Value.t -> message
val deliver_sign : Wire.Idl.signature
val read_sign : Wire.Idl.signature
val count_sign : Wire.Idl.signature

type t

val create :
  Transport.Netstack.stack ->
  ?suite:Hrpc.Component.protocol_suite ->
  ?port:int ->
  ?io_ms:float ->
  unit ->
  t

(** Users must exist before delivery succeeds. *)
val add_user : t -> string -> unit

val mailbox : t -> user:string -> message list
val binding : t -> Hrpc.Binding.t
val start : t -> unit
val stop : t -> unit
val deliveries : t -> int
