type outcome = Delivered of Hns.Hns_name.t | Bounced of string

type item = {
  recipient : Hns.Hns_name.t;
  subject : string;
  body : string;
  mutable tries : int;
}

type t = {
  mail : Mail.t;
  retry_interval_ms : float;
  max_attempts : int;
  queue : item Queue.t;
  wakeup : unit Sim.Engine.Mailbox.mailbox;
  mutable running : bool;
  mutable delivered_count : int;
  mutable attempt_count : int;
  mutable bounce_log : (Hns.Hns_name.t * string) list; (* newest first *)
}

let create hns ~from ?(retry_interval_ms = 30_000.0) ?(max_attempts = 8) () =
  {
    mail = Mail.create hns ~from;
    retry_interval_ms;
    max_attempts;
    queue = Queue.create ();
    wakeup = Sim.Engine.Mailbox.create ();
    running = false;
    delivered_count = 0;
    attempt_count = 0;
    bounce_log = [];
  }

let submit t ~recipient ~subject ~body =
  Queue.push { recipient; subject; body; tries = 0 } t.queue;
  Sim.Engine.Mailbox.send t.wakeup ()

let queue_length t = Queue.length t.queue
let delivered t = t.delivered_count
let bounces t = List.rev t.bounce_log
let attempts t = t.attempt_count

let bounce t item reason = t.bounce_log <- (item.recipient, reason) :: t.bounce_log

(* Attempt everything currently queued once; requeue transient
   failures that still have attempts left. *)
let run_queue_once t =
  let pending = Queue.length t.queue in
  for _ = 1 to pending do
    let item = Queue.pop t.queue in
    item.tries <- item.tries + 1;
    t.attempt_count <- t.attempt_count + 1;
    match
      Mail.send t.mail ~recipient:item.recipient ~subject:item.subject
        ~body:item.body
    with
    | Ok _site -> t.delivered_count <- t.delivered_count + 1
    | Error (Access.Service_error reason) ->
        (* the site answered: the user does not exist there *)
        bounce t item reason
    | Error (Access.Name_error (Hns.Errors.Name_not_found _)) ->
        bounce t item "no mailbox record"
    | Error e ->
        (* transient: site or name machinery unreachable *)
        if item.tries >= t.max_attempts then
          bounce t item
            (Printf.sprintf "giving up after %d attempts: %s" item.tries
               (Format.asprintf "%a" Access.pp_error e))
        else Queue.push item t.queue
  done

let start t =
  if t.running then invalid_arg "Mta.start: already running";
  t.running <- true;
  Sim.Engine.spawn_child ~name:"mta" (fun () ->
      while t.running do
        if Queue.is_empty t.queue then
          (* idle: wait for a submission (or a stop poke) *)
          ignore (Sim.Engine.Mailbox.recv t.wakeup)
        else begin
          run_queue_once t;
          if not (Queue.is_empty t.queue) then Sim.Engine.sleep t.retry_interval_ms
        end
      done)

let stop t =
  t.running <- false;
  (* poke the runner out of its idle wait *)
  Sim.Engine.Mailbox.send t.wakeup ()
