(** Store-and-forward message transfer over the HCS mail service.

    Real internet mail is queued: the submitting host accepts the
    message immediately and a background transfer agent delivers it,
    retrying through site outages and bouncing what can never be
    delivered. This MTA runs as a simulated process over {!Mail}; the
    mailbox site for each message is found through the HNS at delivery
    time — so a recipient whose mailbox {e moves} between retries is
    delivered to the new site, direct access doing the forwarding. *)

type outcome = Delivered of Hns.Hns_name.t | Bounced of string

type t

(** [create hns ~from ?retry_interval_ms ?max_attempts ()] — transient
    failures are retried every [retry_interval_ms] (default 30 s) up
    to [max_attempts] (default 8), then bounced. *)
val create :
  Hns.Client.t ->
  from:string ->
  ?retry_interval_ms:float ->
  ?max_attempts:int ->
  unit ->
  t

(** Queue a message; returns immediately. *)
val submit : t -> recipient:Hns.Hns_name.t -> subject:string -> body:string -> unit

(** Messages waiting (including ones between retries). *)
val queue_length : t -> int

val delivered : t -> int

(** (recipient, reason) for every bounce so far, oldest first. *)
val bounces : t -> (Hns.Hns_name.t * string) list

(** Total delivery attempts (for observing retry behaviour). *)
val attempts : t -> int

(** Spawn the queue runner. In-process only. *)
val start : t -> unit

val stop : t -> unit
