type t = { access : Access.t }

let service_name = "rexecd"

let create hns = { access = Access.create hns }

let run t ~host ~command ~args =
  match Access.import t.access ~service:service_name host with
  | Error _ as e -> e
  | Ok binding -> (
      match
        Access.call t.access binding ~procnum:Rexec_server.proc_exec
          ~sign:Rexec_server.exec_sign
          (Wire.Value.Struct
             [
               ("command", Wire.Value.Str command);
               ("args", Wire.Value.Array (List.map (fun a -> Wire.Value.Str a) args));
             ])
      with
      | Error _ as e -> e
      | Ok v ->
          Ok
            {
              Rexec_server.status = Wire.Value.get_int (Wire.Value.field v "status");
              output = Wire.Value.get_str (Wire.Value.field v "output");
            })
