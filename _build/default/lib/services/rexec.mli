(** Remote computation client: run a command on a host found through
    the HNS. *)

type t

val service_name : string

val create : Hns.Client.t -> t

(** [run t ~host ~command ~args] imports the host's rexec service and
    executes. A nonzero status is returned, not an error. *)
val run :
  t ->
  host:Hns.Hns_name.t ->
  command:string ->
  args:string list ->
  (Rexec_server.outcome, Access.error) result
