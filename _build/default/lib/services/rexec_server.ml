let prog = 200300
let vers = 1
let proc_exec = 1

type outcome = { status : int; output : string }

let exec_sign =
  Wire.Idl.signature
    ~arg:
      (Wire.Idl.T_struct
         [ ("command", Wire.Idl.T_string); ("args", Wire.Idl.T_array Wire.Idl.T_string) ])
    ~res:(Wire.Idl.T_struct [ ("status", Wire.Idl.T_int); ("output", Wire.Idl.T_string) ])

type command = { cpu_ms : float; run : string list -> string }

type t = {
  server : Hrpc.Server.t;
  commands : (string, command) Hashtbl.t;
  mutable exec_count : int;
}

let charge ms =
  if ms > 0.0 then try Sim.Engine.sleep ms with Effect.Unhandled _ -> ()

let create stack ?(suite = Hrpc.Component.sunrpc_suite) ?port () =
  let server = Hrpc.Server.create stack ~suite ?port ~prog ~vers () in
  let t = { server; commands = Hashtbl.create 8; exec_count = 0 } in
  Hrpc.Server.register server ~procnum:proc_exec ~sign:exec_sign (fun v ->
      let command = Wire.Value.get_str (Wire.Value.field v "command") in
      let args =
        List.map Wire.Value.get_str (Wire.Value.get_array (Wire.Value.field v "args"))
      in
      let status, output =
        match Hashtbl.find_opt t.commands command with
        | None -> (127, Printf.sprintf "%s: command not found" command)
        | Some c -> (
            t.exec_count <- t.exec_count + 1;
            charge c.cpu_ms;
            match c.run args with
            | out -> (0, out)
            | exception Failure m -> (1, m))
      in
      Wire.Value.Struct
        [ ("status", Wire.Value.int status); ("output", Wire.Value.Str output) ]);
  t

let register_command t name ~cpu_ms run = Hashtbl.replace t.commands name { cpu_ms; run }
let binding t = Hrpc.Server.binding t.server
let start t = Hrpc.Server.start t.server
let stop t = Hrpc.Server.stop t.server
let executions t = t.exec_count
