(** A remote-computation server — the third HCS core network service.

    Executes named commands from a registered table (this is a
    simulation; the "commands" are closures that may charge virtual
    CPU). Procedures (program {!prog}): 1 exec. *)

val prog : int
val vers : int
val proc_exec : int

type outcome = { status : int; output : string }

val exec_sign : Wire.Idl.signature

type t

val create :
  Transport.Netstack.stack ->
  ?suite:Hrpc.Component.protocol_suite ->
  ?port:int ->
  unit ->
  t

(** [register_command t name ~cpu_ms f] — [f args] produces output;
    executing charges [cpu_ms] of virtual CPU. *)
val register_command :
  t -> string -> cpu_ms:float -> (string list -> string) -> unit

val binding : t -> Hrpc.Binding.t
val start : t -> unit
val stop : t -> unit
val executions : t -> int
