module S = Workload.Scenario

type t = {
  unix_fs : File_server.t;
  xde_fs : File_server.t;
  mailhub : Mailbox_server.t;
  mail_annex : Mailbox_server.t;
  rexec_unix : Rexec_server.t;
  rexec_service_host : Rexec_server.t;
}

let unix_files =
  [
    ("report.tex", "\\documentclass{article} The HNS design report.");
    ("kernel.o", "\x7fOBJ\x00\x01unix-kernel-object");
    ("todo", "calibrate; write tests; ship");
  ]

let xde_files =
  [
    ("notes", "XDE desktop notes: mesa modules to rebuild");
    ("fonts.db", "press-fonts-database");
  ]

let unix_file_name (scn : S.t) file =
  Hns.Hns_name.make ~context:scn.bind_context
    ~name:(Printf.sprintf "%s.files.%s" file scn.zone)

let xde_file_name (scn : S.t) file =
  Hns.Hns_name.make ~context:scn.ch_context ~name:file

let user_name (scn : S.t) user =
  Hns.Hns_name.make ~context:scn.bind_context
    ~name:(Printf.sprintf "%s.users.%s" user scn.zone)

let host_name (scn : S.t) stack =
  Printf.sprintf "%s.%s" (Transport.Netstack.host stack).Sim.Topology.hostname scn.zone

let install (scn : S.t) =
  let module C = Workload.Calib in
  (* --- file servers --- *)
  let unix_fs =
    File_server.create scn.bind_stack ~suite:Hrpc.Component.sunrpc_suite ~port:2201
      ~io_ms:12.0 ()
  in
  List.iter (fun (name, data) -> File_server.put unix_fs ~name data) unix_files;
  File_server.start unix_fs;
  let xde_fs =
    File_server.create scn.ch_stack ~suite:Hrpc.Component.courier_suite ~port:742
      ~io_ms:18.0 ()
  in
  List.iter (fun (name, data) -> File_server.put xde_fs ~name data) xde_files;
  File_server.start xde_fs;
  (* --- mailbox servers --- *)
  let mailhub = Mailbox_server.create scn.bind_stack ~port:2202 ~io_ms:8.0 () in
  List.iter (Mailbox_server.add_user mailhub) [ "alice"; "bob"; "carol" ];
  Mailbox_server.start mailhub;
  let mail_annex = Mailbox_server.create scn.service_stack ~port:2202 ~io_ms:8.0 () in
  Mailbox_server.add_user mail_annex "dave";
  Mailbox_server.start mail_annex;
  (* --- rexec daemons --- *)
  let mk_rexec stack =
    let r = Rexec_server.create stack ~port:2203 () in
    let host = host_name scn stack in
    Rexec_server.register_command r "hostname" ~cpu_ms:2.0 (fun _ -> host);
    Rexec_server.register_command r "date" ~cpu_ms:2.0 (fun _ ->
        Printf.sprintf "virtual +%.0f ms" (Sim.Engine.time ()));
    Rexec_server.register_command r "echo" ~cpu_ms:1.0 (String.concat " ");
    Rexec_server.register_command r "compile" ~cpu_ms:500.0 (fun args ->
        Printf.sprintf "compiled %s" (String.concat " " args));
    Rexec_server.start r;
    r
  in
  let rexec_unix = mk_rexec scn.bind_stack in
  let rexec_service_host = mk_rexec scn.service_stack in
  (* --- Sun binding machinery: portmappers on the hosts that gained
     services, plus ServiceName entries in the BIND binding NSM. --- *)
  let pm_bind =
    Rpc.Portmap.start ~service_overhead_ms:C.portmapper_service_overhead_ms
      scn.bind_stack
  in
  Rpc.Portmap.set pm_bind ~prog:File_server.prog ~vers:File_server.vers
    ~protocol:Rpc.Portmap.P_udp ~port:2201;
  Rpc.Portmap.set pm_bind ~prog:Mailbox_server.prog ~vers:Mailbox_server.vers
    ~protocol:Rpc.Portmap.P_udp ~port:2202;
  Rpc.Portmap.set pm_bind ~prog:Rexec_server.prog ~vers:Rexec_server.vers
    ~protocol:Rpc.Portmap.P_udp ~port:2203;
  (* the scenario's service host already runs a portmapper *)
  Rpc.Portmap.set scn.portmap ~prog:Mailbox_server.prog ~vers:Mailbox_server.vers
    ~protocol:Rpc.Portmap.P_udp ~port:2202;
  Rpc.Portmap.set scn.portmap ~prog:Rexec_server.prog ~vers:Rexec_server.vers
    ~protocol:Rpc.Portmap.P_udp ~port:2203;
  List.iter
    (fun (service, prog, vers) ->
      Nsm.Binding_nsm_bind.add_service scn.remote_binding_nsm_bind service ~prog ~vers)
    [
      (Filing.service_name, File_server.prog, File_server.vers);
      (Mail.service_name, Mailbox_server.prog, Mailbox_server.vers);
      (Rexec.service_name, Rexec_server.prog, Rexec_server.vers);
    ];
  (* --- Xerox side: the XDE file server travels through the
     Clearinghouse as a service object holding its Courier binding. --- *)
  let ch_db = Clearinghouse.Ch_server.db scn.ch in
  Clearinghouse.Ch_db.store ch_db
    (Clearinghouse.Ch_name.make ~local:Filing.service_name ~domain:scn.ch_domain
       ~org:scn.ch_org)
    (Clearinghouse.Property.item Clearinghouse.Property.Id.service_binding
       (Hrpc.Binding.to_bytes (File_server.binding xde_fs)));
  (* XDE files are Clearinghouse objects; their description property is
     the location record. *)
  List.iter
    (fun (file, _) ->
      Clearinghouse.Ch_db.store ch_db
        (Clearinghouse.Ch_name.make ~local:file ~domain:scn.ch_domain ~org:scn.ch_org)
        (Clearinghouse.Property.item Clearinghouse.Property.Id.description
           (Printf.sprintf "filesrv=%s!dandelion" scn.ch_context)))
    xde_files;
  (* A FileLocation NSM for the Clearinghouse, served and registered. *)
  let file_nsm_ch =
    Nsm.File_nsm.create_ch scn.nsm_stack
      ~ch_server:(Clearinghouse.Ch_server.addr scn.ch) ~credentials:scn.credentials
      ~domain:scn.ch_domain ~org:scn.ch_org ~per_query_ms:C.nsm_per_query_ms ()
  in
  let file_nsm_ch_server =
    Nsm.Text_nsm.serve file_nsm_ch
      ~prog:(Hns.Nsm_intf.nsm_prog_base + 20)
      ~service_overhead_ms:C.nsm_service_overhead_ms ()
  in
  Hrpc.Server.start file_nsm_ch_server;
  (* Registration goes through an administrative meta client. *)
  let admin_meta =
    Hns.Meta_client.create scn.meta_stack ~meta_server:(Dns.Server.addr scn.meta_bind)
      ~cache:(Hns.Cache.create ~mode:Hns.Cache.Demarshalled ()) ()
  in
  (match
     Hns.Admin.register_nsm_server admin_meta ~name:"file-ch" ~ns:"PARC-CH"
       ~query_class:Hns.Query_class.file_location
       ~host:(host_name scn scn.nsm_stack) ~host_context:scn.bind_context
       (Hrpc.Server.binding file_nsm_ch_server)
   with
  | Ok () -> ()
  | Error e -> failwith (Hns.Errors.to_string e));
  (* --- location records for the Unix-hosted files and for dave --- *)
  let public_db = Dns.Zone.db scn.public_zone in
  List.iter
    (fun (file, _) ->
      Dns.Db.add public_db
        (Dns.Rr.make
           (Dns.Name.of_string (Printf.sprintf "%s.files.%s" file scn.zone))
           (Dns.Rr.Txt
              [
                Printf.sprintf "filesrv=%s;name=%s" (host_name scn scn.bind_stack) file;
              ])))
    unix_files;
  Dns.Db.add public_db
    (Dns.Rr.make
       (Dns.Name.of_string (Printf.sprintf "dave.users.%s" scn.zone))
       (Dns.Rr.Txt [ Printf.sprintf "mailbox=%s" (host_name scn scn.service_stack) ]));
  { unix_fs; xde_fs; mailhub; mail_annex; rexec_unix; rexec_service_host }
