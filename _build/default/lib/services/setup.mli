(** Install the HCS network services into a scenario testbed:
    file servers (Sun RPC on the Unix host, Courier on the XDE host),
    mailbox servers on two sites, and rexec daemons — each registered
    with its host's binding machinery and locatable through the HNS.

    Must run inside {!Workload.Scenario.in_sim}. *)

type t = {
  unix_fs : File_server.t;   (** on the BIND host, Sun RPC *)
  xde_fs : File_server.t;    (** on the Clearinghouse host, Courier *)
  mailhub : Mailbox_server.t;   (** samoa: alice, bob, carol *)
  mail_annex : Mailbox_server.t;  (** vanuatu: dave *)
  rexec_unix : Rexec_server.t;
  rexec_service_host : Rexec_server.t;
}

(** Files seeded on each server. *)
val unix_files : (string * string) list

val xde_files : (string * string) list

val install : Workload.Scenario.t -> t

(** The HNS name of a Unix-hosted file ([<file>.files.<zone>]). *)
val unix_file_name : Workload.Scenario.t -> string -> Hns.Hns_name.t

(** The HNS name of an XDE-hosted file (a Clearinghouse object). *)
val xde_file_name : Workload.Scenario.t -> string -> Hns.Hns_name.t

(** The HNS name of a user ([<user>.users.<zone>]). *)
val user_name : Workload.Scenario.t -> string -> Hns.Hns_name.t
