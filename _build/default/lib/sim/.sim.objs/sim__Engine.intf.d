lib/sim/engine.mli:
