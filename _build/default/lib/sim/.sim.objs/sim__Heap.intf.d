lib/sim/heap.mli:
