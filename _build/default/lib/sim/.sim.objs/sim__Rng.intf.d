lib/sim/rng.mli:
