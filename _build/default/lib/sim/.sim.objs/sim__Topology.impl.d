lib/sim/topology.ml: Format Hashtbl List Printf
