lib/sim/topology.mli: Format
