(** Array-backed binary min-heap, used as the simulator's event queue.

    The heap is polymorphic in its element type; ordering is fixed at
    creation time by a [leq] total preorder. All operations are the
    textbook O(log n) except [of_list] which is O(n log n). *)

type 'a t

(** [create ~leq] is an empty heap ordered by [leq]. [leq a b] must be
    true when [a] should be popped no later than [b]. *)
val create : leq:('a -> 'a -> bool) -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

(** [pop h] removes and returns a minimal element. Raises [Not_found]
    on an empty heap. *)
val pop : 'a t -> 'a

(** [peek h] is a minimal element without removing it. Raises
    [Not_found] on an empty heap. *)
val peek : 'a t -> 'a

val clear : 'a t -> unit
val of_list : leq:('a -> 'a -> bool) -> 'a list -> 'a t

(** [to_sorted_list h] drains [h], returning all elements in pop order. *)
val to_sorted_list : 'a t -> 'a list
