type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = seed }

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = bits64 t in
  { state = mix64 seed }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Take the top bits: splitmix64 low bits are fine, but this matches
     the usual rejection-free approximation and is unbiased enough for
     simulation workloads. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  v mod n

let float t x =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  x *. (v /. 9007199254740992.0 (* 2^53 *))

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~mean =
  if mean <= 0.0 then invalid_arg "Rng.exponential: mean must be positive";
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then epsilon_float else u in
  -.mean *. log u

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))
