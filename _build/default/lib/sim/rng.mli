(** Deterministic pseudo-random number generation (splitmix64).

    The simulator must be fully reproducible, so nothing in this
    repository uses [Random] from the stdlib; every stochastic choice
    flows through an explicitly-seeded [Rng.t]. *)

type t

val create : seed:int64 -> t

(** [split t] derives an independent stream, leaving [t] usable.
    Use one stream per concern so adding draws in one place does not
    perturb another. *)
val split : t -> t

(** Next raw 64-bit value. *)
val bits64 : t -> int64

(** [int t n] is uniform in [0, n); requires [n > 0]. *)
val int : t -> int -> int

(** [float t x] is uniform in [0, x). *)
val float : t -> float -> float

(** Uniform in [lo, hi]. Requires [lo <= hi]. *)
val int_in : t -> int -> int -> int

val bool : t -> bool

(** Exponentially distributed with the given mean (> 0). *)
val exponential : t -> mean:float -> float

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit

(** [pick t arr] is a uniformly chosen element; requires [arr] nonempty. *)
val pick : t -> 'a array -> 'a
