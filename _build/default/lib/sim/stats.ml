type t = {
  stat_name : string;
  mutable xs : float list; (* reversed insertion order *)
  mutable n : int;
  mutable sum : float;
  mutable sumsq : float;
  mutable lo : float;
  mutable hi : float;
}

let create ?(name = "") () =
  { stat_name = name; xs = []; n = 0; sum = 0.0; sumsq = 0.0; lo = infinity; hi = neg_infinity }

let name t = t.stat_name

let add t x =
  t.xs <- x :: t.xs;
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  t.sumsq <- t.sumsq +. (x *. x);
  if x < t.lo then t.lo <- x;
  if x > t.hi then t.hi <- x

let count t = t.n
let total t = t.sum
let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n

let stddev t =
  if t.n < 2 then 0.0
  else begin
    let m = mean t in
    let var = (t.sumsq /. float_of_int t.n) -. (m *. m) in
    sqrt (Float.max 0.0 var)
  end

let min_value t = t.lo
let max_value t = t.hi
let samples t = List.rev t.xs

let percentile t p =
  if t.n = 0 then invalid_arg "Stats.percentile: no samples";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = List.sort compare t.xs |> Array.of_list in
  let rank = p /. 100.0 *. float_of_int (t.n - 1) in
  let lo_i = int_of_float (floor rank) and hi_i = int_of_float (ceil rank) in
  if lo_i = hi_i then sorted.(lo_i)
  else begin
    let frac = rank -. float_of_int lo_i in
    sorted.(lo_i) +. (frac *. (sorted.(hi_i) -. sorted.(lo_i)))
  end

let median t = percentile t 50.0

let clear t =
  t.xs <- [];
  t.n <- 0;
  t.sum <- 0.0;
  t.sumsq <- 0.0;
  t.lo <- infinity;
  t.hi <- neg_infinity

let pp ppf t =
  if t.n = 0 then Format.fprintf ppf "%s: (no samples)" t.stat_name
  else
    Format.fprintf ppf "%s: n=%d mean=%.2f sd=%.2f min=%.2f p50=%.2f p95=%.2f max=%.2f"
      t.stat_name t.n (mean t) (stddev t) t.lo (median t) (percentile t 95.0) t.hi

module Histogram = struct
  type h = {
    lo : float;
    hi : float;
    width : float;
    bins : int array;
    mutable under : int;
    mutable over : int;
  }

  let create ~lo ~hi ~bins =
    if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
    if hi <= lo then invalid_arg "Histogram.create: empty range";
    { lo; hi; width = (hi -. lo) /. float_of_int bins; bins = Array.make bins 0; under = 0; over = 0 }

  let add h x =
    if x < h.lo then h.under <- h.under + 1
    else if x >= h.hi then h.over <- h.over + 1
    else begin
      let i = int_of_float ((x -. h.lo) /. h.width) in
      let i = min i (Array.length h.bins - 1) in
      h.bins.(i) <- h.bins.(i) + 1
    end

  let counts h = Array.copy h.bins
  let underflow h = h.under
  let overflow h = h.over
  let total h = h.under + h.over + Array.fold_left ( + ) 0 h.bins

  let pp ppf h =
    let peak = Array.fold_left max 1 h.bins in
    Array.iteri
      (fun i c ->
        let b_lo = h.lo +. (float_of_int i *. h.width) in
        let bar = String.make (c * 40 / peak) '#' in
        Format.fprintf ppf "%10.2f..%-10.2f %6d %s@." b_lo (b_lo +. h.width) c bar)
      h.bins;
    if h.under > 0 then Format.fprintf ppf "underflow: %d@." h.under;
    if h.over > 0 then Format.fprintf ppf "overflow: %d@." h.over
end
