(** Sample accumulation and summary statistics for experiments.

    Samples are stored, so percentiles are exact; memory is linear in
    the number of observations (experiments here record at most a few
    thousand samples). *)

type t

val create : ?name:string -> unit -> t
val name : t -> string
val add : t -> float -> unit
val count : t -> int
val total : t -> float
val mean : t -> float

(** Population standard deviation; [0.] for fewer than two samples. *)
val stddev : t -> float

val min_value : t -> float
val max_value : t -> float

(** [percentile t p] for [p] in [0., 100.]; linear interpolation
    between closest ranks. Raises [Invalid_argument] on an empty
    accumulator or out-of-range [p]. *)
val percentile : t -> float -> float

val median : t -> float

(** All samples in insertion order. *)
val samples : t -> float list

val clear : t -> unit

(** One-line summary: name, n, mean, stddev, min, p50, p95, max. *)
val pp : Format.formatter -> t -> unit

(** {1 Histograms with fixed-width bins} *)

module Histogram : sig
  type h

  (** [create ~lo ~hi ~bins] covers [lo, hi) with [bins] equal bins
      plus underflow/overflow counters. *)
  val create : lo:float -> hi:float -> bins:int -> h

  val add : h -> float -> unit
  val counts : h -> int array
  val underflow : h -> int
  val overflow : h -> int
  val total : h -> int

  (** Render as rows of [lo..hi count ####]. *)
  val pp : Format.formatter -> h -> unit
end
