type host = { id : int; hostname : string }

type link = { latency_ms : float; per_byte_ms : float }

type t = {
  mutable host_list : host list; (* reversed registration order *)
  mutable next_id : int;
  by_name : (string, host) Hashtbl.t;
  links : (int * int, link) Hashtbl.t;
  default_latency_ms : float;
  default_per_byte_ms : float;
  loopback_ms : float;
}

let create ?(default_latency_ms = 0.5) ?(default_per_byte_ms = 0.0008)
    ?(loopback_ms = 0.05) () =
  {
    host_list = [];
    next_id = 0;
    by_name = Hashtbl.create 16;
    links = Hashtbl.create 16;
    default_latency_ms;
    default_per_byte_ms;
    loopback_ms;
  }

let add_host t name =
  if Hashtbl.mem t.by_name name then
    invalid_arg (Printf.sprintf "Topology.add_host: duplicate host %S" name);
  let h = { id = t.next_id; hostname = name } in
  t.next_id <- t.next_id + 1;
  t.host_list <- h :: t.host_list;
  Hashtbl.replace t.by_name name h;
  h

let find_host t name = Hashtbl.find_opt t.by_name name
let hosts t = List.rev t.host_list

let link_key a b = if a.id <= b.id then (a.id, b.id) else (b.id, a.id)

let set_link t a b ~latency_ms ~per_byte_ms =
  Hashtbl.replace t.links (link_key a b) { latency_ms; per_byte_ms }

let delay t ~src ~dst ~bytes =
  if src.id = dst.id then t.loopback_ms
  else begin
    let link =
      match Hashtbl.find_opt t.links (link_key src dst) with
      | Some l -> l
      | None -> { latency_ms = t.default_latency_ms; per_byte_ms = t.default_per_byte_ms }
    in
    link.latency_ms +. (float_of_int bytes *. link.per_byte_ms)
  end

let same_host a b = a.id = b.id
let pp_host ppf h = Format.fprintf ppf "%s#%d" h.hostname h.id
