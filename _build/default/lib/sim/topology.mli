(** Hosts and network delay model.

    The testbed in the paper is a set of MicroVAX-IIs on a 10 Mbit/s
    Ethernet at light load. We model message delay between two distinct
    hosts as [latency + bytes * per_byte]; messages a host sends to
    itself cross the loopback at a much smaller fixed cost. Individual
    links can be overridden (e.g. to model a slow gateway). *)

type t

type host = private { id : int; hostname : string }

(** 10 Mbit/s Ethernet defaults: 0.5 ms fixed + 0.8 us/byte wire time,
    0.05 ms loopback. These only set the floor; the dominant costs in
    the paper (server CPU, disk, auth) are modelled by the services. *)
val create :
  ?default_latency_ms:float ->
  ?default_per_byte_ms:float ->
  ?loopback_ms:float ->
  unit ->
  t

(** [add_host t name] registers a host. Host names must be unique.
    Raises [Invalid_argument] on duplicates. *)
val add_host : t -> string -> host

val find_host : t -> string -> host option
val hosts : t -> host list

(** Override delay parameters for the (unordered) pair of hosts. *)
val set_link : t -> host -> host -> latency_ms:float -> per_byte_ms:float -> unit

(** [delay t ~src ~dst ~bytes] is the simulated transit time in ms. *)
val delay : t -> src:host -> dst:host -> bytes:int -> float

val same_host : host -> host -> bool
val pp_host : Format.formatter -> host -> unit
