(** Lightweight event tracing for debugging and for reproducing the
    paper's Figure 2.1 as a message-sequence walk-through.

    A trace is a bounded ring of timestamped, tagged lines. Tracing is
    off by default and costs one branch per call when disabled. *)

type t

val create : ?capacity:int -> unit -> t
val enable : t -> unit
val disable : t -> unit
val enabled : t -> bool

(** [record t ~time ~tag msg] appends a line (dropping the oldest when
    full). No-op when disabled. *)
val record : t -> time:float -> tag:string -> string -> unit

(** Formatted convenience wrapper over {!record}. *)
val recordf :
  t -> time:float -> tag:string -> ('a, Format.formatter, unit, unit) format4 -> 'a

(** Oldest-first. *)
val lines : t -> (float * string * string) list

val clear : t -> unit
val pp : Format.formatter -> t -> unit
