lib/transport/address.ml: Format Int Int32 Printf
