lib/transport/address.mli: Format
