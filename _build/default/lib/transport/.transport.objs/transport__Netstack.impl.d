lib/transport/netstack.ml: Address Float Hashtbl Int Int32 List Printf Sim
