lib/transport/netstack.mli: Address Sim
