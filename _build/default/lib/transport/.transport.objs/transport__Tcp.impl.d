lib/transport/tcp.ml: Address Netstack Sim String
