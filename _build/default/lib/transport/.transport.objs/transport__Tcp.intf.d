lib/transport/tcp.mli: Address Netstack
