lib/transport/udp.ml: Address List Netstack Sim String
