lib/transport/udp.mli: Address Netstack
