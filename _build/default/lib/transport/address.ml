type ip = int32
type port = int

type t = { ip : ip; port : port }

let make ip port = { ip; port }
let equal a b = Int32.equal a.ip b.ip && a.port = b.port

let compare a b =
  match Int32.compare a.ip b.ip with 0 -> Int.compare a.port b.port | c -> c

let ip_to_string ip =
  let b n = Int32.to_int (Int32.logand (Int32.shift_right_logical ip n) 0xFFl) in
  Printf.sprintf "%d.%d.%d.%d" (b 24) (b 16) (b 8) (b 0)

let pp ppf t = Format.fprintf ppf "%s:%d" (ip_to_string t.ip) t.port
let to_string t = Format.asprintf "%a" pp t

module Well_known = struct
  let sunrpc_portmapper = 111
  let dns = 53
  let courier = 5
  let clearinghouse = 20
  let hns_meta = 1053
end
