(** Network addresses for the simulated internet.

    An address is an (IP, port) pair; IPs are assigned sequentially as
    host stacks attach. These play the role of the "network address"
    the paper's NSMs resolve host names into. *)

type ip = int32
type port = int

type t = { ip : ip; port : port }

val make : ip -> port -> t
val equal : t -> t -> bool
val compare : t -> t -> int

(** Dotted-quad rendering of a simulated IP. *)
val ip_to_string : ip -> string

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Well-known ports used by the repository's services, mirroring
    their historical assignments where one exists. *)
module Well_known : sig
  (** 111 *)
  val sunrpc_portmapper : port

  (** 53 *)
  val dns : port

  (** 5 — XNS Courier *)
  val courier : port

  (** 20 — XNS Clearinghouse *)
  val clearinghouse : port

  (** 1053 — the HNS meta-BIND instance *)
  val hns_meta : port
end
