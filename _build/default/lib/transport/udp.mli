(** Datagram sockets over the simulated network.

    Unreliable (subject to the netstack's drop model), unordered
    across differing message sizes, message-boundary-preserving —
    the transport under Sun RPC and under DNS queries. *)

type socket

(** [bind stack ~port] claims a specific port.
    Raises [Invalid_argument] if taken. *)
val bind : Netstack.stack -> port:int -> socket

(** Bind to a fresh ephemeral port. *)
val bind_any : Netstack.stack -> socket

val local_addr : socket -> Address.t

(** [sendto sock ~dst payload] never blocks; delivery (or loss)
    happens after the simulated transit time. Sending to an unbound
    destination port silently discards (no ICMP in 1987 HCS). *)
val sendto : socket -> dst:Address.t -> string -> unit

(** [broadcast sock ~port payload] delivers one copy to [port] on
    every attached host (including the sender's own) — the Ethernet
    broadcast the V-style location protocols rely on. Each copy is
    subject to the loss model independently. *)
val broadcast : socket -> port:int -> string -> unit

(** Block until a datagram arrives. In-process only. *)
val recv : socket -> Address.t * string

(** Wait at most the given number of virtual ms. In-process only. *)
val recv_timeout : socket -> float -> (Address.t * string) option

(** Datagrams queued right now. *)
val pending : socket -> int

(** Release the port. Further operations raise [Invalid_argument]. *)
val close : socket -> unit
