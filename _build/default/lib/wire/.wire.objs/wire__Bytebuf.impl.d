lib/wire/bytebuf.ml: Buffer Char Int32 Int64 String
