lib/wire/bytebuf.mli:
