lib/wire/courier.ml: Bytebuf Format Idl List String Value
