lib/wire/courier.mli: Bytebuf Idl Value
