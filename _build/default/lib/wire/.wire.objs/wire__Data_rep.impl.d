lib/wire/data_rep.ml: Courier Format Xdr
