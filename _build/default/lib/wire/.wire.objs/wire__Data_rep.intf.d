lib/wire/data_rep.mli: Bytebuf Format Idl Value
