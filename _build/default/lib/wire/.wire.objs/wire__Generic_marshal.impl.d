lib/wire/generic_marshal.ml: Bytebuf Data_rep Idl Int32 List Value
