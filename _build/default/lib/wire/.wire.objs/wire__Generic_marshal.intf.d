lib/wire/generic_marshal.mli: Bytebuf Data_rep Idl Value
