lib/wire/idl.ml: Format List String Value
