lib/wire/idl.mli: Format Value
