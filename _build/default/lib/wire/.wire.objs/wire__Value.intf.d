lib/wire/value.mli: Format
