lib/wire/xdr.ml: Bytebuf Format Idl Int32 List String Value
