lib/wire/xdr.mli: Bytebuf Idl Value
