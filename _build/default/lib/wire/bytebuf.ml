exception Truncated

module Wr = struct
  type t = Buffer.t

  let create ?(initial = 64) () = Buffer.create initial
  let length = Buffer.length
  let contents = Buffer.contents
  let u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

  let u16 b v =
    u8 b (v lsr 8);
    u8 b v

  let u32 b v =
    let v = Int32.to_int v in
    u8 b (v lsr 24);
    u8 b (v lsr 16);
    u8 b (v lsr 8);
    u8 b v

  let u64 b v =
    u32 b (Int64.to_int32 (Int64.shift_right_logical v 32));
    u32 b (Int64.to_int32 v)

  let bytes = Buffer.add_string

  let pad_to b align =
    while Buffer.length b mod align <> 0 do
      Buffer.add_char b '\000'
    done

  let clear = Buffer.clear
end

module Rd = struct
  type t = { data : string; mutable off : int; limit : int }

  let of_string s = { data = s; off = 0; limit = String.length s }

  let need r n = if r.off + n > r.limit then raise Truncated

  let sub r ~len =
    need r len;
    let child = { data = r.data; off = r.off; limit = r.off + len } in
    r.off <- r.off + len;
    child

  let pos r = r.off
  let remaining r = r.limit - r.off
  let at_end r = r.off >= r.limit

  let u8 r =
    need r 1;
    let v = Char.code r.data.[r.off] in
    r.off <- r.off + 1;
    v

  let u16 r =
    let hi = u8 r in
    let lo = u8 r in
    (hi lsl 8) lor lo

  let u32 r =
    let a = u16 r and b = u16 r in
    Int32.logor (Int32.shift_left (Int32.of_int a) 16) (Int32.of_int b)

  let u64 r =
    let hi = u32 r and lo = u32 r in
    Int64.logor
      (Int64.shift_left (Int64.of_int32 hi) 32)
      (Int64.logand (Int64.of_int32 lo) 0xFFFFFFFFL)

  let bytes r n =
    need r n;
    let s = String.sub r.data r.off n in
    r.off <- r.off + n;
    s

  let align r a =
    let rem = r.off mod a in
    if rem <> 0 then ignore (bytes r (a - rem))

  let peek_at r off f =
    if off < 0 || off > String.length r.data then raise Truncated;
    f { data = r.data; off; limit = String.length r.data }
end
