exception Decode_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Decode_error s)) fmt

let rec encode_value ty wr (v : Value.t) =
  let module W = Bytebuf.Wr in
  match (ty, v) with
  | Idl.T_void, Value.Void -> ()
  | T_int, Int n | T_uint, Uint n -> W.u32 wr n
  | T_hyper, Hyper n -> W.u64 wr n
  | T_bool, Bool b -> W.u16 wr (if b then 1 else 0)
  | T_enum _, Enum e -> W.u16 wr e
  | (T_string, Str s) | (T_opaque, Opaque s) ->
      W.u16 wr (String.length s);
      W.bytes wr s;
      W.pad_to wr 2
  | T_array elt, Array xs ->
      W.u16 wr (List.length xs);
      List.iter (encode_value elt wr) xs
  | T_struct fields, Struct fs ->
      List.iter2 (fun (_, fty) (_, fv) -> encode_value fty wr fv) fields fs
  | T_union (arms, default), Union (d, av) ->
      W.u16 wr d;
      let arm_ty =
        match List.assoc_opt d arms with
        | Some t -> t
        | None -> (
            match default with
            | Some t -> t
            | None -> invalid_arg "Courier.encode: CHOICE designator has no arm")
      in
      encode_value arm_ty wr av
  | T_opt _, Opt None -> W.u16 wr 0
  | T_opt elt, Opt (Some x) ->
      W.u16 wr 1;
      encode_value elt wr x
  | _, _ -> invalid_arg "Courier.encode: value does not match descriptor"

let encode ?(check = true) ty wr v =
  if check then Idl.check ~what:"Courier.encode" ty v;
  encode_value ty wr v

let rec decode ty rd : Value.t =
  let module R = Bytebuf.Rd in
  match ty with
  | Idl.T_void -> Void
  | T_int -> Int (R.u32 rd)
  | T_uint -> Uint (R.u32 rd)
  | T_hyper -> Hyper (R.u64 rd)
  | T_bool -> (
      match R.u16 rd with
      | 0 -> Bool false
      | 1 -> Bool true
      | n -> fail "bad Courier BOOLEAN %d" n)
  | T_enum labels ->
      let e = R.u16 rd in
      if e >= List.length labels then fail "bad Courier enumeration ordinal %d" e;
      Enum e
  | T_string -> Str (decode_bytes rd)
  | T_opaque -> Opaque (decode_bytes rd)
  | T_array elt ->
      let n = R.u16 rd in
      Array (List.init n (fun _ -> decode elt rd))
  | T_struct fields -> Struct (List.map (fun (n, fty) -> (n, decode fty rd)) fields)
  | T_union (arms, default) -> (
      let d = R.u16 rd in
      match List.assoc_opt d arms with
      | Some arm_ty -> Union (d, decode arm_ty rd)
      | None -> (
          match default with
          | Some dty -> Union (d, decode dty rd)
          | None -> fail "Courier CHOICE: unknown designator %d" d))
  | T_opt elt -> (
      match R.u16 rd with
      | 0 -> Opt None
      | 1 -> Opt (Some (decode elt rd))
      | n -> fail "bad Courier optional designator %d" n)

and decode_bytes rd =
  let module R = Bytebuf.Rd in
  let n = R.u16 rd in
  let s = R.bytes rd n in
  R.align rd 2;
  s

let to_string ty v =
  let wr = Bytebuf.Wr.create () in
  encode ty wr v;
  Bytebuf.Wr.contents wr

let of_string ty s =
  let rd = Bytebuf.Rd.of_string s in
  let v = decode ty rd in
  if not (Bytebuf.Rd.at_end rd) then
    fail "trailing bytes after Courier value (%d left)" (Bytebuf.Rd.remaining rd);
  v

let encoded_size ty v = String.length (to_string ty v)
