(** Xerox Courier data representation — the wire format of Courier RPC
    and the Clearinghouse.

    Courier is word-oriented: the unit is the 16-bit big-endian word.
    CARDINAL and enumerations occupy one word; LONG quantities two;
    strings are a word count of bytes followed by the bytes, padded to
    a word boundary. CHOICE (union) carries a one-word designator. *)

exception Decode_error of string

val encode : ?check:bool -> Idl.ty -> Bytebuf.Wr.t -> Value.t -> unit
val decode : Idl.ty -> Bytebuf.Rd.t -> Value.t
val to_string : Idl.ty -> Value.t -> string
val of_string : Idl.ty -> string -> Value.t
val encoded_size : Idl.ty -> Value.t -> int
