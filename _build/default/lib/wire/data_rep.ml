type t = Xdr | Courier

let name = function Xdr -> "xdr" | Courier -> "courier"

let of_name = function
  | "xdr" -> Some Xdr
  | "courier" -> Some Courier
  | _ -> None

let equal a b = a = b
let pp ppf t = Format.pp_print_string ppf (name t)
let alignment = function Xdr -> 4 | Courier -> 2

let encode t ?check ty wr v =
  match t with
  | Xdr -> Xdr.encode ?check ty wr v
  | Courier -> Courier.encode ?check ty wr v

let decode t ty rd =
  match t with Xdr -> Xdr.decode ty rd | Courier -> Courier.decode ty rd

let to_string t ty v =
  match t with Xdr -> Xdr.to_string ty v | Courier -> Courier.to_string ty v

let of_string t ty s =
  match t with Xdr -> Xdr.of_string ty s | Courier -> Courier.of_string ty s

let encoded_size t ty v =
  match t with Xdr -> Xdr.encoded_size ty v | Courier -> Courier.encoded_size ty v
