(** First-class choice of data representation.

    One of the five HRPC components. A binding names which
    representation the peer speaks; stubs marshal through this module
    so the choice is made at bind time, not at stub-generation time. *)

type t = Xdr | Courier

val name : t -> string
val of_name : string -> t option
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** Word alignment of the representation in bytes (4 for XDR, 2 for
    Courier). *)
val alignment : t -> int

val encode : t -> ?check:bool -> Idl.ty -> Bytebuf.Wr.t -> Value.t -> unit
val decode : t -> Idl.ty -> Bytebuf.Rd.t -> Value.t
val to_string : t -> Idl.ty -> Value.t -> string

(** Raises [Xdr.Decode_error] or [Courier.Decode_error] accordingly. *)
val of_string : t -> Idl.ty -> string -> Value.t

val encoded_size : t -> Idl.ty -> Value.t -> int
