type codec = {
  enc : Bytebuf.Wr.t -> Value.t -> unit;
  dec : Bytebuf.Rd.t -> Value.t;
}

(* The compiled form deliberately mirrors generated stub code: one
   closure per type node, dispatched indirectly, each boxing its
   sub-codecs — not the cheapest way to write this in OCaml, but the
   point is structural fidelity to the code the paper measured. *)
let rec compile rep (ty : Idl.ty) : codec =
  match ty with
  | T_array elt ->
      let sub = compile rep elt in
      (* Length framing differs: XDR counts in a 32-bit word, Courier
         in a 16-bit word. Emit exactly what the direct codec emits. *)
      let put_count wr n =
        match rep with
        | Data_rep.Xdr -> Bytebuf.Wr.u32 wr (Int32.of_int n)
        | Data_rep.Courier -> Bytebuf.Wr.u16 wr n
      and get_count rd =
        match rep with
        | Data_rep.Xdr -> Int32.to_int (Bytebuf.Rd.u32 rd)
        | Data_rep.Courier -> Bytebuf.Rd.u16 rd
      in
      {
        enc =
          (fun wr v ->
            match v with
            | Value.Array xs ->
                put_count wr (List.length xs);
                List.iter (sub.enc wr) xs
            | _ -> invalid_arg "Generic_marshal: array expected");
        dec =
          (fun rd ->
            let n = get_count rd in
            Value.Array (List.init n (fun _ -> sub.dec rd)));
      }
  | T_struct fields ->
      let subs = List.map (fun (n, fty) -> (n, compile rep fty)) fields in
      {
        enc =
          (fun wr v ->
            match v with
            | Value.Struct fs ->
                List.iter2 (fun (_, c) (_, fv) -> c.enc wr fv) subs fs
            | _ -> invalid_arg "Generic_marshal: struct expected");
        dec = (fun rd -> Value.Struct (List.map (fun (n, c) -> (n, c.dec rd)) subs));
      }
  | T_opt elt ->
      let sub = compile rep elt in
      let flag_codec = compile_leaf rep Idl.T_bool in
      {
        enc =
          (fun wr v ->
            match v with
            | Value.Opt None -> flag_codec.enc wr (Value.Bool false)
            | Value.Opt (Some x) ->
                flag_codec.enc wr (Value.Bool true);
                sub.enc wr x
            | _ -> invalid_arg "Generic_marshal: optional expected");
        dec =
          (fun rd ->
            match flag_codec.dec rd with
            | Value.Bool false -> Value.Opt None
            | Value.Bool true -> Value.Opt (Some (sub.dec rd))
            | _ -> assert false);
      }
  | T_union _ | T_void | T_int | T_uint | T_hyper | T_bool | T_string | T_opaque
  | T_enum _ ->
      compile_leaf rep ty

and compile_leaf rep ty =
  {
    enc = (fun wr v -> Data_rep.encode rep ~check:false ty wr v);
    dec = (fun rd -> Data_rep.decode rep ty rd);
  }

let marshal rep ty v =
  let c = compile rep ty in
  let wr = Bytebuf.Wr.create () in
  c.enc wr v;
  Bytebuf.Wr.contents wr

let unmarshal rep ty s =
  let c = compile rep ty in
  c.dec (Bytebuf.Rd.of_string s)

type cost_model = { per_call_ms : float; per_node_ms : float }

let cost m v = m.per_call_ms +. (m.per_node_ms *. float_of_int (Value.node_count v))
