(** Stub-compiler-style generic marshalling, with its cost model.

    Section 3 of the paper reports a surprise: the HNS's BIND interface
    was generated from an interface description, and the generated
    marshalling routines — correct, but full of "overhead in procedure
    calls, indirect calls to marshalling routines, unnecessary dynamic
    memory allocation, and unnecessary levels of marshalling" — cost
    10–25 ms per lookup, versus 0.65–2.6 ms for the hand-coded BIND
    library routines (Table 3.2). Keeping cache entries marshalled
    therefore forfeited most of the cache's benefit.

    This module reproduces both halves:

    - {!compile} builds an encoder/decoder pipeline by interpreting an
      {!Idl.ty} into a tree of closures — structurally the indirect-call
      shape of generated stub code (and functionally identical to the
      direct {!Data_rep} codecs, which property tests verify);
    - {!cost} is the calibrated virtual-time cost model, linear in the
      size of the value tree, with separate constants for the generated
      and hand-coded paths. Simulated services charge this cost to the
      virtual clock when they marshal. *)

type codec = {
  enc : Bytebuf.Wr.t -> Value.t -> unit;
  dec : Bytebuf.Rd.t -> Value.t;
}

(** Build the closure pipeline for a descriptor under a representation. *)
val compile : Data_rep.t -> Idl.ty -> codec

(** Convenience: compile then run on a fresh buffer/string. *)
val marshal : Data_rep.t -> Idl.ty -> Value.t -> string

val unmarshal : Data_rep.t -> Idl.ty -> string -> Value.t

(** {1 Cost model} *)

type cost_model = {
  per_call_ms : float;  (** fixed cost of entering the marshal path *)
  per_node_ms : float;  (** cost per node of the value tree *)
}

(** [cost m v] = [m.per_call_ms + m.per_node_ms * Value.node_count v]. *)
val cost : cost_model -> Value.t -> float
