type ty =
  | T_void
  | T_int
  | T_uint
  | T_hyper
  | T_bool
  | T_string
  | T_opaque
  | T_enum of string list
  | T_array of ty
  | T_struct of (string * ty) list
  | T_union of (int * ty) list * ty option
  | T_opt of ty

type signature = { arg : ty; res : ty }

let signature ~arg ~res = { arg; res }

let rec conforms ty (v : Value.t) =
  match (ty, v) with
  | T_void, Void -> true
  | T_int, Int _ -> true
  | T_uint, Uint _ -> true
  | T_hyper, Hyper _ -> true
  | T_bool, Bool _ -> true
  | T_string, Str _ -> true
  | T_opaque, Opaque _ -> true
  | T_enum labels, Enum e -> e >= 0 && e < List.length labels
  | T_array elt, Array xs -> List.for_all (conforms elt) xs
  | T_struct fields, Struct fs ->
      List.length fields = List.length fs
      && List.for_all2
           (fun (fname, fty) (vname, fv) -> String.equal fname vname && conforms fty fv)
           fields fs
  | T_union (arms, default), Union (d, av) -> (
      match List.assoc_opt d arms with
      | Some arm_ty -> conforms arm_ty av
      | None -> ( match default with Some dty -> conforms dty av | None -> false))
  | T_opt _, Opt None -> true
  | T_opt elt, Opt (Some v) -> conforms elt v
  | ( ( T_void | T_int | T_uint | T_hyper | T_bool | T_string | T_opaque
      | T_enum _ | T_array _ | T_struct _ | T_union _ | T_opt _ ),
      _ ) ->
      false

let rec pp ppf = function
  | T_void -> Format.pp_print_string ppf "void"
  | T_int -> Format.pp_print_string ppf "int"
  | T_uint -> Format.pp_print_string ppf "uint"
  | T_hyper -> Format.pp_print_string ppf "hyper"
  | T_bool -> Format.pp_print_string ppf "bool"
  | T_string -> Format.pp_print_string ppf "string"
  | T_opaque -> Format.pp_print_string ppf "opaque"
  | T_enum labels -> Format.fprintf ppf "enum{%s}" (String.concat "," labels)
  | T_array elt -> Format.fprintf ppf "%a[]" pp elt
  | T_struct fields ->
      let pp_field ppf (n, t) = Format.fprintf ppf "%s:%a" n pp t in
      Format.fprintf ppf "struct{@[%a@]}"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp_field)
        fields
  | T_union (arms, default) ->
      let pp_arm ppf (d, t) = Format.fprintf ppf "%d:%a" d pp t in
      Format.fprintf ppf "union{@[%a%s@]}"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp_arm)
        arms
        (match default with Some _ -> ";default" | None -> "")
  | T_opt elt -> Format.fprintf ppf "%a?" pp elt

let check ~what ty v =
  if not (conforms ty v) then
    invalid_arg
      (Format.asprintf "%s: value %a does not conform to %a" what Value.pp v pp ty)

let rec default_value : ty -> Value.t = function
  | T_void -> Void
  | T_int -> Int 0l
  | T_uint -> Uint 0l
  | T_hyper -> Hyper 0L
  | T_bool -> Bool false
  | T_string -> Str ""
  | T_opaque -> Opaque ""
  | T_enum _ -> Enum 0
  | T_array _ -> Array []
  | T_struct fields -> Struct (List.map (fun (n, t) -> (n, default_value t)) fields)
  | T_union (arms, default) -> (
      match arms with
      | (d, t) :: _ -> Union (d, default_value t)
      | [] -> (
          match default with
          | Some t -> Union (0, default_value t)
          | None -> invalid_arg "Idl.default_value: empty union"))
  | T_opt _ -> Opt None
