(** Interface-description-language type descriptors.

    A descriptor is the compile-time half of a {!Value.t}: it drives
    wire-format encoders/decoders ({!Xdr}, {!Courier}, the generic
    marshaller) and validates values at the stub boundary, the way a
    stub compiler's generated code would enforce its signature. *)

type ty =
  | T_void
  | T_int
  | T_uint
  | T_hyper
  | T_bool
  | T_string
  | T_opaque
  | T_enum of string list               (** ordinal -> label *)
  | T_array of ty
  | T_struct of (string * ty) list
  | T_union of (int * ty) list * ty option  (** arms; optional default *)
  | T_opt of ty

(** A procedure signature: argument and result descriptors. *)
type signature = { arg : ty; res : ty }

val signature : arg:ty -> res:ty -> signature

(** [conforms ty v] checks the value against the descriptor, including
    field names and union discriminants. *)
val conforms : ty -> Value.t -> bool

(** [check ~what ty v] raises [Invalid_argument] mentioning [what] when
    [conforms] fails. *)
val check : what:string -> ty -> Value.t -> unit

(** A canonical value of the type (zero/empty/first arm), used to
    seed caches and tests. *)
val default_value : ty -> Value.t

val pp : Format.formatter -> ty -> unit
