type t =
  | Void
  | Int of int32
  | Uint of int32
  | Hyper of int64
  | Bool of bool
  | Str of string
  | Opaque of string
  | Enum of int
  | Array of t list
  | Struct of (string * t) list
  | Union of int * t
  | Opt of t option

let rec equal a b =
  match (a, b) with
  | Void, Void -> true
  | Int x, Int y | Uint x, Uint y -> Int32.equal x y
  | Hyper x, Hyper y -> Int64.equal x y
  | Bool x, Bool y -> x = y
  | Str x, Str y | Opaque x, Opaque y -> String.equal x y
  | Enum x, Enum y -> x = y
  | Array xs, Array ys -> List.length xs = List.length ys && List.for_all2 equal xs ys
  | Struct xs, Struct ys ->
      List.length xs = List.length ys
      && List.for_all2 (fun (n1, v1) (n2, v2) -> String.equal n1 n2 && equal v1 v2) xs ys
  | Union (d1, v1), Union (d2, v2) -> d1 = d2 && equal v1 v2
  | Opt x, Opt y -> (
      match (x, y) with
      | None, None -> true
      | Some x, Some y -> equal x y
      | None, Some _ | Some _, None -> false)
  | ( (Void | Int _ | Uint _ | Hyper _ | Bool _ | Str _ | Opaque _ | Enum _
      | Array _ | Struct _ | Union _ | Opt _),
      _ ) ->
      false

let rec pp ppf = function
  | Void -> Format.pp_print_string ppf "void"
  | Int v -> Format.fprintf ppf "%ld" v
  | Uint v -> Format.fprintf ppf "%luu" v
  | Hyper v -> Format.fprintf ppf "%LdL" v
  | Bool b -> Format.pp_print_bool ppf b
  | Str s -> Format.fprintf ppf "%S" s
  | Opaque s -> Format.fprintf ppf "opaque<%d>" (String.length s)
  | Enum e -> Format.fprintf ppf "enum:%d" e
  | Array xs ->
      Format.fprintf ppf "[@[%a@]]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp)
        xs
  | Struct fs ->
      let pp_field ppf (n, v) = Format.fprintf ppf "%s=%a" n pp v in
      Format.fprintf ppf "{@[%a@]}"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp_field)
        fs
  | Union (d, v) -> Format.fprintf ppf "union(%d: %a)" d pp v
  | Opt None -> Format.pp_print_string ppf "none"
  | Opt (Some v) -> Format.fprintf ppf "some(%a)" pp v

let to_string v = Format.asprintf "%a" pp v

let rec node_count = function
  | Void | Int _ | Uint _ | Hyper _ | Bool _ | Str _ | Opaque _ | Enum _ -> 1
  | Array xs -> List.fold_left (fun acc v -> acc + node_count v) 1 xs
  | Struct fs -> List.fold_left (fun acc (_, v) -> acc + node_count v) 1 fs
  | Union (_, v) -> 1 + node_count v
  | Opt None -> 1
  | Opt (Some v) -> 1 + node_count v

let int i = Int (Int32.of_int i)
let str s = Str s

let shape_error what v =
  invalid_arg (Printf.sprintf "Value.%s: got %s" what (to_string v))

let get_int = function
  | Int v | Uint v -> Int32.to_int v
  | Enum e -> e
  | v -> shape_error "get_int" v

let get_str = function Str s -> s | v -> shape_error "get_str" v
let get_bool = function Bool b -> b | v -> shape_error "get_bool" v
let get_array = function Array xs -> xs | v -> shape_error "get_array" v
let get_struct = function Struct fs -> fs | v -> shape_error "get_struct" v

let field v name =
  match v with
  | Struct fs -> (
      match List.assoc_opt name fs with
      | Some f -> f
      | None -> invalid_arg (Printf.sprintf "Value.field: no field %S in %s" name (to_string v)))
  | _ -> shape_error "field" v
