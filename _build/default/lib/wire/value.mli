(** Dynamically typed IDL values.

    HRPC stubs, NSM interfaces, and both concrete RPC systems exchange
    values of this one type; the {!Idl} descriptors say how a value is
    laid out on the wire by a given data representation (XDR for Sun
    RPC, Courier for Xerox). This is the "black box" data-representation
    component of the five-component HRPC model. *)

type t =
  | Void
  | Int of int32          (** signed 32-bit *)
  | Uint of int32         (** unsigned 32-bit, bits carried in an int32 *)
  | Hyper of int64        (** signed 64-bit *)
  | Bool of bool
  | Str of string         (** text string *)
  | Opaque of string      (** uninterpreted bytes *)
  | Enum of int           (** enumeration ordinal *)
  | Array of t list       (** variable-length homogeneous array *)
  | Struct of (string * t) list  (** fields in declaration order *)
  | Union of int * t      (** discriminant and selected arm *)
  | Opt of t option       (** XDR "pointer" / optional *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Total number of constructors in the value tree — the work measure
    used by the generic (stub-compiler-style) marshalling cost model. *)
val node_count : t -> int

(** {1 Convenience constructors and accessors}

    Accessors raise [Invalid_argument] when the value has a different
    shape; they are for unpacking values that already passed
    {!Idl.conforms}. *)

val int : int -> t
val str : string -> t

val get_int : t -> int
val get_str : t -> string
val get_bool : t -> bool
val get_array : t -> t list
val get_struct : t -> (string * t) list

(** [field v name] looks a field up in a [Struct]. *)
val field : t -> string -> t
