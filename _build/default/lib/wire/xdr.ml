exception Decode_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Decode_error s)) fmt

let rec encode_value ty wr (v : Value.t) =
  let module W = Bytebuf.Wr in
  match (ty, v) with
  | Idl.T_void, Value.Void -> ()
  | T_int, Int n -> W.u32 wr n
  | T_uint, Uint n -> W.u32 wr n
  | T_hyper, Hyper n -> W.u64 wr n
  | T_bool, Bool b -> W.u32 wr (if b then 1l else 0l)
  | T_enum _, Enum e -> W.u32 wr (Int32.of_int e)
  | (T_string, Str s) | (T_opaque, Opaque s) ->
      W.u32 wr (Int32.of_int (String.length s));
      W.bytes wr s;
      W.pad_to wr 4
  | T_array elt, Array xs ->
      W.u32 wr (Int32.of_int (List.length xs));
      List.iter (encode_value elt wr) xs
  | T_struct fields, Struct fs ->
      List.iter2 (fun (_, fty) (_, fv) -> encode_value fty wr fv) fields fs
  | T_union (arms, default), Union (d, av) ->
      W.u32 wr (Int32.of_int d);
      let arm_ty =
        match List.assoc_opt d arms with
        | Some t -> t
        | None -> (
            match default with
            | Some t -> t
            | None -> invalid_arg "Xdr.encode: union discriminant has no arm")
      in
      encode_value arm_ty wr av
  | T_opt _, Opt None -> W.u32 wr 0l
  | T_opt elt, Opt (Some x) ->
      W.u32 wr 1l;
      encode_value elt wr x
  | _, _ -> invalid_arg "Xdr.encode: value does not match descriptor"

let encode ?(check = true) ty wr v =
  if check then Idl.check ~what:"Xdr.encode" ty v;
  encode_value ty wr v

let rec decode ty rd : Value.t =
  let module R = Bytebuf.Rd in
  match ty with
  | Idl.T_void -> Void
  | T_int -> Int (R.u32 rd)
  | T_uint -> Uint (R.u32 rd)
  | T_hyper -> Hyper (R.u64 rd)
  | T_bool -> (
      match R.u32 rd with
      | 0l -> Bool false
      | 1l -> Bool true
      | n -> fail "bad XDR bool %ld" n)
  | T_enum labels ->
      let e = Int32.to_int (R.u32 rd) in
      if e < 0 || e >= List.length labels then fail "bad XDR enum ordinal %d" e;
      Enum e
  | T_string ->
      let s = decode_bytes rd in
      Str s
  | T_opaque ->
      let s = decode_bytes rd in
      Opaque s
  | T_array elt ->
      let n = Int32.to_int (R.u32 rd) in
      if n < 0 || n > 1_000_000 then fail "unreasonable XDR array length %d" n;
      Array (List.init n (fun _ -> decode elt rd))
  | T_struct fields -> Struct (List.map (fun (n, fty) -> (n, decode fty rd)) fields)
  | T_union (arms, default) -> (
      let d = Int32.to_int (R.u32 rd) in
      match List.assoc_opt d arms with
      | Some arm_ty -> Union (d, decode arm_ty rd)
      | None -> (
          match default with
          | Some dty -> Union (d, decode dty rd)
          | None -> fail "XDR union: unknown discriminant %d" d))
  | T_opt elt -> (
      match R.u32 rd with
      | 0l -> Opt None
      | 1l -> Opt (Some (decode elt rd))
      | n -> fail "bad XDR optional flag %ld" n)

and decode_bytes rd =
  let module R = Bytebuf.Rd in
  let n = Int32.to_int (R.u32 rd) in
  if n < 0 || n > 16_000_000 then fail "unreasonable XDR byte length %d" n;
  let s = R.bytes rd n in
  R.align rd 4;
  s

let to_string ty v =
  let wr = Bytebuf.Wr.create () in
  encode ty wr v;
  Bytebuf.Wr.contents wr

let of_string ty s =
  let rd = Bytebuf.Rd.of_string s in
  let v = decode ty rd in
  if not (Bytebuf.Rd.at_end rd) then
    fail "trailing bytes after XDR value (%d left)" (Bytebuf.Rd.remaining rd);
  v

let encoded_size ty v = String.length (to_string ty v)
