(** XDR (RFC 1014) data representation — the wire format of Sun RPC.

    All quantities occupy multiples of four bytes, big-endian;
    strings and opaques are length-prefixed and zero-padded to a
    four-byte boundary. Decoding is schema-driven by an {!Idl.ty}. *)

exception Decode_error of string

(** [encode ?check ty wr v] appends the XDR encoding of [v] to [wr].
    When [check] (default [true]) the value is validated against [ty]
    first. *)
val encode : ?check:bool -> Idl.ty -> Bytebuf.Wr.t -> Value.t -> unit

(** [decode ty rd] consumes one value of shape [ty].
    Raises {!Decode_error} (malformed) or {!Bytebuf.Truncated} (short). *)
val decode : Idl.ty -> Bytebuf.Rd.t -> Value.t

(** Encode to a fresh string. *)
val to_string : Idl.ty -> Value.t -> string

(** Decode a whole string; raises {!Decode_error} on trailing bytes. *)
val of_string : Idl.ty -> string -> Value.t

(** Size in bytes of the encoding without materializing it. *)
val encoded_size : Idl.ty -> Value.t -> int
