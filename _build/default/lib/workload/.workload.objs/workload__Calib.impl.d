lib/workload/calib.ml: Wire
