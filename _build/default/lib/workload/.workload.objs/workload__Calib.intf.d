lib/workload/calib.mli: Wire
