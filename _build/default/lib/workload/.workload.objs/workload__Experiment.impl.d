lib/workload/experiment.ml: Array Float List Printf Sim String
