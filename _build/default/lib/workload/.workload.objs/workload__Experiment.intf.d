lib/workload/experiment.mli: Sim
