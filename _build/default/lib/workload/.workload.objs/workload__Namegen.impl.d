lib/workload/namegen.ml: List Printf Sim String
