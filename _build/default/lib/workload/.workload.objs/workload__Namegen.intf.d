lib/workload/namegen.mli:
