lib/workload/scenario.ml: Baseline Calib Clearinghouse Dns Format Hns Hrpc Int32 List Namegen Nsm Printf Rpc Sim Transport Wire
