lib/workload/scenario.mli: Baseline Clearinghouse Dns Hns Hrpc Nsm Rpc Sim Transport
