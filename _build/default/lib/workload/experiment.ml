type cell = { label : string; paper_ms : float; measured_ms : float }

let cell ~label ~paper_ms ~measured_ms = { label; paper_ms; measured_ms }

let relative_error c =
  if c.paper_ms = 0.0 then 0.0 else (c.measured_ms -. c.paper_ms) /. c.paper_ms

let within ~tolerance c = Float.abs (relative_error c) <= tolerance

let ms v = Printf.sprintf "%.2f" v

let pad width s =
  let n = String.length s in
  if n >= width then s else s ^ String.make (width - n) ' '

let print_table ~title ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make cols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let print_row r =
    let cells = List.mapi (fun i cell -> pad widths.(i) cell) r in
    print_endline ("  " ^ String.concat "  " cells)
  in
  Printf.printf "%s\n" title;
  print_row header;
  print_row (List.init (List.length header) (fun i -> String.make widths.(i) '-'));
  List.iter print_row rows;
  print_newline ()

let print_cells ~title cells =
  print_table ~title
    ~header:[ "measurement"; "paper (ms)"; "ours (ms)"; "rel.err" ]
    (List.map
       (fun c ->
         [
           c.label;
           ms c.paper_ms;
           ms c.measured_ms;
           Printf.sprintf "%+.1f%%" (100.0 *. relative_error c);
         ])
       cells)

let repeat_timed ?reset ~trials f =
  let stats = Sim.Stats.create ~name:"trials" () in
  for _ = 1 to trials do
    (match reset with Some r -> r () | None -> ());
    let t0 = Sim.Engine.time () in
    f ();
    Sim.Stats.add stats (Sim.Engine.time () -. t0)
  done;
  stats
