(** Measurement and report-formatting helpers shared by the bench
    harness and the calibration tests. *)

(** A measured cell alongside its published target. *)
type cell = { label : string; paper_ms : float; measured_ms : float }

val cell : label:string -> paper_ms:float -> measured_ms:float -> cell

(** Relative error (measured - paper) / paper. *)
val relative_error : cell -> float

(** [within ~tolerance c] — |relative error| <= tolerance. *)
val within : tolerance:float -> cell -> bool

(** Render a paper-vs-measured table with per-row relative error. *)
val print_cells : title:string -> cell list -> unit

(** Render an arbitrary table: header row then rows, columns padded. *)
val print_table : title:string -> header:string list -> string list list -> unit

val ms : float -> string

(** Run [trials] repetitions of a thunk (flushing via [reset] between
    repetitions when given) and collect virtual-time durations. Must
    run inside a simulated process. *)
val repeat_timed : ?reset:(unit -> unit) -> trials:int -> (unit -> unit) -> Sim.Stats.t
