let hosts ~count ~zone =
  List.init count (fun i -> Printf.sprintf "host%02d.%s" i zone)

let services ~count ~base =
  List.init count (fun i -> (Printf.sprintf "svc%02d" i, (base + i, 1)))

let ch_objects ~count ~prefix = List.init count (fun i -> Printf.sprintf "%s%02d" prefix i)

let syllables = [| "ka"; "to"; "mi"; "ra"; "su"; "ne"; "fo"; "li"; "da"; "wu" |]

let words ~count ~seed =
  let rng = Sim.Rng.create ~seed in
  List.init count (fun _ ->
      let len = 2 + Sim.Rng.int rng 3 in
      String.concat "" (List.init len (fun _ -> Sim.Rng.pick rng syllables)))
