(** Synthetic name populations for workload generation. *)

(** [hosts ~count ~zone] is ["host00.zone"; "host01.zone"; ...]. *)
val hosts : count:int -> zone:string -> string list

(** Sun RPC service names with program numbers:
    [services ~count ~base] is [("svc00", (base, 1)); ...]. *)
val services : count:int -> base:int -> (string * (int * int)) list

(** Clearinghouse local names. *)
val ch_objects : count:int -> prefix:string -> string list

(** Deterministic pseudo-words for file/user names. *)
val words : count:int -> seed:int64 -> string list
