type t = { n_ : int; s_ : float; cdf : float array }

let create ~n ~s =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if s < 0.0 then invalid_arg "Zipf.create: s must be nonnegative";
  let weights = Array.init n (fun k -> 1.0 /. Float.pow (float_of_int (k + 1)) s) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  cdf.(n - 1) <- 1.0;
  { n_ = n; s_ = s; cdf }

let n t = t.n_
let s t = t.s_

let sample t rng =
  let u = Sim.Rng.float rng 1.0 in
  (* Binary search for the first index with cdf >= u. *)
  let rec search lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if t.cdf.(mid) >= u then search lo mid else search (mid + 1) hi
    end
  in
  search 0 (t.n_ - 1)

let pmf t k =
  if k < 0 || k >= t.n_ then invalid_arg "Zipf.pmf: rank out of range";
  if k = 0 then t.cdf.(0) else t.cdf.(k) -. t.cdf.(k - 1)
