(** Zipf-distributed sampling over ranks 0..n-1.

    Drives the locality experiments: "Further work on the dynamic
    cache hit ratios achieved in practice will be required" — the
    hit-ratio sweep bench samples query streams whose locality is
    controlled by the Zipf exponent [s] ([s = 0] is uniform; larger
    [s] is more skewed). *)

type t

(** [create ~n ~s] precomputes the CDF. Requires [n > 0], [s >= 0]. *)
val create : n:int -> s:float -> t

val n : t -> int
val s : t -> float

(** Sample a rank in [0, n). *)
val sample : t -> Sim.Rng.t -> int

(** Probability of rank [k]. *)
val pmf : t -> int -> float
