lib/yp/yp_client.ml: List Rpc Transport Wire Yp_proto
