lib/yp/yp_client.mli: Rpc Transport
