lib/yp/yp_proto.ml: Wire
