lib/yp/yp_proto.mli: Wire
