lib/yp/yp_server.ml: Effect Hashtbl List Rpc Sim String Wire Yp_proto
