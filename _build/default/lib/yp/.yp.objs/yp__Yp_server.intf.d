lib/yp/yp_server.mli: Transport
