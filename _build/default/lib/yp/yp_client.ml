type t = {
  stack : Transport.Netstack.stack;
  server : Transport.Address.t;
  domain : string;
}

let create stack ~server ~domain = { stack; server; domain }

let call t procnum sign arg =
  Rpc.Sunrpc.call t.stack ~dst:t.server ~prog:Yp_proto.program ~vers:Yp_proto.version
    ~procnum ~sign arg

let check_domain t =
  match call t Yp_proto.proc_domain Yp_proto.domain_sign (Wire.Value.Str t.domain) with
  | Error _ as e -> e
  | Ok v -> Ok (Wire.Value.get_bool v)

let interpret_value = function
  | Wire.Value.Union (0, Wire.Value.Opaque v) -> Ok (Some v)
  | Wire.Value.Union (1, _) -> Ok None
  | v -> Error (Rpc.Control.Protocol_error (Wire.Value.to_string v))

let interpret_entry = function
  | Wire.Value.Union (0, entry) ->
      let f name =
        match Wire.Value.field entry name with
        | Wire.Value.Opaque s -> s
        | other -> Wire.Value.get_str other
      in
      Ok (Some (f "key", f "value"))
  | Wire.Value.Union (1, _) -> Ok None
  | v -> Error (Rpc.Control.Protocol_error (Wire.Value.to_string v))

let match_ t ~map key =
  match
    call t Yp_proto.proc_match Yp_proto.match_sign
      (Wire.Value.Struct
         [
           ("domain", Wire.Value.Str t.domain);
           ("map", Wire.Value.Str map);
           ("key", Wire.Value.Opaque key);
         ])
  with
  | Error _ as e -> e
  | Ok v -> interpret_value v

let first t ~map =
  match
    call t Yp_proto.proc_first Yp_proto.first_sign
      (Wire.Value.Struct
         [ ("domain", Wire.Value.Str t.domain); ("map", Wire.Value.Str map) ])
  with
  | Error _ as e -> e
  | Ok v -> interpret_entry v

let next t ~map ~after =
  match
    call t Yp_proto.proc_next Yp_proto.next_sign
      (Wire.Value.Struct
         [
           ("domain", Wire.Value.Str t.domain);
           ("map", Wire.Value.Str map);
           ("key", Wire.Value.Opaque after);
         ])
  with
  | Error _ as e -> e
  | Ok v -> interpret_entry v

let all t ~map =
  let rec go acc current =
    match next t ~map ~after:current with
    | Error _ as e -> e
    | Ok None -> Ok (List.rev acc)
    | Ok (Some ((k, _) as entry)) -> go (entry :: acc) k
  in
  match first t ~map with
  | Error _ as e -> e
  | Ok None -> Ok []
  | Ok (Some ((k, _) as entry)) -> go [ entry ] k
