(** ypbind/ypmatch: the NIS client side. *)

type t

val create :
  Transport.Netstack.stack -> server:Transport.Address.t -> domain:string -> t

(** Does the server serve our domain? *)
val check_domain : t -> (bool, Rpc.Control.error) result

(** [match_ t ~map key] — [Ok None] when the key is unbound. *)
val match_ : t -> map:string -> string -> (string option, Rpc.Control.error) result

val first : t -> map:string -> ((string * string) option, Rpc.Control.error) result

val next :
  t -> map:string -> after:string -> ((string * string) option, Rpc.Control.error) result

(** Enumerate a whole map via FIRST/NEXT. *)
val all : t -> map:string -> ((string * string) list, Rpc.Control.error) result
