let program = 100004
let version = 2
let proc_domain = 1
let proc_match = 3
let proc_first = 4
let proc_next = 5
let map_hosts_byname = "hosts.byname"
let map_services_byname = "services.byname"

let value_result =
  Wire.Idl.T_union ([ (0, Wire.Idl.T_opaque); (1, Wire.Idl.T_void) ], None)

let entry_result =
  Wire.Idl.T_union
    ( [
        (0, Wire.Idl.T_struct [ ("key", Wire.Idl.T_opaque); ("value", Wire.Idl.T_opaque) ]);
        (1, Wire.Idl.T_void);
      ],
      None )

let domain_sign = Wire.Idl.signature ~arg:Wire.Idl.T_string ~res:Wire.Idl.T_bool

let match_sign =
  Wire.Idl.signature
    ~arg:
      (Wire.Idl.T_struct
         [ ("domain", Wire.Idl.T_string); ("map", Wire.Idl.T_string); ("key", Wire.Idl.T_opaque) ])
    ~res:value_result

let first_sign =
  Wire.Idl.signature
    ~arg:(Wire.Idl.T_struct [ ("domain", Wire.Idl.T_string); ("map", Wire.Idl.T_string) ])
    ~res:entry_result

let next_sign =
  Wire.Idl.signature
    ~arg:
      (Wire.Idl.T_struct
         [ ("domain", Wire.Idl.T_string); ("map", Wire.Idl.T_string); ("key", Wire.Idl.T_opaque) ])
    ~res:entry_result
