(** The Sun Yellow Pages (NIS) protocol: program numbers and
    signatures shared by {!Yp_server} and {!Yp_client}.

    YP is the third name-service type in this repository's federation
    (after BIND and the Clearinghouse): a flat keyed-map service over
    Sun RPC, program 100004 version 2, with the classic procedures
    DOMAIN, MATCH, FIRST and NEXT over maps like [hosts.byname]. *)

val program : int (* 100004 *)
val version : int (* 2 *)
val proc_domain : int (* 1 *)
val proc_match : int (* 3 *)
val proc_first : int (* 4 *)
val proc_next : int (* 5 *)

(** Well-known map names. *)
val map_hosts_byname : string

val map_services_byname : string

val domain_sign : Wire.Idl.signature
val match_sign : Wire.Idl.signature
val first_sign : Wire.Idl.signature
val next_sign : Wire.Idl.signature
