(* Each map is an association list in insertion order, so FIRST/NEXT
   enumerate deterministically like ypserv walking a dbm file. *)
type yp_map = { mutable entries : (string * string) list }

type t = {
  server : Rpc.Sunrpc.server;
  domain_ : string;
  maps : (string, yp_map) Hashtbl.t;
  lookup_ms : float;
  mutable lookup_count : int;
}

let charge ms =
  if ms > 0.0 then try Sim.Engine.sleep ms with Effect.Unhandled _ -> ()

let get_map t name =
  match Hashtbl.find_opt t.maps name with
  | Some m -> m
  | None ->
      let m = { entries = [] } in
      Hashtbl.replace t.maps name m;
      m

let found v = Wire.Value.Union (0, Wire.Value.Opaque v)
let missing = Wire.Value.Union (1, Wire.Value.Void)

let entry_found (k, v) =
  Wire.Value.Union
    (0, Wire.Value.Struct [ ("key", Wire.Value.Opaque k); ("value", Wire.Value.Opaque v) ])

let opaque_str v =
  match v with Wire.Value.Opaque s -> s | other -> Wire.Value.get_str other

let create stack ?(port = 834) ?(lookup_ms = 0.0) ~domain () =
  let server = Rpc.Sunrpc.create stack ~port () in
  let t = { server; domain_ = domain; maps = Hashtbl.create 8; lookup_ms; lookup_count = 0 } in
  let reg procnum sign impl =
    Rpc.Sunrpc.register server ~prog:Yp_proto.program ~vers:Yp_proto.version ~procnum
      ~sign impl
  in
  let with_domain v k =
    if String.equal (Wire.Value.get_str (Wire.Value.field v "domain")) t.domain_ then k ()
    else missing
  in
  reg Yp_proto.proc_domain Yp_proto.domain_sign (fun v ->
      Wire.Value.Bool (String.equal (Wire.Value.get_str v) t.domain_));
  reg Yp_proto.proc_match Yp_proto.match_sign (fun v ->
      t.lookup_count <- t.lookup_count + 1;
      charge t.lookup_ms;
      with_domain v (fun () ->
          let map = get_map t (Wire.Value.get_str (Wire.Value.field v "map")) in
          let key = opaque_str (Wire.Value.field v "key") in
          match List.assoc_opt key map.entries with
          | Some value -> found value
          | None -> missing));
  reg Yp_proto.proc_first Yp_proto.first_sign (fun v ->
      t.lookup_count <- t.lookup_count + 1;
      charge t.lookup_ms;
      with_domain v (fun () ->
          let map = get_map t (Wire.Value.get_str (Wire.Value.field v "map")) in
          match map.entries with [] -> missing | e :: _ -> entry_found e));
  reg Yp_proto.proc_next Yp_proto.next_sign (fun v ->
      t.lookup_count <- t.lookup_count + 1;
      charge t.lookup_ms;
      with_domain v (fun () ->
          let map = get_map t (Wire.Value.get_str (Wire.Value.field v "map")) in
          let key = opaque_str (Wire.Value.field v "key") in
          let rec after = function
            | (k, _) :: (e :: _ as rest) when String.equal k key ->
                ignore rest;
                entry_found e
            | _ :: rest -> after rest
            | [] -> missing
          in
          after map.entries));
  t

let port t = Rpc.Sunrpc.port t.server
let addr t = Rpc.Sunrpc.addr t.server
let domain t = t.domain_

let set t ~map ~key value =
  let m = get_map t map in
  if List.mem_assoc key m.entries then
    m.entries <- List.map (fun (k, v) -> if String.equal k key then (k, value) else (k, v)) m.entries
  else m.entries <- m.entries @ [ (key, value) ]

let remove t ~map ~key =
  let m = get_map t map in
  m.entries <- List.filter (fun (k, _) -> not (String.equal k key)) m.entries

let map_size t ~map = List.length (get_map t map).entries
let start t = Rpc.Sunrpc.start t.server
let stop t = Rpc.Sunrpc.stop t.server
let lookups t = t.lookup_count
