(** ypserv: the NIS map server (a native Sun RPC program).

    Maps are ordered key→value tables per domain. Keys iterate in
    insertion order through FIRST/NEXT, as real ypserv enumerates its
    dbm files. *)

type t

(** [create stack ?port ?lookup_ms ~domain ()] — [lookup_ms] is the
    simulated cost per map operation. Registers with no portmapper;
    callers register the returned port themselves (matching how ypserv
    and portmap interact at boot). *)
val create :
  Transport.Netstack.stack ->
  ?port:int ->
  ?lookup_ms:float ->
  domain:string ->
  unit ->
  t

val port : t -> int
val addr : t -> Transport.Address.t
val domain : t -> string

(** Set a key (insertion order preserved; existing key keeps its
    position). *)
val set : t -> map:string -> key:string -> string -> unit

val remove : t -> map:string -> key:string -> unit
val map_size : t -> map:string -> int
val start : t -> unit
val stop : t -> unit
val lookups : t -> int
