test/helpers.ml: Alcotest Array Float Printf QCheck_alcotest Sim Transport
