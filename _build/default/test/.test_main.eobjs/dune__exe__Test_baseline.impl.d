test/test_baseline.ml: Alcotest Array Baseline Helpers Hrpc Lazy List Printf String Transport Workload
