test/test_clearinghouse.ml: Alcotest Array Clearinghouse Helpers List Rpc String Workload
