test/test_dns.ml: Alcotest Array Char Dns Helpers Int32 List Printf QCheck Rpc Sim String Transport Wire Workload
