test/test_extensions.ml: Alcotest Array Baseline Dns Gen Helpers Hns Hrpc Int32 Lazy List Nsm Printf QCheck Rpc Services Sim String Transport Wire Workload Yp
