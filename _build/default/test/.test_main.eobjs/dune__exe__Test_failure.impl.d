test/test_failure.ml: Alcotest Array Baseline Dns Helpers Hns Hrpc List Nsm Rpc Sim String Transport Wire Workload
