test/test_hns.ml: Alcotest Dns Helpers Hns Hrpc Lazy List Sim String Transport Wire Workload
