test/test_hrpc.ml: Alcotest Array Clearinghouse Dns Format Helpers Hrpc Int32 List QCheck Rpc Transport Wire
