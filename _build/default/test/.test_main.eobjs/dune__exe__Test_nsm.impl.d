test/test_nsm.ml: Alcotest Clearinghouse Dns Helpers Hns Hrpc Lazy Nsm Printf String Transport Wire Workload
