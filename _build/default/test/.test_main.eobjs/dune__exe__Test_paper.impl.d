test/test_paper.ml: Alcotest Array Baseline Clearinghouse Dns Helpers Hns Int32 Lazy List Printf Sim Wire Workload
