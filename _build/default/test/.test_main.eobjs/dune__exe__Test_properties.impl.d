test/test_properties.ml: Alcotest Array Dns Float Format Gen Helpers Hns Hrpc Int32 List QCheck Rpc Sim String Test_wire Transport Wire Workload
