test/test_replication.ml: Alcotest Array Clearinghouse Dns Helpers Hns Nsm Sim Workload
