test/test_rpc.ml: Alcotest Array Helpers List Rpc Sim String Transport Wire
