test/test_services.ml: Alcotest Format Helpers Hns Lazy List Printf Services Sim String Workload
