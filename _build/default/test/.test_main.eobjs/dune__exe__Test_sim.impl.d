test/test_sim.ml: Alcotest Array Format Gen Helpers Int64 List Printexc QCheck Sim String
