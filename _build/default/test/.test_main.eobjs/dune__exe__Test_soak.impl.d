test/test_soak.ml: Alcotest Array Helpers Hns Result Services Sim Transport Workload
