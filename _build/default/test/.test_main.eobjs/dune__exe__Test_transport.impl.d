test/test_transport.ml: Alcotest Array Helpers Sim String Transport
