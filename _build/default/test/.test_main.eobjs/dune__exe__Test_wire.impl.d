test/test_wire.ml: Alcotest Format Helpers Int32 Int64 List QCheck String Wire
