test/test_workload.ml: Alcotest Float Hashtbl Helpers List QCheck Sim Wire Workload
