test/test_yp.ml: Alcotest Dns Fun Helpers Hns Hrpc Lazy List Nsm Printf Rpc Sim Transport Wire Workload Yp
