(* Shared test plumbing: a small simulated network and process runner. *)

let check = Alcotest.check
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let check_float_near msg expected actual =
  if Float.abs (expected -. actual) > 1e-6 then
    Alcotest.failf "%s: expected %.6f, got %.6f" msg expected actual

(* A small world: engine + topology + n attached hosts. *)
type world = {
  engine : Sim.Engine.t;
  topo : Sim.Topology.t;
  net : Transport.Netstack.t;
  stacks : Transport.Netstack.stack array;
}

let make_world ?(hosts = 3) ?drop_probability () =
  let engine = Sim.Engine.create () in
  let topo = Sim.Topology.create () in
  let net = Transport.Netstack.create ?drop_probability engine topo in
  let stacks =
    Array.init hosts (fun i ->
        Transport.Netstack.attach net (Sim.Topology.add_host topo (Printf.sprintf "h%d" i)))
  in
  { engine; topo; net; stacks }

(* Run [f] as a simulated process to completion and return its value. *)
let in_sim world f =
  let result = ref None in
  Sim.Engine.spawn world.engine ~name:"test" (fun () -> result := Some (f ()));
  Sim.Engine.run world.engine;
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "test process blocked without completing"

let get_ok ~msg = function
  | Ok v -> v
  | Error _ -> Alcotest.failf "%s: unexpected Error" msg

let qtest = QCheck_alcotest.to_alcotest
