(* Tests for the comparison schemes: replicated local files and the
   Clearinghouse reregistration baseline. *)

open Helpers

let scn = lazy (Workload.Scenario.build ())

let sample_binding port =
  Hrpc.Binding.make ~suite:Hrpc.Component.sunrpc_suite
    ~server:(Transport.Address.make 0x0A000042l port) ~prog:(port + 1) ~vers:1

let localfile_roundtrip () =
  let lf = Baseline.Localfile.create () in
  Baseline.Localfile.register lf ~service:"svc" ~host:"h1" (sample_binding 100);
  Baseline.Localfile.register lf ~service:"svc" ~host:"h2" (sample_binding 200);
  (match Baseline.Localfile.import lf ~service:"svc" ~host:"h2" with
  | Ok b -> check_bool "right entry" true (Hrpc.Binding.equal b (sample_binding 200))
  | Error m -> Alcotest.failf "import failed: %s" m);
  check_int "two entries" 2 (Baseline.Localfile.entry_count lf)

let localfile_replace_entry () =
  let lf = Baseline.Localfile.create () in
  Baseline.Localfile.register lf ~service:"svc" ~host:"h" (sample_binding 1);
  Baseline.Localfile.register lf ~service:"svc" ~host:"h" (sample_binding 2);
  check_int "replaced, not appended" 1 (Baseline.Localfile.entry_count lf);
  match Baseline.Localfile.import lf ~service:"svc" ~host:"h" with
  | Ok b -> check_bool "latest wins" true (Hrpc.Binding.equal b (sample_binding 2))
  | Error m -> Alcotest.failf "import failed: %s" m

let localfile_missing () =
  let lf = Baseline.Localfile.create () in
  match Baseline.Localfile.import lf ~service:"nope" ~host:"h" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing entry should fail"

let localfile_staleness () =
  (* The reregistration problem: a file copy does not see a change
     until the next sweep. *)
  let lf = Baseline.Localfile.create () in
  Baseline.Localfile.replace_all lf [ ("svc", "h", sample_binding 1) ];
  let authoritative = sample_binding 2 in
  (* the service moved ports; the file still says port 1 *)
  (match Baseline.Localfile.import lf ~service:"svc" ~host:"h" with
  | Ok stale -> check_bool "stale until sweep" false (Hrpc.Binding.equal stale authoritative)
  | Error m -> Alcotest.failf "import failed: %s" m);
  Baseline.Localfile.replace_all lf [ ("svc", "h", authoritative) ];
  match Baseline.Localfile.import lf ~service:"svc" ~host:"h" with
  | Ok fresh -> check_bool "fresh after sweep" true (Hrpc.Binding.equal fresh authoritative)
  | Error m -> Alcotest.failf "import failed: %s" m

let localfile_cost_scales_with_population () =
  let scn = Lazy.force scn in
  let small, large =
    Workload.Scenario.in_sim scn (fun () ->
        let lf =
          Baseline.Localfile.create ~file_read_ms:10.0 ~parse_per_entry_ms:1.0 ()
        in
        Baseline.Localfile.replace_all lf [ ("svc", "h", sample_binding 1) ];
        let _, small =
          Workload.Scenario.timed (fun () ->
              ignore (Baseline.Localfile.import lf ~service:"svc" ~host:"h"))
        in
        Baseline.Localfile.replace_all lf
          (("svc", "h", sample_binding 1)
          :: List.init 99 (fun i -> (Printf.sprintf "f%d" i, "h", sample_binding i)));
        let _, large =
          Workload.Scenario.timed (fun () ->
              ignore (Baseline.Localfile.import lf ~service:"svc" ~host:"h"))
        in
        (small, large))
  in
  check_bool "grows with entries" true (large > small +. 50.0)

let rereg_import () =
  let scn = Lazy.force scn in
  let r =
    Workload.Scenario.in_sim scn (fun () ->
        Baseline.Rereg_ch.import scn.rereg ~service:scn.service_name)
  in
  match r with
  | Ok b -> check_bool "imported" true (Hrpc.Binding.equal b scn.expected_sun_binding)
  | Error e -> Alcotest.failf "rereg import failed: %a" Baseline.Rereg_ch.pp_error e

let rereg_missing () =
  let scn = Lazy.force scn in
  let r =
    Workload.Scenario.in_sim scn (fun () ->
        Baseline.Rereg_ch.import scn.rereg ~service:"never-registered")
  in
  check_bool "not registered" true (r = Error Baseline.Rereg_ch.Not_registered)

let rereg_sweep_costs_grow () =
  (* The "reregistration cost is one that continues without end": a
     sweep of N services costs ~N Clearinghouse writes. *)
  let scn = Lazy.force scn in
  let one, ten =
    Workload.Scenario.in_sim scn (fun () ->
        let entries n = List.init n (fun i -> (Printf.sprintf "swp%d" i, sample_binding i)) in
        let _, one =
          Workload.Scenario.timed (fun () ->
              ignore (Baseline.Rereg_ch.reregister_sweep scn.rereg (entries 1)))
        in
        let _, ten =
          Workload.Scenario.timed (fun () ->
              ignore (Baseline.Rereg_ch.reregister_sweep scn.rereg (entries 10)))
        in
        (one, ten))
  in
  check_bool "10 entries cost ~10x" true (ten > 7.0 *. one)

let suite =
  [
    Alcotest.test_case "localfile roundtrip" `Quick localfile_roundtrip;
    Alcotest.test_case "localfile replace" `Quick localfile_replace_entry;
    Alcotest.test_case "localfile missing" `Quick localfile_missing;
    Alcotest.test_case "localfile staleness" `Quick localfile_staleness;
    Alcotest.test_case "localfile cost scaling" `Quick localfile_cost_scales_with_population;
    Alcotest.test_case "rereg import" `Quick rereg_import;
    Alcotest.test_case "rereg missing" `Quick rereg_missing;
    Alcotest.test_case "rereg sweep cost" `Quick rereg_sweep_costs_grow;
  ]

(* --- sendmail rewriting rules (Section 4 related work) --- *)

let route_ok rules addr =
  match Baseline.Sendmail_rules.route rules addr with
  | Ok d -> d
  | Error m -> Alcotest.failf "route %S failed: %s" addr m

let sendmail_routes_classic_forms () =
  let rules = Baseline.Sendmail_rules.classic () in
  let d = route_ok rules "schwartz@june.cs.washington.edu" in
  check_string "internet network" "internet" d.Baseline.Sendmail_rules.network;
  check_string "internet site" "june.cs.washington.edu" d.Baseline.Sendmail_rules.site;
  let d = route_ok rules "mike@decvax.uucp" in
  check_string "uucp network" "uucp" d.Baseline.Sendmail_rules.network;
  check_string "uucp site" "decvax" d.Baseline.Sendmail_rules.site;
  let d = route_ok rules "isi-vaxa!fred" in
  check_string "bang rewritten to uucp" "uucp" d.Baseline.Sendmail_rules.network;
  check_string "bang site" "isi-vaxa" d.Baseline.Sendmail_rules.site;
  check_string "bang user" "fred" d.Baseline.Sendmail_rules.user;
  let d = route_ok rules "birrell.pa@gv" in
  check_string "grapevine" "grapevine" d.Baseline.Sendmail_rules.network

let sendmail_unparsable () =
  let rules = Baseline.Sendmail_rules.classic () in
  match Baseline.Sendmail_rules.route rules "just-a-name" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "no rule should match a bare token"

let sendmail_syntactic_misrouting () =
  (* The hazard the paper calls out: semantics divined from syntax.
     A new network (bitnet) arrives; before anyone edits the ruleset,
     its addresses SILENTLY match the default internet rule. *)
  let rules = Baseline.Sendmail_rules.classic () in
  let d = route_ok rules "jose@yalevm.bitnet" in
  check_string "misrouted, no error" "internet" d.Baseline.Sendmail_rules.network;
  (* The fix must be inserted ahead of the default rule — on every
     host that runs a mailer. *)
  let patched =
    Baseline.Sendmail_rules.create
      [
        Baseline.Sendmail_rules.rewrite_rule ~pattern:"$+ ! $+" ~into:"$2@$1.uucp";
        Baseline.Sendmail_rules.resolve_rule ~pattern:"$+ @ $+ . bitnet"
          ~network:"bitnet" ~site:"$2" ~user:"$1";
        Baseline.Sendmail_rules.resolve_rule ~pattern:"$+ @ $+ . uucp" ~network:"uucp"
          ~site:"$2" ~user:"$1";
        Baseline.Sendmail_rules.resolve_rule ~pattern:"$+ @ $+" ~network:"internet"
          ~site:"$2" ~user:"$1";
      ]
  in
  let d = route_ok patched "jose@yalevm.bitnet" in
  check_string "routed after the ruleset edit" "bitnet" d.Baseline.Sendmail_rules.network

let sendmail_rewrite_loop_guard () =
  let looping =
    Baseline.Sendmail_rules.create
      [ Baseline.Sendmail_rules.rewrite_rule ~pattern:"$+ @ $+" ~into:"$1@$2" ]
  in
  match Baseline.Sendmail_rules.route looping "a@b" with
  | Error m -> check_bool "loop detected" true (String.length m > 0)
  | Ok _ -> Alcotest.fail "self-rewrite must hit the loop guard"

let sendmail_rule_order_matters () =
  (* First match wins: with the default rule FIRST, specific networks
     never fire — administration is order-sensitive. *)
  let misordered =
    Baseline.Sendmail_rules.create
      [
        Baseline.Sendmail_rules.resolve_rule ~pattern:"$+ @ $+" ~network:"internet"
          ~site:"$2" ~user:"$1";
        Baseline.Sendmail_rules.resolve_rule ~pattern:"$+ @ $+ . uucp" ~network:"uucp"
          ~site:"$2" ~user:"$1";
      ]
  in
  let d = route_ok misordered "mike@decvax.uucp" in
  check_string "shadowed by the default" "internet" d.Baseline.Sendmail_rules.network

let baseline_extra =
  [
    Alcotest.test_case "sendmail classic routes" `Quick sendmail_routes_classic_forms;
    Alcotest.test_case "sendmail unparsable" `Quick sendmail_unparsable;
    Alcotest.test_case "sendmail syntactic misrouting" `Quick
      sendmail_syntactic_misrouting;
    Alcotest.test_case "sendmail loop guard" `Quick sendmail_rewrite_loop_guard;
    Alcotest.test_case "sendmail rule order" `Quick sendmail_rule_order_matters;
  ]

let suite = suite @ baseline_extra

(* --- prefix tables (Welch & Ousterhout 1986) --- *)

let pt_binding port =
  Hrpc.Binding.make ~suite:Hrpc.Component.sunrpc_suite
    ~server:(Transport.Address.make 0x0A000050l port) ~prog:port ~vers:1

let prefix_longest_match () =
  let w = Helpers.make_world ~hosts:1 () in
  let pt = Baseline.Prefix_table.create w.stacks.(0) in
  Baseline.Prefix_table.mount pt ~prefix:"/a" (pt_binding 1);
  Baseline.Prefix_table.mount pt ~prefix:"/a/b" (pt_binding 2);
  (match Baseline.Prefix_table.lookup_local pt "/a/b/c.txt" with
  | Some ("/a/b", b) -> check_bool "longest wins" true (Hrpc.Binding.equal b (pt_binding 2))
  | _ -> Alcotest.fail "expected /a/b");
  (match Baseline.Prefix_table.lookup_local pt "/a/x" with
  | Some ("/a", _) -> ()
  | _ -> Alcotest.fail "expected /a");
  check_bool "no match" true (Baseline.Prefix_table.lookup_local pt "/z/q" = None);
  (* syntactic hazard: /ab is NOT under /a *)
  check_bool "component-wise, not string-wise" true
    (Baseline.Prefix_table.lookup_local pt "/ab" = None)

let prefix_broadcast_fallback () =
  let w = Helpers.make_world ~hosts:3 () in
  let learned, broadcasts =
    in_sim w (fun () ->
        let owner = Baseline.Broadcast_locate.start_interpreter w.stacks.(1)
            [ ("projects", pt_binding 7) ] in
        let bystander = Baseline.Broadcast_locate.start_interpreter w.stacks.(2) [] in
        let pt = Baseline.Prefix_table.create w.stacks.(0) in
        let first =
          match Baseline.Prefix_table.locate pt "/projects/hns/paper.tex" with
          | Ok (Some ("/projects", b)) -> Hrpc.Binding.equal b (pt_binding 7)
          | _ -> false
        in
        (* second locate is answered from the learned table: no new
           broadcast *)
        let second =
          match Baseline.Prefix_table.locate pt "/projects/other" with
          | Ok (Some ("/projects", _)) -> true
          | _ -> false
        in
        Baseline.Broadcast_locate.stop_interpreter owner;
        Baseline.Broadcast_locate.stop_interpreter bystander;
        (first && second, Baseline.Prefix_table.broadcasts pt))
  in
  check_bool "learned via broadcast then cached" true learned;
  check_int "exactly one broadcast" 1 broadcasts

let prefix_nobody_claims () =
  let w = Helpers.make_world ~hosts:2 () in
  let r =
    in_sim w (fun () ->
        let empty = Baseline.Broadcast_locate.start_interpreter w.stacks.(1) [] in
        let pt = Baseline.Prefix_table.create w.stacks.(0) in
        let r = Baseline.Prefix_table.locate pt "/ghost/file" in
        Baseline.Broadcast_locate.stop_interpreter empty;
        r)
  in
  check_bool "unclaimed prefix" true (r = Ok None)

let prefix_cases =
  [
    Alcotest.test_case "prefix longest match" `Quick prefix_longest_match;
    Alcotest.test_case "prefix broadcast fallback" `Quick prefix_broadcast_fallback;
    Alcotest.test_case "prefix nobody claims" `Quick prefix_nobody_claims;
  ]

let suite = suite @ prefix_cases
