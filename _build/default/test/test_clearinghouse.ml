(* Tests for the Clearinghouse reproduction. *)

open Helpers

let name_parsing () =
  let n = Clearinghouse.Ch_name.of_string "Printer:CS:UW" in
  check_string "case folded" "printer:cs:uw" (Clearinghouse.Ch_name.to_string n);
  check_bool "equal ignoring case" true
    (Clearinghouse.Ch_name.equal n (Clearinghouse.Ch_name.of_string "printer:cs:uw"));
  (match Clearinghouse.Ch_name.of_string "two:parts" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "two parts should fail");
  check_bool "same domain" true
    (Clearinghouse.Ch_name.same_domain n (Clearinghouse.Ch_name.of_string "other:cs:uw"))

let name_value_roundtrip () =
  let n = Clearinghouse.Ch_name.of_string "svc:parc:xerox" in
  check_bool "value roundtrip" true
    (Clearinghouse.Ch_name.equal n
       (Clearinghouse.Ch_name.of_value (Clearinghouse.Ch_name.to_value n)))

let db_properties () =
  let db = Clearinghouse.Ch_db.create () in
  let obj = Clearinghouse.Ch_name.of_string "printer:parc:xerox" in
  check_bool "create" true (Clearinghouse.Ch_db.create_object db obj);
  check_bool "create twice" false (Clearinghouse.Ch_db.create_object db obj);
  Clearinghouse.Ch_db.store db obj (Clearinghouse.Property.item 4 "addr");
  Clearinghouse.Ch_db.store db obj (Clearinghouse.Property.item 4 "addr2");
  check_bool "replace semantics" true
    (Clearinghouse.Ch_db.retrieve db obj 4 = Some (Clearinghouse.Property.Item "addr2"));
  check_bool "missing prop" true (Clearinghouse.Ch_db.retrieve db obj 9 = None);
  check_bool "delete" true (Clearinghouse.Ch_db.delete_object db obj);
  check_bool "gone" false (Clearinghouse.Ch_db.exists db obj)

let db_groups () =
  let db = Clearinghouse.Ch_db.create () in
  let list_ = Clearinghouse.Ch_name.of_string "staff:parc:xerox" in
  let alice = Clearinghouse.Ch_name.of_string "alice:parc:xerox" in
  let bob = Clearinghouse.Ch_name.of_string "bob:parc:xerox" in
  Clearinghouse.Ch_db.add_member db list_ 3 alice;
  Clearinghouse.Ch_db.add_member db list_ 3 bob;
  Clearinghouse.Ch_db.add_member db list_ 3 alice (* idempotent *);
  check_int "two members" 2 (List.length (Clearinghouse.Ch_db.members db list_ 3));
  Clearinghouse.Ch_db.store db list_ (Clearinghouse.Property.item 5 "x");
  match Clearinghouse.Ch_db.add_member db list_ 5 alice with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "add_member on item property should fail"

let db_list_objects () =
  let db = Clearinghouse.Ch_db.create () in
  List.iter
    (fun s -> ignore (Clearinghouse.Ch_db.create_object db (Clearinghouse.Ch_name.of_string s)))
    [ "b:parc:xerox"; "a:parc:xerox"; "c:webster:xerox" ];
  check (Alcotest.list Alcotest.string) "sorted, domain-scoped" [ "a"; "b" ]
    (Clearinghouse.Ch_db.list_objects db ~domain:"parc" ~org:"xerox")

(* --- server/client integration --- *)

let cred =
  { Clearinghouse.Ch_proto.user = Clearinghouse.Ch_name.of_string "hcs:parc:xerox";
    password = "pw" }

let with_ch ?(auth_ms = 0.0) ?(disk_ms = 0.0) f =
  let w = make_world ~hosts:2 () in
  in_sim w (fun () ->
      let ch = Clearinghouse.Ch_server.create w.stacks.(0) ~auth_ms ~disk_ms () in
      Clearinghouse.Ch_server.add_user ch cred.Clearinghouse.Ch_proto.user
        ~password:cred.Clearinghouse.Ch_proto.password;
      Clearinghouse.Ch_server.start ch;
      let client =
        Clearinghouse.Ch_client.connect w.stacks.(1)
          ~server:(Clearinghouse.Ch_server.addr ch) ~credentials:cred
      in
      let r = f ch client in
      Clearinghouse.Ch_client.close client;
      r)

let ch_store_retrieve () =
  let r =
    with_ch (fun _ client ->
        let obj = Clearinghouse.Ch_name.of_string "printsrv:parc:xerox" in
        ignore (get_ok ~msg:"create" (Clearinghouse.Ch_client.create_object client obj));
        get_ok ~msg:"store"
          (Clearinghouse.Ch_client.store_item client obj ~prop:10 "binding-bytes");
        ( Clearinghouse.Ch_client.retrieve_item client obj ~prop:10,
          Clearinghouse.Ch_client.retrieve_item client obj ~prop:11 ))
  in
  check_bool "retrieve" true (fst r = Ok "binding-bytes");
  check_bool "missing prop" true (snd r = Error Clearinghouse.Ch_client.Not_found)

let ch_members_remote () =
  let members =
    with_ch (fun _ client ->
        let grp = Clearinghouse.Ch_name.of_string "staff:parc:xerox" in
        get_ok ~msg:"add1"
          (Clearinghouse.Ch_client.add_member client grp ~prop:3
             (Clearinghouse.Ch_name.of_string "alice:parc:xerox"));
        get_ok ~msg:"add2"
          (Clearinghouse.Ch_client.add_member client grp ~prop:3
             (Clearinghouse.Ch_name.of_string "bob:parc:xerox"));
        get_ok ~msg:"members" (Clearinghouse.Ch_client.retrieve_members client grp ~prop:3))
  in
  check_int "two members over the wire" 2 (List.length members)

let ch_list_objects_remote () =
  let names =
    with_ch (fun ch client ->
        let db = Clearinghouse.Ch_server.db ch in
        ignore (Clearinghouse.Ch_db.create_object db (Clearinghouse.Ch_name.of_string "x:parc:xerox"));
        ignore (Clearinghouse.Ch_db.create_object db (Clearinghouse.Ch_name.of_string "y:parc:xerox"));
        get_ok ~msg:"list" (Clearinghouse.Ch_client.list_objects client ~domain:"parc" ~org:"xerox"))
  in
  check (Alcotest.list Alcotest.string) "listed" [ "x"; "y" ] names

let ch_auth_failure () =
  let w = make_world ~hosts:2 () in
  let r =
    in_sim w (fun () ->
        let ch = Clearinghouse.Ch_server.create w.stacks.(0) () in
        Clearinghouse.Ch_server.add_user ch
          (Clearinghouse.Ch_name.of_string "hcs:parc:xerox")
          ~password:"correct";
        Clearinghouse.Ch_server.start ch;
        let client =
          Clearinghouse.Ch_client.connect w.stacks.(1)
            ~server:(Clearinghouse.Ch_server.addr ch)
            ~credentials:
              { Clearinghouse.Ch_proto.user = Clearinghouse.Ch_name.of_string "hcs:parc:xerox";
                password = "wrong" }
        in
        let r =
          Clearinghouse.Ch_client.retrieve_item client
            (Clearinghouse.Ch_name.of_string "any:parc:xerox") ~prop:4
        in
        Clearinghouse.Ch_client.close client;
        r)
  in
  match r with
  | Error (Clearinghouse.Ch_client.Rpc_error (Rpc.Control.Protocol_error m)) ->
      check_bool "mentions auth" true
        (String.length m > 0)
  | _ -> Alcotest.fail "bad credentials should abort"

let ch_costs_auth_and_disk () =
  let elapsed =
    with_ch ~auth_ms:60.0 ~disk_ms:85.0 (fun _ client ->
        let obj = Clearinghouse.Ch_name.of_string "o:parc:xerox" in
        get_ok ~msg:"store" (Clearinghouse.Ch_client.store_item client obj ~prop:4 "v");
        let _, d =
          Workload.Scenario.timed (fun () ->
              ignore (Clearinghouse.Ch_client.retrieve_item client obj ~prop:4))
        in
        d)
  in
  (* auth + disk dominate; network adds a little *)
  check_bool "lookup cost near 145-160ms" true (elapsed > 144.0 && elapsed < 165.0);
  check_bool "slower than BIND's 27ms" true (elapsed > 27.0)

let ch_access_counter () =
  let n =
    with_ch (fun ch client ->
        let obj = Clearinghouse.Ch_name.of_string "o:parc:xerox" in
        get_ok ~msg:"store" (Clearinghouse.Ch_client.store_item client obj ~prop:4 "v");
        ignore (Clearinghouse.Ch_client.retrieve_item client obj ~prop:4);
        Clearinghouse.Ch_server.accesses ch)
  in
  check_int "two authenticated accesses" 2 n

let suite =
  [
    Alcotest.test_case "name parsing" `Quick name_parsing;
    Alcotest.test_case "name value roundtrip" `Quick name_value_roundtrip;
    Alcotest.test_case "db properties" `Quick db_properties;
    Alcotest.test_case "db groups" `Quick db_groups;
    Alcotest.test_case "db list objects" `Quick db_list_objects;
    Alcotest.test_case "store/retrieve" `Quick ch_store_retrieve;
    Alcotest.test_case "group membership remote" `Quick ch_members_remote;
    Alcotest.test_case "list objects remote" `Quick ch_list_objects_remote;
    Alcotest.test_case "auth failure" `Quick ch_auth_failure;
    Alcotest.test_case "auth+disk costs" `Quick ch_costs_auth_and_disk;
    Alcotest.test_case "access counter" `Quick ch_access_counter;
  ]
