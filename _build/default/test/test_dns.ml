(* Tests for the BIND reproduction: names, records, the database, the
   message format, the server, the resolver cache, dynamic update, and
   zone transfer. *)

open Helpers

(* --- names --- *)

let name_parse_print () =
  let n = Dns.Name.of_string "FIJI.CS.Washington.EDU." in
  check_string "case folded, dot dropped" "fiji.cs.washington.edu" (Dns.Name.to_string n);
  check_bool "root" true (Dns.Name.is_root (Dns.Name.of_string ""));
  check_string "root prints dot" "." (Dns.Name.to_string Dns.Name.root);
  check_int "labels" 4 (Dns.Name.label_count n)

let name_validation () =
  (match Dns.Name.of_string "a..b" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty label");
  match Dns.Name.of_labels [ String.make 64 'x' ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "oversized label"

let name_subdomain () =
  let zone = Dns.Name.of_string "cs.washington.edu" in
  check_bool "self" true (Dns.Name.is_subdomain ~of_:zone zone);
  check_bool "child" true
    (Dns.Name.is_subdomain ~of_:zone (Dns.Name.of_string "fiji.cs.washington.edu"));
  check_bool "sibling" false
    (Dns.Name.is_subdomain ~of_:zone (Dns.Name.of_string "ee.washington.edu"));
  check_bool "everything under root" true
    (Dns.Name.is_subdomain ~of_:Dns.Name.root zone)

let name_parent_prepend () =
  let n = Dns.Name.of_string "a.b.c" in
  check_bool "parent" true
    (Dns.Name.parent n = Some (Dns.Name.of_string "b.c"));
  check_bool "root parent" true (Dns.Name.parent Dns.Name.root = None);
  check_string "prepend" "x.a.b.c" (Dns.Name.to_string (Dns.Name.prepend "X" n))

let gen_name =
  QCheck.Gen.(
    let label = map (String.concat "") (list_size (int_range 1 6) (map (String.make 1) (char_range 'a' 'z'))) in
    map Dns.Name.of_labels (list_size (int_range 0 5) label))

let arb_name = QCheck.make gen_name ~print:Dns.Name.to_string

let name_string_roundtrip =
  QCheck.Test.make ~name:"name of_string/to_string roundtrip" ~count:200 arb_name
    (fun n -> Dns.Name.equal n (Dns.Name.of_string (Dns.Name.to_string n)))

(* --- db --- *)

let mk_a name ip = Dns.Rr.make (Dns.Name.of_string name) (Dns.Rr.A ip)

let db_rrset_semantics () =
  let db = Dns.Db.create () in
  Dns.Db.add db (mk_a "h.z" 1l);
  Dns.Db.add db (mk_a "h.z" 2l);
  Dns.Db.add db (mk_a "h.z" 1l) (* duplicate rdata refreshes, no dup *);
  Dns.Db.add db (Dns.Rr.make (Dns.Name.of_string "h.z") (Dns.Rr.Txt [ "t" ]));
  check_int "two A records" 2 (List.length (Dns.Db.lookup db (Dns.Name.of_string "h.z") Dns.Rr.T_a));
  check_int "ANY returns all" 3 (List.length (Dns.Db.lookup db (Dns.Name.of_string "h.z") Dns.Rr.T_any));
  Dns.Db.remove_rr db (Dns.Name.of_string "h.z") (Dns.Rr.A 1l);
  check_int "specific delete" 1 (List.length (Dns.Db.lookup db (Dns.Name.of_string "h.z") Dns.Rr.T_a));
  Dns.Db.remove_rrset db (Dns.Name.of_string "h.z") Dns.Rr.T_a;
  check_int "rrset delete" 0 (List.length (Dns.Db.lookup db (Dns.Name.of_string "h.z") Dns.Rr.T_a));
  check_bool "name still there (TXT)" true (Dns.Db.has_name db (Dns.Name.of_string "h.z"));
  Dns.Db.remove_name db (Dns.Name.of_string "h.z");
  check_bool "name gone" false (Dns.Db.has_name db (Dns.Name.of_string "h.z"))

let zone_rejects_foreign_records () =
  match
    Dns.Zone.simple ~origin:(Dns.Name.of_string "a.example") [ mk_a "h.other" 1l ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-zone record should be rejected"

let zone_serial_bumps () =
  let z = Dns.Zone.simple ~origin:(Dns.Name.of_string "z") [] in
  let s0 = Dns.Zone.serial z in
  Dns.Zone.bump_serial z;
  check_bool "serial increases" true (Dns.Zone.serial z = Int32.add s0 1l)

(* --- message format --- *)

let msg_query_roundtrip () =
  let q = Dns.Msg.query ~id:7 (Dns.Name.of_string "fiji.cs.washington.edu") Dns.Rr.T_a in
  let q' = Dns.Msg.decode (Dns.Msg.encode q) in
  check_bool "roundtrip" true (q' = q)

let msg_response_roundtrip () =
  let q = Dns.Msg.query ~id:9 (Dns.Name.of_string "h.z") Dns.Rr.T_any in
  let answers =
    [
      mk_a "h.z" 0x0A000001l;
      Dns.Rr.make (Dns.Name.of_string "h.z") (Dns.Rr.Txt [ "a"; "b" ]);
      Dns.Rr.make (Dns.Name.of_string "h.z") (Dns.Rr.Mx (10, Dns.Name.of_string "mx.z"));
      Dns.Rr.make (Dns.Name.of_string "h.z") (Dns.Rr.Hinfo ("vax", "unix"));
      Dns.Rr.make (Dns.Name.of_string "h.z") (Dns.Rr.Cname (Dns.Name.of_string "c.z"));
      Dns.Rr.make (Dns.Name.of_string "h.z") (Dns.Rr.Unspec "\x00\x01binary\xff");
    ]
  in
  let r = Dns.Msg.response ~request:q answers in
  let r' = Dns.Msg.decode (Dns.Msg.encode r) in
  check_bool "roundtrip with all rdata kinds" true (r' = r)

let msg_update_roundtrip () =
  let u =
    Dns.Msg.update_request ~id:3 ~zone:(Dns.Name.of_string "hns-meta")
      [
        Dns.Msg.Add (Dns.Rr.make (Dns.Name.of_string "k.hns-meta") (Dns.Rr.Unspec "v"));
        Dns.Msg.Delete_rrset (Dns.Name.of_string "k2.hns-meta", Dns.Rr.T_unspec);
        Dns.Msg.Delete_rr (Dns.Name.of_string "k3.hns-meta", Dns.Rr.A 5l);
        Dns.Msg.Delete_name (Dns.Name.of_string "k4.hns-meta");
      ]
  in
  let u' = Dns.Msg.decode (Dns.Msg.encode u) in
  check_bool "update roundtrip" true (u' = u)

let msg_soa_roundtrip () =
  let soa =
    {
      Dns.Rr.mname = Dns.Name.of_string "ns.z";
      rname = Dns.Name.of_string "root.z";
      serial = 42l;
      refresh = 1l;
      retry = 2l;
      expire = 3l;
      minimum = 4l;
    }
  in
  let q = Dns.Msg.query ~id:1 (Dns.Name.of_string "z") Dns.Rr.T_soa in
  let r = Dns.Msg.response ~request:q [ Dns.Rr.make (Dns.Name.of_string "z") (Dns.Rr.Soa soa) ] in
  check_bool "soa roundtrip" true (Dns.Msg.decode (Dns.Msg.encode r) = r)

let msg_rejects_garbage () =
  match Dns.Msg.decode "tiny" with
  | exception Dns.Msg.Bad_message _ -> ()
  | _ -> Alcotest.fail "garbage should fail"

(* --- server + resolver integration --- *)

type fixture = {
  w : Helpers.world;
  server : Dns.Server.t;
  zone : Dns.Zone.t;
}

let make_fixture ?(allow_update = false) () =
  let w = make_world ~hosts:2 () in
  let zone =
    Dns.Zone.simple ~origin:(Dns.Name.of_string "cs.washington.edu")
      [
        mk_a "fiji.cs.washington.edu" 0x0A000001l;
        mk_a "tonga.cs.washington.edu" 0x0A000002l;
        Dns.Rr.make ~ttl:60l
          (Dns.Name.of_string "short.cs.washington.edu")
          (Dns.Rr.A 0x0A000003l);
        Dns.Rr.make
          (Dns.Name.of_string "www.cs.washington.edu")
          (Dns.Rr.Cname (Dns.Name.of_string "fiji.cs.washington.edu"));
        Dns.Rr.make
          (Dns.Name.of_string "noaddr.cs.washington.edu")
          (Dns.Rr.Txt [ "only text" ]);
      ]
  in
  let server = Dns.Server.create w.stacks.(0) ~allow_update () in
  Dns.Server.add_zone server zone;
  { w; server; zone }

let resolver_of f =
  Dns.Resolver.create f.w.stacks.(1) ~servers:[ Dns.Server.addr f.server ] ()

let serve f body =
  in_sim f.w (fun () ->
      Dns.Server.start f.server;
      body ())

let dns_query_a () =
  let f = make_fixture () in
  let r =
    serve f (fun () ->
        Dns.Resolver.lookup_a (resolver_of f) (Dns.Name.of_string "fiji.cs.washington.edu"))
  in
  check_bool "A record" true (r = Ok 0x0A000001l)

let dns_cname_chase () =
  let f = make_fixture () in
  let r =
    serve f (fun () ->
        Dns.Resolver.lookup_a (resolver_of f) (Dns.Name.of_string "www.cs.washington.edu"))
  in
  check_bool "follows CNAME" true (r = Ok 0x0A000001l)

let dns_nxdomain_vs_nodata () =
  let f = make_fixture () in
  let nx, nodata =
    serve f (fun () ->
        let r = resolver_of f in
        ( Dns.Resolver.query r (Dns.Name.of_string "ghost.cs.washington.edu") Dns.Rr.T_a,
          Dns.Resolver.query r (Dns.Name.of_string "noaddr.cs.washington.edu") Dns.Rr.T_a ))
  in
  check_bool "nxdomain" true (nx = Error Dns.Resolver.Nxdomain);
  check_bool "no data" true (nodata = Error Dns.Resolver.No_data)

let dns_refuses_foreign_zone () =
  let f = make_fixture () in
  let r =
    serve f (fun () ->
        Dns.Resolver.query (resolver_of f) (Dns.Name.of_string "mit.edu") Dns.Rr.T_a)
  in
  match r with
  | Error (Dns.Resolver.Server_error Dns.Msg.Refused) -> ()
  | _ -> Alcotest.fail "non-authoritative query should be refused"

let dns_resolver_cache_hits () =
  let f = make_fixture () in
  let first, second, hits =
    serve f (fun () ->
        let r = resolver_of f in
        let name = Dns.Name.of_string "fiji.cs.washington.edu" in
        let _, d1 = Workload.Scenario.timed (fun () -> ignore (Dns.Resolver.lookup_a r name)) in
        let _, d2 = Workload.Scenario.timed (fun () -> ignore (Dns.Resolver.lookup_a r name)) in
        (d1, d2, Dns.Resolver.cache_hits r))
  in
  check_bool "first lookup is remote" true (first > 1.0);
  check_float_near "second is free" 0.0 second;
  check_int "one hit" 1 hits

let dns_resolver_ttl_expiry () =
  let f = make_fixture () in
  let served =
    serve f (fun () ->
        let r = resolver_of f in
        let name = Dns.Name.of_string "short.cs.washington.edu" in
        ignore (Dns.Resolver.lookup_a r name);
        (* TTL is 60 s; wait past it in virtual time. *)
        Sim.Engine.sleep 61_000.0;
        ignore (Dns.Resolver.lookup_a r name);
        Dns.Server.queries_served f.server)
  in
  check_int "expired entry refetches" 2 served

let dns_dynamic_update () =
  let f = make_fixture ~allow_update:true () in
  let before, after =
    serve f (fun () ->
        let r = resolver_of f in
        let name = Dns.Name.of_string "new.cs.washington.edu" in
        let before = Dns.Resolver.lookup_a r name in
        (match
           Dns.Update.add_rr f.w.stacks.(1) ~server:(Dns.Server.addr f.server)
             ~zone:(Dns.Name.of_string "cs.washington.edu")
             (mk_a "new.cs.washington.edu" 0x0A0000FFl)
         with
        | Ok () -> ()
        | Error e -> Alcotest.failf "update failed: %a" Dns.Update.pp_error e);
        (before, Dns.Resolver.lookup_a r name))
  in
  check_bool "absent before" true (before = Error Dns.Resolver.Nxdomain);
  check_bool "visible after" true (after = Ok 0x0A0000FFl)

let dns_update_refused_when_static () =
  let f = make_fixture ~allow_update:false () in
  let r =
    serve f (fun () ->
        Dns.Update.add_rr f.w.stacks.(1) ~server:(Dns.Server.addr f.server)
          ~zone:(Dns.Name.of_string "cs.washington.edu")
          (mk_a "x.cs.washington.edu" 1l))
  in
  check_bool "stock BIND refuses updates" true (r = Error Dns.Update.Refused)

let dns_update_outside_zone () =
  let f = make_fixture ~allow_update:true () in
  let r =
    serve f (fun () ->
        Dns.Update.add_rr f.w.stacks.(1) ~server:(Dns.Server.addr f.server)
          ~zone:(Dns.Name.of_string "mit.edu")
          (mk_a "x.mit.edu" 1l))
  in
  check_bool "not zone" true (r = Error Dns.Update.Not_zone)

let dns_update_delete_ops () =
  let f = make_fixture ~allow_update:true () in
  let gone =
    serve f (fun () ->
        let server = Dns.Server.addr f.server in
        let zone = Dns.Name.of_string "cs.washington.edu" in
        (match
           Dns.Update.send f.w.stacks.(1) ~server ~zone
             [ Dns.Msg.Delete_name (Dns.Name.of_string "fiji.cs.washington.edu") ]
         with
        | Ok () -> ()
        | Error e -> Alcotest.failf "delete failed: %a" Dns.Update.pp_error e);
        Dns.Resolver.lookup_a (resolver_of f) (Dns.Name.of_string "fiji.cs.washington.edu"))
  in
  check_bool "deleted" true (gone = Error Dns.Resolver.Nxdomain)

let dns_axfr () =
  let f = make_fixture () in
  let records =
    serve f (fun () ->
        match
          Dns.Axfr.fetch f.w.stacks.(1) ~server:(Dns.Server.addr f.server)
            ~zone:(Dns.Name.of_string "cs.washington.edu")
        with
        | Ok rrs -> rrs
        | Error e -> Alcotest.failf "axfr failed: %a" Dns.Axfr.pp_error e)
  in
  check_int "SOA + five records" 6 (List.length records);
  (match records with
  | { Dns.Rr.rdata = Dns.Rr.Soa _; _ } :: _ -> ()
  | _ -> Alcotest.fail "first record must be the SOA")

let dns_axfr_refused_for_unknown_zone () =
  let f = make_fixture () in
  let r =
    serve f (fun () ->
        Dns.Axfr.fetch f.w.stacks.(1) ~server:(Dns.Server.addr f.server)
          ~zone:(Dns.Name.of_string "mit.edu"))
  in
  check_bool "refused" true (r = Error Dns.Axfr.Refused)

let dns_seed_preloads_cache () =
  let f = make_fixture () in
  let served =
    serve f (fun () ->
        let r = resolver_of f in
        Dns.Resolver.seed r (Dns.Name.of_string "fiji.cs.washington.edu") Dns.Rr.T_a
          [ mk_a "fiji.cs.washington.edu" 0x0A000001l ];
        ignore (Dns.Resolver.lookup_a r (Dns.Name.of_string "fiji.cs.washington.edu"));
        Dns.Server.queries_served f.server)
  in
  check_int "no server query after seed" 0 served

let suite =
  [
    Alcotest.test_case "name parse/print" `Quick name_parse_print;
    Alcotest.test_case "name validation" `Quick name_validation;
    Alcotest.test_case "name subdomain" `Quick name_subdomain;
    Alcotest.test_case "name parent/prepend" `Quick name_parent_prepend;
    qtest name_string_roundtrip;
    Alcotest.test_case "db rrset semantics" `Quick db_rrset_semantics;
    Alcotest.test_case "zone rejects foreign" `Quick zone_rejects_foreign_records;
    Alcotest.test_case "zone serial" `Quick zone_serial_bumps;
    Alcotest.test_case "msg query roundtrip" `Quick msg_query_roundtrip;
    Alcotest.test_case "msg response roundtrip" `Quick msg_response_roundtrip;
    Alcotest.test_case "msg update roundtrip" `Quick msg_update_roundtrip;
    Alcotest.test_case "msg soa roundtrip" `Quick msg_soa_roundtrip;
    Alcotest.test_case "msg garbage" `Quick msg_rejects_garbage;
    Alcotest.test_case "query A" `Quick dns_query_a;
    Alcotest.test_case "CNAME chase" `Quick dns_cname_chase;
    Alcotest.test_case "nxdomain vs nodata" `Quick dns_nxdomain_vs_nodata;
    Alcotest.test_case "refuses foreign zone" `Quick dns_refuses_foreign_zone;
    Alcotest.test_case "resolver cache hit" `Quick dns_resolver_cache_hits;
    Alcotest.test_case "resolver TTL expiry" `Quick dns_resolver_ttl_expiry;
    Alcotest.test_case "dynamic update" `Quick dns_dynamic_update;
    Alcotest.test_case "update refused (stock)" `Quick dns_update_refused_when_static;
    Alcotest.test_case "update outside zone" `Quick dns_update_outside_zone;
    Alcotest.test_case "update delete ops" `Quick dns_update_delete_ops;
    Alcotest.test_case "zone transfer" `Quick dns_axfr;
    Alcotest.test_case "axfr refused" `Quick dns_axfr_refused_for_unknown_zone;
    Alcotest.test_case "resolver seed" `Quick dns_seed_preloads_cache;
  ]

(* --- name compression (RFC 1035 4.1.4) --- *)

let compression_shrinks_repeated_names () =
  let name = Dns.Name.of_string "fiji.cs.washington.edu" in
  let q = Dns.Msg.query ~id:1 name Dns.Rr.T_a in
  let answers = List.init 6 (fun i -> Dns.Rr.make name (Dns.Rr.A (Int32.of_int i))) in
  let r = Dns.Msg.response ~request:q answers in
  let compressed = Dns.Msg.encode ~compress:true r in
  let plain = Dns.Msg.encode ~compress:false r in
  check_bool "compressed is smaller" true
    (String.length compressed < String.length plain);
  (* the six answer owner names collapse to 2-byte pointers *)
  check_bool "substantially smaller" true
    (String.length plain - String.length compressed
    >= 6 * (String.length "fiji.cs.washington.edu" - 2));
  check_bool "decodes identically" true
    (Dns.Msg.decode compressed = Dns.Msg.decode plain)

let compression_suffix_sharing () =
  (* different owners sharing a suffix share the tail *)
  let q = Dns.Msg.query ~id:2 (Dns.Name.of_string "a.cs.washington.edu") Dns.Rr.T_any in
  let r =
    Dns.Msg.response ~request:q
      [
        Dns.Rr.make (Dns.Name.of_string "b.cs.washington.edu") (Dns.Rr.A 1l);
        Dns.Rr.make (Dns.Name.of_string "c.b.cs.washington.edu")
          (Dns.Rr.Cname (Dns.Name.of_string "b.cs.washington.edu"));
      ]
  in
  let compressed = Dns.Msg.encode ~compress:true r in
  check_bool "roundtrip through pointers" true (Dns.Msg.decode compressed = r);
  check_bool "smaller than plain" true
    (String.length compressed < String.length (Dns.Msg.encode ~compress:false r))

let compression_pointer_loop_rejected () =
  (* hand-build a message whose qname is a pointer to itself *)
  let wr = Wire.Bytebuf.Wr.create () in
  Wire.Bytebuf.Wr.u16 wr 1;      (* id *)
  Wire.Bytebuf.Wr.u16 wr 0;      (* flags *)
  Wire.Bytebuf.Wr.u16 wr 1;      (* qdcount *)
  Wire.Bytebuf.Wr.u16 wr 0;
  Wire.Bytebuf.Wr.u16 wr 0;
  Wire.Bytebuf.Wr.u16 wr 0;
  (* qname at offset 12: pointer to offset 12 = infinite loop *)
  Wire.Bytebuf.Wr.u8 wr 0xC0;
  Wire.Bytebuf.Wr.u8 wr 12;
  Wire.Bytebuf.Wr.u16 wr 1;      (* qtype A *)
  Wire.Bytebuf.Wr.u16 wr 1;      (* qclass IN *)
  match Dns.Msg.decode (Wire.Bytebuf.Wr.contents wr) with
  | exception Dns.Msg.Bad_message _ -> ()
  | _ -> Alcotest.fail "pointer loop must be rejected"

let compression_reference_vector () =
  (* a known-good compressed message: query for x.y, answer CNAME at
     the same name pointing to y (the qname suffix) *)
  let q = Dns.Msg.query ~id:3 (Dns.Name.of_string "x.y") Dns.Rr.T_cname in
  let r =
    Dns.Msg.response ~request:q
      [ Dns.Rr.make (Dns.Name.of_string "x.y") (Dns.Rr.Cname (Dns.Name.of_string "y")) ]
  in
  let bytes = Dns.Msg.encode ~compress:true r in
  (* qname "x.y" at offset 12 occupies 5 bytes (1x 1y 0); the answer's
     owner is a 2-byte pointer to 12 *)
  check_int "answer owner is a pointer" 0xC0 (Char.code bytes.[21] land 0xC0);
  check_bool "roundtrip" true (Dns.Msg.decode bytes = r)

let compression_cases =
  [
    Alcotest.test_case "compression shrinks" `Quick compression_shrinks_repeated_names;
    Alcotest.test_case "compression suffixes" `Quick compression_suffix_sharing;
    Alcotest.test_case "compression loop rejected" `Quick
      compression_pointer_loop_rejected;
    Alcotest.test_case "compression reference bytes" `Quick compression_reference_vector;
  ]

let suite = suite @ compression_cases

(* --- truncation and TCP fallback --- *)

let big_rrset_fixture () =
  let w = make_world ~hosts:2 () in
  let records =
    List.init 40 (fun i ->
        Dns.Rr.make
          (Dns.Name.of_string "big.cs.washington.edu")
          (Dns.Rr.Txt [ Printf.sprintf "record-%02d-with-some-padding-text" i ]))
  in
  let zone =
    Dns.Zone.simple ~origin:(Dns.Name.of_string "cs.washington.edu") records
  in
  let server = Dns.Server.create w.stacks.(0) () in
  Dns.Server.add_zone server zone;
  (w, server)

let truncation_sets_tc_over_udp () =
  let w, server = big_rrset_fixture () in
  let reply =
    in_sim w (fun () ->
        Dns.Server.start server;
        let request =
          Dns.Msg.encode
            (Dns.Msg.query ~id:9 (Dns.Name.of_string "big.cs.washington.edu") Dns.Rr.T_txt)
        in
        match Rpc.Rawrpc.call w.stacks.(1) ~dst:(Dns.Server.addr server) request with
        | Ok payload -> Dns.Msg.decode payload
        | Error e -> Alcotest.failf "udp query failed: %a" Rpc.Control.pp_error e)
  in
  check_bool "TC set" true reply.Dns.Msg.truncated;
  check_int "answers dropped" 0 (List.length reply.Dns.Msg.answers)

let resolver_falls_back_to_tcp () =
  let w, server = big_rrset_fixture () in
  let answers =
    in_sim w (fun () ->
        Dns.Server.start server;
        let r = Dns.Resolver.create w.stacks.(1) ~servers:[ Dns.Server.addr server ] () in
        match Dns.Resolver.query r (Dns.Name.of_string "big.cs.washington.edu") Dns.Rr.T_txt with
        | Ok rrs -> rrs
        | Error e -> Alcotest.failf "query failed: %a" Dns.Resolver.pp_error e)
  in
  check_int "full rrset via TCP" 40 (List.length answers)

let small_answers_not_truncated () =
  let f = make_fixture () in
  let reply =
    serve f (fun () ->
        let request =
          Dns.Msg.encode
            (Dns.Msg.query ~id:3 (Dns.Name.of_string "fiji.cs.washington.edu") Dns.Rr.T_a)
        in
        match Rpc.Rawrpc.call f.w.stacks.(1) ~dst:(Dns.Server.addr f.server) request with
        | Ok payload -> Dns.Msg.decode payload
        | Error e -> Alcotest.failf "udp query failed: %a" Rpc.Control.pp_error e)
  in
  check_bool "no TC" false reply.Dns.Msg.truncated;
  check_int "answer intact" 1 (List.length reply.Dns.Msg.answers)

let truncation_cases =
  [
    Alcotest.test_case "TC over UDP" `Quick truncation_sets_tc_over_udp;
    Alcotest.test_case "TCP fallback" `Quick resolver_falls_back_to_tcp;
    Alcotest.test_case "small answers intact" `Quick small_answers_not_truncated;
  ]

let suite = suite @ truncation_cases

(* --- delegation and iterative resolution --- *)

(* Parent zone washington.edu on server A delegates cs.washington.edu
   to server B. *)
let delegation_fixture ~with_glue () =
  let w = make_world ~hosts:3 () in
  let parent_server = Dns.Server.create w.stacks.(0) () in
  let child_server = Dns.Server.create w.stacks.(1) () in
  let child_ip = Transport.Netstack.ip w.stacks.(1) in
  let parent_records =
    [
      Dns.Rr.make
        (Dns.Name.of_string "cs.washington.edu")
        (Dns.Rr.Ns (Dns.Name.of_string "ns.cs.washington.edu"));
      mk_a "ee.washington.edu" 0x0A00EE01l;
    ]
    @ (if with_glue then [ mk_a "ns.cs.washington.edu" child_ip ] else [])
  in
  Dns.Server.add_zone parent_server
    (Dns.Zone.simple ~origin:(Dns.Name.of_string "washington.edu") parent_records);
  Dns.Server.add_zone child_server
    (Dns.Zone.simple ~origin:(Dns.Name.of_string "cs.washington.edu")
       [ mk_a "fiji.cs.washington.edu" 0x0A000001l;
         mk_a "ns.cs.washington.edu" child_ip ]);
  (w, parent_server, child_server)

let referral_shape () =
  let w, parent, child = delegation_fixture ~with_glue:true () in
  let reply =
    in_sim w (fun () ->
        Dns.Server.start parent;
        Dns.Server.start child;
        let request =
          Dns.Msg.encode
            (Dns.Msg.query ~id:4 (Dns.Name.of_string "fiji.cs.washington.edu") Dns.Rr.T_a)
        in
        match Rpc.Rawrpc.call w.stacks.(2) ~dst:(Dns.Server.addr parent) request with
        | Ok payload -> Dns.Msg.decode payload
        | Error e -> Alcotest.failf "query failed: %a" Rpc.Control.pp_error e)
  in
  check_int "no answers" 0 (List.length reply.Dns.Msg.answers);
  check_int "NS in authority" 1 (List.length reply.Dns.Msg.authority);
  check_int "glue in additional" 1 (List.length reply.Dns.Msg.additional);
  check_bool "not authoritative" false reply.Dns.Msg.authoritative

let iterative_follows_glue () =
  let w, parent, child = delegation_fixture ~with_glue:true () in
  let r, parent_q, child_q =
    in_sim w (fun () ->
        Dns.Server.start parent;
        Dns.Server.start child;
        let res =
          Dns.Resolver.create w.stacks.(2) ~servers:[ Dns.Server.addr parent ] ()
        in
        let r =
          Dns.Resolver.query_iterative res
            (Dns.Name.of_string "fiji.cs.washington.edu") Dns.Rr.T_a
        in
        (r, Dns.Server.queries_served parent, Dns.Server.queries_served child))
  in
  (match r with
  | Ok [ { Dns.Rr.rdata = Dns.Rr.A 0x0A000001l; _ } ] -> ()
  | _ -> Alcotest.fail "iterative resolution should find the child's record");
  check_int "one referral from the parent" 1 parent_q;
  check_int "one authoritative answer from the child" 1 child_q

let iterative_without_glue () =
  (* The referral names the child server but carries no address; the
     resolver must resolve ns.cs.washington.edu from the roots. The
     parent cannot answer that (it is below the cut!), so this fails
     with SERVFAIL — exactly the classic missing-glue misconfiguration. *)
  let w, parent, child = delegation_fixture ~with_glue:false () in
  let r =
    in_sim w (fun () ->
        Dns.Server.start parent;
        Dns.Server.start child;
        let res =
          Dns.Resolver.create w.stacks.(2) ~servers:[ Dns.Server.addr parent ] ()
        in
        Dns.Resolver.query_iterative res (Dns.Name.of_string "fiji.cs.washington.edu")
          Dns.Rr.T_a)
  in
  check_bool "missing glue is SERVFAIL" true
    (r = Error (Dns.Resolver.Server_error Dns.Msg.Serv_fail))

let iterative_answers_parent_data_directly () =
  let w, parent, child = delegation_fixture ~with_glue:true () in
  let r =
    in_sim w (fun () ->
        Dns.Server.start parent;
        Dns.Server.start child;
        let res =
          Dns.Resolver.create w.stacks.(2) ~servers:[ Dns.Server.addr parent ] ()
        in
        Dns.Resolver.query_iterative res (Dns.Name.of_string "ee.washington.edu")
          Dns.Rr.T_a)
  in
  check_bool "non-delegated name answered by parent" true
    (match r with Ok [ { Dns.Rr.rdata = Dns.Rr.A 0x0A00EE01l; _ } ] -> true | _ -> false)

let delegation_cases =
  [
    Alcotest.test_case "referral shape" `Quick referral_shape;
    Alcotest.test_case "iterative follows glue" `Quick iterative_follows_glue;
    Alcotest.test_case "missing glue" `Quick iterative_without_glue;
    Alcotest.test_case "parent data direct" `Quick iterative_answers_parent_data_directly;
  ]

let suite = suite @ delegation_cases
