(* Tests for the extension features: the collapsed-FindNSM ablation,
   NSM cache preloading, cross-representation mismatches, and assorted
   smaller behaviours. *)

open Helpers

let scn = lazy (Workload.Scenario.build ())

(* --- collapsed FindNSM (the rejected design) --- *)

let collapsed_register_and_find () =
  let s = Lazy.force scn in
  Workload.Scenario.in_sim s (fun () ->
      let hns = Workload.Scenario.new_hns s ~on:s.client_stack in
      let meta = Hns.Client.meta hns in
      let binding = s.expected_sun_binding in
      get_ok ~msg:"register"
        (Hns.Collapsed.register meta ~context:s.bind_context
           ~query_class:Hns.Query_class.hrpc_binding ~nsm_name:"b-bind" binding);
      match
        Hns.Collapsed.find meta ~context:s.bind_context
          ~query_class:Hns.Query_class.hrpc_binding
      with
      | Ok (nsm_name, b) ->
          check_string "nsm name" "b-bind" nsm_name;
          check_bool "binding" true (Hrpc.Binding.equal b binding)
      | Error e -> Alcotest.failf "collapsed find failed: %s" (Hns.Errors.to_string e))

let collapsed_missing_is_unknown_context () =
  let s = Lazy.force scn in
  let r =
    Workload.Scenario.in_sim s (fun () ->
        let hns = Workload.Scenario.new_hns s ~on:s.client_stack in
        Hns.Collapsed.find (Hns.Client.meta hns) ~context:"never-collapsed"
          ~query_class:Hns.Query_class.hrpc_binding)
  in
  check_bool "unknown" true (r = Error (Hns.Errors.Unknown_context "never-collapsed"))

let collapsed_materialize_agrees_with_separate () =
  let s = Lazy.force scn in
  Workload.Scenario.in_sim s (fun () ->
      let hns = Workload.Scenario.new_hns s ~on:s.client_stack in
      let n =
        get_ok ~msg:"materialize"
          (Hns.Collapsed.materialize (Hns.Client.finder hns)
             ~contexts:[ s.bind_context; s.ch_context; "no-such-ctx" ]
             ~query_classes:
               [ Hns.Query_class.hrpc_binding; Hns.Query_class.host_address ])
      in
      (* 2 contexts x 2 classes resolve; the bogus context is skipped *)
      check_int "written" 4 n;
      let separate =
        get_ok ~msg:"separate"
          (Hns.Client.find_nsm hns ~context:s.bind_context
             ~query_class:Hns.Query_class.hrpc_binding)
      in
      match
        Hns.Collapsed.find (Hns.Client.meta hns) ~context:s.bind_context
          ~query_class:Hns.Query_class.hrpc_binding
      with
      | Ok (nsm_name, binding) ->
          check_string "same designation" separate.Hns.Find_nsm.nsm_name nsm_name;
          check_bool "same binding" true
            (Hrpc.Binding.equal separate.Hns.Find_nsm.binding binding)
      | Error e -> Alcotest.failf "collapsed find failed: %s" (Hns.Errors.to_string e))

(* --- NSM cache preload --- *)

let nsm_preload_warms_cache () =
  let s = Lazy.force scn in
  let warmed, cold_after =
    Workload.Scenario.in_sim s (fun () ->
        let nsm = Workload.Scenario.new_binding_nsm_bind s ~on:s.client_stack in
        let warmed =
          Nsm.Binding_nsm_bind.preload nsm ~context:s.bind_context
            ~hosts:[ s.service_host ]
        in
        let (), d =
          Workload.Scenario.timed (fun () ->
              ignore
                (Hns.Nsm_intf.call_linked (Nsm.Binding_nsm_bind.impl nsm)
                   ~service:s.service_name
                   ~hns_name:
                     (Hns.Hns_name.make ~context:s.bind_context ~name:s.service_host)))
        in
        (warmed, d))
  in
  check_int "one entry warmed" 1 warmed;
  check_bool "subsequent query is a hit" true (cold_after < 30.0)

let nsm_preload_skips_unresolvable () =
  let s = Lazy.force scn in
  let warmed =
    Workload.Scenario.in_sim s (fun () ->
        let nsm = Workload.Scenario.new_binding_nsm_bind s ~on:s.client_stack in
        Nsm.Binding_nsm_bind.preload nsm ~context:s.bind_context
          ~hosts:[ "ghost." ^ s.zone ])
  in
  check_int "nothing warmed" 0 warmed

(* --- cross-representation mismatch --- *)

let hrpc_rep_mismatch_is_garbage () =
  (* A server exported with XDR called by a client that marshals the
     identical control protocol but the Courier representation: the
     server cannot decode the arguments. *)
  let w = make_world () in
  let echo_sign = Wire.Idl.signature ~arg:Wire.Idl.T_string ~res:Wire.Idl.T_string in
  let r =
    in_sim w (fun () ->
        let server =
          Hrpc.Server.create w.stacks.(0) ~suite:Hrpc.Component.sunrpc_suite ~prog:55
            ~vers:1 ()
        in
        Hrpc.Server.register server ~procnum:1 ~sign:echo_sign (fun v -> v);
        Hrpc.Server.start server;
        let confused =
          {
            (Hrpc.Server.binding server) with
            Hrpc.Binding.suite =
              { Hrpc.Component.sunrpc_suite with Hrpc.Component.data_rep = Wire.Data_rep.Courier };
          }
        in
        Hrpc.Client.call w.stacks.(1) confused ~procnum:1 ~sign:echo_sign
          (Wire.Value.Str "mismatched"))
  in
  check_bool "garbage args" true (r = Error Rpc.Control.Garbage_args)

(* --- assorted smaller behaviours --- *)

let errors_get_ok_raises () =
  match Hns.Errors.get_ok (Error (Hns.Errors.Unknown_context "x")) with
  | exception Hns.Errors.Hns_failure (Hns.Errors.Unknown_context "x") -> ()
  | exception _ -> Alcotest.fail "wrong exception"
  | _ -> Alcotest.fail "should raise"

let hns_name_ordering () =
  let a = Hns.Hns_name.make ~context:"a" ~name:"z" in
  let b = Hns.Hns_name.make ~context:"b" ~name:"a" in
  check_bool "context dominates" true (Hns.Hns_name.compare a b < 0);
  let a2 = Hns.Hns_name.make ~context:"a" ~name:"a" in
  check_bool "name breaks ties" true (Hns.Hns_name.compare a2 a < 0);
  check_int "equal" 0 (Hns.Hns_name.compare a a)

let engine_self_name () =
  let w = make_world ~hosts:1 () in
  let name =
    in_sim w (fun () ->
        let got = ref "" in
        Sim.Engine.spawn_child ~name:"worker-7" (fun () -> got := Sim.Engine.self_name ());
        Sim.Engine.sleep 1.0;
        !got)
  in
  check_string "self name" "worker-7" name

let stats_clear_resets () =
  let s = Sim.Stats.create ~name:"x" () in
  Sim.Stats.add s 5.0;
  Sim.Stats.clear s;
  check_int "count" 0 (Sim.Stats.count s);
  Sim.Stats.add s 1.0;
  check_float_near "fresh mean" 1.0 (Sim.Stats.mean s)

let trace_recordf_formats () =
  let tr = Sim.Trace.create () in
  Sim.Trace.enable tr;
  Sim.Trace.recordf tr ~time:1.5 ~tag:"rpc" "call %d to %s" 7 "fiji";
  match Sim.Trace.lines tr with
  | [ (1.5, "rpc", msg) ] -> check_string "formatted" "call 7 to fiji" msg
  | _ -> Alcotest.fail "expected one line"

let secondary_refresh_override () =
  let w = make_world ~hosts:2 () in
  let transfers =
    in_sim w (fun () ->
        let zone =
          Dns.Zone.simple ~origin:(Dns.Name.of_string "z")
            [ Dns.Rr.make (Dns.Name.of_string "h.z") (Dns.Rr.A 1l) ]
        in
        let primary = Dns.Server.create w.stacks.(0) ~allow_update:true () in
        Dns.Server.add_zone primary zone;
        Dns.Server.start primary;
        let replica = Dns.Server.create w.stacks.(1) () in
        Dns.Server.start replica;
        let sec =
          Dns.Secondary.attach replica ~primary:(Dns.Server.addr primary)
            ~zone:(Dns.Name.of_string "z") ~refresh_ms:2_000.0 ()
        in
        check_bool "serial matches primary" true
          (Dns.Secondary.serial sec = Dns.Zone.serial zone);
        (* two updates, each picked up by a later cycle *)
        let upd name =
          match
            Dns.Update.add_rr w.stacks.(1) ~server:(Dns.Server.addr primary)
              ~zone:(Dns.Name.of_string "z")
              (Dns.Rr.make (Dns.Name.of_string name) (Dns.Rr.A 9l))
          with
          | Ok () -> ()
          | Error e -> Alcotest.failf "update failed: %a" Dns.Update.pp_error e
        in
        upd "a.z";
        Sim.Engine.sleep 3_000.0;
        upd "b.z";
        Sim.Engine.sleep 3_000.0;
        let n = Dns.Secondary.transfers sec in
        Dns.Secondary.detach sec;
        n)
  in
  check_int "initial + two refreshes" 3 transfers

let file_remove_via_filing () =
  let s = Lazy.force scn in
  Workload.Scenario.in_sim s (fun () ->
      let _inst = Services.Setup.install s in
      let hns = Workload.Scenario.new_hns s ~on:s.client_stack in
      let filing = Services.Filing.create hns in
      let name = Services.Setup.unix_file_name s "todo" in
      (match Services.Filing.remove filing name with
      | Ok true -> ()
      | Ok false -> Alcotest.fail "file existed"
      | Error e -> Alcotest.failf "remove failed: %a" Services.Access.pp_error e);
      match Services.Filing.fetch filing name with
      | Error (Services.Access.Name_error _) -> ()
      | _ -> Alcotest.fail "removed file must not fetch")

let suite =
  [
    Alcotest.test_case "collapsed register/find" `Quick collapsed_register_and_find;
    Alcotest.test_case "collapsed missing" `Quick collapsed_missing_is_unknown_context;
    Alcotest.test_case "collapsed materialize" `Quick
      collapsed_materialize_agrees_with_separate;
    Alcotest.test_case "NSM preload warms" `Quick nsm_preload_warms_cache;
    Alcotest.test_case "NSM preload skips" `Quick nsm_preload_skips_unresolvable;
    Alcotest.test_case "rep mismatch is garbage" `Quick hrpc_rep_mismatch_is_garbage;
    Alcotest.test_case "Errors.get_ok" `Quick errors_get_ok_raises;
    Alcotest.test_case "hns name ordering" `Quick hns_name_ordering;
    Alcotest.test_case "engine self_name" `Quick engine_self_name;
    Alcotest.test_case "stats clear" `Quick stats_clear_resets;
    Alcotest.test_case "trace recordf" `Quick trace_recordf_formats;
    Alcotest.test_case "secondary refresh cycles" `Quick secondary_refresh_override;
    Alcotest.test_case "filing remove" `Quick file_remove_via_filing;
  ]

(* --- update ACL on the modified BIND --- *)

let update_acl_enforced () =
  let w = make_world ~hosts:3 () in
  in_sim w (fun () ->
      let zone = Dns.Zone.simple ~origin:(Dns.Name.of_string "z") [] in
      let server =
        Dns.Server.create w.stacks.(0) ~allow_update:true
          ~update_acl:[ Transport.Netstack.ip w.stacks.(1) ]
          ()
      in
      Dns.Server.add_zone server zone;
      Dns.Server.start server;
      let rr = Dns.Rr.make (Dns.Name.of_string "h.z") (Dns.Rr.A 1l) in
      (* the trusted admin host succeeds *)
      (match
         Dns.Update.add_rr w.stacks.(1) ~server:(Dns.Server.addr server)
           ~zone:(Dns.Name.of_string "z") rr
       with
      | Ok () -> ()
      | Error e -> Alcotest.failf "trusted update failed: %a" Dns.Update.pp_error e);
      (* an untrusted host is refused *)
      match
        Dns.Update.add_rr w.stacks.(2) ~server:(Dns.Server.addr server)
          ~zone:(Dns.Name.of_string "z")
          (Dns.Rr.make (Dns.Name.of_string "evil.z") (Dns.Rr.A 2l))
      with
      | Error Dns.Update.Refused -> ()
      | Ok _ -> Alcotest.fail "untrusted update must be refused"
      | Error e -> Alcotest.failf "wrong error: %a" Dns.Update.pp_error e)

(* --- TCP connection cache --- *)

let conn_cache_reuses_connections () =
  let w = make_world () in
  let echo_sign = Wire.Idl.signature ~arg:Wire.Idl.T_string ~res:Wire.Idl.T_string in
  in_sim w (fun () ->
      let server =
        Hrpc.Server.create w.stacks.(0) ~suite:Hrpc.Component.courier_suite ~prog:88
          ~vers:1 ()
      in
      Hrpc.Server.register server ~procnum:1 ~sign:echo_sign (fun v -> v);
      Hrpc.Server.start server;
      let cache = Hrpc.Conn_cache.create w.stacks.(1) in
      let binding = Hrpc.Server.binding server in
      let call s =
        match Hrpc.Conn_cache.call cache binding ~procnum:1 ~sign:echo_sign (Wire.Value.Str s) with
        | Ok (Wire.Value.Str r) -> r
        | _ -> Alcotest.fail "cached call failed"
      in
      let (), first = Workload.Scenario.timed (fun () -> ignore (call "a")) in
      let (), second = Workload.Scenario.timed (fun () -> ignore (call "b")) in
      check_int "one live connection" 1 (Hrpc.Conn_cache.live cache);
      check_int "one reuse" 1 (Hrpc.Conn_cache.reuses cache);
      check_bool "reuse skips the handshake" true (second < first);
      Hrpc.Conn_cache.clear cache;
      check_int "cleared" 0 (Hrpc.Conn_cache.live cache))

let conn_cache_reconnects_after_server_restart () =
  let w = make_world () in
  let echo_sign = Wire.Idl.signature ~arg:Wire.Idl.T_string ~res:Wire.Idl.T_string in
  in_sim w (fun () ->
      let mk () =
        let server =
          Hrpc.Server.create w.stacks.(0) ~suite:Hrpc.Component.courier_suite ~prog:89
            ~vers:1 ~port:4321 ()
        in
        Hrpc.Server.register server ~procnum:1 ~sign:echo_sign (fun v -> v);
        Hrpc.Server.start server;
        server
      in
      let server = mk () in
      let cache = Hrpc.Conn_cache.create w.stacks.(1) in
      let binding = Hrpc.Server.binding server in
      let call s =
        Hrpc.Conn_cache.call cache binding ~procnum:1 ~sign:echo_sign (Wire.Value.Str s)
      in
      check_bool "first ok" true (call "one" = Ok (Wire.Value.Str "one"));
      (* the server restarts: the cached connection is dead *)
      Hrpc.Server.stop server;
      let server2 = mk () in
      ignore server2;
      check_bool "transparent reconnect" true (call "two" = Ok (Wire.Value.Str "two")))

let udp_passthrough () =
  let w = make_world () in
  let echo_sign = Wire.Idl.signature ~arg:Wire.Idl.T_string ~res:Wire.Idl.T_string in
  in_sim w (fun () ->
      let server =
        Hrpc.Server.create w.stacks.(0) ~suite:Hrpc.Component.sunrpc_suite ~prog:90
          ~vers:1 ()
      in
      Hrpc.Server.register server ~procnum:1 ~sign:echo_sign (fun v -> v);
      Hrpc.Server.start server;
      let cache = Hrpc.Conn_cache.create w.stacks.(1) in
      check_bool "udp via cache works" true
        (Hrpc.Conn_cache.call cache (Hrpc.Server.binding server) ~procnum:1
           ~sign:echo_sign (Wire.Value.Str "dgram")
        = Ok (Wire.Value.Str "dgram"));
      check_int "no connections held for udp" 0 (Hrpc.Conn_cache.live cache))

let extension_extra =
  [
    Alcotest.test_case "update ACL" `Quick update_acl_enforced;
    Alcotest.test_case "conn cache reuse" `Quick conn_cache_reuses_connections;
    Alcotest.test_case "conn cache reconnect" `Quick
      conn_cache_reconnects_after_server_restart;
    Alcotest.test_case "conn cache udp passthrough" `Quick udp_passthrough;
  ]

let suite = suite @ extension_extra

(* --- final edge cases --- *)

let import_env_misconfiguration () =
  let s = Lazy.force scn in
  Workload.Scenario.in_sim s (fun () ->
      let name = Hns.Hns_name.make ~context:s.bind_context ~name:s.service_host in
      (* All_linked without a local HNS *)
      let env = Hns.Import.env ~stack:s.client_stack () in
      (match Hns.Import.import env Hns.Import.All_linked ~service:s.service_name name with
      | Error (Hns.Errors.Meta_error m) ->
          check_bool "mentions local HNS" true
            (String.length m > 0)
      | _ -> Alcotest.fail "missing local HNS must error");
      (* Combined_agent without an agent *)
      match Hns.Import.import env Hns.Import.Combined_agent ~service:s.service_name name with
      | Error (Hns.Errors.Meta_error _) -> ()
      | _ -> Alcotest.fail "missing agent must error")

let stub_decode_failure_is_protocol_error () =
  let w = make_world () in
  let bad_stub =
    Hrpc.Stub.proc ~procnum:1
      ~sign:(Wire.Idl.signature ~arg:Wire.Idl.T_void ~res:Wire.Idl.T_string)
      ~encode_arg:(fun () -> Wire.Value.Void)
      ~decode_res:(fun v -> Wire.Value.get_int v (* wrong accessor *))
  in
  let r =
    in_sim w (fun () ->
        let server =
          Hrpc.Server.create w.stacks.(0) ~suite:Hrpc.Component.sunrpc_suite ~prog:66
            ~vers:1 ()
        in
        Hrpc.Server.register server ~procnum:1
          ~sign:(Wire.Idl.signature ~arg:Wire.Idl.T_void ~res:Wire.Idl.T_string)
          (fun _ -> Wire.Value.Str "text");
        Hrpc.Server.start server;
        Hrpc.Stub.call w.stacks.(1) (Hrpc.Server.binding server) bad_stub ())
  in
  match r with
  | Error (Rpc.Control.Protocol_error _) -> ()
  | _ -> Alcotest.fail "stub decode failure should be a protocol error"

let topology_queries () =
  let topo = Sim.Topology.create () in
  let a = Sim.Topology.add_host topo "alpha" in
  let _b = Sim.Topology.add_host topo "beta" in
  check_int "two hosts" 2 (List.length (Sim.Topology.hosts topo));
  check_bool "find by name" true (Sim.Topology.find_host topo "alpha" = Some a);
  check_bool "missing host" true (Sim.Topology.find_host topo "gamma" = None)

let well_known_ports () =
  check_int "portmapper" 111 Transport.Address.Well_known.sunrpc_portmapper;
  check_int "dns" 53 Transport.Address.Well_known.dns;
  check_int "courier" 5 Transport.Address.Well_known.courier;
  check_int "clearinghouse" 20 Transport.Address.Well_known.clearinghouse

let cache_default_ttl_applies () =
  let w = make_world ~hosts:1 () in
  in_sim w (fun () ->
      let c = Hns.Cache.create ~mode:Hns.Cache.Demarshalled ~default_ttl_ms:50.0 () in
      Hns.Cache.insert c ~key:"k" ~ty:Wire.Idl.T_int (Wire.Value.int 1);
      Sim.Engine.sleep 100.0;
      check_bool "expired by default ttl" true
        (Hns.Cache.find c ~key:"k" ~ty:Wire.Idl.T_int = None))

let yp_client_all_empty_map () =
  let s = Lazy.force scn in
  Workload.Scenario.in_sim s (fun () ->
      let ypserv = Yp.Yp_server.create s.agent_stack ~port:835 ~domain:"d" () in
      Yp.Yp_server.start ypserv;
      let c = Yp.Yp_client.create s.client_stack ~server:(Yp.Yp_server.addr ypserv) ~domain:"d" in
      check_bool "empty map enumerates to []" true
        (Yp.Yp_client.all c ~map:"empty.map" = Ok []);
      Yp.Yp_server.stop ypserv)

let final_edge_cases =
  [
    Alcotest.test_case "import env misconfig" `Quick import_env_misconfiguration;
    Alcotest.test_case "stub decode failure" `Quick stub_decode_failure_is_protocol_error;
    Alcotest.test_case "topology queries" `Quick topology_queries;
    Alcotest.test_case "well-known ports" `Quick well_known_ports;
    Alcotest.test_case "cache default ttl" `Quick cache_default_ttl_applies;
    Alcotest.test_case "yp empty map" `Quick yp_client_all_empty_map;
  ]

let suite = suite @ final_edge_cases

(* --- one more test wave --- *)

let localfile_serialization_roundtrip =
  let gen =
    QCheck.Gen.(
      list_size (int_bound 8)
        (map2
           (fun i j ->
             ( Printf.sprintf "svc%d" (i mod 100),
               Printf.sprintf "host%d" (j mod 100),
               Hrpc.Binding.make ~suite:Hrpc.Component.sunrpc_suite
                 ~server:(Transport.Address.make (Int32.of_int i) (j land 0xFFFF))
                 ~prog:i ~vers:1 ))
           (int_bound 1_000_000) (int_bound 1_000_000)))
  in
  QCheck.Test.make ~name:"localfile file format roundtrip" ~count:100
    (QCheck.make gen)
    (fun entries ->
      (* dedup on (service, host): last writer wins in the file *)
      let dedup =
        List.fold_left
          (fun acc (s, h, b) ->
            (s, h, b) :: List.filter (fun (s', h', _) -> (s', h') <> (s, h)) acc)
          [] entries
      in
      let lf = Baseline.Localfile.create () in
      Baseline.Localfile.replace_all lf dedup;
      List.for_all
        (fun (s, h, b) ->
          match Baseline.Localfile.import lf ~service:s ~host:h with
          | Ok b' -> Hrpc.Binding.equal b b'
          | Error _ -> false)
        dedup)

let sendmail_tokenizer_property =
  QCheck.Test.make ~name:"sendmail routing is deterministic" ~count:100
    QCheck.(string_of_size (Gen.int_bound 30))
    (fun s ->
      let rules = Baseline.Sendmail_rules.classic () in
      Baseline.Sendmail_rules.route rules s = Baseline.Sendmail_rules.route rules s)

let courier_session_survives_abort () =
  let w = make_world () in
  let sign = Wire.Idl.signature ~arg:Wire.Idl.T_string ~res:Wire.Idl.T_string in
  in_sim w (fun () ->
      let server = Rpc.Courier_rpc.create w.stacks.(0) () in
      Rpc.Courier_rpc.register server ~prog:3 ~vers:1 ~procnum:1 ~sign (fun v ->
          match v with
          | Wire.Value.Str "die" -> failwith "abort"
          | v -> v);
      Rpc.Courier_rpc.start server;
      let session = Rpc.Courier_rpc.connect w.stacks.(1) (Rpc.Courier_rpc.addr server) in
      (match
         Rpc.Courier_rpc.call session ~prog:3 ~vers:1 ~procnum:1 ~sign
           (Wire.Value.Str "die")
       with
      | Error (Rpc.Control.Protocol_error _) -> ()
      | _ -> Alcotest.fail "expected abort");
      (* the session keeps working after the abort *)
      check_bool "post-abort call works" true
        (Rpc.Courier_rpc.call session ~prog:3 ~vers:1 ~procnum:1 ~sign
           (Wire.Value.Str "ok")
        = Ok (Wire.Value.Str "ok"));
      Rpc.Courier_rpc.close session)

let sunrpc_retransmit_duplicate_execution () =
  (* UDP retransmission can execute a non-idempotent procedure twice —
     classic at-least-once semantics, faithfully reproduced. *)
  let w = make_world ~drop_probability:0.45 () in
  let count = ref 0 in
  let sign = Wire.Idl.signature ~arg:Wire.Idl.T_void ~res:Wire.Idl.T_int in
  let executions =
    in_sim w (fun () ->
        let server = Rpc.Sunrpc.create w.stacks.(0) () in
        Rpc.Sunrpc.register server ~prog:5 ~vers:1 ~procnum:1 ~sign (fun _ ->
            incr count;
            Wire.Value.int !count);
        Rpc.Sunrpc.start server;
        for _ = 1 to 10 do
          ignore
            (Rpc.Sunrpc.call w.stacks.(1) ~dst:(Rpc.Sunrpc.addr server) ~prog:5
               ~vers:1 ~procnum:1 ~sign ~timeout:30.0 ~attempts:6 Wire.Value.Void)
        done;
        !count)
  in
  check_bool "at-least-once can over-execute" true (executions >= 10)

let scenario_demarshalled_mode_works () =
  let scn = Workload.Scenario.build ~cache_mode:Hns.Cache.Demarshalled () in
  let warm =
    Workload.Scenario.in_sim scn (fun () ->
        let hns = Workload.Scenario.new_hns scn ~on:scn.client_stack in
        let go () =
          ignore
            (get_ok ~msg:"find"
               (Hns.Client.find_nsm hns ~context:scn.bind_context
                  ~query_class:Hns.Query_class.hrpc_binding))
        in
        go ();
        let (), warm = Workload.Scenario.timed go in
        warm)
  in
  (* demarshalled warm FindNSM: six overheads + cheap hits, ~40ms *)
  check_bool "demarshalled warm walk under 50ms" true (warm < 50.0)

let final_wave =
  [
    qtest localfile_serialization_roundtrip;
    qtest sendmail_tokenizer_property;
    Alcotest.test_case "courier session after abort" `Quick courier_session_survives_abort;
    Alcotest.test_case "at-least-once duplication" `Quick
      sunrpc_retransmit_duplicate_execution;
    Alcotest.test_case "demarshalled scenario" `Quick scenario_demarshalled_mode_works;
  ]

let suite = suite @ final_wave
