(* Tests for the HNS core: names, the cache, meta schema and client,
   FindNSM, admin, the agent, and the import paths. *)

open Helpers

(* --- HNS names --- *)

let hns_name_basics () =
  let n = Hns.Hns_name.make ~context:"uw-cs" ~name:"fiji.cs.washington.edu" in
  check_string "printed" "uw-cs!fiji.cs.washington.edu" (Hns.Hns_name.to_string n);
  check_bool "parse roundtrip" true
    (Hns.Hns_name.equal n (Hns.Hns_name.of_string (Hns.Hns_name.to_string n)));
  (* individual names may contain '!' *)
  let odd = Hns.Hns_name.of_string "ctx!a!b" in
  check_string "first ! separates" "a!b" odd.Hns.Hns_name.name;
  (match Hns.Hns_name.make ~context:"a!b" ~name:"x" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "context with ! should fail");
  check_bool "value roundtrip" true
    (Hns.Hns_name.equal n (Hns.Hns_name.of_value (Hns.Hns_name.to_value n)))

let query_class_validation () =
  Hns.Query_class.validate Hns.Query_class.hrpc_binding;
  (match Hns.Query_class.validate "has.dot" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "dot should fail");
  match Hns.Query_class.validate "" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty should fail"

(* --- cache --- *)

let sample_value =
  Wire.Value.Array
    [ Wire.Value.Struct [ ("a", Wire.Value.int 1); ("b", Wire.Value.str "x") ] ]

let sample_ty =
  Wire.Idl.T_array (Wire.Idl.T_struct [ ("a", Wire.Idl.T_int); ("b", Wire.Idl.T_string) ])

let cache_hit_returns_equal_value () =
  List.iter
    (fun mode ->
      let c = Hns.Cache.create ~mode () in
      Hns.Cache.insert c ~key:"k" ~ty:sample_ty sample_value;
      (match Hns.Cache.find c ~key:"k" ~ty:sample_ty with
      | Some v -> check_bool "value survives" true (Wire.Value.equal v sample_value)
      | None -> Alcotest.fail "expected hit");
      check_int "hits" 1 (Hns.Cache.hits c);
      check_bool "miss on other key" true (Hns.Cache.find c ~key:"other" ~ty:sample_ty = None);
      check_int "misses" 1 (Hns.Cache.misses c))
    [ Hns.Cache.Marshalled; Hns.Cache.Demarshalled ]

let cache_ttl_expiry () =
  let w = make_world ~hosts:1 () in
  in_sim w (fun () ->
      let c = Hns.Cache.create ~mode:Hns.Cache.Demarshalled () in
      Hns.Cache.insert c ~key:"k" ~ty:sample_ty ~ttl_ms:100.0 sample_value;
      check_bool "hit before expiry" true (Hns.Cache.find c ~key:"k" ~ty:sample_ty <> None);
      Sim.Engine.sleep 150.0;
      check_bool "expired" true (Hns.Cache.find c ~key:"k" ~ty:sample_ty = None);
      check_int "size pruned" 0 (Hns.Cache.size c))

let cache_marshalled_charges_generated_cost () =
  let w = make_world ~hosts:1 () in
  let marshalled, demarshalled =
    in_sim w (fun () ->
        let cost mode =
          let c =
            Hns.Cache.create ~mode ~generated_cost:Workload.Calib.generated_cost
              ~hit_overhead_ms:Workload.Calib.cache_hit_overhead_ms
              ~hit_per_node_ms:Workload.Calib.cache_hit_per_node_ms ()
          in
          Hns.Cache.insert c ~key:"k" ~ty:sample_ty sample_value;
          let t0 = Sim.Engine.time () in
          ignore (Hns.Cache.find c ~key:"k" ~ty:sample_ty);
          Sim.Engine.time () -. t0
        in
        (cost Hns.Cache.Marshalled, cost Hns.Cache.Demarshalled))
  in
  check_bool "marshalled hit is much dearer" true (marshalled > 5.0 *. demarshalled);
  check_bool "demarshalled hit under 1ms" true (demarshalled < 1.0)

let cache_stored_bytes () =
  let c = Hns.Cache.create ~mode:Hns.Cache.Marshalled () in
  Hns.Cache.insert c ~key:"k" ~ty:sample_ty sample_value;
  check_bool "bytes counted" true (Hns.Cache.stored_bytes c > 0);
  let d = Hns.Cache.create ~mode:Hns.Cache.Demarshalled () in
  Hns.Cache.insert d ~key:"k" ~ty:sample_ty sample_value;
  check_int "no bytes stored demarshalled" 0 (Hns.Cache.stored_bytes d)

let cache_hit_ratio () =
  let c = Hns.Cache.create ~mode:Hns.Cache.Demarshalled () in
  Hns.Cache.insert c ~key:"k" ~ty:sample_ty sample_value;
  ignore (Hns.Cache.find c ~key:"k" ~ty:sample_ty);
  ignore (Hns.Cache.find c ~key:"nope" ~ty:sample_ty);
  check_float_near "ratio 0.5" 0.5 (Hns.Cache.hit_ratio c)

(* --- meta schema --- *)

let meta_schema_keys () =
  check_string "context key" "uw-cs.ctx.hns-meta"
    (Dns.Name.to_string (Hns.Meta_schema.context_key "uw-cs"));
  check_string "nsm name key" "hrpcbinding.uw-bind.nsm.hns-meta"
    (Dns.Name.to_string
       (Hns.Meta_schema.nsm_name_key ~ns:"UW-BIND" ~query_class:"HRPCBinding"));
  check_string "nsm binding key" "b-bind.nsmbind.hns-meta"
    (Dns.Name.to_string (Hns.Meta_schema.nsm_binding_key "b-bind"));
  (match Hns.Meta_schema.nsm_binding_key "dotted.name" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "dotted NSM name should fail")

let meta_schema_ty_of_key () =
  let has_ty k = Hns.Meta_schema.ty_of_key k <> None in
  check_bool "ctx" true (has_ty (Hns.Meta_schema.context_key "c"));
  check_bool "nsm" true (has_ty (Hns.Meta_schema.nsm_name_key ~ns:"n" ~query_class:"Q"));
  check_bool "nsmbind" true (has_ty (Hns.Meta_schema.nsm_binding_key "x"));
  check_bool "ns" true (has_ty (Hns.Meta_schema.ns_info_key "x"));
  check_bool "foreign name" false (has_ty (Dns.Name.of_string "a.b.c"))

let meta_schema_value_roundtrips () =
  let ns =
    {
      Hns.Meta_schema.ns_type = "bind";
      ns_host = "samoa.cs.washington.edu";
      ns_host_context = "uw-cs";
      ns_port = 53;
    }
  in
  check_bool "ns_info" true
    (Hns.Meta_schema.ns_info_of_value (Hns.Meta_schema.ns_info_to_value ns) = ns);
  let nsm =
    {
      Hns.Meta_schema.nsm_host = "niue.cs.washington.edu";
      nsm_host_context = "uw-cs";
      nsm_port = 1234;
      nsm_prog = 390100;
      nsm_vers = 1;
      nsm_suite = Hrpc.Component.courier_suite;
    }
  in
  check_bool "nsm_info" true
    (Hns.Meta_schema.nsm_info_of_value (Hns.Meta_schema.nsm_info_to_value nsm) = nsm)

(* --- scenario-backed integration --- *)

let scn = lazy (Workload.Scenario.build ())

let find_nsm_designates () =
  let scn = Lazy.force scn in
  let resolved =
    Workload.Scenario.in_sim scn (fun () ->
        let hns = Workload.Scenario.new_hns scn ~on:scn.client_stack in
        get_ok ~msg:"find_nsm"
          (Hns.Client.find_nsm hns ~context:scn.bind_context
             ~query_class:Hns.Query_class.hrpc_binding))
  in
  check_string "ns" "UW-BIND" resolved.Hns.Find_nsm.ns_name;
  check_string "nsm" scn.nsm_binding_bind resolved.Hns.Find_nsm.nsm_name;
  check_bool "binding points at NSM host" true
    (resolved.Hns.Find_nsm.binding.Hrpc.Binding.server.Transport.Address.ip
    = Transport.Netstack.ip scn.nsm_stack)

let find_nsm_unknown_context () =
  let scn = Lazy.force scn in
  let r =
    Workload.Scenario.in_sim scn (fun () ->
        let hns = Workload.Scenario.new_hns scn ~on:scn.client_stack in
        Hns.Client.find_nsm hns ~context:"mars" ~query_class:Hns.Query_class.hrpc_binding)
  in
  check_bool "unknown context" true (r = Error (Hns.Errors.Unknown_context "mars"))

let find_nsm_no_nsm_for_class () =
  let scn = Lazy.force scn in
  let r =
    Workload.Scenario.in_sim scn (fun () ->
        let hns = Workload.Scenario.new_hns scn ~on:scn.client_stack in
        Hns.Client.find_nsm hns ~context:scn.ch_context
          ~query_class:Hns.Query_class.file_location)
  in
  match r with
  | Error (Hns.Errors.No_nsm { ns = "PARC-CH"; _ }) -> ()
  | _ -> Alcotest.fail "expected No_nsm for CH FileLocation"

let resolve_host_address_query () =
  let scn = Lazy.force scn in
  let r =
    Workload.Scenario.in_sim scn (fun () ->
        let hns = Workload.Scenario.new_hns scn ~on:scn.client_stack in
        get_ok ~msg:"resolve"
          (Hns.Client.resolve hns ~query_class:Hns.Query_class.host_address
             ~payload_ty:Hns.Nsm_intf.host_address_payload_ty
             (Hns.Hns_name.make ~context:scn.bind_context ~name:scn.service_host)))
  in
  check_bool "service host IP" true
    (r = Some (Wire.Value.Uint (Transport.Netstack.ip scn.service_stack)))

let resolve_through_clearinghouse () =
  (* The same client interface answers from the Xerox world. *)
  let scn = Lazy.force scn in
  let r =
    Workload.Scenario.in_sim scn (fun () ->
        let hns = Workload.Scenario.new_hns scn ~on:scn.client_stack in
        get_ok ~msg:"resolve"
          (Hns.Client.resolve hns ~query_class:Hns.Query_class.host_address
             ~payload_ty:Hns.Nsm_intf.host_address_payload_ty
             (Hns.Hns_name.make ~context:scn.ch_context ~name:"dandelion")))
  in
  check_bool "CH host IP" true
    (r = Some (Wire.Value.Uint (Transport.Netstack.ip scn.ch_stack)))

let import_all_arrangements () =
  let scn = Lazy.force scn in
  List.iter
    (fun arrangement ->
      let b =
        Workload.Scenario.in_sim scn (fun () ->
            let p = Workload.Scenario.arrange scn arrangement in
            let r =
              Hns.Import.import p.env arrangement ~service:scn.service_name
                (Hns.Hns_name.make ~context:scn.bind_context ~name:scn.service_host)
            in
            Workload.Scenario.stop_parties p;
            r)
      in
      match b with
      | Ok b ->
          if not (Hrpc.Binding.equal b scn.expected_sun_binding) then
            Alcotest.failf "%s: wrong binding"
              (Hns.Import.arrangement_name arrangement)
      | Error e ->
          Alcotest.failf "%s: %s"
            (Hns.Import.arrangement_name arrangement)
            (Hns.Errors.to_string e))
    Hns.Import.all_arrangements

let import_unknown_service_not_found () =
  let scn = Lazy.force scn in
  let r =
    Workload.Scenario.in_sim scn (fun () ->
        let p = Workload.Scenario.arrange scn Hns.Import.All_linked in
        let r =
          Hns.Import.import p.env Hns.Import.All_linked ~service:"55555:1"
            (Hns.Hns_name.make ~context:scn.bind_context ~name:scn.service_host)
        in
        Workload.Scenario.stop_parties p;
        r)
  in
  match r with
  | Error (Hns.Errors.Name_not_found _) -> ()
  | _ -> Alcotest.fail "unregistered program should be not-found"

let import_then_call_service () =
  (* End-to-end: import a binding through the HNS and actually call
     the service with it. *)
  let scn = Lazy.force scn in
  let reply =
    Workload.Scenario.in_sim scn (fun () ->
        let p = Workload.Scenario.arrange scn Hns.Import.All_linked in
        let binding =
          get_ok ~msg:"import"
            (Hns.Import.import p.env Hns.Import.All_linked ~service:scn.service_name
               (Hns.Hns_name.make ~context:scn.bind_context ~name:scn.service_host))
        in
        Workload.Scenario.stop_parties p;
        Hrpc.Client.call scn.client_stack binding ~procnum:1
          ~sign:(Wire.Idl.signature ~arg:Wire.Idl.T_string ~res:Wire.Idl.T_string)
          (Wire.Value.Str "through the HNS"))
  in
  check_bool "service answers" true (reply = Ok (Wire.Value.Str "through the HNS"))

let import_courier_service () =
  (* Importing from the Clearinghouse context yields a Courier binding
     with the identical client interface. *)
  let scn = Lazy.force scn in
  let b =
    Workload.Scenario.in_sim scn (fun () ->
        let hns = Workload.Scenario.new_hns scn ~on:scn.client_stack in
        let env = Hns.Import.env ~stack:scn.client_stack ~local_hns:hns () in
        get_ok ~msg:"import ch"
          (Hns.Import.import env Hns.Import.Remote_nsms ~service:""
             (Hns.Hns_name.make ~context:scn.ch_context ~name:scn.courier_service_name)))
  in
  check_bool "courier binding" true (Hrpc.Binding.equal b scn.expected_courier_binding)

let dynamic_update_visible_through_hns () =
  (* The direct-access property: a native update to BIND is visible
     through the HNS with no reregistration. *)
  let scn = Lazy.force scn in
  let before, after =
    Workload.Scenario.in_sim scn (fun () ->
        let hns = Workload.Scenario.new_hns scn ~on:scn.client_stack in
        let name = Hns.Hns_name.make ~context:scn.bind_context ~name:("fresh." ^ scn.zone) in
        let q () =
          get_ok ~msg:"resolve"
            (Hns.Client.resolve hns ~query_class:Hns.Query_class.host_address
               ~payload_ty:Hns.Nsm_intf.host_address_payload_ty name)
        in
        let before = q () in
        (* A native application adds a host record directly in BIND:
           our public zone is static, so write into the db the way a
           local tool would. *)
        Dns.Db.add (Dns.Zone.db scn.public_zone)
          (Dns.Rr.make (Dns.Name.of_string ("fresh." ^ scn.zone)) (Dns.Rr.A 0x0A00BEEFl));
        (before, q ()))
  in
  check_bool "absent before" true (before = None);
  check_bool "visible after with no reregistration" true
    (after = Some (Wire.Value.Uint 0x0A00BEEFl))

let agent_find_nsm_remote () =
  let scn = Lazy.force scn in
  let nsm_name, binding =
    Workload.Scenario.in_sim scn (fun () ->
        let hns = Workload.Scenario.new_hns scn ~on:scn.agent_stack in
        let agent = Hns.Agent.create hns () in
        Hns.Agent.start agent;
        let r =
          get_ok ~msg:"remote find"
            (Hns.Agent.remote_find_nsm scn.client_stack ~agent:(Hns.Agent.binding agent)
               ~context:scn.bind_context ~query_class:Hns.Query_class.hrpc_binding)
        in
        Hns.Agent.stop agent;
        r)
  in
  check_string "nsm name over the wire" scn.nsm_binding_bind nsm_name;
  check_bool "binding survives the wire" true
    (binding.Hrpc.Binding.server.Transport.Address.ip = Transport.Netstack.ip scn.nsm_stack)

let agent_error_propagates () =
  let scn = Lazy.force scn in
  let r =
    Workload.Scenario.in_sim scn (fun () ->
        let hns = Workload.Scenario.new_hns scn ~on:scn.agent_stack in
        let agent = Hns.Agent.create hns () in
        Hns.Agent.start agent;
        let r =
          Hns.Agent.remote_find_nsm scn.client_stack ~agent:(Hns.Agent.binding agent)
            ~context:"nowhere" ~query_class:Hns.Query_class.hrpc_binding
        in
        Hns.Agent.stop agent;
        r)
  in
  match r with
  | Error (Hns.Errors.Nsm_error m) ->
      check_bool "carries the remote error text" true (String.length m > 0)
  | _ -> Alcotest.fail "agent should relay the error"

let admin_remove_context () =
  let scn = Lazy.force scn in
  Workload.Scenario.in_sim scn (fun () ->
      let hns = Workload.Scenario.new_hns scn ~on:scn.client_stack in
      let meta = Hns.Client.meta hns in
      get_ok ~msg:"register"
        (Hns.Admin.register_context meta ~context:"temp-ctx" ~ns:"UW-BIND");
      (match Hns.Client.find_nsm hns ~context:"temp-ctx" ~query_class:Hns.Query_class.hrpc_binding with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "temp context should resolve: %s" (Hns.Errors.to_string e));
      get_ok ~msg:"remove" (Hns.Admin.remove_context meta ~context:"temp-ctx");
      Hns.Client.flush_cache hns;
      match Hns.Client.find_nsm hns ~context:"temp-ctx" ~query_class:Hns.Query_class.hrpc_binding with
      | Error (Hns.Errors.Unknown_context _) -> ()
      | _ -> Alcotest.fail "removed context should be unknown")

let preload_seeds_cache () =
  let scn = Lazy.force scn in
  let seeded, lookups =
    Workload.Scenario.in_sim scn (fun () ->
        let hns = Workload.Scenario.new_hns scn ~on:scn.client_stack in
        let seeded = get_ok ~msg:"preload" (Hns.Client.preload hns) in
        ignore
          (get_ok ~msg:"find"
             (Hns.Client.find_nsm hns ~context:scn.bind_context
                ~query_class:Hns.Query_class.hrpc_binding));
        (seeded, Hns.Meta_client.remote_lookups (Hns.Client.meta hns)))
  in
  check_bool "many mappings seeded" true (seeded >= 10);
  check_int "no meta lookups after preload" 0 lookups

let suite =
  [
    Alcotest.test_case "hns name basics" `Quick hns_name_basics;
    Alcotest.test_case "query class validation" `Quick query_class_validation;
    Alcotest.test_case "cache hit value" `Quick cache_hit_returns_equal_value;
    Alcotest.test_case "cache TTL expiry" `Quick cache_ttl_expiry;
    Alcotest.test_case "cache marshalling cost" `Quick cache_marshalled_charges_generated_cost;
    Alcotest.test_case "cache stored bytes" `Quick cache_stored_bytes;
    Alcotest.test_case "cache hit ratio" `Quick cache_hit_ratio;
    Alcotest.test_case "meta keys" `Quick meta_schema_keys;
    Alcotest.test_case "meta ty_of_key" `Quick meta_schema_ty_of_key;
    Alcotest.test_case "meta value roundtrips" `Quick meta_schema_value_roundtrips;
    Alcotest.test_case "FindNSM designates" `Quick find_nsm_designates;
    Alcotest.test_case "unknown context" `Quick find_nsm_unknown_context;
    Alcotest.test_case "no NSM for class" `Quick find_nsm_no_nsm_for_class;
    Alcotest.test_case "HostAddress query" `Quick resolve_host_address_query;
    Alcotest.test_case "CH via same interface" `Quick resolve_through_clearinghouse;
    Alcotest.test_case "import: all arrangements" `Quick import_all_arrangements;
    Alcotest.test_case "import: unknown service" `Quick import_unknown_service_not_found;
    Alcotest.test_case "import then call" `Quick import_then_call_service;
    Alcotest.test_case "import courier service" `Quick import_courier_service;
    Alcotest.test_case "direct access: update visible" `Quick
      dynamic_update_visible_through_hns;
    Alcotest.test_case "agent remote FindNSM" `Quick agent_find_nsm_remote;
    Alcotest.test_case "agent error relay" `Quick agent_error_propagates;
    Alcotest.test_case "admin remove context" `Quick admin_remove_context;
    Alcotest.test_case "preload seeds cache" `Quick preload_seeds_cache;
  ]

let walk_log_shows_six_mappings () =
  let scn = Lazy.force scn in
  let cold, warm =
    Workload.Scenario.in_sim scn (fun () ->
        let hns = Workload.Scenario.new_hns scn ~on:scn.client_stack in
        let meta = Hns.Client.meta hns in
        ignore
          (get_ok ~msg:"cold"
             (Hns.Client.find_nsm hns ~context:scn.bind_context
                ~query_class:Hns.Query_class.hrpc_binding));
        let cold = Hns.Meta_client.walk_log meta in
        Hns.Meta_client.clear_walk_log meta;
        ignore
          (get_ok ~msg:"warm"
             (Hns.Client.find_nsm hns ~context:scn.bind_context
                ~query_class:Hns.Query_class.hrpc_binding));
        (cold, Hns.Meta_client.walk_log meta))
  in
  check_int "six mappings cold" 6 (List.length cold);
  check_int "six mappings warm" 6 (List.length warm);
  check_bool "warm walk is all hits" true (List.for_all (fun (_, hit, _) -> hit) warm);
  check_bool "cold walk has misses" true
    (List.exists (fun (_, hit, _) -> not hit) cold);
  (* the warm walk costs the paper's 88 ms *)
  let warm_total = List.fold_left (fun acc (_, _, c) -> acc +. c) 0.0 warm in
  check_bool "warm mappings sum to ~88ms" true (warm_total > 80.0 && warm_total < 96.0)

let walk_suite = [ Alcotest.test_case "walk log: six mappings" `Quick walk_log_shows_six_mappings ]

let suite = suite @ walk_suite
