(* Tests for the NSM implementations: identical interfaces over
   different name services, caching, and remote service. *)

open Helpers

let scn = lazy (Workload.Scenario.build ())

let call_linked impl ~service ~name ~context =
  Hns.Nsm_intf.call_linked impl ~service
    ~hns_name:(Hns.Hns_name.make ~context ~name)

let binding_nsm_bind_resolves () =
  let scn = Lazy.force scn in
  let r =
    Workload.Scenario.in_sim scn (fun () ->
        let nsm = Workload.Scenario.new_binding_nsm_bind scn ~on:scn.client_stack in
        call_linked (Nsm.Binding_nsm_bind.impl nsm) ~service:scn.service_name
          ~name:scn.service_host ~context:scn.bind_context)
  in
  match r with
  | Ok (Some payload) ->
      check_bool "binding payload" true
        (Hrpc.Binding.equal (Hrpc.Binding.of_value payload) scn.expected_sun_binding)
  | _ -> Alcotest.fail "binding NSM should find the service"

let binding_nsm_bind_prog_vers_literal () =
  (* ServiceNames of the form "prog:vers" bypass the directory. *)
  let scn = Lazy.force scn in
  let r =
    Workload.Scenario.in_sim scn (fun () ->
        let nsm = Workload.Scenario.new_binding_nsm_bind scn ~on:scn.client_stack in
        call_linked (Nsm.Binding_nsm_bind.impl nsm)
          ~service:(Printf.sprintf "%d:%d" scn.target_prog scn.target_vers)
          ~name:scn.service_host ~context:scn.bind_context)
  in
  match r with
  | Ok (Some _) -> ()
  | _ -> Alcotest.fail "prog:vers service name should resolve"

let binding_nsm_bind_unknown_host () =
  let scn = Lazy.force scn in
  let r =
    Workload.Scenario.in_sim scn (fun () ->
        let nsm = Workload.Scenario.new_binding_nsm_bind scn ~on:scn.client_stack in
        call_linked (Nsm.Binding_nsm_bind.impl nsm) ~service:scn.service_name
          ~name:("ghost." ^ scn.zone) ~context:scn.bind_context)
  in
  check_bool "not found" true (r = Ok None)

let binding_nsm_bind_unknown_service_errors () =
  let scn = Lazy.force scn in
  let r =
    Workload.Scenario.in_sim scn (fun () ->
        let nsm = Workload.Scenario.new_binding_nsm_bind scn ~on:scn.client_stack in
        call_linked (Nsm.Binding_nsm_bind.impl nsm) ~service:"NoSuchService"
          ~name:scn.service_host ~context:scn.bind_context)
  in
  match r with
  | Error (Hns.Errors.Nsm_error _) -> ()
  | _ -> Alcotest.fail "unknown ServiceName should be an NSM error"

let binding_nsm_caches () =
  let scn = Lazy.force scn in
  let cold, warm, backend =
    Workload.Scenario.in_sim scn (fun () ->
        let nsm = Workload.Scenario.new_binding_nsm_bind scn ~on:scn.client_stack in
        let go () =
          ignore
            (call_linked (Nsm.Binding_nsm_bind.impl nsm) ~service:scn.service_name
               ~name:scn.service_host ~context:scn.bind_context)
        in
        let (), cold = Workload.Scenario.timed go in
        let (), warm = Workload.Scenario.timed go in
        (cold, warm, Nsm.Binding_nsm_bind.backend_queries nsm))
  in
  check_bool "cold does real work" true (cold > 50.0);
  check_bool "warm is a cache hit" true (warm < cold /. 3.0);
  check_int "single backend query" 1 backend

let binding_nsm_ch_same_interface () =
  let scn = Lazy.force scn in
  let r =
    Workload.Scenario.in_sim scn (fun () ->
        let nsm = Workload.Scenario.new_binding_nsm_ch scn ~on:scn.client_stack in
        call_linked (Nsm.Binding_nsm_ch.impl nsm) ~service:""
          ~name:scn.courier_service_name ~context:scn.ch_context)
  in
  match r with
  | Ok (Some payload) ->
      check_bool "courier binding via CH" true
        (Hrpc.Binding.equal (Hrpc.Binding.of_value payload) scn.expected_courier_binding)
  | _ -> Alcotest.fail "CH binding NSM should find the service"

let hostaddr_nsms_agree_with_sources () =
  let scn = Lazy.force scn in
  let bind_ip, ch_ip =
    Workload.Scenario.in_sim scn (fun () ->
        let ha_bind =
          Nsm.Hostaddr_nsm_bind.create scn.client_stack
            ~bind_server:(Dns.Server.addr scn.public_bind) ()
        in
        let ha_ch =
          Nsm.Hostaddr_nsm_ch.create scn.client_stack
            ~ch_server:(Clearinghouse.Ch_server.addr scn.ch)
            ~credentials:scn.credentials ~domain:scn.ch_domain ~org:scn.ch_org ()
        in
        let unpack = function
          | Ok (Some (Wire.Value.Uint ip)) -> ip
          | _ -> Alcotest.fail "expected an address"
        in
        ( unpack
            (call_linked (Nsm.Hostaddr_nsm_bind.impl ha_bind) ~service:""
               ~name:scn.service_host ~context:scn.bind_context),
          unpack
            (call_linked (Nsm.Hostaddr_nsm_ch.impl ha_ch) ~service:"" ~name:"dandelion"
               ~context:scn.ch_context) ))
  in
  check_bool "bind-backed address" true (bind_ip = Transport.Netstack.ip scn.service_stack);
  check_bool "ch-backed address" true (ch_ip = Transport.Netstack.ip scn.ch_stack)

let text_nsm_file_location () =
  let scn = Lazy.force scn in
  let r =
    Workload.Scenario.in_sim scn (fun () ->
        let nsm =
          Nsm.File_nsm.create_bind scn.client_stack
            ~bind_server:(Dns.Server.addr scn.public_bind) ()
        in
        call_linked (Nsm.Text_nsm.impl nsm) ~service:""
          ~name:("host00." ^ scn.zone) ~context:scn.bind_context)
  in
  match r with
  | Ok (Some (Wire.Value.Str s)) ->
      check_bool "file location string" true
        (String.length s > 0 && String.sub s 0 8 = "filesrv=")
  | _ -> Alcotest.fail "file NSM should return the TXT payload"

let text_nsm_mailbox_location () =
  let scn = Lazy.force scn in
  let r =
    Workload.Scenario.in_sim scn (fun () ->
        let nsm =
          Nsm.Mail_nsm.create_bind scn.client_stack
            ~bind_server:(Dns.Server.addr scn.public_bind) ()
        in
        call_linked (Nsm.Text_nsm.impl nsm) ~service:""
          ~name:("alice.users." ^ scn.zone) ~context:scn.bind_context)
  in
  match r with
  | Ok (Some (Wire.Value.Str s)) ->
      check_bool "mailbox string" true (String.length s > 8 && String.sub s 0 8 = "mailbox=")
  | _ -> Alcotest.fail "mail NSM should return the mailbox site"

let remote_nsm_same_answers_as_linked () =
  (* The identical-interface claim, across colocation: a remote NSM
     returns the same payload as a linked instance. *)
  let scn = Lazy.force scn in
  let linked, remote =
    Workload.Scenario.in_sim scn (fun () ->
        let nsm = Workload.Scenario.new_binding_nsm_bind scn ~on:scn.client_stack in
        let hns_name = Hns.Hns_name.make ~context:scn.bind_context ~name:scn.service_host in
        let linked =
          Hns.Nsm_intf.call scn.client_stack
            (Hns.Nsm_intf.Linked (Nsm.Binding_nsm_bind.impl nsm))
            ~payload_ty:Hns.Nsm_intf.binding_payload_ty ~service:scn.service_name
            ~hns_name
        in
        let hns = Workload.Scenario.new_hns scn ~on:scn.client_stack in
        let resolved =
          get_ok ~msg:"find"
            (Hns.Client.find_nsm hns ~context:scn.bind_context
               ~query_class:Hns.Query_class.hrpc_binding)
        in
        let remote =
          Hns.Nsm_intf.call scn.client_stack
            (Hns.Nsm_intf.Remote resolved.Hns.Find_nsm.binding)
            ~payload_ty:Hns.Nsm_intf.binding_payload_ty ~service:scn.service_name
            ~hns_name
        in
        (linked, remote))
  in
  match (linked, remote) with
  | Ok (Some a), Ok (Some b) -> check_bool "same payload" true (Wire.Value.equal a b)
  | _ -> Alcotest.fail "both access paths should succeed"

let suite =
  [
    Alcotest.test_case "binding NSM (BIND)" `Quick binding_nsm_bind_resolves;
    Alcotest.test_case "binding NSM prog:vers" `Quick binding_nsm_bind_prog_vers_literal;
    Alcotest.test_case "binding NSM unknown host" `Quick binding_nsm_bind_unknown_host;
    Alcotest.test_case "binding NSM unknown service" `Quick
      binding_nsm_bind_unknown_service_errors;
    Alcotest.test_case "binding NSM caches" `Quick binding_nsm_caches;
    Alcotest.test_case "binding NSM (CH), same interface" `Quick
      binding_nsm_ch_same_interface;
    Alcotest.test_case "host-address NSMs" `Quick hostaddr_nsms_agree_with_sources;
    Alcotest.test_case "file NSM" `Quick text_nsm_file_location;
    Alcotest.test_case "mail NSM" `Quick text_nsm_mailbox_location;
    Alcotest.test_case "linked = remote answers" `Quick remote_nsm_same_answers_as_linked;
  ]
