(* Reproduction regression tests: the simulated system must keep
   producing the paper's measurements (within tolerance). These pin
   the calibration so refactors cannot silently break the shape of
   Tables 3.1/3.2 and the Section 3 scalars. *)

open Helpers

let scn = lazy (Workload.Scenario.build ())

let assert_close ~label ~tolerance ~paper measured =
  let c = Workload.Experiment.cell ~label ~paper_ms:paper ~measured_ms:measured in
  if not (Workload.Experiment.within ~tolerance c) then
    Alcotest.failf "%s: measured %.1f ms vs paper %.1f ms (%.0f%% off)" label measured
      paper
      (100.0 *. Workload.Experiment.relative_error c)

let bind_lookup_27ms () =
  let scn = Lazy.force scn in
  let d =
    Workload.Scenario.in_sim scn (fun () ->
        let r =
          Dns.Resolver.create scn.client_stack
            ~servers:[ Dns.Server.addr scn.public_bind ] ~enable_cache:false ()
        in
        let _, d =
          Workload.Scenario.timed (fun () ->
              ignore (Dns.Resolver.lookup_a r (Dns.Name.of_string scn.service_host)))
        in
        d)
  in
  assert_close ~label:"BIND lookup" ~tolerance:0.1
    ~paper:Workload.Calib.Paper.bind_lookup_ms d

let clearinghouse_lookup_156ms () =
  let scn = Lazy.force scn in
  let d =
    Workload.Scenario.in_sim scn (fun () ->
        let client =
          Clearinghouse.Ch_client.connect scn.client_stack
            ~server:(Clearinghouse.Ch_server.addr scn.ch) ~credentials:scn.credentials
        in
        let _, d =
          Workload.Scenario.timed (fun () ->
              ignore
                (Clearinghouse.Ch_client.retrieve_item client
                   (Clearinghouse.Ch_name.make ~local:"dandelion" ~domain:scn.ch_domain
                      ~org:scn.ch_org)
                   ~prop:Clearinghouse.Property.Id.address))
        in
        Clearinghouse.Ch_client.close client;
        d)
  in
  assert_close ~label:"Clearinghouse lookup" ~tolerance:0.1
    ~paper:Workload.Calib.Paper.clearinghouse_lookup_ms d

let import_binding p arrangement scn =
  let hns_name =
    Hns.Hns_name.make
      ~context:(Lazy.force scn).Workload.Scenario.bind_context
      ~name:(Lazy.force scn).Workload.Scenario.service_host
  in
  match
    Hns.Import.import p.Workload.Scenario.env arrangement
      ~service:(Lazy.force scn).Workload.Scenario.service_name hns_name
  with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "import failed: %s" (Hns.Errors.to_string e)

let table_3_1_cells () =
  let s = Lazy.force scn in
  List.iter2
    (fun arrangement (label, paper_a, paper_b, paper_c) ->
      let a, b, c =
        Workload.Scenario.in_sim s (fun () ->
            let p = Workload.Scenario.arrange s arrangement in
            Workload.Scenario.flush_parties p;
            let (), a = Workload.Scenario.timed (fun () -> import_binding p arrangement scn) in
            Hns.Cache.flush p.nsm_cache;
            let (), b = Workload.Scenario.timed (fun () -> import_binding p arrangement scn) in
            let (), c = Workload.Scenario.timed (fun () -> import_binding p arrangement scn) in
            Workload.Scenario.stop_parties p;
            (a, b, c))
      in
      assert_close ~label:(label ^ " / miss") ~tolerance:0.12 ~paper:paper_a a;
      assert_close ~label:(label ^ " / HNS hit") ~tolerance:0.12 ~paper:paper_b b;
      assert_close ~label:(label ^ " / both hit") ~tolerance:0.12 ~paper:paper_c c;
      (* Orderings that give the table its meaning. *)
      check_bool "miss > HNS hit > both hit" true (a > b && b > c))
    Hns.Import.all_arrangements Workload.Calib.Paper.table_3_1

let table_3_1_colocation_vs_caching_lesson () =
  (* "The potential benefit of caching far exceeds that obtainable
     solely by colocation." *)
  let s = Lazy.force scn in
  let cell arrangement warm =
    Workload.Scenario.in_sim s (fun () ->
        let p = Workload.Scenario.arrange s arrangement in
        Workload.Scenario.flush_parties p;
        if warm then import_binding p arrangement scn;
        let (), d = Workload.Scenario.timed (fun () -> import_binding p arrangement scn) in
        Workload.Scenario.stop_parties p;
        d)
  in
  let colocation_gain = cell Hns.Import.All_remote false -. cell Hns.Import.All_linked false in
  let caching_gain = cell Hns.Import.All_linked false -. cell Hns.Import.All_linked true in
  check_bool "caching gain far exceeds colocation gain" true
    (caching_gain > 3.0 *. colocation_gain)

let find_nsm_overheads () =
  let s = Lazy.force scn in
  let cold, warm =
    Workload.Scenario.in_sim s (fun () ->
        let hns = Workload.Scenario.new_hns s ~on:s.client_stack in
        let go () =
          ignore
            (get_ok ~msg:"find"
               (Hns.Client.find_nsm hns ~context:s.bind_context
                  ~query_class:Hns.Query_class.hrpc_binding))
        in
        let (), cold = Workload.Scenario.timed go in
        let (), warm = Workload.Scenario.timed go in
        (cold, warm))
  in
  (* FindNSM cached = 88 ms; cold FindNSM is the six-mapping walk
     (the quoted 460 ms corresponds to the full row-1 import). *)
  assert_close ~label:"FindNSM cached" ~tolerance:0.12
    ~paper:Workload.Calib.Paper.find_nsm_cached_ms warm;
  check_bool "cold FindNSM ~ 370ms (six remote mappings)" true
    (cold > 300.0 && cold < Workload.Calib.Paper.find_nsm_cold_ms)

let baselines_match_paper () =
  let s = Lazy.force scn in
  let localfile_d =
    Workload.Scenario.in_sim s (fun () ->
        let _, d =
          Workload.Scenario.timed (fun () ->
              match
                Baseline.Localfile.import s.localfile ~service:s.service_name
                  ~host:s.service_host
              with
              | Ok _ -> ()
              | Error m -> Alcotest.failf "localfile import failed: %s" m)
        in
        d)
  in
  assert_close ~label:"interim local-file binding" ~tolerance:0.1
    ~paper:Workload.Calib.Paper.interim_localfile_binding_ms localfile_d;
  let rereg_d =
    Workload.Scenario.in_sim s (fun () ->
        let _, d =
          Workload.Scenario.timed (fun () ->
              match Baseline.Rereg_ch.import s.rereg ~service:s.service_name with
              | Ok _ -> ()
              | Error e ->
                  Alcotest.failf "rereg import failed: %a" Baseline.Rereg_ch.pp_error e)
        in
        d)
  in
  assert_close ~label:"reregistered Clearinghouse binding" ~tolerance:0.1
    ~paper:Workload.Calib.Paper.rereg_clearinghouse_binding_ms rereg_d

let preload_cost_and_payoff () =
  let s = Lazy.force scn in
  let preload_d, first_after =
    Workload.Scenario.in_sim s (fun () ->
        let hns = Workload.Scenario.new_hns s ~on:s.client_stack in
        let _, preload_d =
          Workload.Scenario.timed (fun () ->
              ignore (get_ok ~msg:"preload" (Hns.Client.preload hns)))
        in
        let (), first_after =
          Workload.Scenario.timed (fun () ->
              ignore
                (get_ok ~msg:"find"
                   (Hns.Client.find_nsm hns ~context:s.bind_context
                      ~query_class:Hns.Query_class.hrpc_binding)))
        in
        (preload_d, first_after))
  in
  assert_close ~label:"preload" ~tolerance:0.15 ~paper:Workload.Calib.Paper.preload_ms
    preload_d;
  (* "the cost of preloading plus a cache hit falls between one and
     two cache miss times" *)
  let one_miss = Workload.Calib.Paper.find_nsm_cold_ms in
  check_bool "preload + hit between one and two misses" true
    (preload_d +. first_after > one_miss && preload_d +. first_after < 2.0 *. one_miss)

let table_3_2_cells () =
  (* BIND lookups through the HNS-style cache: miss, marshalled hit,
     demarshalled hit, at 1 and 6 resource records per name. *)
  let w = make_world ~hosts:2 () in
  let name_1 = Dns.Name.of_string "one.z" and name_6 = Dns.Name.of_string "six.z" in
  let records name n =
    List.init n (fun i ->
        Dns.Rr.make name (Dns.Rr.A (Int32.of_int (0x0A000100 + i))))
  in
  let zone =
    Dns.Zone.simple ~origin:(Dns.Name.of_string "z")
      (records name_1 1 @ records name_6 6)
  in
  (* The meta-BIND instance the paper measured this cache against was
     the HNS's repository, not the heavyweight public server. *)
  let server =
    Dns.Server.create w.stacks.(0)
      ~service_overhead_ms:9.0
      ~per_answer_ms:Workload.Calib.bind_per_answer_ms ()
  in
  Dns.Server.add_zone server zone;
  (* One resource record demarshals to a 5-node struct; with the array
     wrapper a 1-RR answer is 6 value nodes and a 6-RR answer 31 — the
     node counts the calibration fit (Calib.generated_cost) assumes. *)
  let rr_list_ty =
    Wire.Idl.T_array
      (Wire.Idl.T_struct
         [
           ("name", Wire.Idl.T_string);
           ("a", Wire.Idl.T_uint);
           ("ttl", Wire.Idl.T_int);
           ("cls", Wire.Idl.T_int);
         ])
  in
  let to_value rrs =
    Wire.Value.Array
      (List.map
         (fun (rr : Dns.Rr.t) ->
           Wire.Value.Struct
             [
               ("name", Wire.Value.Str (Dns.Name.to_string rr.name));
               ("a", Wire.Value.Uint (match rr.rdata with Dns.Rr.A ip -> ip | _ -> 0l));
               ("ttl", Wire.Value.Int rr.ttl);
               ("cls", Wire.Value.int 1);
             ])
         rrs)
  in
  let run mode name =
    in_sim w (fun () ->
        if Dns.Server.queries_served server = 0 then Dns.Server.start server;
        let cache =
          Hns.Cache.create ~mode ~generated_cost:Workload.Calib.generated_cost
            ~hit_overhead_ms:Workload.Calib.cache_hit_overhead_ms
            ~hit_per_node_ms:Workload.Calib.cache_hit_per_node_ms
            ~insert_overhead_ms:Workload.Calib.cache_insert_ms ()
        in
        (* The paper ran this cache experiment against a colocated
           BIND (loopback), which is why its miss costs sit below a
           cross-host lookup. *)
        let resolver =
          Dns.Resolver.create w.stacks.(0) ~servers:[ Dns.Server.addr server ]
            ~enable_cache:false ()
        in
        let key = Dns.Name.to_string name in
        let lookup () =
          match Hns.Cache.find cache ~key ~ty:rr_list_ty with
          | Some _ -> ()
          | None -> (
              match Dns.Resolver.query resolver name Dns.Rr.T_a with
              | Ok rrs ->
                  let v = to_value rrs in
                  (* response decode through the generated path *)
                  Sim.Engine.sleep (Wire.Generic_marshal.cost Workload.Calib.generated_cost v);
                  Hns.Cache.insert cache ~key ~ty:rr_list_ty v
              | Error e -> Alcotest.failf "lookup failed: %a" Dns.Resolver.pp_error e)
        in
        let (), miss = Workload.Scenario.timed lookup in
        let (), hit = Workload.Scenario.timed lookup in
        (miss, hit))
  in
  List.iter
    (fun (rr_count, paper_miss, paper_marshalled, paper_demarshalled) ->
      let name = if rr_count = 1 then name_1 else name_6 in
      let miss, marshalled_hit = run Hns.Cache.Marshalled name in
      let _, demarshalled_hit = run Hns.Cache.Demarshalled name in
      assert_close
        ~label:(Printf.sprintf "T3.2 miss (%d RR)" rr_count)
        ~tolerance:0.25 ~paper:paper_miss miss;
      assert_close
        ~label:(Printf.sprintf "T3.2 marshalled hit (%d RR)" rr_count)
        ~tolerance:0.15 ~paper:paper_marshalled marshalled_hit;
      assert_close
        ~label:(Printf.sprintf "T3.2 demarshalled hit (%d RR)" rr_count)
        ~tolerance:0.30 ~paper:paper_demarshalled demarshalled_hit;
      (* the lesson: demarshalled caching is an order of magnitude
         cheaper *)
      check_bool "demarshalled << marshalled" true
        (demarshalled_hit *. 5.0 < marshalled_hit))
    Workload.Calib.Paper.table_3_2

let eq1_breakevens () =
  (* Equation (1): q > C(remote call) / (C(miss) - C(hit)). The paper
     computes 11% for the HNS and 42% for the NSMs; our measured costs
     must produce breakevens in those neighbourhoods. *)
  let s = Lazy.force scn in
  let measure arrangement state =
    Workload.Scenario.in_sim s (fun () ->
        let p = Workload.Scenario.arrange s arrangement in
        Workload.Scenario.flush_parties p;
        (match state with
        | `Miss -> ()
        | `Hit -> import_binding p arrangement scn
        | `Hns_hit ->
            import_binding p arrangement scn;
            Hns.Cache.flush p.nsm_cache);
        let (), d = Workload.Scenario.timed (fun () -> import_binding p arrangement scn) in
        Workload.Scenario.stop_parties p;
        d)
  in
  (* HNS local vs remote, fully remote NSMs (row 5 basis in the paper). *)
  let remote_call = 42.0 (* one extra remote party, from Table 3.1 row deltas *) in
  let miss = measure Hns.Import.All_remote `Miss in
  let hit = measure Hns.Import.All_remote `Hit in
  let q_hns = remote_call /. (miss -. hit) in
  check_bool "HNS breakeven ~11%" true (q_hns > 0.05 && q_hns < 0.20);
  (* NSM local vs remote: miss/hit costs of the NSM phase alone. *)
  let nsm_miss = measure Hns.Import.Remote_nsms `Hns_hit in
  let nsm_hit = measure Hns.Import.Remote_nsms `Hit in
  let q_nsm = remote_call /. (nsm_miss -. nsm_hit) in
  check_bool "NSM breakeven ~42%" true (q_nsm > 0.25 && q_nsm < 0.75)

let suite =
  [
    Alcotest.test_case "BIND lookup 27ms" `Quick bind_lookup_27ms;
    Alcotest.test_case "Clearinghouse lookup 156ms" `Quick clearinghouse_lookup_156ms;
    Alcotest.test_case "Table 3.1 cells" `Slow table_3_1_cells;
    Alcotest.test_case "caching beats colocation" `Quick
      table_3_1_colocation_vs_caching_lesson;
    Alcotest.test_case "FindNSM overheads" `Quick find_nsm_overheads;
    Alcotest.test_case "baseline timings" `Quick baselines_match_paper;
    Alcotest.test_case "preload cost and payoff" `Quick preload_cost_and_payoff;
    Alcotest.test_case "Table 3.2 cells" `Slow table_3_2_cells;
    Alcotest.test_case "equation (1) breakevens" `Quick eq1_breakevens;
  ]
