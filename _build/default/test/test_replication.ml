(* Tests for zone replication (BIND secondaries) and negative caching —
   the distribution/availability story of the meta-naming database. *)

open Helpers

let mk_a name ip = Dns.Rr.make (Dns.Name.of_string name) (Dns.Rr.A ip)

(* --- negative caching --- *)

let negative_cache_suppresses_requeries () =
  let w = make_world ~hosts:2 () in
  let served, neg_hits, second_err =
    in_sim w (fun () ->
        let zone = Dns.Zone.simple ~origin:(Dns.Name.of_string "z") [ mk_a "h.z" 1l ] in
        let server = Dns.Server.create w.stacks.(0) () in
        Dns.Server.add_zone server zone;
        Dns.Server.start server;
        let r =
          Dns.Resolver.create w.stacks.(1) ~servers:[ Dns.Server.addr server ]
            ~negative_ttl_ms:60_000.0 ()
        in
        let ghost = Dns.Name.of_string "ghost.z" in
        let _first = Dns.Resolver.query r ghost Dns.Rr.T_a in
        let second = Dns.Resolver.query r ghost Dns.Rr.T_a in
        (Dns.Server.queries_served server, Dns.Resolver.negative_hits r, second))
  in
  check_int "one server query" 1 served;
  check_int "one negative hit" 1 neg_hits;
  check_bool "still NXDOMAIN" true (second_err = Error Dns.Resolver.Nxdomain)

let negative_cache_expires () =
  let w = make_world ~hosts:2 () in
  let served =
    in_sim w (fun () ->
        let zone = Dns.Zone.simple ~origin:(Dns.Name.of_string "z") [] in
        let server = Dns.Server.create w.stacks.(0) () in
        Dns.Server.add_zone server zone;
        Dns.Server.start server;
        let r =
          Dns.Resolver.create w.stacks.(1) ~servers:[ Dns.Server.addr server ]
            ~negative_ttl_ms:1_000.0 ()
        in
        let ghost = Dns.Name.of_string "ghost.z" in
        ignore (Dns.Resolver.query r ghost Dns.Rr.T_a);
        Sim.Engine.sleep 1_500.0;
        ignore (Dns.Resolver.query r ghost Dns.Rr.T_a);
        Dns.Server.queries_served server)
  in
  check_int "re-queried after negative TTL" 2 served

let negative_cache_off_by_default () =
  let w = make_world ~hosts:2 () in
  let served =
    in_sim w (fun () ->
        let zone = Dns.Zone.simple ~origin:(Dns.Name.of_string "z") [] in
        let server = Dns.Server.create w.stacks.(0) () in
        Dns.Server.add_zone server zone;
        Dns.Server.start server;
        let r = Dns.Resolver.create w.stacks.(1) ~servers:[ Dns.Server.addr server ] () in
        let ghost = Dns.Name.of_string "ghost.z" in
        ignore (Dns.Resolver.query r ghost Dns.Rr.T_a);
        ignore (Dns.Resolver.query r ghost Dns.Rr.T_a);
        Dns.Server.queries_served server)
  in
  check_int "1987 BIND requeries" 2 served

(* --- secondaries --- *)

let secondary_serves_replica () =
  let w = make_world ~hosts:3 () in
  let answer, transfers =
    in_sim w (fun () ->
        let zone =
          Dns.Zone.simple ~origin:(Dns.Name.of_string "z")
            [ mk_a "h.z" 7l; mk_a "k.z" 8l ]
        in
        let primary = Dns.Server.create w.stacks.(0) ~allow_update:true () in
        Dns.Server.add_zone primary zone;
        Dns.Server.start primary;
        let replica_server = Dns.Server.create w.stacks.(1) () in
        Dns.Server.start replica_server;
        let secondary =
          Dns.Secondary.attach replica_server ~primary:(Dns.Server.addr primary)
            ~zone:(Dns.Name.of_string "z") ~refresh_ms:5_000.0 ()
        in
        (* Client asks only the secondary. *)
        let r =
          Dns.Resolver.create w.stacks.(2)
            ~servers:[ Dns.Server.addr replica_server ] ()
        in
        let answer = Dns.Resolver.lookup_a r (Dns.Name.of_string "h.z") in
        Dns.Secondary.detach secondary;
        (answer, Dns.Secondary.transfers secondary))
  in
  check_bool "replica answers" true (answer = Ok 7l);
  check_int "one initial transfer" 1 transfers

let secondary_picks_up_updates () =
  let w = make_world ~hosts:3 () in
  let before, after, transfers, fresh =
    in_sim w (fun () ->
        let zone = Dns.Zone.simple ~origin:(Dns.Name.of_string "z") [ mk_a "h.z" 7l ] in
        let primary = Dns.Server.create w.stacks.(0) ~allow_update:true () in
        Dns.Server.add_zone primary zone;
        Dns.Server.start primary;
        let replica_server = Dns.Server.create w.stacks.(1) () in
        Dns.Server.start replica_server;
        let secondary =
          Dns.Secondary.attach replica_server ~primary:(Dns.Server.addr primary)
            ~zone:(Dns.Name.of_string "z") ~refresh_ms:5_000.0 ()
        in
        let r =
          Dns.Resolver.create w.stacks.(2)
            ~servers:[ Dns.Server.addr replica_server ] ~enable_cache:false ()
        in
        let before = Dns.Resolver.lookup_a r (Dns.Name.of_string "new.z") in
        (* a native application updates the PRIMARY *)
        (match
           Dns.Update.add_rr w.stacks.(2) ~server:(Dns.Server.addr primary)
             ~zone:(Dns.Name.of_string "z") (mk_a "new.z" 9l)
         with
        | Ok () -> ()
        | Error e -> Alcotest.failf "update failed: %a" Dns.Update.pp_error e);
        (* within the refresh window the replica is stale *)
        let still_stale = Dns.Resolver.lookup_a r (Dns.Name.of_string "new.z") in
        check_bool "stale inside refresh window" true (still_stale = before);
        (* after a refresh cycle it converges *)
        Sim.Engine.sleep 12_000.0;
        let after = Dns.Resolver.lookup_a r (Dns.Name.of_string "new.z") in
        Dns.Secondary.detach secondary;
        (before, after, Dns.Secondary.transfers secondary, Dns.Secondary.fresh_checks secondary))
  in
  check_bool "absent before" true (before = Error Dns.Resolver.Nxdomain);
  check_bool "present after refresh" true (after = Ok 9l);
  check_int "initial + one refresh transfer" 2 transfers;
  check_bool "serial probes that found it fresh" true (fresh >= 1)

let secondary_survives_primary_outage () =
  let w = make_world ~hosts:3 () in
  let answer =
    in_sim w (fun () ->
        let zone = Dns.Zone.simple ~origin:(Dns.Name.of_string "z") [ mk_a "h.z" 7l ] in
        let primary = Dns.Server.create w.stacks.(0) () in
        Dns.Server.add_zone primary zone;
        Dns.Server.start primary;
        let replica_server = Dns.Server.create w.stacks.(1) () in
        Dns.Server.start replica_server;
        let secondary =
          Dns.Secondary.attach replica_server ~primary:(Dns.Server.addr primary)
            ~zone:(Dns.Name.of_string "z") ~refresh_ms:4_000.0 ()
        in
        (* The primary dies; the replica keeps serving its last copy
           through several failed refresh probes. *)
        Dns.Server.stop primary;
        Sim.Engine.sleep 15_000.0;
        let r =
          Dns.Resolver.create w.stacks.(2)
            ~servers:[ Dns.Server.addr replica_server ] ()
        in
        let answer = Dns.Resolver.lookup_a r (Dns.Name.of_string "h.z") in
        Dns.Secondary.detach secondary;
        answer)
  in
  check_bool "availability through outage" true (answer = Ok 7l)

(* --- the meta-naming database, replicated --- *)

let hns_works_from_meta_replica () =
  let scn = Workload.Scenario.build () in
  let resolved_via_replica, sees_new_context =
    Workload.Scenario.in_sim scn (fun () ->
        (* Stand up a secondary of hns-meta. on the agent host. *)
        let replica_server = Dns.Server.create scn.agent_stack ~port:1054 () in
        Dns.Server.start replica_server;
        let secondary =
          Dns.Secondary.attach replica_server
            ~primary:(Dns.Server.addr scn.meta_bind)
            ~zone:Hns.Meta_schema.zone_origin ~refresh_ms:5_000.0 ()
        in
        (* An HNS client that only knows the replica. *)
        let cache = Workload.Scenario.new_cache scn () in
        let hns =
          Hns.Client.create scn.client_stack
            ~meta_server:(Dns.Server.addr replica_server) ~cache
            ~generated_cost:Workload.Calib.generated_cost ()
        in
        let ha =
          Nsm.Hostaddr_nsm_bind.create scn.client_stack
            ~bind_server:(Dns.Server.addr scn.public_bind) ()
        in
        Hns.Client.link_hostaddr_nsm hns ~name:scn.nsm_hostaddr_bind
          (Nsm.Hostaddr_nsm_bind.impl ha);
        let resolved =
          Hns.Client.find_nsm hns ~context:scn.bind_context
            ~query_class:Hns.Query_class.hrpc_binding
        in
        (* Register a new context at the PRIMARY; the replica-backed
           client converges after a refresh. *)
        let admin_cache = Hns.Cache.create ~mode:Hns.Cache.Demarshalled () in
        let admin =
          Hns.Meta_client.create scn.meta_stack
            ~meta_server:(Dns.Server.addr scn.meta_bind) ~cache:admin_cache ()
        in
        (match Hns.Admin.register_context admin ~context:"replica-ctx" ~ns:"UW-BIND" with
        | Ok () -> ()
        | Error e -> Alcotest.failf "register failed: %s" (Hns.Errors.to_string e));
        Sim.Engine.sleep 12_000.0;
        Hns.Client.flush_cache hns;
        let seen =
          Hns.Client.find_nsm hns ~context:"replica-ctx"
            ~query_class:Hns.Query_class.hrpc_binding
        in
        Dns.Secondary.detach secondary;
        (resolved, seen))
  in
  (match resolved_via_replica with
  | Ok r -> check_string "designates via replica" scn.nsm_binding_bind r.Hns.Find_nsm.nsm_name
  | Error e -> Alcotest.failf "replica-backed FindNSM failed: %s" (Hns.Errors.to_string e));
  match sees_new_context with
  | Ok _ -> ()
  | Error e ->
      Alcotest.failf "new context not visible after refresh: %s" (Hns.Errors.to_string e)

let suite =
  [
    Alcotest.test_case "negative cache suppresses requeries" `Quick
      negative_cache_suppresses_requeries;
    Alcotest.test_case "negative cache expires" `Quick negative_cache_expires;
    Alcotest.test_case "negative cache off by default" `Quick
      negative_cache_off_by_default;
    Alcotest.test_case "secondary serves replica" `Quick secondary_serves_replica;
    Alcotest.test_case "secondary picks up updates" `Quick secondary_picks_up_updates;
    Alcotest.test_case "secondary survives outage" `Quick
      secondary_survives_primary_outage;
    Alcotest.test_case "HNS from a meta replica" `Quick hns_works_from_meta_replica;
  ]

(* --- Clearinghouse replication --- *)

let ch_cred =
  { Clearinghouse.Ch_proto.user = Clearinghouse.Ch_name.of_string "hcs:parc:xerox";
    password = "" }

let make_ch_pair w =
  let mk stack =
    let ch = Clearinghouse.Ch_server.create stack () in
    Clearinghouse.Ch_server.start ch;
    ch
  in
  let a = mk w.stacks.(0) and b = mk w.stacks.(1) in
  let repl = Clearinghouse.Ch_replication.connect ~propagation_ms:2_000.0 [ a; b ] in
  (a, b, repl)

let ch_write_propagates () =
  let w = make_world ~hosts:3 () in
  let before, after, shipped =
    in_sim w (fun () ->
        let a, b, repl = make_ch_pair w in
        let client =
          Clearinghouse.Ch_client.connect w.stacks.(2)
            ~server:(Clearinghouse.Ch_server.addr a) ~credentials:ch_cred
        in
        get_ok ~msg:"store"
          (Clearinghouse.Ch_client.store_item client
             (Clearinghouse.Ch_name.of_string "printer:parc:xerox")
             ~prop:4 "addr-bytes");
        Clearinghouse.Ch_client.close client;
        (* read the OTHER replica, before and after propagation *)
        let read () =
          let c =
            Clearinghouse.Ch_client.connect w.stacks.(2)
              ~server:(Clearinghouse.Ch_server.addr b) ~credentials:ch_cred
          in
          let r =
            Clearinghouse.Ch_client.retrieve_item c
              (Clearinghouse.Ch_name.of_string "printer:parc:xerox") ~prop:4
          in
          Clearinghouse.Ch_client.close c;
          r
        in
        let before = read () in
        Sim.Engine.sleep 3_000.0;
        let after = read () in
        Clearinghouse.Ch_replication.disconnect repl;
        (before, after, Clearinghouse.Ch_replication.propagated repl))
  in
  check_bool "stale before propagation" true (before = Error Clearinghouse.Ch_client.Not_found);
  check_bool "fresh after propagation" true (after = Ok "addr-bytes");
  check_int "one update shipped to one peer" 1 shipped

let ch_concurrent_writes_diverge () =
  (* The Grapevine anomaly, demonstrated: concurrent writes to two
     replicas swap past each other and the replicas stay divergent. *)
  let w = make_world ~hosts:3 () in
  let va, vb =
    in_sim w (fun () ->
        let a, b, repl = make_ch_pair w in
        let obj = Clearinghouse.Ch_name.of_string "clock:parc:xerox" in
        let write server v =
          let c =
            Clearinghouse.Ch_client.connect w.stacks.(2)
              ~server:(Clearinghouse.Ch_server.addr server) ~credentials:ch_cred
          in
          get_ok ~msg:"store" (Clearinghouse.Ch_client.store_item c obj ~prop:1 v);
          Clearinghouse.Ch_client.close c
        in
        (* two writers race to different replicas *)
        Sim.Engine.spawn_child (fun () -> write a "written-at-A");
        Sim.Engine.spawn_child (fun () -> write b "written-at-B");
        Sim.Engine.sleep 10_000.0;
        Clearinghouse.Ch_replication.disconnect repl;
        ( Clearinghouse.Ch_db.retrieve (Clearinghouse.Ch_server.db a) obj 1,
          Clearinghouse.Ch_db.retrieve (Clearinghouse.Ch_server.db b) obj 1 ))
  in
  (* each replica ends with the OTHER's write: divergence *)
  check_bool "replicas diverge (Grapevine anomaly)" true (va <> vb)

let ch_disconnect_stops_propagation () =
  let w = make_world ~hosts:3 () in
  let after =
    in_sim w (fun () ->
        let a, b, repl = make_ch_pair w in
        Clearinghouse.Ch_replication.disconnect repl;
        let c =
          Clearinghouse.Ch_client.connect w.stacks.(2)
            ~server:(Clearinghouse.Ch_server.addr a) ~credentials:ch_cred
        in
        get_ok ~msg:"store"
          (Clearinghouse.Ch_client.store_item c
             (Clearinghouse.Ch_name.of_string "x:parc:xerox") ~prop:1 "v");
        Clearinghouse.Ch_client.close c;
        Sim.Engine.sleep 5_000.0;
        Clearinghouse.Ch_db.retrieve (Clearinghouse.Ch_server.db b)
          (Clearinghouse.Ch_name.of_string "x:parc:xerox") 1)
  in
  check_bool "no propagation after disconnect" true (after = None)

let extra =
  [
    Alcotest.test_case "CH write propagates" `Quick ch_write_propagates;
    Alcotest.test_case "CH concurrent writes diverge" `Quick ch_concurrent_writes_diverge;
    Alcotest.test_case "CH disconnect" `Quick ch_disconnect_stops_propagation;
  ]

let suite = suite @ extra

let hns_fails_over_to_meta_replica () =
  (* An HNS client configured with the replica as fallback keeps
     resolving COLD through a primary outage. *)
  let scn = Workload.Scenario.build () in
  let r =
    Workload.Scenario.in_sim scn (fun () ->
        let replica_server = Dns.Server.create scn.agent_stack ~port:1055 () in
        Dns.Server.start replica_server;
        let secondary =
          Dns.Secondary.attach replica_server
            ~primary:(Dns.Server.addr scn.meta_bind)
            ~zone:Hns.Meta_schema.zone_origin ~refresh_ms:5_000.0 ()
        in
        let hns =
          Hns.Client.create scn.client_stack
            ~meta_server:(Dns.Server.addr scn.meta_bind)
            ~fallback_servers:[ Dns.Server.addr replica_server ]
            ~cache:(Workload.Scenario.new_cache scn ())
            ~generated_cost:Workload.Calib.generated_cost ()
        in
        let ha =
          Nsm.Hostaddr_nsm_bind.create scn.client_stack
            ~bind_server:(Dns.Server.addr scn.public_bind) ()
        in
        Hns.Client.link_hostaddr_nsm hns ~name:scn.nsm_hostaddr_bind
          (Nsm.Hostaddr_nsm_bind.impl ha);
        (* primary dies; nothing is cached yet *)
        Dns.Server.stop scn.meta_bind;
        let r =
          Hns.Client.find_nsm hns ~context:scn.bind_context
            ~query_class:Hns.Query_class.hrpc_binding
        in
        Dns.Server.start scn.meta_bind;
        Dns.Secondary.detach secondary;
        r)
  in
  match r with
  | Ok resolved ->
      check_string "designated via the replica" scn.nsm_binding_bind
        resolved.Hns.Find_nsm.nsm_name
  | Error e -> Alcotest.failf "failover FindNSM failed: %s" (Hns.Errors.to_string e)

let failover_suite =
  [ Alcotest.test_case "HNS fails over to replica" `Quick hns_fails_over_to_meta_replica ]

let suite = suite @ failover_suite
