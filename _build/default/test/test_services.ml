(* Tests for the HCS network services (filing, mail, remote
   computation) built on HNS + HRPC. *)

open Helpers

let scn = lazy (Workload.Scenario.build ())

(* Service installation mutates the scenario's name spaces; share one
   installed world across these tests. *)
let installed =
  lazy
    (let s = Lazy.force scn in
     let inst = Workload.Scenario.in_sim s (fun () -> Services.Setup.install s) in
     (s, inst))

let with_services f =
  let s, inst = Lazy.force installed in
  Workload.Scenario.in_sim s (fun () ->
      let hns = Workload.Scenario.new_hns s ~on:s.client_stack in
      f s inst hns)

let expect_ok ~msg = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" msg (Format.asprintf "%a" Services.Access.pp_error e)

(* --- filing --- *)

let filing_fetch_unix () =
  let data =
    with_services (fun s _ hns ->
        let filing = Services.Filing.create hns in
        expect_ok ~msg:"fetch"
          (Services.Filing.fetch filing (Services.Setup.unix_file_name s "report.tex")))
  in
  check_bool "contents" true (data = List.assoc "report.tex" Services.Setup.unix_files)

let filing_fetch_xde_via_courier () =
  (* Same client code; the file happens to live on the Xerox machine
     behind Courier RPC and the Clearinghouse. *)
  let data =
    with_services (fun s _ hns ->
        let filing = Services.Filing.create hns in
        expect_ok ~msg:"fetch xde"
          (Services.Filing.fetch filing (Services.Setup.xde_file_name s "notes")))
  in
  check_bool "contents" true (data = List.assoc "notes" Services.Setup.xde_files)

let filing_store_roundtrip () =
  with_services (fun s inst hns ->
      let filing = Services.Filing.create hns in
      let name = Services.Setup.unix_file_name s "report.tex" in
      expect_ok ~msg:"store" (Services.Filing.store filing name "revised contents");
      let back = expect_ok ~msg:"refetch" (Services.Filing.fetch filing name) in
      check_string "roundtrip" "revised contents" back;
      (* The write really landed in the Unix server's local store —
         direct access, no shadow copies. *)
      check_bool "authoritative store updated" true
        (Services.File_server.get inst.Services.Setup.unix_fs ~name:"report.tex"
        = Some "revised contents"))

let filing_missing_file () =
  with_services (fun s _ hns ->
      let filing = Services.Filing.create hns in
      (* location record exists only for seeded files *)
      match
        Services.Filing.fetch filing (Services.Setup.unix_file_name s "ghost.txt")
      with
      | Error (Services.Access.Name_error _) -> ()
      | Ok _ -> Alcotest.fail "ghost file should not fetch"
      | Error e ->
          Alcotest.failf "wrong error: %a" Services.Access.pp_error e)

let filing_list () =
  let files =
    with_services (fun s _ hns ->
        let filing = Services.Filing.create hns in
        expect_ok ~msg:"list"
          (Services.Filing.list_at filing (Services.Setup.unix_file_name s "todo")))
  in
  check_bool "todo listed" true (List.mem "todo" files);
  check_bool "kernel.o listed" true (List.mem "kernel.o" files)

let filing_binding_cache () =
  (* The second fetch from the same server reuses the imported
     binding: no second FindNSM/NSM exchange. *)
  let d1, d2 =
    with_services (fun s _ hns ->
        let filing = Services.Filing.create hns in
        let (_ : string), d1 =
          Workload.Scenario.timed (fun () ->
              expect_ok ~msg:"fetch1"
                (Services.Filing.fetch filing (Services.Setup.unix_file_name s "todo")))
        in
        let (_ : string), d2 =
          Workload.Scenario.timed (fun () ->
              expect_ok ~msg:"fetch2"
                (Services.Filing.fetch filing
                   (Services.Setup.unix_file_name s "kernel.o")))
        in
        (d1, d2))
  in
  check_bool "second fetch much cheaper" true (d2 < d1 /. 2.0)

(* --- mail --- *)

let mail_send_and_read () =
  with_services (fun s inst hns ->
      let mail = Services.Mail.create hns ~from:"schwartz@cs" in
      let site =
        expect_ok ~msg:"send"
          (Services.Mail.send mail
             ~recipient:(Services.Setup.user_name s "alice")
             ~subject:"hns" ~body:"measurements attached")
      in
      check_bool "delivered to samoa" true
        (String.length site.Hns.Hns_name.name > 0);
      let inbox =
        expect_ok ~msg:"read"
          (Services.Mail.read_mailbox mail ~user:(Services.Setup.user_name s "alice"))
      in
      (match inbox with
      | [ m ] ->
          check_string "from" "schwartz@cs" m.Services.Mailbox_server.from;
          check_string "subject" "hns" m.Services.Mailbox_server.subject
      | l -> Alcotest.failf "expected 1 message, got %d" (List.length l));
      check_bool "server-side mailbox agrees" true
        (List.length
           (Services.Mailbox_server.mailbox inst.Services.Setup.mailhub ~user:"alice")
        >= 1))

let mail_routes_to_other_site () =
  with_services (fun s inst hns ->
      let mail = Services.Mail.create hns ~from:"zahorjan@cs" in
      ignore
        (expect_ok ~msg:"send to dave"
           (Services.Mail.send mail
              ~recipient:(Services.Setup.user_name s "dave")
              ~subject:"annex" ~body:"hello"));
      check_bool "annex received it" true
        (List.length
           (Services.Mailbox_server.mailbox inst.Services.Setup.mail_annex ~user:"dave")
        >= 1))

let mail_unknown_user_bounces () =
  with_services (fun s _ hns ->
      let mail = Services.Mail.create hns ~from:"x@y" in
      match
        Services.Mail.send mail
          ~recipient:(Services.Setup.user_name s "mallory")
          ~subject:"spam" ~body:"spam"
      with
      | Error (Services.Access.Name_error _) -> () (* no mailbox record at all *)
      | Error (Services.Access.Service_error _) -> ()
      | Ok _ -> Alcotest.fail "unknown user must not deliver"
      | Error e -> Alcotest.failf "wrong error: %a" Services.Access.pp_error e)

(* --- rexec --- *)

let rexec_runs_remotely () =
  with_services (fun s _ hns ->
      let rexec = Services.Rexec.create hns in
      let host =
        Hns.Hns_name.make ~context:s.bind_context
          ~name:(Printf.sprintf "samoa.%s" s.zone)
      in
      let out =
        expect_ok ~msg:"hostname"
          (Services.Rexec.run rexec ~host ~command:"hostname" ~args:[])
      in
      check_int "status" 0 out.Services.Rexec_server.status;
      check_string "runs on the right machine" (Printf.sprintf "samoa.%s" s.zone)
        out.Services.Rexec_server.output;
      let echo =
        expect_ok ~msg:"echo"
          (Services.Rexec.run rexec ~host ~command:"echo" ~args:[ "a"; "b" ])
      in
      check_string "echo output" "a b" echo.Services.Rexec_server.output)

let rexec_unknown_command_status () =
  with_services (fun s _ hns ->
      let rexec = Services.Rexec.create hns in
      let host =
        Hns.Hns_name.make ~context:s.bind_context
          ~name:(Printf.sprintf "samoa.%s" s.zone)
      in
      let out =
        expect_ok ~msg:"run"
          (Services.Rexec.run rexec ~host ~command:"rm" ~args:[ "-rf" ])
      in
      check_int "127 like a shell" 127 out.Services.Rexec_server.status)

let rexec_charges_cpu () =
  let d =
    with_services (fun s _ hns ->
        let rexec = Services.Rexec.create hns in
        let host =
          Hns.Hns_name.make ~context:s.bind_context
            ~name:(Printf.sprintf "vanuatu.%s" s.zone)
        in
        ignore
          (expect_ok ~msg:"warm binding"
             (Services.Rexec.run rexec ~host ~command:"hostname" ~args:[]));
        let (), d =
          Workload.Scenario.timed (fun () ->
              ignore
                (expect_ok ~msg:"compile"
                   (Services.Rexec.run rexec ~host ~command:"compile"
                      ~args:[ "hns.c" ])))
        in
        d)
  in
  check_bool "compile dominated by its 500ms CPU" true (d >= 500.0 && d < 600.0)

let suite =
  [
    Alcotest.test_case "filing: fetch (Unix/SunRPC)" `Quick filing_fetch_unix;
    Alcotest.test_case "filing: fetch (XDE/Courier)" `Quick filing_fetch_xde_via_courier;
    Alcotest.test_case "filing: store roundtrip" `Quick filing_store_roundtrip;
    Alcotest.test_case "filing: missing file" `Quick filing_missing_file;
    Alcotest.test_case "filing: list" `Quick filing_list;
    Alcotest.test_case "filing: binding cache" `Quick filing_binding_cache;
    Alcotest.test_case "mail: send and read" `Quick mail_send_and_read;
    Alcotest.test_case "mail: second site" `Quick mail_routes_to_other_site;
    Alcotest.test_case "mail: unknown user" `Quick mail_unknown_user_bounces;
    Alcotest.test_case "rexec: remote run" `Quick rexec_runs_remotely;
    Alcotest.test_case "rexec: unknown command" `Quick rexec_unknown_command_status;
    Alcotest.test_case "rexec: cpu accounting" `Quick rexec_charges_cpu;
  ]

(* --- the store-and-forward MTA --- *)

let mta_delivers_queued_mail () =
  with_services (fun s inst hns ->
      let mta = Services.Mta.create hns ~from:"mta@hcs" () in
      Services.Mta.start mta;
      Services.Mta.submit mta ~recipient:(Services.Setup.user_name s "alice")
        ~subject:"q1" ~body:"one";
      Services.Mta.submit mta ~recipient:(Services.Setup.user_name s "dave")
        ~subject:"q2" ~body:"two";
      Sim.Engine.sleep 5_000.0;
      check_int "both delivered" 2 (Services.Mta.delivered mta);
      check_int "queue empty" 0 (Services.Mta.queue_length mta);
      check_bool "alice's box has it" true
        (List.exists
           (fun (m : Services.Mailbox_server.message) -> m.subject = "q1")
           (Services.Mailbox_server.mailbox inst.Services.Setup.mailhub ~user:"alice"));
      Services.Mta.stop mta)

let mta_retries_through_outage () =
  with_services (fun s inst hns ->
      let mta =
        Services.Mta.create hns ~from:"mta@hcs" ~retry_interval_ms:20_000.0
          ~max_attempts:10 ()
      in
      Services.Mta.start mta;
      (* the mailbox site is down when the message is submitted *)
      Services.Mailbox_server.stop inst.Services.Setup.mailhub;
      Services.Mta.submit mta ~recipient:(Services.Setup.user_name s "bob")
        ~subject:"patience" ~body:"retry me";
      Sim.Engine.sleep 60_000.0;
      check_int "not delivered during the outage" 0 (Services.Mta.delivered mta);
      check_bool "still queued, retrying" true (Services.Mta.attempts mta >= 2);
      (* the site returns *)
      Services.Mailbox_server.start inst.Services.Setup.mailhub;
      Sim.Engine.sleep 120_000.0;
      check_int "delivered after recovery" 1 (Services.Mta.delivered mta);
      check_int "queue drained" 0 (Services.Mta.queue_length mta);
      Services.Mta.stop mta)

let mta_bounces_unknown_user () =
  with_services (fun s _ hns ->
      let mta = Services.Mta.create hns ~from:"mta@hcs" () in
      Services.Mta.start mta;
      Services.Mta.submit mta ~recipient:(Services.Setup.user_name s "alice")
        ~subject:"good" ~body:"x";
      Services.Mta.submit mta ~recipient:(Services.Setup.user_name s "mallory")
        ~subject:"bad" ~body:"y";
      Sim.Engine.sleep 5_000.0;
      check_int "one delivered" 1 (Services.Mta.delivered mta);
      (match Services.Mta.bounces mta with
      | [ (recipient, _) ] ->
          check_bool "mallory bounced" true
            (String.length recipient.Hns.Hns_name.name > 0)
      | l -> Alcotest.failf "expected one bounce, got %d" (List.length l));
      Services.Mta.stop mta)

let mta_gives_up_eventually () =
  with_services (fun s inst hns ->
      let mta =
        Services.Mta.create hns ~from:"mta@hcs" ~retry_interval_ms:10_000.0
          ~max_attempts:3 ()
      in
      Services.Mta.start mta;
      Services.Mailbox_server.stop inst.Services.Setup.mail_annex;
      Services.Mta.submit mta ~recipient:(Services.Setup.user_name s "dave")
        ~subject:"doomed" ~body:"z";
      Sim.Engine.sleep 120_000.0;
      check_int "bounced after max attempts" 1 (List.length (Services.Mta.bounces mta));
      check_int "nothing delivered" 0 (Services.Mta.delivered mta);
      Services.Mailbox_server.start inst.Services.Setup.mail_annex;
      Services.Mta.stop mta)

let mta_cases =
  [
    Alcotest.test_case "mta delivers" `Quick mta_delivers_queued_mail;
    Alcotest.test_case "mta retries outage" `Quick mta_retries_through_outage;
    Alcotest.test_case "mta bounces" `Quick mta_bounces_unknown_user;
    Alcotest.test_case "mta gives up" `Quick mta_gives_up_eventually;
  ]

let suite = suite @ mta_cases
