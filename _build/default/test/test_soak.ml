(* Whole-system soak: a mixed workload over virtual time must succeed
   completely and — because the simulator is deterministic — reproduce
   itself exactly run for run. *)

open Helpers

(* One mixed-workload run; returns (ok, failures, events, end_time,
   bytes). *)
let run_soak () =
  let scn = Workload.Scenario.build () in
  let failures = ref 0 and ok = ref 0 in
  Workload.Scenario.in_sim scn (fun () ->
      let _installed = Services.Setup.install scn in
      let rng = Sim.Rng.create ~seed:0x50AEL in
      let zipf = Workload.Zipf.create ~n:8 ~s:1.0 in
      let hosts = Array.of_list (Workload.Namegen.hosts ~count:8 ~zone:scn.zone) in
      let hns = Workload.Scenario.new_hns scn ~on:scn.client_stack in
      let filing = Services.Filing.create hns in
      let mail = Services.Mail.create hns ~from:"soak@hcs" in
      for _ = 1 to 60 do
        Sim.Engine.sleep (Sim.Rng.float rng 10_000.0);
        let succeeded =
          match Sim.Rng.int rng 4 with
          | 0 ->
              let host = hosts.(Workload.Zipf.sample zipf rng) in
              (match
                 Hns.Client.resolve hns ~query_class:Hns.Query_class.host_address
                   ~payload_ty:Hns.Nsm_intf.host_address_payload_ty
                   (Hns.Hns_name.make ~context:scn.bind_context ~name:host)
               with
              | Ok (Some _) -> true
              | _ -> false)
          | 1 ->
              Result.is_ok
                (Services.Filing.fetch filing (Services.Setup.unix_file_name scn "todo"))
          | 2 ->
              Result.is_ok
                (Services.Mail.send mail
                   ~recipient:(Services.Setup.user_name scn "alice")
                   ~subject:"s" ~body:"b")
          | _ -> (
              match
                Hns.Client.resolve hns ~query_class:Hns.Query_class.hrpc_binding
                  ~payload_ty:Hns.Nsm_intf.binding_payload_ty ~service:scn.service_name
                  (Hns.Hns_name.make ~context:scn.bind_context ~name:scn.service_host)
              with
              | Ok (Some _) -> true
              | _ -> false)
        in
        if succeeded then incr ok else incr failures
      done);
  ( !ok,
    !failures,
    Sim.Engine.events_executed scn.engine,
    Sim.Engine.now scn.engine,
    Transport.Netstack.bytes_sent scn.net )

let soak_no_failures () =
  let ok, failures, _, _, _ = run_soak () in
  check_int "all succeed" 60 ok;
  check_int "no failures" 0 failures

let soak_reproducible () =
  let _, _, e1, t1, b1 = run_soak () in
  let _, _, e2, t2, b2 = run_soak () in
  check_int "same event count" e1 e2;
  check_bool "same end time" true (t1 = t2);
  check_int "same bytes on the wire" b1 b2

let suite =
  [
    Alcotest.test_case "soak: no failures" `Slow soak_no_failures;
    Alcotest.test_case "soak: reproducible" `Slow soak_reproducible;
  ]
