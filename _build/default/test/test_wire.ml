(* Tests for the data-representation substrate: byte buffers, XDR,
   Courier, IDL conformance, and the generic marshaller. *)

open Helpers

(* --- Bytebuf --- *)

let bytebuf_roundtrip () =
  let wr = Wire.Bytebuf.Wr.create () in
  Wire.Bytebuf.Wr.u8 wr 0xAB;
  Wire.Bytebuf.Wr.u16 wr 0xCDEF;
  Wire.Bytebuf.Wr.u32 wr 0xDEADBEEFl;
  Wire.Bytebuf.Wr.u64 wr 0x0123456789ABCDEFL;
  Wire.Bytebuf.Wr.bytes wr "xyz";
  Wire.Bytebuf.Wr.pad_to wr 4;
  let rd = Wire.Bytebuf.Rd.of_string (Wire.Bytebuf.Wr.contents wr) in
  check_int "u8" 0xAB (Wire.Bytebuf.Rd.u8 rd);
  check_int "u16" 0xCDEF (Wire.Bytebuf.Rd.u16 rd);
  check_bool "u32" true (Wire.Bytebuf.Rd.u32 rd = 0xDEADBEEFl);
  check_bool "u64" true (Wire.Bytebuf.Rd.u64 rd = 0x0123456789ABCDEFL);
  check_string "bytes" "xyz" (Wire.Bytebuf.Rd.bytes rd 3);
  Wire.Bytebuf.Rd.align rd 4;
  check_bool "aligned to end" true (Wire.Bytebuf.Rd.at_end rd)

let bytebuf_truncated () =
  let rd = Wire.Bytebuf.Rd.of_string "\001" in
  match Wire.Bytebuf.Rd.u32 rd with
  | exception Wire.Bytebuf.Truncated -> ()
  | _ -> Alcotest.fail "short read should raise Truncated"

let bytebuf_sub_isolation () =
  let rd = Wire.Bytebuf.Rd.of_string "abcdef" in
  let sub = Wire.Bytebuf.Rd.sub rd ~len:3 in
  check_string "sub reads own window" "abc" (Wire.Bytebuf.Rd.bytes sub 3);
  check_bool "sub exhausted" true (Wire.Bytebuf.Rd.at_end sub);
  check_string "parent advanced" "def" (Wire.Bytebuf.Rd.bytes rd 3)

(* --- (ty, value) generator for property tests --- *)

let rec gen_ty depth : Wire.Idl.ty QCheck.Gen.t =
  let open QCheck.Gen in
  let leaf =
    oneofl
      [
        Wire.Idl.T_void;
        Wire.Idl.T_int;
        Wire.Idl.T_uint;
        Wire.Idl.T_hyper;
        Wire.Idl.T_bool;
        Wire.Idl.T_string;
        Wire.Idl.T_opaque;
        Wire.Idl.T_enum [ "a"; "b"; "c" ];
      ]
  in
  if depth <= 0 then leaf
  else
    frequency
      [
        (4, leaf);
        (1, map (fun t -> Wire.Idl.T_array t) (gen_ty (depth - 1)));
        (1, map (fun t -> Wire.Idl.T_opt t) (gen_ty (depth - 1)));
        ( 1,
          map2
            (fun a b -> Wire.Idl.T_struct [ ("f0", a); ("f1", b) ])
            (gen_ty (depth - 1))
            (gen_ty (depth - 1)) );
        ( 1,
          map2
            (fun a b -> Wire.Idl.T_union ([ (0, a); (3, b) ], None))
            (gen_ty (depth - 1))
            (gen_ty (depth - 1)) );
      ]

let printable_string =
  QCheck.Gen.(map (String.concat "") (list_size (int_bound 12) (map (String.make 1) (char_range 'a' 'z'))))

let rec gen_value (ty : Wire.Idl.ty) : Wire.Value.t QCheck.Gen.t =
  let open QCheck.Gen in
  match ty with
  | T_void -> return Wire.Value.Void
  | T_int -> map (fun i -> Wire.Value.Int (Int32.of_int i)) int
  | T_uint -> map (fun i -> Wire.Value.Uint (Int32.of_int i)) int
  | T_hyper -> map (fun i -> Wire.Value.Hyper (Int64.of_int i)) int
  | T_bool -> map (fun b -> Wire.Value.Bool b) bool
  | T_string -> map (fun s -> Wire.Value.Str s) printable_string
  | T_opaque -> map (fun s -> Wire.Value.Opaque s) printable_string
  | T_enum labels -> map (fun i -> Wire.Value.Enum i) (int_bound (List.length labels - 1))
  | T_array elt ->
      map (fun vs -> Wire.Value.Array vs) (list_size (int_bound 4) (gen_value elt))
  | T_struct fields ->
      let rec gen_fields = function
        | [] -> return []
        | (name, fty) :: rest ->
            gen_value fty >>= fun v ->
            gen_fields rest >>= fun vs -> return ((name, v) :: vs)
      in
      map (fun fs -> Wire.Value.Struct fs) (gen_fields fields)
  | T_union (arms, _) ->
      oneofl arms >>= fun (d, aty) -> map (fun v -> Wire.Value.Union (d, v)) (gen_value aty)
  | T_opt elt ->
      bool >>= fun present ->
      if present then map (fun v -> Wire.Value.Opt (Some v)) (gen_value elt)
      else return (Wire.Value.Opt None)

let gen_ty_value =
  QCheck.Gen.(gen_ty 3 >>= fun ty -> gen_value ty >>= fun v -> return (ty, v))

let arb_ty_value =
  QCheck.make gen_ty_value ~print:(fun (ty, v) ->
      Format.asprintf "%a / %a" Wire.Idl.pp ty Wire.Value.pp v)

(* --- properties --- *)

let generated_conforms =
  QCheck.Test.make ~name:"generated values conform to their type" ~count:300
    arb_ty_value
    (fun (ty, v) -> Wire.Idl.conforms ty v)

let xdr_roundtrip =
  QCheck.Test.make ~name:"XDR roundtrip" ~count:300 arb_ty_value (fun (ty, v) ->
      Wire.Value.equal v (Wire.Xdr.of_string ty (Wire.Xdr.to_string ty v)))

let xdr_alignment =
  QCheck.Test.make ~name:"XDR encodings are 4-byte multiples" ~count:300 arb_ty_value
    (fun (ty, v) -> String.length (Wire.Xdr.to_string ty v) mod 4 = 0)

let courier_roundtrip =
  QCheck.Test.make ~name:"Courier roundtrip" ~count:300 arb_ty_value (fun (ty, v) ->
      Wire.Value.equal v (Wire.Courier.of_string ty (Wire.Courier.to_string ty v)))

let courier_alignment =
  QCheck.Test.make ~name:"Courier encodings are word multiples" ~count:300 arb_ty_value
    (fun (ty, v) -> String.length (Wire.Courier.to_string ty v) mod 2 = 0)

let generic_matches_direct_xdr =
  QCheck.Test.make ~name:"generic marshal = direct XDR bytes" ~count:300 arb_ty_value
    (fun (ty, v) ->
      String.equal
        (Wire.Generic_marshal.marshal Wire.Data_rep.Xdr ty v)
        (Wire.Xdr.to_string ty v))

let generic_matches_direct_courier =
  QCheck.Test.make ~name:"generic marshal = direct Courier bytes" ~count:300
    arb_ty_value
    (fun (ty, v) ->
      String.equal
        (Wire.Generic_marshal.marshal Wire.Data_rep.Courier ty v)
        (Wire.Courier.to_string ty v))

let generic_unmarshal_roundtrip =
  QCheck.Test.make ~name:"generic unmarshal roundtrip" ~count:300 arb_ty_value
    (fun (ty, v) ->
      Wire.Value.equal v
        (Wire.Generic_marshal.unmarshal Wire.Data_rep.Xdr ty
           (Wire.Generic_marshal.marshal Wire.Data_rep.Xdr ty v)))

let encoded_size_consistent =
  QCheck.Test.make ~name:"encoded_size equals encoding length" ~count:200 arb_ty_value
    (fun (ty, v) ->
      Wire.Xdr.encoded_size ty v = String.length (Wire.Xdr.to_string ty v)
      && Wire.Courier.encoded_size ty v = String.length (Wire.Courier.to_string ty v))

(* --- directed cases --- *)

let xdr_wire_format () =
  (* Spot-check actual bytes against RFC 1014 rules. *)
  check_string "int" "\x00\x00\x00\x2a" (Wire.Xdr.to_string Wire.Idl.T_int (Wire.Value.Int 42l));
  check_string "bool true" "\x00\x00\x00\x01" (Wire.Xdr.to_string Wire.Idl.T_bool (Wire.Value.Bool true));
  check_string "string pads to 4" "\x00\x00\x00\x05hello\x00\x00\x00"
    (Wire.Xdr.to_string Wire.Idl.T_string (Wire.Value.Str "hello"));
  check_string "optional none" "\x00\x00\x00\x00"
    (Wire.Xdr.to_string (Wire.Idl.T_opt Wire.Idl.T_int) (Wire.Value.Opt None))

let courier_wire_format () =
  check_string "bool is one word" "\x00\x01"
    (Wire.Courier.to_string Wire.Idl.T_bool (Wire.Value.Bool true));
  check_string "string pads to 2" "\x00\x03abc\x00"
    (Wire.Courier.to_string Wire.Idl.T_string (Wire.Value.Str "abc"));
  check_string "enum is one word" "\x00\x02"
    (Wire.Courier.to_string (Wire.Idl.T_enum [ "x"; "y"; "z" ]) (Wire.Value.Enum 2))

let xdr_rejects_garbage () =
  (match Wire.Xdr.of_string Wire.Idl.T_bool "\x00\x00\x00\x07" with
  | exception Wire.Xdr.Decode_error _ -> ()
  | _ -> Alcotest.fail "bad bool should fail");
  match Wire.Xdr.of_string Wire.Idl.T_int "\x00\x00\x00\x01\x02" with
  | exception Wire.Xdr.Decode_error _ -> ()
  | _ -> Alcotest.fail "trailing bytes should fail"

let idl_conformance_negative () =
  check_bool "int vs string" false (Wire.Idl.conforms Wire.Idl.T_int (Wire.Value.Str "x"));
  check_bool "enum out of range" false
    (Wire.Idl.conforms (Wire.Idl.T_enum [ "a" ]) (Wire.Value.Enum 1));
  check_bool "struct field name mismatch" false
    (Wire.Idl.conforms
       (Wire.Idl.T_struct [ ("a", Wire.Idl.T_int) ])
       (Wire.Value.Struct [ ("b", Wire.Value.Int 0l) ]));
  check_bool "union unknown arm" false
    (Wire.Idl.conforms
       (Wire.Idl.T_union ([ (0, Wire.Idl.T_int) ], None))
       (Wire.Value.Union (5, Wire.Value.Int 0l)))

let idl_default_value_conforms =
  QCheck.Test.make ~name:"default_value conforms" ~count:100
    (QCheck.make (gen_ty 3) ~print:(Format.asprintf "%a" Wire.Idl.pp))
    (fun ty -> Wire.Idl.conforms ty (Wire.Idl.default_value ty))

let value_accessors () =
  let v = Wire.Value.Struct [ ("x", Wire.Value.int 5); ("s", Wire.Value.str "hi") ] in
  check_int "field int" 5 (Wire.Value.get_int (Wire.Value.field v "x"));
  check_string "field str" "hi" (Wire.Value.get_str (Wire.Value.field v "s"));
  (match Wire.Value.field v "missing" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "missing field should raise");
  check_int "node_count" 3 (Wire.Value.node_count v)

let cost_model_linear () =
  let m = { Wire.Generic_marshal.per_call_ms = 2.0; per_node_ms = 0.5 } in
  check_float_near "cost" 3.5 (Wire.Generic_marshal.cost m (Wire.Value.Struct [ ("a", Wire.Value.int 1); ("b", Wire.Value.int 2) ]))

let data_rep_names () =
  check_bool "xdr roundtrip" true
    (Wire.Data_rep.of_name (Wire.Data_rep.name Wire.Data_rep.Xdr) = Some Wire.Data_rep.Xdr);
  check_bool "courier roundtrip" true
    (Wire.Data_rep.of_name "courier" = Some Wire.Data_rep.Courier);
  check_bool "unknown" true (Wire.Data_rep.of_name "ascii" = None);
  check_int "xdr alignment" 4 (Wire.Data_rep.alignment Wire.Data_rep.Xdr);
  check_int "courier alignment" 2 (Wire.Data_rep.alignment Wire.Data_rep.Courier)

let suite =
  [
    Alcotest.test_case "bytebuf roundtrip" `Quick bytebuf_roundtrip;
    Alcotest.test_case "bytebuf truncated" `Quick bytebuf_truncated;
    Alcotest.test_case "bytebuf sub isolation" `Quick bytebuf_sub_isolation;
    qtest generated_conforms;
    qtest xdr_roundtrip;
    qtest xdr_alignment;
    qtest courier_roundtrip;
    qtest courier_alignment;
    qtest generic_matches_direct_xdr;
    qtest generic_matches_direct_courier;
    qtest generic_unmarshal_roundtrip;
    qtest encoded_size_consistent;
    Alcotest.test_case "XDR wire format" `Quick xdr_wire_format;
    Alcotest.test_case "Courier wire format" `Quick courier_wire_format;
    Alcotest.test_case "XDR rejects garbage" `Quick xdr_rejects_garbage;
    Alcotest.test_case "IDL conformance negatives" `Quick idl_conformance_negative;
    qtest idl_default_value_conforms;
    Alcotest.test_case "value accessors" `Quick value_accessors;
    Alcotest.test_case "cost model" `Quick cost_model_linear;
    Alcotest.test_case "data rep names" `Quick data_rep_names;
  ]
