(* Tests for the workload library: Zipf sampling, name generation, the
   experiment helpers, and calibration sanity. *)

open Helpers

let zipf_bounds =
  QCheck.Test.make ~name:"zipf samples in range" ~count:300
    QCheck.(pair (int_range 1 50) (float_range 0.0 3.0))
    (fun (n, s) ->
      let z = Workload.Zipf.create ~n ~s in
      let rng = Sim.Rng.create ~seed:1L in
      let ok = ref true in
      for _ = 1 to 50 do
        let k = Workload.Zipf.sample z rng in
        if k < 0 || k >= n then ok := false
      done;
      !ok)

let zipf_pmf_sums_to_one () =
  let z = Workload.Zipf.create ~n:20 ~s:1.2 in
  let total = ref 0.0 in
  for k = 0 to 19 do
    total := !total +. Workload.Zipf.pmf z k
  done;
  check_bool "pmf sums to 1" true (Float.abs (!total -. 1.0) < 1e-9)

let zipf_skew_orders_ranks () =
  let z = Workload.Zipf.create ~n:10 ~s:1.5 in
  check_bool "rank 0 most likely" true (Workload.Zipf.pmf z 0 > Workload.Zipf.pmf z 1);
  check_bool "monotone" true (Workload.Zipf.pmf z 1 > Workload.Zipf.pmf z 9)

let zipf_uniform_when_s_zero () =
  let z = Workload.Zipf.create ~n:4 ~s:0.0 in
  for k = 0 to 3 do
    check_bool "uniform pmf" true (Float.abs (Workload.Zipf.pmf z k -. 0.25) < 1e-9)
  done

let zipf_skew_concentrates () =
  let count_distinct s =
    let z = Workload.Zipf.create ~n:100 ~s in
    let rng = Sim.Rng.create ~seed:5L in
    let seen = Hashtbl.create 16 in
    for _ = 1 to 200 do
      Hashtbl.replace seen (Workload.Zipf.sample z rng) ()
    done;
    Hashtbl.length seen
  in
  check_bool "higher skew -> fewer distinct names" true
    (count_distinct 2.0 < count_distinct 0.2)

let namegen_shapes () =
  let hosts = Workload.Namegen.hosts ~count:3 ~zone:"z.edu" in
  check (Alcotest.list Alcotest.string) "hosts" [ "host00.z.edu"; "host01.z.edu"; "host02.z.edu" ] hosts;
  let svcs = Workload.Namegen.services ~count:2 ~base:100 in
  check_bool "services numbered" true (svcs = [ ("svc00", (100, 1)); ("svc01", (101, 1)) ]);
  check_int "words" 5 (List.length (Workload.Namegen.words ~count:5 ~seed:3L))

let experiment_cells () =
  let c = Workload.Experiment.cell ~label:"x" ~paper_ms:100.0 ~measured_ms:110.0 in
  check_bool "rel err" true (Float.abs (Workload.Experiment.relative_error c -. 0.1) < 1e-9);
  check_bool "within 15%" true (Workload.Experiment.within ~tolerance:0.15 c);
  check_bool "not within 5%" false (Workload.Experiment.within ~tolerance:0.05 c)

let calib_hand_marshal_matches_paper () =
  List.iter
    (fun (rr_count, paper) ->
      let ours = Workload.Calib.hand_marshal_ms ~rr_count in
      check_bool "within 1%" true (Float.abs (ours -. paper) /. paper < 0.01)
    )
    Workload.Calib.Paper.hand_marshal

let calib_generated_cost_matches_table_3_2 () =
  (* 1 RR ~ 6 value nodes, 6 RRs ~ 31: the fit must land on the
     marshalled-minus-demarshalled deltas. *)
  let cost nodes =
    Workload.Calib.generated_cost.Wire.Generic_marshal.per_call_ms
    +. (Workload.Calib.generated_cost.Wire.Generic_marshal.per_node_ms *. float_of_int nodes)
  in
  check_bool "1 RR demarshal ~10.28" true (Float.abs (cost 6 -. 10.28) < 0.1);
  check_bool "6 RR demarshal ~24.95" true (Float.abs (cost 31 -. 24.95) < 0.1)

let repeat_timed_collects () =
  let w = make_world ~hosts:1 () in
  let stats =
    in_sim w (fun () ->
        Workload.Experiment.repeat_timed ~trials:4 (fun () -> Sim.Engine.sleep 10.0))
  in
  check_int "four trials" 4 (Sim.Stats.count stats);
  check_float_near "each 10ms" 10.0 (Sim.Stats.mean stats)

let suite =
  [
    qtest zipf_bounds;
    Alcotest.test_case "zipf pmf sums" `Quick zipf_pmf_sums_to_one;
    Alcotest.test_case "zipf skew order" `Quick zipf_skew_orders_ranks;
    Alcotest.test_case "zipf uniform" `Quick zipf_uniform_when_s_zero;
    Alcotest.test_case "zipf concentration" `Quick zipf_skew_concentrates;
    Alcotest.test_case "namegen" `Quick namegen_shapes;
    Alcotest.test_case "experiment cells" `Quick experiment_cells;
    Alcotest.test_case "calib hand marshal" `Quick calib_hand_marshal_matches_paper;
    Alcotest.test_case "calib generated cost" `Quick calib_generated_cost_matches_table_3_2;
    Alcotest.test_case "repeat_timed" `Quick repeat_timed_collects;
  ]
