(* Tests for the YP (NIS) name service and its federation into the
   HNS — the third system type, added without touching anything
   existing. *)

open Helpers

let scn = lazy (Workload.Scenario.build ())

(* One YP domain, served from the agent host, federated as "ee-yp".
   Shared lazily: registration mutates the scenario's meta database. *)
let yp_world =
  lazy
    (let s = Lazy.force scn in
     Workload.Scenario.in_sim s (fun () ->
         let ypserv =
           Yp.Yp_server.create s.agent_stack ~domain:"ee.washington.edu"
             ~lookup_ms:14.0 ()
         in
         List.iter
           (fun (host, addr) ->
             Yp.Yp_server.set ypserv ~map:Yp.Yp_proto.map_hosts_byname ~key:host
               (addr ^ " " ^ host))
           [
             ("sparcstation1", "10.1.0.1");
             ("sparcstation2", "10.1.0.2");
             ("laserwriter", "10.1.0.9");
           ];
         Yp.Yp_server.start ypserv;
         (* Federate: NSMs on the NSM host, registrations in the meta db. *)
         let ha =
           Nsm.Hostaddr_nsm_yp.create s.nsm_stack ~yp_server:(Yp.Yp_server.addr ypserv)
             ~domain:"ee.washington.edu" ~per_query_ms:Workload.Calib.nsm_per_query_ms
             ()
         in
         let ha_server =
           Nsm.Hostaddr_nsm_yp.serve ha
             ~prog:(Hns.Nsm_intf.nsm_prog_base + 30)
             ~service_overhead_ms:Workload.Calib.nsm_service_overhead_ms ()
         in
         Hrpc.Server.start ha_server;
         let admin_meta =
           Hns.Meta_client.create s.meta_stack
             ~meta_server:(Dns.Server.addr s.meta_bind)
             ~cache:(Hns.Cache.create ~mode:Hns.Cache.Demarshalled ()) ()
         in
         let host_of stack =
           Printf.sprintf "%s.%s" (Transport.Netstack.host stack).Sim.Topology.hostname
             s.zone
         in
         let reg = function
           | Ok () -> ()
           | Error e -> Alcotest.failf "setup failed: %s" (Hns.Errors.to_string e)
         in
         reg
           (Hns.Admin.register_name_service admin_meta ~name:"EE-YP"
              {
                Hns.Meta_schema.ns_type = "yp";
                ns_host = host_of s.agent_stack;
                ns_host_context = s.bind_context;
                ns_port = Yp.Yp_server.port ypserv;
              });
         reg (Hns.Admin.register_context admin_meta ~context:"ee-yp" ~ns:"EE-YP");
         reg
           (Hns.Admin.register_nsm_server admin_meta ~name:"ha-yp" ~ns:"EE-YP"
              ~query_class:Hns.Query_class.host_address ~host:(host_of s.nsm_stack)
              ~host_context:s.bind_context
              (Hrpc.Server.binding ha_server));
         (s, ypserv)))

(* --- the YP protocol itself --- *)

let yp_match_and_domain () =
  let s, ypserv = Lazy.force yp_world in
  Workload.Scenario.in_sim s (fun () ->
      let c =
        Yp.Yp_client.create s.client_stack ~server:(Yp.Yp_server.addr ypserv)
          ~domain:"ee.washington.edu"
      in
      check_bool "domain served" true (get_ok ~msg:"domain" (Yp.Yp_client.check_domain c));
      (match Yp.Yp_client.match_ c ~map:Yp.Yp_proto.map_hosts_byname "sparcstation1" with
      | Ok (Some v) -> check_string "entry" "10.1.0.1 sparcstation1" v
      | _ -> Alcotest.fail "match should find the host");
      match Yp.Yp_client.match_ c ~map:Yp.Yp_proto.map_hosts_byname "vaxstation" with
      | Ok None -> ()
      | _ -> Alcotest.fail "unknown key should be unbound")

let yp_wrong_domain_unbound () =
  let s, ypserv = Lazy.force yp_world in
  Workload.Scenario.in_sim s (fun () ->
      let c =
        Yp.Yp_client.create s.client_stack ~server:(Yp.Yp_server.addr ypserv)
          ~domain:"other.domain"
      in
      check_bool "domain refused" false
        (get_ok ~msg:"domain" (Yp.Yp_client.check_domain c));
      match Yp.Yp_client.match_ c ~map:Yp.Yp_proto.map_hosts_byname "sparcstation1" with
      | Ok None -> ()
      | _ -> Alcotest.fail "wrong domain must not answer")

let yp_enumeration () =
  let s, ypserv = Lazy.force yp_world in
  Workload.Scenario.in_sim s (fun () ->
      let c =
        Yp.Yp_client.create s.client_stack ~server:(Yp.Yp_server.addr ypserv)
          ~domain:"ee.washington.edu"
      in
      let entries = get_ok ~msg:"all" (Yp.Yp_client.all c ~map:Yp.Yp_proto.map_hosts_byname) in
      check_int "three hosts" 3 (List.length entries);
      check_string "insertion order" "sparcstation1" (fst (List.hd entries)))

let yp_update_visible () =
  (* direct access again: a native tool edits the YP map; the next
     MATCH sees it with no reregistration anywhere. *)
  let s, ypserv = Lazy.force yp_world in
  Workload.Scenario.in_sim s (fun () ->
      Yp.Yp_server.set ypserv ~map:Yp.Yp_proto.map_hosts_byname ~key:"newsun"
        "10.1.0.42 newsun";
      let c =
        Yp.Yp_client.create s.client_stack ~server:(Yp.Yp_server.addr ypserv)
          ~domain:"ee.washington.edu"
      in
      match Yp.Yp_client.match_ c ~map:Yp.Yp_proto.map_hosts_byname "newsun" with
      | Ok (Some _) -> Yp.Yp_server.remove ypserv ~map:Yp.Yp_proto.map_hosts_byname ~key:"newsun"
      | _ -> Alcotest.fail "native update must be visible")

(* --- federation through the HNS --- *)

let yp_context_resolves_through_hns () =
  let s, _ = Lazy.force yp_world in
  let r =
    Workload.Scenario.in_sim s (fun () ->
        let hns = Workload.Scenario.new_hns s ~on:s.client_stack in
        get_ok ~msg:"resolve"
          (Hns.Client.resolve hns ~query_class:Hns.Query_class.host_address
             ~payload_ty:Hns.Nsm_intf.host_address_payload_ty
             (Hns.Hns_name.make ~context:"ee-yp" ~name:"laserwriter")))
  in
  check_bool "YP-backed address through the HNS" true
    (r = Some (Wire.Value.Uint 0x0A010009l))

let yp_nsm_identical_interface () =
  (* The three host-address NSMs (BIND, CH, YP) answer the same query
     class through the same client code path. *)
  let s, _ = Lazy.force yp_world in
  let answers =
    Workload.Scenario.in_sim s (fun () ->
        let hns = Workload.Scenario.new_hns s ~on:s.client_stack in
        List.map
          (fun (context, name) ->
            match
              Hns.Client.resolve hns ~query_class:Hns.Query_class.host_address
                ~payload_ty:Hns.Nsm_intf.host_address_payload_ty
                (Hns.Hns_name.make ~context ~name)
            with
            | Ok (Some (Wire.Value.Uint _)) -> true
            | _ -> false)
          [
            (s.bind_context, s.service_host);
            (s.ch_context, "dandelion");
            ("ee-yp", "sparcstation2");
          ])
  in
  check_bool "all three system types answer" true (List.for_all Fun.id answers)

let yp_binding_nsm_full_import () =
  (* Stand a Sun RPC service on a "YP host" and import it through the
     YP binding NSM: hosts.byname + portmapper. *)
  let s, ypserv = Lazy.force yp_world in
  Workload.Scenario.in_sim s (fun () ->
      (* The YP host is really the agent stack; alias it in the map. *)
      Yp.Yp_server.set ypserv ~map:Yp.Yp_proto.map_hosts_byname ~key:"sunfs"
        (Transport.Address.ip_to_string (Transport.Netstack.ip s.agent_stack) ^ " sunfs");
      let pm =
        Rpc.Portmap.start
          ~service_overhead_ms:Workload.Calib.portmapper_service_overhead_ms
          s.agent_stack
      in
      let target = Rpc.Sunrpc.create s.agent_stack ~port:3300 () in
      let sign = Wire.Idl.signature ~arg:Wire.Idl.T_string ~res:Wire.Idl.T_string in
      Rpc.Sunrpc.register target ~prog:200777 ~vers:1 ~procnum:1 ~sign (fun v -> v);
      Rpc.Sunrpc.start target;
      Rpc.Portmap.set pm ~prog:200777 ~vers:1 ~protocol:Rpc.Portmap.P_udp ~port:3300;
      let nsm =
        Nsm.Binding_nsm_yp.create s.client_stack ~yp_server:(Yp.Yp_server.addr ypserv)
          ~domain:"ee.washington.edu"
          ~services:[ ("sunfsd", (200777, 1)) ]
          ()
      in
      match
        Hns.Nsm_intf.call_linked (Nsm.Binding_nsm_yp.impl nsm) ~service:"sunfsd"
          ~hns_name:(Hns.Hns_name.make ~context:"ee-yp" ~name:"sunfs")
      with
      | Ok (Some payload) -> (
          let binding = Hrpc.Binding.of_value payload in
          check_int "right port" 3300 binding.Hrpc.Binding.server.Transport.Address.port;
          (* and the binding works *)
          match
            Hrpc.Client.call s.client_stack binding ~procnum:1 ~sign
              (Wire.Value.Str "via YP")
          with
          | Ok (Wire.Value.Str "via YP") -> ()
          | _ -> Alcotest.fail "imported binding should work")
      | Ok None -> Alcotest.fail "service should be found"
      | Error e -> Alcotest.failf "YP binding NSM failed: %s" (Hns.Errors.to_string e))

let suite =
  [
    Alcotest.test_case "ypmatch + domain" `Quick yp_match_and_domain;
    Alcotest.test_case "wrong domain" `Quick yp_wrong_domain_unbound;
    Alcotest.test_case "map enumeration" `Quick yp_enumeration;
    Alcotest.test_case "native update visible" `Quick yp_update_visible;
    Alcotest.test_case "resolve via HNS" `Quick yp_context_resolves_through_hns;
    Alcotest.test_case "three backends, one interface" `Quick yp_nsm_identical_interface;
    Alcotest.test_case "YP binding NSM import" `Quick yp_binding_nsm_full_import;
  ]
