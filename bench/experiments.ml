(* The experiment implementations behind every table and figure of the
   paper's evaluation. Each function builds (or receives) a calibrated
   scenario, exercises the system on the virtual clock, and prints a
   paper-vs-measured table. See DESIGN.md section 4 for the index. *)

module S = Workload.Scenario
module C = Workload.Calib
module E = Workload.Experiment

let import_name (scn : S.t) =
  Hns.Hns_name.make ~context:scn.bind_context ~name:scn.service_host

(* [service] defaults to the canonical import target; the JSON rows
   pass the scenario's varied-length alternates so repeated iterations
   sample genuinely different requests. *)
let do_import ?service (scn : S.t) (p : S.parties) arrangement =
  let service = Option.value service ~default:scn.service_name in
  match Hns.Import.import p.env arrangement ~service (import_name scn) with
  | Ok b ->
      if not (Hrpc.Binding.equal b scn.expected_sun_binding) then
        failwith "import returned the wrong binding"
  | Error e -> failwith ("import failed: " ^ Hns.Errors.to_string e)

(* --- Table 3.1 ------------------------------------------------------ *)

let measure_table_3_1_row ?service scn arrangement =
  S.in_sim scn (fun () ->
      let p = S.arrange scn arrangement in
      S.flush_parties p;
      let (), miss = S.timed (fun () -> do_import ?service scn p arrangement) in
      Hns.Cache.flush p.nsm_cache;
      let (), hns_hit = S.timed (fun () -> do_import ?service scn p arrangement) in
      let (), both_hit = S.timed (fun () -> do_import ?service scn p arrangement) in
      S.stop_parties p;
      (miss, hns_hit, both_hit))

let table_3_1 () =
  let scn = S.build () in
  let rows =
    List.map2
      (fun arrangement (label, pa, pb, pc) ->
        let a, b, c = measure_table_3_1_row scn arrangement in
        [
          label;
          Printf.sprintf "%.0f/%.0f" a pa;
          Printf.sprintf "%.0f/%.0f" b pb;
          Printf.sprintf "%.0f/%.0f" c pc;
        ])
      Hns.Import.all_arrangements C.Paper.table_3_1
  in
  E.print_table
    ~title:
      "Table 3.1: HRPC binding by colocation arrangement (ours/paper, msec)\n\
      \  columns: A = cache miss, B = HNS cache hit, C = HNS and NSM cache hit"
    ~header:[ "arrangement"; "A miss"; "B HNS hit"; "C both hit" ]
    rows

(* --- Table 3.2 ------------------------------------------------------ *)

(* BIND lookups through an HNS-style cache, marshalled vs demarshalled,
   1 vs 6 resource records per name (the paper's cache-speed table). *)
let rr_list_ty =
  Wire.Idl.T_array
    (Wire.Idl.T_struct
       [
         ("name", Wire.Idl.T_string);
         ("a", Wire.Idl.T_uint);
         ("ttl", Wire.Idl.T_int);
         ("cls", Wire.Idl.T_int);
       ])

let rrs_to_value rrs =
  Wire.Value.Array
    (List.map
       (fun (rr : Dns.Rr.t) ->
         Wire.Value.Struct
           [
             ("name", Wire.Value.Str (Dns.Name.to_string rr.name));
             ("a", Wire.Value.Uint (match rr.rdata with Dns.Rr.A ip -> ip | _ -> 0l));
             ("ttl", Wire.Value.Int rr.ttl);
             ("cls", Wire.Value.int 1);
           ])
       rrs)

type t32_world = {
  w_engine : Sim.Engine.t;
  client : Transport.Netstack.stack;
  server_addr : Transport.Address.t;
}

let t32_world () =
  let engine = Sim.Engine.create () in
  let topo =
    Sim.Topology.create ~default_latency_ms:C.ethernet_latency_ms
      ~default_per_byte_ms:C.ethernet_per_byte_ms ~loopback_ms:C.loopback_ms ()
  in
  let net = Transport.Netstack.create engine topo in
  let s0 = Transport.Netstack.attach net (Sim.Topology.add_host topo "bindhost") in
  let s1 = Transport.Netstack.attach net (Sim.Topology.add_host topo "client") in
  let records name n =
    List.init n (fun i ->
        Dns.Rr.make (Dns.Name.of_string name) (Dns.Rr.A (Int32.of_int (0x0A000100 + i))))
  in
  let zone =
    Dns.Zone.simple ~origin:(Dns.Name.of_string "z")
      (records "one.z" 1 @ records "six.z" 6)
  in
  (* The paper's cache experiment ran against a colocated BIND, so the
     client shares the server's host (loopback). *)
  let server =
    Dns.Server.create s0 ~service_overhead_ms:9.0 ~per_answer_ms:C.bind_per_answer_ms ()
  in
  Dns.Server.add_zone server zone;
  let result = ref None in
  Sim.Engine.spawn engine (fun () ->
      Dns.Server.start server;
      result := Some ());
  Sim.Engine.run engine;
  ignore !result;
  ignore s1;
  { w_engine = engine; client = s0; server_addr = Dns.Server.addr server }

let t32_measure world mode name =
  let result = ref None in
  Sim.Engine.spawn world.w_engine (fun () ->
      let cache =
        Hns.Cache.create ~mode ~generated_cost:C.generated_cost
          ~hit_overhead_ms:C.cache_hit_overhead_ms
          ~hit_per_node_ms:C.cache_hit_per_node_ms ~insert_overhead_ms:C.cache_insert_ms
          ()
      in
      let resolver =
        Dns.Resolver.create world.client ~servers:[ world.server_addr ]
          ~enable_cache:false ()
      in
      let dname = Dns.Name.of_string name in
      let lookup () =
        match Hns.Cache.find cache ~key:name ~ty:rr_list_ty with
        | Some _ -> ()
        | None -> (
            match Dns.Resolver.query resolver dname Dns.Rr.T_a with
            | Ok rrs ->
                let v = rrs_to_value rrs in
                Sim.Engine.sleep (Wire.Generic_marshal.cost C.generated_cost v);
                Hns.Cache.insert cache ~key:name ~ty:rr_list_ty v
            | Error e ->
                failwith (Format.asprintf "lookup failed: %a" Dns.Resolver.pp_error e))
      in
      let (), miss = S.timed lookup in
      let (), hit = S.timed lookup in
      result := Some (miss, hit));
  Sim.Engine.run world.w_engine;
  Option.get !result

let table_3_2 () =
  let world = t32_world () in
  let rows =
    List.map
      (fun (rr_count, p_miss, p_marsh, p_demarsh) ->
        let name = if rr_count = 1 then "one.z" else "six.z" in
        let miss, marshalled = t32_measure world Hns.Cache.Marshalled name in
        let _, demarshalled = t32_measure world Hns.Cache.Demarshalled name in
        [
          string_of_int rr_count;
          Printf.sprintf "%.2f/%.2f" miss p_miss;
          Printf.sprintf "%.2f/%.2f" marshalled p_marsh;
          Printf.sprintf "%.2f/%.2f" demarshalled p_demarsh;
        ])
      C.Paper.table_3_2
  in
  E.print_table
    ~title:"Table 3.2: marshalling costs on cache access speed (ours/paper, msec)"
    ~header:[ "RRs/name"; "cache miss"; "marshalled hit"; "demarshalled hit" ]
    rows;
  let hand =
    List.map
      (fun (n, paper) ->
        [ string_of_int n; Printf.sprintf "%.2f/%.2f" (C.hand_marshal_ms ~rr_count:n) paper ])
      C.Paper.hand_marshal
  in
  E.print_table
    ~title:"  (reference: hand-coded BIND marshalling, ours/paper, msec)"
    ~header:[ "RRs"; "hand marshal" ] hand

(* --- Figure 2.1 ----------------------------------------------------- *)

(* The query-processing walk-through: one query answered by the
   Clearinghouse, one by BIND, through the identical client interface.
   Reproduced as a traced message sequence. *)
let figure_2_1 () =
  let scn = S.build () in
  let steps = ref [] in
  let log fmt = Format.kasprintf (fun s -> steps := s :: !steps) fmt in
  S.in_sim scn (fun () ->
      let hns = S.new_hns scn ~on:scn.client_stack in
      let query label (name : Hns.Hns_name.t) =
        log "%s: client presents HNS name %s, query class %s" label
          (Hns.Hns_name.to_string name) Hns.Query_class.host_address;
        let t0 = Sim.Engine.time () in
        (match
           Hns.Client.find_nsm hns ~context:name.context
             ~query_class:Hns.Query_class.host_address
         with
        | Error e -> log "  FindNSM failed: %s" (Hns.Errors.to_string e)
        | Ok r ->
            log "  HNS maps context %S -> name service %S" name.context r.ns_name;
            log "  HNS designates NSM %S and returns its HRPC binding (%s)" r.nsm_name
              (Format.asprintf "%a" Hrpc.Binding.pp r.binding);
            (match
               Hns.Nsm_intf.call scn.client_stack (Hns.Nsm_intf.Remote r.binding)
                 ~payload_ty:Hns.Nsm_intf.host_address_payload_ty ~service:""
                 ~hns_name:name
             with
            | Ok (Some (Wire.Value.Uint ip)) ->
                log "  client calls the NSM; NSM interrogates %s and returns %s"
                  r.ns_name
                  (Transport.Address.ip_to_string ip)
            | Ok _ -> log "  NSM: name not found"
            | Error e -> log "  NSM call failed: %s" (Hns.Errors.to_string e)));
        log "  (elapsed: %.1f ms)" (Sim.Engine.time () -. t0)
      in
      query "BIND query"
        (Hns.Hns_name.make ~context:scn.bind_context ~name:scn.service_host);
      log "  the six data mappings behind that FindNSM:";
      List.iter
        (fun (key, hit, cost) ->
          log "    %-48s %-4s %5.1f ms" key (if hit then "hit" else "MISS") cost)
        (Hns.Meta_client.walk_log (Hns.Client.meta hns));
      Hns.Meta_client.clear_walk_log (Hns.Client.meta hns);
      query "Clearinghouse query"
        (Hns.Hns_name.make ~context:scn.ch_context ~name:"dandelion");
      log
        "Since the interfaces provided by both NSMs are identical, the client does \
         not need to be aware of which name service it is calling.");
  print_endline "Figure 2.1: HNS query processing (traced walk-through)";
  List.iter (fun s -> print_endline ("  " ^ s)) (List.rev !steps);
  print_newline ()

(* --- Section 3 scalars: overheads ----------------------------------- *)

let overhead () =
  let scn = S.build () in
  let cold, cached =
    S.in_sim scn (fun () ->
        let hns = S.new_hns scn ~on:scn.client_stack in
        let go () =
          match
            Hns.Client.find_nsm hns ~context:scn.bind_context
              ~query_class:Hns.Query_class.hrpc_binding
          with
          | Ok _ -> ()
          | Error e -> failwith (Hns.Errors.to_string e)
        in
        let (), cold = S.timed go in
        let (), cached = S.timed go in
        (cold, cached))
  in
  (* NSM remote call cost per RPC system: call the NULL-ish procedure
     of an HRPC server over each suite, charged that system's bare
     per-call overhead. *)
  let remote_call suite overhead =
    S.in_sim scn (fun () ->
        let server =
          Hrpc.Server.create scn.nsm_stack ~suite ~service_overhead_ms:overhead
            ~prog:990 ~vers:1 ()
        in
        Hrpc.Server.register server ~procnum:1
          ~sign:(Wire.Idl.signature ~arg:Wire.Idl.T_void ~res:Wire.Idl.T_void)
          (fun _ -> Wire.Value.Void);
        Hrpc.Server.start server;
        let (), d =
          S.timed (fun () ->
              match
                Hrpc.Client.call scn.client_stack (Hrpc.Server.binding server)
                  ~procnum:1
                  ~sign:(Wire.Idl.signature ~arg:Wire.Idl.T_void ~res:Wire.Idl.T_void)
                  Wire.Value.Void
              with
              | Ok _ -> ()
              | Error e -> failwith (Rpc.Control.error_to_string e))
        in
        Hrpc.Server.stop server;
        d)
  in
  let sun = remote_call Hrpc.Component.sunrpc_suite C.sunrpc_call_overhead_ms in
  let courier = remote_call Hrpc.Component.courier_suite C.courier_call_overhead_ms in
  E.print_cells ~title:"Basic HNS overheads (Section 3)"
    [
      E.cell ~label:"FindNSM, cold (six remote mappings)"
        ~paper_ms:C.Paper.find_nsm_cold_ms ~measured_ms:cold;
      E.cell ~label:"FindNSM, cached" ~paper_ms:C.Paper.find_nsm_cached_ms
        ~measured_ms:cached;
      E.cell ~label:"remote NSM call (Sun RPC)" ~paper_ms:C.Paper.nsm_remote_call_lo_ms
        ~measured_ms:sun;
      E.cell ~label:"remote NSM call (Courier)" ~paper_ms:C.Paper.nsm_remote_call_hi_ms
        ~measured_ms:courier;
      E.cell ~label:"basic overhead, low (cached + cached NSM call)"
        ~paper_ms:C.Paper.basic_overhead_lo_ms ~measured_ms:cached;
      E.cell ~label:"basic overhead, high (cached + remote NSM call)"
        ~paper_ms:C.Paper.basic_overhead_hi_ms ~measured_ms:(cached +. sun);
    ];
  Printf.printf
    "  note: the paper's 460 ms 'initial FindNSM' corresponds to the full\n\
    \  row-1 import of Table 3.1; the six-mapping walk alone measures %.0f ms.\n\n"
    cold

(* --- Section 3 scalars: comparisons --------------------------------- *)

let compare () =
  let scn = S.build () in
  let bind_d =
    S.in_sim scn (fun () ->
        let r =
          Dns.Resolver.create scn.client_stack ~servers:[ Dns.Server.addr scn.public_bind ]
            ~enable_cache:false ()
        in
        let _, d =
          S.timed (fun () ->
              ignore (Dns.Resolver.lookup_a r (Dns.Name.of_string scn.service_host)))
        in
        d)
  in
  let ch_d =
    S.in_sim scn (fun () ->
        let client =
          Clearinghouse.Ch_client.connect scn.client_stack
            ~server:(Clearinghouse.Ch_server.addr scn.ch) ~credentials:scn.credentials
        in
        let _, d =
          S.timed (fun () ->
              ignore
                (Clearinghouse.Ch_client.retrieve_item client
                   (Clearinghouse.Ch_name.make ~local:"dandelion" ~domain:scn.ch_domain
                      ~org:scn.ch_org)
                   ~prop:Clearinghouse.Property.Id.address))
        in
        Clearinghouse.Ch_client.close client;
        d)
  in
  let localfile_d =
    S.in_sim scn (fun () ->
        let _, d =
          S.timed (fun () ->
              match
                Baseline.Localfile.import scn.localfile ~service:scn.service_name
                  ~host:scn.service_host
              with
              | Ok _ -> ()
              | Error m -> failwith m)
        in
        d)
  in
  let rereg_d =
    S.in_sim scn (fun () ->
        let _, d =
          S.timed (fun () ->
              match Baseline.Rereg_ch.import scn.rereg ~service:scn.service_name with
              | Ok _ -> ()
              | Error e -> failwith (Format.asprintf "%a" Baseline.Rereg_ch.pp_error e))
        in
        d)
  in
  let best, _, _ = measure_table_3_1_row scn Hns.Import.All_linked in
  let hns_best =
    S.in_sim scn (fun () ->
        let p = S.arrange scn Hns.Import.All_linked in
        do_import scn p Hns.Import.All_linked;
        let (), d = S.timed (fun () -> do_import scn p Hns.Import.All_linked) in
        S.stop_parties p;
        d)
  in
  let worst, _, _ = measure_table_3_1_row scn Hns.Import.All_remote in
  E.print_cells ~title:"Underlying services and alternative binding schemes (Section 3)"
    [
      E.cell ~label:"BIND name-to-address lookup" ~paper_ms:C.Paper.bind_lookup_ms
        ~measured_ms:bind_d;
      E.cell ~label:"Clearinghouse name-to-address lookup"
        ~paper_ms:C.Paper.clearinghouse_lookup_ms ~measured_ms:ch_d;
      E.cell ~label:"interim replicated-local-file binding"
        ~paper_ms:C.Paper.interim_localfile_binding_ms ~measured_ms:localfile_d;
      E.cell ~label:"reregistered-Clearinghouse binding"
        ~paper_ms:C.Paper.rereg_clearinghouse_binding_ms ~measured_ms:rereg_d;
      E.cell ~label:"HNS binding, best (all linked, caches hot)" ~paper_ms:104.0
        ~measured_ms:hns_best;
      E.cell ~label:"HNS binding, worst (all remote, cold)" ~paper_ms:547.0
        ~measured_ms:worst;
    ];
  ignore best;
  print_endline
    "  shape check: tuned HNS (hot caches) lands between BIND and the\n\
    \  reregistration baselines; only the cold path is dearer -- the paper's\n\
    \  conclusion that HNS performance is 'reasonably close to that of\n\
    \  homogeneous name services'.\n"

(* --- preload --------------------------------------------------------- *)

let preload () =
  let scn = S.build () in
  let preload_cost, seeded, stored =
    S.in_sim scn (fun () ->
        let hns = S.new_hns scn ~on:scn.client_stack in
        let seeded = ref 0 in
        let (), d =
          S.timed (fun () ->
              match Hns.Client.preload hns with
              | Ok n -> seeded := n
              | Error e -> failwith (Hns.Errors.to_string e))
        in
        (d, !seeded, Hns.Cache.stored_bytes (Hns.Client.cache hns)))
  in
  E.print_cells ~title:"Cache preloading via BIND zone transfer (Section 3)"
    [ E.cell ~label:"preload cost" ~paper_ms:C.Paper.preload_ms ~measured_ms:preload_cost ];
  Printf.printf "  mappings seeded: %d   marshalled bytes cached: %d (paper: ~2KB)\n\n"
    seeded stored;
  (* Break-even: k distinct context/query-class FindNSM calls, with and
     without preload. *)
  let distinct_calls k ~with_preload =
    S.in_sim scn (fun () ->
        let hns = S.new_hns scn ~on:scn.client_stack in
        let (), d =
          S.timed (fun () ->
              if with_preload then
                (match Hns.Client.preload hns with
                | Ok _ -> ()
                | Error e -> failwith (Hns.Errors.to_string e));
              (* Alternate contexts so consecutive calls share as few
                 mappings as possible, as in the paper's estimate. *)
              let targets =
                [
                  (scn.bind_context, Hns.Query_class.hrpc_binding);
                  (scn.ch_context, Hns.Query_class.hrpc_binding);
                  (scn.bind_context, Hns.Query_class.file_location);
                  (scn.ch_context, Hns.Query_class.host_address);
                  (scn.bind_context, Hns.Query_class.mailbox_location);
                  (scn.bind_context, Hns.Query_class.host_address);
                ]
              in
              List.iteri
                (fun i (context, query_class) ->
                  if i < k then
                    match Hns.Client.find_nsm hns ~context ~query_class with
                    | Ok _ -> ()
                    | Error e -> failwith (Hns.Errors.to_string e))
                targets)
        in
        d)
  in
  let rows =
    List.map
      (fun k ->
        let without = distinct_calls k ~with_preload:false in
        let with_ = distinct_calls k ~with_preload:true in
        [
          string_of_int k;
          Printf.sprintf "%.0f" without;
          Printf.sprintf "%.0f" with_;
          (if with_ < without then "preload wins" else "no preload wins");
        ])
      [ 1; 2; 3; 4; 5; 6 ]
  in
  E.print_table
    ~title:
      "Preload break-even: k distinct (context, query class) FindNSM calls (msec)\n\
      \  paper: 'preloading seems to be effective in situations where two or\n\
      \  more calls to the HNS for different context/query classes will be made'"
    ~header:[ "k"; "no preload"; "preload+calls"; "verdict" ]
    rows;
  (* "(We also considered preloading the NSM caches, but that would be
     less effective.)" — there is no zone-transfer shortcut for NSM
     results: warming S services x H hosts costs S*H full backend
     walks. *)
  let nsm_preload services_n =
    S.in_sim scn (fun () ->
        let nsm =
          Nsm.Binding_nsm_bind.create scn.client_stack
            ~bind_server:(Dns.Server.addr scn.public_bind)
            ~services:
              (List.init services_n (fun i ->
                   (Printf.sprintf "svc%02d" i, (scn.target_prog, scn.target_vers))))
            ~cache:(S.new_nsm_cache scn ())
            ~per_query_ms:C.nsm_per_query_ms ()
        in
        let warmed = ref 0 in
        let (), d =
          S.timed (fun () ->
              warmed :=
                Nsm.Binding_nsm_bind.preload nsm ~context:scn.bind_context
                  ~hosts:[ scn.service_host ])
        in
        (!warmed, d))
  in
  let rows =
    List.map
      (fun n ->
        let entries, d = nsm_preload n in
        [ string_of_int n; string_of_int entries; Printf.sprintf "%.0f" d ])
      [ 1; 4; 8 ]
  in
  E.print_table
    ~title:
      "NSM-cache preloading, for contrast (S services x 1 host; no bulk\n\
      \  transfer exists, every entry is a full backend walk)"
    ~header:[ "services"; "entries warmed"; "cost (ms)" ]
    rows;
  print_endline
    "  'We also considered preloading the NSM caches, but that would be less\n\
    \  effective' -- the meta preload moves ~2KB once; warming NSM results\n\
    \  grows with the service x host product at ~90 ms per entry.\n"

(* --- equation (1) ---------------------------------------------------- *)

let eq1 () =
  let scn = S.build () in
  let measure arrangement prep =
    S.in_sim scn (fun () ->
        let p = S.arrange scn arrangement in
        S.flush_parties p;
        (match prep with
        | `Miss -> ()
        | `Hit -> do_import scn p arrangement
        | `Hns_hit ->
            do_import scn p arrangement;
            Hns.Cache.flush p.nsm_cache);
        let (), d = S.timed (fun () -> do_import scn p arrangement) in
        S.stop_parties p;
        d)
  in
  (* C(remote call): one extra remote party, from the row deltas. *)
  let linked_miss = measure Hns.Import.All_linked `Miss in
  let remote_miss = measure Hns.Import.All_remote `Miss in
  let remote_call = (remote_miss -. linked_miss) /. 2.0 in
  let hns_miss = remote_miss in
  let hns_hit = measure Hns.Import.All_remote `Hit in
  let q_hns = remote_call /. (hns_miss -. hns_hit) in
  let nsm_miss = measure Hns.Import.Remote_nsms `Hns_hit in
  let nsm_hit = measure Hns.Import.Remote_nsms `Hit in
  let q_nsm = remote_call /. (nsm_miss -. nsm_hit) in
  E.print_table
    ~title:
      "Equation (1): remote location pays off iff extra hit fraction q >\n\
      \  C(remote call) / (C(cache miss) - C(cache hit))"
    ~header:[ "quantity"; "ours"; "paper" ]
    [
      [ "C(remote call)"; Printf.sprintf "%.1f ms" remote_call;
        Printf.sprintf "%.1f ms" C.Paper.eq1_remote_call_ms ];
      [ "HNS: C(miss), C(hit)"; Printf.sprintf "%.0f, %.0f ms" hns_miss hns_hit;
        "547, 261 ms" ];
      [ "HNS break-even q"; Printf.sprintf "%.0f%%" (100.0 *. q_hns);
        Printf.sprintf "%.0f%%" (100.0 *. C.Paper.eq1_hns_breakeven) ];
      [ "NSM: C(miss), C(hit)"; Printf.sprintf "%.0f, %.0f ms" nsm_miss nsm_hit;
        "225, 147 ms" ];
      [ "NSM break-even q"; Printf.sprintf "%.0f%%" (100.0 *. q_nsm);
        Printf.sprintf "%.0f%%" (100.0 *. C.Paper.eq1_nsm_breakeven) ];
    ];
  print_endline
    "  reading: a remote HNS needs only a small extra hit fraction to pay off;\n\
    \  remote NSMs need a much larger one -- 'neither of these increments leads\n\
    \  to a clear cut decision'.\n"

(* --- hit-ratio sweep (locality) -------------------------------------- *)

(* The HNS meta mappings are shared by every query in a context, so
   their hit ratio saturates immediately; the interesting locality
   effect is in the NSM result caches, whose entries expire on TTL.
   We stream Zipf-distributed HostAddress queries with one second
   between arrivals against an NSM cache whose TTL covers only the
   last eight queries: skewed streams keep their hot names alive. *)
let hit_sweep () =
  let scn = S.build () in
  let hosts = Array.of_list (Workload.Namegen.hosts ~count:16 ~zone:scn.zone) in
  let run s =
    S.in_sim scn (fun () ->
        let nsm =
          Nsm.Hostaddr_nsm_bind.create scn.client_stack
            ~bind_server:(Dns.Server.addr scn.public_bind)
            ~cache:
              (Hns.Cache.create ~mode:scn.cache_mode
                 ~generated_cost:C.generated_cost
                 ~hit_overhead_ms:C.nsm_cache_hit_overhead_ms
                 ~hit_per_node_ms:C.cache_hit_per_node_ms
                 ~insert_overhead_ms:C.cache_insert_ms ())
            ~cache_ttl_ms:8_000.0 ~per_query_ms:C.nsm_per_query_ms ()
        in
        let zipf = Workload.Zipf.create ~n:(Array.length hosts) ~s in
        let rng = Sim.Rng.create ~seed:0xFEEDL in
        let stats = Sim.Stats.create () in
        for _ = 1 to 120 do
          Sim.Engine.sleep 1_000.0;
          let host = hosts.(Workload.Zipf.sample zipf rng) in
          let (), d =
            S.timed (fun () ->
                match
                  Hns.Nsm_intf.call_linked (Nsm.Hostaddr_nsm_bind.impl nsm) ~service:""
                    ~hns_name:(Hns.Hns_name.make ~context:scn.bind_context ~name:host)
                with
                | Ok _ -> ()
                | Error e -> failwith (Hns.Errors.to_string e))
          in
          Sim.Stats.add stats d
        done;
        (Hns.Cache.hit_ratio (Nsm.Hostaddr_nsm_bind.cache nsm), Sim.Stats.mean stats))
  in
  let rows =
    List.map
      (fun s ->
        let ratio, mean = run s in
        [ Printf.sprintf "%.1f" s; Printf.sprintf "%.0f%%" (100.0 *. ratio);
          Printf.sprintf "%.1f" mean ])
      [ 0.0; 0.5; 1.0; 1.5; 2.0 ]
  in
  E.print_table
    ~title:
      "Locality sweep: NSM cache hit ratio and mean query latency vs Zipf skew\n\
      \  (120 HostAddress queries over 16 hosts, 1 s apart, 8 s cache TTL --\n\
      \  the 'dynamic cache hit ratios achieved in practice' the paper calls for)"
    ~header:[ "zipf s"; "NSM cache hit ratio"; "mean latency (ms)" ]
    rows

(* --- same-host colocation -------------------------------------------- *)

let same_host () =
  let scn = S.build () in
  (* All-remote arrangement, but agent and NSMs answering from the
     client's own host: compare against the cross-host variant. *)
  let measure ~same =
    S.in_sim scn (fun () ->
        let on = if same then scn.client_stack else scn.agent_stack in
        let hns = S.new_hns scn ~on in
        let agent =
          Hns.Agent.create hns ~service_overhead_ms:C.agent_service_overhead_ms ()
        in
        Hns.Agent.start agent;
        let nsm = S.new_binding_nsm_bind scn ~on in
        let nsm_server =
          Nsm.Binding_nsm_bind.serve nsm ~prog:991
            ~service_overhead_ms:C.nsm_service_overhead_ms ()
        in
        Hrpc.Server.start nsm_server;
        (* Point the meta database's NSM designation at this server so
           both remote parties really sit on [on]. *)
        let host_name =
          Printf.sprintf "%s.%s"
            (Transport.Netstack.host on).Sim.Topology.hostname scn.zone
        in
        (match
           Hns.Admin.register_nsm_server (Hns.Client.meta hns)
             ~name:scn.nsm_binding_bind ~ns:"UW-BIND"
             ~query_class:Hns.Query_class.hrpc_binding ~host:host_name
             ~host_context:scn.bind_context
             (Hrpc.Server.binding nsm_server)
         with
        | Ok () -> ()
        | Error e -> failwith (Hns.Errors.to_string e));
        (* Warm both caches, then measure the all-hit remote path. *)
        let env = Hns.Import.env ~stack:scn.client_stack ~agent:(Hns.Agent.binding agent) () in
        let go () =
          match
            Hns.Import.import env Hns.Import.Remote_hns ~service:scn.service_name
              (import_name scn)
          with
          | Ok _ -> ()
          | Error e -> failwith (Hns.Errors.to_string e)
        in
        (* Use the registered remote NSM via the meta database as rows
           3/5 do; the linked_nsms table is empty so the NSM is called
           remotely. *)
        go ();
        let (), d = S.timed go in
        Hns.Agent.stop agent;
        Hrpc.Server.stop nsm_server;
        d)
  in
  let cross = measure ~same:false in
  let same = measure ~same:true in
  E.print_cells
    ~title:"Same-host colocation saving (remote HNS + remote NSM, caches hot)"
    [
      E.cell ~label:"saving from same-host placement"
        ~paper_ms:C.Paper.colocation_same_host_saving_ms ~measured_ms:(cross -. same);
    ];
  Printf.printf "  cross-host: %.0f ms   same-host: %.0f ms\n\n" cross same

(* --- ablation: collapsed FindNSM ------------------------------------- *)

(* The design alternative the paper rejects: map (context, query class)
   directly to the NSM binding in one meta record. Faster cold, but
   denormalized and address-bearing. *)
let ablation_collapsed () =
  let scn = S.build () in
  let qcs =
    [
      Hns.Query_class.hrpc_binding;
      Hns.Query_class.host_address;
      Hns.Query_class.file_location;
      Hns.Query_class.mailbox_location;
    ]
  in
  let separate_cold, separate_warm, collapsed_cold, collapsed_warm, written =
    S.in_sim scn (fun () ->
        let hns = S.new_hns scn ~on:scn.client_stack in
        let written =
          match
            Hns.Collapsed.materialize (Hns.Client.finder hns)
              ~contexts:[ scn.bind_context; scn.ch_context ] ~query_classes:qcs
          with
          | Ok n -> n
          | Error e -> failwith (Hns.Errors.to_string e)
        in
        (* fresh client so both designs start cold *)
        let hns = S.new_hns scn ~on:scn.client_stack in
        let sep () =
          match
            Hns.Client.find_nsm hns ~context:scn.bind_context
              ~query_class:Hns.Query_class.hrpc_binding
          with
          | Ok _ -> ()
          | Error e -> failwith (Hns.Errors.to_string e)
        in
        let (), separate_cold = S.timed sep in
        let (), separate_warm = S.timed sep in
        let hns2 = S.new_hns scn ~on:scn.client_stack in
        let col () =
          match
            Hns.Collapsed.find (Hns.Client.meta hns2) ~context:scn.bind_context
              ~query_class:Hns.Query_class.hrpc_binding
          with
          | Ok _ -> ()
          | Error e -> failwith (Hns.Errors.to_string e)
        in
        let (), collapsed_cold = S.timed col in
        let (), collapsed_warm = S.timed col in
        (separate_cold, separate_warm, collapsed_cold, collapsed_warm, written))
  in
  E.print_table
    ~title:
      "Ablation: separate mappings (the paper's choice) vs collapsed\n\
      \  (context, query class) -> binding records (msec)"
    ~header:[ "design"; "FindNSM cold"; "FindNSM warm" ]
    [
      [ "six separate mappings"; Printf.sprintf "%.0f" separate_cold;
        Printf.sprintf "%.0f" separate_warm ];
      [ "one collapsed mapping"; Printf.sprintf "%.0f" collapsed_cold;
        Printf.sprintf "%.0f" collapsed_warm ];
    ];
  (* The cost the speed buys: redundant, address-bearing records. *)
  let contexts = 10 in
  let qcount = List.length qcs in
  E.print_table
    ~title:
      (Printf.sprintf
         "  management cost for %d contexts on ONE name service (%d query classes)"
         contexts qcount)
    ~header:[ "design"; "meta records"; "records touched when an NSM moves" ]
    [
      [ "separate"; Printf.sprintf "%d ctx + %d nsm + %d bind" contexts qcount qcount;
        "1 (the NSM's location record)" ];
      [ "collapsed"; Printf.sprintf "%d denormalized" (contexts * qcount);
        Printf.sprintf "%d (every copy embeds the address)" (contexts * qcount) ];
    ];
  Printf.printf
    "  (materialized %d collapsed records for this testbed; re-materialization\n\
    \   is a reregistration sweep -- the continuing cost direct access avoids)\n\n"
    written

(* --- ablation: Table 3.1 with the demarshalled cache ------------------ *)

let ablation_demarshalled () =
  let measure mode =
    let scn = S.build ~cache_mode:mode () in
    List.map (fun a -> measure_table_3_1_row scn a) Hns.Import.all_arrangements
  in
  let marshalled = measure Hns.Cache.Marshalled in
  let demarshalled = measure Hns.Cache.Demarshalled in
  let rows =
    List.map2
      (fun (label, _, _, _) ((ma, mb, mc), (da, db, dc)) ->
        [
          label;
          Printf.sprintf "%.0f -> %.0f" ma da;
          Printf.sprintf "%.0f -> %.0f" mb db;
          Printf.sprintf "%.0f -> %.0f" mc dc;
        ])
      C.Paper.table_3_1
      (List.combine marshalled demarshalled)
  in
  E.print_table
    ~title:
      "Ablation: Table 3.1 re-measured with the demarshalled cache\n\
      \  (marshalled -> demarshalled, msec; the fix Table 3.2 motivated)"
    ~header:[ "arrangement"; "A miss"; "B HNS hit"; "C both hit" ]
    rows;
  print_endline
    "  the fully cached import drops to the cost of the remote calls alone:\n\
    \  caching demarshalled results recovers nearly all of the 88 ms the\n\
    \  marshalled cache was spending per FindNSM.\n"

(* --- ablation: TTL vs staleness --------------------------------------- *)

(* "Cached data is tagged with a time-to-live field for cache
   invalidation. While this simplistic mechanism can cause cache
   consistency problems..." — measure them: a service moves ports
   mid-run; how many imports return the stale binding, by TTL? *)
let ablation_ttl () =
  let rows =
    List.map
      (fun ttl_s ->
        let scn = S.build () in
        let moved_port = 3100 in
        let stale, total_after, mean_latency =
          S.in_sim scn (fun () ->
              let nsm =
                Nsm.Binding_nsm_bind.create scn.client_stack
                  ~bind_server:(Dns.Server.addr scn.public_bind)
                  ~services:[ (scn.service_name, (scn.target_prog, scn.target_vers)) ]
                  ~cache:(S.new_nsm_cache scn ())
                  ~cache_ttl_ms:(ttl_s *. 1000.0)
                  ~per_query_ms:C.nsm_per_query_ms ()
              in
              let lat = Sim.Stats.create () in
              let import () =
                let (), d =
                  S.timed (fun () ->
                      ignore
                        (Hns.Nsm_intf.call_linked (Nsm.Binding_nsm_bind.impl nsm)
                           ~service:scn.service_name
                           ~hns_name:
                             (Hns.Hns_name.make ~context:scn.bind_context
                                ~name:scn.service_host)))
                in
                Sim.Stats.add lat d
              in
              let current_port () =
                match
                  Hns.Nsm_intf.call_linked (Nsm.Binding_nsm_bind.impl nsm)
                    ~service:scn.service_name
                    ~hns_name:
                      (Hns.Hns_name.make ~context:scn.bind_context
                         ~name:scn.service_host)
                with
                | Ok (Some payload) ->
                    (Hrpc.Binding.of_value payload).Hrpc.Binding.server.Transport.Address.port
                | _ -> -1
              in
              (* steady state before the move *)
              for _ = 1 to 15 do
                import ();
                Sim.Engine.sleep 5_000.0
              done;
              (* the service moves: its init re-registers the new port *)
              Rpc.Portmap.set scn.portmap ~prog:scn.target_prog ~vers:scn.target_vers
                ~protocol:Rpc.Portmap.P_udp ~port:moved_port;
              let stale = ref 0 and total = ref 0 in
              for _ = 1 to 15 do
                incr total;
                if current_port () <> moved_port then incr stale;
                Sim.Engine.sleep 5_000.0
              done;
              (* restore for other experiments sharing the pattern *)
              (!stale, !total, Sim.Stats.mean lat))
        in
        [
          Printf.sprintf "%.0f s" ttl_s;
          Printf.sprintf "%d/%d" stale total_after;
          Printf.sprintf "%.1f" mean_latency;
        ])
      [ 5.0; 30.0; 120.0; 600.0 ]
  in
  E.print_table
    ~title:
      "Ablation: TTL invalidation vs consistency (service moves at t=75s;\n\
      \  imports every 5s; stale = import still returns the old port)"
    ~header:[ "cache TTL"; "stale imports after move"; "mean import (ms)" ]
    rows;
  print_endline
    "  short TTLs bound staleness but forfeit hits; long TTLs are fast and\n\
    \  wrong for up to a full TTL -- 'given our assumption that data changes\n\
    \  slowly over time, we feel that this mechanism will suffice'.\n"

(* --- broadcast location vs the HNS ------------------------------------ *)

(* Section 4's V-system alternative: interpret names by Ethernet
   broadcast instead of a name service. "Too inefficient in our
   environment" — measured: per-lookup packets and bystander CPU grow
   with the size of the network, while the HNS costs stay flat. *)
let compare_broadcast () =
  let run n_hosts =
    let engine = Sim.Engine.create () in
    let topo =
      Sim.Topology.create ~default_latency_ms:C.ethernet_latency_ms
        ~default_per_byte_ms:C.ethernet_per_byte_ms ~loopback_ms:C.loopback_ms ()
    in
    let net = Transport.Netstack.create engine topo in
    let stacks =
      List.init n_hosts (fun i ->
          Transport.Netstack.attach net
            (Sim.Topology.add_host topo (Printf.sprintf "host%03d" i)))
    in
    let client = List.hd stacks in
    let result = ref None in
    Sim.Engine.spawn engine (fun () ->
        let binding_of i =
          Hrpc.Binding.make ~suite:Hrpc.Component.sunrpc_suite
            ~server:(Transport.Address.make (Int32.of_int (0x0A010000 + i)) 2000)
            ~prog:(400000 + i) ~vers:1
        in
        let interpreters =
          List.mapi
            (fun i stack ->
              Baseline.Broadcast_locate.start_interpreter stack
                [ (Printf.sprintf "svc-%03d" i, binding_of i) ])
            stacks
        in
        let target = Printf.sprintf "svc-%03d" (n_hosts - 1) in
        let packets0 = Transport.Netstack.packets_sent net in
        let t0 = Sim.Engine.time () in
        (match Baseline.Broadcast_locate.locate client target with
        | Ok (Some _) -> ()
        | Ok None -> failwith "broadcast found nobody"
        | Error e -> failwith (Rpc.Control.error_to_string e));
        let latency = Sim.Engine.time () -. t0 in
        let packets = Transport.Netstack.packets_sent net - packets0 in
        let bystander_ms = float_of_int (n_hosts - 1) *. 1.5 in
        List.iter Baseline.Broadcast_locate.stop_interpreter interpreters;
        result := Some (latency, packets, bystander_ms));
    Sim.Engine.run engine;
    Option.get !result
  in
  let rows =
    List.map
      (fun n ->
        let latency, packets, bystander = run n in
        [
          string_of_int n;
          Printf.sprintf "%.1f" latency;
          string_of_int packets;
          Printf.sprintf "%.0f" bystander;
        ])
      [ 8; 32; 128 ]
  in
  E.print_table
    ~title:
      "Broadcast (V-style) name location vs network size\n\
      \  (one lookup; every host runs an interpreter and pays to hear it)"
    ~header:[ "hosts"; "lookup (ms)"; "packets/lookup"; "bystander CPU (ms)" ]
    rows;
  E.print_table
    ~title:"  the HNS for comparison (any network size)"
    ~header:[ "state"; "lookup (ms)"; "packets/lookup" ]
    [
      [ "FindNSM cached + NSM call"; "~110"; "2" ];
      [ "everything cached"; "~104"; "2" ];
    ];
  print_endline
    "  broadcast wins small networks on latency but costs every machine a\n\
    \  packet and a wakeup per lookup -- 'too inefficient in our environment',\n\
    \  and no help with heterogeneous naming semantics.\n"

(* --- scaling in the heterogeneity dimension --------------------------- *)

(* "We want our design to be scalable in the heterogeneous dimension
   ... a large and increasing number of different system types but
   only a few instances of many of these types." Growing the
   federation must not slow existing queries, and contexts sharing a
   name service must cost one record each ("if more than one context
   is stored on the same name service, the binding information for
   that name service need only be stored once"). *)
let scale_types () =
  let scn = S.build () in
  let measure_with extra_contexts =
    S.in_sim scn (fun () ->
        let hns = S.new_hns scn ~on:scn.client_stack in
        let meta = Hns.Client.meta hns in
        for i = 1 to extra_contexts do
          match
            Hns.Admin.register_context meta
              ~context:(Printf.sprintf "dept-%02d" i)
              ~ns:"UW-BIND"
          with
          | Ok () -> ()
          | Error e -> failwith (Hns.Errors.to_string e)
        done;
        (* a fresh client, so nothing is cached *)
        let hns = S.new_hns scn ~on:scn.client_stack in
        let (), cold =
          S.timed (fun () ->
              match
                Hns.Client.find_nsm hns ~context:scn.bind_context
                  ~query_class:Hns.Query_class.hrpc_binding
              with
              | Ok _ -> ()
              | Error e -> failwith (Hns.Errors.to_string e))
        in
        (* one of the new contexts resolves through the SAME NSMs *)
        let (), new_ctx =
          if extra_contexts = 0 then ((), nan)
          else
            S.timed (fun () ->
                match
                  Hns.Client.find_nsm hns
                    ~context:(Printf.sprintf "dept-%02d" extra_contexts)
                    ~query_class:Hns.Query_class.hrpc_binding
                with
                | Ok _ -> ()
                | Error e -> failwith (Hns.Errors.to_string e))
        in
        let meta_records =
          List.fold_left
            (fun acc z ->
              if Dns.Name.equal (Dns.Zone.origin z) Hns.Meta_schema.zone_origin then
                acc + Dns.Zone.count z
              else acc)
            0
            (Dns.Server.zones scn.meta_bind)
        in
        (cold, new_ctx, meta_records))
  in
  let rows =
    List.map
      (fun n ->
        let cold, new_ctx, records = measure_with n in
        [
          string_of_int (2 + n);
          Printf.sprintf "%.0f" cold;
          (if Float.is_nan new_ctx then "-" else Printf.sprintf "%.0f" new_ctx);
          string_of_int records;
        ])
      [ 0; 10; 40 ]
  in
  E.print_table
    ~title:
      "Scaling the heterogeneity dimension: contexts federated onto the\n\
      \  same name services (cold FindNSM latency and meta-database size)"
    ~header:
      [ "contexts"; "FindNSM cold (ms)"; "new-context cold (ms)"; "meta records" ]
    rows;
  print_endline
    "  existing queries are unaffected; each added context costs ONE meta\n\
    \  record because the NSM designations and bindings are shared -- the\n\
    \  flexibility the paper kept the mappings separate to get. A new\n\
    \  context's first query is cheaper than the first ever query because\n\
    \  mappings 2-6 are already cached.\n"

(* --- Chaos: scheduled faults, failover, serve-stale ------------------ *)

(* A snappy policy for the chaos runs: failure detection inside a
   second rather than the default several, so availability timelines
   stay readable. *)
let chaos_policy =
  {
    Rpc.Control.default_policy with
    Rpc.Control.attempts = 2;
    attempt_timeout_ms = 300.0;
    backoff_base_ms = 50.0;
    backoff_cap_ms = 500.0;
  }

type chaos_outcome = { at : float; kind : string; ms : float }

type chaos_phase = {
  plan_text : string;
  fault_trace : string list;
  outcomes : chaos_outcome list; (* oldest first *)
}

type chaos_report = {
  failover_phase : chaos_phase;
  stale_phase : chaos_phase;
  failovers : int;
  stale_served : int;
  faults_injected : int;
  errors : int;
  metrics_text : string;
}

let chaos_resolve (scn : S.t) hns =
  S.timed (fun () ->
      Hns.Client.resolve hns ~query_class:Hns.Query_class.hrpc_binding
        ~payload_ty:Hns.Nsm_intf.binding_payload_ty ~service:scn.service_name
        (import_name scn))

(* Warm up, install the plan, then resolve every 500 ms of virtual time
   for 10 s, classifying each resolution by the chaos counters it
   moved. [t0]-relative timestamps make the timeline readable. *)
let chaos_timeline (scn : S.t) hns plan_of_t0 =
  let c_failover = Obs.Metrics.counter "hns.find_nsm.failovers" in
  let c_stale = Obs.Metrics.counter "hns.cache.stale_served" in
  let outcomes = ref [] in
  let injector = ref None in
  S.in_sim scn (fun () ->
      (match fst (chaos_resolve scn hns) with
      | Ok (Some _) -> ()
      | Ok None -> failwith "chaos warmup: not found"
      | Error e -> failwith ("chaos warmup: " ^ Hns.Errors.to_string e));
      let t0 = Sim.Engine.time () in
      injector := Some (Chaos.Injector.install (plan_of_t0 t0) scn.net);
      for i = 1 to 20 do
        let target = t0 +. (500.0 *. float_of_int i) in
        let dt = target -. Sim.Engine.time () in
        if dt > 0.0 then Sim.Engine.sleep dt;
        let f0 = Obs.Metrics.value c_failover in
        let s0 = Obs.Metrics.value c_stale in
        let at = Sim.Engine.time () -. t0 in
        let r, ms = chaos_resolve scn hns in
        let kind =
          match r with
          | Ok (Some _) ->
              if Obs.Metrics.value c_failover > f0 then "failover"
              else if Obs.Metrics.value c_stale > s0 then "stale"
              else "ok"
          | Ok None -> "notfound"
          | Error e -> "error: " ^ Hns.Errors.to_string e
        in
        outcomes := { at; kind; ms } :: !outcomes
      done);
  let inj = Option.get !injector in
  Chaos.Injector.uninstall inj;
  {
    plan_text = Chaos.Plan.to_string (Chaos.Injector.plan inj);
    fault_trace = Chaos.Injector.trace inj;
    outcomes = List.rev !outcomes;
  }

(* Phase 1 — failover: the designated binding NSM's host (niue)
   crashes at t=2 s and heals at t=6 s; an alternate NSM on rarotonga
   is registered in the failover set, so resolutions during the outage
   detect the timeout and fail over. *)
let chaos_failover_phase () =
  let scn = S.build () in
  let hns =
    S.new_hns ~rpc_policy:chaos_policy scn ~on:scn.S.client_stack
  in
  S.in_sim scn (fun () ->
      let admin =
        Hns.Meta_client.create scn.S.meta_stack
          ~meta_server:(Dns.Server.addr scn.S.meta_bind)
          ~cache:(Hns.Cache.create ~mode:Hns.Cache.Demarshalled ())
          ()
      in
      let alt_nsm =
        Nsm.Binding_nsm_bind.create scn.S.agent_stack
          ~bind_server:(Dns.Server.addr scn.S.public_bind)
          ~services:[ (scn.S.service_name, (scn.S.target_prog, scn.S.target_vers)) ]
          ~per_query_ms:C.nsm_per_query_ms ()
      in
      let srv =
        Nsm.Binding_nsm_bind.serve alt_nsm
          ~prog:(Hns.Nsm_intf.nsm_prog_base + 6)
          ~service_overhead_ms:C.nsm_service_overhead_ms ()
      in
      Hrpc.Server.start srv;
      match
        Hns.Admin.register_alternate_nsm_server admin ~name:"b-bind-alt"
          ~ns:"UW-BIND" ~query_class:Hns.Query_class.hrpc_binding
          ~host:("rarotonga." ^ scn.S.zone) ~host_context:scn.S.bind_context
          (Hrpc.Server.binding srv)
      with
      | Ok () -> ()
      | Error e -> failwith ("chaos: alternate NSM: " ^ Hns.Errors.to_string e));
  chaos_timeline scn hns (fun t0 ->
      [ Chaos.Plan.crash ~host:"niue" ~at:(t0 +. 2_000.0) ~heal_at:(t0 +. 6_000.0) () ])

(* Phase 2 — serve-stale: the meta-BIND host (fiji) crashes over the
   same window while the client's context mapping carries a 1 s TTL,
   so refreshes during the outage fail and the expired entry is served
   from the staleness budget instead. *)
let chaos_stale_phase () =
  let scn = S.build () in
  let hns =
    S.new_hns ~staleness_budget_ms:60_000.0 ~rpc_policy:chaos_policy scn
      ~on:scn.S.client_stack
  in
  S.in_sim scn (fun () ->
      let admin =
        Hns.Meta_client.create scn.S.meta_stack
          ~meta_server:(Dns.Server.addr scn.S.meta_bind)
          ~cache:(Hns.Cache.create ~mode:Hns.Cache.Demarshalled ())
          ()
      in
      match
        Hns.Meta_client.store admin
          ~key:(Hns.Meta_schema.context_key scn.S.bind_context)
          ~ty:Hns.Meta_schema.string_ty ~ttl_s:1l (Wire.Value.Str "UW-BIND")
      with
      | Ok () -> ()
      | Error e -> failwith ("chaos: short-TTL context: " ^ Hns.Errors.to_string e));
  chaos_timeline scn hns (fun t0 ->
      [ Chaos.Plan.crash ~host:"fiji" ~at:(t0 +. 2_000.0) ~heal_at:(t0 +. 6_000.0) () ])

let count_errors phase =
  List.length
    (List.filter
       (fun o ->
         match o.kind with
         | "ok" | "failover" | "stale" -> false
         | _ -> true)
       phase.outcomes)

(* The whole chaos availability experiment. With [reset_metrics] (the
   default) the registry is zeroed first, making the returned
   [metrics_text] — and everything else — byte-reproducible across
   runs of the same seed. *)
let chaos_run ?(reset_metrics = true) () =
  if reset_metrics then Obs.Metrics.reset ();
  let failover_phase = chaos_failover_phase () in
  let stale_phase = chaos_stale_phase () in
  let count name =
    match Obs.Metrics.find name with Some (Obs.Metrics.Count n) -> n | _ -> 0
  in
  {
    failover_phase;
    stale_phase;
    failovers = count "hns.find_nsm.failovers";
    stale_served = count "hns.cache.stale_served";
    faults_injected = count "chaos.injector.faults_injected";
    errors = count_errors failover_phase + count_errors stale_phase;
    metrics_text = Obs.Export.metrics_json_lines ();
  }

let chaos () =
  let r = chaos_run () in
  let phase_rows phase =
    List.map
      (fun o ->
        [ Printf.sprintf "%.0f" o.at; o.kind; Printf.sprintf "%.0f" o.ms ])
      phase.outcomes
  in
  E.print_table
    ~title:
      (Printf.sprintf
         "Chaos phase 1 -- failover (plan: %s;\n\
         \  alternate NSM on rarotonga; resolutions every 500 ms)"
         r.failover_phase.plan_text)
    ~header:[ "t (ms)"; "outcome"; "resolve (ms)" ]
    (phase_rows r.failover_phase);
  E.print_table
    ~title:
      (Printf.sprintf
         "Chaos phase 2 -- serve-stale (plan: %s;\n\
         \  context mapping TTL 1 s, staleness budget 60 s)"
         r.stale_phase.plan_text)
    ~header:[ "t (ms)"; "outcome"; "resolve (ms)" ]
    (phase_rows r.stale_phase);
  Printf.printf
    "  faults injected: %d; failovers: %d; stale served: %d; client errors: %d\n"
    r.faults_injected r.failovers r.stale_served r.errors;
  Printf.printf "  first faults in the injector trace:\n";
  List.iteri
    (fun i line -> if i < 5 then Printf.printf "    %s\n" line)
    r.failover_phase.fault_trace;
  print_newline ()

(* --- Shared cold-path probes (used by [coldpath] and the JSON rows) - *)

(* Per-iteration workload variation. Identical deterministic
   iterations would make every percentile equal to the mean — n
   samples carrying one sample's information — so each iteration picks
   a different target out of the confederation's real mix: the six
   BIND-world testbed hosts (varied name lengths, hence request
   sizes), and one iteration in seven goes through the Xerox world,
   whose Clearinghouse leg is genuinely slower. *)
let resolve_name ?(mix_ch = true) (scn : S.t) i =
  if mix_ch && i mod 7 = 6 then
    Hns.Hns_name.make ~context:scn.ch_context ~name:"dandelion"
  else
    let stacks =
      [|
        scn.client_stack; scn.agent_stack; scn.nsm_stack; scn.meta_stack;
        scn.bind_stack; scn.service_stack;
      |]
    in
    let stack = stacks.(i mod Array.length stacks) in
    Hns.Hns_name.make ~context:scn.bind_context
      ~name:
        (Printf.sprintf "%s.%s"
           (Transport.Netstack.host stack).Sim.Topology.hostname
           scn.zone)

(* Rotate FindNSM iterations across the registered (context, query
   class) pairs — four BIND-world classes plus the two the Xerox world
   answers. *)
let find_nsm_target (scn : S.t) i =
  let pairs =
    [|
      (scn.bind_context, Hns.Query_class.hrpc_binding);
      (scn.bind_context, Hns.Query_class.host_address);
      (scn.bind_context, Hns.Query_class.file_location);
      (scn.bind_context, Hns.Query_class.mailbox_location);
      (scn.ch_context, Hns.Query_class.hrpc_binding);
      (scn.ch_context, Hns.Query_class.host_address);
    |]
  in
  pairs.(i mod Array.length pairs)

(* Full resolve of [name]'s address; returns the virtual-time cost.
   Must run inside the simulation. *)
let timed_resolve _scn hns name =
  let (), d =
    S.timed (fun () ->
        match
          Hns.Client.resolve hns ~query_class:Hns.Query_class.host_address
            ~payload_ty:Hns.Nsm_intf.host_address_payload_ty name
        with
        | Ok (Some _) -> ()
        | Ok None -> failwith "resolve: not found"
        | Error e -> failwith (Hns.Errors.to_string e))
  in
  d

let timed_find_nsm hns ~context ~query_class =
  let (), d =
    S.timed (fun () ->
        match Hns.Client.find_nsm hns ~context ~query_class with
        | Ok _ -> ()
        | Error e -> failwith (Hns.Errors.to_string e))
  in
  d

let resolve_cold (scn : S.t) i =
  S.in_sim scn (fun () ->
      timed_resolve scn (S.new_hns scn ~on:scn.client_stack) (resolve_name scn i))

let resolve_warm (scn : S.t) i =
  S.in_sim scn (fun () ->
      let hns = S.new_hns scn ~on:scn.client_stack in
      let name = resolve_name scn i in
      ignore (timed_resolve scn hns name);
      timed_resolve scn hns name)

let find_nsm_cold (scn : S.t) i =
  S.in_sim scn (fun () ->
      let context, query_class = find_nsm_target scn i in
      timed_find_nsm (S.new_hns scn ~on:scn.client_stack) ~context ~query_class)

let find_nsm_warm (scn : S.t) i =
  S.in_sim scn (fun () ->
      let hns = S.new_hns scn ~on:scn.client_stack in
      let context, query_class = find_nsm_target scn i in
      ignore (timed_find_nsm hns ~context ~query_class);
      timed_find_nsm hns ~context ~query_class)

(* Preload the whole meta zone, then measure the first resolution.
   BIND-world targets only: this row backs the "preloaded first
   resolution within 2x of the warm path" acceptance bound, which is
   stated against the BIND-world warm number. *)
let preload_then_resolve (scn : S.t) i =
  S.in_sim scn (fun () ->
      let hns = S.new_hns scn ~on:scn.client_stack in
      (match Hns.Client.preload hns with
      | Ok _ -> ()
      | Error e -> failwith ("preload: " ^ Hns.Errors.to_string e));
      timed_resolve scn hns (resolve_name ~mix_ch:false scn i))

(* [waiters] concurrent identical cold FindNSMs on one instance,
   arrivals staggered by [stagger_ms]; returns per-caller latencies
   (arrival order) and the instance's total remote meta lookups. With
   coalescing, later arrivals ride the leader's in-flight lookup. *)
let stampede (scn : S.t) ?(waiters = 8) ?(stagger_ms = 5.0) () =
  S.in_sim scn (fun () ->
      let hns = S.new_hns scn ~on:scn.client_stack in
      let mb = Sim.Engine.Mailbox.create () in
      for i = 0 to waiters - 1 do
        Sim.Engine.spawn_child ~name:(Printf.sprintf "stampede:%d" i)
          (fun () ->
            if i > 0 then Sim.Engine.sleep (float_of_int i *. stagger_ms);
            let d =
              timed_find_nsm hns ~context:scn.bind_context
                ~query_class:Hns.Query_class.hrpc_binding
            in
            Sim.Engine.Mailbox.send mb (i, d))
      done;
      let latencies =
        List.init waiters (fun _ -> Sim.Engine.Mailbox.recv mb)
        |> List.sort Stdlib.compare |> List.map snd
      in
      (latencies, Hns.Meta_client.remote_lookups (Hns.Client.meta hns)))

(* --- Cold-path collapse: bundle, preload, coalescing ---------------- *)

let coldpath () =
  let legacy = S.build () in
  let bundle = S.build ~bundle:true () in
  let meta_lookups hns = Hns.Meta_client.remote_lookups (Hns.Client.meta hns) in
  let service_name (scn : S.t) =
    Hns.Hns_name.make ~context:scn.bind_context ~name:scn.service_host
  in
  let cold_find scn =
    S.in_sim scn (fun () ->
        let hns = S.new_hns scn ~on:scn.S.client_stack in
        let d =
          timed_find_nsm hns ~context:scn.S.bind_context
            ~query_class:Hns.Query_class.hrpc_binding
        in
        (d, meta_lookups hns))
  in
  let cold_resolve scn =
    S.in_sim scn (fun () ->
        let hns = S.new_hns scn ~on:scn.S.client_stack in
        let d = timed_resolve scn hns (service_name scn) in
        (d, meta_lookups hns))
  in
  let lf, ll = cold_find legacy in
  let bf, bl = cold_find bundle in
  let lr, lrl = cold_resolve legacy in
  let br, brl = cold_resolve bundle in
  let preload_first =
    S.in_sim legacy (fun () ->
        let hns = S.new_hns legacy ~on:legacy.S.client_stack in
        let seeded =
          match Hns.Client.preload hns with
          | Ok k -> k
          | Error e -> failwith ("preload: " ^ Hns.Errors.to_string e)
        in
        let d = timed_resolve legacy hns (service_name legacy) in
        (seeded, d))
  in
  let seeded, pd = preload_first in
  let coalesced_lat, coalesced_lookups = stampede bundle () in
  let solo_lat, solo_lookups = stampede legacy ~waiters:1 () in
  let pct a b = 100.0 *. (a -. b) /. a in
  E.print_table
    ~title:
      "Cold-path collapse: batched meta queries, AXFR preloading, coalescing\n\
      \  (cold = fresh HNS instance, empty caches; lookups = remote meta \
       round trips)"
    ~header:[ "probe"; "legacy"; "collapsed"; "reduction" ]
    [
      [
        "FindNSM cold (ms)";
        Printf.sprintf "%.1f (%d lookups)" lf ll;
        Printf.sprintf "%.1f (%d lookups)" bf bl;
        Printf.sprintf "%.0f%%" (pct lf bf);
      ];
      [
        "resolve cold (ms)";
        Printf.sprintf "%.1f (%d lookups)" lr lrl;
        Printf.sprintf "%.1f (%d lookups)" br brl;
        Printf.sprintf "%.0f%%" (pct lr br);
      ];
      [
        "resolve after preload (ms)";
        Printf.sprintf "%.1f" lr;
        Printf.sprintf "%.1f (%d seeded)" pd seeded;
        Printf.sprintf "%.0f%%" (pct lr pd);
      ];
      [
        "8-way stampede, mean FindNSM (ms)";
        Printf.sprintf "%.1f x8 (%d lookups each)"
          (List.nth solo_lat 0) solo_lookups;
        Printf.sprintf "%.1f (%d lookups total)"
          (List.fold_left ( +. ) 0.0 coalesced_lat
          /. float_of_int (List.length coalesced_lat))
          coalesced_lookups;
        Printf.sprintf "%.0f%% meta traffic"
          (pct
             (float_of_int (8 * solo_lookups))
             (float_of_int coalesced_lookups));
      ];
    ]

(* --- Change propagation: journal, NOTIFY push, IXFR ----------------- *)

(* A miniature deployment dedicated to propagation measurements: a
   primary meta-BIND over a synthetic [zone_size]-record meta zone, a
   secondary replica, and a preloaded meta client subscribed to NOTIFY.
   Built fresh per run so wire-byte counts are attributable to the one
   update under measurement. The poll interval is set far out (60 s):
   any convergence faster than that is push-driven by construction. *)

let prop_ctx i = Printf.sprintf "pctx%03d" i

let prop_record i =
  let key = Hns.Meta_schema.context_key (prop_ctx i) in
  let bytes =
    Wire.Xdr.to_string Hns.Meta_schema.string_ty (Wire.Value.str "UW-BIND")
  in
  Dns.Rr.make ~ttl:3600l key (Dns.Rr.Unspec bytes)

let prop_run ~zone_size ~mode ?client_max_entries f =
  let engine = Sim.Engine.create () in
  let topo = Sim.Topology.create () in
  let net = Transport.Netstack.create engine topo in
  let stack n = Transport.Netstack.attach net (Sim.Topology.add_host topo n) in
  let s_primary = stack "meta-primary" in
  let s_replica = stack "meta-replica" in
  let s_client = stack "hns-client" in
  let s_admin = stack "hns-admin" in
  let result = ref None in
  Sim.Engine.spawn engine ~name:"propagation" (fun () ->
      let zone =
        Dns.Zone.simple ~origin:Hns.Meta_schema.zone_origin
          (List.init zone_size prop_record)
      in
      let primary = Dns.Server.create s_primary ~allow_update:true () in
      Dns.Server.add_zone primary zone;
      Dns.Server.start primary;
      let replica_server = Dns.Server.create s_replica () in
      Dns.Server.start replica_server;
      let secondary =
        Dns.Secondary.attach replica_server
          ~primary:(Dns.Server.addr primary)
          ~zone:Hns.Meta_schema.zone_origin ~refresh_ms:60_000.0 ~mode ()
      in
      Dns.Server.register_notify primary (Dns.Server.addr replica_server);
      let cache =
        Hns.Cache.create ~mode:Hns.Cache.Demarshalled
          ?max_entries:client_max_entries ()
      in
      let client =
        Hns.Meta_client.create s_client
          ~meta_server:(Dns.Server.addr primary) ~cache ()
      in
      (match Hns.Meta_client.preload client with
      | Ok _ -> ()
      | Error e -> failwith ("propagation preload: " ^ Hns.Errors.to_string e));
      let listener_addr, stop_listener =
        Hns.Meta_client.start_notify_listener client
      in
      Dns.Server.register_notify primary listener_addr;
      let admin =
        Hns.Meta_client.create s_admin
          ~meta_server:(Dns.Server.addr primary)
          ~cache:(Hns.Cache.create ~mode:Hns.Cache.Demarshalled ())
          ()
      in
      let r = f ~net ~zone ~secondary ~client ~admin in
      stop_listener ();
      Dns.Secondary.detach secondary;
      Dns.Server.stop replica_server;
      Dns.Server.stop primary;
      result := Some r);
  Sim.Engine.run engine;
  Option.get !result

(* One published update; returns (converge_ms, wire bytes spent on
   propagation, journal changes the client replayed). Convergence =
   the secondary's serial has caught up AND the preloaded client's
   cache serves the new record. *)
let prop_measure ~zone_size ~mode () =
  prop_run ~zone_size ~mode (fun ~net ~zone ~secondary ~client ~admin ->
      let key = Hns.Meta_schema.context_key "pctx-new" in
      let t0 = Sim.Engine.time () in
      let b0 = Transport.Netstack.bytes_sent net in
      (match
         Hns.Meta_client.store admin ~key ~ty:Hns.Meta_schema.string_ty
           (Wire.Value.str "UW-BIND")
       with
      | Ok () -> ()
      | Error e -> failwith ("propagation store: " ^ Hns.Errors.to_string e));
      let cache_key = Hns.Meta_schema.cache_key key in
      let converged () =
        Int32.compare (Dns.Secondary.serial secondary) (Dns.Zone.serial zone)
        >= 0
        && Hns.Cache.peek (Hns.Meta_client.cache client) ~key:cache_key
      in
      let rec wait () =
        if converged () then ()
        else if Sim.Engine.time () -. t0 > 55_000.0 then
          failwith "propagation did not converge before the poll backstop"
        else begin
          Sim.Engine.sleep 5.0;
          wait ()
        end
      in
      wait ();
      ( Sim.Engine.time () -. t0,
        Transport.Netstack.bytes_sent net - b0,
        Hns.Meta_client.delta_records client ))

(* Preload-aware admission at [max_entries] far below the zone size:
   the quota caps what preload pins, overflow is skipped outright, and
   demand churn afterwards evicts only unpinned entries. *)
let prop_admission ~zone_size ~max_entries () =
  prop_run ~zone_size ~mode:Dns.Secondary.Ixfr ~client_max_entries:max_entries
    (fun ~net:_ ~zone:_ ~secondary:_ ~client ~admin:_ ->
      let cache = Hns.Meta_client.cache client in
      (* Demand churn: look up zone records the quota kept out, forcing
         misses + inserts into the bounded cache. *)
      for i = 0 to 49 do
        ignore
          (Hns.Meta_client.lookup client
             ~key:(Hns.Meta_schema.context_key (prop_ctx (zone_size - 1 - i)))
             ~ty:Hns.Meta_schema.string_ty)
      done;
      ( Hns.Cache.preloaded cache,
        Hns.Cache.preload_skipped cache,
        Hns.Cache.pinned cache,
        Hns.Cache.lru_evictions cache ))

let propagation () =
  let sizes = [ 50; 200; 800 ] in
  let rows =
    List.map
      (fun zone_size ->
        let a_ms, a_bytes, _ =
          prop_measure ~zone_size ~mode:Dns.Secondary.Axfr ()
        in
        let i_ms, i_bytes, i_changes =
          prop_measure ~zone_size ~mode:Dns.Secondary.Ixfr ()
        in
        [
          Printf.sprintf "%d-record zone" zone_size;
          Printf.sprintf "%.0f ms / %d B" a_ms a_bytes;
          Printf.sprintf "%.0f ms / %d B (%d changes)" i_ms i_bytes i_changes;
          Printf.sprintf "%.0fx fewer bytes"
            (float_of_int a_bytes /. float_of_int (max 1 i_bytes));
        ])
      sizes
  in
  E.print_table
    ~title:
      "Change propagation: one update, NOTIFY push, secondary + preloaded \
       client\n\
      \  (converged = replica serial current AND client cache serves the new \
       record;\n\
      \   poll backstop at 60 s — everything below is push-driven)"
    ~header:[ "zone"; "AXFR secondary"; "IXFR secondary"; "delta advantage" ]
    rows;
  let seeded, skipped, pinned, evictions =
    prop_admission ~zone_size:200 ~max_entries:32 ()
  in
  Printf.printf
    "\n\
    \  preload admission, 200-record zone into max_entries=32:\n\
    \    seeded %d (quota 3/4 of capacity), skipped %d, pinned now %d,\n\
    \    churn evictions %d — none touched a preloaded entry\n"
    seeded skipped pinned evictions

(* --- Durable meta-store: WAL group commit, crash recovery, restart - *)

type dur_spill = {
  spill_append_ms : float list;  (** per-update ack latency, virtual ms *)
  spill_appends : int;
  spill_commits : int;  (** group fsyncs those appends shared *)
  spill_ratio : float;  (** compaction bytes-before/after *)
  spill_recovery_ms : float;
  spill_recovered : bool;  (** recovered serial matches the live zone *)
}

(* The spill path in isolation: [rounds] batches of [writers]
   concurrent updates against a durably-attached zone, churning a
   small key set so compaction has something to coalesce; then power
   loss and recovery. No network — every millisecond is the disk's. *)
let dur_spill_run ?(rounds = 8) ?(writers = 4) ?(churn_keys = 4) () =
  let engine = Sim.Engine.create () in
  let result = ref None in
  Sim.Engine.spawn engine ~name:"durability-spill" (fun () ->
      let disk = Store.Disk.create () in
      let zone =
        Dns.Zone.simple ~origin:Hns.Meta_schema.zone_origin
          (List.init 16 prop_record)
      in
      let d = Dns.Durable.attach disk zone in
      let samples = ref [] in
      let mbox = Sim.Engine.Mailbox.create () in
      for round = 0 to rounds - 1 do
        let base = Dns.Zone.serial zone in
        for w = 0 to writers - 1 do
          Sim.Engine.spawn_child
            ~name:(Printf.sprintf "updater-%d-%d" round w)
            (fun () ->
              let t0 = Sim.Engine.time () in
              (* Writers in one round land in the same group window, so
                 their WAL records share a single fsync. *)
              Dns.Zone.record_delta zone
                ~from_serial:(Int32.add base (Int32.of_int w))
                ~to_serial:(Int32.add base (Int32.of_int (w + 1)))
                [
                  Dns.Journal.Put
                    (prop_record (((round * writers) + w) mod churn_keys));
                ];
              samples := (Sim.Engine.time () -. t0) :: !samples;
              Sim.Engine.Mailbox.send mbox ())
        done;
        for _ = 1 to writers do
          ignore (Sim.Engine.Mailbox.recv mbox)
        done;
        Dns.Zone.set_soa zone
          {
            (Dns.Zone.soa zone) with
            Dns.Rr.serial = Int32.add base (Int32.of_int writers);
          }
      done;
      let live_serial = Dns.Zone.serial zone in
      let ratio = Dns.Durable.compact d in
      Store.Disk.crash disk;
      let recovery_ms, recovered =
        match Dns.Durable.recover disk with
        | Some r ->
            ( r.Dns.Durable.recovery_ms,
              Int32.equal (Dns.Zone.serial r.Dns.Durable.zone) live_serial )
        | None -> (0.0, false)
      in
      result :=
        Some
          {
            spill_append_ms = List.rev !samples;
            spill_appends = Store.Wal.appends (Dns.Durable.wal d);
            spill_commits = Store.Wal.group_commits (Dns.Durable.wal d);
            spill_ratio = ratio;
            spill_recovery_ms = recovery_ms;
            spill_recovered = recovered;
          });
  Sim.Engine.run engine;
  Option.get !result

(* Restart A/B. The primary is partitioned away from its replica and
   preloaded client while the (still-connected) admin publishes a
   batch of updates, then loses power. The durable arm recovers
   snapshot + WAL tail and — because recovery re-journals the replayed
   deltas — resumes serving IXFR from its last durable serial; the
   baseline arm restarts from a rebuilt zone image with an empty
   journal, forcing both consumers through a full transfer. The
   partition heals, one more update's NOTIFY pulls everyone back in,
   and we measure that convergence. Returns (converge_ms, propagation
   bytes after heal, failed client resolves during the outage,
   recovery_ms). *)
let dur_restart ~zone_size ~durable () =
  let engine = Sim.Engine.create () in
  let topo = Sim.Topology.create () in
  let net = Transport.Netstack.create engine topo in
  let stack n = Transport.Netstack.attach net (Sim.Topology.add_host topo n) in
  let s_primary = stack "meta-primary" in
  let s_replica = stack "meta-replica" in
  let s_client = stack "hns-client" in
  let s_admin = stack "hns-admin" in
  let result = ref None in
  Sim.Engine.spawn engine ~name:"durability-restart" (fun () ->
      let origin = Hns.Meta_schema.zone_origin in
      let zone = Dns.Zone.simple ~origin (List.init zone_size prop_record) in
      let disk = Store.Disk.create () in
      if durable then ignore (Dns.Durable.attach disk zone);
      let primary = Dns.Server.create s_primary ~allow_update:true () in
      Dns.Server.add_zone primary zone;
      Dns.Server.start primary;
      let replica_server = Dns.Server.create s_replica () in
      Dns.Server.start replica_server;
      let secondary =
        Dns.Secondary.attach replica_server
          ~primary:(Dns.Server.addr primary)
          ~zone:origin ~refresh_ms:60_000.0 ()
      in
      Dns.Server.register_notify primary (Dns.Server.addr replica_server);
      let client =
        Hns.Meta_client.create s_client
          ~meta_server:(Dns.Server.addr primary)
          ~cache:(Hns.Cache.create ~mode:Hns.Cache.Demarshalled ())
          ()
      in
      (match Hns.Meta_client.preload client with
      | Ok _ -> ()
      | Error e -> failwith ("durability preload: " ^ Hns.Errors.to_string e));
      let listener_addr, stop_listener =
        Hns.Meta_client.start_notify_listener client
      in
      Dns.Server.register_notify primary listener_addr;
      let admin =
        Hns.Meta_client.create s_admin
          ~meta_server:(Dns.Server.addr primary)
          ~cache:(Hns.Cache.create ~mode:Hns.Cache.Demarshalled ())
          ()
      in
      let store_via cl name =
        match
          Hns.Meta_client.store cl ~key:(Hns.Meta_schema.context_key name)
            ~ty:Hns.Meta_schema.string_ty (Wire.Value.str "UW-BIND")
        with
        | Ok () -> ()
        | Error e -> failwith ("durability store: " ^ Hns.Errors.to_string e)
      in
      (* Cut the primary off from its consumers; the admin stays. *)
      let heal_at = Sim.Engine.time () +. 4_000.0 in
      let inj =
        Chaos.Injector.install
          [
            Chaos.Plan.partition ~group_a:[ "meta-primary" ]
              ~group_b:[ "meta-replica"; "hns-client" ]
              ~at:(Sim.Engine.time ()) ~heal_at;
          ]
          net
      in
      (* Updates the partitioned consumers never hear about. *)
      for i = 0 to 11 do
        store_via admin (Printf.sprintf "crashed%02d" i)
      done;
      let lost_serial = Dns.Zone.serial zone in
      (* Power loss. *)
      Dns.Server.stop primary;
      Store.Disk.crash disk;
      (* The preloaded client keeps resolving from its cache — the
         outage must cost zero failed resolves. *)
      let failed = ref 0 in
      for i = 0 to 19 do
        match
          Hns.Meta_client.lookup client
            ~key:(Hns.Meta_schema.context_key (prop_ctx (i mod zone_size)))
            ~ty:Hns.Meta_schema.string_ty
        with
        | Ok _ -> ()
        | Error _ -> incr failed
      done;
      Sim.Engine.sleep 500.0;
      (* Restart. *)
      let recovery_ms, restart_zone =
        if durable then
          match Dns.Durable.recover disk with
          | Some r ->
              ignore (Dns.Durable.attach disk r.Dns.Durable.zone);
              (r.Dns.Durable.recovery_ms, r.Dns.Durable.zone)
          | None -> failwith "durability restart: no recoverable image"
        else
          (* 1987 restart: reload the operator's zone-file dump — the
             record data survives (generously, right up to the crash)
             but the change journal does not. *)
          ( 0.0,
            Dns.Zone.create ~origin ~soa:(Dns.Zone.soa zone)
              (Dns.Db.all (Dns.Zone.db zone)) )
      in
      if not (Int32.equal (Dns.Zone.serial restart_zone) lost_serial) then
        failwith "durability restart: recovered serial mismatch";
      let primary2 = Dns.Server.create s_primary ~allow_update:true () in
      Dns.Server.add_zone primary2 restart_zone;
      Dns.Server.start primary2;
      Dns.Server.register_notify primary2 (Dns.Server.addr replica_server);
      Dns.Server.register_notify primary2 listener_addr;
      (* Wait out the partition, then publish one more update: its
         NOTIFY is what pulls the consumers back in. *)
      let now = Sim.Engine.time () in
      if now < heal_at then Sim.Engine.sleep (heal_at -. now +. 1.0);
      let t0 = Sim.Engine.time () in
      let b0 = Transport.Netstack.bytes_sent net in
      store_via admin "post-restart";
      let target = Dns.Zone.serial restart_zone in
      let cache_key =
        Hns.Meta_schema.cache_key (Hns.Meta_schema.context_key "post-restart")
      in
      let converged () =
        Int32.compare (Dns.Secondary.serial secondary) target >= 0
        && Hns.Cache.peek (Hns.Meta_client.cache client) ~key:cache_key
      in
      let rec wait () =
        if converged () then ()
        else if Sim.Engine.time () -. t0 > 55_000.0 then
          failwith "durability restart did not converge before the backstop"
        else begin
          Sim.Engine.sleep 5.0;
          wait ()
        end
      in
      wait ();
      let r =
        ( Sim.Engine.time () -. t0,
          Transport.Netstack.bytes_sent net - b0,
          !failed,
          recovery_ms )
      in
      Chaos.Injector.uninstall inj;
      stop_listener ();
      Dns.Secondary.detach secondary;
      Dns.Server.stop replica_server;
      Dns.Server.stop primary2;
      result := Some r);
  Sim.Engine.run engine;
  Option.get !result

let durability () =
  let s = dur_spill_run () in
  let stats = Sim.Stats.create () in
  List.iter (Sim.Stats.add stats) s.spill_append_ms;
  Printf.printf
    "  spill path (32 updates, 4 writers/window, calibrated 1987 disk):\n\
    \    ack latency mean %.1f ms, p95 %.1f ms — durable before acked\n\
    \    %d WAL appends shared %d group fsyncs (%.1f records/commit)\n\
    \    key-coalescing compaction: %.1fx smaller log\n\
    \    crash + recovery: %s in %.1f virtual ms\n\n"
    (Sim.Stats.mean stats)
    (Sim.Stats.percentile stats 95.0)
    s.spill_appends s.spill_commits
    (float_of_int s.spill_appends /. float_of_int (max 1 s.spill_commits))
    s.spill_ratio
    (if s.spill_recovered then "serial-exact replay" else "MISMATCH")
    s.spill_recovery_ms;
  let rows =
    List.map
      (fun zone_size ->
        let a_ms, a_bytes, a_failed, _ =
          dur_restart ~zone_size ~durable:false ()
        in
        let i_ms, i_bytes, i_failed, rec_ms =
          dur_restart ~zone_size ~durable:true ()
        in
        [
          Printf.sprintf "%d-record zone" zone_size;
          Printf.sprintf "%.0f ms / %d B / %d failed" a_ms a_bytes a_failed;
          Printf.sprintf "%.0f ms / %d B / %d failed (rec %.0f ms)" i_ms
            i_bytes i_failed rec_ms;
          Printf.sprintf "%.0fx fewer bytes"
            (float_of_int a_bytes /. float_of_int (max 1 i_bytes));
        ])
      [ 50; 200; 800 ]
  in
  E.print_table
    ~title:
      "Primary restart: crash during a partitioned update burst, then one\n\
      \  post-heal update pulls consumers back in (baseline restarts with an\n\
      \  empty journal -> full transfers; durable recovers snapshot + WAL and\n\
      \  serves IXFR from its last durable serial)"
    ~header:
      [ "zone"; "baseline restart"; "durable restart"; "delta advantage" ]
    rows

(* --- Shared host agent v2: cache, coalescing, resolve-tail prefetch - *)

(* Warm the public BIND's hot-name tracker. The bundle synthesizer's
   prefetch piggybacks whatever the confederation has been asking the
   public BIND about — every hostaddr NSM funnels its A queries
   through it — so drive a representative client over the six testbed
   hosts first, as the rest of the confederation would have. *)
let warm_hot_tracker (scn : S.t) =
  S.in_sim scn (fun () ->
      let warmer = S.new_hns scn ~on:scn.client_stack in
      for i = 0 to 5 do
        ignore (timed_resolve scn warmer (resolve_name ~mix_ch:false scn i))
      done)

(* One agent-mediated cold resolve: a fresh agent (empty shared cache)
   on rarotonga answers a client's ResolveAddr. The agent's bundle
   FindNSM comes back with the hot host addresses piggybacked, so the
   trailing remote NSM data round trip is skipped — the client pays
   one hop to the agent instead of the full tail. *)
let agent_resolve_cold (scn : S.t) i =
  S.in_sim scn (fun () ->
      let hns =
        S.new_hns ~cache_mode:Hns.Cache.Demarshalled scn ~on:scn.agent_stack
      in
      let agent =
        Hns.Agent.create hns ~service_overhead_ms:C.agent_service_overhead_ms ()
      in
      Hns.Agent.start agent;
      let name = resolve_name ~mix_ch:false scn i in
      let (), d =
        S.timed (fun () ->
            match
              Hns.Agent.remote_resolve_addr scn.client_stack
                ~agent:(Hns.Agent.binding agent) name
            with
            | Ok _ -> ()
            | Error e -> failwith (Hns.Errors.to_string e))
      in
      Hns.Agent.stop agent;
      d)

(* [k] client processes present the same cold key to one shared agent
   concurrently; the agent's singleflight collapses them into a single
   upstream meta query. Returns (upstream meta calls, requests the
   agent coalesced, per-caller latencies). *)
let agent_burst (scn : S.t) ?(k = 6) () =
  S.in_sim scn (fun () ->
      let hns =
        S.new_hns ~cache_mode:Hns.Cache.Demarshalled scn ~on:scn.agent_stack
      in
      let agent =
        Hns.Agent.create hns ~service_overhead_ms:C.agent_service_overhead_ms ()
      in
      Hns.Agent.start agent;
      let mb = Sim.Engine.Mailbox.create () in
      for i = 0 to k - 1 do
        Sim.Engine.spawn_child ~name:(Printf.sprintf "burst:%d" i) (fun () ->
            let (), d =
              S.timed (fun () ->
                  match
                    Hns.Agent.remote_find_nsm scn.client_stack
                      ~agent:(Hns.Agent.binding agent) ~context:scn.bind_context
                      ~query_class:Hns.Query_class.hrpc_binding
                  with
                  | Ok _ -> ()
                  | Error e -> failwith (Hns.Errors.to_string e))
            in
            Sim.Engine.Mailbox.send mb d)
      done;
      let latencies = List.init k (fun _ -> Sim.Engine.Mailbox.recv mb) in
      let upstream = Hns.Meta_client.remote_lookups (Hns.Client.meta hns) in
      let coalesced = Hns.Agent.coalesced agent in
      Hns.Agent.stop agent;
      (upstream, coalesced, latencies))

(* The same burst without an agent: [k] independent client processes,
   each with its own HNS instance, each paying its own meta query. *)
let direct_burst (scn : S.t) ?(k = 6) () =
  S.in_sim scn (fun () ->
      let clients = List.init k (fun _ -> S.new_hns scn ~on:scn.client_stack) in
      let mb = Sim.Engine.Mailbox.create () in
      List.iteri
        (fun i hns ->
          Sim.Engine.spawn_child ~name:(Printf.sprintf "direct:%d" i) (fun () ->
              ignore
                (timed_find_nsm hns ~context:scn.bind_context
                   ~query_class:Hns.Query_class.hrpc_binding);
              Sim.Engine.Mailbox.send mb ()))
        clients;
      for _ = 1 to k do
        Sim.Engine.Mailbox.recv mb
      done;
      List.fold_left
        (fun acc hns -> acc + Hns.Meta_client.remote_lookups (Hns.Client.meta hns))
        0 clients)

(* One long-lived agent serving a stream of resolves from the host's
   client processes: after the first request warms the shared cache
   (bundle + prefetched addresses), everything else is answered
   without upstream traffic. *)
let agent_session (scn : S.t) ?(requests = 8) () =
  S.in_sim scn (fun () ->
      let hns =
        S.new_hns ~cache_mode:Hns.Cache.Demarshalled scn ~on:scn.agent_stack
      in
      let agent =
        Hns.Agent.create hns ~service_overhead_ms:C.agent_service_overhead_ms ()
      in
      Hns.Agent.start agent;
      for i = 0 to requests - 1 do
        match
          Hns.Agent.remote_resolve_addr scn.client_stack
            ~agent:(Hns.Agent.binding agent)
            (resolve_name ~mix_ch:false scn i)
        with
        | Ok _ -> ()
        | Error e -> failwith (Hns.Errors.to_string e)
      done;
      let r =
        ( Hns.Agent.requests agent,
          Hns.Agent.cache_hits agent,
          Hns.Agent.cache_hit_ratio agent,
          Hns.Agent.prefetch_seeded agent,
          Hns.Agent.prefetch_hits agent )
      in
      Hns.Agent.stop agent;
      r)

let agent () =
  let bundle = S.build ~bundle:true () in
  let pscn = S.build ~bundle:true ~prefetch:true () in
  warm_hot_tracker pscn;
  let mean f =
    let s = Sim.Stats.create () in
    for i = 0 to 5 do
      Sim.Stats.add s (f i)
    done;
    Sim.Stats.mean s
  in
  let direct_cold =
    mean (fun i ->
        S.in_sim bundle (fun () ->
            timed_resolve bundle
              (S.new_hns bundle ~on:bundle.S.client_stack)
              (resolve_name ~mix_ch:false bundle i)))
  in
  let agented_cold = mean (agent_resolve_cold pscn) in
  let hscn = S.build ~bundle:true ~prefetch:true ~hand_codec:true () in
  warm_hot_tracker hscn;
  let agented_cold_hand = mean (agent_resolve_cold hscn) in
  let upstream, coalesced, burst_lat = agent_burst pscn () in
  let direct_calls = direct_burst pscn () in
  let requests, hits, ratio, seeded, phits = agent_session pscn () in
  E.print_table
    ~title:
      "Shared host agent v2: cross-process cache + coalescing + resolve-tail\n\
      \  prefetch (cold resolve = fresh caches everywhere; 6-way burst = six\n\
      \  client processes, same cold key, one agent)"
    ~header:[ "probe"; "direct (bundle)"; "via agent"; "what the agent buys" ]
    [
      [
        "resolve cold, mean (ms)";
        Printf.sprintf "%.1f" direct_cold;
        Printf.sprintf "%.1f" agented_cold;
        Printf.sprintf "%.0f ms: prefetched tail beats the NSM round trip"
          (direct_cold -. agented_cold);
      ];
      [
        "resolve cold + hand codec (ms)";
        "-";
        Printf.sprintf "%.1f" agented_cold_hand;
        Printf.sprintf "%.0f ms more: stub decodes off the cold path"
          (agented_cold -. agented_cold_hand);
      ];
      [
        "6-way burst, upstream meta calls";
        Printf.sprintf "%d" direct_calls;
        Printf.sprintf "%d (%d coalesced)" upstream coalesced;
        "cross-process singleflight";
      ];
      [
        "6-way burst, mean FindNSM (ms)";
        "-";
        Printf.sprintf "%.1f"
          (List.fold_left ( +. ) 0.0 burst_lat
          /. float_of_int (List.length burst_lat));
        "followers ride the leader's query";
      ];
      [
        "8-resolve session, shared-cache hits";
        "0 of 8 (no shared state)";
        Printf.sprintf "%d of %d (ratio %.2f)" hits requests ratio;
        Printf.sprintf "%d addrs prefetched, %d tail skips" seeded phits;
      ];
    ]

(* --- Colocation matrix: Table 3.1 arrangements x cache mode --------- *)

let arrangement_slug = function
  | Hns.Import.All_linked -> "all_linked"
  | Hns.Import.Combined_agent -> "combined_agent"
  | Hns.Import.Remote_hns -> "remote_hns"
  | Hns.Import.Remote_nsms -> "remote_nsms"
  | Hns.Import.All_remote -> "all_remote"

let mode_slug = function
  | Hns.Cache.Marshalled -> "marshalled"
  | Hns.Cache.Demarshalled -> "demarshalled"

(* Cold/warm import probes across the full matrix: five Table 3.1
   arrangements x {marshalled, demarshalled}, against a bundle-enabled
   testbed. Returns BENCH rows named
   coldpath.<arrangement>.<mode>.import_{cold,warm}. *)
let colocation_matrix ?(n = 4) () =
  List.concat_map
    (fun mode ->
      let scn = S.build ~cache_mode:mode ~bundle:true () in
      List.concat_map
        (fun arrangement ->
          let prefix =
            Printf.sprintf "coldpath.%s.%s" (arrangement_slug arrangement)
              (mode_slug mode)
          in
          let cold = Sim.Stats.create ~name:(prefix ^ ".import_cold") () in
          let warm = Sim.Stats.create ~name:(prefix ^ ".import_warm") () in
          for i = 0 to n - 1 do
            let service =
              List.nth scn.S.alt_service_names
                (i mod List.length scn.S.alt_service_names)
            in
            let a, _, c = measure_table_3_1_row ~service scn arrangement in
            Sim.Stats.add cold a;
            Sim.Stats.add warm c
          done;
          [ (prefix ^ ".import_cold", cold); (prefix ^ ".import_warm", warm) ])
        Hns.Import.all_arrangements)
    [ Hns.Cache.Marshalled; Hns.Cache.Demarshalled ]

let colocation () =
  let rows = colocation_matrix () in
  let value name =
    match List.assoc_opt name rows with
    | Some s -> Printf.sprintf "%.0f" (Sim.Stats.mean s)
    | None -> "-"
  in
  E.print_table
    ~title:
      "Colocation matrix: cold/warm import across the five Table 3.1\n\
      \  arrangements x cache mode, bundle-enabled testbed (mean ms)"
    ~header:
      [ "arrangement"; "marsh cold"; "marsh warm"; "demarsh cold"; "demarsh warm" ]
    (List.map
       (fun a ->
         let slug = arrangement_slug a in
         [
           Hns.Import.arrangement_name a;
           value (Printf.sprintf "coldpath.%s.marshalled.import_cold" slug);
           value (Printf.sprintf "coldpath.%s.marshalled.import_warm" slug);
           value (Printf.sprintf "coldpath.%s.demarshalled.import_cold" slug);
           value (Printf.sprintf "coldpath.%s.demarshalled.import_warm" slug);
         ])
       Hns.Import.all_arrangements);
  print_endline
    "  the demarshalled cache pays off most where caches are long-lived --\n\
    \  exactly the agent arrangements the paper expected to benefit.\n"

(* --- Open-loop load harness ----------------------------------------- *)

module O = Workload.Openloop

(* Run each config, optionally narrating the reports, and return the
   bench rows. The flash pair is the PR's proof obligation: decayed
   ranking must keep the steady p99 inside the SLO where the naive
   sliding count breaches it. *)
let loadharness_rows ?(verbose = false) ?(configs = O.bench_configs ()) () =
  List.concat_map
    (fun cfg ->
      let r = O.run cfg in
      if verbose then Format.printf "%a@." O.pp_report r;
      O.report_rows r)
    configs

let loadharness () =
  print_endline
    "Open-loop load harness: a million-client confederation (virtual time)";
  print_endline
    "  open-loop arrivals (latency includes queueing delay), Zipf names,";
  print_endline
    "  agent fleets with cache churn, flash crowd A/B on the hot ranking";
  print_newline ();
  let rows = loadharness_rows ~verbose:true () in
  let steady label =
    List.assoc_opt (Printf.sprintf "loadharness.%s.steady_ms" label) rows
  in
  match (steady "flash.decayed", steady "flash.sliding") with
  | Some d, Some s ->
      Printf.printf
        "  flash-crowd A/B, steady-set p99: decayed %.1f ms vs sliding %.1f \
         ms\n\
        \  (the sliding window forgets the steady heads during the flash;\n\
        \  decayed mass rides it out, so churned agents reseed good hints)\n"
        (Sim.Stats.percentile d 99.0)
        (Sim.Stats.percentile s 99.0)
  | _ -> ()

(* --- marshalling: hand codec vs generated stubs --------------------- *)

(* Wall-clock A/B of the two codec implementations over the hot record
   shapes, mirroring the paper's Table 3.2 finding (generated stubs
   10-25 ms vs 0.65-2.6 ms hand-coded). Everything else in this file
   reports virtual-time costs; these rows measure the harness's real
   encode/decode speed, because the hand codec is an implementation
   optimisation, not a model change. The specimen set is one of each
   hot shape (bundle markers, NSM/NS records, prefetch HostAddress
   rows, journal-delta strings, alternate lists) so the per-record
   figure reflects the real mix, and the hand path goes through
   [Hns.Hot_codec.encode_value]/[decode_value] — the same dispatch the
   meta client uses, fallback check included. *)
type marshal_specimen =
  | Sp_nsm of Hns.Meta_schema.nsm_info
  | Sp_ns of Hns.Meta_schema.ns_info
  | Sp_str of string  (** mapping 1-3 values / journal-delta payloads *)
  | Sp_addr of Transport.Address.ip  (** prefetch-tail HostAddress row *)
  | Sp_alts of string list
  | Sp_status of Hns.Meta_schema.bundle_status

let marshal_specimen_ty = function
  | Sp_nsm _ -> Hns.Meta_schema.nsm_info_ty
  | Sp_ns _ -> Hns.Meta_schema.ns_info_ty
  | Sp_str _ -> Hns.Meta_schema.string_ty
  | Sp_addr _ -> Hns.Meta_schema.host_addr_ty
  | Sp_alts _ -> Hns.Meta_schema.nsm_alternates_ty
  | Sp_status _ -> Hns.Meta_schema.bundle_status_ty

(* The consumed form is the schema record (or raw scalar), not the
   Value tree: that is what FindNSM / the prefetch seeder / the journal
   actually read and write. The generated path therefore pays the
   Value conversion both ways — exactly as the real fallback does. *)
let marshal_specimen_value = function
  | Sp_nsm i -> Hns.Meta_schema.nsm_info_to_value i
  | Sp_ns i -> Hns.Meta_schema.ns_info_to_value i
  | Sp_str s -> Wire.Value.str s
  | Sp_addr ip -> Wire.Value.Uint ip
  | Sp_alts ss -> Wire.Value.Array (List.map Wire.Value.str ss)
  | Sp_status st ->
      Wire.Value.Enum
        (match st with
        | Hns.Meta_schema.B_ok -> 0
        | B_no_context -> 1
        | B_no_nsm -> 2
        | B_no_binding -> 3)

let marshal_hand_encode = function
  | Sp_nsm i -> Hns.Hot_codec.encode_nsm_info i
  | Sp_ns i -> Hns.Hot_codec.encode_ns_info i
  | Sp_str s -> Hns.Hot_codec.encode_string s
  | Sp_addr ip -> Hns.Hot_codec.encode_host_addr ip
  | Sp_alts ss -> Hns.Hot_codec.encode_alternates ss
  | Sp_status st -> Hns.Hot_codec.encode_bundle_status st

(* Straight to the consumed form; [ignore] on the option keeps the
   decode honest (the fallback check is part of the path). *)
let marshal_hand_decode sp wire =
  match sp with
  | Sp_nsm _ -> ignore (Hns.Hot_codec.decode_nsm_info wire)
  | Sp_ns _ -> ignore (Hns.Hot_codec.decode_ns_info wire)
  | Sp_str _ -> ignore (Hns.Hot_codec.decode_string wire)
  | Sp_addr _ -> ignore (Hns.Hot_codec.decode_host_addr wire)
  | Sp_alts _ -> ignore (Hns.Hot_codec.decode_alternates wire)
  | Sp_status _ -> ignore (Hns.Hot_codec.decode_bundle_status wire)

(* Generated path: wire <-> Value tree <-> consumed form. *)
let marshal_generic_encode sp =
  Wire.Generic_marshal.marshal Wire.Data_rep.Xdr (marshal_specimen_ty sp)
    (marshal_specimen_value sp)

let marshal_generic_decode sp wire =
  let v = Wire.Generic_marshal.unmarshal Wire.Data_rep.Xdr (marshal_specimen_ty sp) wire in
  match sp with
  | Sp_nsm _ -> ignore (Hns.Meta_schema.nsm_info_of_value v)
  | Sp_ns _ -> ignore (Hns.Meta_schema.ns_info_of_value v)
  | Sp_str _ -> ignore (Wire.Value.get_str v)
  | Sp_addr _ | Sp_alts _ | Sp_status _ -> ignore v

let marshal_specimens =
  let nsm k =
    Sp_nsm
      {
        Hns.Meta_schema.nsm_host = Printf.sprintf "nsm%02d.cs.washington.edu" k;
        nsm_host_context = "uw-cs";
        nsm_port = 2049 + k;
        nsm_prog = 200_000 + k;
        nsm_vers = 2;
        nsm_suite =
          {
            Hrpc.Component.data_rep =
              (if k mod 2 = 0 then Wire.Data_rep.Xdr else Courier);
            transport = (if k mod 2 = 0 then Hrpc.Component.T_udp else T_tcp);
            control =
              (match k mod 3 with
              | 0 -> Hrpc.Component.C_sunrpc
              | 1 -> C_courier
              | _ -> C_raw);
          };
      }
  in
  let ns k =
    Sp_ns
      {
        Hns.Meta_schema.ns_type = (if k mod 2 = 0 then "bind" else "clearinghouse");
        ns_host = Printf.sprintf "ns%02d.cs.washington.edu" k;
        ns_host_context = "uw-cs";
        ns_port = 53;
      }
  in
  List.concat
    (List.init 4 (fun k ->
         [
           nsm k;
           ns k;
           Sp_str (String.make (4 + (11 * k)) 'x');
           Sp_addr (Int32.of_int (0x0A000100 + k));
           Sp_alts (List.init (1 + k) (fun i -> Printf.sprintf "alt%d-%d" k i));
           Sp_status
             (match k mod 4 with
             | 0 -> Hns.Meta_schema.B_ok
             | 1 -> B_no_context
             | 2 -> B_no_nsm
             | _ -> B_no_binding);
         ]))

type marshal_result = {
  mr_generated_encode_us : float;  (** per record *)
  mr_generated_decode_us : float;
  mr_hand_encode_us : float;
  mr_hand_decode_us : float;
  mr_record_bytes : float;  (** mean wire bytes per record (both codecs) *)
}

(* [passes] full sweeps of the specimen set per measurement, after one
   untimed warmup sweep. Per-record time is the batch mean, so clock
   resolution never bites. *)
let marshal_measure ?(passes = 500) ?(specimens = marshal_specimens) () =
  let with_wire =
    List.map (fun sp -> (sp, marshal_generic_encode sp)) specimens
  in
  (* The hand codec must produce the identical wire form (the
     round-trip suite proves it; this is a live guard so a divergence
     can never produce a flattering bench number). *)
  List.iter
    (fun (sp, wire) ->
      if marshal_hand_encode sp <> wire then
        failwith "marshal bench: hand codec diverged from generic wire form")
    with_wire;
  let ops = passes * List.length with_wire in
  let timed_us f =
    f ();
    (* warmup *)
    let t0 = Unix.gettimeofday () in
    for _ = 1 to passes do
      f ()
    done;
    (Unix.gettimeofday () -. t0) *. 1e6 /. float_of_int ops
  in
  let g_enc =
    timed_us (fun () ->
        List.iter (fun (sp, _) -> ignore (marshal_generic_encode sp)) with_wire)
  in
  let g_dec =
    timed_us (fun () ->
        List.iter (fun (sp, wire) -> marshal_generic_decode sp wire) with_wire)
  in
  let h_enc =
    timed_us (fun () ->
        List.iter (fun (sp, _) -> ignore (marshal_hand_encode sp)) with_wire)
  in
  let h_dec =
    timed_us (fun () ->
        List.iter (fun (sp, wire) -> marshal_hand_decode sp wire) with_wire)
  in
  let total_bytes =
    List.fold_left (fun acc (_, w) -> acc + String.length w) 0 with_wire
  in
  {
    mr_generated_encode_us = g_enc;
    mr_generated_decode_us = g_dec;
    mr_hand_encode_us = h_enc;
    mr_hand_decode_us = h_dec;
    mr_record_bytes =
      float_of_int total_bytes /. float_of_int (List.length with_wire);
  }

(* Rows for BENCH_hns.json: marshal.{generated,hand}.{encode_ms,
   decode_ms,bytes} — the virtual-time marshalling cost each codec
   path charges per record, sampled over the specimen mix (one sample
   per specimen, so the distribution spans the hot shapes). These are
   the calibrated costs the latency tables are built from — Table
   3.2's generated-stub band against the paper's hand-coded band —
   and, like every other [_ms] row in the artifact, they are
   deterministic. The wall-clock A/B of the two implementations is
   the [marshal] experiment's printed output. *)
let marshal_rows () =
  let names =
    [
      "marshal.generated.encode_ms";
      "marshal.generated.decode_ms";
      "marshal.generated.bytes";
      "marshal.hand.encode_ms";
      "marshal.hand.decode_ms";
      "marshal.hand.bytes";
    ]
  in
  let stats = List.map (fun name -> (name, Sim.Stats.create ~name ())) names in
  let add name v = Sim.Stats.add (List.assoc name stats) v in
  List.iter
    (fun sp ->
      let wire = marshal_generic_encode sp in
      let generated_ms =
        Wire.Generic_marshal.cost C.generated_cost (marshal_specimen_value sp)
      in
      let hand_ms = Wire.Hotcodec.cost C.hand_cost ~records:1 in
      let bytes = float_of_int (String.length wire) in
      (* The cost models are symmetric: stubs charge the same walk to
         marshal and unmarshal a record. *)
      add "marshal.generated.encode_ms" generated_ms;
      add "marshal.generated.decode_ms" generated_ms;
      add "marshal.generated.bytes" bytes;
      add "marshal.hand.encode_ms" hand_ms;
      add "marshal.hand.decode_ms" hand_ms;
      add "marshal.hand.bytes" bytes)
    marshal_specimens;
  stats

let marshal_shape_name = function
  | Sp_nsm _ -> "nsm_info"
  | Sp_ns _ -> "ns_info"
  | Sp_str _ -> "string"
  | Sp_addr _ -> "host_addr"
  | Sp_alts _ -> "alternates"
  | Sp_status _ -> "status"

let marshal () =
  let r = marshal_measure () in
  let shapes =
    List.sort_uniq String.compare
      (List.map marshal_shape_name marshal_specimens)
  in
  let per_shape =
    List.map
      (fun shape ->
        let specimens =
          List.filter (fun sp -> marshal_shape_name sp = shape) marshal_specimens
        in
        let s = marshal_measure ~specimens () in
        let g = s.mr_generated_encode_us +. s.mr_generated_decode_us in
        let h = s.mr_hand_encode_us +. s.mr_hand_decode_us in
        [ shape; Printf.sprintf "%.3f" g; Printf.sprintf "%.3f" h;
          Printf.sprintf "%.1fx" (g /. h) ])
      shapes
  in
  E.print_table
    ~title:"  per shape (encode+decode us per record)"
    ~header:[ "shape"; "generated"; "hand"; "speedup" ]
    per_shape;
  E.print_table
    ~title:
      "Marshalling: hand codec vs generated stubs over the hot record mix\n\
      \  (wall clock, per record; every other table is virtual-time)"
    ~header:[ "codec"; "encode us"; "decode us"; "bytes" ]
    [
      [
        "generated";
        Printf.sprintf "%.3f" r.mr_generated_encode_us;
        Printf.sprintf "%.3f" r.mr_generated_decode_us;
        Printf.sprintf "%.0f" r.mr_record_bytes;
      ];
      [
        "hand";
        Printf.sprintf "%.3f" r.mr_hand_encode_us;
        Printf.sprintf "%.3f" r.mr_hand_decode_us;
        Printf.sprintf "%.0f" r.mr_record_bytes;
      ];
    ];
  let ratio =
    (r.mr_generated_encode_us +. r.mr_generated_decode_us)
    /. (r.mr_hand_encode_us +. r.mr_hand_decode_us)
  in
  Printf.printf
    "  harness encode+decode speedup: %.1fx (wall clock, this machine)\n" ratio;
  let rows = marshal_rows () in
  let mean name = Sim.Stats.mean (List.assoc name rows) in
  let g = mean "marshal.generated.encode_ms"
  and h = mean "marshal.hand.encode_ms" in
  Printf.printf
    "  modelled per-record cost (the BENCH rows): generated %.1f ms vs hand\n\
    \  %.2f ms -> %.0fx, the paper's Table 3.2 band (10-25 ms generated stubs\n\
    \  vs 0.65-2.6 ms hand-coded; models %.2f+%.2f/node vs %.2f+%.2f/record)\n"
    g h (g /. h) C.generated_cost.Wire.Generic_marshal.per_call_ms
    C.generated_cost.Wire.Generic_marshal.per_node_ms
    C.hand_cost.Wire.Hotcodec.per_call_ms C.hand_cost.Wire.Hotcodec.per_record_ms

(* --- JSON artifacts ------------------------------------------------- *)

(* Per-experiment latency distributions for BENCH_hns.json. Each row
   repeats a compact workload [n] times on the virtual clock, varying
   the target host / query class / service name per iteration (see
   [resolve_target]) so the document carries real p50/p95, not eight
   copies of one sample. *)
(* --- Fan-out: sharded + replicated meta-store ---------------------- *)

module F = Workload.Fanout

(* The headline scale-out A/B: a growing client fleet against the
   single-primary baseline (replicas = 0, every read lands on its
   partition primary) versus the replicated arm (a chained replica
   tree absorbing the reads). Primary QPS flat in one arm and linear
   in the other is the whole story; the rww table shows what serial
   pinning buys. *)
let fanout () =
  let sweep_row (r : F.report) =
    [
      r.F.config.F.label;
      string_of_int r.F.config.F.clients;
      Printf.sprintf "%dx%d" r.F.config.F.partitions r.F.config.F.replicas;
      Printf.sprintf "%.1f" r.F.primary_qps;
      Printf.sprintf "%.1f" r.F.replica_qps;
      Printf.sprintf "%.0f ms" r.F.converge_ms;
      Printf.sprintf "%d/%d" r.F.routed_reads r.F.reads;
      Printf.sprintf "%d hit / %d chased" r.F.referral_hits r.F.referral_chases;
    ]
  in
  let rows =
    List.concat_map
      (fun (base, tree) ->
        [ sweep_row (F.run base); sweep_row (F.run tree) ])
      (F.sweep ())
  in
  E.print_table
    ~title:
      "Meta-store fan-out: delegated partitions + chained replica trees\n\
      \  (single.* = all reads on the partition primaries; tree.* = replica\n\
      \   routing; primary qps flat under tree.* is the scale-out signal)"
    ~header:
      [
        "arm";
        "clients";
        "parts x reps";
        "primary qps";
        "replica qps";
        "converge";
        "routed";
        "referrals";
      ]
    rows;
  let rww pinned =
    let r = F.run (F.rww_config ~pinned ()) in
    [
      r.F.config.F.label;
      (if pinned then "on" else "off");
      Printf.sprintf "%d/%d" r.F.stale_reads r.F.config.F.rww_rounds;
      string_of_int r.F.primary_fallbacks;
    ]
  in
  E.print_table
    ~title:
      "Read-your-writes A/B: write then cold-read your own record, 12 rounds\n\
      \  (pinning restricts routed reads to caught-up replicas, falling back\n\
      \   to the primary; without it the router may hit a stale replica)"
    ~header:[ "arm"; "pinning"; "stale reads"; "primary fallbacks" ]
    [ rww true; rww false ]

let json_rows ?(n = 8) () =
  let scn = S.build () in
  let sampled_on scn name f =
    let stats = Sim.Stats.create ~name () in
    for i = 0 to n - 1 do
      Sim.Stats.add stats (f scn i)
    done;
    (name, stats)
  in
  let sampled name f = sampled_on scn name f in
  let import_rows =
    List.concat_map
      (fun (label, arrangement) ->
        let miss = Sim.Stats.create () in
        let hns_hit = Sim.Stats.create () in
        let both_hit = Sim.Stats.create () in
        for i = 0 to n - 1 do
          (* Rotate over the varied-length alternate services: same
             target program, different request sizes. *)
          let service =
            List.nth scn.alt_service_names
              (i mod List.length scn.alt_service_names)
          in
          let a, b, c = measure_table_3_1_row ~service scn arrangement in
          Sim.Stats.add miss a;
          Sim.Stats.add hns_hit b;
          Sim.Stats.add both_hit c
        done;
        [
          (label ^ ".miss", miss);
          (label ^ ".hns_hit", hns_hit);
          (label ^ ".both_hit", both_hit);
        ])
      [
        ("import.all_linked", Hns.Import.All_linked);
        ("import.all_remote", Hns.Import.All_remote);
      ]
  in
  (* The collapsed cold path: same probes against a bundle-enabled
     testbed, plus preload-then-resolve and the coalesced stampede. *)
  let coldpath_rows =
    let bscn = S.build ~bundle:true () in
    let stampede_stats =
      let stats = Sim.Stats.create ~name:"coldpath.stampede.find_nsm_ms" () in
      let latencies, _lookups = stampede bscn ~waiters:(max 2 n) () in
      List.iter (Sim.Stats.add stats) latencies;
      ("coldpath.stampede.find_nsm_ms", stats)
    in
    [
      sampled_on bscn "coldpath.bundle.resolve_cold" resolve_cold;
      sampled_on bscn "coldpath.bundle.find_nsm_cold" find_nsm_cold;
      sampled "coldpath.preload.first_resolve" preload_then_resolve;
      stampede_stats;
    ]
  in
  (* Chaos availability: resolve latency under the fault plans, split
     by phase. One run (not [n]) — each phase is already 20 samples on
     the virtual clock. Keeps the chaos.* counters nonzero in the
     metrics snapshot written alongside. *)
  let chaos_rows =
    let r = chaos_run ~reset_metrics:false () in
    let stats_of name phase =
      let stats = Sim.Stats.create ~name () in
      List.iter (fun o -> Sim.Stats.add stats o.ms) phase.outcomes;
      (name, stats)
    in
    [
      stats_of "chaos.failover.resolve_ms" r.failover_phase;
      stats_of "chaos.stale.resolve_ms" r.stale_phase;
    ]
  in
  (* Change propagation: convergence latency and wire bytes for one
     update, AXFR-refreshing vs delta-refreshing consumers. Zone size
     varies per iteration so the distributions carry real spread. *)
  let propagation_rows =
    let per_mode label mode =
      let ms = Sim.Stats.create ~name:(label ^ ".converge_ms") () in
      let bytes = Sim.Stats.create ~name:(label ^ ".bytes") () in
      for i = 0 to n - 1 do
        let m, b, _ = prop_measure ~zone_size:(150 + (50 * i)) ~mode () in
        Sim.Stats.add ms m;
        Sim.Stats.add bytes (float_of_int b)
      done;
      [ (label ^ ".converge_ms", ms); (label ^ ".bytes", bytes) ]
    in
    per_mode "propagation.axfr" Dns.Secondary.Axfr
    @ per_mode "propagation.ixfr" Dns.Secondary.Ixfr
  in
  (* Durable meta-store: the spill path's ack latency and group-commit
     sharing, recovery cost, compaction ratio, and the restart A/B
     (baseline empty-journal restart vs snapshot+WAL recovery). *)
  let durability_rows =
    let append_ms = Sim.Stats.create ~name:"durability.wal_append_ms" () in
    let group = Sim.Stats.create ~name:"durability.group_commit" () in
    let rec_ms = Sim.Stats.create ~name:"durability.recovery_ms" () in
    let ratio = Sim.Stats.create ~name:"durability.compaction_ratio" () in
    for _ = 1 to min n 4 do
      let s = dur_spill_run () in
      List.iter (Sim.Stats.add append_ms) s.spill_append_ms;
      Sim.Stats.add group
        (float_of_int s.spill_appends /. float_of_int (max 1 s.spill_commits));
      Sim.Stats.add rec_ms s.spill_recovery_ms;
      Sim.Stats.add ratio s.spill_ratio
    done;
    let restart_arm label durable =
      let ms = Sim.Stats.create ~name:(label ^ ".converge_ms") () in
      let bytes = Sim.Stats.create ~name:(label ^ ".bytes") () in
      for i = 0 to min (n - 1) 3 do
        let m, b, failed, _ =
          dur_restart ~zone_size:(150 + (50 * i)) ~durable ()
        in
        if failed > 0 then failwith "durability row: failed resolves";
        Sim.Stats.add ms m;
        Sim.Stats.add bytes (float_of_int b)
      done;
      [ (label ^ ".converge_ms", ms); (label ^ ".bytes", bytes) ]
    in
    [
      ("durability.wal_append_ms", append_ms);
      ("durability.group_commit", group);
      ("durability.recovery_ms", rec_ms);
      ("durability.compaction_ratio", ratio);
    ]
    @ restart_arm "propagation.restart.axfr" false
    @ restart_arm "propagation.restart.ixfr" true
  in
  (* Shared agent v2: the prefetched agent-mediated cold resolve, and
     the upstream-call collapse of a cross-process burst (with its
     agentless control). *)
  let agent_rows =
    let pscn = S.build ~bundle:true ~prefetch:true () in
    warm_hot_tracker pscn;
    let resolve_stats = Sim.Stats.create ~name:"agent.resolve_cold" () in
    for i = 0 to n - 1 do
      Sim.Stats.add resolve_stats (agent_resolve_cold pscn i)
    done;
    (* The same cold resolve with the fleet on the hand codec: the
       bundle decode and the prefetch tail charge Calib.hand_cost
       instead of the generated stubs' walk. *)
    let hscn = S.build ~bundle:true ~prefetch:true ~hand_codec:true () in
    warm_hot_tracker hscn;
    let resolve_hand = Sim.Stats.create ~name:"agent.resolve_cold_hand" () in
    for i = 0 to n - 1 do
      Sim.Stats.add resolve_hand (agent_resolve_cold hscn i)
    done;
    let upstream = Sim.Stats.create ~name:"agent.burst.upstream_calls" () in
    let direct = Sim.Stats.create ~name:"agent.burst.upstream_calls_direct" () in
    (* Deterministic per iteration; a few repetitions confirm that,
       and the row keeps the document's requested sample count. *)
    for _ = 1 to min n 3 do
      let u, _, _ = agent_burst pscn () in
      Sim.Stats.add upstream (float_of_int u);
      Sim.Stats.add direct (float_of_int (direct_burst pscn ()))
    done;
    [
      ("agent.resolve_cold", resolve_stats);
      ("agent.resolve_cold_hand", resolve_hand);
      ("agent.burst.upstream_calls", upstream);
      ("agent.burst.upstream_calls_direct", direct);
    ]
  in
  (* Meta-store fan-out: the scale-out sweep (primary QPS + tree
     convergence per arm) and the read-your-writes A/B. The artifact
     regression test (small [n]) keeps one scale point; the full
     artifact carries the whole sweep — three replica-count points
     against their baselines. *)
  let fanout_rows =
    let pairs =
      if n <= 4 then [ List.hd (F.sweep ()) ] else F.sweep ()
    in
    let sweep_rows =
      List.concat_map
        (fun (base, tree) ->
          F.report_rows (F.run base) @ F.report_rows (F.run tree))
        pairs
    in
    let rww_arms = if n <= 4 then [ true ] else [ true; false ] in
    let rww_rows =
      List.concat_map
        (fun pinned -> F.report_rows (F.run (F.rww_config ~pinned ())))
        rww_arms
    in
    sweep_rows @ rww_rows
  in
  let colocation_rows = colocation_matrix ~n:(min n 4) () in
  [
    sampled "resolve.cold" resolve_cold;
    sampled "resolve.warm" resolve_warm;
    sampled "find_nsm.cold" find_nsm_cold;
    sampled "find_nsm.warm" find_nsm_warm;
  ]
  (* Small [n] (the artifact regression test) gets the CI smoke pair;
     the full artifact carries the million-client bench suite. *)
  @ import_rows @ coldpath_rows @ chaos_rows @ propagation_rows
  @ durability_rows @ fanout_rows @ agent_rows
  @ colocation_rows
  @ marshal_rows ()
  @ loadharness_rows
      ~configs:
        (if n <= 4 then [ O.smoke (); O.smoke ~ranking:O.Sliding () ]
         else O.bench_configs ())
      ()

(* Write BENCH_hns.json (latency distributions) and BENCH_obs.json (the
   metrics registry as left by everything this process ran). Returns
   both paths. *)
let write_json_artifacts ?(dir = ".") ?n () =
  let rows = json_rows ?n () in
  let bench_path = Filename.concat dir "BENCH_hns.json" in
  Obs.Export.write_bench_json ~path:bench_path rows;
  let obs_path = Filename.concat dir "BENCH_obs.json" in
  Obs.Export.write_metrics_snapshot ~path:obs_path ();
  (bench_path, obs_path)
