(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (printing ours/paper side by side), then runs a
   Bechamel wall-clock benchmark of each experiment's simulated
   workload — one Test.make per table/figure.

   Usage:
     dune exec bench/main.exe              # everything
     dune exec bench/main.exe -- table-3.1 # one experiment
     dune exec bench/main.exe -- --list    # available names
     dune exec bench/main.exe -- --no-bechamel *)

let experiments =
  [
    ("table-3.1", "Table 3.1: binding cost by colocation x cache state", Experiments.table_3_1);
    ("table-3.2", "Table 3.2: marshalling costs on cache access speed", Experiments.table_3_2);
    ("figure-2.1", "Figure 2.1: HNS query processing walk-through", Experiments.figure_2_1);
    ("overhead", "Section 3: FindNSM and NSM-call overheads", Experiments.overhead);
    ("compare", "Section 3: underlying services and baselines", Experiments.compare);
    ("preload", "Section 3: cache preloading and break-even", Experiments.preload);
    ("eq1", "Equation (1): colocation break-even analysis", Experiments.eq1);
    ("hit-sweep", "Locality sweep: hit ratio vs Zipf skew", Experiments.hit_sweep);
    ("same-host", "Same-host colocation saving", Experiments.same_host);
    ("ablation-collapsed", "Ablation: collapsed vs separate FindNSM mappings",
     Experiments.ablation_collapsed);
    ("ablation-demarshalled", "Ablation: Table 3.1 with the demarshalled cache",
     Experiments.ablation_demarshalled);
    ("ablation-ttl", "Ablation: TTL invalidation vs staleness",
     Experiments.ablation_ttl);
    ("compare-broadcast", "V-style broadcast location vs the HNS",
     Experiments.compare_broadcast);
    ("scale-types", "Scaling in the heterogeneity dimension",
     Experiments.scale_types);
    ("chaos", "Chaos availability: failover and serve-stale under faults",
     Experiments.chaos);
    ("coldpath", "Cold-path collapse: bundled meta queries, preloading, coalescing",
     Experiments.coldpath);
    ("propagation", "Change propagation: journal, NOTIFY push, IXFR vs AXFR",
     Experiments.propagation);
    ("durability", "Durable meta-store: WAL group commit, crash recovery, restart A/B",
     Experiments.durability);
    ("fanout", "Meta-store fan-out: partitions, replica trees, routed reads",
     Experiments.fanout);
    ("agent", "Shared host agent v2: cache, coalescing, resolve-tail prefetch",
     Experiments.agent);
    ("colocation", "Colocation matrix: arrangements x cache mode, cold/warm",
     Experiments.colocation);
    ("load", "Open-loop load harness: million clients, flash-crowd ranking A/B",
     Experiments.loadharness);
    ("marshal", "Hand codec vs generated stubs: wall-clock A/B on the hot shapes",
     Experiments.marshal);
  ]

(* --- Bechamel: wall-clock cost of each experiment's workload -------- *)

let bechamel_tests () =
  let open Bechamel in
  (* Each staged thunk runs a compact version of the experiment's
     simulated workload; Bechamel measures the harness's real cost. *)
  let scn = lazy (Workload.Scenario.build ()) in
  let table31 () =
    let scn = Lazy.force scn in
    ignore (Experiments.measure_table_3_1_row scn Hns.Import.All_linked)
  in
  let t32_world = lazy (Experiments.t32_world ()) in
  let table32 () =
    ignore (Experiments.t32_measure (Lazy.force t32_world) Hns.Cache.Marshalled "six.z")
  in
  let find_nsm () =
    let scn = Lazy.force scn in
    Workload.Scenario.in_sim scn (fun () ->
        let hns = Workload.Scenario.new_hns scn ~on:scn.Workload.Scenario.client_stack in
        match
          Hns.Client.find_nsm hns ~context:scn.Workload.Scenario.bind_context
            ~query_class:Hns.Query_class.hrpc_binding
        with
        | Ok _ -> ()
        | Error e -> failwith (Hns.Errors.to_string e))
  in
  let marshal_value =
    Wire.Value.Array
      (List.init 6 (fun i ->
           Wire.Value.Struct
             [ ("name", Wire.Value.str "six.z"); ("a", Wire.Value.Uint (Int32.of_int i)) ]))
  in
  let marshal_ty =
    Wire.Idl.T_array
      (Wire.Idl.T_struct [ ("name", Wire.Idl.T_string); ("a", Wire.Idl.T_uint) ])
  in
  let nsm_specimen =
    {
      Hns.Meta_schema.nsm_host = "nsm.cs.washington.edu";
      nsm_host_context = "uw-cs";
      nsm_port = 2049;
      nsm_prog = 200_000;
      nsm_vers = 2;
      nsm_suite =
        {
          Hrpc.Component.data_rep = Wire.Data_rep.Xdr;
          transport = Hrpc.Component.T_udp;
          control = Hrpc.Component.C_sunrpc;
        };
    }
  in
  [
    Test.make ~name:"table-3.1 row (all-linked, 3 cache states)"
      (Staged.stage table31);
    Test.make ~name:"table-3.2 cell (marshalled, 6 RRs)" (Staged.stage table32);
    Test.make ~name:"find-nsm (cold cache)" (Staged.stage find_nsm);
    Test.make ~name:"xdr marshal 6-RR answer"
      (Staged.stage (fun () -> ignore (Wire.Xdr.to_string marshal_ty marshal_value)));
    Test.make ~name:"generic marshal 6-RR answer"
      (Staged.stage (fun () ->
           ignore (Wire.Generic_marshal.marshal Wire.Data_rep.Xdr marshal_ty marshal_value)));
    Test.make ~name:"hand codec nsm_info round-trip"
      (Staged.stage (fun () ->
           let wire = Hns.Hot_codec.encode_nsm_info nsm_specimen in
           ignore (Hns.Hot_codec.decode_nsm_info wire)));
  ]

let run_bechamel () =
  let open Bechamel in
  print_endline "Bechamel: wall-clock cost of the simulated workloads";
  print_endline "  (virtual-time results above are the paper reproduction; this";
  print_endline "   measures the harness itself)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:(Some 500) ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "  %-45s %12.0f ns/run\n%!" name est
          | _ -> Printf.printf "  %-45s (no estimate)\n%!" name)
        analyzed)
    (List.map (fun t -> Test.make_grouped ~name:"" [ t ]) (bechamel_tests ()));
  print_newline ()

let write_artifacts () =
  let bench_path, obs_path = Experiments.write_json_artifacts () in
  Printf.printf "wrote %s (latency distributions) and %s (metrics registry)\n"
    bench_path obs_path

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let args = List.filter (fun a -> a <> "--") args in
  let with_bechamel = not (List.mem "--no-bechamel" args) in
  let args = List.filter (fun a -> a <> "--no-bechamel") args in
  match args with
  | [ "--list" ] ->
      List.iter (fun (name, descr, _) -> Printf.printf "%-12s %s\n" name descr) experiments
  | [ "--json" ] ->
      (* Just the machine-readable artifacts. *)
      write_artifacts ()
  | [] ->
      print_endline "HNS evaluation: reproducing every table and figure (SOSP 1987)";
      print_endline "================================================================";
      print_newline ();
      List.iter
        (fun (_, _, f) ->
          f ();
          print_endline "%%";
          print_newline ())
        experiments;
      if with_bechamel then run_bechamel ();
      write_artifacts ()
  | names ->
      List.iter
        (fun name ->
          match List.find_opt (fun (n, _, _) -> n = name) experiments with
          | Some (_, _, f) -> f ()
          | None ->
              Printf.eprintf "unknown experiment %S (try --list)\n" name;
              exit 1)
        names
