(* hns_cli: poke at the simulated HCS name service from the command
   line.

     dune exec bin/hns_cli.exe -- resolve uw-cs!vanuatu.cs.washington.edu
     dune exec bin/hns_cli.exe -- import --service DesiredService \
         uw-cs!vanuatu.cs.washington.edu
     dune exec bin/hns_cli.exe -- meta-dump
     dune exec bin/hns_cli.exe -- trace
     dune exec bin/hns_cli.exe -- contexts

   Every invocation builds the calibrated testbed, performs the
   operation on the virtual clock, and reports virtual elapsed time. *)

open Cmdliner

module S = Workload.Scenario

let with_scenario f =
  let scn = S.build () in
  S.in_sim scn (fun () ->
      let hns = S.new_hns scn ~on:scn.client_stack in
      f scn hns)

let parse_hns_name s =
  match Hns.Hns_name.of_string s with
  | name -> Ok name
  | exception Invalid_argument m -> Error m

(* --- observability plumbing --- *)

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "After the operation, print the span tree and the metrics panel \
           for this run (scenario set-up is excluded).")

(* Building the scenario itself exercises the instrumented layers, so
   with [--stats] the registry is reset and tracing enabled only around
   the measured operation. *)
let with_obs ~stats f =
  if stats then begin
    Obs.Metrics.reset ();
    Obs.Span.clear ();
    Obs.Span.enable ()
  end;
  let r = f () in
  if stats then begin
    Format.printf "@.spans:@.%a" Obs.Span.pp_tree ();
    Format.printf "@.metrics:@.%a" Obs.Export.pp_metrics ()
  end;
  r

(* --- resolve --- *)

let resolve_cmd =
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"HNS-NAME" ~doc:"Name to resolve, as context!individual-name.")
  in
  let class_arg =
    Arg.(
      value
      & opt string Hns.Query_class.host_address
      & info [ "query-class"; "q" ] ~docv:"CLASS"
          ~doc:"Query class (HostAddress, FileLocation, MailboxLocation).")
  in
  let run name_str query_class stats =
    match parse_hns_name name_str with
    | Error m ->
        Printf.eprintf "bad HNS name: %s\n" m;
        1
    | Ok name -> (
        match Hns.Nsm_intf.payload_ty_of query_class with
        | None ->
            Printf.eprintf "unknown query class %S\n" query_class;
            1
        | Some payload_ty ->
            with_scenario (fun _scn hns ->
                with_obs ~stats (fun () ->
                    let t0 = Sim.Engine.time () in
                    match Hns.Client.resolve hns ~query_class ~payload_ty name with
                    | Ok (Some v) ->
                        let rendered =
                          match v with
                          | Wire.Value.Uint ip -> Transport.Address.ip_to_string ip
                          | Wire.Value.Str s -> s
                          | other -> Wire.Value.to_string other
                        in
                        Printf.printf "%s = %s   (%.1f ms virtual)\n"
                          (Hns.Hns_name.to_string name) rendered
                          (Sim.Engine.time () -. t0);
                        0
                    | Ok None ->
                        Printf.printf "%s: not found\n" (Hns.Hns_name.to_string name);
                        1
                    | Error e ->
                        Printf.printf "error: %s\n" (Hns.Errors.to_string e);
                        1)))
  in
  Cmd.v
    (Cmd.info "resolve" ~doc:"Resolve an HNS name through the federation.")
    Term.(const run $ name_arg $ class_arg $ stats_arg)

(* --- import --- *)

let import_cmd =
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"HNS-NAME" ~doc:"Host or service object, as context!name.")
  in
  let service_arg =
    Arg.(
      value & opt string "DesiredService"
      & info [ "service"; "s" ] ~docv:"SERVICE" ~doc:"ServiceName to bind to.")
  in
  let arrangement_arg =
    let arrangement_conv =
      Arg.enum
        [
          ("all-linked", Hns.Import.All_linked);
          ("combined-agent", Hns.Import.Combined_agent);
          ("remote-hns", Hns.Import.Remote_hns);
          ("remote-nsms", Hns.Import.Remote_nsms);
          ("all-remote", Hns.Import.All_remote);
        ]
    in
    Arg.(
      value & opt arrangement_conv Hns.Import.All_linked
      & info [ "arrangement"; "a" ] ~docv:"ARRANGEMENT"
          ~doc:"Colocation arrangement (Table 3.1 rows).")
  in
  let run name_str service arrangement =
    match parse_hns_name name_str with
    | Error m ->
        Printf.eprintf "bad HNS name: %s\n" m;
        1
    | Ok name ->
        let scn = S.build () in
        S.in_sim scn (fun () ->
            let p = S.arrange scn arrangement in
            let t0 = Sim.Engine.time () in
            let r = Hns.Import.import p.env arrangement ~service name in
            let elapsed = Sim.Engine.time () -. t0 in
            S.stop_parties p;
            match r with
            | Ok binding ->
                Printf.printf "binding: %s   (%s, %.1f ms virtual)\n"
                  (Format.asprintf "%a" Hrpc.Binding.pp binding)
                  (Hns.Import.arrangement_name arrangement)
                  elapsed;
                0
            | Error e ->
                Printf.printf "import failed: %s\n" (Hns.Errors.to_string e);
                1)
  in
  Cmd.v
    (Cmd.info "import" ~doc:"Import an HRPC binding for a service via the HNS.")
    Term.(const run $ name_arg $ service_arg $ arrangement_arg)

(* --- meta-dump --- *)

let meta_dump_cmd =
  let run () =
    with_scenario (fun scn _hns ->
        match
          Dns.Axfr.fetch scn.client_stack ~server:(Dns.Server.addr scn.meta_bind)
            ~zone:Hns.Meta_schema.zone_origin
        with
        | Error e ->
            Printf.printf "transfer failed: %s\n" (Format.asprintf "%a" Dns.Axfr.pp_error e);
            1
        | Ok records ->
            Printf.printf "meta-naming database (%d records):\n" (List.length records);
            List.iter
              (fun (rr : Dns.Rr.t) ->
                match rr.rdata with
                | Dns.Rr.Unspec bytes ->
                    let rendered =
                      match Hns.Meta_schema.ty_of_key rr.name with
                      | Some ty -> (
                          match Wire.Xdr.of_string ty bytes with
                          | v -> Wire.Value.to_string v
                          | exception _ -> Printf.sprintf "<%d bytes>" (String.length bytes))
                      | None -> Printf.sprintf "<%d bytes>" (String.length bytes)
                    in
                    Printf.printf "  %-42s %s\n" (Dns.Name.to_string rr.name) rendered
                | Dns.Rr.Soa _ -> Printf.printf "  %-42s (SOA)\n" (Dns.Name.to_string rr.name)
                | other -> Printf.printf "  %-42s %s\n" (Dns.Name.to_string rr.name)
                            (Format.asprintf "%a" Dns.Rr.pp_rdata other))
              records;
            0)
  in
  Cmd.v
    (Cmd.info "meta-dump" ~doc:"Zone-transfer and pretty-print the meta-naming database.")
    Term.(const run $ const ())

(* --- contexts --- *)

let contexts_cmd =
  let run () =
    with_scenario (fun scn _hns ->
        match
          Dns.Axfr.fetch scn.client_stack ~server:(Dns.Server.addr scn.meta_bind)
            ~zone:Hns.Meta_schema.zone_origin
        with
        | Error e ->
            Printf.printf "transfer failed: %s\n" (Format.asprintf "%a" Dns.Axfr.pp_error e);
            1
        | Ok records ->
            print_endline "registered contexts:";
            List.iter
              (fun (rr : Dns.Rr.t) ->
                match (Dns.Name.labels rr.name, rr.rdata) with
                | labels, Dns.Rr.Unspec bytes
                  when List.exists (String.equal "ctx") labels -> (
                    let context =
                      labels
                      |> List.filter (fun l -> l <> "ctx" && l <> "hns-meta")
                      |> String.concat "."
                    in
                    match Wire.Xdr.of_string Wire.Idl.T_string bytes with
                    | Wire.Value.Str ns -> Printf.printf "  %-20s -> %s\n" context ns
                    | _ | (exception _) -> ())
                | _ -> ())
              records;
            0)
  in
  Cmd.v
    (Cmd.info "contexts" ~doc:"List contexts and the name services they map to.")
    Term.(const run $ const ())

(* --- preload --- *)

let preload_cmd =
  let name_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"HNS-NAME"
          ~doc:
            "Name to resolve after preloading (default: the testbed's service \
             host). The resolution demonstrates that the warmed cache answers \
             every meta mapping locally.")
  in
  let run name_str stats =
    with_scenario (fun scn hns ->
        with_obs ~stats (fun () ->
            let name =
              match name_str with
              | Some s -> Hns.Hns_name.of_string s
              | None ->
                  Hns.Hns_name.make ~context:scn.bind_context
                    ~name:scn.service_host
            in
            let t0 = Sim.Engine.time () in
            match Hns.Client.preload hns with
            | Error e ->
                Printf.printf "preload failed: %s\n" (Hns.Errors.to_string e);
                1
            | Ok seeded -> (
                let t1 = Sim.Engine.time () in
                Printf.printf
                  "preloaded %d meta mappings via zone transfer   (%.1f ms \
                   virtual)\n"
                  seeded (t1 -. t0);
                match
                  Hns.Client.resolve hns
                    ~query_class:Hns.Query_class.host_address
                    ~payload_ty:Hns.Nsm_intf.host_address_payload_ty name
                with
                | Ok (Some v) ->
                    let rendered =
                      match v with
                      | Wire.Value.Uint ip -> Transport.Address.ip_to_string ip
                      | other -> Wire.Value.to_string other
                    in
                    Printf.printf
                      "%s = %s   (first resolution %.1f ms virtual, %d remote \
                       meta lookups)\n"
                      (Hns.Hns_name.to_string name)
                      rendered
                      (Sim.Engine.time () -. t1)
                      (Hns.Meta_client.remote_lookups (Hns.Client.meta hns));
                    0
                | Ok None ->
                    Printf.printf "%s: not found\n" (Hns.Hns_name.to_string name);
                    1
                | Error e ->
                    Printf.printf "error: %s\n" (Hns.Errors.to_string e);
                    1)))
  in
  Cmd.v
    (Cmd.info "preload"
       ~doc:
         "Warm the meta-naming cache with a full zone transfer (AXFR), then \
          resolve a name against the preloaded cache.")
    Term.(const run $ name_arg $ stats_arg)

(* --- trace --- *)

let trace_cmd =
  let run stats =
    with_scenario (fun scn hns ->
        with_obs ~stats (fun () ->
        (* Narrate one FindNSM by instrumenting the virtual clock. *)
        let name = Hns.Hns_name.make ~context:scn.bind_context ~name:scn.service_host in
        Printf.printf "FindNSM(%S, %S):\n" name.context Hns.Query_class.hrpc_binding;
        let t0 = Sim.Engine.time () in
        let print_walk () =
          List.iter
            (fun (key, hit, cost) ->
              Printf.printf "    %-52s %-4s %6.1f ms\n" key
                (if hit then "hit" else "MISS")
                cost)
            (Hns.Meta_client.walk_log (Hns.Client.meta hns));
          Hns.Meta_client.clear_walk_log (Hns.Client.meta hns)
        in
        (match
           Hns.Client.find_nsm hns ~context:name.context
             ~query_class:Hns.Query_class.hrpc_binding
         with
        | Ok r ->
            Printf.printf "  designated NSM %S of name service %S\n" r.nsm_name r.ns_name;
            Printf.printf "  binding %s\n" (Format.asprintf "%a" Hrpc.Binding.pp r.binding);
            Printf.printf "  cold walk (%.1f ms), mapping by mapping:\n"
              (Sim.Engine.time () -. t0);
            print_walk ()
        | Error e -> Printf.printf "  failed: %s\n" (Hns.Errors.to_string e));
        let t1 = Sim.Engine.time () in
        ignore
          (Hns.Client.find_nsm hns ~context:name.context
             ~query_class:Hns.Query_class.hrpc_binding);
        Printf.printf "  warm walk (%.1f ms):\n" (Sim.Engine.time () -. t1);
        print_walk ();
        0))
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Trace a cold and a warm FindNSM walk.")
    Term.(const run $ stats_arg)

(* --- stats --- *)

let stats_cmd =
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit one compact JSON object per metric instead of the table.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"PATH"
          ~doc:"Also write the registry as a BENCH_obs.json snapshot to $(docv).")
  in
  let neg_ttl_arg =
    Arg.(
      value
      & opt float 5000.0
      & info [ "negative-ttl" ] ~docv:"MS"
          ~doc:
            "Negative-TTL cap in virtual milliseconds (0 disables negative \
             caching). The effective TTL actually applied is the meta zone's \
             SOA minimum, never above this cap.")
  in
  let slo_arg =
    Arg.(
      value & flag
      & info [ "slo" ]
          ~doc:
            "Also print the SLO panel: per-objective compliance, error-budget \
             remaining, burn rate and windowed latency percentiles for the \
             scripted workload.")
  in
  let run json out negative_ttl_ms slo =
    let scn = S.build () in
    (* A second testbed with the bundle answerer and resolve-tail
       prefetch enabled, for the shared host agent's workload. The
       prefetch source ranks hosts by recent demand, so warm the
       public BIND's hot-name tracker before the measured run. *)
    let agent_scn = S.build ~bundle:true ~prefetch:true () in
    Experiments.warm_hot_tracker agent_scn;
    (* Building the scenarios exercises the instrumented layers too;
       only the scripted workloads below should register. *)
    Obs.Metrics.reset ();
    if slo then Obs.Slo.clear ();
    let neg_cap, neg_eff =
      S.in_sim scn (fun () ->
          let hns = S.new_hns ~negative_ttl_ms scn ~on:scn.client_stack in
          (* Scripted workload: a cold then warm resolve for each query
             class, so every instrumented layer registers activity. *)
          let name =
            Hns.Hns_name.make ~context:scn.bind_context ~name:scn.service_host
          in
          let resolve ?service query_class =
            match Hns.Nsm_intf.payload_ty_of query_class with
            | None -> ()
            | Some payload_ty ->
                ignore (Hns.Client.resolve hns ~query_class ~payload_ty ?service name)
          in
          let twice ?service qc =
            resolve ?service qc;
            resolve ?service qc
          in
          twice Hns.Query_class.host_address;
          twice ~service:scn.service_name Hns.Query_class.hrpc_binding;
          (* A miss on an absent name makes the server attach the zone
             SOA to its negative reply (RFC 2308), which is where the
             effective TTL below comes from. *)
          let meta = Hns.Client.meta hns in
          ignore
            (Hns.Meta_client.lookup meta
               ~key:(Hns.Meta_schema.context_key "no-such-context")
               ~ty:Hns.Meta_schema.string_ty);
          ( Hns.Meta_client.negative_ttl_ms meta,
            Hns.Meta_client.effective_negative_ttl_ms meta ))
    in
    (* Shared host agent workload: an 8-resolve session through one
       agent (shared demarshalled cache + prefetched tail), then a
       6-way cold burst (cross-process coalescing). *)
    let requests, hits, ratio, seeded, prefetch_hits =
      Experiments.agent_session agent_scn ()
    in
    let upstream, coalesced, _ = Experiments.agent_burst agent_scn () in
    (* Replicated meta-store panel: a short burst of cold meta reads
       routed over a 2-replica fleet, reported per replica (QPS over
       the burst window, SOA serial lag behind the primary, and the
       client's routing view). *)
    let replica_rows, member_rows =
      let rscn = S.build ~meta_replicas:2 () in
      S.in_sim rscn (fun () ->
          let secs = S.attach_meta_replicas rscn in
          let hns = S.new_hns rscn ~on:rscn.client_stack in
          let meta = Hns.Client.meta hns in
          let q0 =
            List.map Dns.Server.queries_served rscn.S.meta_replica_servers
          in
          let t0 = Sim.Engine.time () in
          for _ = 1 to 24 do
            Hns.Cache.flush (Hns.Meta_client.cache meta);
            ignore
              (Hns.Meta_client.lookup meta
                 ~key:(Hns.Meta_schema.context_key rscn.bind_context)
                 ~ty:Hns.Meta_schema.string_ty)
          done;
          let dur_s = Float.max 0.001 ((Sim.Engine.time () -. t0) /. 1000.0) in
          let prim_serial = Dns.Zone.serial rscn.meta_zone in
          let rows =
            List.map2
              (fun (srv, q_before) sec ->
                ( (Transport.Netstack.host (Dns.Server.stack srv))
                    .Sim.Topology.hostname,
                  float_of_int (Dns.Server.queries_served srv - q_before)
                  /. dur_s,
                  Int32.sub prim_serial (Dns.Secondary.serial sec) ))
              (List.combine rscn.S.meta_replica_servers q0)
              secs
          in
          let members =
            match Hns.Meta_client.replica_set meta with
            | None -> []
            | Some set -> Dns.Replica_set.stats set
          in
          S.detach_meta_replicas rscn secs;
          (rows, members))
    in
    if json then print_string (Obs.Export.metrics_json_lines ())
    else Format.printf "%a" Obs.Export.pp_metrics ();
    Format.printf
      "negative TTL: cap %.0f ms, effective %.0f ms (zone SOA minimum)@."
      neg_cap neg_eff;
    Format.printf
      "agent session: %d requests, %d shared-cache hits (ratio %.2f); \
       prefetch yield: %d addrs seeded, %d tail round trips skipped@."
      requests hits ratio seeded prefetch_hits;
    Format.printf
      "agent burst: 6 concurrent cold clients -> %d upstream meta query(ies), \
       %d coalesced@."
      upstream coalesced;
    Format.printf "meta replicas (24 routed cold reads over a 2-replica fleet):@.";
    List.iter
      (fun (host, qps, lag) ->
        Format.printf "  %-10s %6.1f q/s, serial lag %ld@." host qps lag)
      replica_rows;
    List.iter
      (fun (m : Dns.Replica_set.member_stats) ->
        Format.printf
          "  %-21s selected %2d, load %.2f, latency %.1f ms, serial %s%s@."
          (Transport.Address.to_string m.Dns.Replica_set.addr)
          m.Dns.Replica_set.selected m.Dns.Replica_set.load
          m.Dns.Replica_set.latency_ms
          (match m.Dns.Replica_set.serial with
          | None -> "-"
          | Some s -> Int32.to_string s)
          (if m.Dns.Replica_set.quarantined then " (quarantined)" else ""))
      member_rows;
    if slo then begin
      Obs.Slo.publish ();
      Format.printf "@.slo:@.";
      List.iter
        (fun s ->
          let w = Obs.Slo.window_summary s in
          Format.printf
            "  %-10s target %5.1f ms, objective %.3f: %d/%d breached, \
             compliance %.4f, budget %+.2f, burn %.2f@.  %10s window: n=%d \
             rate=%.2f/s p50=%.1f p99=%.1f p999=%.1f ms@."
            (Obs.Slo.name s) (Obs.Slo.target_ms s) (Obs.Slo.objective s)
            (Obs.Slo.breaches s) (Obs.Slo.total s) (Obs.Slo.compliance s)
            (Obs.Slo.budget_remaining s)
            (Obs.Slo.burn_rate s) "" w.Obs.Timeseries.n
            w.Obs.Timeseries.rate_per_s w.Obs.Timeseries.p50
            w.Obs.Timeseries.p99 w.Obs.Timeseries.p999)
        (Obs.Slo.all ())
    end;
    Option.iter (fun path -> Obs.Export.write_metrics_snapshot ~path ()) out;
    0
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run a scripted resolve workload and dump the full metrics registry.")
    Term.(const run $ json_arg $ out_arg $ neg_ttl_arg $ slo_arg)

(* --- qlog --- *)

let qlog_cmd =
  let slowest_arg =
    Arg.(
      value & opt int 10
      & info [ "slowest"; "n" ] ~docv:"N"
          ~doc:"Show the $(docv) slowest flight records (longest first).")
  in
  let outcome_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "outcome" ] ~docv:"OUTCOME"
          ~doc:
            "Only records with this outcome (hit, miss, coalesced, negative, \
             stale, failover, failed).")
  in
  let context_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "context" ] ~docv:"CONTEXT"
          ~doc:"Only records whose queried name lives in $(docv).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit one compact JSON object per record instead of the table.")
  in
  let run slowest outcome context json =
    let outcome_filter =
      match outcome with
      | None -> Ok None
      | Some s -> (
          match Obs.Qlog.outcome_of_string s with
          | Some o -> Ok (Some o)
          | None -> Error s)
    in
    match outcome_filter with
    | Error s ->
        Printf.eprintf "unknown outcome %S\n" s;
        1
    | Ok outcome_filter ->
        let scn = S.build () in
        let agent_scn = S.build ~bundle:true ~prefetch:true () in
        (* Scenario set-up is not part of the recorded workload. *)
        Obs.Span.clear ();
        Obs.Qlog.clear ();
        Obs.Slo.clear ();
        Obs.Span.enable ();
        Obs.Qlog.enable ();
        ignore (Obs.Slo.get_or_create "resolve");
        (* The scripted workload: a cold and a warm resolve per query
           class, one negative answer, and a 6-way cold burst through
           the shared agent for coalesced records. *)
        S.in_sim scn (fun () ->
            let hns = S.new_hns scn ~on:scn.client_stack in
            let name =
              Hns.Hns_name.make ~context:scn.bind_context ~name:scn.service_host
            in
            let resolve ?service query_class =
              match Hns.Nsm_intf.payload_ty_of query_class with
              | None -> ()
              | Some payload_ty ->
                  ignore
                    (Hns.Client.resolve hns ~query_class ~payload_ty ?service name)
            in
            resolve Hns.Query_class.host_address;
            resolve Hns.Query_class.host_address;
            resolve ~service:scn.service_name Hns.Query_class.hrpc_binding;
            ignore
              (Hns.Meta_client.lookup (Hns.Client.meta hns)
                 ~key:(Hns.Meta_schema.context_key "no-such-context")
                 ~ty:Hns.Meta_schema.string_ty));
        ignore (Experiments.agent_burst agent_scn ());
        Obs.Span.disable ();
        Obs.Qlog.disable ();
        let all = Obs.Qlog.records () in
        let records =
          match outcome_filter with
          | Some o -> Obs.Qlog.by_outcome o all
          | None -> all
        in
        let records =
          match context with
          | Some c -> Obs.Qlog.by_context c records
          | None -> records
        in
        let records = Obs.Qlog.slowest slowest records in
        if json then
          List.iter
            (fun r -> print_endline (Obs.Json.to_string (Obs.Qlog.record_json r)))
            records
        else begin
          Printf.printf "%d flight record(s) of %d retired:\n"
            (List.length records) (List.length all);
          Printf.printf "  %9s  %-9s  %7s  %-9s  %s\n" "dur" "outcome" "bytes"
            "trace" "name (class)";
          List.iter
            (fun r ->
              Printf.printf "  %7.1fms  %-9s  %6dB  %-9s  %s (%s)%s\n"
                (Obs.Qlog.duration_ms r)
                (Obs.Qlog.outcome_to_string r.Obs.Qlog.outcome)
                r.Obs.Qlog.bytes
                (if r.Obs.Qlog.trace = 0 then "-"
                 else Printf.sprintf "%08x" r.Obs.Qlog.trace)
                r.Obs.Qlog.name r.Obs.Qlog.query_class
                (if r.Obs.Qlog.linked_trace = 0 then ""
                 else Printf.sprintf " ~> leader %08x" r.Obs.Qlog.linked_trace))
            records;
          (* Tail exemplars: traces the SLO tracker retained because a
             query breached the objective or landed beyond the window
             p99; each resolves to its full span tree and records. *)
          match Obs.Slo.exemplar_traces () with
          | [] -> ()
          | traces ->
              Printf.printf "tail exemplars (%d retained):\n" (List.length traces);
              List.iter
                (fun tr ->
                  let spans =
                    List.length
                      (List.filter
                         (fun s -> s.Obs.Span.trace = tr)
                         (Obs.Span.finished ()))
                  in
                  let recs =
                    List.length
                      (List.filter
                         (fun r ->
                           r.Obs.Qlog.trace = tr || r.Obs.Qlog.linked_trace = tr)
                         all)
                  in
                  Printf.printf "  trace %08x: %d span(s), %d record(s)\n" tr
                    spans recs)
                traces
        end;
        0
  in
  Cmd.v
    (Cmd.info "qlog"
       ~doc:
         "Run a scripted workload with the query flight recorder on and dump \
          its records: per-query outcome, hop timings, wire bytes, servers \
          touched and trace ids, plus any retained tail exemplars.")
    Term.(const run $ slowest_arg $ outcome_arg $ context_arg $ json_arg)

(* --- lint --- *)

let lint_cmd =
  let run () =
    (* Every module-level metric registers at program start; a short
       workload flushes out the lazily registered ones too (per-NSM
       and per-query-class names), then the whole registry is checked
       against the layer.component.metric structure. Duplicate-kind
       registration fails fast at the registration site itself. *)
    ignore
      (with_scenario (fun scn hns ->
           let name =
             Hns.Hns_name.make ~context:scn.bind_context ~name:scn.service_host
           in
           List.iter
             (fun query_class ->
               match Hns.Nsm_intf.payload_ty_of query_class with
               | None -> ()
               | Some payload_ty ->
                   ignore
                     (Hns.Client.resolve hns ~query_class ~payload_ty
                        ~service:scn.service_name name))
             [
               Hns.Query_class.host_address;
               Hns.Query_class.hrpc_binding;
               Hns.Query_class.file_location;
               Hns.Query_class.mailbox_location;
             ];
           0));
    Obs.Slo.publish ();
    match Obs.Metrics.lint () with
    | [] ->
        Printf.printf "metric-name lint: %d names, all layer.component.metric\n"
          (List.length (Obs.Metrics.snapshot ()));
        0
    | problems ->
        List.iter (fun p -> Printf.eprintf "metric-name lint: %s\n" p) problems;
        1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Check every registered metric name (including SLO gauges and lazily \
          registered per-NSM names) against the layer.component.metric \
          structure.")
    Term.(const run $ const ())

(* --- chaos --- *)

let chaos_cmd =
  let run () =
    (* The bench experiment is the canonical demo: crash the NSM host
       and fail over, crash the meta host and serve stale. *)
    Experiments.chaos ();
    0
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run the chaos availability experiment: scheduled host crashes with \
          failover across alternate NSMs and serve-stale degradation.")
    Term.(const run $ const ())

(* --- store --- *)

let store_cmd =
  let run () =
    (* The durability experiment is the canonical workload: the WAL
       spill path under concurrent updates, compaction, crash
       recovery, and the restart A/B. Then dump what the store layers
       recorded about themselves. *)
    Experiments.durability ();
    let interesting name =
      List.exists
        (fun prefix -> String.length name >= String.length prefix
                       && String.sub name 0 (String.length prefix) = prefix)
        [ "store."; "dns.durable."; "dns.journal." ]
    in
    Printf.printf "\n  meta-store instruments:\n";
    List.iter
      (fun (name, sample) ->
        if interesting name then
          match (sample : Obs.Metrics.sample) with
          | Obs.Metrics.Count n -> Printf.printf "    %-32s %d\n" name n
          | Obs.Metrics.Level v -> Printf.printf "    %-32s %.1f\n" name v
          | Obs.Metrics.Summary { n; mean; p95; max; _ } ->
              Printf.printf "    %-32s n=%d mean=%.2f p95=%.2f max=%.2f\n"
                name n mean p95 max)
      (Obs.Metrics.snapshot ());
    0
  in
  Cmd.v
    (Cmd.info "store"
       ~doc:
         "Run the durable meta-store workload (WAL group commit, compaction, \
          crash recovery, restart A/B) and print the store.* / dns.durable.* \
          / dns.journal.* instruments it left behind.")
    Term.(const run $ const ())

(* --- network services --- *)

let with_services f =
  let scn = S.build () in
  S.in_sim scn (fun () ->
      let _installed = Services.Setup.install scn in
      let hns = S.new_hns scn ~on:scn.client_stack in
      f scn hns)

let fetch_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:
            "File to fetch: a bare name uses the Unix file area; context!name \
             goes wherever the context says (try parc-ch!notes).")
  in
  let run file =
    with_services (fun scn hns ->
        let name =
          if String.contains file '!' then Hns.Hns_name.of_string file
          else Services.Setup.unix_file_name scn file
        in
        let filing = Services.Filing.create hns in
        match Services.Filing.fetch filing name with
        | Ok data ->
            Printf.printf "%s (%d bytes):\n%s\n" (Hns.Hns_name.to_string name)
              (String.length data) data;
            0
        | Error e ->
            Printf.printf "fetch failed: %s\n" (Format.asprintf "%a" Services.Access.pp_error e);
            1)
  in
  Cmd.v
    (Cmd.info "fetch" ~doc:"Fetch a file through the heterogeneous filing service.")
    Term.(const run $ file_arg)

let send_mail_cmd =
  let user_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"USER" ~doc:"Recipient (alice, bob, carol, dave).")
  in
  let body_arg =
    Arg.(
      value & opt string "hello from hns_cli"
      & info [ "body"; "b" ] ~docv:"TEXT" ~doc:"Message body.")
  in
  let run user body =
    with_services (fun scn hns ->
        let mail = Services.Mail.create hns ~from:"operator@hns-cli" in
        match
          Services.Mail.send mail ~recipient:(Services.Setup.user_name scn user)
            ~subject:"cli" ~body
        with
        | Ok site ->
            Printf.printf "delivered to %s's mailbox at %s\n" user site.Hns.Hns_name.name;
            0
        | Error e ->
            Printf.printf "send failed: %s\n" (Format.asprintf "%a" Services.Access.pp_error e);
            1)
  in
  Cmd.v
    (Cmd.info "send-mail" ~doc:"Deliver a message through the HCS mail service.")
    Term.(const run $ user_arg $ body_arg)

let rexec_cmd =
  let host_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"HOST" ~doc:"Short host name (samoa, vanuatu).")
  in
  let command_arg =
    Arg.(
      required & pos 1 (some string) None
      & info [] ~docv:"COMMAND" ~doc:"Command (hostname, date, echo, compile).")
  in
  let args_arg =
    Arg.(value & pos_right 1 string [] & info [] ~docv:"ARGS" ~doc:"Arguments.")
  in
  let run host command args =
    with_services (fun scn hns ->
        let rexec = Services.Rexec.create hns in
        let host_name =
          Hns.Hns_name.make ~context:scn.bind_context
            ~name:(Printf.sprintf "%s.%s" host scn.zone)
        in
        match Services.Rexec.run rexec ~host:host_name ~command ~args with
        | Ok o ->
            Printf.printf "[exit %d] %s\n" o.Services.Rexec_server.status
              o.Services.Rexec_server.output;
            if o.Services.Rexec_server.status = 0 then 0 else o.Services.Rexec_server.status
        | Error e ->
            Printf.printf "rexec failed: %s\n" (Format.asprintf "%a" Services.Access.pp_error e);
            1)
  in
  Cmd.v
    (Cmd.info "rexec" ~doc:"Run a command on a remote host via the HCS rexec service.")
    Term.(const run $ host_arg $ command_arg $ args_arg)

(* --- load: the open-loop harness --- *)

let load_cmd =
  let full_arg =
    Arg.(
      value & flag
      & info [ "full" ]
          ~doc:
            "Run the full bench suite (million-client configurations, \
             including the flash-crowd ranking A/B). Slower; the default is \
             the CI smoke pair.")
  in
  let seed_arg =
    Arg.(
      value & opt int 11
      & info [ "seed" ] ~docv:"SEED" ~doc:"Harness RNG seed (smoke runs).")
  in
  let events_arg =
    Arg.(
      value & opt int 0
      & info [ "max-events" ] ~docv:"N"
          ~doc:
            "Fail if a run executes more than $(docv) simulation events \
             (regression guard for make check; 0 disables).")
  in
  let rate_arg =
    Arg.(
      value & opt (some float) None
      & info [ "rate" ] ~docv:"PER-S" ~doc:"Override the Poisson arrival rate.")
  in
  let duration_arg =
    Arg.(
      value & opt (some float) None
      & info [ "duration-s" ] ~docv:"S" ~doc:"Override the measured window.")
  in
  let no_flash_arg =
    Arg.(value & flag & info [ "no-flash" ] ~doc:"Disable the flash crowd.")
  in
  let no_churn_arg =
    Arg.(
      value & flag
      & info [ "no-churn" ] ~doc:"Disable the periodic agent cache churn.")
  in
  let run full seed max_events rate duration_s no_flash no_churn =
    let module O = Workload.Openloop in
    let tweak (cfg : O.config) =
      let cfg = { cfg with seed } in
      let cfg =
        match rate with
        | Some r -> { cfg with arrival = O.Poisson { rate_per_s = r } }
        | None -> cfg
      in
      let cfg =
        match duration_s with
        | Some d -> { cfg with duration_ms = d *. 1000.0 }
        | None -> cfg
      in
      let cfg = if no_flash then { cfg with flash = None } else cfg in
      if no_churn then { cfg with churn_every_ms = cfg.duration_ms *. 10.0 }
      else cfg
    in
    let configs =
      if full then O.bench_configs ()
      else [ tweak (O.smoke ()); tweak (O.smoke ~ranking:O.Sliding ()) ]
    in
    List.fold_left
      (fun worst cfg ->
        let r = O.run cfg in
        Format.printf "%a@." O.pp_report r;
        if max_events > 0 && r.O.sim_events > max_events then begin
          Printf.eprintf "FAIL: %s executed %d sim events (budget %d)\n"
            cfg.O.label r.O.sim_events max_events;
          1
        end
        else worst)
      0 configs
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Drive the open-loop load harness: Poisson/diurnal arrivals over \
          agent fleets with cache churn, optional flash crowd and partition \
          storms, all on the virtual clock.")
    Term.(
      const run $ full_arg $ seed_arg $ events_arg $ rate_arg $ duration_arg
      $ no_flash_arg $ no_churn_arg)

(* --- fanout: sharded + replicated meta-store --- *)

let fanout_cmd =
  let events_arg =
    Arg.(
      value & opt int 0
      & info [ "max-events" ] ~docv:"N"
          ~doc:
            "Fail if a run executes more than $(docv) simulation events \
             (regression guard for make check; 0 disables).")
  in
  let run max_events =
    let module F = Workload.Fanout in
    let worst = ref 0 in
    let guard (r : F.report) =
      if r.F.failed_reads > 0 then begin
        Printf.eprintf "FAIL: %s had %d failed reads\n" r.F.config.F.label
          r.F.failed_reads;
        worst := 1
      end;
      if max_events > 0 && r.F.sim_events > max_events then begin
        Printf.eprintf "FAIL: %s executed %d sim events (budget %d)\n"
          r.F.config.F.label r.F.sim_events max_events;
        worst := 1
      end
    in
    List.iter
      (fun (base, tree) ->
        List.iter
          (fun cfg ->
            let r = F.run cfg in
            Format.printf "%a" F.pp_report r;
            guard r)
          [ base; tree ])
      (F.sweep ());
    List.iter
      (fun pinned ->
        let r = F.run (F.rww_config ~pinned ()) in
        Format.printf "%a" F.pp_report r;
        guard r;
        if pinned && r.F.stale_reads > 0 then begin
          Printf.eprintf
            "FAIL: pinned read-your-writes saw %d stale own-write reads\n"
            r.F.stale_reads;
          worst := 1
        end)
      [ true; false ];
    !worst
  in
  Cmd.v
    (Cmd.info "fanout"
       ~doc:
         "Drive the meta-store fan-out harness: context-delegated \
          partitions, IXFR-chained replica trees and load-aware routed \
          reads, swept across replica counts against the single-primary \
          baseline, plus the read-your-writes A/B.")
    Term.(const run $ events_arg)

let () =
  let info =
    Cmd.info "hns_cli" ~version:"1.0.0"
      ~doc:"Interact with the simulated HCS Name Service (SOSP 1987 reproduction)."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            resolve_cmd;
            import_cmd;
            meta_dump_cmd;
            contexts_cmd;
            preload_cmd;
            trace_cmd;
            stats_cmd;
            qlog_cmd;
            lint_cmd;
            chaos_cmd;
            store_cmd;
            fetch_cmd;
            send_mail_cmd;
            rexec_cmd;
            load_cmd;
            fanout_cmd;
          ]))
