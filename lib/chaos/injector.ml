type t = {
  net : Transport.Netstack.t;
  plan : Plan.t;
  rng : Sim.Rng.t;
  mutable trace : string list; (* newest first *)
  mutable injected : int;
  mutable installed : bool;
}

let m_faults = Obs.Metrics.counter "chaos.injector.faults_injected"
let m_drops = Obs.Metrics.counter "chaos.injector.packet_drops"
let m_delays = Obs.Metrics.counter "chaos.injector.packet_delays"
let m_corruptions = Obs.Metrics.counter "chaos.injector.packet_corruptions"

let active ~now ~from_ms ~until_ms = now >= from_ms && now < until_ms

(* An empty host list matches everything. *)
let matches hosts name = hosts = [] || List.mem name hosts

let record t ~now fmt =
  Printf.ksprintf
    (fun detail ->
      t.injected <- t.injected + 1;
      Obs.Metrics.incr m_faults;
      t.trace <- Printf.sprintf "%10.3f %s" now detail :: t.trace)
    fmt

let flip_byte rng payload =
  let len = String.length payload in
  if len = 0 then payload
  else begin
    let i = Sim.Rng.int rng len in
    let b = Bytes.of_string payload in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xFF));
    Bytes.to_string b
  end

(* Judge one packet against every active fault. A drop wins outright;
   otherwise delay surcharges accumulate and at most one corruption is
   applied. Every decision is traced and counted. *)
let judge t ~now ~src ~dst ~payload =
  let sname = src.Sim.Topology.hostname and dname = dst.Sim.Topology.hostname in
  let drop = ref None in
  let extra = ref 0.0 in
  let corrupted = ref None in
  List.iter
    (fun fault ->
      if !drop = None then
        match (fault : Plan.fault) with
        | Plan.Crash { host; from_ms; until_ms } ->
            if active ~now ~from_ms ~until_ms && (sname = host || dname = host)
            then drop := Some (Printf.sprintf "crash:%s" host)
        | Plan.Partition { group_a; group_b; from_ms; until_ms } ->
            if
              active ~now ~from_ms ~until_ms
              && ((matches group_a sname && matches group_b dname)
                 || (matches group_b sname && matches group_a dname))
            then drop := Some "partition"
        | Plan.Latency { hosts; from_ms; until_ms; add_ms; ramp } ->
            if
              active ~now ~from_ms ~until_ms
              && (matches hosts sname || matches hosts dname)
            then begin
              let add =
                if ramp then add_ms *. ((now -. from_ms) /. (until_ms -. from_ms))
                else add_ms
              in
              extra := !extra +. add
            end
        | Plan.Corrupt { dst_hosts; from_ms; until_ms; probability } -> (
            match payload with
            | Some p
              when active ~now ~from_ms ~until_ms
                   && matches dst_hosts dname
                   && !corrupted = None
                   && Sim.Rng.float t.rng 1.0 < probability ->
                corrupted := Some (flip_byte t.rng p)
            | _ -> ())
        | Plan.Torn_write _ -> (* judged by the disk injector *) ())
    t.plan;
  match !drop with
  | Some reason ->
      record t ~now "drop %s->%s %s" sname dname reason;
      Obs.Metrics.incr m_drops;
      Transport.Netstack.Fault_drop
  | None ->
      let delayed = !extra > 0.0 in
      if delayed then begin
        record t ~now "delay %s->%s +%.3fms" sname dname !extra;
        Obs.Metrics.incr m_delays
      end;
      (match !corrupted with
      | Some _ ->
          record t ~now "corrupt %s->%s" sname dname;
          Obs.Metrics.incr m_corruptions
      | None -> ());
      if delayed || !corrupted <> None then
        Transport.Netstack.Fault_deliver
          { extra_delay_ms = !extra; payload = !corrupted }
      else Transport.Netstack.Fault_pass

let install ?(seed = 0xC4A05L) plan net =
  let t =
    {
      net;
      plan;
      rng = Sim.Rng.create ~seed;
      trace = [];
      injected = 0;
      installed = true;
    }
  in
  Transport.Netstack.set_fault_oracle net (fun ~now ~src ~dst ~payload ->
      judge t ~now ~src ~dst ~payload);
  t

let uninstall t =
  if t.installed then begin
    t.installed <- false;
    Transport.Netstack.clear_fault_oracle t.net
  end

let trace t = List.rev t.trace
let faults_injected t = t.injected
let plan t = t.plan

(* --- disk faults ---------------------------------------------------- *)

let m_torn = Obs.Metrics.counter "chaos.injector.torn_writes"

type disk_injector = {
  disk : Store.Disk.t;
  disk_plan : Plan.t;
  disk_rng : Sim.Rng.t;
  mutable disk_trace : string list; (* newest first *)
  mutable disk_installed : bool;
}

(* Consulted once per unsynced file at crash time, in sorted file
   order, so a given plan, seed, and workload tear the same bytes
   every run. *)
let judge_crash d ~now ~file ~pending =
  let fate = ref Store.Disk.Keep_none in
  List.iter
    (fun fault ->
      match (fault : Plan.fault) with
      | Plan.Torn_write { host; from_ms; until_ms; probability }
        when !fate = Store.Disk.Keep_none
             && active ~now ~from_ms ~until_ms
             && host = Store.Disk.name d.disk
             && pending > 0
             && Sim.Rng.float d.disk_rng 1.0 < probability ->
          let keep = 1 + Sim.Rng.int d.disk_rng pending in
          Obs.Metrics.incr m_faults;
          Obs.Metrics.incr m_torn;
          d.disk_trace <-
            Printf.sprintf "%10.3f torn %s:%s keep=%d/%d" now
              (Store.Disk.name d.disk) file keep pending
            :: d.disk_trace;
          fate := Store.Disk.Keep keep
      | _ -> ())
    d.disk_plan;
  !fate

let install_disk ?(seed = 0xC4A05L) plan disk =
  let d =
    {
      disk;
      disk_plan = plan;
      disk_rng = Sim.Rng.create ~seed;
      disk_trace = [];
      disk_installed = true;
    }
  in
  Store.Disk.set_fault_oracle disk (fun ~now ~file ~pending ->
      judge_crash d ~now ~file ~pending);
  d

let uninstall_disk d =
  if d.disk_installed then begin
    d.disk_installed <- false;
    Store.Disk.clear_fault_oracle d.disk
  end

let disk_trace d = List.rev d.disk_trace
