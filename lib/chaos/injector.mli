(** Compiles a {!Plan.t} into a {!Transport.Netstack.fault_oracle} and
    installs it on a netstack.

    Every injected fault — each packet dropped, delayed, or corrupted —
    is appended to a deterministic event trace (formatted with its
    virtual timestamp) and counted in the [chaos.injector.*] metrics:

    - [chaos.injector.faults_injected] — every fault decision
    - [chaos.injector.packet_drops] / [chaos.injector.packet_delays] /
      [chaos.injector.packet_corruptions] — by kind

    Corruption randomness comes from the injector's own seeded stream,
    so the same plan, seed, and workload reproduce the same trace
    byte for byte. *)

type t

(** [install ?seed plan net] replaces any oracle already on [net]. *)
val install : ?seed:int64 -> Plan.t -> Transport.Netstack.t -> t

(** Remove the oracle; the trace and counters survive. Idempotent. *)
val uninstall : t -> unit

(** Chronological fault log, e.g.
    ["  2013.400 drop tonga->niue crash:niue"]. *)
val trace : t -> string list

(** Faults injected by this injector (the process-wide counter is
    [chaos.injector.faults_injected]). *)
val faults_injected : t -> int

val plan : t -> Plan.t
