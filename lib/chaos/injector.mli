(** Compiles a {!Plan.t} into a {!Transport.Netstack.fault_oracle} and
    installs it on a netstack.

    Every injected fault — each packet dropped, delayed, or corrupted —
    is appended to a deterministic event trace (formatted with its
    virtual timestamp) and counted in the [chaos.injector.*] metrics:

    - [chaos.injector.faults_injected] — every fault decision
    - [chaos.injector.packet_drops] / [chaos.injector.packet_delays] /
      [chaos.injector.packet_corruptions] — by kind

    Corruption randomness comes from the injector's own seeded stream,
    so the same plan, seed, and workload reproduce the same trace
    byte for byte. *)

type t

(** [install ?seed plan net] replaces any oracle already on [net]. *)
val install : ?seed:int64 -> Plan.t -> Transport.Netstack.t -> t

(** Remove the oracle; the trace and counters survive. Idempotent. *)
val uninstall : t -> unit

(** Chronological fault log, e.g.
    ["  2013.400 drop tonga->niue crash:niue"]. *)
val trace : t -> string list

(** Faults injected by this injector (the process-wide counter is
    [chaos.injector.faults_injected]). *)
val faults_injected : t -> int

val plan : t -> Plan.t

(** {1 Disk faults}

    {!Plan.Torn_write} faults target a {!Store.Disk.t} rather than the
    netstack: [install_disk] compiles them into the disk's crash-time
    fault oracle. When the disk crashes inside an active window, each
    file with unsynced bytes keeps a random non-empty prefix with the
    plan's probability (seeded, so traces are byte-identical across
    runs); torn decisions land in [chaos.injector.torn_writes] and the
    disk trace. *)

type disk_injector

(** [install_disk ?seed plan disk] replaces any oracle on [disk].
    Non-[Torn_write] faults in [plan] are ignored here. *)
val install_disk : ?seed:int64 -> Plan.t -> Store.Disk.t -> disk_injector

val uninstall_disk : disk_injector -> unit

(** Chronological torn-write log, e.g.
    ["  5200.000 torn disk0:wal.000001.wal keep=17/44"]. *)
val disk_trace : disk_injector -> string list
