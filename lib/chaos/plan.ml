type fault =
  | Crash of { host : string; from_ms : float; until_ms : float }
  | Partition of {
      group_a : string list;
      group_b : string list;
      from_ms : float;
      until_ms : float;
    }
  | Latency of {
      hosts : string list;
      from_ms : float;
      until_ms : float;
      add_ms : float;
      ramp : bool;
    }
  | Corrupt of {
      dst_hosts : string list;
      from_ms : float;
      until_ms : float;
      probability : float;
    }
  | Torn_write of {
      host : string;
      from_ms : float;
      until_ms : float;
      probability : float;
    }

type t = fault list

let check_window ~what ~at ~heal_at =
  if at < 0.0 then invalid_arg (what ^ ": fault start before t=0");
  if heal_at <= at then invalid_arg (what ^ ": heal time not after start")

let crash ~host ~at ?(heal_at = infinity) () =
  if heal_at <= at then invalid_arg "Chaos.Plan.crash: heal time not after crash";
  Crash { host; from_ms = at; until_ms = heal_at }

let partition ~group_a ~group_b ~at ~heal_at =
  check_window ~what:"Chaos.Plan.partition" ~at ~heal_at;
  if group_a = [] || group_b = [] then
    invalid_arg "Chaos.Plan.partition: empty host group";
  Partition { group_a; group_b; from_ms = at; until_ms = heal_at }

let latency_spike ?(hosts = []) ~at ~heal_at ~add_ms ?(ramp = false) () =
  check_window ~what:"Chaos.Plan.latency_spike" ~at ~heal_at;
  if add_ms < 0.0 then invalid_arg "Chaos.Plan.latency_spike: negative delay";
  Latency { hosts; from_ms = at; until_ms = heal_at; add_ms; ramp }

let corrupt ?(dst_hosts = []) ~at ~heal_at ~probability () =
  check_window ~what:"Chaos.Plan.corrupt" ~at ~heal_at;
  if probability < 0.0 || probability > 1.0 then
    invalid_arg "Chaos.Plan.corrupt: probability out of [0,1]";
  Corrupt { dst_hosts; from_ms = at; until_ms = heal_at; probability }

let torn_write ~host ~at ?(heal_at = infinity) ~probability () =
  if host = "" then invalid_arg "Chaos.Plan.torn_write: empty host";
  if heal_at <= at then
    invalid_arg "Chaos.Plan.torn_write: heal time not after start";
  if probability < 0.0 || probability > 1.0 then
    invalid_arg "Chaos.Plan.torn_write: probability out of [0,1]";
  Torn_write { host; from_ms = at; until_ms = heal_at; probability }

let pp_hosts ppf = function
  | [] -> Format.pp_print_string ppf "*"
  | hosts -> Format.pp_print_string ppf (String.concat "," hosts)

let pp_window ppf (from_ms, until_ms) =
  if until_ms = infinity then Format.fprintf ppf "[%.0f,inf)" from_ms
  else Format.fprintf ppf "[%.0f,%.0f)" from_ms until_ms

let pp_fault ppf = function
  | Crash { host; from_ms; until_ms } ->
      Format.fprintf ppf "crash %s %a" host pp_window (from_ms, until_ms)
  | Partition { group_a; group_b; from_ms; until_ms } ->
      Format.fprintf ppf "partition %a | %a %a" pp_hosts group_a pp_hosts
        group_b pp_window (from_ms, until_ms)
  | Latency { hosts; from_ms; until_ms; add_ms; ramp } ->
      Format.fprintf ppf "latency %a +%.0fms%s %a" pp_hosts hosts add_ms
        (if ramp then " ramp" else "")
        pp_window (from_ms, until_ms)
  | Corrupt { dst_hosts; from_ms; until_ms; probability } ->
      Format.fprintf ppf "corrupt ->%a p=%.2f %a" pp_hosts dst_hosts
        probability pp_window (from_ms, until_ms)
  | Torn_write { host; from_ms; until_ms; probability } ->
      Format.fprintf ppf "torn-write %s p=%.2f %a" host probability pp_window
        (from_ms, until_ms)

let pp ppf t =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
    pp_fault ppf t

let to_string t = Format.asprintf "%a" pp t
