(** Timed fault plans — the chaos DSL.

    A plan is a list of scheduled faults against the virtual clock.
    Each fault is active over a half-open window [[at, heal_at)); a
    packet is judged against every active fault at its send instant.
    Hosts are named by their {!Sim.Topology} hostname; an empty host
    list means "every host".

    Plans are pure data: building one touches nothing. Apply a plan to
    a running {!Transport.Netstack.t} with {!Injector.install}. *)

type fault =
  | Crash of { host : string; from_ms : float; until_ms : float }
      (** fail-stop: every packet to or from the host is dropped,
          including loopback — the host is simply off the air *)
  | Partition of {
      group_a : string list;
      group_b : string list;
      from_ms : float;
      until_ms : float;
    }  (** packets between the two groups are dropped, both ways *)
  | Latency of {
      hosts : string list;
      from_ms : float;
      until_ms : float;
      add_ms : float;
      ramp : bool;
    }
      (** extra one-way delay on packets touching [hosts]; with [ramp]
          the surcharge grows linearly from 0 at [from_ms] to [add_ms]
          at [until_ms] *)
  | Corrupt of {
      dst_hosts : string list;
      from_ms : float;
      until_ms : float;
      probability : float;
    }
      (** each datagram headed to [dst_hosts] is corrupted (one byte
          flipped) with the given probability; reliable (TCP) segments
          are never corrupted — checksums would have discarded them *)
  | Torn_write of {
      host : string;
      from_ms : float;
      until_ms : float;
      probability : float;
    }
      (** when the disk named [host] crashes in the window, each file
          with unsynced bytes independently keeps a random prefix of
          them with the given probability — the half-written sector of
          a power loss mid-commit. Judged by
          {!Injector.install_disk}, not by the netstack. *)

type t = fault list

(** {1 Constructors (validated)} *)

(** [crash ~host ~at ()] never heals; give [heal_at] to restart. *)
val crash : host:string -> at:float -> ?heal_at:float -> unit -> fault

val partition :
  group_a:string list -> group_b:string list -> at:float -> heal_at:float -> fault

val latency_spike :
  ?hosts:string list ->
  at:float ->
  heal_at:float ->
  add_ms:float ->
  ?ramp:bool ->
  unit ->
  fault

val corrupt :
  ?dst_hosts:string list -> at:float -> heal_at:float -> probability:float -> unit -> fault

(** [torn_write ~host ~at ~probability ()] never heals by default. *)
val torn_write :
  host:string -> at:float -> ?heal_at:float -> probability:float -> unit -> fault

val pp_fault : Format.formatter -> fault -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
