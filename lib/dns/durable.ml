type config = {
  base : string;
  group_window_ms : float;
  segment_bytes : int;
  snapshot_every : int;
}

let default_config =
  { base = "zone"; group_window_ms = 2.0; segment_bytes = 64 * 1024; snapshot_every = 32 }

type t = {
  config : config;
  zone : Zone.t;
  wal : Store.Wal.t;
  disk : Store.Disk.t;
  mutable since_snap : int;
  mutable snap_serial : int32;
  mutable persisted : int;
  mutable hook : Zone.hook option; (* None once detached *)
}

let m_persisted = Obs.Metrics.counter "dns.durable.persisted_deltas"
let m_snapshots = Obs.Metrics.counter "dns.durable.snapshots"
let m_recoveries = Obs.Metrics.counter "dns.durable.recoveries"
let m_replayed = Obs.Metrics.counter "dns.durable.replayed_deltas"
let m_skipped = Obs.Metrics.counter "dns.durable.skipped_deltas"
let m_recovery_ms = Obs.Metrics.histogram "dns.durable.recovery_ms"

let now_ms () = try Sim.Engine.time () with Effect.Unhandled _ -> 0.0

(* --- codecs --------------------------------------------------------- *)

(* Only the serial field of these SOAs is meaningful — exactly the
   convention the IXFR request's authority section uses. *)
let serial_soa origin serial =
  Rr.make origin
    (Rr.Soa
       {
         Rr.mname = origin;
         rname = origin;
         serial;
         refresh = 0l;
         retry = 0l;
         expire = 0l;
         minimum = 0l;
       })

let encode_delta ~origin (d : Journal.delta) =
  let to_soa = serial_soa origin d.Journal.to_serial in
  let msg =
    {
      (Msg.query ~id:0 origin Rr.T_ixfr) with
      Msg.recursion_desired = false;
      authority = [ serial_soa origin d.Journal.from_serial ];
      answers =
        (to_soa :: List.map Ixfr.rr_of_change d.Journal.changes) @ [ to_soa ];
    }
  in
  Msg.encode msg

let decode_delta payload =
  match Msg.decode payload with
  | exception Msg.Bad_message _ -> None
  | msg -> (
      match Ixfr.request_serial msg with
      | None -> None
      | Some from_serial -> (
          match Ixfr.parse_answers msg.Msg.answers with
          | Ok (Ixfr.Deltas (soa, changes)) ->
              Some { Journal.from_serial; to_serial = soa.Rr.serial; changes }
          | Ok (Ixfr.Unchanged soa) ->
              Some { Journal.from_serial; to_serial = soa.Rr.serial; changes = [] }
          | Ok (Ixfr.Full _) | Error _ -> None))

let encode_snapshot zone =
  let msg =
    {
      (Msg.query ~id:0 (Zone.origin zone) Rr.T_axfr) with
      Msg.recursion_desired = false;
      answers = Zone.axfr_records zone;
    }
  in
  Msg.encode msg

let decode_snapshot payload =
  match Msg.decode payload with
  | exception Msg.Bad_message _ -> None
  | msg -> (
      match (msg.Msg.questions, msg.Msg.answers) with
      | [ { Msg.qname = origin; _ } ], { Rr.rdata = Rr.Soa soa; _ } :: records
        ->
          Some (origin, soa, records)
      | _ -> None)

(* --- checkpointing -------------------------------------------------- *)

let delta_serial_le payload serial =
  match decode_delta payload with
  | Some d -> Int32.compare d.Journal.to_serial serial <= 0
  | None -> true (* undecodable: nothing recovery could use, drop it *)

let snapshot t =
  let serial = Zone.serial t.zone in
  Store.Snapshot.save ~base:t.config.base t.disk ~serial
    (encode_snapshot t.zone);
  t.snap_serial <- serial;
  t.since_snap <- 0;
  Obs.Metrics.incr m_snapshots;
  (* The snapshot subsumes every delta at or below its serial; prune
     them so the log tail stays proportional to churn since the last
     checkpoint, not to zone lifetime. *)
  ignore
    (Store.Wal.compact t.wal
       ~coalesce:(List.filter (fun p -> not (delta_serial_le p serial))))

let zone t = t.zone
let wal t = t.wal
let disk t = t.disk
let last_snapshot_serial t = t.snap_serial
let persisted_deltas t = t.persisted

let attach ?(config = default_config) disk zone =
  let wal =
    Store.Wal.create ~base:config.base ~group_window_ms:config.group_window_ms
      ~segment_bytes:config.segment_bytes disk
  in
  let t =
    {
      config;
      zone;
      wal;
      disk;
      since_snap = 0;
      snap_serial = Int32.minus_one;
      persisted = 0;
      hook = None;
    }
  in
  (match Store.Snapshot.on_disk ~base:config.base disk with
  | [] -> snapshot t (* bootstrap: recovery always has a base image *)
  | newest :: _ ->
      t.snap_serial <- newest;
      (* Log hygiene: a torn tail left by the crash would swallow every
         record appended after it (replay stops at the first bad
         frame). Rewrite the intact prefix onto fresh segments before
         accepting new appends. *)
      let rep = Store.Wal.replay ~base:config.base disk in
      if rep.Store.Wal.torn_tail then
        ignore (Store.Wal.compact wal ~coalesce:(fun records -> records)));
  t.hook <-
    Some
      (Zone.add_delta_hook zone (fun d ->
           (* Blocks through the WAL group commit: the update is durable
              before the caller can acknowledge it. *)
           Store.Wal.append wal (encode_delta ~origin:(Zone.origin zone) d);
           t.persisted <- t.persisted + 1;
           Obs.Metrics.incr m_persisted;
           t.since_snap <- t.since_snap + 1;
           if t.since_snap >= config.snapshot_every then snapshot t));
  t

let detach t =
  match t.hook with
  | None -> ()
  | Some h ->
      t.hook <- None;
      Zone.remove_delta_hook t.zone h

(* --- compaction ----------------------------------------------------- *)

let change_key c =
  let rr = match c with Journal.Put rr | Journal.Del rr -> rr in
  ( Name.to_string rr.Rr.name,
    Format.asprintf "%a" Rr.pp_rdata rr.Rr.rdata )

let coalesce_deltas ~origin payloads =
  let deltas = List.filter_map decode_delta payloads in
  match deltas with
  | [] -> []
  | first :: _ ->
      let last = List.nth deltas (List.length deltas - 1) in
      (* Last op per (name, rdata) decides that record's fate; one op
         per key survives. Deletions are replayed before puts and each
         class is sorted, so the compacted delta is deterministic. *)
      let tbl = Hashtbl.create 64 in
      List.iteri
        (fun i c -> Hashtbl.replace tbl (change_key c) (i, c))
        (List.concat_map (fun d -> d.Journal.changes) deltas);
      let survivors = Hashtbl.fold (fun k (_, c) acc -> (k, c) :: acc) tbl [] in
      let dels, puts =
        List.partition
          (fun (_, c) -> match c with Journal.Del _ -> true | _ -> false)
          survivors
      in
      let by_key = List.sort (fun (a, _) (b, _) -> compare a b) in
      let changes = List.map snd (by_key dels @ by_key puts) in
      [
        encode_delta ~origin
          {
            Journal.from_serial = first.Journal.from_serial;
            to_serial = last.Journal.to_serial;
            changes;
          };
      ]

let compact t =
  Store.Wal.compact t.wal
    ~coalesce:(coalesce_deltas ~origin:(Zone.origin t.zone))

(* --- recovery ------------------------------------------------------- *)

type recovery = {
  zone : Zone.t;
  snapshot_serial : int32;
  replayed_deltas : int;
  skipped_deltas : int;
  torn_tail : bool;
  recovery_ms : float;
}

let recover ?(config = default_config) disk =
  let t0 = now_ms () in
  match Store.Snapshot.load_latest ~base:config.base disk with
  | None -> None
  | Some (snap_serial, payload) -> (
      match decode_snapshot payload with
      | None -> None
      | Some (origin, soa, records) ->
          let zone = Zone.create ~origin ~soa records in
          let replay = Store.Wal.replay ~base:config.base disk in
          let replayed = ref 0 and skipped = ref 0 in
          List.iter
            (fun p ->
              match decode_delta p with
              | None -> ()
              | Some d ->
                  if Int32.compare d.Journal.to_serial (Zone.serial zone) <= 0
                  then begin
                    (* Covered by the snapshot (pruning is lazy). *)
                    incr skipped;
                    Obs.Metrics.incr m_skipped
                  end
                  else if Int32.equal d.Journal.from_serial (Zone.serial zone)
                  then begin
                    (* Re-journalled by [apply_delta], so the restarted
                       primary serves IXFR from the snapshot serial up. *)
                    Zone.apply_delta zone d;
                    incr replayed;
                    Obs.Metrics.incr m_replayed
                  end)
            replay.Store.Wal.records;
          Obs.Metrics.incr m_recoveries;
          let ms = now_ms () -. t0 in
          Obs.Metrics.observe m_recovery_ms ms;
          Some
            {
              zone;
              snapshot_serial = snap_serial;
              replayed_deltas = !replayed;
              skipped_deltas = !skipped;
              torn_tail = replay.Store.Wal.torn_tail;
              recovery_ms = ms;
            })
