(** Durable log-structured meta-store for a zone.

    The 1987 modified BIND kept the HNS meta-zone in memory and paid a
    full zone reload on restart. This layer gives a primary crash
    recovery at delta granularity over the simulated {!Store.Disk}:

    - every serial transition (dynamic update or replica catch-up) is
      spilled to a {!Store.Wal} {e before} the update is acknowledged
      — the delta hook ({!Zone.on_delta}) returns only when the WAL's
      group commit has made the record durable;
    - the on-disk delta format {e is} the IXFR wire discipline: a DNS
      message whose authority carries the from-serial SOA and whose
      answers are [new-SOA · changes · new-SOA], marshalled by
      {!Msg.encode} with name compression. Snapshots are an AXFR
      payload in the same dress;
    - every [snapshot_every] deltas the zone image is checkpointed
      ({!Store.Snapshot}) and the WAL pruned of records the snapshot
      covers;
    - {!recover} rebuilds a zone from snapshot + log tail. The
      recovered journal holds the replayed deltas, so a restarted
      primary resumes serving IXFR from its last durable serial
      instead of forcing every replica through a full transfer. *)

type config = {
  base : string;  (** file-name prefix on the disk *)
  group_window_ms : float;  (** WAL group-commit window *)
  segment_bytes : int;  (** WAL segment size *)
  snapshot_every : int;  (** deltas between automatic checkpoints *)
}

(** [{base = "zone"; group_window_ms = 2.0; segment_bytes = 64 KiB;
    snapshot_every = 32}] *)
val default_config : config

type t

(** [attach ?config disk zone] — starts spilling [zone]'s deltas to
    [disk]. Writes a bootstrap snapshot if the disk holds none, so
    {!recover} always has a base image.

    Attach at most one store per zone at a time: each [attach]
    registers its own delta hook, so two live attachments would spill
    every delta twice. {!detach} the old store before attaching a
    replacement (e.g. when re-attaching after {!recover}). *)
val attach : ?config:config -> Store.Disk.t -> Zone.t -> t

(** Stop spilling: unregister this store's delta hook from the zone.
    Idempotent. The on-disk image stays valid for {!recover}. *)
val detach : t -> unit

(** Checkpoint now: snapshot the zone image and prune the WAL of
    records at or below the snapshot serial. *)
val snapshot : t -> unit

(** Key-coalescing compaction: fold the WAL's delta chain into a
    single delta with one surviving operation per (name, rdata) —
    last-op-wins, deletions ordered before puts — and return the
    bytes-before/after ratio. Recovery over the compacted log reaches
    the same zone state. *)
val compact : t -> float

val zone : t -> Zone.t
val wal : t -> Store.Wal.t
val disk : t -> Store.Disk.t
val last_snapshot_serial : t -> int32
val persisted_deltas : t -> int

(** What {!recover} rebuilt, with its provenance. *)
type recovery = {
  zone : Zone.t;
  snapshot_serial : int32;  (** serial of the snapshot restored *)
  replayed_deltas : int;  (** WAL deltas applied on top *)
  skipped_deltas : int;  (** WAL deltas the snapshot already covered *)
  torn_tail : bool;  (** replay stopped at a torn/corrupt record *)
  recovery_ms : float;  (** virtual ms spent reading the disk *)
}

(** [recover ?config disk] — rebuild the zone from the newest intact
    snapshot plus the WAL tail. [None] when the disk holds no
    decodable snapshot. The recovered zone's journal contains the
    replayed deltas (it serves IXFR from the snapshot serial up);
    re-[attach] it to resume spilling. *)
val recover : ?config:config -> Store.Disk.t -> recovery option

(** {1 Codecs (exposed for tests)} *)

val encode_delta : origin:Name.t -> Journal.delta -> string
val decode_delta : string -> Journal.delta option
val encode_snapshot : Zone.t -> string
val decode_snapshot : string -> (Name.t * Rr.soa * Rr.t list) option
