type strategy =
  | Sliding_count of { window_ms : float }
  | Decayed of { half_life_ms : float }

type entry = {
  mutable score : float;  (* window count (Sliding) / decayed mass (Decayed) *)
  mutable last_ms : float;  (* instant of the most recent sighting *)
  mutable ttl_ms : float;  (* freshness horizon from that sighting's rrset *)
}

type t = {
  strategy : strategy;
  default_ttl_ms : float;
  capacity : int;
  groups : (string, (Name.t, entry) Hashtbl.t) Hashtbl.t;
}

let create ?(default_ttl_ms = 3_600_000.0) ?(capacity = 4096) ~strategy () =
  if capacity <= 0 then invalid_arg "Hotrank.create: capacity must be positive";
  (match strategy with
  | Sliding_count { window_ms } when window_ms <= 0.0 ->
      invalid_arg "Hotrank.create: window_ms must be positive"
  | Decayed { half_life_ms } when half_life_ms <= 0.0 ->
      invalid_arg "Hotrank.create: half_life_ms must be positive"
  | _ -> ());
  { strategy; default_ttl_ms; capacity; groups = Hashtbl.create 4 }

let strategy t = t.strategy

let group_table t group =
  match Hashtbl.find_opt t.groups group with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 64 in
      Hashtbl.replace t.groups group tbl;
      tbl

let expired e ~now_ms = now_ms -. e.last_ms > e.ttl_ms

(* The score a ranking pass sees at [now_ms]: the sliding count is
   taken at face value inside its window; the decayed mass is brought
   forward from the last sighting. *)
let current_score t e ~now_ms =
  match t.strategy with
  | Sliding_count { window_ms } ->
      if now_ms -. e.last_ms > window_ms then None else Some e.score
  | Decayed { half_life_ms } ->
      Some (e.score *. Float.exp2 (-.(now_ms -. e.last_ms) /. half_life_ms))

let live_score t e ~now_ms =
  if expired e ~now_ms then None else current_score t e ~now_ms

(* Deterministic eviction when a group's table is full: drop the entry
   with the lowest current score, highest name last among equals. *)
let evict_one t tbl ~now_ms =
  let victim =
    Hashtbl.fold
      (fun name e acc ->
        let s =
          match live_score t e ~now_ms with Some s -> s | None -> -1.0
        in
        match acc with
        | None -> Some (name, s)
        | Some (_, best_s) when s < best_s -> Some (name, s)
        | Some (best_n, best_s) when s = best_s && Name.compare name best_n > 0
          ->
            Some (name, s)
        | acc -> acc)
      tbl None
  in
  match victim with None -> () | Some (name, _) -> Hashtbl.remove tbl name

let note t ~group ~now_ms ?ttl_ms name =
  let ttl_ms = Option.value ~default:t.default_ttl_ms ttl_ms in
  let tbl = group_table t group in
  match Hashtbl.find_opt tbl name with
  | Some e ->
      (match t.strategy with
      | Sliding_count { window_ms } ->
          if now_ms -. e.last_ms > window_ms then e.score <- 0.0;
          e.score <- e.score +. 1.0
      | Decayed { half_life_ms } ->
          e.score <-
            (e.score *. Float.exp2 (-.(now_ms -. e.last_ms) /. half_life_ms))
            +. 1.0);
      e.last_ms <- now_ms;
      e.ttl_ms <- ttl_ms
  | None ->
      if Hashtbl.length tbl >= t.capacity then evict_one t tbl ~now_ms;
      Hashtbl.replace tbl name { score = 1.0; last_ms = now_ms; ttl_ms }

let score t ~group ~now_ms name =
  match Hashtbl.find_opt t.groups group with
  | None -> None
  | Some tbl -> (
      match Hashtbl.find_opt tbl name with
      | None -> None
      | Some e -> live_score t e ~now_ms)

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let rank scored ~k =
  List.sort
    (fun (n1, s1) (n2, s2) ->
      if s1 <> s2 then compare s2 s1 else Name.compare n1 n2)
    scored
  |> take k

let top t ~group ~now_ms ~k =
  match Hashtbl.find_opt t.groups group with
  | None -> []
  | Some tbl ->
      (* Opportunistic GC: TTL-expired entries are dead weight and
         would only distort capacity eviction; collect them here. *)
      let dead =
        Hashtbl.fold
          (fun name e acc -> if expired e ~now_ms then name :: acc else acc)
          tbl []
      in
      List.iter (Hashtbl.remove tbl) dead;
      let scored =
        Hashtbl.fold
          (fun name e acc ->
            match live_score t e ~now_ms with
            | Some s -> (name, s) :: acc
            | None -> acc)
          tbl []
      in
      rank scored ~k

let top_merged t ~now_ms ~k =
  let best = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _group tbl ->
      Hashtbl.iter
        (fun name e ->
          match live_score t e ~now_ms with
          | None -> ()
          | Some s -> (
              match Hashtbl.find_opt best name with
              | Some s' when s' >= s -> ()
              | _ -> Hashtbl.replace best name s))
        tbl)
    t.groups;
  rank (Hashtbl.fold (fun name s acc -> (name, s) :: acc) best []) ~k

let groups t =
  List.sort String.compare (Hashtbl.fold (fun g _ acc -> g :: acc) t.groups [])

let clear t = Hashtbl.reset t.groups
