(** Hot-name ranking strategies for the resolve-tail prefetch.

    The candidate set a server piggybacks on bundle replies
    ({!Hns.Meta_bundle}) is whatever it has been answering A-record
    queries for lately. How "lately" is scored decides whether the
    hints survive a flash crowd:

    - {!Sliding_count} is the naive scheme: a per-name counter inside
      a recency window; a name idle longer than the window is dropped
      from the ranking and its counter restarts on the next sighting.
      Under a flash crowd the steady working set stops reaching the
      server (agents answer it from their caches while the crowd
      monopolizes upstream traffic), goes idle past the window, and
      falls out of the hints — one-off tail names take its slots.
    - {!Decayed} is the fix: a per-name score that gains [1.0] per
      sighting and decays exponentially with the configured half-life.
      A steady name's accumulated mass shrinks smoothly through a
      quiet spell instead of resetting, so it keeps outranking
      single-sighting noise, and a burst concentrated on one name can
      claim only that one name's slot.

    Rankings are kept per {e group} (the caller's partition key — the
    server uses the answering zone, standing in for the requesting
    context since every context funnels its A queries through its own
    zone). A burst in one group cannot touch another group's ranking.

    Entries are TTL-aware: each sighting records the answered rrset's
    TTL, and an entry whose TTL has elapsed since its last sighting is
    dropped — a hint whose prefetched address would arrive already
    expired is worse than no hint.

    Everything is deterministic: ties break on {!Dns.Name.compare},
    and iteration order never leaks into results. *)

type strategy =
  | Sliding_count of { window_ms : float }
  | Decayed of { half_life_ms : float }

type t

(** [create ~strategy ()] — [default_ttl_ms] (default one hour) bounds
    entry lifetime when a sighting carries no TTL; [capacity] (default
    4096) bounds each group's table, evicting the lowest-scored entry
    (ties by name) when full. *)
val create : ?default_ttl_ms:float -> ?capacity:int -> strategy:strategy -> unit -> t

val strategy : t -> strategy

(** Record one positive sighting of [name] in [group] at [now_ms].
    [ttl_ms] is the answered record's remaining freshness horizon. *)
val note :
  t -> group:string -> now_ms:float -> ?ttl_ms:float -> Name.t -> unit

(** The current score of [name] as ranking would see it at [now_ms]:
    [None] if absent or TTL-expired. *)
val score : t -> group:string -> now_ms:float -> Name.t -> float option

(** Top [k] live names of [group], hottest first, scored at [now_ms].
    Ties break on {!Name.compare}; TTL-expired entries are dropped
    (and garbage-collected). *)
val top : t -> group:string -> now_ms:float -> k:int -> (Name.t * float) list

(** Top [k] across every group (a name appearing in several groups
    ranks by its highest score). *)
val top_merged : t -> now_ms:float -> k:int -> (Name.t * float) list

val groups : t -> string list
val clear : t -> unit
