open Transport

type response =
  | Unchanged of Rr.soa
  | Deltas of Rr.soa * Journal.change list
  | Full of Rr.t list

let m_served = Obs.Metrics.counter "dns.ixfr.served"
let m_unchanged = Obs.Metrics.counter "dns.ixfr.unchanged"
let m_fallbacks = Obs.Metrics.counter "dns.ixfr.fallbacks"
let m_changes_sent = Obs.Metrics.counter "dns.ixfr.changes_sent"

(* --- server side --- *)

let request_serial (request : Msg.t) =
  List.find_map
    (fun (rr : Rr.t) ->
      match rr.rdata with Rr.Soa s -> Some s.Rr.serial | _ -> None)
    request.Msg.authority

(* A change as an answer record: additions keep C_in, deletions are
   marked C_none — the same marker class the update encoding uses. *)
let rr_of_change = function
  | Journal.Put rr -> rr
  | Journal.Del rr -> { rr with Rr.rclass = Rr.C_none }

let answers_for_zone zone ~serial =
  if Int32.equal serial (Zone.serial zone) then begin
    Obs.Metrics.incr m_unchanged;
    `Answers [ Zone.soa_rr zone ]
  end
  else
    match Journal.since (Zone.journal zone) ~serial with
    | None ->
        Obs.Metrics.incr m_fallbacks;
        `Fallback
    | Some deltas ->
        let changes =
          List.concat_map (fun d -> d.Journal.changes) deltas
        in
        Obs.Metrics.incr m_served;
        Obs.Metrics.add m_changes_sent (List.length changes);
        let soa = Zone.soa_rr zone in
        `Answers ((soa :: List.map rr_of_change changes) @ [ soa ])

(* --- client side --- *)

(* Normalize a deletion marker back to an ordinary record so replicas
   re-journal and re-serve it cleanly. *)
let change_of_rr (rr : Rr.t) =
  match rr.rclass with
  | Rr.C_none -> Journal.Del { rr with rclass = Rr.C_in }
  | Rr.C_in | Rr.C_any -> Journal.Put rr

let rec split_last = function
  | [] -> invalid_arg "split_last"
  | [ x ] -> ([], x)
  | x :: rest ->
      let init, last = split_last rest in
      (x :: init, last)

let parse_answers answers =
  match answers with
  | { Rr.rdata = Rr.Soa soa; _ } :: rest -> (
      match rest with
      | [] -> Ok (Unchanged soa)
      | _ -> (
          let init, last = split_last rest in
          match last.Rr.rdata with
          | Rr.Soa s when Int32.equal s.Rr.serial soa.Rr.serial ->
              Ok (Deltas (soa, List.map change_of_rr init))
          | _ -> Ok (Full answers)))
  | _ -> Error "IXFR response does not start with an SOA"

let id_counter = ref 0x6000

let fetch stack ~server ~zone ~serial =
  incr id_counter;
  match Tcp.connect stack server with
  | exception Tcp.Connection_refused _ ->
      Error (Axfr.Transfer_failed "connection refused")
  | conn -> (
      let finish r =
        Tcp.close conn;
        r
      in
      (* The authority SOA carries the serial we hold; only the serial
         field is meaningful to the server. *)
      let have =
        Rr.make zone
          (Rr.Soa
             {
               Rr.mname = zone;
               rname = zone;
               serial;
               refresh = 0l;
               retry = 0l;
               expire = 0l;
               minimum = 0l;
             })
      in
      let request =
        {
          (Msg.query ~id:!id_counter zone Rr.T_ixfr) with
          Msg.recursion_desired = false;
          authority = [ have ];
        }
      in
      Tcp.send conn (Msg.encode request);
      match Tcp.recv_timeout conn 10_000.0 with
      | exception Tcp.Connection_closed ->
          finish (Error (Axfr.Transfer_failed "connection closed"))
      | None -> finish (Error (Axfr.Transfer_failed "timeout"))
      | Some payload -> (
          match Msg.decode payload with
          | exception Msg.Bad_message m ->
              finish (Error (Axfr.Transfer_failed m))
          | reply -> (
              match reply.Msg.rcode with
              | Msg.No_error -> (
                  match parse_answers reply.Msg.answers with
                  | Ok r -> finish (Ok r)
                  | Error m -> finish (Error (Axfr.Transfer_failed m)))
              | Msg.Refused -> finish (Error Axfr.Refused)
              | rc ->
                  finish (Error (Axfr.Transfer_failed (Msg.rcode_to_string rc))))))
