(** Incremental zone transfer (RFC 1995 discipline).

    A client holding the zone at serial [s] sends an IXFR query whose
    authority section carries an SOA with serial [s]; the server
    answers from the zone's {!Journal} with only the changes between
    [s] and the current serial. When the journal has been truncated
    past [s] the server falls back to a full AXFR-style payload in
    the same response — one connection either way.

    On the wire an incremental response is delimited by the new SOA
    appearing first {e and} last; between the two SOAs each record is
    an ordered change, marked by its class: [C_in] is an addition,
    [C_none] a deletion — the same marker classes the dynamic-update
    encoding uses. A full-fallback response is a plain AXFR payload
    (SOA first, no trailing SOA), and a single-SOA response means the
    client is already current. *)

(** What the server sent back, classified. *)
type response =
  | Unchanged of Rr.soa  (** client's serial is current *)
  | Deltas of Rr.soa * Journal.change list
      (** new SOA + ordered changes to replay *)
  | Full of Rr.t list  (** AXFR fallback: SOA first, then the zone *)

(** {1 Wire encoding of a change}

    Shared with the durable store's on-disk delta format. *)

(** A change as an answer record: additions keep [C_in], deletions are
    marked [C_none]. *)
val rr_of_change : Journal.change -> Rr.t

(** Inverse of {!rr_of_change} (normalises the deletion marker back to
    [C_in]). *)
val change_of_rr : Rr.t -> Journal.change

(** {1 Server side} *)

(** The serial the requester claims to hold: the first SOA in the
    request's authority section. [None] — malformed request, treat as
    a full-transfer ask. *)
val request_serial : Msg.t -> int32 option

(** [answers_for_zone zone ~serial] — the answer-section records for
    an IXFR response, or [`Fallback] when the journal cannot bridge
    [serial] and the caller should serve a full transfer. Counts
    [dns.ixfr.served] / [dns.ixfr.unchanged] / [dns.ixfr.fallbacks]
    and [dns.ixfr.changes_sent]. *)
val answers_for_zone :
  Zone.t -> serial:int32 -> [ `Answers of Rr.t list | `Fallback ]

(** {1 Client side} *)

(** Classify a response's answer records. [Error] — unparseable
    payload (no leading SOA). *)
val parse_answers : Rr.t list -> (response, string) result

(** [fetch stack ~server ~zone ~serial] — one IXFR exchange over TCP.
    Shares {!Axfr.error} so callers handle both transfer kinds
    uniformly. *)
val fetch :
  Transport.Netstack.stack ->
  server:Transport.Address.t ->
  zone:Name.t ->
  serial:int32 ->
  (response, Axfr.error) result
