type change = Put of Rr.t | Del of Rr.t

type delta = { from_serial : int32; to_serial : int32; changes : change list }

(* Deltas are kept newest-first internally (cheap append); reads
   reverse. The retention bound is on delta count, not record count:
   dynamic updates are small, so the two track each other. *)
type t = {
  max_deltas : int;
  mutable rev_deltas : delta list;
  mutable truncations : int;
}

let m_appends = Obs.Metrics.counter "dns.journal.appends"
let m_truncations = Obs.Metrics.counter "dns.journal.truncations"

let create ?(max_deltas = 64) () =
  if max_deltas < 1 then invalid_arg "Journal.create: max_deltas < 1";
  { max_deltas; rev_deltas = []; truncations = 0 }

let length t = List.length t.rev_deltas

let record t ~from_serial ~to_serial changes =
  t.rev_deltas <- { from_serial; to_serial; changes } :: t.rev_deltas;
  Obs.Metrics.incr m_appends;
  let n = length t in
  if n > t.max_deltas then begin
    let dropped = n - t.max_deltas in
    t.rev_deltas <- List.filteri (fun i _ -> i < t.max_deltas) t.rev_deltas;
    t.truncations <- t.truncations + dropped;
    Obs.Metrics.add m_truncations dropped
  end

let deltas t = List.rev t.rev_deltas

let since t ~serial =
  match t.rev_deltas with
  | { to_serial; _ } :: _ when Int32.equal to_serial serial -> Some []
  | rev ->
      (* Walk newest → oldest collecting deltas until one starts at
         the requested serial; the collected list comes out oldest
         first. A break in the serial chain (shouldn't happen — every
         record starts where the previous ended) or running out of
         journal means we cannot bridge the gap. *)
      let rec collect acc expected_from = function
        | [] -> None
        | d :: rest ->
            if not (Int32.equal d.to_serial expected_from) then None
            else if Int32.equal d.from_serial serial then Some (d :: acc)
            else collect (d :: acc) d.from_serial rest
      in
      (match rev with
      | [] -> None
      | newest :: _ -> collect [] newest.to_serial rev)

let truncations t = t.truncations

let change_count d = List.length d.changes

let apply_changes db changes =
  List.iter
    (fun change ->
      match change with
      | Put rr -> Db.add db rr
      | Del rr -> Db.remove_rr db rr.Rr.name rr.Rr.rdata)
    changes
