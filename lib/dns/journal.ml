type change = Put of Rr.t | Del of Rr.t

type delta = { from_serial : int32; to_serial : int32; changes : change list }

(* Deltas are kept newest-first internally (cheap append); reads
   reverse. Retention is bounded two ways: by delta count and by an
   estimate of the bytes held, so a burst of fat updates cannot pin
   unbounded memory just because it fits the count bound. Each entry
   carries its size so truncation never re-measures. *)
type t = {
  max_deltas : int;
  max_bytes : int;
  mutable rev_deltas : (delta * int) list;
  mutable total_bytes : int;
  mutable truncations : int;
}

let m_appends = Obs.Metrics.counter "dns.journal.appends"
let m_truncations = Obs.Metrics.counter "dns.journal.truncations"
let m_bytes = Obs.Metrics.gauge "dns.journal.bytes"

let create ?(max_deltas = 64) ?(max_bytes = max_int) () =
  if max_deltas < 1 then invalid_arg "Journal.create: max_deltas < 1";
  if max_bytes < 1 then invalid_arg "Journal.create: max_bytes < 1";
  { max_deltas; max_bytes; rev_deltas = []; total_bytes = 0; truncations = 0 }

let length t = List.length t.rev_deltas

(* Rough wire-ish size of a change: fixed record overhead plus the
   rendered name and rdata. An estimate is enough — the bound exists
   to cap memory, not to account bytes exactly. *)
let change_bytes = function
  | Put rr | Del rr ->
      12
      + String.length (Name.to_string rr.Rr.name)
      + String.length (Format.asprintf "%a" Rr.pp_rdata rr.Rr.rdata)

let delta_bytes d = 24 + List.fold_left (fun a c -> a + change_bytes c) 0 d.changes

let record t ~from_serial ~to_serial changes =
  let d = { from_serial; to_serial; changes } in
  let b = delta_bytes d in
  t.rev_deltas <- (d, b) :: t.rev_deltas;
  t.total_bytes <- t.total_bytes + b;
  Obs.Metrics.incr m_appends;
  let n = length t in
  if n > t.max_deltas || t.total_bytes > t.max_bytes then begin
    (* Shed oldest-first until under both bounds; the newest delta
       always survives even if it alone exceeds the byte bound. *)
    let rec shed count bytes = function
      | (_, b) :: (_ :: _ as rest)
        when count > t.max_deltas || bytes > t.max_bytes ->
          shed (count - 1) (bytes - b) rest
      | l -> (l, bytes, count)
    in
    let kept, bytes, kept_n = shed n t.total_bytes (List.rev t.rev_deltas) in
    let dropped = n - kept_n in
    if dropped > 0 then begin
      t.rev_deltas <- List.rev kept;
      t.total_bytes <- bytes;
      t.truncations <- t.truncations + dropped;
      Obs.Metrics.add m_truncations dropped
    end
  end;
  Obs.Metrics.set m_bytes (float_of_int t.total_bytes)

let deltas t = List.rev_map fst t.rev_deltas

let bytes t = t.total_bytes

let since t ~serial =
  match t.rev_deltas with
  | ({ to_serial; _ }, _) :: _ when Int32.equal to_serial serial -> Some []
  | rev ->
      (* Walk newest → oldest collecting deltas until one starts at
         the requested serial; the collected list comes out oldest
         first. A break in the serial chain (shouldn't happen — every
         record starts where the previous ended) or running out of
         journal means we cannot bridge the gap. *)
      let rec collect acc expected_from = function
        | [] -> None
        | (d, _) :: rest ->
            if not (Int32.equal d.to_serial expected_from) then None
            else if Int32.equal d.from_serial serial then Some (d :: acc)
            else collect (d :: acc) d.from_serial rest
      in
      (match rev with
      | [] -> None
      | (newest, _) :: _ -> collect [] newest.to_serial rev)

let truncations t = t.truncations

let change_count d = List.length d.changes

let apply_changes db changes =
  List.iter
    (fun change ->
      match change with
      | Put rr -> Db.add db rr
      | Del rr -> Db.remove_rr db rr.Rr.name rr.Rr.rdata)
    changes
