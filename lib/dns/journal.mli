(** Per-zone append-only change journal.

    Every dynamic update the modified BIND applies is recorded here as
    a {e delta}: the concrete records the update put and deleted,
    keyed by the serial transition it caused. The journal is what lets
    a primary serve IXFR (incremental transfer, {!Ixfr}): a secondary
    or preloaded client holding serial [s] asks for "everything since
    [s]" and receives only the deltas, not the zone.

    Retention is bounded ([max_deltas]); once the journal has been
    truncated past a requested serial the server can no longer
    reconstruct the delta and must fall back to a full AXFR — the
    caller learns this from {!since} returning [None]. *)

(** One concrete record change. [Put] is an addition (or TTL
    refresh); [Del] removes the exact (name, rdata) pair. Changes are
    ordered: replaying them in sequence reproduces the primary's own
    database transition, including delete-then-re-add updates. *)
type change = Put of Rr.t | Del of Rr.t

type delta = {
  from_serial : int32;  (** zone serial before the update *)
  to_serial : int32;  (** zone serial after the update *)
  changes : change list;  (** ordered as the primary applied them *)
}

type t

(** [create ?max_deltas ?max_bytes ()] — retention bounds: delta
    count (default 64) and estimated bytes held (default unbounded).
    Whichever bound trips first sheds the oldest deltas; the byte
    total is exported as the [dns.journal.bytes] gauge. *)
val create : ?max_deltas:int -> ?max_bytes:int -> unit -> t

(** Append one delta; drops the oldest entries (counting truncations)
    when over the retention bound. *)
val record : t -> from_serial:int32 -> to_serial:int32 -> change list -> unit

(** [since t ~serial] — the contiguous chain of deltas leading from
    [serial] to the newest recorded serial, oldest first. [Some []]
    when [serial] is already the newest; [None] when the journal
    cannot bridge the gap (serial truncated away, never recorded, or
    ahead of the journal) and the caller must fall back to AXFR. *)
val since : t -> serial:int32 -> delta list option

(** All retained deltas, oldest first. *)
val deltas : t -> delta list

(** Deltas dropped to the retention bounds over the journal's life. *)
val truncations : t -> int

val length : t -> int

(** Estimated bytes currently held (the [dns.journal.bytes] gauge). *)
val bytes : t -> int

(** Number of record changes in a delta. *)
val change_count : delta -> int

(** Replay changes, in order, against a record store: [Put] adds,
    [Del] removes the exact record. *)
val apply_changes : Db.t -> change list -> unit
