type opcode = Query | Notify | Update

type rcode =
  | No_error
  | Form_err
  | Serv_fail
  | Nx_domain
  | Not_impl
  | Refused
  | Not_zone

type question = { qname : Name.t; qtype : Rr.rtype }

type update_op =
  | Add of Rr.t
  | Delete_rrset of Name.t * Rr.rtype
  | Delete_rr of Name.t * Rr.rdata
  | Delete_name of Name.t

type t = {
  id : int;
  is_response : bool;
  opcode : opcode;
  authoritative : bool;
  truncated : bool;
  recursion_desired : bool;
  recursion_available : bool;
  rcode : rcode;
  questions : question list;
  answers : Rr.t list;
  updates : update_op list;
  authority : Rr.t list;
  additional : Rr.t list;
}

exception Bad_message of string

let fail fmt = Format.kasprintf (fun s -> raise (Bad_message s)) fmt

let opcode_code = function Query -> 0 | Notify -> 4 | Update -> 5

let opcode_of_code = function
  | 0 -> Query
  | 4 -> Notify
  | 5 -> Update
  | n -> fail "unsupported opcode %d" n

let rcode_code = function
  | No_error -> 0
  | Form_err -> 1
  | Serv_fail -> 2
  | Nx_domain -> 3
  | Not_impl -> 4
  | Refused -> 5
  | Not_zone -> 10

let rcode_of_code = function
  | 0 -> No_error
  | 1 -> Form_err
  | 2 -> Serv_fail
  | 3 -> Nx_domain
  | 4 -> Not_impl
  | 5 -> Refused
  | 10 -> Not_zone
  | n -> fail "unsupported rcode %d" n

let rcode_to_string = function
  | No_error -> "NOERROR"
  | Form_err -> "FORMERR"
  | Serv_fail -> "SERVFAIL"
  | Nx_domain -> "NXDOMAIN"
  | Not_impl -> "NOTIMP"
  | Refused -> "REFUSED"
  | Not_zone -> "NOTZONE"

let empty =
  {
    id = 0;
    is_response = false;
    opcode = Query;
    authoritative = false;
    truncated = false;
    recursion_desired = false;
    recursion_available = false;
    rcode = No_error;
    questions = [];
    answers = [];
    updates = [];
    authority = [];
    additional = [];
  }

let query ~id qname qtype =
  { empty with id; questions = [ { qname; qtype } ]; recursion_desired = true }

let response ?(rcode = No_error) ?(authoritative = true) ?(truncated = false) ~request
    answers =
  {
    empty with
    id = request.id;
    is_response = true;
    opcode = request.opcode;
    authoritative;
    truncated;
    recursion_desired = request.recursion_desired;
    rcode;
    questions = request.questions;
    answers;
  }

(* RFC 1996 NOTIFY: question names the zone, answer carries the new
   SOA so the receiver can skip the serial probe. *)
let notify ~id ~zone soa_rr =
  {
    empty with
    id;
    opcode = Notify;
    authoritative = true;
    questions = [ { qname = zone; qtype = Rr.T_soa } ];
    answers = [ soa_rr ];
  }

let notify_ack ~request =
  {
    empty with
    id = request.id;
    is_response = true;
    opcode = Notify;
    authoritative = true;
    questions = request.questions;
  }

let update_request ~id ~zone updates =
  {
    empty with
    id;
    opcode = Update;
    questions = [ { qname = zone; qtype = Rr.T_soa } ];
    updates;
  }

let update_ack ?(rcode = No_error) ~request () =
  {
    empty with
    id = request.id;
    is_response = true;
    opcode = Update;
    rcode;
    questions = request.questions;
  }

let answer_count t = List.length t.answers

(* --- encoding --- *)

module W = Wire.Bytebuf.Wr
module R = Wire.Bytebuf.Rd

(* RFC 1035 section 4.1.4 name compression: a label whose length octet
   has the top two bits set is a pointer to a prior occurrence of the
   remaining suffix. The compression context maps suffix text to its
   absolute offset in the message being built; [None] encodes without
   compression. *)
type compression = { offsets : (string, int) Hashtbl.t }

let fresh_compression () = { offsets = Hashtbl.create 16 }

let rec encode_name ?ctx ?(base = 0) wr name =
  match Name.labels name with
  | [] -> W.u8 wr 0
  | label :: rest -> (
      let suffix = Name.to_string name in
      let here = base + W.length wr in
      match ctx with
      | Some { offsets } when Hashtbl.mem offsets suffix ->
          let target = Hashtbl.find offsets suffix in
          W.u8 wr (0xC0 lor (target lsr 8));
          W.u8 wr (target land 0xFF)
      | _ ->
          (match ctx with
          | Some { offsets } when here < 0x4000 -> Hashtbl.replace offsets suffix here
          | _ -> ());
          W.u8 wr (String.length label);
          W.bytes wr label;
          encode_name ?ctx ~base wr (Name.of_labels rest))

let decode_name rd =
  let rec go rd acc n jumps =
    if n > 128 then fail "name with too many labels"
    else
      match R.u8 rd with
      | 0 -> List.rev acc
      | len when len <= 63 -> go rd (R.bytes rd len :: acc) (n + 1) jumps
      | len when len >= 0xC0 ->
          if jumps > 32 then fail "compression pointer loop"
          else begin
            let offset = ((len land 0x3F) lsl 8) lor R.u8 rd in
            R.peek_at rd offset (fun rd' -> go rd' acc n (jumps + 1))
          end
      | len -> fail "bad label length %d" len
  in
  Name.of_labels (go rd [] 0 0)

let char_string wr s =
  if String.length s > 255 then invalid_arg "Msg: character-string too long";
  W.u8 wr (String.length s);
  W.bytes wr s

let decode_char_string rd =
  let len = R.u8 rd in
  R.bytes rd len

let encode_rdata ?ctx ?base wr (rdata : Rr.rdata) =
  match rdata with
  | A ip -> W.u32 wr ip
  | Ns n | Cname n | Ptr n -> encode_name ?ctx ?base wr n
  | Soa s ->
      encode_name ?ctx ?base:(match base with Some b -> Some (b) | None -> None) wr s.mname;
      encode_name ?ctx
        ?base:(match base with Some b -> Some b | None -> None)
        wr s.rname;
      W.u32 wr s.serial;
      W.u32 wr s.refresh;
      W.u32 wr s.retry;
      W.u32 wr s.expire;
      W.u32 wr s.minimum
  | Hinfo (cpu, os) ->
      char_string wr cpu;
      char_string wr os
  | Mx (pref, n) ->
      W.u16 wr pref;
      encode_name ?ctx ?base wr n
  | Txt ss -> List.iter (char_string wr) ss
  | Unspec s -> W.bytes wr s

let decode_rdata rtype rd : Rr.rdata =
  match (rtype : Rr.rtype) with
  | T_a -> A (R.u32 rd)
  | T_ns -> Ns (decode_name rd)
  | T_cname -> Cname (decode_name rd)
  | T_ptr -> Ptr (decode_name rd)
  | T_soa ->
      let mname = decode_name rd in
      let rname = decode_name rd in
      let serial = R.u32 rd in
      let refresh = R.u32 rd in
      let retry = R.u32 rd in
      let expire = R.u32 rd in
      let minimum = R.u32 rd in
      Soa { mname; rname; serial; refresh; retry; expire; minimum }
  | T_hinfo ->
      let cpu = decode_char_string rd in
      let os = decode_char_string rd in
      Hinfo (cpu, os)
  | T_mx ->
      let pref = R.u16 rd in
      Mx (pref, decode_name rd)
  | T_txt ->
      let rec go acc = if R.at_end rd then List.rev acc else go (decode_char_string rd :: acc) in
      Txt (go [])
  | T_unspec -> Unspec (R.bytes rd (R.remaining rd))
  | T_ixfr | T_axfr | T_any -> fail "query-only type in record"

(* A record on the wire: name, type, class, ttl, rdlength, rdata.
   Rdata is built in a sub-buffer whose compression offsets are
   shifted by the two rdlength bytes about to precede it.

   The sub-buffer is one process-wide scratch reused across every
   record of every message: rdata encoding never nests another record,
   and no effect is performed mid-encode so a fiber cannot be
   preempted with the scratch in use. After warm-up a whole batch of
   records (an AXFR, an IXFR delta train, a bundle reply) encodes with
   zero per-record buffer allocation. *)
let rdata_scratch = W.create ~initial:128 ()

let encode_rr_raw ?ctx wr ~name ~type_code ~class_code ~ttl rdata_opt =
  encode_name ?ctx wr name;
  W.u16 wr type_code;
  W.u16 wr class_code;
  W.u32 wr ttl;
  match rdata_opt with
  | None -> W.u16 wr 0
  | Some rdata ->
      W.clear rdata_scratch;
      encode_rdata ?ctx ~base:(W.length wr + 2) rdata_scratch rdata;
      W.u16 wr (W.length rdata_scratch);
      W.append wr rdata_scratch

let encode_rr ?ctx wr (rr : Rr.t) =
  encode_rr_raw ?ctx wr ~name:rr.name
    ~type_code:(Rr.rtype_code (Rr.rdata_type rr.rdata))
    ~class_code:(Rr.rclass_code rr.rclass) ~ttl:rr.ttl (Some rr.rdata)

let encode_update_op ?ctx wr = function
  | Add rr -> encode_rr ?ctx wr rr
  | Delete_rrset (name, rtype) ->
      encode_rr_raw ?ctx wr ~name ~type_code:(Rr.rtype_code rtype)
        ~class_code:(Rr.rclass_code Rr.C_any) ~ttl:0l None
  | Delete_rr (name, rdata) ->
      encode_rr_raw ?ctx wr ~name
        ~type_code:(Rr.rtype_code (Rr.rdata_type rdata))
        ~class_code:(Rr.rclass_code Rr.C_none) ~ttl:0l (Some rdata)
  | Delete_name name ->
      encode_rr_raw ?ctx wr ~name ~type_code:(Rr.rtype_code Rr.T_any)
        ~class_code:(Rr.rclass_code Rr.C_any) ~ttl:0l None

(* Decode one wire record, yielding either a plain RR or the raw parts
   needed to recognize update operations. *)
let decode_rr_raw rd =
  let name = decode_name rd in
  let type_code = R.u16 rd in
  let class_code = R.u16 rd in
  let ttl = R.u32 rd in
  let rdlength = R.u16 rd in
  let body = R.sub rd ~len:rdlength in
  (name, type_code, class_code, ttl, body)

let decode_rr rd : Rr.t =
  let name, type_code, class_code, ttl, body = decode_rr_raw rd in
  let rtype =
    match Rr.rtype_of_code type_code with
    | Some t -> t
    | None -> fail "unknown rr type %d" type_code
  in
  let rclass =
    match Rr.rclass_of_code class_code with
    | Some c -> c
    | None -> fail "unknown rr class %d" class_code
  in
  { name; ttl; rclass; rdata = decode_rdata rtype body }

let decode_update_op rd =
  let name, type_code, class_code, ttl, body = decode_rr_raw rd in
  let rtype =
    match Rr.rtype_of_code type_code with
    | Some t -> t
    | None -> fail "unknown rr type %d in update" type_code
  in
  match Rr.rclass_of_code class_code with
  | Some Rr.C_in -> Add { name; ttl; rclass = Rr.C_in; rdata = decode_rdata rtype body }
  | Some Rr.C_any -> if rtype = Rr.T_any then Delete_name name else Delete_rrset (name, rtype)
  | Some Rr.C_none -> Delete_rr (name, decode_rdata rtype body)
  | None -> fail "unknown rr class %d in update" class_code

let encode ?(compress = true) t =
  let ctx = if compress then Some (fresh_compression ()) else None in
  let wr = W.create ~initial:256 () in
  W.u16 wr (t.id land 0xFFFF);
  let flags =
    ((if t.is_response then 1 else 0) lsl 15)
    lor (opcode_code t.opcode lsl 11)
    lor ((if t.authoritative then 1 else 0) lsl 10)
    lor ((if t.truncated then 1 else 0) lsl 9)
    lor ((if t.recursion_desired then 1 else 0) lsl 8)
    lor ((if t.recursion_available then 1 else 0) lsl 7)
    lor rcode_code t.rcode
  in
  W.u16 wr flags;
  let section3_count =
    match t.opcode with
    | Update -> List.length t.updates
    | Query | Notify -> List.length t.authority
  in
  W.u16 wr (List.length t.questions);
  W.u16 wr (List.length t.answers);
  W.u16 wr section3_count;
  W.u16 wr (List.length t.additional);
  List.iter
    (fun q ->
      encode_name ?ctx wr q.qname;
      W.u16 wr (Rr.rtype_code q.qtype);
      W.u16 wr (Rr.rclass_code Rr.C_in))
    t.questions;
  List.iter (encode_rr ?ctx wr) t.answers;
  (match t.opcode with
  | Update -> List.iter (encode_update_op ?ctx wr) t.updates
  | Query | Notify -> List.iter (encode_rr ?ctx wr) t.authority);
  List.iter (encode_rr ?ctx wr) t.additional;
  W.contents wr

(* [List.init]'s application order is unspecified; decoding is
   stateful, so sequence explicitly. *)
let rec times n f = if n <= 0 then [] else let x = f () in x :: times (n - 1) f

let decode s =
  let rd = R.of_string s in
  try
    let id = R.u16 rd in
    let flags = R.u16 rd in
    let qdcount = R.u16 rd in
    let ancount = R.u16 rd in
    let nscount = R.u16 rd in
    let arcount = R.u16 rd in
    let is_response = flags land 0x8000 <> 0 in
    let opcode = opcode_of_code ((flags lsr 11) land 0xF) in
    let authoritative = flags land 0x400 <> 0 in
    let truncated = flags land 0x200 <> 0 in
    let recursion_desired = flags land 0x100 <> 0 in
    let recursion_available = flags land 0x80 <> 0 in
    let rcode = rcode_of_code (flags land 0xF) in
    let questions =
      times qdcount (fun () ->
          let qname = decode_name rd in
          let type_code = R.u16 rd in
          let _class_code = R.u16 rd in
          match Rr.rtype_of_code type_code with
          | Some qtype -> { qname; qtype }
          | None -> fail "unknown question type %d" type_code)
    in
    let answers = times ancount (fun () -> decode_rr rd) in
    let updates, authority =
      match opcode with
      | Update -> (times nscount (fun () -> decode_update_op rd), [])
      | Query | Notify -> ([], times nscount (fun () -> decode_rr rd))
    in
    let additional = times arcount (fun () -> decode_rr rd) in
    {
      id;
      is_response;
      opcode;
      authoritative;
      truncated;
      recursion_desired;
      recursion_available;
      rcode;
      questions;
      answers;
      updates;
      authority;
      additional;
    }
  with Wire.Bytebuf.Truncated -> fail "truncated DNS message"

let udp_payload_limit = 512

let truncate_for_udp t =
  if String.length (encode t) <= udp_payload_limit then t
  else { t with truncated = true; answers = []; authority = []; additional = [] }

let pp ppf t =
  Format.fprintf ppf "%s id=%d %s%s q=[%s] an=%d ns=%d ar=%d"
    (match t.opcode with Query -> "QUERY" | Notify -> "NOTIFY" | Update -> "UPDATE")
    t.id
    (if t.is_response then "resp " else "req ")
    (rcode_to_string t.rcode)
    (String.concat ","
       (List.map
          (fun q -> Printf.sprintf "%s:%s" (Name.to_string q.qname) (Rr.rtype_name q.qtype))
          t.questions))
    (List.length t.answers)
    (match t.opcode with
    | Update -> List.length t.updates
    | Query | Notify -> List.length t.authority)
    (List.length t.additional)
