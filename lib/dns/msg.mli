(** DNS message format — hand-coded marshalling, the equivalent of the
    "standard BIND library routines" whose cost Table 3.2 compares
    against the stub-generated path.

    The encoding is RFC 1035, including section 4.1.4 name
    compression (suffix pointers), plus the RFC 2136-style
    dynamic-update sections of the modified BIND. *)

type opcode = Query | Notify | Update

type rcode =
  | No_error
  | Form_err
  | Serv_fail
  | Nx_domain
  | Not_impl
  | Refused
  | Not_zone  (** update outside the server's zone *)

type question = { qname : Name.t; qtype : Rr.rtype }

(** Operations carried in the update section of an UPDATE message. *)
type update_op =
  | Add of Rr.t
  | Delete_rrset of Name.t * Rr.rtype
  | Delete_rr of Name.t * Rr.rdata
  | Delete_name of Name.t

type t = {
  id : int;
  is_response : bool;
  opcode : opcode;
  authoritative : bool;
  truncated : bool;  (** TC: answer exceeded the UDP limit *)
  recursion_desired : bool;
  recursion_available : bool;
  rcode : rcode;
  questions : question list;   (** zone section, for UPDATE *)
  answers : Rr.t list;
  updates : update_op list;    (** section 3 of an UPDATE message *)
  authority : Rr.t list;       (** section 3 of a QUERY response *)
  additional : Rr.t list;
}

exception Bad_message of string

val query : id:int -> Name.t -> Rr.rtype -> t

val response :
  ?rcode:rcode -> ?authoritative:bool -> ?truncated:bool -> request:t -> Rr.t list -> t

val update_request : id:int -> zone:Name.t -> update_op list -> t

(** [notify ~id ~zone soa_rr] — an RFC 1996 NOTIFY request: the
    question names the zone, the answer section carries the primary's
    current SOA so receivers learn the new serial without a probe. *)
val notify : id:int -> zone:Name.t -> Rr.t -> t

(** The empty positive response acknowledging a NOTIFY. *)
val notify_ack : request:t -> t

(** An empty response suited to acknowledging an update. *)
val update_ack : ?rcode:rcode -> request:t -> unit -> t

(** [encode ?compress t] — [compress] (default true) emits RFC 1035
    suffix pointers; either form decodes identically. *)
val encode : ?compress:bool -> t -> string

val decode : string -> t

(** The classic UDP payload ceiling (RFC 1035: 512 bytes). *)
val udp_payload_limit : int

(** [truncate_for_udp t] — when [encode t] exceeds the limit, drop the
    answer sections and set TC, as 1987 BIND did; otherwise [t]. *)
val truncate_for_udp : t -> t

(** Number of answer records — the quantity the paper's marshalling
    cost model is linear in. *)
val answer_count : t -> int

val rcode_to_string : rcode -> string
val pp : Format.formatter -> t -> unit
