let m_sent = Obs.Metrics.counter "dns.notify.sent"
let m_acked = Obs.Metrics.counter "dns.notify.acked"
let m_failed = Obs.Metrics.counter "dns.notify.failed"
let m_ack_ms = Obs.Metrics.histogram "dns.notify.ack_ms"

let id_counter = ref 0x7000

let push stack ~zone targets =
  List.iter
    (fun target ->
      incr id_counter;
      let id = !id_counter in
      (* One fiber per target so a slow or dead receiver never blocks
         the update path; receivers that miss the push catch up on
         their next SOA poll. *)
      try
        Sim.Engine.spawn_child ~name:"bind-notify" (fun () ->
            let msg = Msg.notify ~id ~zone:(Zone.origin zone) (Zone.soa_rr zone) in
            Obs.Metrics.incr m_sent;
            let started = Sim.Engine.time () in
            match
              Rpc.Rawrpc.call stack ~dst:target ~timeout:500.0 ~attempts:2
                (Msg.encode msg)
            with
            | Ok _ ->
                Obs.Metrics.incr m_acked;
                Obs.Metrics.observe m_ack_ms (Sim.Engine.time () -. started)
            | Error _ -> Obs.Metrics.incr m_failed)
      with Effect.Unhandled _ -> ())
    targets
