let m_sent = Obs.Metrics.counter "dns.notify.sent"
let m_acked = Obs.Metrics.counter "dns.notify.acked"
let m_failed = Obs.Metrics.counter "dns.notify.failed"
let m_ack_ms = Obs.Metrics.histogram "dns.notify.ack_ms"

let id_counter = ref 0x7000

let push stack ~zone ?(max_inflight = 8) ?on_result targets =
  if targets <> [] then begin
    (* A bounded worker pool rather than one fiber per target: with
       hundreds of subscribers an unbounded fan-out would put the
       whole list's retransmission timers in flight at once. Workers
       pull from a shared queue; scheduling is cooperative, so the
       pops never race. *)
    let queue = ref targets in
    let send target =
      incr id_counter;
      let id = !id_counter in
      let msg = Msg.notify ~id ~zone:(Zone.origin zone) (Zone.soa_rr zone) in
      Obs.Metrics.incr m_sent;
      let started = Sim.Engine.time () in
      let ok =
        match
          Rpc.Rawrpc.call stack ~dst:target ~timeout:500.0 ~attempts:2
            (Msg.encode msg)
        with
        | Ok _ ->
            Obs.Metrics.incr m_acked;
            Obs.Metrics.observe m_ack_ms (Sim.Engine.time () -. started);
            true
        | Error _ ->
            Obs.Metrics.incr m_failed;
            false
      in
      match on_result with Some f -> f target ok | None -> ()
    in
    let workers = min (max 1 max_inflight) (List.length targets) in
    try
      for _ = 1 to workers do
        (* Receivers that miss the push catch up on their next SOA
           poll, so a dead target costs this worker only its timeout. *)
        Sim.Engine.spawn_child ~name:"bind-notify" (fun () ->
            let rec drain () =
              match !queue with
              | [] -> ()
              | target :: rest ->
                  queue := rest;
                  send target;
                  drain ()
            in
            drain ())
      done
    with Effect.Unhandled _ -> ()
  end
