(** NOTIFY push (RFC 1996 discipline).

    When the modified BIND's zone serial advances it pushes a NOTIFY
    carrying the new SOA to every registered secondary / subscriber,
    making propagation push-triggered instead of bounded by the
    receivers' refresh intervals. Delivery is best-effort over UDP
    with a couple of retransmissions; a lost NOTIFY costs only
    latency — receivers keep their SOA-poll loops as the backstop, so
    chaos-dropped notifies degrade to polling, never divergence. *)

(** [push stack ~zone targets] — fire-and-forget: a bounded pool of
    [max_inflight] worker fibers (default 8) drains the target list
    concurrently, each send carrying [zone]'s current SOA and waiting
    briefly for the ack, so a large subscriber list never serializes
    behind its slowest members nor floods the net all at once.
    [on_result] is invoked per target with the ack outcome (from the
    worker fiber) — {!Server} uses it for subscriber liveness GC.
    Counts [dns.notify.sent] / [dns.notify.acked] /
    [dns.notify.failed] and observes the round-trip on
    [dns.notify.ack_ms]. Outside the simulation this is a no-op
    (there is no network to push on). *)
val push :
  Transport.Netstack.stack ->
  zone:Zone.t ->
  ?max_inflight:int ->
  ?on_result:(Transport.Address.t -> bool -> unit) ->
  Transport.Address.t list ->
  unit
