let m_routed = Obs.Metrics.counter "dns.replica.routed"
let m_fallbacks = Obs.Metrics.counter "dns.replica.primary_fallbacks"
let m_probes = Obs.Metrics.counter "dns.replica.serial_probes"
let m_quarantines = Obs.Metrics.counter "dns.replica.quarantines"

type member = {
  addr : Transport.Address.t;
  mutable mass : float;
  mutable mass_at : float;
  mutable latency_ms : float;  (* EWMA; < 0. = no sample yet *)
  mutable serial : int32 option;
  mutable selected : int;
  mutable quarantined_until : float;
}

type t = {
  stack : Transport.Netstack.stack;
  zone : Name.t;
  primary : Transport.Address.t;
  members : member list;  (* sorted by address *)
  half_life_ms : float;
  quarantine_ms : float;
  probe_interval_ms : float;
  mutable last_probe_ms : float;
  mutable next_id : int;
  mutable routed : int;
  mutable primary_fallbacks : int;
}

let create stack ~zone ~primary ~replicas ?(half_life_ms = 2000.)
    ?(quarantine_ms = 3000.) ?(probe_interval_ms = 250.) () =
  let members =
    replicas
    |> List.sort_uniq Transport.Address.compare
    |> List.map (fun addr ->
           {
             addr;
             mass = 0.;
             mass_at = 0.;
             latency_ms = -1.;
             serial = None;
             selected = 0;
             quarantined_until = 0.;
           })
  in
  {
    stack;
    zone;
    primary;
    members;
    half_life_ms;
    quarantine_ms;
    probe_interval_ms;
    last_probe_ms = Float.neg_infinity;
    next_id = 0x5e00;
    routed = 0;
    primary_fallbacks = 0;
  }

let zone t = t.zone
let primary t = t.primary
let replica_addrs t = List.map (fun m -> m.addr) t.members
let size t = List.length t.members
let routed t = t.routed
let primary_fallbacks t = t.primary_fallbacks

let mass_now t m ~now =
  if m.mass <= 0. then 0.
  else m.mass *. Float.exp2 (-.(now -. m.mass_at) /. t.half_life_ms)

(* Combined cost: decayed request mass scaled by observed proximity.
   A fresh member (no mass, no latency sample) costs 1.0 and therefore
   attracts traffic until its real latency is known. *)
let cost t m ~now =
  (1. +. mass_now t m ~now) *. (1. +. Float.max m.latency_ms 0.)

let find_member t addr =
  List.find_opt (fun m -> Transport.Address.equal m.addr addr) t.members

let note_serial t addr serial =
  match find_member t addr with
  | None -> ()
  | Some m -> (
      match m.serial with
      | Some s when Int32.compare s serial >= 0 -> ()
      | _ -> m.serial <- Some serial)

let note_result t addr ~ok ~latency_ms =
  match find_member t addr with
  | None -> ()
  | Some m ->
      if ok then (
        m.quarantined_until <- 0.;
        m.latency_ms <-
          (if m.latency_ms < 0. then latency_ms
           else (0.8 *. m.latency_ms) +. (0.2 *. latency_ms)))
      else (
        m.quarantined_until <- Obs.Metrics.now_ms () +. t.quarantine_ms;
        Obs.Metrics.incr m_quarantines)

let probe_member t m =
  t.next_id <- t.next_id + 1;
  let q = Msg.query ~id:t.next_id t.zone Rr.T_soa in
  Obs.Metrics.incr m_probes;
  match
    Rpc.Rawrpc.call t.stack ~dst:m.addr ~timeout:80. ~attempts:1
      (Msg.encode q)
  with
  | Error _ -> ()
  | Ok bytes -> (
      match Msg.decode bytes with
      | exception Msg.Bad_message _ -> ()
      | reply ->
          List.iter
            (fun (rr : Rr.t) ->
              match rr.rdata with
              | Rr.Soa soa -> note_serial t m.addr soa.Rr.serial
              | _ -> ())
            reply.Msg.answers)

let refresh_serials t =
  t.last_probe_ms <- Obs.Metrics.now_ms ();
  List.iter (probe_member t) t.members

let quarantined m ~now = m.quarantined_until > now

let qualifies ?min_serial m ~now =
  (not (quarantined m ~now))
  &&
  match min_serial with
  | None -> true
  | Some floor -> (
      match m.serial with
      | None -> false
      | Some s -> Int32.compare s floor >= 0)

let candidates ?min_serial t ~now =
  List.filter (qualifies ?min_serial ~now) t.members

let select ?min_serial t =
  let now = Obs.Metrics.now_ms () in
  let cands =
    match candidates ?min_serial t ~now with
    | [] when min_serial <> None && t.members <> [] ->
        (* Pinned read with no known-fresh replica: probe serials (rate
           limited) and look again before conceding to the primary. *)
        if now -. t.last_probe_ms >= t.probe_interval_ms then
          refresh_serials t;
        candidates ?min_serial t ~now
    | cands -> cands
  in
  match cands with
  | [] ->
      t.primary_fallbacks <- t.primary_fallbacks + 1;
      Obs.Metrics.incr m_fallbacks;
      t.primary
  | first :: rest ->
      let best =
        List.fold_left
          (fun best m ->
            let c = compare (cost t m ~now) (cost t best ~now) in
            if c < 0 then m
            else if c = 0 && Transport.Address.compare m.addr best.addr < 0
            then m
            else best)
          first rest
      in
      best.mass <- mass_now t best ~now +. 1.;
      best.mass_at <- now;
      best.selected <- best.selected + 1;
      t.routed <- t.routed + 1;
      Obs.Metrics.incr m_routed;
      best.addr

type member_stats = {
  addr : Transport.Address.t;
  load : float;
  latency_ms : float;
  serial : int32 option;
  selected : int;
  quarantined : bool;
}

let stats t =
  let now = Obs.Metrics.now_ms () in
  List.map
    (fun (m : member) ->
      {
        addr = m.addr;
        load = mass_now t m ~now;
        latency_ms = m.latency_ms;
        serial = m.serial;
        selected = m.selected;
        quarantined = quarantined m ~now;
      })
    t.members
