(** Load-aware routing over a zone's replica tree.

    A replica set names one partition of the meta namespace: the
    primary that accepts dynamic updates for the zone, plus the
    replicas ({!Secondary} attachments, possibly chained) that serve
    reads. Each client holds its own set per partition — discovered
    from a referral or configured up front — and asks it which server
    should take the next read.

    Selection balances {e recency-decayed request mass} (the
    {!Hotrank} decay discipline: a member's mass halves every
    [half_life_ms] and gains 1 per selection) against an EWMA of
    observed latency, so a client both spreads load and gravitates to
    near replicas. Ties break on {!Transport.Address.compare} so runs
    are deterministic.

    Read-your-writes: a reader that just wrote at serial [s] passes
    [~min_serial:s]; only members whose last-seen SOA serial has
    caught up qualify. When none qualifies the set probes member SOA
    serials (rate-limited to one sweep per [probe_interval_ms]) and,
    failing that, falls back to the primary — counted in
    [dns.replica.primary_fallbacks] — so the client never observes a
    version older than its own write.

    Members that time out are quarantined for [quarantine_ms] and the
    set routes around them, which is what keeps resolves flowing while
    a replica crashes and re-bootstraps from its durable image. *)

type t

(** [create stack ~zone ~primary ~replicas ()] — [stack] is the
    calling client's endpoint, used only for SOA serial probes.
    Defaults: [half_life_ms] 2000, [quarantine_ms] 3000,
    [probe_interval_ms] 250. An empty [replicas] list is legal; every
    {!select} then returns the primary. *)
val create :
  Transport.Netstack.stack ->
  zone:Name.t ->
  primary:Transport.Address.t ->
  replicas:Transport.Address.t list ->
  ?half_life_ms:float ->
  ?quarantine_ms:float ->
  ?probe_interval_ms:float ->
  unit ->
  t

(** Pick the read target: the non-quarantined qualifying member with
    the least [(1 + decayed mass) * (1 + EWMA latency)], charging it
    one unit of mass. [~min_serial] restricts to members whose
    last-seen serial has caught up (probing if none has, falling back
    to the primary otherwise). *)
val select : ?min_serial:int32 -> t -> Transport.Address.t

(** Feed back the outcome of a read sent to [addr] (unknown addresses
    are ignored). Failure quarantines the member. *)
val note_result :
  t -> Transport.Address.t -> ok:bool -> latency_ms:float -> unit

(** Record a serial observed out-of-band (e.g. from a NOTIFY). *)
val note_serial : t -> Transport.Address.t -> int32 -> unit

(** SOA-probe every member now, ignoring the rate limit. *)
val refresh_serials : t -> unit

val zone : t -> Name.t
val primary : t -> Transport.Address.t
val replica_addrs : t -> Transport.Address.t list

(** Replicas in the set (the primary is not a member). *)
val size : t -> int

(** Reads routed to replicas / pinned reads that fell back. *)
val routed : t -> int

val primary_fallbacks : t -> int

type member_stats = {
  addr : Transport.Address.t;
  load : float;  (** decayed request mass, as of now *)
  latency_ms : float;  (** EWMA; negative when no sample yet *)
  serial : int32 option;  (** last-seen SOA serial *)
  selected : int;
  quarantined : bool;
}

(** Per-member rows, sorted by address (for [hns_cli stats]). *)
val stats : t -> member_stats list
