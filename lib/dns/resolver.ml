type error =
  | Nxdomain
  | No_data
  | Server_error of Msg.rcode
  | Rpc_error of Rpc.Control.error

let pp_error ppf = function
  | Nxdomain -> Format.pp_print_string ppf "NXDOMAIN"
  | No_data -> Format.pp_print_string ppf "no data"
  | Server_error rc -> Format.fprintf ppf "server error %s" (Msg.rcode_to_string rc)
  | Rpc_error e -> Rpc.Control.pp_error ppf e

module Key = struct
  type t = Name.t * Rr.rtype

  let equal (n1, t1) (n2, t2) = Name.equal n1 n2 && t1 = t2
  let hash (n, t) = Name.hash n lxor (Rr.rtype_code t * 65599)
end

module Cache_tbl = Hashtbl.Make (Key)

module Name_tbl = Hashtbl.Make (struct
  type t = Name.t

  let equal = Name.equal
  let hash = Name.hash
end)

type entry = { outcome : (Rr.t list, error) result; expires_at : float }

(** A cached zone cut: where to go directly for names under it. *)
type referral = { addrs : Transport.Address.t list; ref_expires_at : float }

let m_referral_hits = Obs.Metrics.counter "dns.resolver.referral_hits"

type t = {
  stack : Transport.Netstack.stack;
  servers : Transport.Address.t list;
  enable_cache : bool;
  max_ttl_ms : float;
  negative_ttl_ms : float;
  cache : entry Cache_tbl.t;
  referrals : referral Name_tbl.t;
  mutable next_id : int;
  mutable hits : int;
  mutable misses : int;
  mutable neg_hits : int;
  mutable ref_hits : int;
}

let create stack ~servers ?(enable_cache = true) ?(max_ttl_ms = 3_600_000.0)
    ?(negative_ttl_ms = 0.0) () =
  if servers = [] then invalid_arg "Resolver.create: no servers";
  {
    stack;
    servers;
    enable_cache;
    max_ttl_ms;
    negative_ttl_ms;
    cache = Cache_tbl.create 64;
    referrals = Name_tbl.create 16;
    next_id = 1;
    hits = 0;
    misses = 0;
    neg_hits = 0;
    ref_hits = 0;
  }

let min_ttl_ms records =
  List.fold_left
    (fun acc (r : Rr.t) -> Float.min acc (Int32.to_float r.ttl *. 1000.0))
    infinity records

let store t name rtype records =
  if t.enable_cache && records <> [] then begin
    let ttl = Float.min (min_ttl_ms records) t.max_ttl_ms in
    let expires_at = Sim.Engine.time () +. ttl in
    Cache_tbl.replace t.cache (name, rtype) { outcome = Ok records; expires_at }
  end

let store_negative t name rtype err =
  if t.enable_cache && t.negative_ttl_ms > 0.0 then
    Cache_tbl.replace t.cache (name, rtype)
      { outcome = Error err; expires_at = Sim.Engine.time () +. t.negative_ttl_ms }

let cache_lookup t name rtype =
  if not t.enable_cache then None
  else
    match Cache_tbl.find_opt t.cache (name, rtype) with
    | Some entry when entry.expires_at > Sim.Engine.time () -> Some entry.outcome
    | Some _ ->
        Cache_tbl.remove t.cache (name, rtype);
        None
    | None -> None

let store_referral t cut addrs ttl_ms =
  if t.enable_cache && addrs <> [] then begin
    let ttl = Float.min ttl_ms t.max_ttl_ms in
    Name_tbl.replace t.referrals cut
      { addrs; ref_expires_at = Sim.Engine.time () +. ttl }
  end

(* Deepest unexpired cached cut covering [name], if any. Expired
   entries are collected during the scan and dropped afterwards (a
   hashtable must not be mutated mid-fold). *)
let referral_lookup t name =
  if not t.enable_cache then None
  else begin
    let now = Sim.Engine.time () in
    let expired = ref [] in
    let best =
      Name_tbl.fold
        (fun cut r best ->
          if r.ref_expires_at <= now then begin
            expired := cut :: !expired;
            best
          end
          else if not (Name.is_subdomain ~of_:cut name) then best
          else
            match best with
            | Some (best_cut, _)
              when Name.label_count best_cut >= Name.label_count cut ->
                best
            | _ -> Some (cut, r.addrs))
        t.referrals None
    in
    List.iter (Name_tbl.remove t.referrals) !expired;
    best
  end

(* Retry a truncated answer over TCP, as resolvers do when a UDP reply
   carries TC. *)
let ask_tcp t server request =
  match Transport.Tcp.connect t.stack server with
  | exception Transport.Tcp.Connection_refused _ -> Error (Rpc_error Rpc.Control.Refused)
  | conn -> (
      Transport.Tcp.send conn request;
      let r =
        match Transport.Tcp.recv_timeout conn 5_000.0 with
        | exception Transport.Tcp.Connection_closed ->
            Error (Rpc_error Rpc.Control.Refused)
        | None -> Error (Rpc_error (Rpc.Control.Timeout { elapsed_ms = 5_000.0 }))
        | Some payload -> (
            match Msg.decode payload with
            | exception Msg.Bad_message m ->
                Error (Rpc_error (Rpc.Control.Protocol_error m))
            | reply -> Ok reply)
      in
      Transport.Tcp.close conn;
      r)

(* One UDP exchange with a server, following the TC bit to TCP. *)
let ask_one t server request =
  match Rpc.Rawrpc.call t.stack ~dst:server request with
  | Error e -> Error (Rpc_error e)
  | Ok payload -> (
      match Msg.decode payload with
      | exception Msg.Bad_message m -> Error (Rpc_error (Rpc.Control.Protocol_error m))
      | reply ->
          if reply.Msg.truncated then ask_tcp t server request else Ok reply)

let fresh_request t name rtype =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  Msg.encode (Msg.query ~id name rtype)

let ask_servers t name rtype =
  let request = fresh_request t name rtype in
  let interpret server reply rest ~try_servers =
    match (reply : Msg.t).rcode with
    | Msg.No_error ->
        if reply.truncated then
          (* TC: the full answer only fits over TCP. *)
          match ask_tcp t server request with
          | Error e -> try_servers e rest
          | Ok full ->
              if full.Msg.answers = [] then Error No_data else Ok full.Msg.answers
        else if reply.answers = [] then Error No_data
        else Ok reply.answers
    | Msg.Nx_domain -> Error Nxdomain
    | rc -> try_servers (Server_error rc) rest
  in
  let rec try_servers last_err = function
    | [] -> Error last_err
    | server :: rest -> (
        match Rpc.Rawrpc.call t.stack ~dst:server request with
        | Error e -> try_servers (Rpc_error e) rest
        | Ok payload -> (
            match Msg.decode payload with
            | exception Msg.Bad_message m ->
                try_servers (Rpc_error (Rpc.Control.Protocol_error m)) rest
            | reply -> interpret server reply rest ~try_servers))
  in
  try_servers (Rpc_error (Rpc.Control.Timeout { elapsed_ms = 0.0 })) t.servers

let query_uncached t name rtype =
  t.misses <- t.misses + 1;
  match ask_servers t name rtype with
  | Ok records ->
      store t name rtype records;
      Ok records
  | Error ((Nxdomain | No_data) as err) ->
      store_negative t name rtype err;
      Error err
  | Error _ as e -> e

(* Iterative resolution: walk referrals from the configured roots. *)
let rec iterate t ~depth servers name rtype =
  if depth > 12 then Error (Server_error Msg.Refused)
  else begin
    let request = fresh_request t name rtype in
    let rec try_servers last_err = function
      | [] -> Error last_err
      | server :: rest -> (
          match ask_one t server request with
          | Error e -> try_servers e rest
          | Ok reply -> (
              match reply.Msg.rcode with
              | Msg.Nx_domain -> Error Nxdomain
              | Msg.No_error when reply.Msg.answers <> [] -> Ok reply.Msg.answers
              | Msg.No_error
                when List.exists
                       (fun (rr : Rr.t) ->
                         match rr.rdata with Rr.Ns _ -> true | _ -> false)
                       reply.Msg.authority ->
                  (* NS records in authority: a referral. An SOA there
                     is RFC 2308 negative-TTL info, not a referral. *)
                  follow_referral t ~depth reply name rtype
              | Msg.No_error -> Error No_data
              | rc -> try_servers (Server_error rc) rest))
    in
    try_servers (Rpc_error (Rpc.Control.Timeout { elapsed_ms = 0.0 })) servers
  end

and follow_referral t ~depth (reply : Msg.t) name rtype =
  (* Collect child-server addresses: glue first, then resolve NS names
     from the roots when the referral came without glue. *)
  let glue_addr (ns_rr : Rr.t) =
    match ns_rr.rdata with
    | Rr.Ns target ->
        List.filter_map
          (fun (rr : Rr.t) ->
            match rr.rdata with
            | Rr.A ip when Name.equal rr.name target ->
                Some (Transport.Address.make ip Transport.Address.Well_known.dns)
            | _ -> None)
          reply.additional
    | _ -> []
  in
  let direct = List.concat_map glue_addr reply.authority in
  let addrs =
    if direct <> [] then direct
    else
      List.concat_map
        (fun (ns_rr : Rr.t) ->
          match ns_rr.rdata with
          | Rr.Ns target -> (
              match iterate t ~depth:(depth + 1) t.servers target Rr.T_a with
              | Ok rrs ->
                  List.filter_map
                    (fun (rr : Rr.t) ->
                      match rr.rdata with
                      | Rr.A ip ->
                          Some (Transport.Address.make ip Transport.Address.Well_known.dns)
                      | _ -> None)
                    rrs
              | Error _ -> [])
          | _ -> [])
        reply.authority
  in
  if addrs = [] then Error (Server_error Msg.Serv_fail)
  else begin
    (* Remember the zone cut for the NS TTL, so the next cold resolve
       under it skips straight to the child servers. *)
    (match
       List.filter
         (fun (rr : Rr.t) ->
           match rr.rdata with Rr.Ns _ -> true | _ -> false)
         reply.authority
     with
    | [] -> ()
    | (cut_rr :: _) as ns_rrs ->
        store_referral t cut_rr.Rr.name addrs (min_ttl_ms ns_rrs));
    iterate t ~depth:(depth + 1) addrs name rtype
  end

let query_iterative t name rtype =
  match cache_lookup t name rtype with
  | Some (Ok records) ->
      t.hits <- t.hits + 1;
      Ok records
  | Some (Error err) ->
      t.hits <- t.hits + 1;
      t.neg_hits <- t.neg_hits + 1;
      Error err
  | None -> (
      t.misses <- t.misses + 1;
      let result =
        match referral_lookup t name with
        | Some (cut, addrs) -> (
            t.ref_hits <- t.ref_hits + 1;
            Obs.Metrics.incr m_referral_hits;
            (* Start at the cached cut; if its servers have gone bad,
               forget the entry and re-walk from the roots. *)
            match iterate t ~depth:1 addrs name rtype with
            | Error (Server_error _ | Rpc_error _) ->
                Name_tbl.remove t.referrals cut;
                iterate t ~depth:0 t.servers name rtype
            | r -> r)
        | None -> iterate t ~depth:0 t.servers name rtype
      in
      match result with
      | Ok records ->
          store t name rtype records;
          Ok records
      | Error ((Nxdomain | No_data) as err) ->
          store_negative t name rtype err;
          Error err
      | Error _ as e -> e)

let query t name rtype =
  match cache_lookup t name rtype with
  | Some (Ok records) ->
      t.hits <- t.hits + 1;
      Ok records
  | Some (Error err) ->
      t.hits <- t.hits + 1;
      t.neg_hits <- t.neg_hits + 1;
      Error err
  | None -> query_uncached t name rtype

let lookup_a t name =
  match query t name Rr.T_a with
  | Error _ as e -> e
  | Ok records -> (
      let rec first = function
        | [] -> Error No_data
        | { Rr.rdata = Rr.A ip; _ } :: _ -> Ok ip
        | _ :: rest -> first rest
      in
      first records)

let seed t name rtype records = store t name rtype records

let flush t =
  Cache_tbl.reset t.cache;
  Name_tbl.reset t.referrals;
  t.hits <- 0;
  t.misses <- 0;
  t.neg_hits <- 0;
  t.ref_hits <- 0

let cache_hits t = t.hits
let cache_misses t = t.misses
let cache_size t = Cache_tbl.length t.cache
let negative_hits t = t.neg_hits
let referral_hits t = t.ref_hits
let referral_cache_size t = Name_tbl.length t.referrals
