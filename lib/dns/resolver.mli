(** Stub resolver with a TTL cache.

    Queries go to the configured servers in order (raw request/response
    over UDP, as BIND clients did) until one answers. Positive answers
    are cached against the virtual clock for the minimum TTL of the
    returned records — the same time-to-live invalidation the paper's
    HNS cache adopts "because the source of our cached data (BIND) also
    uses this mechanism". *)

type error =
  | Nxdomain
  | No_data          (** name exists, no records of that type *)
  | Server_error of Msg.rcode
  | Rpc_error of Rpc.Control.error

val pp_error : Format.formatter -> error -> unit

type t

val create :
  Transport.Netstack.stack ->
  servers:Transport.Address.t list ->
  ?enable_cache:bool ->
  ?max_ttl_ms:float ->
  ?negative_ttl_ms:float ->
  unit ->
  t

(** [query t name rtype] resolves, consulting the cache first. *)
val query : t -> Name.t -> Rr.rtype -> (Rr.t list, error) result

(** Iterative resolution: treat the configured servers as the roots
    and follow zone-cut referrals (using glue addresses when present,
    resolving nameserver names from the roots otherwise) until an
    authoritative answer arrives. Results are cached like any other.
    Fails with [Server_error Refused] on referral loops. *)
val query_iterative : t -> Name.t -> Rr.rtype -> (Rr.t list, error) result

(** Bypass the cache (still stores the fresh result). *)
val query_uncached : t -> Name.t -> Rr.rtype -> (Rr.t list, error) result

(** Convenience: first A record. *)
val lookup_a : t -> Name.t -> (Transport.Address.ip, error) result

(** Insert records directly (used by zone-transfer preloading).
    TTL semantics match a normal answer. *)
val seed : t -> Name.t -> Rr.rtype -> Rr.t list -> unit

val flush : t -> unit
val cache_hits : t -> int
val cache_misses : t -> int
val cache_size : t -> int

(** Hits answered from the negative cache (name known absent). When
    [negative_ttl_ms] is 0 (the default, as in 1987 BIND) there are
    none; set it to enable RFC 2308-style negative caching. *)
val negative_hits : t -> int

(** Iterative resolves that skipped the root walk because the zone
    cut was already cached (each referral followed is remembered for
    the NS records' TTL; also counted process-wide as
    [dns.resolver.referral_hits]). Stale cut entries whose servers
    stop answering are dropped and the walk restarts from the
    roots. *)
val referral_hits : t -> int

val referral_cache_size : t -> int
