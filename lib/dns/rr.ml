type soa = {
  mname : Name.t;
  rname : Name.t;
  serial : int32;
  refresh : int32;
  retry : int32;
  expire : int32;
  minimum : int32;
}

type rdata =
  | A of Transport.Address.ip
  | Ns of Name.t
  | Cname of Name.t
  | Soa of soa
  | Ptr of Name.t
  | Hinfo of string * string
  | Mx of int * Name.t
  | Txt of string list
  | Unspec of string

type rtype =
  | T_a
  | T_ns
  | T_cname
  | T_soa
  | T_ptr
  | T_hinfo
  | T_mx
  | T_txt
  | T_unspec
  | T_ixfr
  | T_axfr
  | T_any

type rclass = C_in | C_none | C_any

type t = { name : Name.t; ttl : int32; rclass : rclass; rdata : rdata }

let rtype_code = function
  | T_a -> 1
  | T_ns -> 2
  | T_cname -> 5
  | T_soa -> 6
  | T_ptr -> 12
  | T_hinfo -> 13
  | T_mx -> 15
  | T_txt -> 16
  | T_unspec -> 103
  | T_ixfr -> 251
  | T_axfr -> 252
  | T_any -> 255

let rtype_of_code = function
  | 1 -> Some T_a
  | 2 -> Some T_ns
  | 5 -> Some T_cname
  | 6 -> Some T_soa
  | 12 -> Some T_ptr
  | 13 -> Some T_hinfo
  | 15 -> Some T_mx
  | 16 -> Some T_txt
  | 103 -> Some T_unspec
  | 251 -> Some T_ixfr
  | 252 -> Some T_axfr
  | 255 -> Some T_any
  | _ -> None

let rtype_name = function
  | T_a -> "A"
  | T_ns -> "NS"
  | T_cname -> "CNAME"
  | T_soa -> "SOA"
  | T_ptr -> "PTR"
  | T_hinfo -> "HINFO"
  | T_mx -> "MX"
  | T_txt -> "TXT"
  | T_unspec -> "UNSPEC"
  | T_ixfr -> "IXFR"
  | T_axfr -> "AXFR"
  | T_any -> "ANY"

let rclass_code = function C_in -> 1 | C_none -> 254 | C_any -> 255

let rclass_of_code = function
  | 1 -> Some C_in
  | 254 -> Some C_none
  | 255 -> Some C_any
  | _ -> None

let rdata_type = function
  | A _ -> T_a
  | Ns _ -> T_ns
  | Cname _ -> T_cname
  | Soa _ -> T_soa
  | Ptr _ -> T_ptr
  | Hinfo _ -> T_hinfo
  | Mx _ -> T_mx
  | Txt _ -> T_txt
  | Unspec _ -> T_unspec

let matches ~qtype rtype =
  match qtype with
  | T_any -> true
  | T_axfr | T_ixfr -> false
  | q -> q = rtype

let make ?(ttl = 3600l) ?(rclass = C_in) name rdata = { name; ttl; rclass; rdata }

let equal_soa a b =
  Name.equal a.mname b.mname && Name.equal a.rname b.rname
  && Int32.equal a.serial b.serial && Int32.equal a.refresh b.refresh
  && Int32.equal a.retry b.retry && Int32.equal a.expire b.expire
  && Int32.equal a.minimum b.minimum

let equal_rdata a b =
  match (a, b) with
  | A x, A y -> Int32.equal x y
  | Ns x, Ns y | Cname x, Cname y | Ptr x, Ptr y -> Name.equal x y
  | Soa x, Soa y -> equal_soa x y
  | Hinfo (c1, o1), Hinfo (c2, o2) -> String.equal c1 c2 && String.equal o1 o2
  | Mx (p1, n1), Mx (p2, n2) -> p1 = p2 && Name.equal n1 n2
  | Txt x, Txt y -> List.equal String.equal x y
  | Unspec x, Unspec y -> String.equal x y
  | (A _ | Ns _ | Cname _ | Soa _ | Ptr _ | Hinfo _ | Mx _ | Txt _ | Unspec _), _ ->
      false

let equal a b =
  Name.equal a.name b.name && Int32.equal a.ttl b.ttl && a.rclass = b.rclass
  && equal_rdata a.rdata b.rdata

let pp_rdata ppf = function
  | A ip -> Format.fprintf ppf "A %s" (Transport.Address.ip_to_string ip)
  | Ns n -> Format.fprintf ppf "NS %a" Name.pp n
  | Cname n -> Format.fprintf ppf "CNAME %a" Name.pp n
  | Soa s ->
      Format.fprintf ppf "SOA %a %a %ld" Name.pp s.mname Name.pp s.rname s.serial
  | Ptr n -> Format.fprintf ppf "PTR %a" Name.pp n
  | Hinfo (cpu, os) -> Format.fprintf ppf "HINFO %S %S" cpu os
  | Mx (pref, n) -> Format.fprintf ppf "MX %d %a" pref Name.pp n
  | Txt ss -> Format.fprintf ppf "TXT %s" (String.concat " " (List.map (Printf.sprintf "%S") ss))
  | Unspec s -> Format.fprintf ppf "UNSPEC <%d bytes>" (String.length s)

let pp ppf t =
  Format.fprintf ppf "%a %ld %s %a" Name.pp t.name t.ttl
    (match t.rclass with C_in -> "IN" | C_none -> "NONE" | C_any -> "ANY")
    pp_rdata t.rdata
