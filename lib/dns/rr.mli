(** Resource records.

    Includes the classic 1987 types plus [UNSPEC] — BIND's
    type-103 "data of unspecified format", which is exactly the
    extension [Schwartz 1987] made to let the modified BIND store HNS
    meta-naming information of arbitrary type. *)

type soa = {
  mname : Name.t;      (** primary server *)
  rname : Name.t;      (** responsible mailbox *)
  serial : int32;
  refresh : int32;
  retry : int32;
  expire : int32;
  minimum : int32;     (** default TTL *)
}

type rdata =
  | A of Transport.Address.ip
  | Ns of Name.t
  | Cname of Name.t
  | Soa of soa
  | Ptr of Name.t
  | Hinfo of string * string  (** cpu, os *)
  | Mx of int * Name.t        (** preference, exchange *)
  | Txt of string list
  | Unspec of string          (** uninterpreted bytes (modified BIND) *)

(** Query/record types, by RFC 1035 number (UNSPEC is BIND's 103). *)
type rtype =
  | T_a
  | T_ns
  | T_cname
  | T_soa
  | T_ptr
  | T_hinfo
  | T_mx
  | T_txt
  | T_unspec
  | T_ixfr  (** query-only (RFC 1995 incremental transfer) *)
  | T_axfr  (** query-only *)
  | T_any   (** query-only *)

(** Record classes; [C_none]/[C_any] appear only inside dynamic-update
    messages (RFC 2136 encoding: delete-specific / delete-rrset). *)
type rclass = C_in | C_none | C_any

type t = { name : Name.t; ttl : int32; rclass : rclass; rdata : rdata }

val rtype_code : rtype -> int
val rtype_of_code : int -> rtype option
val rtype_name : rtype -> string
val rclass_code : rclass -> int
val rclass_of_code : int -> rclass option

(** The type a given rdata is an instance of. *)
val rdata_type : rdata -> rtype

(** Does a record of this concrete type answer a query of [qtype]?
    ([T_any] matches everything; [T_axfr] matches nothing here —
    transfers are handled separately.) *)
val matches : qtype:rtype -> rtype -> bool

val make : ?ttl:int32 -> ?rclass:rclass -> Name.t -> rdata -> t
val equal_rdata : rdata -> rdata -> bool
val equal : t -> t -> bool
val pp_rdata : Format.formatter -> rdata -> unit
val pp : Format.formatter -> t -> unit
