type mode = Axfr | Ixfr

type t = {
  server : Server.t;
  primary : Transport.Address.t;
  zone_name : Name.t;
  mode : mode;
  refresh_ms : float;
  chain_depth : int;
  zone : Zone.t; (* our replica, registered with [server] *)
  mutable running : bool;
  mutable transfer_count : int; (* refreshes that moved the replica, full or delta *)
  mutable full_count : int;
  mutable ixfr_count : int;
  mutable delta_records : int;
  mutable notify_kicks : int;
  mutable fresh_count : int;
  mutable next_id : int;
}

let m_ixfr_applied = Obs.Metrics.counter "dns.secondary.ixfr_applied"
let m_full_transfers = Obs.Metrics.counter "dns.secondary.full_transfers"
let m_delta_records = Obs.Metrics.counter "dns.secondary.delta_records"
let m_notify_kicks = Obs.Metrics.counter "dns.secondary.notify_kicks"

(* Deepest replica chain attached in this process: 1 = directly under
   the primary, 2 = fed by such a replica, and so on. *)
let g_chain_depth = Obs.Metrics.gauge "dns.secondary.chain_depth"

let split_transfer zone_name records =
  match records with
  | { Rr.rdata = Rr.Soa soa; name; _ } :: data when Name.equal name zone_name ->
      Ok (soa, data)
  | _ -> Error "transfer did not begin with the zone's SOA"

let fetch t =
  match Axfr.fetch (Server.stack t.server) ~server:t.primary ~zone:t.zone_name with
  | Error e -> Error (Format.asprintf "%a" Axfr.pp_error e)
  | Ok records -> split_transfer t.zone_name records

(* Replace the replica's contents with a fresh transfer. *)
let adopt t (soa, data) =
  let db = Zone.db t.zone in
  Db.clear db;
  List.iter (Db.add db) data;
  Zone.set_soa t.zone soa;
  t.transfer_count <- t.transfer_count + 1;
  t.full_count <- t.full_count + 1;
  Obs.Metrics.incr m_full_transfers

(* Advance the replica by journal deltas instead of re-transferring. *)
let apply_deltas t (soa : Rr.soa) changes =
  Zone.apply_delta t.zone
    {
      Journal.from_serial = Zone.serial t.zone;
      to_serial = soa.Rr.serial;
      changes;
    };
  (* The incremental payload carries only the serial transition; adopt
     the rest of the pushed SOA (refresh/expire may have changed). *)
  Zone.set_soa t.zone soa;
  t.transfer_count <- t.transfer_count + 1;
  t.ixfr_count <- t.ixfr_count + 1;
  t.delta_records <- t.delta_records + List.length changes;
  Obs.Metrics.incr m_ixfr_applied;
  Obs.Metrics.add m_delta_records (List.length changes)

(* Probe the primary's serial with a plain SOA query. *)
let primary_serial t =
  t.next_id <- (t.next_id + 1) land 0xFFFF;
  let request = Msg.encode (Msg.query ~id:t.next_id t.zone_name Rr.T_soa) in
  match Rpc.Rawrpc.call (Server.stack t.server) ~dst:t.primary request with
  | Error _ -> None
  | Ok payload -> (
      match Msg.decode payload with
      | exception Msg.Bad_message _ -> None
      | reply ->
          List.find_map
            (fun (rr : Rr.t) ->
              match rr.rdata with Rr.Soa soa -> Some soa.Rr.serial | _ -> None)
            reply.answers)

let pull t =
  let before = Zone.serial t.zone in
  (match t.mode with
  | Axfr -> (
      match fetch t with
      | Ok transfer -> adopt t transfer
      | Error _ -> () (* transient failure; retry next cycle *))
  | Ixfr -> (
      match
        Ixfr.fetch (Server.stack t.server) ~server:t.primary ~zone:t.zone_name
          ~serial:(Zone.serial t.zone)
      with
      | Ok (Ixfr.Unchanged _) -> t.fresh_count <- t.fresh_count + 1
      | Ok (Ixfr.Deltas (soa, changes)) -> apply_deltas t soa changes
      | Ok (Ixfr.Full records) -> (
          match split_transfer t.zone_name records with
          | Ok transfer -> adopt t transfer
          | Error _ -> ())
      | Error _ -> () (* transient failure; retry next cycle *)));
  (* Chained replication: a pull that moved our replica wakes the next
     tree level, bounded by the server's notify fan-out — each level
     pulls from us, not the primary, so one update never floods the
     root with simultaneous transfers. *)
  if Int32.unsigned_compare (Zone.serial t.zone) before > 0 then
    Server.notify_downstream t.server ~zone:t.zone

let refresh_once t =
  match primary_serial t with
  | None -> () (* primary unreachable: keep serving the last copy *)
  | Some serial ->
      if Int32.compare serial (Zone.serial t.zone) > 0 then pull t
      else t.fresh_count <- t.fresh_count + 1

let attach server ~primary ~zone ?refresh_ms ?(mode = Ixfr) ?(chain_depth = 1)
    ?recovered () =
  (match recovered with
  | Some z when not (Name.equal (Zone.origin z) zone) ->
      invalid_arg "Secondary.attach: recovered zone origin mismatch"
  | _ -> ());
  if chain_depth < 1 then invalid_arg "Secondary.attach: chain_depth < 1";
  if float_of_int chain_depth > Obs.Metrics.get g_chain_depth then
    Obs.Metrics.set g_chain_depth (float_of_int chain_depth);
  let t =
    {
      server;
      primary;
      zone_name = zone;
      mode;
      refresh_ms = 0.0;
      chain_depth;
      zone =
        (match recovered with
        | Some z -> z
        | None -> Zone.simple ~origin:zone []);
      running = true;
      transfer_count = 0;
      full_count = 0;
      ixfr_count = 0;
      delta_records = 0;
      notify_kicks = 0;
      fresh_count = 0;
      next_id = 0x5A00;
    }
  in
  (match recovered with
  | Some _ ->
      (* Durable bootstrap: the replica already holds its last durable
         image, so catch up by deltas from that serial instead of
         re-transferring the zone. A transient failure is fine — the
         refresh loop below retries. *)
      pull t
  | None -> (
      match fetch t with
      | Error m -> failwith ("Secondary.attach: initial transfer failed: " ^ m)
      | Ok transfer -> adopt t transfer));
  let refresh_ms =
    match refresh_ms with
    | Some ms -> ms
    | None -> Int32.to_float (Zone.soa t.zone).Rr.refresh *. 1000.0
  in
  let t = { t with refresh_ms } in
  Server.add_zone server t.zone;
  (* Push-triggered refresh: a NOTIFY for our zone pulls immediately
     instead of waiting out the poll interval. The poll loop below
     stays as the backstop, so a lost NOTIFY only costs latency. *)
  Server.add_notify_handler server (fun ~zone:zname ~serial ->
      if t.running && Name.equal zname t.zone_name then begin
        let stale =
          match serial with
          | Some s -> Int32.compare s (Zone.serial t.zone) > 0
          | None -> true
        in
        if stale then begin
          t.notify_kicks <- t.notify_kicks + 1;
          Obs.Metrics.incr m_notify_kicks;
          try
            Sim.Engine.spawn_child
              ~name:(Printf.sprintf "secondary-notify:%s" (Name.to_string zone))
              (fun () -> if t.running then pull t)
          with Effect.Unhandled _ -> ()
        end
      end);
  Sim.Engine.spawn_child
    ~name:(Printf.sprintf "secondary:%s" (Name.to_string zone))
    (fun () ->
      while t.running do
        Sim.Engine.sleep t.refresh_ms;
        if t.running then refresh_once t
      done);
  t

let serial t = Zone.serial t.zone
let chain_depth t = t.chain_depth
let transfers t = t.transfer_count
let full_transfers t = t.full_count
let ixfr_applied t = t.ixfr_count
let delta_records t = t.delta_records
let notify_kicks t = t.notify_kicks
let fresh_checks t = t.fresh_count
let detach t = t.running <- false
