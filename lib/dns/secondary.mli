(** Secondary (replica) zone service.

    "While the HNS is logically a single, centralized facility, its
    implementation must be distributed and replicated for the usual
    reasons of performance, availability, and scalability." BIND's
    replication is the secondary server: it polls the primary's SOA
    serial on the zone's refresh interval and pulls a full zone
    transfer when the serial has advanced.

    [attach] adds a secondary copy of a zone to an existing (usually
    otherwise-empty) {!Server} and returns a handle; the refresh
    process runs as a simulated process until {!detach}.

    With the change-propagation subsystem the poll is a backstop: the
    secondary reacts to NOTIFY pushes from the primary (when the
    deployment registered it with {!Server.register_notify}) and, in
    the default [Ixfr] mode, catches up by replaying journal deltas
    instead of re-transferring the zone — falling back to a full
    transfer transparently when the primary's journal has been
    truncated past our serial. *)

type t

(** How the secondary refreshes once the serial has advanced. *)
type mode = Axfr  (** full re-transfer, 1987 stock behaviour *) | Ixfr

(** [attach server ~primary ~zone ()] — fetches the initial copy
    synchronously (must run inside a simulated process), then polls
    and listens for NOTIFY. [refresh_ms] overrides the zone's own SOA
    refresh interval; [mode] defaults to [Ixfr]. Raises [Failure] if
    the initial transfer fails.

    [recovered] — a zone rebuilt by {!Durable.recover}: the secondary
    adopts it and skips the initial full transfer, catching up from
    its durable serial by IXFR (in [Ixfr] mode) instead. Raises
    [Invalid_argument] when its origin differs from [zone].

    [chain_depth] (default 1) records where this replica sits in a
    chained tree: 1 pulls from the true primary, depth [d] pulls from
    a depth [d-1] replica. The deepest depth attached process-wide is
    exported as the [dns.secondary.chain_depth] gauge. After any pull
    that moves the replica, the secondary calls
    {!Server.notify_downstream} so replicas registered on {e its}
    server wake next — one tree level at a time, each level bounded
    by the server's notify fan-out. Raises [Invalid_argument] when
    [chain_depth < 1]. *)
val attach :
  Server.t ->
  primary:Transport.Address.t ->
  zone:Name.t ->
  ?refresh_ms:float ->
  ?mode:mode ->
  ?chain_depth:int ->
  ?recovered:Zone.t ->
  unit ->
  t

(** The local replica's serial. *)
val serial : t -> int32

(** This replica's position in the chained tree (1 = under the
    primary). *)
val chain_depth : t -> int

(** Refreshes that moved the replica, full or incremental (1 after
    attach). *)
val transfers : t -> int

(** Full zone transfers (AXFR payloads adopted). *)
val full_transfers : t -> int

(** Incremental refreshes applied from journal deltas. *)
val ixfr_applied : t -> int

(** Total record changes received over all incremental refreshes. *)
val delta_records : t -> int

(** NOTIFY pushes that triggered an immediate pull. *)
val notify_kicks : t -> int

(** Serial probes that found the replica current. *)
val fresh_checks : t -> int

(** Stop refreshing (the replica keeps serving its last copy). *)
val detach : t -> unit
