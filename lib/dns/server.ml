open Transport

let m_notify_deregistered = Obs.Metrics.counter "dns.notify.deregistered"

type t = {
  stack : Netstack.stack;
  port : int;
  service_overhead_ms : float;
  per_answer_ms : float;
  allow_update : bool;
  update_acl : Address.ip list option;
  notify_strike_limit : int;
  notify_fanout : int;
  mutable zone_list : Zone.t list;
  mutable stop_udp : (unit -> unit) option;
  mutable tcp_listener : Tcp.listener option;
  mutable running : bool;
  mutable queries : int;
  mutable updates : int;
  mutable synthesizer : (Msg.question -> Rr.t list option) option;
  mutable notify_targets : Address.t list;
  mutable on_notify : (zone:Name.t -> serial:int32 option -> unit) list;
  notify_strikes : (Address.t, int) Hashtbl.t;
  hot : Hotrank.t;
}

let create stack ?(port = Address.Well_known.dns) ?(service_overhead_ms = 0.0)
    ?(per_answer_ms = 0.0) ?(allow_update = false) ?update_acl
    ?(notify_strike_limit = 3) ?(notify_fanout = 8) ?(hot_window_ms = 600_000.0)
    ?hot_ranking () =
  let hot_strategy =
    match hot_ranking with
    | Some s -> s
    | None -> Hotrank.Decayed { half_life_ms = hot_window_ms /. 2.0 }
  in
  {
    stack;
    port;
    service_overhead_ms;
    per_answer_ms;
    allow_update;
    update_acl;
    notify_strike_limit;
    notify_fanout;
    zone_list = [];
    stop_udp = None;
    tcp_listener = None;
    running = false;
    queries = 0;
    updates = 0;
    synthesizer = None;
    notify_targets = [];
    on_notify = [];
    notify_strikes = Hashtbl.create 8;
    hot = Hotrank.create ~strategy:hot_strategy ();
  }

let addr t = Address.make (Netstack.ip t.stack) t.port
let stack t = t.stack

let add_zone t zone =
  if List.exists (fun z -> Name.equal (Zone.origin z) (Zone.origin zone)) t.zone_list
  then invalid_arg "Dns server: duplicate zone";
  t.zone_list <- zone :: t.zone_list

let zones t = t.zone_list

(* Longest-match zone for a name. *)
let find_zone t name =
  List.fold_left
    (fun best zone ->
      if Zone.in_zone zone name then
        match best with
        | Some b when Name.label_count (Zone.origin b) >= Name.label_count (Zone.origin zone)
          ->
            best
        | _ -> Some zone
      else best)
    None t.zone_list

(* The outcome of answering one question. *)
type answer_outcome =
  | Answers of Rr.t list
  | Referral of Rr.t list * Rr.t list (* NS rrset at the cut, glue A records *)
  | Negative of Msg.rcode

(* Is [qname] at or below a zone cut (an interior name holding NS
   records)? Walk from the query name up to, but excluding, the
   origin. A query for the NS rrset at the cut itself is a referral
   too, as in BIND: the child is authoritative for it. *)
let find_delegation zone db qname =
  let origin = Zone.origin zone in
  let rec walk name =
    if Name.equal name origin then None
    else
      match Db.lookup db name Rr.T_ns with
      | [] -> ( match Name.parent name with Some p -> walk p | None -> None)
      | ns_rrs ->
          let glue =
            List.concat_map
              (fun (rr : Rr.t) ->
                match rr.rdata with
                | Rr.Ns target -> Db.lookup db target Rr.T_a
                | _ -> [])
              ns_rrs
          in
          Some (ns_rrs, glue)
  in
  walk qname

let set_synthesizer t f = t.synthesizer <- Some f
let clear_synthesizer t = t.synthesizer <- None

(* NOTIFY subscriptions: the primary is configured with its
   secondaries / subscribers (BIND's also-notify), and pushes the new
   SOA to each on every serial advance. *)
let register_notify t addr =
  Hashtbl.remove t.notify_strikes addr;
  if not (List.mem addr t.notify_targets) then
    t.notify_targets <- addr :: t.notify_targets

let unregister_notify t addr =
  Hashtbl.remove t.notify_strikes addr;
  t.notify_targets <- List.filter (fun a -> a <> addr) t.notify_targets

let notify_targets t = t.notify_targets
let add_notify_handler t f = t.on_notify <- t.on_notify @ [ f ]

(* Subscriber liveness GC: a target that fails to ack
   [notify_strike_limit] consecutive pushes is presumed gone and
   deregistered (it can re-register any time). Any successful ack
   clears the slate. *)
let note_notify_result t target ok =
  if ok then Hashtbl.remove t.notify_strikes target
  else begin
    let strikes =
      1 + Option.value ~default:0 (Hashtbl.find_opt t.notify_strikes target)
    in
    if strikes >= t.notify_strike_limit then begin
      unregister_notify t target;
      Obs.Metrics.incr m_notify_deregistered
    end
    else Hashtbl.replace t.notify_strikes target strikes
  end

(* Fan-out to this server's subscribers, bounded by [notify_fanout] so
   a serial advance wakes at most that many simultaneous IXFR pulls at
   this tree level; ack outcomes feed the subscriber liveness GC. Used
   by the dynamic-update path and by chained secondaries forwarding a
   pull downstream. *)
let notify_downstream t ~zone =
  Notify.push t.stack ~zone ~max_inflight:t.notify_fanout
    ~on_result:(note_notify_result t)
    t.notify_targets

(* {2 Hot-name tracking}

   Recent positive A-record answers per name, feeding the bundle
   synthesizer's resolve-tail prefetch ({!Hns.Meta_bundle}): the
   names this server has been answering addresses for lately are the
   ones worth piggybacking. Scoring is delegated to {!Hotrank}
   (exponentially-decayed by default; the naive sliding count stays
   selectable for comparison). Entries are kept per answering zone —
   the server-side stand-in for the requesting context, since every
   context funnels its A queries through its own zone — and carry the
   answered rrset's TTL so stale hints age out of the ranking. *)

let hot_group t qname =
  match find_zone t qname with
  | Some zone -> Name.to_string (Zone.origin zone)
  | None -> ""

let note_hot t (q : Msg.question) answers =
  if q.qtype = Rr.T_a && answers <> [] then begin
    let now = try Sim.Engine.time () with Effect.Unhandled _ -> 0.0 in
    let ttl_ms =
      List.fold_left
        (fun acc (rr : Rr.t) -> Float.min acc (Int32.to_float rr.ttl *. 1000.0))
        Float.infinity answers
    in
    let ttl_ms = if Float.is_finite ttl_ms then Some ttl_ms else None in
    Hotrank.note t.hot ~group:(hot_group t q.qname) ~now_ms:now ?ttl_ms q.qname
  end

let now_or_zero () = try Sim.Engine.time () with Effect.Unhandled _ -> 0.0

(* Hint keep-alive: once a name ships as a prefetch hint, agents
   answer it from cache and this server stops seeing its demand —
   while every un-hinted name keeps scoring a cache-refill sighting
   per agent per refresh cycle. Re-noting a hint as it is served
   cancels that handicap, so the residual ordering reflects real
   client demand rather than which names happen to be cached. *)
let note_hot_name t ?ttl_ms name =
  Hotrank.note t.hot ~group:(hot_group t name) ~now_ms:(now_or_zero ()) ?ttl_ms
    name

let hot_ranked t ?group ~k () =
  let now_ms = now_or_zero () in
  match group with
  | Some group -> Hotrank.top t.hot ~group ~now_ms ~k
  | None -> Hotrank.top_merged t.hot ~now_ms ~k

let hot_names t ~k =
  List.map
    (fun (name, score) -> (name, max 1 (int_of_float (Float.round score))))
    (hot_ranked t ~k ())

let hot_ranking t = Hotrank.strategy t.hot

(* Answer one question, following CNAME chains inside our own data and
   emitting referrals at zone cuts. *)
let answer_question_db t (q : Msg.question) =
  match find_zone t q.qname with
  | None -> Negative Msg.Refused
  | Some zone -> (
      let db = Zone.db zone in
      match find_delegation zone db q.qname with
      | Some (ns_rrs, glue) -> Referral (ns_rrs, glue)
      | None ->
          let rec chase name depth acc =
            if depth > 8 then List.rev acc
            else
              match Db.lookup db name q.qtype with
              | [] -> (
                  (* No direct answer: follow a CNAME if present and the
                     query was not itself for CNAME. *)
                  match Db.lookup db name Rr.T_cname with
                  | [ ({ rdata = Rr.Cname target; _ } as cname_rr) ]
                    when q.qtype <> Rr.T_cname ->
                      chase target (depth + 1) (cname_rr :: acc)
                  | _ -> List.rev acc)
              | rrs -> List.rev_append acc rrs
          in
          let answers =
            if q.qtype = Rr.T_soa && Name.equal q.qname (Zone.origin zone) then
              [ Rr.make ~ttl:(Zone.soa zone).Rr.minimum q.qname (Rr.Soa (Zone.soa zone)) ]
            else chase q.qname 0 []
          in
          if answers <> [] then Answers answers
          else if Db.has_name db q.qname || Name.equal q.qname (Zone.origin zone) then
            Answers [] (* name exists, no data of this type *)
          else Negative Msg.Nx_domain)

(* Synthesized answers (registered views over the zone data, e.g. the
   HNS meta bundle) take precedence; a [None] from the synthesizer
   falls through to the ordinary database walk. *)
let answer_question t q =
  match (match t.synthesizer with Some f -> f q | None -> None) with
  | Some rrs -> Answers rrs
  | None -> answer_question_db t q

(* Is [name] strictly below a zone cut? Such names are occluded: their
   data lives with the delegated child, so accepting an update for
   them here would insert records no query can reach (queries referral
   out at the cut). Names {e at} the cut stay updatable — that is how
   the delegation's own NS records are maintained. *)
let occluded zone db name =
  let origin = Zone.origin zone in
  let rec walk n =
    if Name.equal n origin then false
    else
      Db.lookup db n Rr.T_ns <> []
      || match Name.parent n with Some p -> walk p | None -> false
  in
  (not (Name.equal name origin))
  && (match Name.parent name with Some p -> walk p | None -> false)

let update_permitted t src =
  match t.update_acl with
  | None -> true
  | Some acl -> List.exists (fun ip -> Int32.equal ip src.Address.ip) acl

let apply_update t (request : Msg.t) =
  match request.questions with
  | [ { qname = zone_name; _ } ] -> (
      match find_zone t zone_name with
      | Some zone when Name.equal (Zone.origin zone) zone_name ->
          if not t.allow_update then Msg.Refused
          else begin
            let db = Zone.db zone in
            let in_zone op_name = Zone.in_zone zone op_name in
            let op_ok n = in_zone n && not (occluded zone db n) in
            let ok =
              List.for_all
                (fun op ->
                  match (op : Msg.update_op) with
                  | Msg.Add rr -> op_ok rr.Rr.name
                  | Msg.Delete_rrset (n, _) | Msg.Delete_rr (n, _) | Msg.Delete_name n
                    ->
                      op_ok n)
                request.updates
            in
            if not ok then Msg.Not_zone
            else begin
              (* Apply each op while recording the concrete records it
                 put or deleted: deletions are resolved against the
                 database state at that point in the sequence, so the
                 journal entry replays to exactly this transition. *)
              let rev_changes = ref [] in
              let note c = rev_changes := c :: !rev_changes in
              List.iter
                (fun op ->
                  match (op : Msg.update_op) with
                  | Msg.Add rr ->
                      Db.add db rr;
                      note (Journal.Put rr)
                  | Msg.Delete_rrset (n, ty) ->
                      List.iter (fun rr -> note (Journal.Del rr)) (Db.lookup db n ty);
                      Db.remove_rrset db n ty
                  | Msg.Delete_rr (n, rdata) ->
                      List.iter
                        (fun (rr : Rr.t) ->
                          if Rr.equal_rdata rr.rdata rdata then note (Journal.Del rr))
                        (Db.lookup db n (Rr.rdata_type rdata));
                      Db.remove_rr db n rdata
                  | Msg.Delete_name n ->
                      List.iter (fun rr -> note (Journal.Del rr)) (Db.lookup db n Rr.T_any);
                      Db.remove_name db n)
                request.updates;
              let from_serial = Zone.serial zone in
              Zone.bump_serial zone;
              Zone.record_delta zone ~from_serial
                ~to_serial:(Zone.serial zone)
                (List.rev !rev_changes);
              t.updates <- t.updates + 1;
              (* Push-triggered propagation: tell every registered
                 secondary / subscriber the serial moved; ack outcomes
                 feed the liveness GC. *)
              notify_downstream t ~zone;
              Msg.No_error
            end
          end
      | Some _ | None -> Msg.Not_zone)
  | _ -> Msg.Form_err

(* RFC 2308: negative (and no-data) responses carry the zone's SOA in
   the authority section so resolvers can derive the negative-cache
   TTL from the SOA minimum instead of a local constant. *)
let negative_authority t qname =
  match find_zone t qname with Some zone -> [ Zone.soa_rr zone ] | None -> []

let handle ?src t (request : Msg.t) : Msg.t =
  match request.opcode with
  | Msg.Update ->
      let rcode =
        match src with
        | Some s when not (update_permitted t s) -> Msg.Refused
        | Some _ | None -> apply_update t request
      in
      let ack = Msg.update_ack ~rcode ~request () in
      (* A successful ack carries the zone's new SOA so the updater
         learns the serial its write landed at (the read-your-writes
         floor a routing client pins replica reads to). *)
      if rcode = Msg.No_error then
        match request.questions with
        | [ { qname; _ } ] -> (
            match find_zone t qname with
            | Some zone -> { ack with Msg.answers = [ Zone.soa_rr zone ] }
            | None -> ack)
        | _ -> ack
      else ack
  | Msg.Notify ->
      (match request.questions with
      | [ { qname; _ } ] ->
          let serial =
            List.find_map
              (fun (rr : Rr.t) ->
                match rr.rdata with Rr.Soa s -> Some s.Rr.serial | _ -> None)
              request.answers
          in
          List.iter (fun f -> f ~zone:qname ~serial) t.on_notify
      | _ -> ());
      Msg.notify_ack ~request
  | Msg.Query -> (
      t.queries <- t.queries + 1;
      match request.questions with
      | [ q ] -> (
          match answer_question t q with
          | Answers answers when answers <> [] ->
              note_hot t q answers;
              Msg.response ~request answers
          | Answers _ ->
              {
                (Msg.response ~request []) with
                Msg.authority = negative_authority t q.qname;
              }
          | Referral (ns_rrs, glue) ->
              {
                (Msg.response ~authoritative:false ~request []) with
                Msg.authority = ns_rrs;
                additional = glue;
              }
          | Negative rcode ->
              {
                (Msg.response ~rcode ~request []) with
                Msg.authority = negative_authority t q.qname;
              })
      | _ -> Msg.response ~rcode:Msg.Form_err ~request [])

let marshal_cost t n_answers = t.per_answer_ms *. float_of_int n_answers

let start t =
  if t.running then invalid_arg "Dns server: already running";
  t.running <- true;
  (* UDP query/update service. *)
  let udp_handler ~src payload =
    match Msg.decode payload with
    | exception Msg.Bad_message _ -> None
    | request ->
        let reply = Msg.truncate_for_udp (handle ~src t request) in
        let cost = marshal_cost t (Msg.answer_count reply) in
        if cost > 0.0 then Sim.Engine.sleep cost;
        Some (Msg.encode reply)
  in
  let stop_udp =
    Rpc.Rawrpc.serve t.stack ~port:t.port ~service_overhead_ms:t.service_overhead_ms
      ~name:(Printf.sprintf "bind:%d" t.port)
      udp_handler ()
  in
  t.stop_udp <- Some stop_udp;
  (* TCP zone-transfer service. *)
  let listener = Tcp.listen t.stack ~port:t.port in
  t.tcp_listener <- Some listener;
  Sim.Engine.spawn_child ~name:(Printf.sprintf "bind-axfr:%d" t.port) (fun () ->
      while t.running do
        let conn = Tcp.accept listener in
        Sim.Engine.spawn_child ~name:"bind-axfr:conn" (fun () ->
            (match Tcp.recv conn with
            | exception Tcp.Connection_closed -> ()
            | payload -> (
                if t.service_overhead_ms > 0.0 then
                  Sim.Engine.sleep t.service_overhead_ms;
                match Msg.decode payload with
                | exception Msg.Bad_message _ -> ()
                | request -> (
                    match request.questions with
                    | [ { qname; qtype = Rr.T_axfr } ] -> (
                        match find_zone t qname with
                        | Some zone when Name.equal (Zone.origin zone) qname ->
                            let records = Zone.axfr_records zone in
                            let cost = marshal_cost t (List.length records) in
                            if cost > 0.0 then Sim.Engine.sleep cost;
                            Tcp.send conn
                              (Msg.encode (Msg.response ~request records))
                        | Some _ | None ->
                            Tcp.send conn
                              (Msg.encode (Msg.response ~rcode:Msg.Refused ~request [])))
                    | [ { qname; qtype = Rr.T_ixfr } ] -> (
                        match find_zone t qname with
                        | Some zone when Name.equal (Zone.origin zone) qname ->
                            (* A request without a parseable serial can
                               never match the journal chain and falls
                               back to the full payload below. *)
                            let serial =
                              Option.value ~default:(-1l)
                                (Ixfr.request_serial request)
                            in
                            let records =
                              match Ixfr.answers_for_zone zone ~serial with
                              | `Answers a -> a
                              | `Fallback -> Zone.axfr_records zone
                            in
                            let cost = marshal_cost t (List.length records) in
                            if cost > 0.0 then Sim.Engine.sleep cost;
                            Tcp.send conn
                              (Msg.encode (Msg.response ~request records))
                        | Some _ | None ->
                            Tcp.send conn
                              (Msg.encode (Msg.response ~rcode:Msg.Refused ~request [])))
                    | _ ->
                        (* Ordinary queries over TCP get the UDP treatment. *)
                        Tcp.send conn (Msg.encode (handle t request)))));
            Tcp.close conn)
      done)

let stop t =
  t.running <- false;
  (match t.stop_udp with Some f -> f () | None -> ());
  (match t.tcp_listener with Some l -> Tcp.close_listener l | None -> ());
  t.stop_udp <- None;
  t.tcp_listener <- None

let queries_served t = t.queries
let updates_applied t = t.updates

let delegation_for t qname =
  match find_zone t qname with
  | None -> None
  | Some zone -> find_delegation zone (Zone.db zone) qname
