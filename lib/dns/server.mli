(** The BIND name server.

    An authoritative server over one or more zones, answering queries
    on UDP and zone transfers on TCP, with two cost knobs that model
    the paper's measured behaviour: a per-query CPU charge (BIND kept
    everything in primary memory and did no authentication, hence its
    27 ms lookups versus the Clearinghouse's 156 ms) and a per-answer
    marshalling charge (the hand-coded BIND routines at 0.65–2.6 ms
    per reply, Table 3.2's fast path).

    When [allow_update] is set this is the {e modified} BIND of
    [Schwartz 1987]: it accepts dynamic UPDATE messages and serves
    UNSPEC records, which is how the HNS stores its meta-naming
    information. The stock 1987 BIND refuses updates. An optional
    [update_acl] restricts updates to listed source hosts (refusing
    everyone else), the way the prototype's meta-BIND trusted only
    the administrative machines. *)

type t

(** [notify_strike_limit] (default 3) is the number of {e consecutive}
    unacknowledged NOTIFY pushes after which a subscriber is presumed
    dead and deregistered (counted in [dns.notify.deregistered]); any
    ack clears the count, and re-registering reinstates the target.
    [hot_ranking] selects the hot-name scoring behind {!hot_names} /
    {!hot_ranked}; the default is [Hotrank.Decayed] with a half-life
    of [hot_window_ms /. 2] (300 s with the default window), so a
    flash crowd cannot flush the steady working set out of the
    prefetch hints. Pass [Hotrank.Sliding_count] explicitly to get the
    naive windowed counter back (the A/B baseline the load harness
    measures against). [notify_fanout] (default 8) bounds how many
    NOTIFY pushes are in flight at once when a serial advance fans out
    to this server's subscribers, so one update cannot wake an
    unbounded number of simultaneous IXFR pulls at this tree level. *)
val create :
  Transport.Netstack.stack ->
  ?port:int ->
  ?service_overhead_ms:float ->
  ?per_answer_ms:float ->
  ?allow_update:bool ->
  ?update_acl:Transport.Address.ip list ->
  ?notify_strike_limit:int ->
  ?notify_fanout:int ->
  ?hot_window_ms:float ->
  ?hot_ranking:Hotrank.strategy ->
  unit ->
  t

val addr : t -> Transport.Address.t

(** The stack the server runs on (used by zone replication). *)
val stack : t -> Transport.Netstack.stack
val add_zone : t -> Zone.t -> unit
val zones : t -> Zone.t list

(** Install a query synthesizer: a hook consulted before the zone
    database on every question. Returning [Some rrs] answers the
    question with [rrs] (charged the usual per-answer marshalling);
    [None] falls through to the normal lookup. Used for server-side
    computed views over zone data — the HNS registers its
    [find_nsm_bundle] answerer here ({!Hns.Meta_bundle}), keeping this
    library independent of what is synthesized. One synthesizer per
    server; installing replaces the previous hook. *)
val set_synthesizer : t -> (Msg.question -> Rr.t list option) -> unit

val clear_synthesizer : t -> unit

(** {1 NOTIFY push}

    The modified BIND pushes an RFC 1996-style NOTIFY to each
    registered target whenever a dynamic update advances a zone
    serial, so secondaries and subscribed caches refresh immediately
    instead of waiting out their poll interval. Registration models
    BIND's [also-notify] configuration: whoever wires the deployment
    together registers the receivers. *)

val register_notify : t -> Transport.Address.t -> unit
val unregister_notify : t -> Transport.Address.t -> unit
val notify_targets : t -> Transport.Address.t list

(** Push [zone]'s current SOA to every registered target, at most
    [notify_fanout] in flight at a time, feeding ack outcomes to the
    subscriber liveness GC. The dynamic-update path calls this on
    every serial advance; a chained secondary calls it after an
    IXFR/AXFR pull moves its replica, cascading the wake-up one tree
    level at a time. *)
val notify_downstream : t -> zone:Zone.t -> unit

(** Called when {e this} server receives a NOTIFY (it is a secondary
    or subscriber). [serial] is the new serial from the pushed SOA
    when present. Handlers accumulate (one per attached secondary)
    and run on the server's service fiber — spawn if the reaction
    does real work. *)
val add_notify_handler :
  t -> (zone:Name.t -> serial:int32 option -> unit) -> unit

(** Spawn the UDP query loop and the TCP transfer loop. *)
val start : t -> unit

val stop : t -> unit
val queries_served : t -> int
val updates_applied : t -> int

(** The [k] hottest names this server has answered A-record queries
    for, hottest first, with TTL-expired entries dropped and ties
    broken by {!Name.compare} — the ranking is fully deterministic.
    [group] restricts the ranking to one answering zone (the
    per-context view the bundle synthesizer's resolve-tail prefetch
    wants); omitted, groups are merged. Scores are {!Hotrank} scores:
    decayed hit mass under the default strategy, window counts under
    [Sliding_count]. *)
val hot_ranked :
  t -> ?group:string -> k:int -> unit -> (Name.t * float) list

(** {!hot_ranked} over all groups with scores rounded to counts —
    the backward-compatible candidate set for the bundle
    synthesizer's resolve-tail prefetch ({!Hns.Meta_bundle}). *)
val hot_names : t -> k:int -> (Name.t * int) list

(** The scoring strategy this server was created with. *)
val hot_ranking : t -> Hotrank.strategy

(** Record a sighting for [name] in the hot ranking as if the server
    had just answered an A query for it, grouped under the zone that
    owns the name. This is the hint keep-alive: a name shipped as a
    prefetch hint answers from agent caches and stops generating
    query sightings here, while un-hinted names keep earning a
    cache-refill sighting per agent per refresh cycle — so the bundle
    server re-notes each hint as it serves it, cancelling that
    handicap. [ttl_ms] bounds how long the sighting stays rankable
    without renewal (typically the hint row's TTL). *)
val note_hot_name : t -> ?ttl_ms:float -> Name.t -> unit

(** Handle a request message directly (used by tests and by
    colocated configurations that shortcut the network). Charges no
    simulated cost; when [src] is omitted the update ACL is waived
    (a local caller). *)
val handle : ?src:Transport.Address.t -> t -> Msg.t -> Msg.t

(** The delegation covering [qname], if this server's zone data
    places it at or below a zone cut: the NS rrset at the cut and any
    glue A records. Lets layered answerers (the HNS bundle
    synthesizer) distinguish "delegated elsewhere" from "absent". *)
val delegation_for : t -> Name.t -> (Rr.t list * Rr.t list) option
