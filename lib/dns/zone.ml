type hook = int

type t = {
  origin : Name.t;
  mutable soa : Rr.soa;
  db : Db.t;
  journal : Journal.t;
  mutable on_delta : (hook * (Journal.delta -> unit)) list;
  mutable next_hook : hook;
}

let in_zone_name origin name = Name.is_subdomain ~of_:origin name

let create ?journal_deltas ?journal_bytes ~origin ~soa records =
  let db = Db.create () in
  List.iter
    (fun (rr : Rr.t) ->
      if not (in_zone_name origin rr.name) then
        invalid_arg
          (Printf.sprintf "Zone.create: %s is outside zone %s"
             (Name.to_string rr.name) (Name.to_string origin));
      Db.add db rr)
    records;
  {
    origin;
    soa;
    db;
    journal =
      Journal.create ?max_deltas:journal_deltas ?max_bytes:journal_bytes ();
    on_delta = [];
    next_hook = 0;
  }

let simple ?journal_deltas ?journal_bytes ~origin records =
  let soa =
    {
      Rr.mname = Name.prepend "ns" origin;
      rname = Name.prepend "hostmaster" origin;
      serial = 1l;
      refresh = 3600l;
      retry = 600l;
      expire = 864000l;
      minimum = 3600l;
    }
  in
  create ?journal_deltas ?journal_bytes ~origin ~soa records

let origin t = t.origin
let soa t = t.soa
let db t = t.db
let journal t = t.journal
let serial t = t.soa.Rr.serial
let bump_serial t = t.soa <- { t.soa with Rr.serial = Int32.add t.soa.Rr.serial 1l }
let set_soa t soa = t.soa <- soa
let in_zone t name = in_zone_name t.origin name

let soa_rr t = Rr.make ~ttl:t.soa.Rr.minimum t.origin (Rr.Soa t.soa)

let axfr_records t = soa_rr t :: Db.all t.db
let count t = 1 + Db.count t.db

let add_delta_hook t f =
  let h = t.next_hook in
  t.next_hook <- h + 1;
  t.on_delta <- t.on_delta @ [ (h, f) ];
  h

let remove_delta_hook t h =
  t.on_delta <- List.filter (fun (h', _) -> h' <> h) t.on_delta

let on_delta t f = ignore (add_delta_hook t f)

(* The single choke point every serial transition passes through: the
   journal entry lands, then the delta hooks fire — so a durability
   layer sees primary updates and replica catch-ups alike, and its
   hook returning is what lets the caller acknowledge the change
   (write-ahead discipline). *)
let record_delta t ~from_serial ~to_serial changes =
  Journal.record t.journal ~from_serial ~to_serial changes;
  let d = { Journal.from_serial; to_serial; changes } in
  List.iter (fun (_, f) -> f d) t.on_delta

let apply_delta t (d : Journal.delta) =
  if not (Int32.equal d.Journal.from_serial t.soa.Rr.serial) then
    invalid_arg
      (Printf.sprintf "Zone.apply_delta: delta starts at %ld, zone is at %ld"
         d.Journal.from_serial t.soa.Rr.serial);
  Journal.apply_changes t.db d.Journal.changes;
  t.soa <- { t.soa with Rr.serial = d.Journal.to_serial };
  (* Re-journal the delta so a replica can itself serve IXFR. *)
  record_delta t ~from_serial:d.Journal.from_serial
    ~to_serial:d.Journal.to_serial d.Journal.changes
