(** A zone: an origin, its SOA, and the records below it.

    The HNS meta-BIND serves a single flat zone ([hns-meta.]); the
    public BIND serves ordinary host zones ([cs.washington.edu.]). *)

type t

(** [create ~origin ~soa records]. Every record must lie within the
    zone (raises [Invalid_argument] otherwise). An SOA record at the
    origin is synthesized from [soa]. [journal_deltas] /
    [journal_bytes] bound the zone's change journal (see
    {!Journal.create}). *)
val create :
  ?journal_deltas:int ->
  ?journal_bytes:int ->
  origin:Name.t ->
  soa:Rr.soa ->
  Rr.t list ->
  t

(** A zone with a boilerplate SOA, for tests and simple setups. *)
val simple : ?journal_deltas:int -> ?journal_bytes:int -> origin:Name.t -> Rr.t list -> t

val origin : t -> Name.t
val soa : t -> Rr.soa
val db : t -> Db.t

(** The zone's change journal, appended to by the dynamic-update path
    and read by the IXFR server. *)
val journal : t -> Journal.t

val serial : t -> int32

(** Called after every dynamic update. *)
val bump_serial : t -> unit

(** Adopt a primary's SOA verbatim (zone replication). *)
val set_soa : t -> Rr.soa -> unit

val in_zone : t -> Name.t -> bool

(** Handle to a registered delta hook, for {!remove_delta_hook}. *)
type hook

(** Register a delta hook, run (in registration order) after every
    serial transition is journalled — by the dynamic-update path and
    by {!apply_delta} alike. A durability layer ({!Durable}) uses this
    to spill each delta to its write-ahead log before the update is
    acknowledged; the hook blocking is what gates the ack. *)
val add_delta_hook : t -> (Journal.delta -> unit) -> hook

(** Unregister a hook; a no-op if already removed. *)
val remove_delta_hook : t -> hook -> unit

(** {!add_delta_hook} for hooks that live as long as the zone. *)
val on_delta : t -> (Journal.delta -> unit) -> unit

(** Journal one serial transition and fire the delta hooks. The
    update path must use this (not {!Journal.record} directly) so
    durability hooks observe every change. *)
val record_delta :
  t -> from_serial:int32 -> to_serial:int32 -> Journal.change list -> unit

(** The zone's SOA as a resource record at the origin. *)
val soa_rr : t -> Rr.t

(** Records for a zone transfer: SOA first, then all data records. *)
val axfr_records : t -> Rr.t list

(** Total record count including the SOA. *)
val count : t -> int

(** Apply one journal delta to this zone (a replica catching up):
    replays the changes in order, adopts the delta's [to_serial], and
    re-journals the delta so the replica can serve IXFR onwards.
    Raises [Invalid_argument] when the delta does not start at the
    zone's current serial. *)
val apply_delta : t -> Journal.delta -> unit
