let register_name_service meta ~name info =
  Meta_schema.validate_simple_name ~what:"Admin.register_name_service" name;
  Meta_client.store meta ~key:(Meta_schema.ns_info_key name) ~ty:Meta_schema.ns_info_ty
    (Meta_schema.ns_info_to_value info)

let register_context meta ~context ~ns =
  Meta_schema.validate_simple_name ~what:"Admin.register_context ns" ns;
  Meta_client.store meta ~key:(Meta_schema.context_key context)
    ~ty:Meta_schema.string_ty (Wire.Value.Str ns)

let register_nsm meta ~name ~ns ~query_class info =
  Meta_schema.validate_simple_name ~what:"Admin.register_nsm" name;
  match
    Meta_client.store meta
      ~key:(Meta_schema.nsm_name_key ~ns ~query_class)
      ~ty:Meta_schema.string_ty (Wire.Value.Str name)
  with
  | Error _ as e -> e
  | Ok () ->
      Meta_client.store meta
        ~key:(Meta_schema.nsm_binding_key name)
        ~ty:Meta_schema.nsm_info_ty
        (Meta_schema.nsm_info_to_value info)

let register_alternate_nsm meta ~name ~ns ~query_class info =
  Meta_schema.validate_simple_name ~what:"Admin.register_alternate_nsm" name;
  (* Read-modify-write the alternates array, then record the
     alternate's own location so failover can resolve it. *)
  let key = Meta_schema.nsm_alternates_key ~ns ~query_class in
  let existing =
    match Meta_client.lookup meta ~key ~ty:Meta_schema.nsm_alternates_ty with
    | Ok (Some (Wire.Value.Array items)) ->
        List.filter_map
          (fun v -> match v with Wire.Value.Str s -> Some s | _ -> None)
          items
    | Ok _ | Error _ -> []
  in
  let names = if List.mem name existing then existing else existing @ [ name ] in
  match
    Meta_client.store meta ~key ~ty:Meta_schema.nsm_alternates_ty
      (Wire.Value.Array (List.map (fun s -> Wire.Value.Str s) names))
  with
  | Error _ as e -> e
  | Ok () ->
      Meta_client.store meta
        ~key:(Meta_schema.nsm_binding_key name)
        ~ty:Meta_schema.nsm_info_ty
        (Meta_schema.nsm_info_to_value info)

(* Delegate the <label> context subtree to a partition. One
   transaction replaces the NS rrset at the cut and the glue A records
   under nsglue: the primary's NS record goes FIRST, because rrset
   order is insertion order and clients take the first glue address in
   a referral as the partition primary (the write target). *)
let register_partition meta ~label ~primary ~replicas ?(ttl_s = 300l) () =
  Meta_schema.validate_simple_name ~what:"Admin.register_partition" label;
  let cut = Meta_schema.partition_cut label in
  let servers = primary :: replicas in
  let ops =
    Dns.Msg.Delete_rrset (cut, Dns.Rr.T_ns)
    :: List.concat
         (List.mapi
            (fun j (addr : Transport.Address.t) ->
              let g = Meta_schema.partition_glue_key ~label j in
              [
                Dns.Msg.Add (Dns.Rr.make ~ttl:ttl_s cut (Dns.Rr.Ns g));
                Dns.Msg.Delete_rrset (g, Dns.Rr.T_a);
                Dns.Msg.Add
                  (Dns.Rr.make ~ttl:ttl_s g
                     (Dns.Rr.A addr.Transport.Address.ip));
              ])
            servers)
  in
  Meta_client.transact meta ops

let remove_context meta ~context =
  Meta_client.remove meta ~key:(Meta_schema.context_key context)

(* Administrative cache warming: pull the whole meta zone into this
   instance's cache via a BIND zone transfer. *)
let preload meta = Meta_client.preload meta

let remove_nsm meta ~name ~ns ~query_class =
  match Meta_client.remove meta ~key:(Meta_schema.nsm_name_key ~ns ~query_class) with
  | Error _ as e -> e
  | Ok () -> Meta_client.remove meta ~key:(Meta_schema.nsm_binding_key name)

let nsm_info_of_binding ~host ~host_context (binding : Hrpc.Binding.t) =
  {
    Meta_schema.nsm_host = host;
    nsm_host_context = host_context;
    nsm_port = binding.Hrpc.Binding.server.Transport.Address.port;
    nsm_prog = binding.Hrpc.Binding.prog;
    nsm_vers = binding.Hrpc.Binding.vers;
    nsm_suite = binding.Hrpc.Binding.suite;
  }

let register_nsm_server meta ~name ~ns ~query_class ~host ~host_context
    (binding : Hrpc.Binding.t) =
  register_nsm meta ~name ~ns ~query_class
    (nsm_info_of_binding ~host ~host_context binding)

let register_alternate_nsm_server meta ~name ~ns ~query_class ~host ~host_context
    (binding : Hrpc.Binding.t) =
  register_alternate_nsm meta ~name ~ns ~query_class
    (nsm_info_of_binding ~host ~host_context binding)
