(** Registration: how system types join the confederation.

    "Adding a new system type simply requires building NSMs for those
    queries to be supported and registering their existence with the
    HNS." Registration writes meta-naming records through the dynamic
    update path of the modified BIND; "registering an NSM with the HNS
    extends the functionality of all machines at once", unlike
    relinking locally-linked clients. *)

(** Declare a name service instance. *)
val register_name_service :
  Meta_client.t -> name:string -> Meta_schema.ns_info -> (unit, Errors.t) result

(** Map a context onto (part of) a name service's name space. *)
val register_context :
  Meta_client.t -> context:string -> ns:string -> (unit, Errors.t) result

(** Register an NSM for (name service, query class), recording both
    the designation mapping and the NSM's location. *)
val register_nsm :
  Meta_client.t ->
  name:string ->
  ns:string ->
  query_class:Query_class.t ->
  Meta_schema.nsm_info ->
  (unit, Errors.t) result

(** Register an {e alternate} NSM for (name service, query class):
    appended to the failover set consulted when the designated NSM is
    unreachable, and its location recorded. Idempotent per name. *)
val register_alternate_nsm :
  Meta_client.t ->
  name:string ->
  ns:string ->
  query_class:Query_class.t ->
  Meta_schema.nsm_info ->
  (unit, Errors.t) result

(** Delegate the ["<x>.<label>"] context subtree to a partition:
    writes NS records at {!Meta_schema.partition_cut}[ label] naming
    [primary :: replicas] ({e primary first} — the first glue address
    in a referral is the partition's write target) plus their glue A
    records, in one transaction against the root zone. [ttl_s]
    (default 300) bounds how long clients cache the cut. All servers
    must share the meta deployment's port: referral glue carries only
    IPs. *)
val register_partition :
  Meta_client.t ->
  label:string ->
  primary:Transport.Address.t ->
  replicas:Transport.Address.t list ->
  ?ttl_s:int32 ->
  unit ->
  (unit, Errors.t) result

val remove_context : Meta_client.t -> context:string -> (unit, Errors.t) result

(** Administrative cache warming: transfer the whole meta zone (AXFR)
    into this instance's cache; returns the number of mappings seeded.
    Alias for {!Meta_client.preload}. *)
val preload : Meta_client.t -> (int, Errors.t) result

val remove_nsm :
  Meta_client.t ->
  name:string ->
  ns:string ->
  query_class:Query_class.t ->
  (unit, Errors.t) result

(** Convenience: register an HRPC server as the NSM for
    (ns, query class) under [name], deriving the location record from
    the server's binding. [host]/[host_context] name where it runs. *)
val register_nsm_server :
  Meta_client.t ->
  name:string ->
  ns:string ->
  query_class:Query_class.t ->
  host:string ->
  host_context:string ->
  Hrpc.Binding.t ->
  (unit, Errors.t) result

(** As {!register_nsm_server}, but into the failover set
    ({!register_alternate_nsm}) instead of the designation mapping. *)
val register_alternate_nsm_server :
  Meta_client.t ->
  name:string ->
  ns:string ->
  query_class:Query_class.t ->
  host:string ->
  host_context:string ->
  Hrpc.Binding.t ->
  (unit, Errors.t) result
