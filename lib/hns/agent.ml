let agent_prog = 390200
let agent_vers = 1
let proc_find_nsm = 1
let proc_import = 2
let proc_resolve_addr = 3

let find_nsm_arg_ty =
  Wire.Idl.T_struct
    [ ("context", Wire.Idl.T_string); ("query_class", Wire.Idl.T_string) ]

let find_nsm_payload_ty =
  Wire.Idl.T_struct [ ("nsm_name", Wire.Idl.T_string); ("binding", Hrpc.Binding.idl_ty) ]

let result_union payload = Wire.Idl.T_union ([ (0, payload); (1, Wire.Idl.T_string) ], None)

let find_nsm_sign =
  Wire.Idl.signature ~arg:find_nsm_arg_ty ~res:(result_union find_nsm_payload_ty)

let import_arg_ty =
  Wire.Idl.T_struct [ ("service", Wire.Idl.T_string); ("hns_name", Hns_name.idl_ty) ]

let import_sign =
  Wire.Idl.signature ~arg:import_arg_ty ~res:(result_union Hrpc.Binding.idl_ty)

let resolve_addr_sign =
  Wire.Idl.signature ~arg:Hns_name.idl_ty ~res:(result_union Wire.Idl.T_uint)

let m_requests = Obs.Metrics.counter "hns.agent.requests"
let m_cache_hits = Obs.Metrics.counter "hns.agent.cache_hits"
let m_coalesced = Obs.Metrics.counter "hns.agent.coalesced"

type t = {
  server : Hrpc.Server.t;
  hns : Client.t;
  (* Cross-process singleflight: the agent serves every client process
     on its host, so one table here collapses duplicate in-flight work
     across all of them — whole replies, NSM data call included, not
     just the FindNSM prefix. *)
  inflight : (string, Wire.Value.t Sim.Engine.Ivar.ivar * Obs.Span.id) Hashtbl.t;
      (* ivar plus the leader's trace id: a coalesced follower's reply
         was really produced under the leader's trace, and its flight
         record says so *)
  mutable request_count : int;
  mutable cache_hit_count : int;
  mutable coalesced_count : int;
  mutable refresher_stop : (unit -> unit) option;
  mutable notify_stop : (unit -> unit) option;
}

let ok payload = Wire.Value.Union (0, payload)
let err e = Wire.Value.Union (1, Wire.Value.Str (Errors.to_string e))

(* [fill] schedules reader wake-ups, an engine operation; outside the
   simulation there are no waiters to wake, so a failed fill is moot. *)
let safe_fill iv v =
  try ignore (Sim.Engine.Ivar.fill_if_empty iv v)
  with Effect.Unhandled _ -> ()

(* Serve one request through the agent's singleflight table. The
   leader computes the reply and also classifies it: an exchange that
   performed zero upstream meta lookups was answered entirely from the
   agent's shared cache. Followers joining an in-flight key are
   counted coalesced and wait for the leader's reply. *)
let singleflight t ~qname ~query_class key compute =
  Obs.Qlog.with_query ~name:qname ~query_class (fun () ->
      (* Inside the server's [hrpc_serve] span, so this is the trace
         the calling client propagated over the wire. *)
      Obs.Qlog.note_trace (Obs.Span.current_trace ());
      t.request_count <- t.request_count + 1;
      Obs.Metrics.incr m_requests;
      match Hashtbl.find_opt t.inflight key with
      | Some (iv, leader_trace) ->
          t.coalesced_count <- t.coalesced_count + 1;
          Obs.Metrics.incr m_coalesced;
          (* This request rides the leader's in-flight work: its record
             links the trace that actually went upstream, and the
             serving span (the agent's hrpc_serve) says so too. *)
          Obs.Qlog.note_link leader_trace;
          if Obs.Span.enabled () then begin
            Obs.Span.add_attr "coalesced" "true";
            Obs.Span.add_attr "leader_trace" (Printf.sprintf "%08x" leader_trace)
          end;
          Sim.Engine.Ivar.read iv
      | None ->
          let iv = Sim.Engine.Ivar.create () in
          Hashtbl.replace t.inflight key (iv, Obs.Span.current_trace ());
          Fun.protect
            ~finally:(fun () ->
              Hashtbl.remove t.inflight key;
              safe_fill iv (err (Errors.Meta_error "coalesced agent leader failed")))
            (fun () ->
              let before = Meta_client.remote_lookups (Client.meta t.hns) in
              let r = compute () in
              if Meta_client.remote_lookups (Client.meta t.hns) = before then begin
                t.cache_hit_count <- t.cache_hit_count + 1;
                Obs.Metrics.incr m_cache_hits
              end
              else Obs.Qlog.note_outcome Obs.Qlog.Miss;
              safe_fill iv r;
              r))

let create hns ?(linked_nsms = []) ?port ?(suite = Hrpc.Component.sunrpc_suite)
    ?service_overhead_ms () =
  let server =
    (* Concurrent dispatch is what makes the agent an agent: requests
       from different client processes must overlap to share the
       in-flight table instead of queueing behind one another. *)
    Hrpc.Server.create (Client.stack hns) ~suite ?port ?service_overhead_ms
      ~concurrent:true ~prog:agent_prog ~vers:agent_vers ()
  in
  let t =
    {
      server;
      hns;
      inflight = Hashtbl.create 8;
      request_count = 0;
      cache_hit_count = 0;
      coalesced_count = 0;
      refresher_stop = None;
      notify_stop = None;
    }
  in
  Hrpc.Server.register server ~procnum:proc_find_nsm ~sign:find_nsm_sign (fun v ->
      let context = Wire.Value.get_str (Wire.Value.field v "context") in
      let query_class = Wire.Value.get_str (Wire.Value.field v "query_class") in
      singleflight t ~qname:("agent-find:" ^ context) ~query_class
        ("f:" ^ context ^ "\x00" ^ query_class) (fun () ->
          match Client.find_nsm hns ~context ~query_class with
          | Error e -> err e
          | Ok resolved ->
              ok
                (Wire.Value.Struct
                   [
                     ("nsm_name", Wire.Value.Str resolved.Find_nsm.nsm_name);
                     ("binding", Hrpc.Binding.to_value resolved.Find_nsm.binding);
                   ])));
  Hrpc.Server.register server ~procnum:proc_import ~sign:import_sign (fun v ->
      let service = Wire.Value.get_str (Wire.Value.field v "service") in
      let hns_name = Hns_name.of_value (Wire.Value.field v "hns_name") in
      singleflight t
        ~qname:("agent-import:" ^ Hns_name.to_string hns_name)
        ~query_class:Query_class.hrpc_binding
        ("i:" ^ service ^ "\x00" ^ Hns_name.to_string hns_name)
        (fun () ->
          match
            Client.find_nsm hns ~context:hns_name.Hns_name.context
              ~query_class:Query_class.hrpc_binding
          with
          | Error e -> err e
          | Ok resolved -> (
              let access =
                match List.assoc_opt resolved.Find_nsm.nsm_name linked_nsms with
                | Some impl -> Nsm_intf.Linked impl
                | None -> Nsm_intf.Remote resolved.Find_nsm.binding
              in
              match
                Nsm_intf.call (Client.stack hns) access
                  ~payload_ty:Nsm_intf.binding_payload_ty ~service ~hns_name
              with
              | Error e -> err e
              | Ok None -> err (Errors.Name_not_found hns_name)
              | Ok (Some payload) -> ok payload)));
  Hrpc.Server.register server ~procnum:proc_resolve_addr ~sign:resolve_addr_sign
    (fun v ->
      let hns_name = Hns_name.of_value v in
      singleflight t
        ~qname:("agent-resolve:" ^ Hns_name.to_string hns_name)
        ~query_class:Query_class.host_address
        ("r:" ^ Hns_name.to_string hns_name) (fun () ->
          match
            Client.resolve hns ~query_class:Query_class.host_address
              ~payload_ty:Nsm_intf.host_address_payload_ty hns_name
          with
          | Error e -> err e
          | Ok None -> err (Errors.Name_not_found hns_name)
          | Ok (Some (Wire.Value.Uint _ as addr)) -> ok addr
          | Ok (Some v) ->
              err
                (Errors.Nsm_error
                   ("host-address NSM returned " ^ Wire.Value.to_string v))));
  t

let binding t = Hrpc.Server.binding t.server
let start t = Hrpc.Server.start t.server
let hns t = t.hns

let stop t =
  (match t.refresher_stop with Some f -> f () | None -> ());
  t.refresher_stop <- None;
  (match t.notify_stop with Some f -> f () | None -> ());
  t.notify_stop <- None;
  Hrpc.Server.stop t.server

(* {1 The shared preloader / refresher} *)

let preload t = Client.preload t.hns

let start_notify_listener ?port t =
  let addr, stop = Meta_client.start_notify_listener ?port (Client.meta t.hns) in
  (match t.notify_stop with Some f -> f () | None -> ());
  t.notify_stop <- Some stop;
  addr

let start_preload_refresher ?interval_ms t =
  match t.refresher_stop with
  | Some _ -> () (* one refresher per agent, by construction *)
  | None ->
      t.refresher_stop <- Some (Client.start_preload_refresher ?interval_ms t.hns)

(* {1 Stats} *)

let requests t = t.request_count
let cache_hits t = t.cache_hit_count
let coalesced t = t.coalesced_count

let cache_hit_ratio t =
  let leaders = t.request_count - t.coalesced_count in
  if leaders <= 0 then 0.0 else float_of_int t.cache_hit_count /. float_of_int leaders

let prefetch_seeded t = Meta_client.prefetch_seeded (Client.meta t.hns)
let prefetch_hits t = Meta_client.prefetch_hits (Client.meta t.hns)

(* {1 Client-side wrappers} *)

let interpret decode_payload = function
  | Wire.Value.Union (0, payload) -> (
      match decode_payload payload with
      | exception Invalid_argument m -> Error (Errors.Meta_error m)
      | v -> Ok v)
  | Wire.Value.Union (1, Wire.Value.Str m) -> Error (Errors.Nsm_error m)
  | v -> Error (Errors.Meta_error ("unexpected agent result " ^ Wire.Value.to_string v))

let remote_find_nsm stack ~agent ~context ~query_class =
  let arg =
    Wire.Value.Struct
      [ ("context", Wire.Value.Str context); ("query_class", Str query_class) ]
  in
  match Hrpc.Client.call stack agent ~procnum:proc_find_nsm ~sign:find_nsm_sign arg with
  | Error e -> Error (Errors.Rpc_error e)
  | Ok v ->
      interpret
        (fun payload ->
          ( Wire.Value.get_str (Wire.Value.field payload "nsm_name"),
            Hrpc.Binding.of_value (Wire.Value.field payload "binding") ))
        v

let remote_import stack ~agent ~service hns_name =
  let arg =
    Wire.Value.Struct
      [ ("service", Wire.Value.Str service); ("hns_name", Hns_name.to_value hns_name) ]
  in
  match Hrpc.Client.call stack agent ~procnum:proc_import ~sign:import_sign arg with
  | Error e -> Error (Errors.Rpc_error e)
  | Ok v -> interpret Hrpc.Binding.of_value v

let remote_resolve_addr stack ~agent hns_name =
  match
    Hrpc.Client.call stack agent ~procnum:proc_resolve_addr
      ~sign:resolve_addr_sign (Hns_name.to_value hns_name)
  with
  | Error e -> Error (Errors.Rpc_error e)
  | Ok v ->
      interpret
        (function
          | Wire.Value.Uint ip -> ip
          | p -> invalid_arg ("agent: bad address payload " ^ Wire.Value.to_string p))
        v
