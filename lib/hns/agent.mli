(** The HNS agent: a long-lived per-host process that hosts an HNS
    instance (and optionally NSM instances) and serves every client
    process on its host over HRPC.

    This realizes the remote-HNS colocation arrangements of Table 3.1:
    row 2's combined agent ("a single process remote from the client
    acted as the client's agent, making local calls to the HNS and
    then to the NSM"), and rows 3/5's standalone remote HNS serving
    FindNSM. Caching is "more likely to be effective in long-lived
    remote servers than in locally linked copies" — the agent is that
    long-lived server, and v2 makes the sharing real:

    - one demarshalled cache inside the agent serves all client
      processes, with (at most) one NOTIFY-subscribed preloader and
      delta-refresher per agent keeping it coherent;
    - the agent runs its own singleflight table over whole replies, so
      concurrent identical requests from {e different processes}
      collapse into one upstream meta query (its HRPC server
      dispatches concurrently to let them meet);
    - {!proc_resolve_addr} serves complete host-address resolutions,
      letting clients ride the agent's resolve-tail prefetch
      ({!Meta_bundle}) and skip the trailing remote NSM round trip. *)

val agent_prog : int
val agent_vers : int

(** proc 1: FindNSM(context, query class) → (nsm name, binding). *)
val proc_find_nsm : int

val find_nsm_sign : Wire.Idl.signature

(** proc 2: Import(service, hns name) → service binding
    (the agent calls the NSM itself, locally when linked). *)
val proc_import : int

val import_sign : Wire.Idl.signature

(** proc 3: ResolveAddr(hns name) → host address. A full
    FindNSM-plus-data resolution run inside the agent, where the
    shared cache (including prefetched rows) can answer the data step
    without the remote NSM. *)
val proc_resolve_addr : int

val resolve_addr_sign : Wire.Idl.signature

type t

(** [create hns ?linked_nsms ?port ~suite ()] — [linked_nsms] maps NSM
    names to instances the agent holds locally; unlisted NSMs are
    called remotely through their bindings. The agent's HRPC server is
    created concurrent so duplicate in-flight requests coalesce. *)
val create :
  Client.t ->
  ?linked_nsms:(string * Nsm_intf.impl) list ->
  ?port:int ->
  ?suite:Hrpc.Component.protocol_suite ->
  ?service_overhead_ms:float ->
  unit ->
  t

val binding : t -> Hrpc.Binding.t
val start : t -> unit

(** Stops the HRPC server and any refresher/NOTIFY listener started
    through this agent. *)
val stop : t -> unit

(** The agent's own HNS instance (whose cache is the shared cache). *)
val hns : t -> Client.t

(** {1 The shared preloader / refresher}

    One per agent, serving every client process on the host. *)

(** Seed the shared cache from a meta-zone transfer
    ({!Client.preload}). *)
val preload : t -> (int, Errors.t) result

(** Subscribe the shared cache to meta-zone NOTIFY pushes; returns the
    listener address to register with the primary
    ({!Dns.Server.register_notify}). Stopped by {!stop}. Must be
    called inside the simulation. *)
val start_notify_listener : ?port:int -> t -> Transport.Address.t

(** Start the polling delta-refresher backstop; idempotent — an agent
    runs at most one. Stopped by {!stop}. Must be called inside the
    simulation. *)
val start_preload_refresher : ?interval_ms:float -> t -> unit

(** {1 Stats}

    Mirrored in the metrics registry as [hns.agent.requests],
    [hns.agent.cache_hits] and [hns.agent.coalesced]. *)

(** Requests served over all procedures (coalesced followers
    included). *)
val requests : t -> int

(** Requests the agent answered without any upstream meta lookup. *)
val cache_hits : t -> int

(** Requests that joined another process's in-flight identical
    request. *)
val coalesced : t -> int

(** {!cache_hits} over requests that actually computed (followers
    excluded); 0 before any traffic. *)
val cache_hit_ratio : t -> float

(** Prefetched host-address rows admitted to the shared cache
    ({!Meta_client.prefetch_seeded}). *)
val prefetch_seeded : t -> int

(** Resolutions whose NSM data round trip a prefetched row eliminated
    ({!Meta_client.prefetch_hits}). *)
val prefetch_hits : t -> int

(** {1 Client-side wrappers} *)

val remote_find_nsm :
  Transport.Netstack.stack ->
  agent:Hrpc.Binding.t ->
  context:string ->
  query_class:Query_class.t ->
  (string * Hrpc.Binding.t, Errors.t) result

val remote_import :
  Transport.Netstack.stack ->
  agent:Hrpc.Binding.t ->
  service:string ->
  Hns_name.t ->
  (Hrpc.Binding.t, Errors.t) result

val remote_resolve_addr :
  Transport.Netstack.stack ->
  agent:Hrpc.Binding.t ->
  Hns_name.t ->
  (Transport.Address.ip, Errors.t) result
