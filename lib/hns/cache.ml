type mode = Marshalled | Demarshalled

type stored =
  | Bytes_form of string
  | Value_form of Wire.Value.t
  | Addr_form of int32
    (* a prefetch-tail HostAddress row decoded by the hand codec:
       native, no Value tree *)
  | Negative_form  (* a cached "no such record" answer *)

type entry = {
  stored : stored;
  expires_at : float;
  mutable last_used : int;
  pinned : bool; (* preload-sourced: exempt from LRU eviction *)
}

type t = {
  mode : mode;
  generated_cost : Wire.Generic_marshal.cost_model;
  hand_cost : Wire.Hotcodec.cost_model option;
      (* when set, marshalled-mode hits on hot record shapes demarshal
         through the hand codec and charge its (much smaller) cost *)
  hit_overhead_ms : float;
  hit_per_node_ms : float;
  insert_overhead_ms : float;
  default_ttl_ms : float;
  staleness_budget_ms : float;
  max_entries : int option;
  tbl : (string, entry) Hashtbl.t;
  mutable tick : int; (* logical clock for LRU recency *)
  mutable hit_count : int;
  mutable miss_count : int;
  mutable stale_count : int;
  mutable neg_hit_count : int;
  mutable lru_eviction_count : int;
  mutable preloaded_count : int;
  mutable pinned_count : int;
  mutable preload_skipped_count : int;
  mutable invalidation_count : int;
}

(* The canonical storage representation for marshalled entries. *)
let storage_rep = Wire.Data_rep.Xdr

(* Registry instruments, split by storage mode so Table 3.2's
   marshalled-vs-demarshalled contrast shows up on the panel. *)
type mode_metrics = {
  m_hits : Obs.Metrics.counter;
  m_misses : Obs.Metrics.counter;
  m_evictions : Obs.Metrics.counter;
  m_hit_ms : Obs.Metrics.histogram;
}

let mode_metrics prefix =
  {
    m_hits = Obs.Metrics.counter (prefix ^ ".hits");
    m_misses = Obs.Metrics.counter (prefix ^ ".misses");
    m_evictions = Obs.Metrics.counter (prefix ^ ".evictions");
    m_hit_ms = Obs.Metrics.histogram (prefix ^ ".hit_ms");
  }

let marshalled_metrics = mode_metrics "hns.cache.marshalled"
let demarshalled_metrics = mode_metrics "hns.cache.demarshalled"

let m_stale_served = Obs.Metrics.counter "hns.cache.stale_served"
let m_neg_hits = Obs.Metrics.counter "hns.cache.neg_hits"
let m_lru_evictions = Obs.Metrics.counter "hns.cache.evictions"
let m_preloaded = Obs.Metrics.counter "hns.cache.preloaded"
let m_preload_skipped = Obs.Metrics.counter "hns.cache.preload_skipped"
let m_invalidations = Obs.Metrics.counter "hns.cache.invalidations"

let metrics_of = function
  | Marshalled -> marshalled_metrics
  | Demarshalled -> demarshalled_metrics

let create ~mode
    ?(generated_cost = { Wire.Generic_marshal.per_call_ms = 0.0; per_node_ms = 0.0 })
    ?hand_cost ?(hit_overhead_ms = 0.0) ?(hit_per_node_ms = 0.0)
    ?(insert_overhead_ms = 0.0) ?(default_ttl_ms = 3_600_000.0)
    ?(staleness_budget_ms = 0.0) ?max_entries () =
  (match max_entries with
  | Some n when n <= 0 -> invalid_arg "Cache.create: max_entries must be positive"
  | _ -> ());
  {
    mode;
    generated_cost;
    hand_cost;
    hit_overhead_ms;
    hit_per_node_ms;
    insert_overhead_ms;
    default_ttl_ms;
    staleness_budget_ms;
    max_entries;
    tbl = Hashtbl.create 64;
    tick = 0;
    hit_count = 0;
    miss_count = 0;
    stale_count = 0;
    neg_hit_count = 0;
    lru_eviction_count = 0;
    preloaded_count = 0;
    pinned_count = 0;
    preload_skipped_count = 0;
    invalidation_count = 0;
  }

let mode t = t.mode
let staleness_budget_ms t = t.staleness_budget_ms
let max_entries t = t.max_entries

(* Charge virtual time if we are inside a simulated process; cache use
   from plain test code costs nothing. *)
let charge ms =
  if ms > 0.0 then
    try Sim.Engine.sleep ms with Effect.Unhandled _ -> ()

let now () =
  try Sim.Engine.time () with Effect.Unhandled _ -> 0.0

let touch t entry =
  t.tick <- t.tick + 1;
  entry.last_used <- t.tick

(* Every removal goes through here so the pinned-entry accounting
   stays exact. *)
let remove_key t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> false
  | Some e ->
      Hashtbl.remove t.tbl key;
      if e.pinned then t.pinned_count <- t.pinned_count - 1;
      true

(* Decode an entry's stored form, charging the mode-dependent hit cost.
   [None] means the entry was undecodable and has been evicted. *)
let decode_stored t ~key ~ty stored =
  match stored with
  | Negative_form -> None
  | Value_form v ->
      charge
        (t.hit_overhead_ms
        +. (t.hit_per_node_ms *. float_of_int (Wire.Value.node_count v)));
      Some v
  | Addr_form ip ->
      (* Compat access to a native address entry through the Value
         interface: the tree is materialised here (and counted — the
         zero-copy resolve path uses find_addr and never reaches
         this). *)
      charge (t.hit_overhead_ms +. t.hit_per_node_ms);
      Wire.Hotcodec.count_value_materialization ();
      Some (Wire.Value.Uint ip)
  | Bytes_form bytes -> (
      (* The marshalled cache really demarshals on every access,
         and pays the codec's price for it: the hand codec's when one
         is configured and the shape is hot, the generated stubs'
         otherwise. *)
      charge t.hit_overhead_ms;
      match t.hand_cost with
      | Some hc when Hot_codec.is_hot_ty ty -> (
          match Hot_codec.decode_value ty bytes with
          | Some v ->
              charge (Wire.Hotcodec.cost hc ~records:1);
              Some v
          | None -> (
              Wire.Hotcodec.count_fallback ();
              match Wire.Generic_marshal.unmarshal storage_rep ty bytes with
              | exception _ ->
                  ignore (remove_key t key);
                  Obs.Metrics.incr (metrics_of t.mode).m_evictions;
                  None
              | v ->
                  charge (Wire.Generic_marshal.cost t.generated_cost v);
                  Some v))
      | _ -> (
          match Wire.Generic_marshal.unmarshal storage_rep ty bytes with
          | exception _ ->
              ignore (remove_key t key);
              Obs.Metrics.incr (metrics_of t.mode).m_evictions;
              None
          | v ->
              charge (Wire.Generic_marshal.cost t.generated_cost v);
              Some v))

type outcome = Hit of Wire.Value.t | Negative_hit | Miss

let find_outcome t ~key ~ty =
  let m = metrics_of t.mode in
  let miss () =
    t.miss_count <- t.miss_count + 1;
    Obs.Metrics.incr m.m_misses;
    Miss
  in
  let hit_t0 = Obs.Metrics.now_ms () in
  match Hashtbl.find_opt t.tbl key with
  | None -> miss ()
  | Some entry when entry.expires_at <= now () ->
      (* Expired entries linger for the staleness budget — find still
         misses (the caller should refresh), but find_stale can serve
         them if that refresh fails. Negative entries never outlive
         their TTL: a stale "no" is worth nothing. *)
      if entry.stored = Negative_form
         || now () > entry.expires_at +. t.staleness_budget_ms
      then begin
        ignore (remove_key t key);
        Obs.Metrics.incr m.m_evictions
      end;
      miss ()
  | Some ({ stored = Negative_form; _ } as entry) ->
      charge t.hit_overhead_ms;
      touch t entry;
      t.neg_hit_count <- t.neg_hit_count + 1;
      Obs.Metrics.incr m_neg_hits;
      Negative_hit
  | Some entry -> (
      match decode_stored t ~key ~ty entry.stored with
      | None -> miss ()
      | Some v ->
          touch t entry;
          t.hit_count <- t.hit_count + 1;
          Obs.Metrics.incr m.m_hits;
          Obs.Metrics.observe m.m_hit_ms (Obs.Metrics.now_ms () -. hit_t0);
          Hit v)

let find t ~key ~ty =
  match find_outcome t ~key ~ty with Hit v -> Some v | Negative_hit | Miss -> None

(* Instrumentation-free probe: is a fresh (positive) value cached?
   Charges nothing and moves no counter — used to decide whether a
   bundle prefetch is worth a round trip without perturbing the
   hit/miss accounting of the walk that follows. *)
let peek t ~key =
  match Hashtbl.find_opt t.tbl key with
  | Some { stored = Bytes_form _ | Value_form _ | Addr_form _; expires_at; _ }
    when expires_at > now () ->
      true
  | _ -> false

(* As [peek], but for fresh negative entries. *)
let peek_negative t ~key =
  match Hashtbl.find_opt t.tbl key with
  | Some { stored = Negative_form; expires_at; _ } when expires_at > now () ->
      true
  | _ -> false

let find_stale t ~key ~ty =
  match Hashtbl.find_opt t.tbl key with
  | None -> None
  | Some { stored = Negative_form; _ } -> None
  | Some entry ->
      let n = now () in
      if
        entry.expires_at <= n
        && n <= entry.expires_at +. t.staleness_budget_ms
      then
        match decode_stored t ~key ~ty entry.stored with
        | None -> None
        | Some v ->
            touch t entry;
            t.stale_count <- t.stale_count + 1;
            Obs.Metrics.incr m_stale_served;
            Some v
      else None

(* Capacity bound: before adding a NEW key to a full cache, evict the
   least-recently-used entry (an O(n) scan; the bound exists to cap
   memory under large preloads, not to be a hot path). Preload-pinned
   entries are skipped, so demand traffic churning through a bounded
   cache cannot wash out the zone snapshot a preload just paid a
   transfer for; only when every entry is pinned does the scan fall
   back to evicting among them. *)
let evict_lru_if_full t ~key =
  match t.max_entries with
  | Some max
    when Hashtbl.length t.tbl >= max && not (Hashtbl.mem t.tbl key) -> (
      let pick_lru ~respect_pin =
        Hashtbl.fold
          (fun k e acc ->
            if respect_pin && e.pinned then acc
            else
              match acc with
              | Some (_, best) when best.last_used <= e.last_used -> acc
              | _ -> Some (k, e))
          t.tbl None
      in
      let victim =
        match pick_lru ~respect_pin:true with
        | Some _ as v -> v
        | None -> pick_lru ~respect_pin:false
      in
      match victim with
      | None -> ()
      | Some (k, _) ->
          ignore (remove_key t k);
          t.lru_eviction_count <- t.lru_eviction_count + 1;
          Obs.Metrics.incr m_lru_evictions)
  | _ -> ()

let insert_stored t ~key ~ttl_ms ?(pinned = false) stored =
  let ttl = match ttl_ms with Some ms -> ms | None -> t.default_ttl_ms in
  evict_lru_if_full t ~key;
  (match Hashtbl.find_opt t.tbl key with
  | Some old when old.pinned -> t.pinned_count <- t.pinned_count - 1
  | _ -> ());
  if pinned then t.pinned_count <- t.pinned_count + 1;
  t.tick <- t.tick + 1;
  Hashtbl.replace t.tbl key
    { stored; expires_at = now () +. ttl; last_used = t.tick; pinned }

let stored_of t ~ty v =
  match t.mode with
  | Demarshalled -> Value_form v
  | Marshalled -> Bytes_form (Wire.Generic_marshal.marshal storage_rep ty v)

let insert t ~key ~ty ?ttl_ms v =
  charge t.insert_overhead_ms;
  insert_stored t ~key ~ttl_ms (stored_of t ~ty v)

(* --- Native host-address entries (zero-copy prefetch tail). ---------
   The hand codec decodes a HostAddress row to a bare int32;
   [insert_addr]/[find_addr] store and serve it with no Value tree on
   either side.  [find] still works on such entries (decode_stored
   materialises the Uint, counted), so legacy readers see no
   difference. *)

let insert_addr t ~key ?ttl_ms ip =
  charge t.insert_overhead_ms;
  insert_stored t ~key ~ttl_ms (Addr_form ip)

let find_addr t ~key =
  let m = metrics_of t.mode in
  let serve entry ip =
    charge (t.hit_overhead_ms +. t.hit_per_node_ms);
    touch t entry;
    t.hit_count <- t.hit_count + 1;
    Obs.Metrics.incr m.m_hits;
    Some ip
  in
  match Hashtbl.find_opt t.tbl key with
  | Some ({ stored = Addr_form ip; expires_at; _ } as entry)
    when expires_at > now () ->
      serve entry ip
  | Some ({ stored = Value_form (Wire.Value.Uint ip); expires_at; _ } as entry)
    when expires_at > now () ->
      (* Demand-filled by a legacy writer: already demarshalled, the
         int is read straight out of the stored value. *)
      serve entry ip
  | _ ->
      (* Not a fresh native/address entry: no miss counted — the
         caller falls through to the full [find] path, which does the
         accounting. *)
      None

(* A later successful [insert] at the same key overrides the negative
   entry (Hashtbl.replace above), so negatives cannot poison. *)
let insert_negative t ~key ~ttl_ms =
  charge t.insert_overhead_ms;
  insert_stored t ~key ~ttl_ms:(Some ttl_ms) Negative_form

(* Drop one entry (change propagation: the record was deleted at the
   source). Returns whether anything was cached under the key. *)
let remove t ~key =
  let removed = remove_key t key in
  if removed then begin
    t.invalidation_count <- t.invalidation_count + 1;
    Obs.Metrics.incr m_invalidations
  end;
  removed

(* Preload admission quota: in a bounded cache, pinned (preloaded)
   entries may occupy at most 3/4 of the capacity, reserving the rest
   for demand traffic. A preload larger than the quota keeps the
   first [quota] entries and skips the overflow — it never evicts
   what it just inserted. *)
let preload_quota t =
  match t.max_entries with
  | None -> Stdlib.max_int
  | Some max -> Stdlib.max 1 (max * 3 / 4)

(* Bulk seeding (AXFR preload / IXFR delta refresh): pinned inserts,
   counted separately so the panel can tell preloaded entries from
   demand-filled ones. *)
let preload t entries =
  let quota = preload_quota t in
  let inserted = ref 0 and skipped = ref 0 in
  List.iter
    (fun (key, ty, ttl_ms, v) ->
      let already_pinned =
        match Hashtbl.find_opt t.tbl key with
        | Some e -> e.pinned
        | None -> false
      in
      if already_pinned || t.pinned_count < quota then begin
        charge t.insert_overhead_ms;
        insert_stored t ~key ~ttl_ms:(Some ttl_ms) ~pinned:true
          (stored_of t ~ty v);
        incr inserted
      end
      else incr skipped)
    entries;
  t.preloaded_count <- t.preloaded_count + !inserted;
  Obs.Metrics.add m_preloaded !inserted;
  if !skipped > 0 then begin
    t.preload_skipped_count <- t.preload_skipped_count + !skipped;
    Obs.Metrics.add m_preload_skipped !skipped
  end;
  !inserted

(* Bulk native seeding: the prefetch-tail rows of a bundle reply,
   pinned under the same admission quota as [preload]. *)
let preload_addrs t rows =
  let quota = preload_quota t in
  let inserted = ref 0 and skipped = ref 0 in
  List.iter
    (fun (key, ttl_ms, ip) ->
      let already_pinned =
        match Hashtbl.find_opt t.tbl key with
        | Some e -> e.pinned
        | None -> false
      in
      if already_pinned || t.pinned_count < quota then begin
        charge t.insert_overhead_ms;
        insert_stored t ~key ~ttl_ms:(Some ttl_ms) ~pinned:true (Addr_form ip);
        incr inserted
      end
      else incr skipped)
    rows;
  t.preloaded_count <- t.preloaded_count + !inserted;
  Obs.Metrics.add m_preloaded !inserted;
  if !skipped > 0 then begin
    t.preload_skipped_count <- t.preload_skipped_count + !skipped;
    Obs.Metrics.add m_preload_skipped !skipped
  end;
  !inserted

let flush t =
  Hashtbl.reset t.tbl;
  t.pinned_count <- 0;
  t.hit_count <- 0;
  t.miss_count <- 0;
  t.stale_count <- 0;
  t.neg_hit_count <- 0

let hits t = t.hit_count
let misses t = t.miss_count
let stale_served t = t.stale_count
let negative_hits t = t.neg_hit_count
let lru_evictions t = t.lru_eviction_count
let preloaded t = t.preloaded_count
let preload_skipped t = t.preload_skipped_count
let pinned t = t.pinned_count
let invalidations t = t.invalidation_count
let size t = Hashtbl.length t.tbl

let stored_bytes t =
  Hashtbl.fold
    (fun _ e acc ->
      match e.stored with
      | Bytes_form b -> acc + String.length b
      | Value_form _ | Addr_form _ | Negative_form -> acc)
    t.tbl 0

let hit_ratio t =
  let total = t.hit_count + t.miss_count in
  if total = 0 then 0.0 else float_of_int t.hit_count /. float_of_int total
