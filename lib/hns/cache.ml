type mode = Marshalled | Demarshalled

type stored = Bytes_form of string | Value_form of Wire.Value.t

type entry = { stored : stored; expires_at : float }

type t = {
  mode : mode;
  generated_cost : Wire.Generic_marshal.cost_model;
  hit_overhead_ms : float;
  hit_per_node_ms : float;
  insert_overhead_ms : float;
  default_ttl_ms : float;
  staleness_budget_ms : float;
  tbl : (string, entry) Hashtbl.t;
  mutable hit_count : int;
  mutable miss_count : int;
  mutable stale_count : int;
}

(* The canonical storage representation for marshalled entries. *)
let storage_rep = Wire.Data_rep.Xdr

(* Registry instruments, split by storage mode so Table 3.2's
   marshalled-vs-demarshalled contrast shows up on the panel. *)
type mode_metrics = {
  m_hits : Obs.Metrics.counter;
  m_misses : Obs.Metrics.counter;
  m_evictions : Obs.Metrics.counter;
  m_hit_ms : Obs.Metrics.histogram;
}

let mode_metrics prefix =
  {
    m_hits = Obs.Metrics.counter (prefix ^ ".hits");
    m_misses = Obs.Metrics.counter (prefix ^ ".misses");
    m_evictions = Obs.Metrics.counter (prefix ^ ".evictions");
    m_hit_ms = Obs.Metrics.histogram (prefix ^ ".hit_ms");
  }

let marshalled_metrics = mode_metrics "hns.cache.marshalled"
let demarshalled_metrics = mode_metrics "hns.cache.demarshalled"

let m_stale_served = Obs.Metrics.counter "hns.cache.stale_served"

let metrics_of = function
  | Marshalled -> marshalled_metrics
  | Demarshalled -> demarshalled_metrics

let create ~mode
    ?(generated_cost = { Wire.Generic_marshal.per_call_ms = 0.0; per_node_ms = 0.0 })
    ?(hit_overhead_ms = 0.0) ?(hit_per_node_ms = 0.0) ?(insert_overhead_ms = 0.0)
    ?(default_ttl_ms = 3_600_000.0) ?(staleness_budget_ms = 0.0) () =
  {
    mode;
    generated_cost;
    hit_overhead_ms;
    hit_per_node_ms;
    insert_overhead_ms;
    default_ttl_ms;
    staleness_budget_ms;
    tbl = Hashtbl.create 64;
    hit_count = 0;
    miss_count = 0;
    stale_count = 0;
  }

let mode t = t.mode
let staleness_budget_ms t = t.staleness_budget_ms

(* Charge virtual time if we are inside a simulated process; cache use
   from plain test code costs nothing. *)
let charge ms =
  if ms > 0.0 then
    try Sim.Engine.sleep ms with Effect.Unhandled _ -> ()

let now () =
  try Sim.Engine.time () with Effect.Unhandled _ -> 0.0

(* Decode an entry's stored form, charging the mode-dependent hit cost.
   [None] means the entry was undecodable and has been evicted. *)
let decode_stored t ~key ~ty stored =
  match stored with
  | Value_form v ->
      charge
        (t.hit_overhead_ms
        +. (t.hit_per_node_ms *. float_of_int (Wire.Value.node_count v)));
      Some v
  | Bytes_form bytes -> (
      (* The marshalled cache really demarshals on every access,
         and pays the generated-stub price for it. *)
      charge t.hit_overhead_ms;
      match Wire.Generic_marshal.unmarshal storage_rep ty bytes with
      | exception _ ->
          Hashtbl.remove t.tbl key;
          Obs.Metrics.incr (metrics_of t.mode).m_evictions;
          None
      | v ->
          charge (Wire.Generic_marshal.cost t.generated_cost v);
          Some v)

let find t ~key ~ty =
  let m = metrics_of t.mode in
  let miss () =
    t.miss_count <- t.miss_count + 1;
    Obs.Metrics.incr m.m_misses;
    None
  in
  let hit_t0 = Obs.Metrics.now_ms () in
  match Hashtbl.find_opt t.tbl key with
  | None -> miss ()
  | Some entry when entry.expires_at <= now () ->
      (* Expired entries linger for the staleness budget — find still
         misses (the caller should refresh), but find_stale can serve
         them if that refresh fails. *)
      if now () > entry.expires_at +. t.staleness_budget_ms then begin
        Hashtbl.remove t.tbl key;
        Obs.Metrics.incr m.m_evictions
      end;
      miss ()
  | Some entry -> (
      match decode_stored t ~key ~ty entry.stored with
      | None -> miss ()
      | Some v ->
          t.hit_count <- t.hit_count + 1;
          Obs.Metrics.incr m.m_hits;
          Obs.Metrics.observe m.m_hit_ms (Obs.Metrics.now_ms () -. hit_t0);
          Some v)

let find_stale t ~key ~ty =
  match Hashtbl.find_opt t.tbl key with
  | None -> None
  | Some entry ->
      let n = now () in
      if
        entry.expires_at <= n
        && n <= entry.expires_at +. t.staleness_budget_ms
      then
        match decode_stored t ~key ~ty entry.stored with
        | None -> None
        | Some v ->
            t.stale_count <- t.stale_count + 1;
            Obs.Metrics.incr m_stale_served;
            Some v
      else None

let insert t ~key ~ty ?ttl_ms v =
  let ttl = match ttl_ms with Some ms -> ms | None -> t.default_ttl_ms in
  let stored =
    match t.mode with
    | Demarshalled -> Value_form v
    | Marshalled -> Bytes_form (Wire.Generic_marshal.marshal storage_rep ty v)
  in
  charge t.insert_overhead_ms;
  Hashtbl.replace t.tbl key { stored; expires_at = now () +. ttl }

let flush t =
  Hashtbl.reset t.tbl;
  t.hit_count <- 0;
  t.miss_count <- 0;
  t.stale_count <- 0

let hits t = t.hit_count
let misses t = t.miss_count
let stale_served t = t.stale_count
let size t = Hashtbl.length t.tbl

let stored_bytes t =
  Hashtbl.fold
    (fun _ e acc ->
      match e.stored with Bytes_form b -> acc + String.length b | Value_form _ -> acc)
    t.tbl 0

let hit_ratio t =
  let total = t.hit_count + t.miss_count in
  if total = 0 then 0.0 else float_of_int t.hit_count /. float_of_int total
