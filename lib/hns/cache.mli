(** The HNS's specialized cache.

    "We use a specialized caching scheme based on locality of
    reference to query class and name system type to provide
    acceptable performance." Keys are strings built from the mapping
    being cached (context, query class, NSM name, host name);
    invalidation is a time-to-live against the virtual clock, matching
    BIND's own mechanism — "it would not make sense to use a more
    sophisticated scheme because the source of our cached data (BIND)
    also uses this mechanism".

    The cache has two storage modes reproducing the paper's
    marshalling discovery (Table 3.2):

    - {!Marshalled}: entries hold the wire bytes; every hit re-runs
      the stub-compiler-style demarshalling (for real, via
      {!Wire.Generic_marshal}) and charges its calibrated virtual-time
      cost — 11–26 ms per hit depending on record count.
    - {!Demarshalled}: entries hold decoded values; a hit charges only
      the small cache-management cost (0.8–1.2 ms).

    Misses additionally charge a management cost on insert. All
    charges go to the virtual clock; a cache used outside a simulated
    process (engine not running) charges nothing.

    {b Serve-stale degradation.} With a nonzero [staleness_budget_ms],
    expired entries are not evicted immediately: they linger for the
    budget past their expiry. {!find} still treats them as misses —
    freshness is always preferred — but when the refresh that follows
    a miss fails (backend crashed or partitioned), {!find_stale}
    returns the expired value so resolution degrades to slightly-old
    data instead of an error. Each such answer is counted in the
    [hns.cache.stale_served] metric. *)

type mode = Marshalled | Demarshalled

type t

(** [hit_overhead_ms] is charged on every hit; demarshalled-mode hits
    additionally charge [hit_per_node_ms] per node of the stored value
    (cache management scales slightly with entry size), while
    marshalled-mode hits charge the [generated_cost] of really
    re-demarshalling the entry. *)
val create :
  mode:mode ->
  ?generated_cost:Wire.Generic_marshal.cost_model ->
  ?hit_overhead_ms:float ->
  ?hit_per_node_ms:float ->
  ?insert_overhead_ms:float ->
  ?default_ttl_ms:float ->
  ?staleness_budget_ms:float ->
  unit ->
  t

val mode : t -> mode

(** How long past expiry an entry remains servable by {!find_stale};
    0 (the default) disables serve-stale entirely. *)
val staleness_budget_ms : t -> float

(** [find t ~key ~ty] returns the cached value, charging the
    mode-dependent hit cost, or [None] (charging nothing — miss costs
    are the remote lookup the caller now performs). Expired entries
    are removed and count as misses. *)
val find : t -> key:string -> ty:Wire.Idl.ty -> Wire.Value.t option

(** [find_stale t ~key ~ty] returns an expired entry still within the
    staleness budget, charging the normal hit cost. For use only after
    a backend refresh has failed; the answer is counted in
    [hns.cache.stale_served], not as a hit. [None] when the entry is
    missing, fresh (use {!find}), or past the budget. *)
val find_stale : t -> key:string -> ty:Wire.Idl.ty -> Wire.Value.t option

(** [insert t ~key ~ty ?ttl_ms v] stores [v] (marshalling it when in
    [Marshalled] mode) and charges the insert cost. *)
val insert : t -> key:string -> ty:Wire.Idl.ty -> ?ttl_ms:float -> Wire.Value.t -> unit

val flush : t -> unit
val hits : t -> int
val misses : t -> int

(** Stale answers served by {!find_stale} since creation/flush. *)
val stale_served : t -> int

val size : t -> int

(** Sum of marshalled entry sizes (0 in demarshalled mode) — the
    "about 2KB" the paper preloads. *)
val stored_bytes : t -> int

(** Hit fraction so far; [0.] before any access. *)
val hit_ratio : t -> float
