(** The HNS's specialized cache.

    "We use a specialized caching scheme based on locality of
    reference to query class and name system type to provide
    acceptable performance." Keys are strings built from the mapping
    being cached (context, query class, NSM name, host name);
    invalidation is a time-to-live against the virtual clock, matching
    BIND's own mechanism — "it would not make sense to use a more
    sophisticated scheme because the source of our cached data (BIND)
    also uses this mechanism".

    The cache has two storage modes reproducing the paper's
    marshalling discovery (Table 3.2):

    - {!Marshalled}: entries hold the wire bytes; every hit re-runs
      the stub-compiler-style demarshalling (for real, via
      {!Wire.Generic_marshal}) and charges its calibrated virtual-time
      cost — 11–26 ms per hit depending on record count.
    - {!Demarshalled}: entries hold decoded values; a hit charges only
      the small cache-management cost (0.8–1.2 ms).

    Misses additionally charge a management cost on insert. All
    charges go to the virtual clock; a cache used outside a simulated
    process (engine not running) charges nothing.

    {b Serve-stale degradation.} With a nonzero [staleness_budget_ms],
    expired entries are not evicted immediately: they linger for the
    budget past their expiry. {!find} still treats them as misses —
    freshness is always preferred — but when the refresh that follows
    a miss fails (backend crashed or partitioned), {!find_stale}
    returns the expired value so resolution degrades to slightly-old
    data instead of an error. Each such answer is counted in the
    [hns.cache.stale_served] metric.

    {b Negative caching.} {!insert_negative} records that a lookup
    found {e nothing}, with its own (short) TTL. A later {!find} on
    that key is a {!Negative_hit}: the caller can fail fast without a
    round trip. Negative entries never poison — a positive
    {!insert} at the same key simply overwrites them, they are never
    served stale, and they disappear at TTL expiry. Counted in
    [hns.cache.neg_hits].

    {b Capacity bound.} With [max_entries] set, inserting a new key
    into a full cache first evicts the least-recently-used entry
    (counted in [hns.cache.evictions]). The default is unbounded,
    matching the prototype's "whole meta zone fits in ~2KB" regime;
    the bound matters once AXFR preloading pulls in entire zones.

    {b Preload-aware admission.} Entries seeded by {!preload} are
    {e pinned}: the LRU scan passes over them, so demand churn in a
    bounded cache cannot wash out a zone snapshot that cost a
    transfer. In exchange preloads respect a quota — pinned entries
    may hold at most 3/4 of [max_entries]; overflow rows are skipped
    (counted in [hns.cache.preload_skipped]) rather than inserted
    only to evict each other. *)

type mode = Marshalled | Demarshalled

type t

(** [hit_overhead_ms] is charged on every hit; demarshalled-mode hits
    additionally charge [hit_per_node_ms] per node of the stored value
    (cache management scales slightly with entry size), while
    marshalled-mode hits charge the [generated_cost] of really
    re-demarshalling the entry. With [hand_cost] set, marshalled-mode
    hits on hot record shapes demarshal through the hand codec
    ({!Hot_codec}) and charge its much smaller cost instead; unknown
    shapes still fall back to the generated path. *)
val create :
  mode:mode ->
  ?generated_cost:Wire.Generic_marshal.cost_model ->
  ?hand_cost:Wire.Hotcodec.cost_model ->
  ?hit_overhead_ms:float ->
  ?hit_per_node_ms:float ->
  ?insert_overhead_ms:float ->
  ?default_ttl_ms:float ->
  ?staleness_budget_ms:float ->
  ?max_entries:int ->
  unit ->
  t

val mode : t -> mode

(** The LRU capacity bound, if any. *)
val max_entries : t -> int option

(** How long past expiry an entry remains servable by {!find_stale};
    0 (the default) disables serve-stale entirely. *)
val staleness_budget_ms : t -> float

(** [find t ~key ~ty] returns the cached value, charging the
    mode-dependent hit cost, or [None] (charging nothing — miss costs
    are the remote lookup the caller now performs). Expired entries
    are removed and count as misses. *)
val find : t -> key:string -> ty:Wire.Idl.ty -> Wire.Value.t option

(** Three-way lookup result distinguishing a cached absence from an
    ordinary miss. *)
type outcome = Hit of Wire.Value.t | Negative_hit | Miss

(** Like {!find} but reporting negative entries explicitly. A
    [Negative_hit] charges only [hit_overhead_ms] (nothing to decode)
    and counts in [hns.cache.neg_hits], not in {!hits}. *)
val find_outcome : t -> key:string -> ty:Wire.Idl.ty -> outcome

(** [peek t ~key] is true when a fresh {e positive} entry is cached
    under [key]. Charges no virtual time and moves no counter — an
    instrumentation-free probe for "would the walk hit?", used to
    decide whether a bundle round trip is worth issuing. *)
val peek : t -> key:string -> bool

(** As {!peek}, but true when a fresh {e negative} entry is cached. *)
val peek_negative : t -> key:string -> bool

(** [find_stale t ~key ~ty] returns an expired entry still within the
    staleness budget, charging the normal hit cost. For use only after
    a backend refresh has failed; the answer is counted in
    [hns.cache.stale_served], not as a hit. [None] when the entry is
    missing, fresh (use {!find}), or past the budget. *)
val find_stale : t -> key:string -> ty:Wire.Idl.ty -> Wire.Value.t option

(** [insert t ~key ~ty ?ttl_ms v] stores [v] (marshalling it when in
    [Marshalled] mode) and charges the insert cost. *)
val insert : t -> key:string -> ty:Wire.Idl.ty -> ?ttl_ms:float -> Wire.Value.t -> unit

(** [insert_negative t ~key ~ttl_ms] records a cached absence. A later
    positive {!insert} at the same key overwrites it (no poisoning). *)
val insert_negative : t -> key:string -> ttl_ms:float -> unit

(** {2 Native host-address entries (zero-copy prefetch tail)}

    A prefetch-tail HostAddress row hand-decoded straight off the wire
    is stored as a bare [int32] — no [Value] tree on insert, none on
    hit. {!find} still serves such entries to legacy readers by
    materialising the [Uint] on access (counted in
    [wire.codec.value_materializations]). *)

(** [insert_addr t ~key ?ttl_ms ip] stores a native address entry. *)
val insert_addr : t -> key:string -> ?ttl_ms:float -> int32 -> unit

(** [find_addr t ~key] serves a fresh address entry natively, charging
    the demarshalled hit cost. Also reads demand-filled
    [Value.Uint] entries without new allocation. [None] means "fall
    through to {!find}" and counts no miss. *)
val find_addr : t -> key:string -> int32 option

(** [preload_addrs t rows] bulk-seeds [(key, ttl_ms, ip)] native
    address rows, pinned under the same admission quota as
    {!preload}. Returns the number inserted. *)
val preload_addrs : t -> (string * float * int32) list -> int

(** [remove t ~key] drops the entry cached under [key] — the
    invalidation path of delta-driven refresh (the record was deleted
    at the source). Returns whether anything was cached. Counted in
    [hns.cache.invalidations]. *)
val remove : t -> key:string -> bool

(** [preload t entries] bulk-inserts [(key, ty, ttl_ms, value)] rows —
    the AXFR seeding and IXFR delta-refresh path — counting them in
    [hns.cache.preloaded]. The rows are {e pinned} (exempt from LRU
    eviction) up to the admission quota; overflow is skipped. Returns
    the number inserted. *)
val preload :
  t -> (string * Wire.Idl.ty * float * Wire.Value.t) list -> int

val flush : t -> unit
val hits : t -> int
val misses : t -> int

(** Stale answers served by {!find_stale} since creation/flush. *)
val stale_served : t -> int

(** Negative hits served since creation/flush. *)
val negative_hits : t -> int

(** Entries evicted by the [max_entries] LRU bound since creation. *)
val lru_evictions : t -> int

(** Entries seeded via {!preload} since creation. *)
val preloaded : t -> int

(** Preload rows skipped by the admission quota since creation. *)
val preload_skipped : t -> int

(** Currently-pinned (preload-sourced) entries. *)
val pinned : t -> int

(** Entries dropped via {!remove} since creation. *)
val invalidations : t -> int

val size : t -> int

(** Sum of marshalled entry sizes (0 in demarshalled mode) — the
    "about 2KB" the paper preloads. *)
val stored_bytes : t -> int

(** Hit fraction so far; [0.] before any access. *)
val hit_ratio : t -> float
