type t = {
  stack_ : Transport.Netstack.stack;
  meta_ : Meta_client.t;
  finder_ : Find_nsm.t;
  rpc_policy : Rpc.Control.retry_policy option;
}

let create stack ~meta_server ?fallback_servers ?replica_set ?read_your_writes
    ?cache ?generated_cost ?hand_codec ?hand_preload_record_ms
    ?preload_record_ms ?mapping_overhead_ms ?enable_bundle ?negative_ttl_ms
    ?rpc_policy () =
  let cache =
    match cache with
    | Some c -> c
    | None -> Cache.create ~mode:Cache.Demarshalled ()
  in
  let meta =
    Meta_client.create stack ~meta_server ?fallback_servers ?replica_set
      ?read_your_writes ~cache ?generated_cost ?hand_codec
      ?hand_preload_record_ms ?preload_record_ms ?mapping_overhead_ms
      ?enable_bundle ?negative_ttl_ms ?policy:rpc_policy ()
  in
  { stack_ = stack; meta_ = meta; finder_ = Find_nsm.create ~meta (); rpc_policy }

let stack t = t.stack_
let meta t = t.meta_
let finder t = t.finder_
let cache t = Meta_client.cache t.meta_
let link_hostaddr_nsm t ~name impl = Find_nsm.link_hostaddr_nsm t.finder_ ~name impl
let find_nsm t ~context ~query_class = Find_nsm.find t.finder_ ~context ~query_class

let m_resolves = Obs.Metrics.counter "hns.client.resolves"
let m_resolve_errors = Obs.Metrics.counter "hns.client.resolve_errors"

(* Per-query-class latency: one histogram per class, named
   hns.client.resolve_ms.<class>. Resolved per call — the class set is
   tiny and the registry lookup is one hashtable probe. *)
let resolve_ms_hist query_class =
  Obs.Metrics.histogram
    ("hns.client.resolve_ms." ^ String.lowercase_ascii query_class)

(* Errors meaning "that NSM is unreachable" — worth trying an
   alternate. Application-level errors (not-found, protocol) are
   returned as-is: another NSM would answer the same way. *)
let unreachable = function
  | Errors.Rpc_error (Rpc.Control.Timeout _ | Rpc.Control.Refused) -> true
  | _ -> false

let resolve t ~query_class ~payload_ty ?(service = "") hns_name =
  Obs.Metrics.incr m_resolves;
  Obs.Qlog.with_query ~name:(Hns_name.to_string hns_name) ~query_class (fun () ->
  Obs.Metrics.time (resolve_ms_hist query_class) (fun () ->
      let t0 = Obs.Metrics.now_ms () in
      let call_nsm binding =
        Nsm_intf.call ?policy:t.rpc_policy t.stack_ (Nsm_intf.Remote binding)
          ~payload_ty ~service ~hns_name
      in
      let result =
        Obs.Span.with_span "resolve"
          ~attrs:(fun () ->
            [ ("name", Hns_name.to_string hns_name); ("query_class", query_class) ])
          (fun () ->
            (* The resolve span roots this query's trace; patch it onto
               the flight record (which opened before the span did). *)
            Obs.Qlog.note_trace (Obs.Span.current_trace ());
            let answer =
            match find_nsm t ~context:hns_name.Hns_name.context ~query_class with
            | Error _ as e -> e
            | Ok resolved -> (
                (* Resolve-tail short circuit: on the bundle path the
                   FindNSM above may have just prefetched (or an
                   earlier walk cached) this very host's address —
                   answer from the shared cache and skip the trailing
                   remote NSM data round trip. Gated on the bundle so
                   legacy configurations keep the paper's two-phase
                   resolve shape. *)
                let cached_addr =
                  if
                    query_class = Query_class.host_address
                    && service = ""
                    && Meta_client.bundle_enabled t.meta_
                  then
                    Meta_client.cached_host_addr t.meta_
                      ~context:hns_name.Hns_name.context
                      ~host:hns_name.Hns_name.name
                  else None
                in
                match cached_addr with
                | Some ip ->
                    Obs.Span.add_attr "addr_cache" "true";
                    Ok (Some (Wire.Value.Uint ip))
                | None ->
                    let outcome =
                      match call_nsm resolved.Find_nsm.binding with
                      | Error primary_err when unreachable primary_err ->
                          (* Designated NSM is down or cut off: fail over
                             across the registered alternates. *)
                          let rec try_alternates = function
                            | [] -> Error primary_err
                            | (alt : Find_nsm.resolved) :: rest -> (
                                Find_nsm.note_failover ();
                                Obs.Qlog.note_outcome Obs.Qlog.Failover;
                                Obs.Span.add_attr "failover" alt.Find_nsm.nsm_name;
                                match call_nsm alt.Find_nsm.binding with
                                | Error e when unreachable e -> try_alternates rest
                                | outcome -> outcome)
                          in
                          try_alternates
                            (Find_nsm.failover_candidates t.finder_ resolved
                               ~query_class)
                      | outcome -> outcome
                    in
                    (* Demand-fill the shared address cache on the
                       bundle path, exactly as a prefetched hint would
                       have: repeat resolves of the same host answer
                       from the cache until TTL expiry or a flush,
                       instead of re-paying the NSM round trip. *)
                    (match outcome with
                    | Ok (Some (Wire.Value.Uint ip))
                      when query_class = Query_class.host_address
                           && service = ""
                           && Meta_client.bundle_enabled t.meta_ ->
                        Meta_client.cache_host_addr t.meta_
                          ~context:hns_name.Hns_name.context
                          ~host:hns_name.Hns_name.name ip
                    | _ -> ());
                    outcome)
            in
            (* Observed inside the span so a breach's exemplar can
               capture this query's trace id. *)
            Obs.Slo.observe
              (Obs.Slo.get_or_create "resolve")
              ~ok:(Result.is_ok answer)
              (Obs.Metrics.now_ms () -. t0);
            answer)
      in
      (match result with
      | Error e ->
          Obs.Metrics.incr m_resolve_errors;
          Obs.Qlog.note_error (Errors.to_string e)
      | Ok _ -> ());
      result))

let preload t = Meta_client.preload t.meta_

let start_preload_refresher ?interval_ms t =
  Meta_client.start_preload_refresher ?interval_ms t.meta_

let flush_cache t = Cache.flush (cache t)
