type t = {
  stack_ : Transport.Netstack.stack;
  meta_ : Meta_client.t;
  finder_ : Find_nsm.t;
}

let create stack ~meta_server ?fallback_servers ?cache ?generated_cost
    ?preload_record_ms ?mapping_overhead_ms () =
  let cache =
    match cache with
    | Some c -> c
    | None -> Cache.create ~mode:Cache.Demarshalled ()
  in
  let meta =
    Meta_client.create stack ~meta_server ?fallback_servers ~cache ?generated_cost
      ?preload_record_ms ?mapping_overhead_ms ()
  in
  { stack_ = stack; meta_ = meta; finder_ = Find_nsm.create ~meta () }

let stack t = t.stack_
let meta t = t.meta_
let finder t = t.finder_
let cache t = Meta_client.cache t.meta_
let link_hostaddr_nsm t ~name impl = Find_nsm.link_hostaddr_nsm t.finder_ ~name impl
let find_nsm t ~context ~query_class = Find_nsm.find t.finder_ ~context ~query_class

let m_resolves = Obs.Metrics.counter "hns.client.resolves"
let m_resolve_errors = Obs.Metrics.counter "hns.client.resolve_errors"

(* Per-query-class latency: one histogram per class, named
   hns.client.resolve_ms.<class>. Resolved per call — the class set is
   tiny and the registry lookup is one hashtable probe. *)
let resolve_ms_hist query_class =
  Obs.Metrics.histogram
    ("hns.client.resolve_ms." ^ String.lowercase_ascii query_class)

let resolve t ~query_class ~payload_ty ?(service = "") hns_name =
  Obs.Metrics.incr m_resolves;
  Obs.Metrics.time (resolve_ms_hist query_class) (fun () ->
      let result =
        Obs.Span.with_span "resolve"
          ~attrs:
            [ ("name", Hns_name.to_string hns_name); ("query_class", query_class) ]
          (fun () ->
            match find_nsm t ~context:hns_name.Hns_name.context ~query_class with
            | Error _ as e -> e
            | Ok resolved ->
                Nsm_intf.call t.stack_ (Nsm_intf.Remote resolved.Find_nsm.binding)
                  ~payload_ty ~service ~hns_name)
      in
      (match result with Error _ -> Obs.Metrics.incr m_resolve_errors | Ok _ -> ());
      result)

let preload t = Meta_client.preload t.meta_
let flush_cache t = Cache.flush (cache t)
