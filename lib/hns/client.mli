(** The HNS itself: "a collection of library routines" that any
    process can link — a client program, an agent process, or a
    dedicated server. One [t] owns a cache, a meta-naming client, and
    the FindNSM machinery; where you instantiate it is the colocation
    choice ({!Import} exercises the five arrangements of Table 3.1). *)

type t

(** [rpc_policy] governs retries (escalating timeouts, jittered
    backoff) for every HRPC exchange this instance makes — meta-BIND
    queries and NSM calls alike. [enable_bundle] turns on the batched
    FindNSM meta query (requires a bundle-aware meta server;
    {!Meta_bundle}); [negative_ttl_ms] turns on negative caching of
    "no such record" meta answers. Both default off. [hand_codec]
    switches the hot record shapes (bundle markers, prefetch-tail
    addresses, journal deltas) onto the hand-marshalled codec at the
    given cost model, with [hand_preload_record_ms] as the matching
    zone-transfer per-record cost; see {!Meta_client.create}. *)
val create :
  Transport.Netstack.stack ->
  meta_server:Transport.Address.t ->
  ?fallback_servers:Transport.Address.t list ->
  ?replica_set:Dns.Replica_set.t ->
  ?read_your_writes:bool ->
  ?cache:Cache.t ->
  ?generated_cost:Wire.Generic_marshal.cost_model ->
  ?hand_codec:Wire.Hotcodec.cost_model ->
  ?hand_preload_record_ms:float ->
  ?preload_record_ms:float ->
  ?mapping_overhead_ms:float ->
  ?enable_bundle:bool ->
  ?negative_ttl_ms:float ->
  ?rpc_policy:Rpc.Control.retry_policy ->
  unit ->
  t

val stack : t -> Transport.Netstack.stack
val meta : t -> Meta_client.t
val finder : t -> Find_nsm.t
val cache : t -> Cache.t

(** Link a host-address NSM instance with this HNS (required before
    FindNSM can complete bindings for hosts named in that NSM's name
    service). *)
val link_hostaddr_nsm : t -> name:string -> Nsm_intf.impl -> unit

(** The primary HNS call. *)
val find_nsm :
  t -> context:string -> query_class:Query_class.t -> (Find_nsm.resolved, Errors.t) result

(** Full client query: FindNSM, then call the designated NSM remotely.
    [Ok None] when the underlying name service has no such name. When
    the designated NSM is unreachable (timeout/refused), the call
    fails over across the alternates registered for the (name service,
    query class) pair before reporting the primary's error. *)
val resolve :
  t ->
  query_class:Query_class.t ->
  payload_ty:Wire.Idl.ty ->
  ?service:string ->
  Hns_name.t ->
  (Wire.Value.t option, Errors.t) result

(** Preload the cache with the meta zone (BIND zone transfer); returns
    the number of mappings seeded. *)
val preload : t -> (int, Errors.t) result

(** Keep a preloaded cache fresh: spawn a background process (call
    from inside the simulation) that re-preloads whenever the meta
    zone's SOA serial advances, checking on the zone's refresh
    interval (or [interval_ms]). Returns a stop closure; invoke it
    within the simulation. See
    {!Meta_client.start_preload_refresher}. *)
val start_preload_refresher : ?interval_ms:float -> t -> unit -> unit

val flush_cache : t -> unit
