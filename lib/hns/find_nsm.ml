type resolved = { ns_name : string; nsm_name : string; binding : Hrpc.Binding.t }

type t = {
  meta_ : Meta_client.t;
  linked_hostaddr : (string, Nsm_intf.impl) Hashtbl.t;
  (* Singleflight table: concurrent FindNSMs for the same (context,
     query class) share one in-flight lookup instead of stampeding the
     meta server. Keyed within this HNS instance only. *)
  inflight :
    (string, (resolved, Errors.t) result Sim.Engine.Ivar.ivar * Obs.Span.id)
    Hashtbl.t;
      (* ivar plus the leader's trace id, so coalesced followers can
         cross-reference the trace that did the real work *)
}

let m_calls = Obs.Metrics.counter "hns.find_nsm.calls"
let m_errors = Obs.Metrics.counter "hns.find_nsm.errors"
let m_ms = Obs.Metrics.histogram "hns.find_nsm.ms"
let m_failovers = Obs.Metrics.counter "hns.find_nsm.failovers"
let m_coalesced = Obs.Metrics.counter "hns.find_nsm.coalesced"

let note_failover () = Obs.Metrics.incr m_failovers

let create ~meta () =
  { meta_ = meta; linked_hostaddr = Hashtbl.create 8; inflight = Hashtbl.create 4 }

let meta t = t.meta_

let link_hostaddr_nsm t ~name impl =
  Meta_schema.validate_simple_name ~what:"Find_nsm.link_hostaddr_nsm" name;
  Hashtbl.replace t.linked_hostaddr name impl

(* Mapping 1 (and 4): context -> name-service name. *)
let context_to_ns t context =
  Obs.Span.with_span "ctx_to_ns" ~attrs:(fun () -> [ ("context", context) ]) (fun () ->
      match
        Meta_client.lookup t.meta_ ~key:(Meta_schema.context_key context)
          ~ty:Meta_schema.string_ty
      with
      | Error _ as e -> e
      | Ok None -> Error (Errors.Unknown_context context)
      | Ok (Some v) ->
          let ns = Wire.Value.get_str v in
          Obs.Span.add_attr "ns" ns;
          Ok ns)

(* Mapping 2 (and 5): (ns, query class) -> NSM name. *)
let ns_to_nsm t ~ns ~query_class =
  Obs.Span.with_span "ns_to_nsm"
    ~attrs:(fun () -> [ ("ns", ns); ("query_class", query_class) ])
    (fun () ->
      match
        Meta_client.lookup t.meta_
          ~key:(Meta_schema.nsm_name_key ~ns ~query_class)
          ~ty:Meta_schema.string_ty
      with
      | Error _ as e -> e
      | Ok None -> Error (Errors.No_nsm { ns; query_class })
      | Ok (Some v) ->
          let nsm = Wire.Value.get_str v in
          Obs.Span.add_attr "nsm" nsm;
          Ok nsm)

(* Mapping 3: NSM name -> binding information (with a host name). *)
let nsm_to_info t nsm_name =
  Obs.Span.with_span "nsm_to_binding" ~attrs:(fun () -> [ ("nsm", nsm_name) ]) (fun () ->
      match
        Meta_client.lookup t.meta_
          ~key:(Meta_schema.nsm_binding_key nsm_name)
          ~ty:Meta_schema.nsm_info_ty
      with
      | Error _ as e -> e
      | Ok None -> Error (Errors.Unknown_nsm nsm_name)
      | Ok (Some v) -> Ok (Meta_schema.nsm_info_of_value v))

(* Mappings 4-6: host name in a context -> network address. All three
   mappings are always consulted (cheaply, as cache hits on the warm
   path): the paper counts six data mappings per FindNSM regardless of
   cache state. *)
let resolve_host t ~context ~host =
  Obs.Span.with_span "resolve_host"
    ~attrs:(fun () -> [ ("context", context); ("host", host) ])
    (fun () ->
      match context_to_ns t context with
      | Error _ as e -> e
      | Ok ns -> (
          match ns_to_nsm t ~ns ~query_class:Query_class.host_address with
          | Error _ as e -> e
          | Ok hostaddr_nsm ->
              Obs.Span.with_span "host_to_addr" ~attrs:(fun () -> [ ("host", host) ]) (fun () ->
                  (* mapping six's HNS overhead is charged inside
                     [cached_host_addr] so the walk log accounts it *)
                  match Meta_client.cached_host_addr t.meta_ ~context ~host with
                  | Some ip -> Ok ip
                  | None -> (
                      match Hashtbl.find_opt t.linked_hostaddr hostaddr_nsm with
                      | None ->
                          Error
                            (Errors.Meta_error
                               (Printf.sprintf
                                  "host-address NSM %S is not linked with this HNS \
                                   instance"
                                  hostaddr_nsm))
                      | Some impl -> (
                          let hns_name = Hns_name.make ~context ~name:host in
                          match Nsm_intf.call_linked impl ~service:"" ~hns_name with
                          | Error _ as e -> e
                          | Ok None -> Error (Errors.Name_not_found hns_name)
                          | Ok (Some (Wire.Value.Uint ip)) ->
                              Meta_client.cache_host_addr t.meta_ ~context ~host ip;
                              Ok ip
                          | Ok (Some v) ->
                              Error
                                (Errors.Nsm_error
                                   ("host-address NSM returned "
                                  ^ Wire.Value.to_string v)))))))

(* Mapping 6 onward for a known binding record: resolve the host and
   assemble the callable binding. *)
let finish_resolution t ~ns_name ~nsm_name (info : Meta_schema.nsm_info) =
  match
    resolve_host t ~context:info.Meta_schema.nsm_host_context
      ~host:info.Meta_schema.nsm_host
  with
  | Error _ as e -> e
  | Ok ip ->
      let binding =
        Hrpc.Binding.make ~suite:info.Meta_schema.nsm_suite
          ~server:(Transport.Address.make ip info.Meta_schema.nsm_port)
          ~prog:info.Meta_schema.nsm_prog
          ~vers:info.Meta_schema.nsm_vers
      in
      Ok { ns_name; nsm_name; binding }

(* Mappings 3-6 for one named NSM: binding info, then its host's
   address, combined into a callable binding. *)
let resolved_of_nsm t ~ns_name nsm_name =
  match nsm_to_info t nsm_name with
  | Error _ as e -> e
  | Ok info -> finish_resolution t ~ns_name ~nsm_name info

(* One full FindNSM. The batched meta query answers mappings 1-3 in a
   single round trip when available; otherwise (bundle disabled, old
   server, already warm) the per-mapping walk runs as before. Either
   way mappings 4-6 resolve the NSM's host — on the bundle path those
   run against the records the bundle just cached. *)
let do_find t ~context ~query_class =
  Obs.Span.with_span "find_nsm"
    ~attrs:(fun () -> [ ("context", context); ("query_class", query_class) ])
    (fun () ->
      match Meta_client.find_nsm_bundle t.meta_ ~context ~query_class with
      | Meta_client.Bundle_negative e -> Error e
      | Meta_client.Bundle_resolved { ns; nsm; info } ->
          Obs.Span.add_attr "bundle" "true";
          finish_resolution t ~ns_name:ns ~nsm_name:nsm info
      | Meta_client.Bundle_unavailable -> (
          match context_to_ns t context with
          | Error _ as e -> e
          | Ok ns_name -> (
              match ns_to_nsm t ~ns:ns_name ~query_class with
              | Error _ as e -> e
              | Ok nsm_name -> resolved_of_nsm t ~ns_name nsm_name)))

(* [fill] schedules reader wake-ups, an engine operation; outside the
   simulation there are no waiters to wake, so a failed fill is moot. *)
let safe_fill iv v =
  try ignore (Sim.Engine.Ivar.fill_if_empty iv v)
  with Effect.Unhandled _ -> ()

let coalesce_key ~context ~query_class = context ^ "\x00" ^ query_class

let find t ~context ~query_class =
  Obs.Metrics.incr m_calls;
  Obs.Metrics.time m_ms (fun () ->
      let key = coalesce_key ~context ~query_class in
      let result =
        match Hashtbl.find_opt t.inflight key with
        | Some (iv, leader_trace) ->
            (* An identical FindNSM is already in flight: wait for its
               answer instead of repeating the lookups. The follower's
               flight record links the leader's trace — the tree that
               shows where the shared wait actually went. *)
            Obs.Metrics.incr m_coalesced;
            Obs.Qlog.note_link leader_trace;
            Obs.Span.with_span "find_nsm_coalesced"
              ~attrs:(fun () ->
                [
                  ("context", context);
                  ("query_class", query_class);
                  ("leader_trace", Printf.sprintf "%08x" leader_trace);
                ])
              (fun () -> Sim.Engine.Ivar.read iv)
        | None ->
            let iv = Sim.Engine.Ivar.create () in
            Hashtbl.replace t.inflight key (iv, Obs.Span.current_trace ());
            Fun.protect
              ~finally:(fun () ->
                (* Entry removed before we return: sequential callers
                   never observe coalescing. The backstop fill only
                   matters if do_find raised. *)
                Hashtbl.remove t.inflight key;
                safe_fill iv
                  (Error (Errors.Meta_error "coalesced FindNSM leader failed")))
              (fun () ->
                let r = do_find t ~context ~query_class in
                safe_fill iv r;
                r)
      in
      (match result with Error _ -> Obs.Metrics.incr m_errors | Ok _ -> ());
      result)

(* The registered alternates for (ns, query class); [] when the meta
   database has no record or is unreachable — failover is best-effort
   and must not add failure modes of its own. *)
let alternates t ~ns ~query_class =
  match
    Meta_client.lookup t.meta_
      ~key:(Meta_schema.nsm_alternates_key ~ns ~query_class)
      ~ty:Meta_schema.nsm_alternates_ty
  with
  | Error _ | Ok None -> []
  | Ok (Some v) -> (
      match v with
      | Wire.Value.Array items ->
          List.filter_map
            (fun item ->
              match item with Wire.Value.Str s -> Some s | _ -> None)
            items
      | _ -> [])

let failover_candidates t resolved ~query_class =
  alternates t ~ns:resolved.ns_name ~query_class
  |> List.filter (fun nsm -> nsm <> resolved.nsm_name)
  |> List.filter_map (fun nsm_name ->
         match resolved_of_nsm t ~ns_name:resolved.ns_name nsm_name with
         | Error _ -> None
         | Ok r -> Some r)
