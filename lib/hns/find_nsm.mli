(** FindNSM: the primary HNS function.

    Maps (context, query class) to the HRPC binding of the NSM that
    can answer, via the paper's sequence of mappings:

    + context → name-service name
    + (name-service name, query class) → NSM name
    + NSM name → binding information — which holds the NSM's host
      {e name}, so completing it is itself an HNS naming operation:
    + (host's context) → name-service name
    + (that name service, HostAddress) → host-address NSM name
    + host name → network address, via a host-address NSM {e linked
      directly with the HNS} ("further recursion is avoided by linking
      instances of the NSMs that perform this mapping directly with
      the HNS, so that their network addresses need not be found").

    Six data mappings; each is a remote call on a cache miss, which is
    why caching dominates colocation in Table 3.1.

    Two cold-path optimizations live here:

    - {b Batched meta query.} When the meta client has bundles enabled
      and the meta server supports them, mappings 1–3 collapse into a
      single round trip ({!Meta_client.find_nsm_bundle}); the reply
      also carries the records behind mappings 4–5, so a cold FindNSM
      costs one meta exchange plus the host-address NSM call. Old
      servers answer NXDOMAIN and the per-mapping walk runs unchanged.
    - {b Request coalescing.} Concurrent {!find}s for the same
      (context, query class) on one instance share a single in-flight
      lookup (a singleflight table): followers block on the leader's
      answer instead of stampeding the meta server, counted in
      [hns.find_nsm.coalesced]. Sequential callers are unaffected —
      the table entry is removed before the leader returns. *)

type resolved = {
  ns_name : string;       (** which name service owns the context *)
  nsm_name : string;      (** which NSM was designated *)
  binding : Hrpc.Binding.t;  (** how to call it *)
}

type t

val create : meta:Meta_client.t -> unit -> t

val meta : t -> Meta_client.t

(** Link a host-address NSM instance under its registered NSM name. *)
val link_hostaddr_nsm : t -> name:string -> Nsm_intf.impl -> unit

(** The FindNSM call. *)
val find :
  t -> context:string -> query_class:Query_class.t -> (resolved, Errors.t) result

(** Mappings 4–6 on their own (also used by FindNSM internally):
    resolve a host name in a context to an address, through the
    linked host-address NSMs, caching the result. *)
val resolve_host :
  t -> context:string -> host:string -> (Transport.Address.ip, Errors.t) result

(** {1 Failover}

    The meta database may register alternate NSMs for a
    (name service, query class) pair ({!Meta_schema.nsm_alternates_key}).
    When a call on the designated NSM's binding fails, the client
    resolves each alternate in turn — each attempt counted in the
    [hns.find_nsm.failovers] metric. *)

(** Resolve every registered alternate for [resolved]'s name service
    and [query_class], excluding [resolved] itself. Alternates that
    cannot currently be resolved (e.g. their host is down too) are
    silently skipped; an unreachable meta database yields []. *)
val failover_candidates :
  t -> resolved -> query_class:Query_class.t -> resolved list

(** Count one failover attempt in [hns.find_nsm.failovers]. *)
val note_failover : unit -> unit
