(* Hand-coded encoders/decoders for the hot HNS record shapes, in the
   style of Dns.Msg: straight-line Bytebuf reads and writes, no
   intermediate Value tree on the paths that matter, buffer reuse via
   Wire.Hotcodec's pool.  Every wire form here is byte-identical to
   what Generic_marshal/Xdr produce for the same record, so old
   servers (and the Marshalled cache mode, which stores XDR bytes)
   interop unchanged — heterogeneity keeps its fallback. *)

module W = Wire.Bytebuf.Wr
module R = Wire.Bytebuf.Rd
module H = Wire.Hotcodec

let pool = H.shared_pool

(* Run a hand encoder on a pooled writer; returns the wire string and
   counts it. *)
let encoded f =
  H.with_wr pool (fun w ->
      f w;
      let s = W.contents w in
      H.count_encode ~bytes:(String.length s);
      s)

(* Run a hand decoder over [bytes], enforcing the same
   "no trailing bytes" contract as Xdr.of_string.  Any shape mismatch
   yields None so the caller can fall back to Generic_marshal. *)
let decoded bytes f =
  let r = R.of_string bytes in
  match f r with
  | v ->
      if R.at_end r then begin
        H.count_decode ~bytes:(String.length bytes);
        Some v
      end
      else None
  | exception Wire.Bytebuf.Truncated -> None

(* --- scalar shapes -------------------------------------------------- *)

let encode_string s = encoded (fun w -> H.put_string32 w s)
let decode_string bytes = decoded bytes H.get_string32

(* The prefetch-tail HostAddress row: a bare XDR uint.  The decode is
   the zero-copy centrepiece — four bytes to an int32, straight into a
   native cache entry, no Value. *)
let encode_host_addr ip = encoded (fun w -> H.put_u32 w ip)
let decode_host_addr bytes = decoded bytes H.get_u32

let encode_bundle_status st =
  encoded (fun w ->
      let e =
        match st with
        | Meta_schema.B_ok -> 0l
        | B_no_context -> 1l
        | B_no_nsm -> 2l
        | B_no_binding -> 3l
      in
      H.put_u32 w e)

let decode_bundle_status bytes =
  Option.bind (decoded bytes H.get_u32) (function
    | 0l -> Some Meta_schema.B_ok
    | 1l -> Some Meta_schema.B_no_context
    | 2l -> Some Meta_schema.B_no_nsm
    | 3l -> Some Meta_schema.B_no_binding
    | _ -> None)

(* --- record shapes -------------------------------------------------- *)

let put_int w n = W.u32 w (Int32.of_int n)
let get_int r = Int32.to_int (R.u32 r)

let encode_nsm_info (i : Meta_schema.nsm_info) =
  encoded (fun w ->
      H.put_string32 w i.nsm_host;
      H.put_string32 w i.nsm_host_context;
      put_int w i.nsm_port;
      put_int w i.nsm_prog;
      put_int w i.nsm_vers;
      put_int w
        (match i.nsm_suite.Hrpc.Component.data_rep with
        | Wire.Data_rep.Xdr -> 0
        | Courier -> 1);
      put_int w
        (match i.nsm_suite.Hrpc.Component.transport with
        | Hrpc.Component.T_udp -> 0
        | T_tcp -> 1);
      put_int w
        (match i.nsm_suite.Hrpc.Component.control with
        | Hrpc.Component.C_sunrpc -> 0
        | C_courier -> 1
        | C_raw -> 2))

(* Demarshal straight into the schema record — the form FindNSM
   actually consumes — with no Value tree in between. *)
let decode_nsm_info bytes =
  decoded bytes (fun r ->
      let nsm_host = H.get_string32 r in
      let nsm_host_context = H.get_string32 r in
      let nsm_port = get_int r in
      let nsm_prog = get_int r in
      let nsm_vers = get_int r in
      let data_rep =
        match get_int r with 0 -> Wire.Data_rep.Xdr | _ -> Courier
      in
      let transport =
        match get_int r with 0 -> Hrpc.Component.T_udp | _ -> T_tcp
      in
      let control =
        match get_int r with
        | 0 -> Hrpc.Component.C_sunrpc
        | 1 -> C_courier
        | _ -> C_raw
      in
      {
        Meta_schema.nsm_host;
        nsm_host_context;
        nsm_port;
        nsm_prog;
        nsm_vers;
        nsm_suite = { Hrpc.Component.data_rep; transport; control };
      })

let encode_ns_info (i : Meta_schema.ns_info) =
  encoded (fun w ->
      H.put_string32 w i.ns_type;
      H.put_string32 w i.ns_host;
      H.put_string32 w i.ns_host_context;
      put_int w i.ns_port)

let decode_ns_info bytes =
  decoded bytes (fun r ->
      let ns_type = H.get_string32 r in
      let ns_host = H.get_string32 r in
      let ns_host_context = H.get_string32 r in
      let ns_port = get_int r in
      { Meta_schema.ns_type; ns_host; ns_host_context; ns_port })

let encode_alternates names =
  encoded (fun w ->
      put_int w (List.length names);
      List.iter (H.put_string32 w) names)

let decode_alternates bytes =
  decoded bytes (fun r ->
      let n = get_int r in
      if n < 0 || n > 65_536 then raise Wire.Bytebuf.Truncated;
      List.init n (fun _ -> H.get_string32 r))

(* --- Value-level dispatch ------------------------------------------- *)

(* The meta client's cache stores demarshalled entries as Value trees
   (except host addresses, which get a native form).  For the hot
   shapes we hand-lower the decode — a flat run of reads building the
   final cached Value directly, skipping Generic_marshal's
   closure-per-type-node interpreter.  Unknown shapes return None and
   the caller falls back (counted), which is how a new record type
   introduced by an evolved server keeps working. *)

let is_hot_ty (ty : Wire.Idl.ty) =
  match ty with
  | Wire.Idl.T_string | T_uint | T_enum _ -> true
  | T_array T_string -> true
  | T_struct
      [
        ("host", T_string);
        ("host_context", T_string);
        ("port", T_int);
        ("prog", T_int);
        ("vers", T_int);
        ("data_rep", T_enum _);
        ("transport", T_enum _);
        ("control", T_enum _);
      ] ->
      true
  | T_struct
      [
        ("type", T_string);
        ("host", T_string);
        ("host_context", T_string);
        ("port", T_int);
      ] ->
      true
  | _ -> false

let decode_value (ty : Wire.Idl.ty) bytes : Wire.Value.t option =
  match ty with
  | Wire.Idl.T_string ->
      Option.map (fun s -> Wire.Value.Str s) (decode_string bytes)
  | T_uint -> Option.map (fun ip -> Wire.Value.Uint ip) (decode_host_addr bytes)
  | T_enum labels ->
      Option.bind (decoded bytes H.get_u32) (fun e ->
          let e = Int32.to_int e in
          if e < 0 || e >= List.length labels then None
          else Some (Wire.Value.Enum e))
  | T_array T_string ->
      Option.map
        (fun ss -> Wire.Value.Array (List.map (fun s -> Wire.Value.Str s) ss))
        (decode_alternates bytes)
  | T_struct
      [
        ("host", T_string);
        ("host_context", T_string);
        ("port", T_int);
        ("prog", T_int);
        ("vers", T_int);
        ("data_rep", T_enum _);
        ("transport", T_enum _);
        ("control", T_enum _);
      ] ->
      Option.map Meta_schema.nsm_info_to_value (decode_nsm_info bytes)
  | T_struct
      [
        ("type", T_string);
        ("host", T_string);
        ("host_context", T_string);
        ("port", T_int);
      ] ->
      Option.map Meta_schema.ns_info_to_value (decode_ns_info bytes)
  | _ -> None

let encode_value (ty : Wire.Idl.ty) (v : Wire.Value.t) : string option =
  match (ty, v) with
  | Wire.Idl.T_string, Wire.Value.Str s -> Some (encode_string s)
  | T_uint, Uint ip -> Some (encode_host_addr ip)
  | T_enum labels, Enum e when e >= 0 && e < List.length labels ->
      Some (encoded (fun w -> put_int w e))
  | T_array T_string, Array xs -> (
      match
        List.map (function Wire.Value.Str s -> s | _ -> raise Exit) xs
      with
      | ss -> Some (encode_alternates ss)
      | exception Exit -> None)
  | ( T_struct
        [
          ("host", T_string);
          ("host_context", T_string);
          ("port", T_int);
          ("prog", T_int);
          ("vers", T_int);
          ("data_rep", T_enum _);
          ("transport", T_enum _);
          ("control", T_enum _);
        ],
      Struct _ ) -> (
      match Meta_schema.nsm_info_of_value v with
      | i -> Some (encode_nsm_info i)
      | exception _ -> None)
  | ( T_struct
        [
          ("type", T_string);
          ("host", T_string);
          ("host_context", T_string);
          ("port", T_int);
        ],
      Struct _ ) -> (
      match Meta_schema.ns_info_of_value v with
      | i -> Some (encode_ns_info i)
      | exception _ -> None)
  | _ -> None
