(** Hand-coded codecs for the hot HNS record shapes (meta-bundle
    mappings 1–3 + NSM host records, prefetch-tail HostAddress rows,
    journal-delta payloads), in the style of [Dns.Msg]'s encoders.

    Wire forms are byte-identical to the {!Wire.Generic_marshal} /
    {!Wire.Xdr} output for the same record, so servers and clients
    using either codec interop freely; decoders return [None] on any
    shape mismatch so callers can fall back to the generic path.
    Encoders reuse pooled buffers across a batch and account
    themselves under [wire.codec.*]. *)

val encode_string : string -> string
val decode_string : string -> string option

(** Prefetch-tail HostAddress rows: a bare XDR uint.  [decode] is the
    zero-copy path — four bytes to an [int32], no [Value] tree. *)
val encode_host_addr : int32 -> string

val decode_host_addr : string -> int32 option
val encode_bundle_status : Meta_schema.bundle_status -> string
val decode_bundle_status : string -> Meta_schema.bundle_status option

(** NSM binding records demarshalled straight into the schema record
    FindNSM consumes — no intermediate tree. *)
val encode_nsm_info : Meta_schema.nsm_info -> string

val decode_nsm_info : string -> Meta_schema.nsm_info option
val encode_ns_info : Meta_schema.ns_info -> string
val decode_ns_info : string -> Meta_schema.ns_info option
val encode_alternates : string list -> string
val decode_alternates : string -> string list option

(** [is_hot_ty ty] — whether the hand codec covers records of [ty]. *)
val is_hot_ty : Wire.Idl.ty -> bool

(** Hand-lowered decode straight to the final cached {!Wire.Value.t}
    (a flat run of reads, no {!Wire.Generic_marshal} interpreter).
    [None] means the shape is cold/unknown: fall back to the generic
    codec. *)
val decode_value : Wire.Idl.ty -> string -> Wire.Value.t option

val encode_value : Wire.Idl.ty -> Wire.Value.t -> string option
