type arrangement =
  | All_linked
  | Combined_agent
  | Remote_hns
  | Remote_nsms
  | All_remote

let arrangement_name = function
  | All_linked -> "[Client, HNS, NSMs]"
  | Combined_agent -> "[Client] [HNS, NSMs]"
  | Remote_hns -> "[HNS] [Client, NSMs]"
  | Remote_nsms -> "[NSMs] [Client, HNS]"
  | All_remote -> "[Client] [HNS] [NSMs]"

let all_arrangements =
  [ All_linked; Combined_agent; Remote_hns; Remote_nsms; All_remote ]

type env = {
  stack : Transport.Netstack.stack;
  local_hns : Client.t option;
  agent : Hrpc.Binding.t option;
  linked_nsms : string -> Nsm_intf.impl option;
}

let env ~stack ?local_hns ?agent ?(linked_nsms = []) () =
  { stack; local_hns; agent; linked_nsms = (fun n -> List.assoc_opt n linked_nsms) }

let need_local_hns env =
  match env.local_hns with
  | Some hns -> Ok hns
  | None -> Error (Errors.Meta_error "arrangement requires a local HNS instance")

let need_agent env =
  match env.agent with
  | Some b -> Ok b
  | None -> Error (Errors.Meta_error "arrangement requires an HNS agent binding")

let m_agent_failovers = Obs.Metrics.counter "hns.import.agent_failovers"

(* The agent process is down or cut off (as opposed to answering with
   an application-level error): worth resolving directly if we can. *)
let agent_unreachable = function
  | Errors.Rpc_error (Rpc.Control.Timeout _ | Rpc.Control.Refused) -> true
  | _ -> false

(* FindNSM against a locally linked HNS instance. *)
let locate_local env ~context =
  match need_local_hns env with
  | Error _ as e -> e
  | Ok hns -> (
      match Client.find_nsm hns ~context ~query_class:Query_class.hrpc_binding with
      | Error _ as e -> e
      | Ok r -> Ok (r.Find_nsm.nsm_name, r.Find_nsm.binding))

(* FindNSM according to the arrangement: locally or via the agent. An
   unreachable agent fails over to direct resolution when the client
   also holds a local HNS instance. *)
let locate env arrangement ~context =
  match arrangement with
  | All_linked | Remote_nsms -> locate_local env ~context
  | Remote_hns | All_remote -> (
      match need_agent env with
      | Error _ as e -> e
      | Ok agent -> (
          match
            Agent.remote_find_nsm env.stack ~agent ~context
              ~query_class:Query_class.hrpc_binding
          with
          | Error e when agent_unreachable e && Option.is_some env.local_hns ->
              Obs.Metrics.incr m_agent_failovers;
              Obs.Qlog.note_outcome Obs.Qlog.Failover;
              locate_local env ~context
          | outcome -> outcome))
  | Combined_agent -> Error (Errors.Meta_error "combined agent does not locate")

let nsm_access env arrangement ~nsm_name ~binding =
  match arrangement with
  | All_linked | Remote_hns -> (
      (* Prefer the instance linked with the client; fall back to the
         remote NSM when this NSM is not linked here. *)
      match env.linked_nsms nsm_name with
      | Some impl -> Nsm_intf.Linked impl
      | None -> Nsm_intf.Remote binding)
  | Remote_nsms | All_remote | Combined_agent -> Nsm_intf.Remote binding

let rec import_inner env arrangement ~service hns_name =
  match arrangement with
  | Combined_agent -> (
      match need_agent env with
      | Error _ as e -> e
      | Ok agent -> (
          match Agent.remote_import env.stack ~agent ~service hns_name with
          | Error e when agent_unreachable e && Option.is_some env.local_hns ->
              (* The combined agent crashed mid-flight: resolve
                 directly, calling the NSM through its binding. *)
              Obs.Metrics.incr m_agent_failovers;
              Obs.Qlog.note_outcome Obs.Qlog.Failover;
              import_inner env Remote_nsms ~service hns_name
          | outcome -> outcome))
  | All_linked | Remote_hns | Remote_nsms | All_remote -> (
      match locate env arrangement ~context:hns_name.Hns_name.context with
      | Error _ as e -> e
      | Ok (nsm_name, binding) -> (
          let access = nsm_access env arrangement ~nsm_name ~binding in
          match
            Nsm_intf.call env.stack access ~payload_ty:Nsm_intf.binding_payload_ty
              ~service ~hns_name
          with
          | Error _ as e -> e
          | Ok None -> Error (Errors.Name_not_found hns_name)
          | Ok (Some payload) -> (
              match Hrpc.Binding.of_value payload with
              | exception Invalid_argument m -> Error (Errors.Nsm_error m)
              | b -> Ok b)))

let import env arrangement ~service hns_name =
  let t0 = Obs.Metrics.now_ms () in
  Obs.Qlog.with_query ~name:(Hns_name.to_string hns_name)
    ~query_class:Query_class.hrpc_binding (fun () ->
      Obs.Span.with_span "import"
        ~attrs:(fun () ->
          [
            ("name", Hns_name.to_string hns_name);
            ("arrangement", arrangement_name arrangement);
          ])
        (fun () ->
          Obs.Qlog.note_trace (Obs.Span.current_trace ());
          let r = import_inner env arrangement ~service hns_name in
          (* Inside the span, so a breach's exemplar sees this trace. *)
          Obs.Slo.observe
            (Obs.Slo.get_or_create "import")
            ~ok:(Result.is_ok r)
            (Obs.Metrics.now_ms () -. t0);
          (match r with
          | Error e -> Obs.Qlog.note_error (Errors.to_string e)
          | Ok _ -> ());
          r))
