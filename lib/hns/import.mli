(** Import: HRPC binding through the HNS, under every colocation
    arrangement of Table 3.1.

    "The freedom to link the HNS and NSMs with any process ... We call
    the choice of where the HNS and NSMs are linked for each client
    the colocation arrangement." The five arrangements measured:

    + [All_linked] — [Client, HNS, NSMs]: everything local.
    + [Combined_agent] — [Client] [HNS, NSMs]: one remote agent makes
      local calls to HNS and NSM on the client's behalf.
    + [Remote_hns] — [HNS] [Client, NSMs]: FindNSM is a remote call;
      the designated NSM is linked with the client.
    + [Remote_nsms] — [NSMs] [Client, HNS]: FindNSM is local; the NSM
      is called remotely.
    + [All_remote] — [Client] [HNS] [NSMs]: two remote calls. *)

type arrangement =
  | All_linked
  | Combined_agent
  | Remote_hns
  | Remote_nsms
  | All_remote

val arrangement_name : arrangement -> string
val all_arrangements : arrangement list

(** What an importing client holds, depending on arrangement:
    a local HNS instance and linked NSMs, an agent binding, or both. *)
type env = {
  stack : Transport.Netstack.stack;
  local_hns : Client.t option;       (** for [All_linked], [Remote_nsms] *)
  agent : Hrpc.Binding.t option;     (** for [Combined_agent], [Remote_hns], [All_remote] *)
  linked_nsms : string -> Nsm_intf.impl option;
      (** NSM instances linked with the client, by NSM name
          (for [All_linked], [Remote_hns]) *)
}

val env :
  stack:Transport.Netstack.stack ->
  ?local_hns:Client.t ->
  ?agent:Hrpc.Binding.t ->
  ?linked_nsms:(string * Nsm_intf.impl) list ->
  unit ->
  env

(** The paper's [Import] call: present a service name and an HNS name,
    receive a system-independent binding to the service.

    Agent-mediated arrangements degrade gracefully: when the agent is
    unreachable (timeout/refused) and the env also holds a local HNS
    instance, the import falls over to direct resolution — FindNSM
    locally, then the NSM through its binding — counted in
    [hns.import.agent_failovers]. *)
val import :
  env ->
  arrangement ->
  service:string ->
  Hns_name.t ->
  (Hrpc.Binding.t, Errors.t) result
