let m_served = Obs.Metrics.counter "hns.meta.bundle_served"
let m_prefetch_offered = Obs.Metrics.counter "hns.meta.bundle_prefetch_offered"

(* The marker record carried at the bundle name itself: an UNSPEC
   record whose payload is the encoded bundle status.  Hand-encoded
   (byte-identical to the XDR form, pooled buffer): the synthesizer
   runs once per bundle query, making this the server's hottest
   encode. *)
let marker_rr qname status =
  Dns.Rr.make ~ttl:60l qname
    (Dns.Rr.Unspec (Hot_codec.encode_bundle_status status))

let meta_zone server =
  List.find_opt
    (fun z -> Dns.Name.equal (Dns.Zone.origin z) Meta_schema.zone_origin)
    (Dns.Server.zones server)

(* First UNSPEC rrset at [key], with its decoded payload. *)
let record db ~key ~ty =
  match Dns.Db.lookup db key Dns.Rr.T_unspec with
  | [] -> None
  | rr :: _ -> (
      match (rr : Dns.Rr.t).rdata with
      | Dns.Rr.Unspec bytes -> (
          match Wire.Xdr.of_string ty bytes with
          | exception _ -> None
          | v -> Some (rr, v))
      | _ -> None)

(* Answer one bundle question from the zone database: the real records
   behind mappings 1-3 (and, when resolvable, the context and NSM
   designation behind mappings 4-5 of the binding's host), headed by a
   status marker at the bundle name. [delegated] reports whether a key
   sits under a zone cut this server has delegated away: such a
   context is not absent — its records live with the partition owner —
   so the bundle declines (no marker) rather than asserting
   B_no_context, and the client's per-mapping walk chases the
   referral. *)
let answer ?(delegated = fun _ -> false) db ~qname ~context ~query_class =
  let ctx_key = Meta_schema.context_key context in
  match record db ~key:ctx_key ~ty:Meta_schema.string_ty with
  | None -> if delegated ctx_key then [] else [ marker_rr qname Meta_schema.B_no_context ]
  | Some (ctx_rr, ctx_v) -> (
      let ns = Wire.Value.get_str ctx_v in
      match
        record db
          ~key:(Meta_schema.nsm_name_key ~ns ~query_class)
          ~ty:Meta_schema.string_ty
      with
      | None -> [ marker_rr qname Meta_schema.B_no_nsm; ctx_rr ]
      | Some (nsm_rr, nsm_v) -> (
          let nsm = Wire.Value.get_str nsm_v in
          match
            record db
              ~key:(Meta_schema.nsm_binding_key nsm)
              ~ty:Meta_schema.nsm_info_ty
          with
          | None ->
              [ marker_rr qname Meta_schema.B_no_binding; ctx_rr; nsm_rr ]
          | Some (bind_rr, bind_v) ->
              let info = Meta_schema.nsm_info_of_value bind_v in
              (* Mappings 4-5 for the binding's host: best-effort —
                 their absence only means the client walks them. *)
              let host_rrs =
                let hc = info.Meta_schema.nsm_host_context in
                match
                  record db ~key:(Meta_schema.context_key hc)
                    ~ty:Meta_schema.string_ty
                with
                | None -> []
                | Some (hc_rr, hc_v) -> (
                    let host_ns = Wire.Value.get_str hc_v in
                    let hc_rrs =
                      if Dns.Name.equal hc_rr.Dns.Rr.name ctx_rr.Dns.Rr.name
                      then []
                      else [ hc_rr ]
                    in
                    match
                      record db
                        ~key:
                          (Meta_schema.nsm_name_key ~ns:host_ns
                             ~query_class:Query_class.host_address)
                        ~ty:Meta_schema.string_ty
                    with
                    | None -> hc_rrs
                    | Some (ha_rr, _)
                      when Dns.Name.equal ha_rr.Dns.Rr.name
                             nsm_rr.Dns.Rr.name ->
                        hc_rrs
                    | Some (ha_rr, _) -> hc_rrs @ [ ha_rr ])
              in
              marker_rr qname Meta_schema.B_ok :: ctx_rr :: nsm_rr :: bind_rr
              :: host_rrs))

type prefetch = {
  k : int;
  contexts : string list;
  hot : context:string -> (Dns.Name.t * float) list;
  addr_of : Dns.Name.t -> Transport.Address.ip option;
  ttl_s : int32;
  note : (context:string -> Dns.Name.t -> unit) option;
}

(* The resolve-tail prefetch: append the requesting context's hottest
   HostAddress answers to the bundle so an agent-side cold resolve
   needs no trailing NSM data round trip. The candidate ranking comes
   from the deployment ([hot], typically {!Dns.Server.hot_ranked} on
   the confederation's public BIND keyed by the context's zone, so one
   context's flash crowd cannot pollute another context's hints);
   names whose address the source cannot produce are skipped. *)
let prefetch_rrs pf ~context =
  if pf.contexts <> [] && not (List.mem context pf.contexts) then []
  else begin
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: rest -> x :: take (n - 1) rest
    in
    let rows =
      pf.hot ~context
      |> List.filter_map (fun (name, _score) ->
             match pf.addr_of name with
             | None -> None
             | Some ip ->
                 Some
                   ( name,
                     Dns.Rr.make ~ttl:pf.ttl_s
                       (Meta_schema.host_addr_key ~context
                          ~host:(Dns.Name.to_string name))
                       (* Hand-encoded per row, reusing one pooled
                          buffer across the whole tail. *)
                       (Dns.Rr.Unspec (Hot_codec.encode_host_addr ip)) ))
      |> take pf.k
    in
    Obs.Metrics.add m_prefetch_offered (List.length rows);
    rows
  end

let install ?prefetch server =
  Dns.Server.set_synthesizer server (fun (q : Dns.Msg.question) ->
      if q.qtype <> Dns.Rr.T_unspec then None
      else
        match Meta_schema.parse_bundle_key q.qname with
        | None -> None
        | Some (context, query_class) -> (
            match meta_zone server with
            | None -> None
            | Some zone -> (
                match
                  answer
                    ~delegated:(fun key ->
                      Dns.Server.delegation_for server key <> None)
                    (Dns.Zone.db zone) ~qname:q.qname ~context ~query_class
                with
                | exception _ -> None (* malformed key: ordinary NXDOMAIN *)
                | [] ->
                    (* Context delegated to a partition: a positive,
                       answerless reply — the client falls back to the
                       mapping walk, whose context lookup returns the
                       referral. *)
                    Some []
                | rrs ->
                    Obs.Metrics.incr m_served;
                    let extra =
                      match prefetch with
                      | None -> []
                      | Some pf -> (
                          try prefetch_rrs pf ~context with _ -> [])
                    in
                    (* The reply must clear the 512-byte UDP ceiling
                       whole: a TC'd bundle loses every answer and the
                       client falls back to the mapping walk — worse
                       than offering fewer hints. Shed prefetch rows
                       (never bundle records) until the message fits. *)
                    let fits answers =
                      let probe = Dns.Msg.query ~id:0 q.qname q.qtype in
                      String.length
                        (Dns.Msg.encode (Dns.Msg.response ~request:probe answers))
                      <= Dns.Msg.udp_payload_limit
                    in
                    let rec shed extra =
                      if fits (rrs @ List.map snd extra) then extra
                      else
                        match extra with
                        | [] -> []
                        | _ :: _ ->
                            (* drop the coldest hint: the list is
                               hottest-first *)
                            shed
                              (List.filteri
                                 (fun i _ -> i < List.length extra - 1)
                                 extra)
                    in
                    let kept = shed extra in
                    (* Hint keep-alive: re-note each hint actually
                       served (never shed ones) so cached names keep
                       their place in the ranking they earned. *)
                    (match prefetch with
                    | Some { note = Some note; _ } ->
                        List.iter (fun (name, _) -> note ~context name) kept
                    | _ -> ());
                    Some (rrs @ List.map snd kept))))

let uninstall server = Dns.Server.clear_synthesizer server
