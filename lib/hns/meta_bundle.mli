(** Server-side answerer for the batched FindNSM meta query.

    A stock meta-BIND answers one mapping per round trip, which is why
    the paper's cold FindNSM costs six exchanges. [Meta_bundle] makes
    the {e modified} BIND bundle-aware: installed as a query
    synthesizer on the server ({!Dns.Server.set_synthesizer}), it
    recognizes T_UNSPEC questions for
    [<qclass>.<context>.bundle.hns-meta.] names and answers with the
    real records behind mappings 1–3 of that (context, query class)
    pair — plus, best-effort, the context and NSM-designation records
    for the binding host's address resolution (mappings 4–5) — headed
    by a status marker record at the bundle name itself
    ({!Meta_schema.bundle_status}).

    Unmodified servers have no synthesizer and answer bundle names
    with NXDOMAIN; {!Meta_client.find_nsm_bundle} treats that as "no
    bundle support" and falls back to per-mapping lookups, so old and
    new servers interoperate. Bundles served are counted in
    [hns.meta.bundle_served]. *)

(** Resolve-tail prefetch configuration: every bundle reply for a
    context in [contexts] (or any context when empty) additionally
    carries up to [k] piggybacked [HostAddress] rows — the
    server-selected hottest names for the {e requesting} context
    ([hot], typically {!Dns.Server.hot_ranked} on the confederation's
    public BIND keyed by the context's zone group), each resolved to
    an address via [addr_of]. Clients seed them under the
    pinned-preload quota ({!Meta_client.find_nsm_bundle}), so an
    agent-mediated cold resolve for a hot name skips the trailing
    remote NSM data round trip entirely. Rows offered are counted in
    [hns.meta.bundle_prefetch_offered]. *)
type prefetch = {
  k : int;
  contexts : string list;
  hot : context:string -> (Dns.Name.t * float) list;
  addr_of : Dns.Name.t -> Transport.Address.ip option;
  ttl_s : int32;
  note : (context:string -> Dns.Name.t -> unit) option;
      (** Hint keep-alive, called once per hint row actually served
          (shed rows excluded). A hinted name answers from agent
          caches and stops generating query sightings at the ranking
          server, while un-hinted names keep earning a cache-refill
          sighting per agent per refresh cycle; deployments wire this
          to {!Dns.Server.note_hot_name} so serving a hint renews the
          standing that earned it. [None] disables the feedback. *)
}

(** Install the bundle answerer on a server holding the [hns-meta]
    zone. Replaces any previously-installed synthesizer. [prefetch]
    (default none) enables the resolve-tail prefetch above. *)
val install : ?prefetch:prefetch -> Dns.Server.t -> unit

val uninstall : Dns.Server.t -> unit
