type bundle_support = B_unknown | B_supported | B_unsupported

module N_tbl = Hashtbl.Make (struct
  type t = Dns.Name.t

  let equal = Dns.Name.equal
  let hash = Dns.Name.hash
end)

(* A delegated partition learned from a referral: who serves the
   subtree under the cut, cached for the NS records' TTL. *)
type partition = { rs : Dns.Replica_set.t; expires_at : float }

type t = {
  stack : Transport.Netstack.stack;
  meta_server : Transport.Address.t;
  fallback_servers : Transport.Address.t list;
  replica_set : Dns.Replica_set.t option;
      (* read routing over the root zone's replica tree *)
  read_your_writes : bool;
  referrals : partition N_tbl.t; (* learned partition cuts *)
  mutable write_floors : (Dns.Name.t * int32) list;
      (* per zone origin: the serial our last write landed at *)
  mutable referral_chase_count : int;
  mutable referral_hit_count : int;
  cache_ : Cache.t;
  generated_cost : Wire.Generic_marshal.cost_model;
  hand_codec : Wire.Hotcodec.cost_model option;
      (* when set, hot record shapes marshal through the hand codec
         and charge this model; cold/unknown shapes still fall back to
         the generated path *)
  hand_preload_record_ms : float option;
      (* per-record transfer/delta absorption under the hand codec *)
  preload_record_ms : float;
  mapping_overhead_ms : float;
  enable_bundle : bool;
  negative_ttl_ms : float;
  mutable bundle_support : bundle_support;
  mutable zone_serial : int32 option;
  mutable zone_refresh_s : int32 option;
  mutable soa_neg_ttl_ms : float option; (* zone SOA minimum, observed *)
  mutable delta_refresh_count : int;
  mutable delta_record_count : int;
  mutable delta_invalidation_count : int;
  mutable full_refresh_count : int;
  mutable notify_kick_count : int;
  mutable walk : (string * bool * float) list; (* newest first, max 64 *)
  mutable prefetch_seeded_count : int;
  mutable prefetch_hit_count : int;
  prefetched : (string, unit) Hashtbl.t; (* addr cache keys seeded by prefetch *)
  raw_binding : Hrpc.Binding.t;
  policy : Rpc.Control.retry_policy option;
  mutable lookup_count : int;
  mutable next_id : int;
}

let create stack ~meta_server ?(fallback_servers = []) ?replica_set
    ?(read_your_writes = true) ~cache
    ?(generated_cost = { Wire.Generic_marshal.per_call_ms = 0.0; per_node_ms = 0.0 })
    ?hand_codec ?hand_preload_record_ms ?(preload_record_ms = 0.0)
    ?(mapping_overhead_ms = 0.0) ?(enable_bundle = false)
    ?(negative_ttl_ms = 0.0) ?policy () =
  {
    stack;
    meta_server;
    fallback_servers;
    replica_set;
    read_your_writes;
    referrals = N_tbl.create 8;
    write_floors = [];
    referral_chase_count = 0;
    referral_hit_count = 0;
    cache_ = cache;
    generated_cost;
    hand_codec;
    hand_preload_record_ms;
    preload_record_ms;
    mapping_overhead_ms;
    enable_bundle;
    negative_ttl_ms;
    bundle_support = B_unknown;
    zone_serial = None;
    zone_refresh_s = None;
    soa_neg_ttl_ms = None;
    delta_refresh_count = 0;
    delta_record_count = 0;
    delta_invalidation_count = 0;
    full_refresh_count = 0;
    notify_kick_count = 0;
    walk = [];
    prefetch_seeded_count = 0;
    prefetch_hit_count = 0;
    prefetched = Hashtbl.create 16;
    raw_binding =
      Hrpc.Binding.make ~suite:Hrpc.Component.raw_udp_suite ~server:meta_server
        ~prog:0 ~vers:0;
    policy;
    lookup_count = 0;
    next_id = 1;
  }

let cache t = t.cache_
let remote_lookups t = t.lookup_count
let bundle_enabled t = t.enable_bundle
let negative_ttl_ms t = t.negative_ttl_ms

let m_lookups = Obs.Metrics.counter "hns.meta.lookups"
let m_remote_lookups = Obs.Metrics.counter "hns.meta.remote_lookups"
let m_lookup_ms = Obs.Metrics.histogram "hns.meta.lookup_ms"
let m_bundle_queries = Obs.Metrics.counter "hns.meta.bundle_queries"
let m_bundle_fallbacks = Obs.Metrics.counter "hns.meta.bundle_fallbacks"
let m_preload_refreshes = Obs.Metrics.counter "hns.meta.preload_refreshes"
let m_delta_refreshes = Obs.Metrics.counter "hns.meta.delta_refreshes"
let m_delta_records = Obs.Metrics.counter "hns.meta.delta_records"
let m_delta_invalidations = Obs.Metrics.counter "hns.meta.delta_invalidations"
let m_full_refreshes = Obs.Metrics.counter "hns.meta.full_refreshes"
let m_notify_kicks = Obs.Metrics.counter "hns.meta.notify_kicks"
let m_serial_regressions = Obs.Metrics.counter "hns.meta.serial_regressions"
let m_prefetched = Obs.Metrics.counter "hns.meta.bundle_prefetched"
let m_prefetch_hits = Obs.Metrics.counter "hns.meta.prefetch_hits"
let m_referral_chases = Obs.Metrics.counter "hns.meta.referral_chases"
let m_referral_hits = Obs.Metrics.counter "hns.meta.referral_hits"
let m_routed_reads = Obs.Metrics.counter "hns.meta.routed_reads"

let charge ms =
  if ms > 0.0 then
    try Sim.Engine.sleep ms with Effect.Unhandled _ -> ()

let fresh_id t =
  let id = t.next_id in
  t.next_id <- (t.next_id + 1) land 0xFFFF;
  id

let now_ms () = try Sim.Engine.time () with Effect.Unhandled _ -> 0.0

(* {1 Partition routing}

   The meta namespace may be delegated: the root primary holds NS
   records at context cuts pointing at partition primaries (and their
   replicas, as further NS + glue rows). A read for a key under a
   known cut goes straight to that partition's replica set; an unknown
   cut announces itself as a referral reply, which we chase once and
   cache for the NS TTL. *)

(* Deepest unexpired learned cut covering [key], if any. Expired
   entries found during the scan are dropped afterwards. *)
let cut_for t key =
  let now = now_ms () in
  let expired = ref [] in
  let best =
    N_tbl.fold
      (fun cut part best ->
        if part.expires_at <= now then begin
          expired := cut :: !expired;
          best
        end
        else if not (Dns.Name.is_subdomain ~of_:cut key) then best
        else
          match best with
          | Some (c, _) when Dns.Name.label_count c >= Dns.Name.label_count cut
            ->
              best
          | _ -> Some (cut, part))
      t.referrals None
  in
  List.iter (N_tbl.remove t.referrals) !expired;
  best

(* The read-your-writes floor for a zone: the serial our last write to
   it landed at, when pinning is on. *)
let floor_for t zone =
  if not t.read_your_writes then None
  else
    List.find_map
      (fun (z, s) -> if Dns.Name.equal z zone then Some s else None)
      t.write_floors

let note_write_floor t zone serial =
  let prev =
    List.find_map
      (fun (z, s) -> if Dns.Name.equal z zone then Some s else None)
      t.write_floors
  in
  let floor =
    match prev with
    | Some s when Int32.compare s serial > 0 -> s
    | _ -> serial
  in
  t.write_floors <-
    (zone, floor)
    :: List.filter (fun (z, _) -> not (Dns.Name.equal z zone)) t.write_floors

(* Where a read for [key] should go: the routed server(s) to try in
   order, plus the replica set consulted (for latency feedback). *)
let read_route t key =
  let via rs ~zone =
    let sel = Dns.Replica_set.select ?min_serial:(floor_for t zone) rs in
    Obs.Metrics.incr m_routed_reads;
    let prim = Dns.Replica_set.primary rs in
    let chain =
      if Transport.Address.equal sel prim then [ sel ] else [ sel; prim ]
    in
    (Some rs, chain)
  in
  match cut_for t key with
  | Some (cut, part) ->
      t.referral_hit_count <- t.referral_hit_count + 1;
      Obs.Metrics.incr m_referral_hits;
      via part.rs ~zone:cut
  | None -> (
      match t.replica_set with
      | Some rs -> via rs ~zone:Meta_schema.zone_origin
      | None -> (None, t.meta_server :: t.fallback_servers))

(* A referral: a positive, answerless reply whose authority section
   names the delegation's servers. *)
let is_referral (reply : Dns.Msg.t) =
  reply.rcode = Dns.Msg.No_error
  && reply.answers = []
  && List.exists
       (fun (rr : Dns.Rr.t) ->
         match rr.rdata with Dns.Rr.Ns _ -> true | _ -> false)
       reply.authority

(* Cache the partition a referral describes. Glue order is the
   deployment's contract: the partition primary's NS record is
   registered first, so the first glue address is the update target
   and the rest are its replicas. All partition servers answer on the
   meta deployment's common port. *)
let learn_referral t (reply : Dns.Msg.t) =
  let ns_rrs =
    List.filter
      (fun (rr : Dns.Rr.t) ->
        match rr.rdata with Dns.Rr.Ns _ -> true | _ -> false)
      reply.authority
  in
  match ns_rrs with
  | [] -> ()
  | first :: _ -> (
      let cut = first.Dns.Rr.name in
      let port = t.meta_server.Transport.Address.port in
      let addrs =
        List.concat_map
          (fun (ns_rr : Dns.Rr.t) ->
            match ns_rr.rdata with
            | Dns.Rr.Ns target ->
                List.filter_map
                  (fun (rr : Dns.Rr.t) ->
                    match rr.rdata with
                    | Dns.Rr.A ip when Dns.Name.equal rr.name target ->
                        Some (Transport.Address.make ip port)
                    | _ -> None)
                  reply.additional
            | _ -> [])
          ns_rrs
      in
      match addrs with
      | [] -> ()
      | primary :: rest ->
          let replicas =
            List.filter
              (fun a -> not (Transport.Address.equal a primary))
              rest
          in
          let rs =
            Dns.Replica_set.create t.stack ~zone:cut ~primary ~replicas ()
          in
          let ttl_ms =
            List.fold_left
              (fun acc (rr : Dns.Rr.t) ->
                Float.min acc (Int32.to_float rr.ttl *. 1000.0))
              Float.infinity ns_rrs
          in
          let ttl_ms = if Float.is_finite ttl_ms then ttl_ms else 0.0 in
          N_tbl.replace t.referrals cut
            { rs; expires_at = now_ms () +. ttl_ms };
          t.referral_chase_count <- t.referral_chase_count + 1;
          Obs.Metrics.incr m_referral_chases)

(* One raw DNS exchange, paying the generated-stub marshalling price
   on both directions. Reads are routed: through the partition's
   replica set when the key is under a learned cut, through the root
   replica set when one is configured, and to the configured servers
   in Timeout-failover order otherwise. Referral replies are chased
   (and the cut cached) up to a bounded depth. *)
let rec raw_query_routed t ~depth key =
  t.lookup_count <- t.lookup_count + 1;
  Obs.Metrics.incr m_remote_lookups;
  (* A remote round trip makes the enclosing query at least a miss. *)
  Obs.Qlog.note_outcome Obs.Qlog.Miss;
  let request = Dns.Msg.query ~id:(fresh_id t) key Dns.Rr.T_unspec in
  (* Request encode: the generated path's fixed entry cost, or the
     hand codec's when one is configured. *)
  (match t.hand_codec with
  | Some hc -> charge hc.Wire.Hotcodec.per_call_ms
  | None -> charge t.generated_cost.Wire.Generic_marshal.per_call_ms);
  let rs_opt, servers = read_route t key in
  let feedback server ~ok ~elapsed =
    match rs_opt with
    | Some rs -> Dns.Replica_set.note_result rs server ~ok ~latency_ms:elapsed
    | None -> ()
  in
  let exchange server =
    let binding = { t.raw_binding with Hrpc.Binding.server } in
    let req_bytes = Dns.Msg.encode request in
    Obs.Qlog.note_server (Transport.Address.to_string server);
    let t0 = now_ms () in
    match Hrpc.Client.call_raw t.stack binding ?policy:t.policy req_bytes with
    | Error e ->
        feedback server ~ok:false ~elapsed:(now_ms () -. t0);
        Error (Errors.Rpc_error e)
    | Ok payload -> (
        Obs.Qlog.add_bytes (String.length req_bytes + String.length payload);
        match Dns.Msg.decode payload with
        | exception Dns.Msg.Bad_message m -> Error (Errors.Meta_error m)
        | reply ->
            feedback server ~ok:true ~elapsed:(now_ms () -. t0);
            Ok reply)
  in
  let rec go last = function
    | [] -> last
    | server :: rest -> (
        match exchange server with
        | Error (Errors.Rpc_error (Rpc.Control.Timeout _)) as e -> go e rest
        | outcome -> outcome)
  in
  match
    go
      (Error (Errors.Rpc_error (Rpc.Control.Timeout { elapsed_ms = 0.0 })))
      servers
  with
  | Ok reply when is_referral reply && depth < 3 ->
      learn_referral t reply;
      raw_query_routed t ~depth:(depth + 1) key
  | outcome -> outcome

let raw_query t key = raw_query_routed t ~depth:0 key

let first_unspec (reply : Dns.Msg.t) =
  List.find_map
    (fun (rr : Dns.Rr.t) ->
      match rr.rdata with Dns.Rr.Unspec bytes -> Some (bytes, rr.ttl) | _ -> None)
    reply.answers

(* HNS library bookkeeping charged once per data mapping: TTL checks,
   key construction, designation logic. *)
let charge_mapping_overhead t = charge t.mapping_overhead_ms

let log_mapping t key hit cost =
  let entry = (key, hit, cost) in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  t.walk <- take 64 (entry :: t.walk)

let walk_log t = List.rev t.walk
let clear_walk_log t = t.walk <- []

(* Remember the zone SOA's minimum field whenever a reply (or a
   transfer) carries one: RFC 2308 makes it the zone's negative TTL,
   which we adopt — capped by our own [negative_ttl_ms] — instead of
   trusting the client-side constant alone. *)
let observe_soa t (soa : Dns.Rr.soa) =
  t.soa_neg_ttl_ms <- Some (Int32.to_float soa.Dns.Rr.minimum *. 1000.0)

let observe_authority_soa t (reply : Dns.Msg.t) =
  List.iter
    (fun (rr : Dns.Rr.t) ->
      match rr.rdata with Dns.Rr.Soa soa -> observe_soa t soa | _ -> ())
    reply.authority

(* The TTL a negative entry recorded now would get: the zone's SOA
   minimum when one has been observed, never above the configured cap;
   0 when negative caching is off. *)
let effective_negative_ttl_ms t =
  if t.negative_ttl_ms <= 0.0 then 0.0
  else
    match t.soa_neg_ttl_ms with
    | Some soa_ms when soa_ms > 0.0 -> Float.min soa_ms t.negative_ttl_ms
    | _ -> t.negative_ttl_ms

(* Record a definitive "nothing there" so the next miss on this key
   fails fast instead of repeating the round trip. Inert unless the
   client was created with a positive negative TTL. *)
let note_negative t key =
  let ttl_ms = effective_negative_ttl_ms t in
  if ttl_ms > 0.0 then
    Cache.insert_negative t.cache_ ~key:(Meta_schema.cache_key key) ~ttl_ms

(* Decode one UNSPEC record body, charging the cost of whichever codec
   handled it: the hand codec when one is configured and the shape is
   hot, the generated stubs otherwise (and as the fallback when the
   hand codec rejects the bytes — counted, so heterogeneous peers keep
   working). [None] means malformed under both codecs. *)
let decode_record t ~ty bytes =
  let generic () =
    match Wire.Xdr.of_string ty bytes with
    | exception _ -> None
    | v ->
        charge (Wire.Generic_marshal.cost t.generated_cost v);
        Some v
  in
  match t.hand_codec with
  | Some hc when Hot_codec.is_hot_ty ty -> (
      match Hot_codec.decode_value ty bytes with
      | Some v ->
          charge (Wire.Hotcodec.cost hc ~records:1);
          Some v
      | None ->
          Wire.Hotcodec.count_fallback ();
          generic ())
  | _ -> generic ()

let lookup_remote t ~key ~ty =
  match () with
  | () -> (
      match raw_query t key with
      | Error _ as e -> e
      | Ok reply -> (
          (* Negative and NODATA replies carry the zone SOA in their
             authority section (RFC 2308); learn the zone's negative
             TTL from it before recording the absence. *)
          observe_authority_soa t reply;
          match reply.rcode with
          | Dns.Msg.Nx_domain ->
              note_negative t key;
              Ok None
          | Dns.Msg.No_error -> (
              match first_unspec reply with
              | None ->
                  note_negative t key;
                  Ok None
              | Some (bytes, ttl_s) -> (
                  match decode_record t ~ty bytes with
                  | None ->
                      Error
                        (Errors.Meta_error
                           (Printf.sprintf "malformed record at %s"
                              (Dns.Name.to_string key)))
                  | Some v ->
                      Cache.insert t.cache_ ~key:(Meta_schema.cache_key key) ~ty
                        ~ttl_ms:(Int32.to_float ttl_s *. 1000.0)
                        v;
                      Ok (Some v)))
          | rc -> Error (Errors.Meta_error (Dns.Msg.rcode_to_string rc))))

let lookup t ~key ~ty =
  let t0 = now_ms () in
  Obs.Metrics.incr m_lookups;
  charge_mapping_overhead t;
  let finish hit outcome =
    let elapsed = now_ms () -. t0 in
    Obs.Metrics.observe m_lookup_ms elapsed;
    Obs.Span.add_attr "hit" (if hit then "true" else "false");
    Obs.Qlog.note_hop (Meta_schema.cache_key key) elapsed;
    log_mapping t (Meta_schema.cache_key key) hit elapsed;
    outcome
  in
  match Cache.find_outcome t.cache_ ~key:(Meta_schema.cache_key key) ~ty with
  | Cache.Hit v -> finish true (Ok (Some v))
  | Cache.Negative_hit ->
      (* A cached absence: answer "no record" without a round trip. *)
      Obs.Span.add_attr "negative" "true";
      Obs.Qlog.note_outcome Obs.Qlog.Negative;
      finish true (Ok None)
  | Cache.Miss -> (
      match lookup_remote t ~key ~ty with
      | Error _ as e -> (
          (* Backend unreachable: serve the expired entry if it is
             still within the cache's staleness budget. *)
          match Cache.find_stale t.cache_ ~key:(Meta_schema.cache_key key) ~ty with
          | Some v ->
              Obs.Span.add_attr "stale" "true";
              Obs.Qlog.note_outcome Obs.Qlog.Stale;
              finish false (Ok (Some v))
          | None -> finish false e)
      | ok -> finish false ok)

(* {1 The batched FindNSM bundle} *)

type bundle_result =
  | Bundle_unavailable
  | Bundle_resolved of {
      ns : string;
      nsm : string;
      info : Meta_schema.nsm_info;
    }
  | Bundle_negative of Errors.t

(* Decode and cache every real record carried in a bundle reply,
   returning an assoc of cache key -> decoded value so the caller can
   use them without re-consulting the cache. Pays the same
   generated-stub decode price a per-mapping lookup would. *)
(* A piggybacked HostAddress row: decode and seed it under the
   host-address cache key as a {e pinned preload} ([Cache.preload]
   enforces the pinned quota — an over-eager server cannot displace
   the demand-filled entries). Remembered so {!cached_host_addr} can
   attribute later hits to the prefetch. *)
let note_prefetch_seeded t key n =
  if n > 0 then begin
    Hashtbl.replace t.prefetched key ();
    t.prefetch_seeded_count <- t.prefetch_seeded_count + 1;
    Obs.Metrics.incr m_prefetched
  end

let seed_prefetch_row t (rr : Dns.Rr.t) ~context ~host v =
  let key = Meta_schema.host_addr_cache_key ~context ~host in
  (* Demarshalled through the generated path: a Value tree was built
     for a prefetch row — exactly what the zero-copy path avoids. *)
  Wire.Hotcodec.count_value_materialization ();
  let n =
    Cache.preload t.cache_
      [ (key, Meta_schema.host_addr_ty, Int32.to_float rr.ttl *. 1000.0, v) ]
  in
  note_prefetch_seeded t key n

(* The zero-copy tail: four wire bytes to an int32 to a native pinned
   cache entry, no Value tree at any point. *)
let seed_prefetch_addr t (rr : Dns.Rr.t) ~context ~host ip =
  let key = Meta_schema.host_addr_cache_key ~context ~host in
  let n =
    Cache.preload_addrs t.cache_
      [ (key, Int32.to_float rr.ttl *. 1000.0, ip) ]
  in
  note_prefetch_seeded t key n

let seed_bundle_answers t (reply : Dns.Msg.t) =
  let addr_rows =
    List.filter_map
      (fun (rr : Dns.Rr.t) ->
        match rr.rdata with
        | Dns.Rr.Unspec bytes -> (
            match Meta_schema.parse_host_addr_key rr.name with
            | Some (context, host) -> Some (rr, context, host, bytes)
            | None -> None)
        | _ -> None)
      reply.answers
  in
  (* The piggybacked HostAddress rows are uniform entries of one
     reply, so they demarshal through a single codec call — the entry
     cost is paid once for the batch, then per row (generated: per
     node), not once per row. *)
  (match t.hand_codec with
  | Some hc ->
      let native =
        List.filter_map
          (fun (rr, context, host, bytes) ->
            match Hot_codec.decode_host_addr bytes with
            | Some ip -> Some (rr, context, host, ip)
            | None ->
                Wire.Hotcodec.count_fallback ();
                None)
          addr_rows
      in
      if native <> [] then
        charge (Wire.Hotcodec.cost hc ~records:(List.length native));
      List.iter
        (fun (rr, context, host, ip) ->
          seed_prefetch_addr t rr ~context ~host ip)
        native
  | None ->
      let prefetch_rows =
        List.filter_map
          (fun (rr, context, host, bytes) ->
            match Wire.Xdr.of_string Meta_schema.host_addr_ty bytes with
            | exception _ -> None
            | v -> Some (rr, context, host, v))
          addr_rows
      in
      if prefetch_rows <> [] then
        charge
          (Wire.Generic_marshal.cost t.generated_cost
             (Wire.Value.Array
                (List.map (fun (_, _, _, v) -> v) prefetch_rows)));
      List.iter
        (fun (rr, context, host, v) -> seed_prefetch_row t rr ~context ~host v)
        prefetch_rows);
  List.filter_map
    (fun (rr : Dns.Rr.t) ->
      match rr.rdata with
      | Dns.Rr.Unspec bytes -> (
          match Meta_schema.parse_host_addr_key rr.name with
          | Some _ ->
              (* Seeded above, outside the mapping chain the bundle
                 status logic consults. *)
              None
          | None -> (
          match Meta_schema.ty_of_key rr.name with
          | None -> None (* the status marker, handled separately *)
          | Some ty -> (
              match decode_record t ~ty bytes with
              | None -> None
              | Some v ->
                  Cache.insert t.cache_ ~key:(Meta_schema.cache_key rr.name)
                    ~ty
                    ~ttl_ms:(Int32.to_float rr.ttl *. 1000.0)
                    v;
                  Some (Meta_schema.cache_key rr.name, v))))
      | _ -> None)
    reply.answers

let bundle_status_of_reply t (reply : Dns.Msg.t) ~qname =
  List.find_map
    (fun (rr : Dns.Rr.t) ->
      if not (Dns.Name.equal rr.name qname) then None
      else
        match rr.rdata with
        | Dns.Rr.Unspec bytes -> (
            match t.hand_codec with
            | Some _ -> Hot_codec.decode_bundle_status bytes
            | None -> (
                match
                  Wire.Xdr.of_string Meta_schema.bundle_status_ty bytes
                with
                | exception _ -> None
                | v -> Meta_schema.bundle_status_of_value v))
        | _ -> None)
    reply.answers

let find_nsm_bundle t ~context ~query_class =
  if (not t.enable_bundle) || t.bundle_support = B_unsupported then
    Bundle_unavailable
  else
    let ctx_key = Meta_schema.context_key context in
    let ctx_cache_key = Meta_schema.cache_key ctx_key in
    (* When mapping 1 is already warm the per-mapping walk runs on
       cache hits; a bundle round trip would cost more than it saves.
       (Partially-warm states still take the bundle: one round trip
       beats two.) *)
    if Cache.peek t.cache_ ~key:ctx_cache_key then Bundle_unavailable
    else if Cache.peek_negative t.cache_ ~key:ctx_cache_key then begin
      (* A fresh "no such context" answers the whole FindNSM with no
         traffic; go through find_outcome for the usual negative-hit
         charge and accounting. *)
      ignore
        (Cache.find_outcome t.cache_ ~key:ctx_cache_key
           ~ty:Meta_schema.string_ty);
      Bundle_negative (Errors.Unknown_context context)
    end
    else
      Obs.Span.with_span "find_nsm_bundle"
        ~attrs:(fun () -> [ ("context", context); ("query_class", query_class) ])
        (fun () ->
          Obs.Metrics.incr m_bundle_queries;
          (* One mapping's worth of HNS bookkeeping covers the whole
             batched exchange. *)
          charge_mapping_overhead t;
          let t0 = now_ms () in
          let qname = Meta_schema.bundle_key ~context ~query_class in
          let finish outcome =
            let elapsed = now_ms () -. t0 in
            Obs.Qlog.note_hop (Meta_schema.cache_key qname) elapsed;
            log_mapping t (Meta_schema.cache_key qname) false elapsed;
            outcome
          in
          match raw_query t qname with
          | Error _ ->
              (* Unreachable server: let the per-mapping walk apply its
                 own failover and serve-stale machinery. *)
              Obs.Span.add_attr "outcome" "error";
              finish Bundle_unavailable
          | Ok reply -> (
              match reply.rcode with
              | Dns.Msg.Nx_domain | Dns.Msg.Refused ->
                  (* An old meta server: remember and stop asking. *)
                  t.bundle_support <- B_unsupported;
                  Obs.Metrics.incr m_bundle_fallbacks;
                  Obs.Span.add_attr "outcome" "unsupported";
                  finish Bundle_unavailable
              | Dns.Msg.No_error -> (
                  t.bundle_support <- B_supported;
                  let seeded = seed_bundle_answers t reply in
                  let seeded_value key =
                    List.assoc_opt (Meta_schema.cache_key key) seeded
                  in
                  let ns_of_ctx () =
                    Option.map Wire.Value.get_str (seeded_value ctx_key)
                  in
                  match bundle_status_of_reply t reply ~qname with
                  | None ->
                      (* No status marker (e.g. a truncated UDP reply):
                         whatever records did arrive are cached; walk. *)
                      Obs.Span.add_attr "outcome" "no-marker";
                      finish Bundle_unavailable
                  | Some Meta_schema.B_no_context ->
                      note_negative t ctx_key;
                      Obs.Span.add_attr "outcome" "no-context";
                      finish (Bundle_negative (Errors.Unknown_context context))
                  | Some Meta_schema.B_no_nsm -> (
                      match ns_of_ctx () with
                      | None -> finish Bundle_unavailable
                      | Some ns ->
                          note_negative t
                            (Meta_schema.nsm_name_key ~ns ~query_class);
                          Obs.Span.add_attr "outcome" "no-nsm";
                          finish
                            (Bundle_negative (Errors.No_nsm { ns; query_class }))
                      )
                  | Some Meta_schema.B_no_binding -> (
                      let nsm =
                        match ns_of_ctx () with
                        | None -> None
                        | Some ns ->
                            Option.map Wire.Value.get_str
                              (seeded_value
                                 (Meta_schema.nsm_name_key ~ns ~query_class))
                      in
                      match nsm with
                      | None -> finish Bundle_unavailable
                      | Some nsm ->
                          note_negative t (Meta_schema.nsm_binding_key nsm);
                          Obs.Span.add_attr "outcome" "no-binding";
                          finish (Bundle_negative (Errors.Unknown_nsm nsm)))
                  | Some Meta_schema.B_ok -> (
                      match ns_of_ctx () with
                      | None -> finish Bundle_unavailable
                      | Some ns -> (
                          match
                            Option.map Wire.Value.get_str
                              (seeded_value
                                 (Meta_schema.nsm_name_key ~ns ~query_class))
                          with
                          | None -> finish Bundle_unavailable
                          | Some nsm -> (
                              match
                                seeded_value (Meta_schema.nsm_binding_key nsm)
                              with
                              | None -> finish Bundle_unavailable
                              | Some v ->
                                  let info = Meta_schema.nsm_info_of_value v in
                                  Obs.Span.add_attr "outcome" "ok";
                                  finish (Bundle_resolved { ns; nsm; info })))))
              | _ ->
                  Obs.Span.add_attr "outcome" "error";
                  finish Bundle_unavailable))

let op_key (op : Dns.Msg.update_op) =
  match op with
  | Dns.Msg.Add rr -> rr.Dns.Rr.name
  | Dns.Msg.Delete_rrset (n, _) | Dns.Msg.Delete_rr (n, _) | Dns.Msg.Delete_name n
    ->
      n

(* Where a write for [key] must go: the owning partition's primary
   when the key is strictly below a learned cut, the root primary
   otherwise. Ops AT a cut maintain the delegation itself (NS + glue)
   and belong to the parent. *)
let write_route t key =
  match cut_for t key with
  | Some (cut, part)
    when List.length (Dns.Name.labels key) > List.length (Dns.Name.labels cut)
    ->
      (cut, Dns.Replica_set.primary part.rs)
  | _ -> (Meta_schema.zone_origin, t.meta_server)

let rec transact_routed t ~retried ops =
  let key = match ops with [] -> Meta_schema.zone_origin | op :: _ -> op_key op in
  let zone, server = write_route t key in
  let request = Dns.Msg.update_request ~id:(fresh_id t) ~zone ops in
  let binding = { t.raw_binding with Hrpc.Binding.server } in
  match
    Hrpc.Client.call_raw t.stack binding ?policy:t.policy
      (Dns.Msg.encode request)
  with
  | Error e -> Error (Errors.Rpc_error e)
  | Ok payload -> (
      match Dns.Msg.decode payload with
      | exception Dns.Msg.Bad_message m -> Error (Errors.Meta_error m)
      | reply -> (
          match reply.rcode with
          | Dns.Msg.No_error ->
              (* The ack carries the zone's new SOA: the serial this
                 write landed at, which pins subsequent routed reads
                 until a replica has caught up. *)
              List.iter
                (fun (rr : Dns.Rr.t) ->
                  match rr.rdata with
                  | Dns.Rr.Soa soa -> note_write_floor t zone soa.Dns.Rr.serial
                  | _ -> ())
                reply.answers;
              Ok ()
          | Dns.Msg.Not_zone when not retried ->
              (* The key is delegated away from where we sent the
                 update and we hold no (or a stale) cut for it: a probe
                 read chases the referral chain and caches the cut,
                 then the write retries once against the owner. *)
              ignore (raw_query t key);
              transact_routed t ~retried:true ops
          | rc -> Error (Errors.Meta_error ("update: " ^ Dns.Msg.rcode_to_string rc))))

let transact t ops = transact_routed t ~retried:false ops

let store t ~key ~ty ?(ttl_s = 3600l) v =
  Wire.Idl.check ~what:"Meta_client.store" ty v;
  (* Journal Put/Del deltas carry these bytes; the hand encoder emits
     the identical wire form, so either codec's output replicates to
     peers running the other. *)
  let bytes =
    match t.hand_codec with
    | Some _ -> (
        match Hot_codec.encode_value ty v with
        | Some b -> b
        | None ->
            Wire.Hotcodec.count_fallback ();
            Wire.Xdr.to_string ty v)
    | None -> Wire.Xdr.to_string ty v
  in
  let rr =
    Dns.Rr.make ~ttl:ttl_s key (Dns.Rr.Unspec bytes)
  in
  match transact t [ Dns.Msg.Delete_rrset (key, Dns.Rr.T_unspec); Dns.Msg.Add rr ] with
  | Error _ as e -> e
  | Ok () ->
      (* Keep our own cache coherent immediately; other caches rely on
         TTL expiry, as the paper accepts. A positive insert also
         overwrites any negative entry at this key. *)
      Cache.insert t.cache_ ~key:(Meta_schema.cache_key key) ~ty
        ~ttl_ms:(Int32.to_float ttl_s *. 1000.0)
        v;
      Ok ()

let remove t ~key = transact t [ Dns.Msg.Delete_name key ]

(* Adopt a zone SOA as our snapshot position: serial, refresh interval
   (poll backstop cadence) and negative TTL all come from it. *)
let adopt_soa t (soa : Dns.Rr.soa) =
  t.zone_serial <- Some soa.Dns.Rr.serial;
  t.zone_refresh_s <- Some soa.Dns.Rr.refresh;
  observe_soa t soa

(* Decode one transferred UNSPEC record into a preload row, paying the
   per-record absorption charge of whichever codec demarshals it: most
   of the 19.8 ms generated-path cost is stub demarshal plus checks,
   so a record the hand codec handles absorbs at the (much smaller)
   hand rate.  This is the AXFR preload path and, via [apply_change],
   the IXFR delta path. *)
let preload_row t (rr : Dns.Rr.t) =
  match rr.rdata with
  | Dns.Rr.Unspec bytes -> (
      match Meta_schema.ty_of_key rr.name with
      | None -> None
      | Some ty -> (
          let hand_decoded =
            match t.hand_codec with
            | Some _ when Hot_codec.is_hot_ty ty -> (
                match Hot_codec.decode_value ty bytes with
                | Some v -> Some v
                | None ->
                    Wire.Hotcodec.count_fallback ();
                    None)
            | _ -> None
          in
          match hand_decoded with
          | Some v ->
              charge
                (match t.hand_preload_record_ms with
                | Some ms -> ms
                | None -> t.preload_record_ms);
              Some
                ( Meta_schema.cache_key rr.name,
                  ty,
                  Int32.to_float rr.ttl *. 1000.0,
                  v )
          | None -> (
              match Wire.Xdr.of_string ty bytes with
              | exception _ -> None
              | v ->
                  charge t.preload_record_ms;
                  Some
                    ( Meta_schema.cache_key rr.name,
                      ty,
                      Int32.to_float rr.ttl *. 1000.0,
                      v ))))
  | _ -> None

(* Seed the cache from a full transfer payload (SOA first). *)
let adopt_transfer t records =
  List.iter
    (fun (rr : Dns.Rr.t) ->
      match rr.rdata with Dns.Rr.Soa soa -> adopt_soa t soa | _ -> ())
    records;
  let n = Cache.preload t.cache_ (List.filter_map (preload_row t) records) in
  t.full_refresh_count <- t.full_refresh_count + 1;
  Obs.Metrics.incr m_full_refreshes;
  n

let preload t =
  match
    Dns.Axfr.fetch t.stack ~server:t.meta_server ~zone:Meta_schema.zone_origin
  with
  | Error e ->
      Error (Errors.Meta_error (Format.asprintf "preload: %a" Dns.Axfr.pp_error e))
  | Ok records -> Ok (adopt_transfer t records)

(* {1 Delta-driven refresh} *)

type refresh = Unchanged | Applied_deltas of int | Full_reload of int

(* Replay one journal change into the cache: an added record is
   (re)inserted pinned, exactly as a preload row; a deleted record
   invalidates whatever we held under its key. *)
let apply_change t (change : Dns.Journal.change) =
  match change with
  | Dns.Journal.Del rr ->
      ignore (Cache.remove t.cache_ ~key:(Meta_schema.cache_key rr.Dns.Rr.name));
      t.delta_invalidation_count <- t.delta_invalidation_count + 1;
      Obs.Metrics.incr m_delta_invalidations
  | Dns.Journal.Put rr -> (
      match preload_row t rr with
      | None -> () (* not a meta record (or undecodable): nothing cached *)
      | Some row -> ignore (Cache.preload t.cache_ [ row ]))

let refresh t =
  match t.zone_serial with
  | None -> (
      (* No snapshot yet: delta refresh has no base, take the AXFR. *)
      match preload t with
      | Error _ as e -> e
      | Ok n -> Ok (Full_reload n))
  | Some serial -> (
      match
        Dns.Ixfr.fetch t.stack ~server:t.meta_server
          ~zone:Meta_schema.zone_origin ~serial
      with
      | Error e ->
          Error
            (Errors.Meta_error
               (Format.asprintf "refresh: %a" Dns.Axfr.pp_error e))
      | Ok (Dns.Ixfr.Unchanged soa) ->
          adopt_soa t soa;
          Ok Unchanged
      | Ok (Dns.Ixfr.Deltas (soa, changes)) ->
          List.iter (apply_change t) changes;
          adopt_soa t soa;
          t.delta_refresh_count <- t.delta_refresh_count + 1;
          t.delta_record_count <- t.delta_record_count + List.length changes;
          Obs.Metrics.incr m_delta_refreshes;
          Obs.Metrics.add m_delta_records (List.length changes);
          Ok (Applied_deltas (List.length changes))
      | Ok (Dns.Ixfr.Full records) ->
          (* Journal truncated past our serial: the server sent the
             whole zone in the same connection. *)
          Ok (Full_reload (adopt_transfer t records)))

let zone_serial t = t.zone_serial

(* Probe the primary's serial with a plain SOA query — control-plane
   traffic, not counted as a meta lookup. *)
let primary_serial t =
  let request =
    Dns.Msg.encode
      (Dns.Msg.query ~id:(fresh_id t) Meta_schema.zone_origin Dns.Rr.T_soa)
  in
  match Hrpc.Client.call_raw t.stack t.raw_binding ?policy:t.policy request with
  | Error _ -> None
  | Ok payload -> (
      match Dns.Msg.decode payload with
      | exception Dns.Msg.Bad_message _ -> None
      | reply ->
          List.find_map
            (fun (rr : Dns.Rr.t) ->
              match rr.rdata with
              | Dns.Rr.Soa soa -> Some soa.Dns.Rr.serial
              | _ -> None)
            reply.answers)

let start_preload_refresher ?interval_ms t =
  let running = ref true in
  let interval () =
    match interval_ms with
    | Some ms -> ms
    | None -> (
        (* The zone's own SOA refresh interval, as a BIND secondary
           would use; 30 s when no preload has captured one yet. *)
        match t.zone_refresh_s with
        | Some r -> Int32.to_float r *. 1000.0
        | None -> 30_000.0)
  in
  Sim.Engine.spawn_child ~name:"hns-preload-refresh" (fun () ->
      while !running do
        Sim.Engine.sleep (interval ());
        if !running then
          match primary_serial t with
          | None -> () (* primary unreachable: keep the current cache *)
          | Some serial ->
              let changed =
                match t.zone_serial with
                | Some s ->
                    (* A serial behind ours means the primary restarted
                       from an older durable image: our cache reflects
                       updates it lost, so resync (the IXFR ask from
                       our unbridgeable serial falls back to a full
                       reload). *)
                    if Int32.compare serial s < 0 then
                      Obs.Metrics.incr m_serial_regressions;
                    not (Int32.equal s serial)
                | None -> true
              in
              if changed then (
                match refresh t with
                | Ok _ -> Obs.Metrics.incr m_preload_refreshes
                | Error _ -> ())
      done);
  fun () -> running := false

(* {1 NOTIFY subscription} *)

let notify_serial (request : Dns.Msg.t) =
  List.find_map
    (fun (rr : Dns.Rr.t) ->
      match rr.rdata with
      | Dns.Rr.Soa soa -> Some soa.Dns.Rr.serial
      | _ -> None)
    request.answers

let start_notify_listener ?port t =
  let port =
    match port with
    | Some p -> p
    | None -> Transport.Netstack.alloc_udp_port t.stack
  in
  let stop =
    Rpc.Rawrpc.serve t.stack ~port ~name:"hns-notify" (fun ~src:_ payload ->
        match Dns.Msg.decode payload with
        | exception Dns.Msg.Bad_message _ -> None
        | request ->
            if
              request.opcode = Dns.Msg.Notify
              && List.exists
                   (fun (q : Dns.Msg.question) ->
                     Dns.Name.equal q.Dns.Msg.qname Meta_schema.zone_origin)
                   request.questions
            then begin
              (* Refresh only when the pushed serial is actually ahead
                 of our snapshot (or carries no serial at all); NOTIFY
                 is best-effort and may arrive duplicated or late. *)
              let kick () =
                t.notify_kick_count <- t.notify_kick_count + 1;
                Obs.Metrics.incr m_notify_kicks;
                try
                  Sim.Engine.spawn_child ~name:"hns-notify-refresh" (fun () ->
                      match refresh t with
                      | Ok (Applied_deltas _ | Full_reload _) ->
                          Obs.Metrics.incr m_preload_refreshes
                      | Ok Unchanged | Error _ -> ())
                with Effect.Unhandled _ -> ()
              in
              (match (notify_serial request, t.zone_serial) with
              | Some pushed, Some held when Int32.compare pushed held > 0 ->
                  (* Ahead: ordinary update push. *)
                  kick ()
              | Some pushed, Some held when Int32.compare pushed held < 0 -> (
                  (* Behind: usually just a late or duplicated NOTIFY,
                     but it can also mean the primary restarted from an
                     older durable image and our cache holds state it
                     lost. Confirm with a direct SOA probe (off the
                     handler fiber — the probe is an RPC) before
                     counting a regression and resyncing. *)
                  try
                    Sim.Engine.spawn_child ~name:"hns-notify-regress"
                      (fun () ->
                        match (primary_serial t, t.zone_serial) with
                        | Some live, Some held
                          when Int32.compare live held < 0 ->
                            Obs.Metrics.incr m_serial_regressions;
                            t.notify_kick_count <- t.notify_kick_count + 1;
                            Obs.Metrics.incr m_notify_kicks;
                            (match refresh t with
                            | Ok (Applied_deltas _ | Full_reload _) ->
                                Obs.Metrics.incr m_preload_refreshes
                            | Ok Unchanged | Error _ -> ())
                        | _ -> () (* stale notify; primary is fine *))
                  with Effect.Unhandled _ -> ())
              | Some _, Some _ -> () (* duplicate of what we hold *)
              | _ -> kick ());
              Some (Dns.Msg.encode (Dns.Msg.notify_ack ~request))
            end
            else None)
      ()
  in
  (Transport.Address.make (Transport.Netstack.ip t.stack) port, stop)

let prefetch_seeded t = t.prefetch_seeded_count
let prefetch_hits t = t.prefetch_hit_count
let referral_chases t = t.referral_chase_count
let referral_hits t = t.referral_hit_count
let replica_set t = t.replica_set
let read_your_writes t = t.read_your_writes

let write_floor t zone =
  List.find_map
    (fun (z, s) -> if Dns.Name.equal z zone then Some s else None)
    t.write_floors

let partitions t =
  N_tbl.fold (fun cut part acc -> (cut, part.rs) :: acc) t.referrals []
  |> List.sort (fun (a, _) (b, _) -> Dns.Name.compare a b)
let delta_refreshes t = t.delta_refresh_count
let delta_records t = t.delta_record_count
let delta_invalidations t = t.delta_invalidation_count
let full_refreshes t = t.full_refresh_count
let notify_kicks t = t.notify_kick_count

let cache_host_addr t ~context ~host ip =
  let key = Meta_schema.host_addr_cache_key ~context ~host in
  match t.hand_codec with
  | Some _ ->
      (* Demand fill stays native too: no Value on the way in. *)
      Cache.insert_addr t.cache_ ~key ip
  | None ->
      Cache.insert t.cache_ ~key ~ty:Meta_schema.host_addr_ty
        (Wire.Value.Uint ip)

let cached_host_addr t ~context ~host =
  let key = Meta_schema.host_addr_cache_key ~context ~host in
  let t0 = now_ms () in
  charge_mapping_overhead t;
  let hit ip =
    if Hashtbl.mem t.prefetched key then begin
      t.prefetch_hit_count <- t.prefetch_hit_count + 1;
      Obs.Metrics.incr m_prefetch_hits
    end;
    log_mapping t key true (now_ms () -. t0);
    Some ip
  in
  (* Native entries (and demand-filled Uint values) serve without
     materialising a tree; anything else takes the compat path. *)
  match Cache.find_addr t.cache_ ~key with
  | Some ip -> hit ip
  | None -> (
      match Cache.find t.cache_ ~key ~ty:Meta_schema.host_addr_ty with
      | Some (Wire.Value.Uint ip) -> hit ip
      | Some _ | None ->
          log_mapping t key false (now_ms () -. t0);
          None)
