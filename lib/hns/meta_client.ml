type t = {
  stack : Transport.Netstack.stack;
  meta_server : Transport.Address.t;
  fallback_servers : Transport.Address.t list;
  cache_ : Cache.t;
  generated_cost : Wire.Generic_marshal.cost_model;
  preload_record_ms : float;
  mapping_overhead_ms : float;
  mutable walk : (string * bool * float) list; (* newest first, max 64 *)
  raw_binding : Hrpc.Binding.t;
  policy : Rpc.Control.retry_policy option;
  mutable lookup_count : int;
  mutable next_id : int;
}

let create stack ~meta_server ?(fallback_servers = []) ~cache
    ?(generated_cost = { Wire.Generic_marshal.per_call_ms = 0.0; per_node_ms = 0.0 })
    ?(preload_record_ms = 0.0) ?(mapping_overhead_ms = 0.0) ?policy () =
  {
    stack;
    meta_server;
    fallback_servers;
    cache_ = cache;
    generated_cost;
    preload_record_ms;
    mapping_overhead_ms;
    walk = [];
    raw_binding =
      Hrpc.Binding.make ~suite:Hrpc.Component.raw_udp_suite ~server:meta_server
        ~prog:0 ~vers:0;
    policy;
    lookup_count = 0;
    next_id = 1;
  }

let cache t = t.cache_
let remote_lookups t = t.lookup_count

let m_lookups = Obs.Metrics.counter "hns.meta.lookups"
let m_remote_lookups = Obs.Metrics.counter "hns.meta.remote_lookups"
let m_lookup_ms = Obs.Metrics.histogram "hns.meta.lookup_ms"

let charge ms =
  if ms > 0.0 then
    try Sim.Engine.sleep ms with Effect.Unhandled _ -> ()

let fresh_id t =
  let id = t.next_id in
  t.next_id <- (t.next_id + 1) land 0xFFFF;
  id

(* One raw DNS exchange, paying the generated-stub marshalling price
   on both directions; reads fail over to replica servers in order. *)
let raw_query t key =
  t.lookup_count <- t.lookup_count + 1;
  Obs.Metrics.incr m_remote_lookups;
  let request = Dns.Msg.query ~id:(fresh_id t) key Dns.Rr.T_unspec in
  (* Request encode through the generated path: fixed entry cost. *)
  charge t.generated_cost.Wire.Generic_marshal.per_call_ms;
  let exchange server =
    let binding = { t.raw_binding with Hrpc.Binding.server } in
    match
      Hrpc.Client.call_raw t.stack binding ?policy:t.policy
        (Dns.Msg.encode request)
    with
    | Error e -> Error (Errors.Rpc_error e)
    | Ok payload -> (
        match Dns.Msg.decode payload with
        | exception Dns.Msg.Bad_message m -> Error (Errors.Meta_error m)
        | reply -> Ok reply)
  in
  let rec go last = function
    | [] -> last
    | server :: rest -> (
        match exchange server with
        | Error (Errors.Rpc_error (Rpc.Control.Timeout _)) as e -> go e rest
        | outcome -> outcome)
  in
  go
    (Error (Errors.Rpc_error (Rpc.Control.Timeout { elapsed_ms = 0.0 })))
    (t.meta_server :: t.fallback_servers)

let first_unspec (reply : Dns.Msg.t) =
  List.find_map
    (fun (rr : Dns.Rr.t) ->
      match rr.rdata with Dns.Rr.Unspec bytes -> Some (bytes, rr.ttl) | _ -> None)
    reply.answers

(* HNS library bookkeeping charged once per data mapping: TTL checks,
   key construction, designation logic. *)
let charge_mapping_overhead t = charge t.mapping_overhead_ms

let log_mapping t key hit cost =
  let entry = (key, hit, cost) in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  t.walk <- take 64 (entry :: t.walk)

let walk_log t = List.rev t.walk
let clear_walk_log t = t.walk <- []

let now_ms () = try Sim.Engine.time () with Effect.Unhandled _ -> 0.0

let lookup_remote t ~key ~ty =
  match () with
  | () -> (
      match raw_query t key with
      | Error _ as e -> e
      | Ok reply -> (
          match reply.rcode with
          | Dns.Msg.Nx_domain -> Ok None
          | Dns.Msg.No_error -> (
              match first_unspec reply with
              | None -> Ok None
              | Some (bytes, ttl_s) -> (
                  match Wire.Xdr.of_string ty bytes with
                  | exception _ ->
                      Error
                        (Errors.Meta_error
                           (Printf.sprintf "malformed record at %s"
                              (Dns.Name.to_string key)))
                  | v ->
                      (* Response decode through the generated path. *)
                      charge (Wire.Generic_marshal.cost t.generated_cost v);
                      Cache.insert t.cache_ ~key:(Meta_schema.cache_key key) ~ty
                        ~ttl_ms:(Int32.to_float ttl_s *. 1000.0)
                        v;
                      Ok (Some v)))
          | rc -> Error (Errors.Meta_error (Dns.Msg.rcode_to_string rc))))

let lookup t ~key ~ty =
  let t0 = now_ms () in
  Obs.Metrics.incr m_lookups;
  charge_mapping_overhead t;
  let finish hit outcome =
    let elapsed = now_ms () -. t0 in
    Obs.Metrics.observe m_lookup_ms elapsed;
    Obs.Span.add_attr "hit" (if hit then "true" else "false");
    log_mapping t (Meta_schema.cache_key key) hit elapsed;
    outcome
  in
  match Cache.find t.cache_ ~key:(Meta_schema.cache_key key) ~ty with
  | Some v -> finish true (Ok (Some v))
  | None -> (
      match lookup_remote t ~key ~ty with
      | Error _ as e -> (
          (* Backend unreachable: serve the expired entry if it is
             still within the cache's staleness budget. *)
          match Cache.find_stale t.cache_ ~key:(Meta_schema.cache_key key) ~ty with
          | Some v ->
              Obs.Span.add_attr "stale" "true";
              finish false (Ok (Some v))
          | None -> finish false e)
      | ok -> finish false ok)

let transact t ops =
  let request = Dns.Msg.update_request ~id:(fresh_id t) ~zone:Meta_schema.zone_origin ops in
  match
    Hrpc.Client.call_raw t.stack t.raw_binding ?policy:t.policy
      (Dns.Msg.encode request)
  with
  | Error e -> Error (Errors.Rpc_error e)
  | Ok payload -> (
      match Dns.Msg.decode payload with
      | exception Dns.Msg.Bad_message m -> Error (Errors.Meta_error m)
      | reply -> (
          match reply.rcode with
          | Dns.Msg.No_error -> Ok ()
          | rc -> Error (Errors.Meta_error ("update: " ^ Dns.Msg.rcode_to_string rc))))

let store t ~key ~ty ?(ttl_s = 3600l) v =
  Wire.Idl.check ~what:"Meta_client.store" ty v;
  let bytes = Wire.Xdr.to_string ty v in
  let rr =
    Dns.Rr.make ~ttl:ttl_s key (Dns.Rr.Unspec bytes)
  in
  match transact t [ Dns.Msg.Delete_rrset (key, Dns.Rr.T_unspec); Dns.Msg.Add rr ] with
  | Error _ as e -> e
  | Ok () ->
      (* Keep our own cache coherent immediately; other caches rely on
         TTL expiry, as the paper accepts. *)
      Cache.insert t.cache_ ~key:(Meta_schema.cache_key key) ~ty
        ~ttl_ms:(Int32.to_float ttl_s *. 1000.0)
        v;
      Ok ()

let remove t ~key = transact t [ Dns.Msg.Delete_name key ]

let preload t =
  match
    Dns.Axfr.fetch t.stack ~server:t.meta_server ~zone:Meta_schema.zone_origin
  with
  | Error e ->
      Error (Errors.Meta_error (Format.asprintf "preload: %a" Dns.Axfr.pp_error e))
  | Ok records ->
      let seeded = ref 0 in
      List.iter
        (fun (rr : Dns.Rr.t) ->
          match rr.rdata with
          | Dns.Rr.Unspec bytes -> (
              match Meta_schema.ty_of_key rr.name with
              | None -> ()
              | Some ty -> (
                  match Wire.Xdr.of_string ty bytes with
                  | exception _ -> ()
                  | v ->
                      charge t.preload_record_ms;
                      Cache.insert t.cache_ ~key:(Meta_schema.cache_key rr.name) ~ty
                        ~ttl_ms:(Int32.to_float rr.ttl *. 1000.0)
                        v;
                      incr seeded))
          | _ -> ())
        records;
      Ok !seeded

let cache_host_addr t ~context ~host ip =
  Cache.insert t.cache_
    ~key:(Meta_schema.host_addr_cache_key ~context ~host)
    ~ty:Meta_schema.host_addr_ty (Wire.Value.Uint ip)

let cached_host_addr t ~context ~host =
  let key = Meta_schema.host_addr_cache_key ~context ~host in
  let t0 = now_ms () in
  charge_mapping_overhead t;
  match Cache.find t.cache_ ~key ~ty:Meta_schema.host_addr_ty with
  | Some (Wire.Value.Uint ip) ->
      log_mapping t key true (now_ms () -. t0);
      Some ip
  | Some _ | None ->
      log_mapping t key false (now_ms () -. t0);
      None
