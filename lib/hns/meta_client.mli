(** Access to the meta-naming database: the HNS side of the modified
    BIND.

    Lookups go through the HNS cache first; misses perform a raw-HRPC
    exchange of native DNS messages with the meta-BIND server, paying
    the generated-stub marshalling price the paper measured (the
    request encode and the response decode each run through the
    {!Wire.Generic_marshal} cost model — this is "the price we paid
    for the RPC-style structure we built for our BIND interface").

    Writes are dynamic-update transactions: replace-rrset semantics,
    one UNSPEC record per key. Preloading transfers the whole meta
    zone (AXFR) and seeds the cache, as BIND secondaries do. *)

type t

(** [mapping_overhead_ms] is HNS library bookkeeping charged once per
    data mapping (both on {!lookup} and, via
    {!charge_mapping_overhead}, on the host-address mapping).
    [fallback_servers] are tried in order when the primary meta server
    does not answer — typically BIND secondaries of the meta zone
    ({!Dns.Secondary}); reads fail over, writes go to the primary
    only. [policy] governs the underlying HRPC retries (timeouts and
    jittered backoff); when the cache was created with a staleness
    budget, a failed refresh falls back to the expired entry
    (serve-stale).

    [enable_bundle] (default off) lets {!find_nsm_bundle} issue
    batched meta queries against a bundle-aware server; off, it always
    reports {!Bundle_unavailable} and callers take the per-mapping
    path. [negative_ttl_ms] (default 0 = disabled) caches "no such
    record" answers for that long, so repeated misses on absent names
    fail fast instead of repeating the round trip.

    [replica_set] routes root-zone reads over the meta zone's replica
    tree ({!Dns.Replica_set}) instead of pinning them all to
    [meta_server]; writes still go to the primary. [read_your_writes]
    (default on) pins reads after a write to replicas whose SOA serial
    has caught up to the write's serial, falling back to the primary
    until one has — turn it off to measure the staleness window the
    pinning closes. Referral replies from a partitioned namespace are
    always chased transparently (the root names the partition's
    servers in NS + glue records, primary first) and the cut is cached
    for the NS TTL, so the chase is paid once per TTL; see
    [hns.meta.referral_chases] / [hns.meta.referral_hits].

    With [hand_codec] set, hot record shapes marshal through the
    hand-coded codec ({!Hot_codec}) and charge that model instead of
    [generated_cost]; prefetch-tail HostAddress rows decode zero-copy
    into native cache entries; transfer/delta records absorb at
    [hand_preload_record_ms] (falling back to [preload_record_ms] when
    unset). Cold/unknown shapes always fall back to the generated
    path, preserving interop with heterogeneous peers. *)
val create :
  Transport.Netstack.stack ->
  meta_server:Transport.Address.t ->
  ?fallback_servers:Transport.Address.t list ->
  ?replica_set:Dns.Replica_set.t ->
  ?read_your_writes:bool ->
  cache:Cache.t ->
  ?generated_cost:Wire.Generic_marshal.cost_model ->
  ?hand_codec:Wire.Hotcodec.cost_model ->
  ?hand_preload_record_ms:float ->
  ?preload_record_ms:float ->
  ?mapping_overhead_ms:float ->
  ?enable_bundle:bool ->
  ?negative_ttl_ms:float ->
  ?policy:Rpc.Control.retry_policy ->
  unit ->
  t

(** Charge one mapping's worth of HNS processing. {!lookup} and
    {!cached_host_addr} do this themselves; exposed for extensions
    implementing additional mapping kinds. *)
val charge_mapping_overhead : t -> unit

val cache : t -> Cache.t

(** Remote lookups actually performed (cache misses). *)
val remote_lookups : t -> int

val bundle_enabled : t -> bool

(** The configured negative-TTL {e cap} (0 = negative caching off). *)
val negative_ttl_ms : t -> float

(** The TTL a negative entry recorded now would actually get: the meta
    zone's SOA minimum (RFC 2308), observed from transfer payloads and
    from the SOA the server attaches to negative replies, capped by
    {!negative_ttl_ms}. Equal to the cap until an SOA has been seen;
    0 when negative caching is off. *)
val effective_negative_ttl_ms : t -> float

(** [Ok None] when the meta database has no record at the key — either
    from the server or from a cached negative entry. *)
val lookup :
  t -> key:Dns.Name.t -> ty:Wire.Idl.ty -> (Wire.Value.t option, Errors.t) result

(** {1 The batched FindNSM meta query}

    One round trip answering mappings 1–3 of FindNSM at once, served
    by a bundle-aware meta server ({!Meta_bundle}). All real records
    in the reply are decoded (at the generated-stub price) and
    inserted into the cache, so even a partially-useful bundle warms
    the per-mapping path. *)

type bundle_result =
  | Bundle_unavailable
      (** No batched answer — bundle disabled, server too old
          (NXDOMAIN, remembered), already warm, unreachable, or a
          malformed/truncated reply. Callers run the per-mapping
          walk. *)
  | Bundle_resolved of {
      ns : string;
      nsm : string;
      info : Meta_schema.nsm_info;
    }  (** Mappings 1–3 resolved in one exchange. *)
  | Bundle_negative of Errors.t
      (** The server answered definitively that the chain ends early
          (unknown context, no NSM for the class, no binding); the
          failing key is negatively cached. *)

val find_nsm_bundle :
  t -> context:string -> query_class:Query_class.t -> bundle_result

(** {1 Resolve-tail prefetch accounting}

    A bundle-aware server may piggyback its hottest [HostAddress]
    answers on the reply ({!Meta_bundle}'s [prefetch]); those rows are
    seeded pinned under the preload quota and later host-address cache
    hits on them are attributed back, so "how much did the prefetch
    buy" is directly observable. *)

(** Prefetch rows admitted into this cache
    ([hns.meta.bundle_prefetched]). *)
val prefetch_seeded : t -> int

(** Host-address cache hits served from prefetched rows — resolves
    whose trailing NSM data round trip the prefetch eliminated
    ([hns.meta.prefetch_hits]). *)
val prefetch_hits : t -> int

(** One dynamic-update transaction of raw ops, routed by the first
    op's name: the owning partition's primary when the name is
    strictly below a learned cut, the root primary otherwise. A
    [Not_zone] rejection triggers one referral-learning probe read and
    a single retry against the owner. Prefer {!store} / {!remove} for
    ordinary records; this is for delegation maintenance
    ({!Admin.register_partition}) and other multi-op updates. *)
val transact : t -> Dns.Msg.update_op list -> (unit, Errors.t) result

(** Replace the record at [key]. [ttl_s] defaults to 3600. *)
val store :
  t -> key:Dns.Name.t -> ty:Wire.Idl.ty -> ?ttl_s:int32 -> Wire.Value.t -> (unit, Errors.t) result

val remove : t -> key:Dns.Name.t -> (unit, Errors.t) result

(** Transfer the meta zone (AXFR) and bulk-seed the cache via
    {!Cache.preload}; returns the number of records seeded. Also
    captures the zone's SOA serial and refresh interval, which drive
    {!start_preload_refresher}. *)
val preload : t -> (int, Errors.t) result

(** The meta zone's serial as of the last {!preload} or {!refresh},
    if any. *)
val zone_serial : t -> int32 option

(** {1 Delta-driven refresh}

    Once a {!preload} has established a snapshot at some serial, the
    cache is kept coherent {e incrementally}: an IXFR exchange against
    the primary's change journal replays only what changed since our
    serial — added records are (re)inserted pinned, deleted records
    are invalidated on the spot, and the tracked serial advances. A
    truncated journal degrades to a full reload inside the same
    exchange; a client with no snapshot yet takes the AXFR path. *)

type refresh =
  | Unchanged  (** our serial is current; nothing moved *)
  | Applied_deltas of int  (** n journal changes replayed into the cache *)
  | Full_reload of int
      (** AXFR (re)seed — no snapshot yet, or journal truncated *)

val refresh : t -> (refresh, Errors.t) result

(** [start_notify_listener ?port t] registers a NOTIFY endpoint on the
    client's stack (an allocated UDP port by default) and returns its
    address plus a stop closure. Register the address with the
    primary ({!Dns.Server.register_notify}) and the client refreshes
    the moment the meta zone's serial advances — the
    {!start_preload_refresher} poll loop remains the backstop for
    lost pushes. Stale or duplicate NOTIFYs are acknowledged without
    refreshing. Must be called inside the simulation. *)
val start_notify_listener :
  ?port:int -> t -> Transport.Address.t * (unit -> unit)

(** Incremental refreshes applied ([hns.meta.delta_refreshes]). *)
val delta_refreshes : t -> int

(** Journal changes replayed over all incremental refreshes. *)
val delta_records : t -> int

(** Cache entries invalidated by delta-carried deletions. *)
val delta_invalidations : t -> int

(** Full AXFR seeds: initial {!preload}s plus truncation fallbacks. *)
val full_refreshes : t -> int

(** NOTIFY pushes that triggered a refresh. *)
val notify_kicks : t -> int

(** Probe the primary's current SOA serial (control-plane traffic,
    not counted in {!remote_lookups}); [None] if unreachable. *)
val primary_serial : t -> int32 option

(** [start_preload_refresher ?interval_ms t] spawns a background
    process (must be called inside the simulation) that periodically
    probes the primary's SOA serial and {!refresh}es (delta-driven,
    with AXFR fallback) when it has advanced — counted in
    [hns.meta.preload_refreshes]. The interval
    defaults to the zone's SOA refresh value captured by the last
    {!preload} (30 s before any preload). Returns a stop closure;
    call it from within the simulation, and note the loop only exits
    at its next wake-up. *)
val start_preload_refresher : ?interval_ms:float -> t -> unit -> unit

(** {1 Mapping walk log}

    Each data mapping performed is appended to a bounded log
    (newest 64): the mapping's cache key, whether it hit, and its
    virtual-time cost. FindNSM's six mappings show up here one by
    one — the trace behind Figure 2.1. *)

(** Oldest first. *)
val walk_log : t -> (string * bool * float) list

val clear_walk_log : t -> unit

(** {1 Partition routing and read-your-writes}

    See [replica_set] / [read_your_writes] on {!create}. *)

(** Referral chains chased (each learns and caches one partition
    cut). *)
val referral_chases : t -> int

(** Reads routed directly from a cached cut, skipping the chase. *)
val referral_hits : t -> int

(** The root replica set this client routes through, if any. *)
val replica_set : t -> Dns.Replica_set.t option

val read_your_writes : t -> bool

(** The serial this client's last write to [zone] landed at (from the
    update ack's SOA); reads of that zone pin to replicas at or above
    it while read-your-writes is on. *)
val write_floor : t -> Dns.Name.t -> int32 option

(** Partition cuts currently cached from referrals, with the replica
    set serving each, sorted by cut name. *)
val partitions : t -> (Dns.Name.t * Dns.Replica_set.t) list

(** Cache a host-address mapping on behalf of FindNSM (mapping six). *)
val cache_host_addr :
  t -> context:string -> host:string -> Transport.Address.ip -> unit

(** Consult the cached host-address mapping; charges one mapping's
    overhead and logs the consultation either way. *)
val cached_host_addr :
  t -> context:string -> host:string -> Transport.Address.ip option
