(** Access to the meta-naming database: the HNS side of the modified
    BIND.

    Lookups go through the HNS cache first; misses perform a raw-HRPC
    exchange of native DNS messages with the meta-BIND server, paying
    the generated-stub marshalling price the paper measured (the
    request encode and the response decode each run through the
    {!Wire.Generic_marshal} cost model — this is "the price we paid
    for the RPC-style structure we built for our BIND interface").

    Writes are dynamic-update transactions: replace-rrset semantics,
    one UNSPEC record per key. Preloading transfers the whole meta
    zone (AXFR) and seeds the cache, as BIND secondaries do. *)

type t

(** [mapping_overhead_ms] is HNS library bookkeeping charged once per
    data mapping (both on {!lookup} and, via
    {!charge_mapping_overhead}, on the host-address mapping).
    [fallback_servers] are tried in order when the primary meta server
    does not answer — typically BIND secondaries of the meta zone
    ({!Dns.Secondary}); reads fail over, writes go to the primary
    only. [policy] governs the underlying HRPC retries (timeouts and
    jittered backoff); when the cache was created with a staleness
    budget, a failed refresh falls back to the expired entry
    (serve-stale). *)
val create :
  Transport.Netstack.stack ->
  meta_server:Transport.Address.t ->
  ?fallback_servers:Transport.Address.t list ->
  cache:Cache.t ->
  ?generated_cost:Wire.Generic_marshal.cost_model ->
  ?preload_record_ms:float ->
  ?mapping_overhead_ms:float ->
  ?policy:Rpc.Control.retry_policy ->
  unit ->
  t

(** Charge one mapping's worth of HNS processing. {!lookup} and
    {!cached_host_addr} do this themselves; exposed for extensions
    implementing additional mapping kinds. *)
val charge_mapping_overhead : t -> unit

val cache : t -> Cache.t

(** Remote lookups actually performed (cache misses). *)
val remote_lookups : t -> int

(** [Ok None] when the meta database has no record at the key. *)
val lookup :
  t -> key:Dns.Name.t -> ty:Wire.Idl.ty -> (Wire.Value.t option, Errors.t) result

(** Replace the record at [key]. [ttl_s] defaults to 3600. *)
val store :
  t -> key:Dns.Name.t -> ty:Wire.Idl.ty -> ?ttl_s:int32 -> Wire.Value.t -> (unit, Errors.t) result

val remove : t -> key:Dns.Name.t -> (unit, Errors.t) result

(** Transfer the meta zone and seed the cache; returns the number of
    records seeded. *)
val preload : t -> (int, Errors.t) result

(** {1 Mapping walk log}

    Each data mapping performed is appended to a bounded log
    (newest 64): the mapping's cache key, whether it hit, and its
    virtual-time cost. FindNSM's six mappings show up here one by
    one — the trace behind Figure 2.1. *)

(** Oldest first. *)
val walk_log : t -> (string * bool * float) list

val clear_walk_log : t -> unit

(** Cache a host-address mapping on behalf of FindNSM (mapping six). *)
val cache_host_addr :
  t -> context:string -> host:string -> Transport.Address.ip -> unit

(** Consult the cached host-address mapping; charges one mapping's
    overhead and logs the consultation either way. *)
val cached_host_addr :
  t -> context:string -> host:string -> Transport.Address.ip option
