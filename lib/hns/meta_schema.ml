let zone_origin = Dns.Name.of_string "hns-meta"

type ns_info = {
  ns_type : string;
  ns_host : string;
  ns_host_context : string;
  ns_port : int;
}

type nsm_info = {
  nsm_host : string;
  nsm_host_context : string;
  nsm_port : int;
  nsm_prog : int;
  nsm_vers : int;
  nsm_suite : Hrpc.Component.protocol_suite;
}

let validate_simple_name ~what s =
  if s = "" then invalid_arg (Printf.sprintf "%s: empty name" what);
  String.iter
    (fun c ->
      if c = '.' || c = '!' then
        invalid_arg (Printf.sprintf "%s: %S contains %C" what s c))
    s

(* Contexts may contain dots; each dot-separated piece becomes a
   label, which keeps keys valid DNS names and collision-free. *)
let context_key context =
  Dns.Name.append (Dns.Name.of_string context)
    (Dns.Name.append (Dns.Name.of_string "ctx") zone_origin)

(* The delegable context cut for a partition: every context named
   "<something>.<label>" keys under it, so delegating this one name
   hands the partition its whole context subtree. *)
let partition_cut label =
  validate_simple_name ~what:"Meta_schema.partition_cut" label;
  Dns.Name.prepend label
    (Dns.Name.append (Dns.Name.of_string "ctx") zone_origin)

(* Glue names live under nsglue.hns-meta — outside the cut they serve,
   so the delegation does not occlude its own glue. *)
let partition_glue_key ~label i =
  validate_simple_name ~what:"Meta_schema.partition_glue_key" label;
  Dns.Name.of_labels
    ([ Printf.sprintf "s%d" i; label; "nsglue" ] @ Dns.Name.labels zone_origin)

let nsm_name_key ~ns ~query_class =
  validate_simple_name ~what:"Meta_schema.nsm_name_key" ns;
  Query_class.validate query_class;
  Dns.Name.of_labels
    ([ query_class; ns; "nsm" ] @ Dns.Name.labels zone_origin)

let nsm_alternates_key ~ns ~query_class =
  validate_simple_name ~what:"Meta_schema.nsm_alternates_key" ns;
  Query_class.validate query_class;
  Dns.Name.of_labels
    ([ query_class; ns; "nsmalt" ] @ Dns.Name.labels zone_origin)

let nsm_binding_key nsm =
  validate_simple_name ~what:"Meta_schema.nsm_binding_key" nsm;
  Dns.Name.of_labels ([ nsm; "nsmbind" ] @ Dns.Name.labels zone_origin)

let ns_info_key ns =
  validate_simple_name ~what:"Meta_schema.ns_info_key" ns;
  Dns.Name.of_labels ([ ns; "ns" ] @ Dns.Name.labels zone_origin)

(* The batched FindNSM query: one synthesized name standing for
   mappings 1-3 of a (context, query class) pair. Not a stored record
   — the meta server's bundle answerer ({!Meta_bundle}) recognizes the
   [bundle] marker and replies with the underlying real records plus a
   status marker at this name. *)
let bundle_marker = "bundle"

let bundle_key ~context ~query_class =
  Query_class.validate query_class;
  Dns.Name.of_labels
    ((query_class :: Dns.Name.labels (Dns.Name.of_string context))
    @ (bundle_marker :: Dns.Name.labels zone_origin))

(* Inverse of [bundle_key]: split at the bundle marker sitting
   immediately above the zone origin. *)
let parse_bundle_key key =
  let origin = Dns.Name.labels zone_origin in
  let rec split acc = function
    | m :: rest when m = bundle_marker && rest = origin -> Some (List.rev acc)
    | x :: rest -> split (x :: acc) rest
    | [] -> None
  in
  match split [] (Dns.Name.labels key) with
  | Some (query_class :: (_ :: _ as context_labels)) ->
      Some (String.concat "." context_labels, query_class)
  | Some _ | None -> None

type bundle_status = B_ok | B_no_context | B_no_nsm | B_no_binding

let bundle_status_ty =
  Wire.Idl.T_enum [ "ok"; "no-context"; "no-nsm"; "no-binding" ]

let bundle_status_to_value = function
  | B_ok -> Wire.Value.Enum 0
  | B_no_context -> Wire.Value.Enum 1
  | B_no_nsm -> Wire.Value.Enum 2
  | B_no_binding -> Wire.Value.Enum 3

let bundle_status_of_value v =
  match Wire.Value.get_int v with
  | 0 -> Some B_ok
  | 1 -> Some B_no_context
  | 2 -> Some B_no_nsm
  | 3 -> Some B_no_binding
  | _ -> None

let string_ty = Wire.Idl.T_string
let nsm_alternates_ty = Wire.Idl.T_array Wire.Idl.T_string

let ns_info_ty =
  Wire.Idl.T_struct
    [
      ("type", Wire.Idl.T_string);
      ("host", Wire.Idl.T_string);
      ("host_context", Wire.Idl.T_string);
      ("port", Wire.Idl.T_int);
    ]

let nsm_info_ty =
  Wire.Idl.T_struct
    [
      ("host", Wire.Idl.T_string);
      ("host_context", Wire.Idl.T_string);
      ("port", Wire.Idl.T_int);
      ("prog", Wire.Idl.T_int);
      ("vers", Wire.Idl.T_int);
      ("data_rep", Wire.Idl.T_enum [ "xdr"; "courier" ]);
      ("transport", Wire.Idl.T_enum [ "udp"; "tcp" ]);
      ("control", Wire.Idl.T_enum [ "sunrpc"; "courier"; "raw" ]);
    ]

let ns_info_to_value i =
  Wire.Value.Struct
    [
      ("type", Wire.Value.Str i.ns_type);
      ("host", Str i.ns_host);
      ("host_context", Str i.ns_host_context);
      ("port", Wire.Value.int i.ns_port);
    ]

let ns_info_of_value v =
  let f name = Wire.Value.field v name in
  {
    ns_type = Wire.Value.get_str (f "type");
    ns_host = Wire.Value.get_str (f "host");
    ns_host_context = Wire.Value.get_str (f "host_context");
    ns_port = Wire.Value.get_int (f "port");
  }

let nsm_info_to_value i =
  let dr = match i.nsm_suite.Hrpc.Component.data_rep with Wire.Data_rep.Xdr -> 0 | Courier -> 1 in
  let tr = match i.nsm_suite.Hrpc.Component.transport with Hrpc.Component.T_udp -> 0 | T_tcp -> 1 in
  let ct =
    match i.nsm_suite.Hrpc.Component.control with
    | Hrpc.Component.C_sunrpc -> 0
    | C_courier -> 1
    | C_raw -> 2
  in
  Wire.Value.Struct
    [
      ("host", Wire.Value.Str i.nsm_host);
      ("host_context", Str i.nsm_host_context);
      ("port", Wire.Value.int i.nsm_port);
      ("prog", Wire.Value.int i.nsm_prog);
      ("vers", Wire.Value.int i.nsm_vers);
      ("data_rep", Wire.Value.Enum dr);
      ("transport", Wire.Value.Enum tr);
      ("control", Wire.Value.Enum ct);
    ]

let nsm_info_of_value v =
  let f name = Wire.Value.field v name in
  let data_rep =
    match Wire.Value.get_int (f "data_rep") with
    | 0 -> Wire.Data_rep.Xdr
    | _ -> Wire.Data_rep.Courier
  in
  let transport =
    match Wire.Value.get_int (f "transport") with
    | 0 -> Hrpc.Component.T_udp
    | _ -> Hrpc.Component.T_tcp
  in
  let control =
    match Wire.Value.get_int (f "control") with
    | 0 -> Hrpc.Component.C_sunrpc
    | 1 -> Hrpc.Component.C_courier
    | _ -> Hrpc.Component.C_raw
  in
  {
    nsm_host = Wire.Value.get_str (f "host");
    nsm_host_context = Wire.Value.get_str (f "host_context");
    nsm_port = Wire.Value.get_int (f "port");
    nsm_prog = Wire.Value.get_int (f "prog");
    nsm_vers = Wire.Value.get_int (f "vers");
    nsm_suite = { Hrpc.Component.data_rep; transport; control };
  }

let host_addr_ty = Wire.Idl.T_uint

(* Host-address prefetch rows piggybacked on bundle replies: one
   combined label [<context>!<host>] above the [addr] marker. '!' is
   forbidden in simple names, and a single combined label keeps
   dotted contexts and dotted host names unambiguous. *)
let host_addr_marker = "addr"

let host_addr_key ~context ~host =
  Dns.Name.of_labels
    ((context ^ "!" ^ String.lowercase_ascii host)
    :: host_addr_marker :: Dns.Name.labels zone_origin)

let parse_host_addr_key key =
  let origin = Dns.Name.labels zone_origin in
  match Dns.Name.labels key with
  | combined :: m :: rest when m = host_addr_marker && rest = origin -> (
      match String.index_opt combined '!' with
      | Some i when i > 0 && i < String.length combined - 1 ->
          Some
            ( String.sub combined 0 i,
              String.sub combined (i + 1) (String.length combined - i - 1) )
      | _ -> None)
  | _ -> None

(* The marker label sits immediately above the zone origin. *)
let ty_of_key key =
  let rec marker = function
    | [ m; "hns-meta" ] -> Some m
    | _ :: rest -> marker rest
    | [] -> None
  in
  match marker (Dns.Name.labels key) with
  | Some "ctx" -> Some string_ty
  | Some "nsm" -> Some string_ty
  | Some "nsmalt" -> Some nsm_alternates_ty
  | Some "nsmbind" -> Some nsm_info_ty
  | Some "ns" -> Some ns_info_ty
  | Some "addr" -> Some host_addr_ty
  | Some _ | None -> None

let cache_key key = "meta:" ^ Dns.Name.to_string key

let host_addr_cache_key ~context ~host =
  Printf.sprintf "addr:%s!%s" context (String.lowercase_ascii host)
