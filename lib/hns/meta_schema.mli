(** The meta-naming schema: how HNS management data is laid out in the
    modified BIND.

    "The HNS maintains additional meta-naming information needed for
    managing the global name space. This information consists of the
    names and binding information for each name service and each NSM,
    the names of all contexts, and the mappings from contexts to name
    services." Each datum is one UNSPEC record in the [hns-meta.]
    zone, keyed by a name that encodes the mapping:

    {v
    <context>.ctx.hns-meta.            -> name-service name
    <qclass>.<ns>.nsm.hns-meta.        -> NSM name
    <nsm>.nsmbind.hns-meta.            -> NSM location (host NAME + suite)
    <ns>.ns.hns-meta.                  -> name-service descriptor
    v}

    Name-service and NSM names are single labels (no dots); contexts
    may contain dots. NSM locations deliberately hold a host {e name},
    not an address — translating it is itself an HNS naming operation,
    which is why a cold FindNSM performs six data mappings. *)

val zone_origin : Dns.Name.t

(** A name-service instance known to the HNS. *)
type ns_info = {
  ns_type : string;      (** "bind", "clearinghouse", ... *)
  ns_host : string;      (** host name of the service *)
  ns_host_context : string;  (** context resolving that host name *)
  ns_port : int;
}

(** Where an NSM lives: binding information with a host name. *)
type nsm_info = {
  nsm_host : string;
  nsm_host_context : string;
  nsm_port : int;
  nsm_prog : int;
  nsm_vers : int;
  nsm_suite : Hrpc.Component.protocol_suite;
}

(** Raises [Invalid_argument] on a name service/NSM name containing
    ['.'] or ['!'], or empty. *)
val validate_simple_name : what:string -> string -> unit

(** {1 Meta-record keys} *)

val context_key : string -> Dns.Name.t

(** [<label>.ctx.hns-meta.] — the zone cut delegating every context
    named ["<x>.<label>"] to a partition primary. Raises like
    {!validate_simple_name}. *)
val partition_cut : string -> Dns.Name.t

(** [s<i>.<label>.nsglue.hns-meta.] — where the [i]-th server of
    partition [label] publishes its glue A record (outside the cut, so
    the delegation does not occlude its own glue). *)
val partition_glue_key : label:string -> int -> Dns.Name.t

val nsm_name_key : ns:string -> query_class:Query_class.t -> Dns.Name.t

(** [<qclass>.<ns>.nsmalt.hns-meta.] -> alternate NSM names (an array
    of strings) that can answer the class when the designated NSM is
    unreachable — the failover set. *)
val nsm_alternates_key : ns:string -> query_class:Query_class.t -> Dns.Name.t

val nsm_binding_key : string -> Dns.Name.t
val ns_info_key : string -> Dns.Name.t

(** {1 The batched FindNSM bundle}

    [<qclass>.<context>.bundle.hns-meta.] is a {e synthesized} name:
    nothing is stored under it. A bundle-aware meta server
    ({!Meta_bundle}) answers a T_UNSPEC query for it with the real
    records behind mappings 1–3 (context, NSM designation, NSM
    binding — plus the host-designation records for mappings 4–5 when
    available) and a status marker record at the bundle name itself.
    Old servers answer NXDOMAIN, which clients treat as "no bundle
    support" and fall back to per-mapping lookups. *)

val bundle_marker : string
val bundle_key : context:string -> query_class:Query_class.t -> Dns.Name.t

(** [parse_bundle_key key] recovers [(context, query_class)] from a
    bundle name; [None] if [key] is not one. *)
val parse_bundle_key : Dns.Name.t -> (string * string) option

(** Outcome marker carried in the bundle reply's status record. *)
type bundle_status = B_ok | B_no_context | B_no_nsm | B_no_binding

val bundle_status_ty : Wire.Idl.ty
val bundle_status_to_value : bundle_status -> Wire.Value.t
val bundle_status_of_value : Wire.Value.t -> bundle_status option

(** {1 Wire shapes stored in UNSPEC records} *)

val string_ty : Wire.Idl.ty

(** Shape of an alternates record: array of NSM names. *)
val nsm_alternates_ty : Wire.Idl.ty

val ns_info_ty : Wire.Idl.ty
val nsm_info_ty : Wire.Idl.ty
val ns_info_to_value : ns_info -> Wire.Value.t
val ns_info_of_value : Wire.Value.t -> ns_info
val nsm_info_to_value : nsm_info -> Wire.Value.t
val nsm_info_of_value : Wire.Value.t -> nsm_info

(** Shape of a cached host-address mapping (mapping six). *)
val host_addr_ty : Wire.Idl.ty

(** {1 Host-address prefetch rows}

    [<context>!<host>.addr.hns-meta.] names a piggybacked
    [HostAddress] answer carried in a bundle reply ({!Meta_bundle}'s
    resolve-tail prefetch): nothing is stored under it in the zone.
    The context and host share one combined label split at ['!'],
    which {!validate_simple_name} reserves, so dotted contexts and
    dotted host names stay unambiguous. *)

val host_addr_marker : string
val host_addr_key : context:string -> host:string -> Dns.Name.t

(** [parse_host_addr_key key] recovers [(context, host)]; [None] if
    [key] is not a prefetch name. *)
val parse_host_addr_key : Dns.Name.t -> (string * string) option

(** [ty_of_key key] infers the stored shape from the key's marker
    label — used when seeding the cache from a zone transfer. *)
val ty_of_key : Dns.Name.t -> Wire.Idl.ty option

(** {1 Cache keys} *)

val cache_key : Dns.Name.t -> string
val host_addr_cache_key : context:string -> host:string -> string
