let query_procnum = 1
let nsm_prog_base = 390100

let arg_ty =
  Wire.Idl.T_struct [ ("service", Wire.Idl.T_string); ("hns_name", Hns_name.idl_ty) ]

let result_ty ~payload_ty =
  Wire.Idl.T_union ([ (0, payload_ty); (1, Wire.Idl.T_void) ], None)

let query_sign ~payload_ty = Wire.Idl.signature ~arg:arg_ty ~res:(result_ty ~payload_ty)

let binding_payload_ty = Hrpc.Binding.idl_ty
let host_address_payload_ty = Wire.Idl.T_uint
let text_payload_ty = Wire.Idl.T_string

let payload_ty_of qc =
  if Query_class.equal qc Query_class.hrpc_binding then Some binding_payload_ty
  else if Query_class.equal qc Query_class.host_address then Some host_address_payload_ty
  else if Query_class.equal qc Query_class.file_location then Some text_payload_ty
  else if Query_class.equal qc Query_class.mailbox_location then Some text_payload_ty
  else None

let make_arg ~service ~hns_name =
  Wire.Value.Struct
    [ ("service", Wire.Value.Str service); ("hns_name", Hns_name.to_value hns_name) ]

let parse_arg v =
  ( Wire.Value.get_str (Wire.Value.field v "service"),
    Hns_name.of_value (Wire.Value.field v "hns_name") )

let found payload = Wire.Value.Union (0, payload)
let not_found = Wire.Value.Union (1, Wire.Value.Void)

type impl = Wire.Value.t -> Wire.Value.t

type access = Linked of impl | Remote of Hrpc.Binding.t

let m_calls = Obs.Metrics.counter "hns.nsm.calls"
let m_errors = Obs.Metrics.counter "hns.nsm.errors"
let m_call_ms = Obs.Metrics.histogram "hns.nsm.call_ms"

let interpret_result = function
  | Wire.Value.Union (0, payload) -> Ok (Some payload)
  | Wire.Value.Union (1, _) -> Ok None
  | v -> Error (Errors.Nsm_error ("unexpected NSM result " ^ Wire.Value.to_string v))

(* Shared accounting for both access paths: one span per NSM call with
   the access mode as attribute, plus call/error counters and virtual
   latency. *)
let instrumented ~access_label ~hns_name f =
  Obs.Metrics.incr m_calls;
  let t0 = Obs.Metrics.now_ms () in
  Obs.Metrics.time m_call_ms (fun () ->
      let result =
        Obs.Span.with_span "nsm_call"
          ~attrs:(fun () ->
            [ ("access", access_label); ("name", Hns_name.to_string hns_name) ])
          f
      in
      Obs.Qlog.note_hop ("nsm:" ^ access_label) (Obs.Metrics.now_ms () -. t0);
      (match result with Error _ -> Obs.Metrics.incr m_errors | Ok _ -> ());
      result)

let call_linked impl ~service ~hns_name =
  (* "C(local call) is effectively zero in the time scale of the
     other terms" — no charge for the call itself. *)
  instrumented ~access_label:"linked" ~hns_name (fun () ->
      match impl (make_arg ~service ~hns_name) with
      | v -> interpret_result v
      | exception Failure m -> Error (Errors.Nsm_error m))

let call ?policy stack access ~payload_ty ~service ~hns_name =
  let arg = make_arg ~service ~hns_name in
  match access with
  | Linked impl ->
      ignore stack;
      instrumented ~access_label:"linked" ~hns_name (fun () ->
          match impl arg with
          | v -> interpret_result v
          | exception Failure m -> Error (Errors.Nsm_error m))
  | Remote binding ->
      instrumented ~access_label:"remote" ~hns_name (fun () ->
          let sign = query_sign ~payload_ty in
          match
            Hrpc.Client.call stack binding ~procnum:query_procnum ~sign ?policy
              arg
          with
          | Error e -> Error (Errors.Rpc_error e)
          | Ok v -> interpret_result v)
