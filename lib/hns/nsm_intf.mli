(** The client-side NSM calling convention.

    All NSMs for a given query class present the identical interface:
    one [query] procedure whose argument is (service qualifier, HNS
    name) and whose result is a CHOICE of the query class's payload or
    not-found. This is what lets a client "call whichever NSM handles
    that query class for the specified context without having to know
    which name service will ultimately provide the response."

    An NSM may be a remote procedure (the normal case) or linked into
    the calling process — the colocation choice. Both forms share the
    same [Value.t -> Value.t] semantics so callers cannot tell them
    apart except by cost. *)

(** Every NSM exports procedure 1 of its own program number. *)
val query_procnum : int

(** Program numbers for NSM services are allocated from this base in
    registration order by convention (any number works; bindings are
    stored, not computed). *)
val nsm_prog_base : int

(** [query_sign ~payload_ty] — argument is
    [struct {service: string; hns_name}], result is
    [union (0: payload_ty | 1: void)]. *)
val query_sign : payload_ty:Wire.Idl.ty -> Wire.Idl.signature

(** Payload shapes of the built-in query classes. *)
val binding_payload_ty : Wire.Idl.ty    (* HRPCBinding *)

val host_address_payload_ty : Wire.Idl.ty  (* HostAddress: the IP *)
val text_payload_ty : Wire.Idl.ty          (* FileLocation, MailboxLocation *)

(** [payload_ty_of query_class] for the built-in classes; extensions
    supply their own. *)
val payload_ty_of : Query_class.t -> Wire.Idl.ty option

(** Build the standard argument value. *)
val make_arg : service:string -> hns_name:Hns_name.t -> Wire.Value.t

(** Unpack the standard argument inside an NSM implementation. *)
val parse_arg : Wire.Value.t -> string * Hns_name.t

(** Standard result constructors for NSM implementations. *)
val found : Wire.Value.t -> Wire.Value.t

val not_found : Wire.Value.t

(** A linked NSM instance. *)
type impl = Wire.Value.t -> Wire.Value.t

type access = Linked of impl | Remote of Hrpc.Binding.t

(** [call stack access ~payload_ty ~service ~hns_name] invokes the NSM
    locally or remotely; [Ok None] is not-found. [policy] governs the
    remote path's HRPC retries. *)
val call :
  ?policy:Rpc.Control.retry_policy ->
  Transport.Netstack.stack ->
  access ->
  payload_ty:Wire.Idl.ty ->
  service:string ->
  hns_name:Hns_name.t ->
  (Wire.Value.t option, Errors.t) result

(** Invoke a linked instance directly (no network stack involved).
    A local procedure call costs nothing on the virtual clock. *)
val call_linked :
  impl ->
  service:string ->
  hns_name:Hns_name.t ->
  (Wire.Value.t option, Errors.t) result
