type t =
  | Static of Binding.t
  | Sun_portmapper of {
      host : Transport.Address.ip;
      prog : int;
      vers : int;
      suite : Component.protocol_suite;
    }
  | Clearinghouse_binding of {
      ch : Transport.Address.t;
      service : Clearinghouse.Ch_name.t;
      credentials : Clearinghouse.Ch_proto.credentials;
    }

let m_binds = Obs.Metrics.counter "hrpc.bind.resolves"
let m_bind_errors = Obs.Metrics.counter "hrpc.bind.errors"

let resolve_inner stack = function
  | Static b -> Ok b
  | Sun_portmapper { host; prog; vers; suite } -> (
      match Rpc.Portmap.getport stack ~portmapper:host ~prog ~vers () with
      | Error _ as e -> e
      | Ok None -> Error Rpc.Control.Prog_unavailable
      | Ok (Some port) ->
          Ok
            (Binding.make ~suite
               ~server:(Transport.Address.make host port)
               ~prog ~vers))
  | Clearinghouse_binding { ch; service; credentials } -> (
      match Clearinghouse.Ch_client.connect stack ~server:ch ~credentials with
      | exception Transport.Tcp.Connection_refused _ -> Error Rpc.Control.Refused
      | client ->
          let result =
            Clearinghouse.Ch_client.retrieve_item client service
              ~prop:Clearinghouse.Property.Id.service_binding
          in
          Clearinghouse.Ch_client.close client;
          (match result with
          | Error Clearinghouse.Ch_client.Not_found -> Error Rpc.Control.Prog_unavailable
          | Error (Clearinghouse.Ch_client.Rpc_error e) -> Error e
          | Ok bytes -> (
              match Binding.of_bytes bytes with
              | exception Invalid_argument m -> Error (Rpc.Control.Protocol_error m)
              | b -> Ok b)))

let resolve stack bind =
  Obs.Metrics.incr m_binds;
  Obs.Span.with_span "hrpc_bind" (fun () ->
      match resolve_inner stack bind with
      | Error _ as e ->
          Obs.Metrics.incr m_bind_errors;
          e
      | Ok _ as ok -> ok)

let pp ppf = function
  | Static b -> Format.fprintf ppf "static(%a)" Binding.pp b
  | Sun_portmapper { host; prog; vers; _ } ->
      Format.fprintf ppf "portmapper(%s prog=%d vers=%d)"
        (Transport.Address.ip_to_string host)
        prog vers
  | Clearinghouse_binding { service; _ } ->
      Format.fprintf ppf "clearinghouse(%a)" Clearinghouse.Ch_name.pp service
