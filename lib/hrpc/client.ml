open Transport

let m_calls = Obs.Metrics.counter "hrpc.client.calls"
let m_raw_calls = Obs.Metrics.counter "hrpc.client.raw_calls"
let m_errors = Obs.Metrics.counter "hrpc.client.errors"
let m_retries = Obs.Metrics.counter "hrpc.client.retries"
let m_call_ms = Obs.Metrics.histogram "hrpc.client.call_ms"

(* One request/response exchange over the binding's transport. The
   [matches] predicate filters stale datagrams (retransmission races). *)
let exchange stack (b : Binding.t) ~timeout ~attempts ~matches payload =
  match b.suite.Component.transport with
  | Component.T_udp ->
      let sock = Udp.bind_any stack in
      let tries = ref 0 in
      let attempt ~timeout =
        incr tries;
        if !tries > 1 then Obs.Metrics.incr m_retries;
        Udp.sendto sock ~dst:b.server payload;
        let deadline = Sim.Engine.time () +. timeout in
        let rec wait () =
          let remaining = deadline -. Sim.Engine.time () in
          if remaining <= 0.0 then None
          else
            match Udp.recv_timeout sock remaining with
            | None -> None
            | Some (_, resp) -> if matches resp then Some resp else wait ()
        in
        wait ()
      in
      let result =
        match Rpc.Control.with_retries ~attempts ~timeout attempt with
        | Some resp -> Ok resp
        | None -> Error Rpc.Control.Timeout
      in
      Udp.close sock;
      result
  | Component.T_tcp -> (
      match Tcp.connect stack b.server with
      | exception Tcp.Connection_refused _ -> Error Rpc.Control.Refused
      | conn ->
          Tcp.send conn payload;
          let deadline = Sim.Engine.time () +. timeout in
          let rec wait () =
            let remaining = deadline -. Sim.Engine.time () in
            if remaining <= 0.0 then Error Rpc.Control.Timeout
            else
              match Tcp.recv_timeout conn remaining with
              | exception Tcp.Connection_closed -> Error Rpc.Control.Refused
              | None -> Error Rpc.Control.Timeout
              | Some resp -> if matches resp then Ok resp else wait ()
          in
          let result = wait () in
          Tcp.close conn;
          result)

let call_raw stack (b : Binding.t) ?(timeout = 1000.0) ?(attempts = 3) payload =
  Obs.Metrics.incr m_raw_calls;
  exchange stack b ~timeout ~attempts ~matches:(fun _ -> true) payload

let call_inner stack (b : Binding.t) ~procnum ~sign ~timeout ~attempts v =
  Wire.Idl.check ~what:"Hrpc.call args" sign.Wire.Idl.arg v;
  let rep = b.suite.Component.data_rep in
  let body = Wire.Data_rep.to_string rep sign.Wire.Idl.arg v in
  let decode_res body =
    match Wire.Data_rep.of_string rep sign.Wire.Idl.res body with
    | exception _ -> Error (Rpc.Control.Protocol_error "undecodable results")
    | res -> Ok res
  in
  match b.suite.Component.control with
  | Component.C_raw -> (
      match call_raw stack b ~timeout ~attempts body with
      | Error _ as e -> e
      | Ok resp -> decode_res resp)
  | Component.C_sunrpc -> (
      let xid = Rpc.Control.next_xid () in
      let payload =
        Rpc.Sunrpc_wire.(
          encode
            (Call
               {
                 xid;
                 prog = Int32.of_int b.prog;
                 vers = Int32.of_int b.vers;
                 procnum = Int32.of_int procnum;
                 body;
               }))
      in
      let matches resp =
        match Rpc.Sunrpc_wire.decode resp with
        | Rpc.Sunrpc_wire.Reply r -> r.rxid = xid
        | Rpc.Sunrpc_wire.Call _ | (exception Rpc.Sunrpc_wire.Bad_message _) -> false
      in
      match exchange stack b ~timeout ~attempts ~matches payload with
      | Error _ as e -> e
      | Ok resp -> (
          match Rpc.Sunrpc_wire.decode resp with
          | Rpc.Sunrpc_wire.Reply r -> (
              match Rpc.Sunrpc_wire.reply_to_result r.rbody with
              | Error _ as e -> e
              | Ok body -> decode_res body)
          | Rpc.Sunrpc_wire.Call _ ->
              Error (Rpc.Control.Protocol_error "call in reply position")))
  | Component.C_courier -> (
      let transaction = Int32.to_int (Rpc.Control.next_xid ()) land 0xFFFF in
      let payload =
        Rpc.Courier_wire.(
          encode
            (Call { transaction; prog = Int32.of_int b.prog; vers = b.vers; procnum; body }))
      in
      let matches resp =
        match Rpc.Courier_wire.decode resp with
        | Rpc.Courier_wire.Return r -> r.transaction = transaction
        | Rpc.Courier_wire.Abort a -> a.transaction = transaction
        | Rpc.Courier_wire.Reject r -> r.transaction = transaction
        | Rpc.Courier_wire.Call _ | (exception Rpc.Courier_wire.Bad_message _) -> false
      in
      match exchange stack b ~timeout ~attempts ~matches payload with
      | Error _ as e -> e
      | Ok resp -> (
          match Rpc.Courier_wire.decode resp with
          | Rpc.Courier_wire.Return r -> decode_res r.body
          | Rpc.Courier_wire.Abort _ ->
              Error (Rpc.Control.Protocol_error "remote abort")
          | Rpc.Courier_wire.Reject r -> Error (Rpc.Courier_wire.reject_to_error r.code)
          | Rpc.Courier_wire.Call _ ->
              Error (Rpc.Control.Protocol_error "call in reply position")))

let call stack (b : Binding.t) ~procnum ~sign ?(timeout = 1000.0) ?(attempts = 3) v =
  Obs.Metrics.incr m_calls;
  Obs.Metrics.time m_call_ms (fun () ->
      let result = call_inner stack b ~procnum ~sign ~timeout ~attempts v in
      (match result with Error _ -> Obs.Metrics.incr m_errors | Ok _ -> ());
      result)
