open Transport

let m_calls = Obs.Metrics.counter "hrpc.client.calls"
let m_raw_calls = Obs.Metrics.counter "hrpc.client.raw_calls"
let m_errors = Obs.Metrics.counter "hrpc.client.errors"
let m_retries = Obs.Metrics.counter "hrpc.client.retries"
let m_call_ms = Obs.Metrics.histogram "hrpc.client.call_ms"
let m_backoff_ms = Obs.Metrics.histogram "hrpc.client.backoff_ms"

(* Merge the legacy [?timeout]/[?attempts] knobs into a retry policy:
   an explicit policy is the base, the scalar knobs override it. *)
let resolve_policy ?timeout ?attempts ?policy () =
  let p = Option.value policy ~default:Rpc.Control.default_policy in
  let p =
    match timeout with
    | None -> p
    | Some t -> { p with Rpc.Control.attempt_timeout_ms = t }
  in
  let p =
    match attempts with None -> p | Some a -> { p with Rpc.Control.attempts = a }
  in
  Rpc.Control.validate_policy p;
  p

(* One request/response exchange over the binding's transport. The
   [matches] predicate filters stale datagrams (retransmission races).

   UDP retransmits under the policy: between attempts it sleeps the
   jittered exponential-backoff pause, and each attempt's deadline
   escalates by [timeout_multiplier]. The jitter stream is seeded from
   the caller's address and the call's virtual start time, so a whole
   simulation replays byte-for-byte yet concurrent callers do not
   retry in lockstep. TCP gets a single attempt (the transport itself
   is reliable); its connect is bounded by the attempt timeout. *)
let exchange stack (b : Binding.t) ~(policy : Rpc.Control.retry_policy) ~matches
    payload =
  let t0 = Sim.Engine.time () in
  let timed_out () =
    Error (Rpc.Control.Timeout { elapsed_ms = Sim.Engine.time () -. t0 })
  in
  match b.suite.Component.transport with
  | Component.T_udp ->
      let sock = Udp.bind_any stack in
      let seed =
        Int64.logxor
          (Int64.of_int32 (Netstack.ip stack))
          (Int64.bits_of_float t0)
      in
      let schedule = Rpc.Control.backoff_schedule policy ~seed in
      let rec attempt i =
        if i > policy.Rpc.Control.attempts then timed_out ()
        else begin
          if i > 1 then begin
            Obs.Metrics.incr m_retries;
            let pause = schedule.(i - 2) in
            Obs.Metrics.observe m_backoff_ms pause;
            Sim.Engine.sleep pause
          end;
          Udp.sendto sock ~dst:b.server payload;
          let deadline =
            Sim.Engine.time () +. Rpc.Control.attempt_timeout policy i
          in
          let rec wait () =
            let remaining = deadline -. Sim.Engine.time () in
            if remaining <= 0.0 then None
            else
              match Udp.recv_timeout sock remaining with
              | None -> None
              | Some (_, resp) -> if matches resp then Some resp else wait ()
          in
          match wait () with Some resp -> Ok resp | None -> attempt (i + 1)
        end
      in
      let result = attempt 1 in
      Udp.close sock;
      result
  | Component.T_tcp -> (
      let timeout = policy.Rpc.Control.attempt_timeout_ms in
      match Tcp.connect ~timeout_ms:timeout stack b.server with
      | exception Tcp.Connection_refused _ -> Error Rpc.Control.Refused
      | conn ->
          Tcp.send conn payload;
          let deadline = Sim.Engine.time () +. timeout in
          let rec wait () =
            let remaining = deadline -. Sim.Engine.time () in
            if remaining <= 0.0 then timed_out ()
            else
              match Tcp.recv_timeout conn remaining with
              | exception Tcp.Connection_closed -> Error Rpc.Control.Refused
              | None -> timed_out ()
              | Some resp -> if matches resp then Ok resp else wait ()
          in
          let result = wait () in
          Tcp.close conn;
          result)

let call_raw stack (b : Binding.t) ?timeout ?attempts ?policy payload =
  Obs.Metrics.incr m_raw_calls;
  let policy = resolve_policy ?timeout ?attempts ?policy () in
  exchange stack b ~policy ~matches:(fun _ -> true) payload

let call_inner stack (b : Binding.t) ~procnum ~sign ~policy v =
  Wire.Idl.check ~what:"Hrpc.call args" sign.Wire.Idl.arg v;
  let rep = b.suite.Component.data_rep in
  let body = Wire.Data_rep.to_string rep sign.Wire.Idl.arg v in
  let decode_res body =
    match Wire.Data_rep.of_string rep sign.Wire.Idl.res body with
    | exception _ -> Error (Rpc.Control.Protocol_error "undecodable results")
    | res -> Ok res
  in
  match b.suite.Component.control with
  | Component.C_raw -> (
      match exchange stack b ~policy ~matches:(fun _ -> true) body with
      | Error _ as e -> e
      | Ok resp -> decode_res resp)
  | Component.C_sunrpc -> (
      let xid = Rpc.Control.next_xid () in
      let body = Trace_header.stamp_current body in
      let payload =
        Rpc.Sunrpc_wire.(
          encode
            (Call
               {
                 xid;
                 prog = Int32.of_int b.prog;
                 vers = Int32.of_int b.vers;
                 procnum = Int32.of_int procnum;
                 body;
               }))
      in
      let matches resp =
        match Rpc.Sunrpc_wire.decode resp with
        | Rpc.Sunrpc_wire.Reply r -> r.rxid = xid
        | Rpc.Sunrpc_wire.Call _ | (exception Rpc.Sunrpc_wire.Bad_message _) -> false
      in
      match exchange stack b ~policy ~matches payload with
      | Error _ as e -> e
      | Ok resp -> (
          match Rpc.Sunrpc_wire.decode resp with
          | Rpc.Sunrpc_wire.Reply r -> (
              match Rpc.Sunrpc_wire.reply_to_result r.rbody with
              | Error _ as e -> e
              | Ok body -> decode_res body)
          | Rpc.Sunrpc_wire.Call _ ->
              Error (Rpc.Control.Protocol_error "call in reply position")))
  | Component.C_courier -> (
      let transaction = Int32.to_int (Rpc.Control.next_xid ()) land 0xFFFF in
      let body = Trace_header.stamp_current body in
      let payload =
        Rpc.Courier_wire.(
          encode
            (Call { transaction; prog = Int32.of_int b.prog; vers = b.vers; procnum; body }))
      in
      let matches resp =
        match Rpc.Courier_wire.decode resp with
        | Rpc.Courier_wire.Return r -> r.transaction = transaction
        | Rpc.Courier_wire.Abort a -> a.transaction = transaction
        | Rpc.Courier_wire.Reject r -> r.transaction = transaction
        | Rpc.Courier_wire.Call _ | (exception Rpc.Courier_wire.Bad_message _) -> false
      in
      match exchange stack b ~policy ~matches payload with
      | Error _ as e -> e
      | Ok resp -> (
          match Rpc.Courier_wire.decode resp with
          | Rpc.Courier_wire.Return r -> decode_res r.body
          | Rpc.Courier_wire.Abort _ ->
              Error (Rpc.Control.Protocol_error "remote abort")
          | Rpc.Courier_wire.Reject r -> Error (Rpc.Courier_wire.reject_to_error r.code)
          | Rpc.Courier_wire.Call _ ->
              Error (Rpc.Control.Protocol_error "call in reply position")))

let call stack (b : Binding.t) ~procnum ~sign ?timeout ?attempts ?policy v =
  Obs.Metrics.incr m_calls;
  let policy = resolve_policy ?timeout ?attempts ?policy () in
  (* The hrpc_call span is the client half of cross-hop propagation:
     call_inner stamps its (trace, id) into the call body, and the
     server's hrpc_serve span adopts it as a remote parent. *)
  Obs.Span.with_span "hrpc_call"
    ~attrs:(fun () ->
      [
        ("proc", string_of_int procnum);
        ("suite", Component.suite_name b.suite);
      ])
    (fun () ->
      Obs.Metrics.time m_call_ms (fun () ->
          let result = call_inner stack b ~procnum ~sign ~policy v in
          (match result with Error _ -> Obs.Metrics.incr m_errors | Ok _ -> ());
          result))
