(** The HRPC client call engine.

    [call] is the run-time half of a client stub: given a binding it
    selects the data representation, transport, and control protocol
    the server speaks and performs one complete remote call. The
    components were separated at stub-generation time and are
    recombined here, at call time — the emulation mechanism that lets
    one linked client speak Sun RPC, Courier, or a raw message
    protocol depending on what it is bound to.

    Retries are governed by a {!Rpc.Control.retry_policy}: UDP
    transports retransmit with escalating per-attempt deadlines and a
    jittered exponential backoff pause between attempts (recorded in
    the [hrpc.client.backoff_ms] histogram); TCP transports make a single
    attempt bounded by the attempt timeout, including connection
    establishment. Exhausting the budget yields
    [Error (Timeout { elapsed_ms })] carrying the cumulative virtual
    time spent across every attempt and pause. *)

(** [?policy] supplies the full retry policy (default
    {!Rpc.Control.default_policy}); [?timeout] and [?attempts]
    override its [attempt_timeout_ms] and [attempts] fields for
    callers that only need the legacy knobs. *)
val call :
  Transport.Netstack.stack ->
  Binding.t ->
  procnum:int ->
  sign:Wire.Idl.signature ->
  ?timeout:float ->
  ?attempts:int ->
  ?policy:Rpc.Control.retry_policy ->
  Wire.Value.t ->
  (Wire.Value.t, Rpc.Control.error) result

(** [call_raw] sends pre-encoded bytes with the binding's control and
    transport components, skipping value marshalling — used by the
    HNS's HRPC interface to BIND, whose payloads are native DNS
    messages. *)
val call_raw :
  Transport.Netstack.stack ->
  Binding.t ->
  ?timeout:float ->
  ?attempts:int ->
  ?policy:Rpc.Control.retry_policy ->
  string ->
  (string, Rpc.Control.error) result
