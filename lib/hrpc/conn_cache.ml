module Addr_map = Map.Make (Transport.Address)

type t = {
  stack : Transport.Netstack.stack;
  mutable conns : Transport.Tcp.conn Addr_map.t;
  mutable reuse_count : int;
}

let m_reuses = Obs.Metrics.counter "hrpc.conn_cache.reuses"
let m_connects = Obs.Metrics.counter "hrpc.conn_cache.connects"

let create stack = { stack; conns = Addr_map.empty; reuse_count = 0 }

let drop t addr conn =
  Transport.Tcp.close conn;
  t.conns <- Addr_map.remove addr t.conns

(* Get a usable connection, saying whether it was reused. *)
let obtain t addr =
  match Addr_map.find_opt addr t.conns with
  | Some conn ->
      t.reuse_count <- t.reuse_count + 1;
      Obs.Metrics.incr m_reuses;
      Ok (conn, true)
  | None -> (
      match Transport.Tcp.connect t.stack addr with
      | exception Transport.Tcp.Connection_refused _ -> Error Rpc.Control.Refused
      | conn ->
          Obs.Metrics.incr m_connects;
          t.conns <- Addr_map.add addr conn t.conns;
          Ok (conn, false))

(* One request/response on a cached connection; on a dead reused
   connection, reconnect once and retry. *)
let rec exchange t addr ~timeout ~matches payload ~retry_on_dead =
  match obtain t addr with
  | Error e -> Error e
  | Ok (conn, reused) -> (
      let dead () =
        drop t addr conn;
        if reused && retry_on_dead then
          exchange t addr ~timeout ~matches payload ~retry_on_dead:false
        else Error Rpc.Control.Refused
      in
      match Transport.Tcp.send conn payload with
      | exception Transport.Tcp.Connection_closed -> dead ()
      | () ->
          let t0 = Sim.Engine.time () in
          let timed_out () =
            Error
              (Rpc.Control.Timeout { elapsed_ms = Sim.Engine.time () -. t0 })
          in
          let deadline = t0 +. timeout in
          let rec wait () =
            let remaining = deadline -. Sim.Engine.time () in
            if remaining <= 0.0 then timed_out ()
            else
              match Transport.Tcp.recv_timeout conn remaining with
              | exception Transport.Tcp.Connection_closed -> dead ()
              | None -> timed_out ()
              | Some resp -> if matches resp then Ok resp else wait ()
          in
          wait ())

let call t (b : Binding.t) ~procnum ~sign ?(timeout = 1000.0) ?attempts v =
  match b.suite.Component.transport with
  | Component.T_udp -> Client.call t.stack b ~procnum ~sign ~timeout ?attempts v
  | Component.T_tcp -> (
      Wire.Idl.check ~what:"Conn_cache.call args" sign.Wire.Idl.arg v;
      let rep = b.suite.Component.data_rep in
      let body = Wire.Data_rep.to_string rep sign.Wire.Idl.arg v in
      let decode_res body =
        match Wire.Data_rep.of_string rep sign.Wire.Idl.res body with
        | exception _ -> Error (Rpc.Control.Protocol_error "undecodable results")
        | res -> Ok res
      in
      match b.suite.Component.control with
      | Component.C_raw -> (
          match
            exchange t b.server ~timeout ~matches:(fun _ -> true) body
              ~retry_on_dead:true
          with
          | Error _ as e -> e
          | Ok resp -> decode_res resp)
      | Component.C_sunrpc -> (
          let xid = Rpc.Control.next_xid () in
          let payload =
            Rpc.Sunrpc_wire.(
              encode
                (Call
                   {
                     xid;
                     prog = Int32.of_int b.prog;
                     vers = Int32.of_int b.vers;
                     procnum = Int32.of_int procnum;
                     body;
                   }))
          in
          let matches resp =
            match Rpc.Sunrpc_wire.decode resp with
            | Rpc.Sunrpc_wire.Reply r -> r.rxid = xid
            | Rpc.Sunrpc_wire.Call _ | (exception Rpc.Sunrpc_wire.Bad_message _) ->
                false
          in
          match exchange t b.server ~timeout ~matches payload ~retry_on_dead:true with
          | Error _ as e -> e
          | Ok resp -> (
              match Rpc.Sunrpc_wire.decode resp with
              | Rpc.Sunrpc_wire.Reply r -> (
                  match Rpc.Sunrpc_wire.reply_to_result r.rbody with
                  | Error _ as e -> e
                  | Ok body -> decode_res body)
              | Rpc.Sunrpc_wire.Call _ ->
                  Error (Rpc.Control.Protocol_error "call in reply position")))
      | Component.C_courier -> (
          let transaction = Int32.to_int (Rpc.Control.next_xid ()) land 0xFFFF in
          let payload =
            Rpc.Courier_wire.(
              encode
                (Call
                   { transaction; prog = Int32.of_int b.prog; vers = b.vers; procnum; body }))
          in
          let matches resp =
            match Rpc.Courier_wire.decode resp with
            | Rpc.Courier_wire.Return r -> r.transaction = transaction
            | Rpc.Courier_wire.Abort a -> a.transaction = transaction
            | Rpc.Courier_wire.Reject r -> r.transaction = transaction
            | Rpc.Courier_wire.Call _ | (exception Rpc.Courier_wire.Bad_message _) ->
                false
          in
          match exchange t b.server ~timeout ~matches payload ~retry_on_dead:true with
          | Error _ as e -> e
          | Ok resp -> (
              match Rpc.Courier_wire.decode resp with
              | Rpc.Courier_wire.Return r -> decode_res r.body
              | Rpc.Courier_wire.Abort _ -> Error (Rpc.Control.Protocol_error "remote abort")
              | Rpc.Courier_wire.Reject r -> Error (Rpc.Courier_wire.reject_to_error r.code)
              | Rpc.Courier_wire.Call _ ->
                  Error (Rpc.Control.Protocol_error "call in reply position"))))

let live t = Addr_map.cardinal t.conns
let reuses t = t.reuse_count

let clear t =
  Addr_map.iter (fun _ conn -> Transport.Tcp.close conn) t.conns;
  t.conns <- Addr_map.empty;
  t.reuse_count <- 0
